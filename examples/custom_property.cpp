// Retargetability demo: the whole point of the paper's design is that new
// performance problems enter the tool by *editing a specification*, not the
// tool. This example takes an ASL property on the command line (or uses a
// built-in one), type-checks it against the COSY data model, and evaluates
// it over a simulated experiment with both the interpreter and the
// automatically generated SQL.
//
// Usage: custom_property            (uses the built-in example property)
//        custom_property <file.asl> (loads additional properties from file)

#include <fstream>
#include <iostream>
#include <sstream>

#include "asl/sema.hpp"
#include "cosy/analyzer.hpp"
#include "cosy/db_import.hpp"
#include "cosy/schema_gen.hpp"
#include "cosy/specs.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"
#include "support/error.hpp"

using namespace kojak;

namespace {

constexpr const char* kExampleProperty = R"(
// A user-defined refinement: a region whose barrier time grows faster than
// its message time is probably imbalance-, not bandwidth-, limited.
Property BarrierDominatesMessages(Region r, TestRun t, Region Basis) {
  LET
    float Barrier = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t
        AND tt.Type == Barrier);
    float Msg = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t
        AND tt.Type == SendMsg)
        + SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t
        AND tt.Type == RecvMsg)
  IN
  CONDITION: (sync_bound) Barrier > 2 * Msg AND Barrier > 0
          OR (mixed) Barrier > Msg AND Msg > 0;
  CONFIDENCE: MAX((sync_bound) -> 0.9, (mixed) -> 0.6);
  SEVERITY: MAX((sync_bound) -> Barrier / Duration(Basis, t),
                (mixed) -> (Barrier - Msg) / Duration(Basis, t));
};
)";

}  // namespace

int main(int argc, char** argv) {
  std::string user_spec = kExampleProperty;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << '\n';
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    user_spec = buffer.str();
  }

  // 1. Front end: parse + type-check against the COSY data model. Errors
  //    come out with positions — try breaking the property to see.
  asl::Model model;
  try {
    model = asl::load_model({cosy::cosy_model_source(),
                             cosy::cosy_properties_source(), user_spec});
  } catch (const support::Error& error) {
    std::cerr << "specification rejected:\n" << error.what() << '\n';
    return 1;
  }
  std::cout << "loaded " << model.properties().size()
            << " properties; user-defined ones:";
  for (std::size_t i = 5; i < model.properties().size(); ++i) {
    std::cout << ' ' << model.properties()[i].name;
  }
  std::cout << "\n\n";

  // 2. Data: simulate the flagship workload and fill store + database.
  asl::ObjectStore store(model);
  const cosy::StoreHandles handles = cosy::build_store(
      store,
      perf::simulate_experiment(perf::workloads::imbalanced_ocean(), {1, 32}));
  db::Database database;
  cosy::create_schema(database, model);
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::import_store(conn, store);

  // 3. Analyze with both strategies; the user property participates in the
  //    ranking like any paper property.
  cosy::Analyzer analyzer(model, store, handles, &conn);
  for (const cosy::EvalStrategy strategy :
       {cosy::EvalStrategy::kInterpreter, cosy::EvalStrategy::kSqlPushdown}) {
    cosy::AnalyzerConfig config;
    config.strategy = strategy;
    const cosy::AnalysisReport report = analyzer.analyze(1, config);
    std::cout << "--- strategy: " << to_string(strategy) << " ---\n"
              << report.to_table(12) << '\n';
  }
  return 0;
}
