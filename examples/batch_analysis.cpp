// Batch analysis: the whole experiment — every test run × two property
// suites — analyzed in one parallel pass.
//
//   1. Simulate a scaling study (1..32 PEs) of the imbalanced ocean code.
//   2. Import it once into the relational database.
//   3. Run the batch engine: worker threads draw sessions from a connection
//      pool, share one compiled-plan cache, and produce per-run reports
//      plus a cross-run summary (worst contexts, scaling regressions).
//   4. Show that the parallel batch is deterministic: same bytes as the
//      one-threaded batch.

#include <iostream>

#include "cosy/batch.hpp"
#include "cosy/db_import.hpp"
#include "cosy/schema_gen.hpp"
#include "cosy/specs.hpp"
#include "cosy/store_builder.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"

int main() {
  using namespace kojak;

  // 1. A scaling study: five runs of the flagship workload.
  const perf::AppSpec app = perf::workloads::imbalanced_ocean();
  const perf::ExperimentData data =
      perf::simulate_experiment(app, {1, 4, 8, 16, 32});
  std::cout << "simulated " << data.runs.size() << " test runs of " << app.name
            << "\n";

  // 2. Specification, object store, relational database.
  const asl::Model model = cosy::load_cosy_model(/*extended=*/true);
  asl::ObjectStore store(model);
  const cosy::StoreHandles handles = cosy::build_store(store, data);
  db::Database database;
  cosy::create_schema(database, model);
  {
    db::Connection import_conn(database, db::ConnectionProfile::in_memory());
    cosy::import_store(import_conn, store);
  }

  // 3. The batch engine on a pooled Postgres-profile backend: 4 workers,
  //    4 sessions, one shared plan cache, two suites per run.
  db::ConnectionPool pool(database, db::ConnectionProfile::postgres(), 4);
  cosy::BatchAnalyzer batch(model, store, handles, &pool);

  const std::vector<cosy::PropertySuite> suites = {
      {"paper",
       {"SublinearSpeedup", "MeasuredCost", "UnmeasuredCost", "SyncCost",
        "LoadImbalance"}},
      {"extended",
       {"IOCost", "MessagePassingCost", "CollectiveCost", "CommunicationBound",
        "SmallMessageOverhead", "InstrumentationOverhead", "IdleWaitCost",
        "ImbalancedPassCounts"}},
  };
  std::vector<std::size_t> runs(data.runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) runs[i] = i;

  //    The whole-condition backend (paper §6) evaluates each (property,
  //    context) in ONE SQL statement; the caller-owned plan cache survives
  //    this call, so a follow-up batch would compile nothing at all.
  cosy::PlanCache plan_cache(model);
  cosy::BatchConfig config;
  config.backend = "sql-whole-condition";
  config.threads = 4;
  config.plan_cache = &plan_cache;
  const cosy::BatchResult result = batch.analyze_runs(runs, suites, config);

  std::cout << "\n" << result.summary.to_table() << "\n";
  std::cout << "per-run bottlenecks (paper suite):\n";
  for (const std::size_t run : runs) {
    const cosy::AnalysisReport* report = result.report_for(run, "paper");
    if (report == nullptr || report->bottleneck() == nullptr) continue;
    std::cout << "  run " << run << " (" << report->pe_count
              << " PEs): " << report->bottleneck()->property << " @ "
              << report->bottleneck()->context << "  severity "
              << report->bottleneck()->result.severity << "\n";
  }

  // 4. Determinism: a single-threaded batch produces identical reports.
  db::ConnectionPool serial_pool(database, db::ConnectionProfile::postgres(),
                                 1);
  cosy::BatchAnalyzer serial_batch(model, store, handles, &serial_pool);
  cosy::BatchConfig serial_config = config;
  serial_config.threads = 1;
  const cosy::BatchResult serial =
      serial_batch.analyze_runs(runs, suites, serial_config);
  bool identical = serial.items.size() == result.items.size();
  for (std::size_t i = 0; identical && i < result.items.size(); ++i) {
    identical = result.items[i].report.to_table(1000) ==
                serial.items[i].report.to_table(1000);
  }
  std::cout << "\n4-thread batch identical to 1-thread batch: "
            << (identical ? "yes" : "NO") << "\n";
  std::cout << "backend speedup (serial-equivalent / makespan): "
            << result.summary.backend_total_ms /
                   result.summary.backend_makespan_ms
            << "x over " << result.summary.pooled_connections
            << " pooled sessions\n";
  return identical ? 0 : 1;
}
