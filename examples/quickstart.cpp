// Quickstart: the complete COSY pipeline in one sitting.
//
//   1. "Run" a parallel application on the simulated CRAY T3E twice
//      (1 PE reference run and a 16 PE run), producing Apprentice summaries.
//   2. Load the ASL specification (data model + property suite).
//   3. Populate the performance database (object store + relational DB).
//   4. Analyze the 16 PE run: evaluate all properties, rank by severity,
//      report problems and the bottleneck.

#include <iostream>

#include "cosy/analyzer.hpp"
#include "cosy/db_import.hpp"
#include "cosy/schema_gen.hpp"
#include "cosy/specs.hpp"
#include "cosy/store_builder.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"

int main() {
  using namespace kojak;

  // 1. Simulate test runs of the flagship workload.
  const perf::AppSpec app = perf::workloads::imbalanced_ocean();
  const perf::ExperimentData data = perf::simulate_experiment(app, {1, 16});
  std::cout << "simulated " << data.runs.size() << " test runs of "
            << app.name << " (" << data.structure.functions.size()
            << " functions)\n";

  // 2. The specification documents drive everything downstream.
  const asl::Model model = cosy::load_cosy_model(/*extended=*/true);
  std::cout << "loaded ASL spec: " << model.classes().size() << " classes, "
            << model.properties().size() << " properties\n";

  // 3a. Object store (interpreter strategy).
  asl::ObjectStore store(model);
  const cosy::StoreHandles handles = cosy::build_store(store, data);

  // 3b. Relational database via the generated schema (SQL strategies).
  db::Database database;
  cosy::create_schema(database, model);
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  const cosy::ImportStats import = cosy::import_store(conn, store);
  std::cout << "imported " << import.rows << " rows with "
            << import.statements << " statements\n\n";

  // 4. Analyze the 16 PE run with both evaluation strategies.
  cosy::Analyzer analyzer(model, store, handles, &conn);

  cosy::AnalyzerConfig config;
  config.strategy = cosy::EvalStrategy::kInterpreter;
  const cosy::AnalysisReport report = analyzer.analyze(1, config);
  std::cout << report.to_table(12) << '\n';

  config.strategy = cosy::EvalStrategy::kSqlPushdown;
  const cosy::AnalysisReport sql_report = analyzer.analyze(1, config);
  std::cout << "SQL pushdown agrees: "
            << (sql_report.findings.size() == report.findings.size() &&
                        (report.findings.empty() ||
                         sql_report.bottleneck()->property ==
                             report.bottleneck()->property)
                    ? "yes"
                    : "NO")
            << " (" << sql_report.sql_queries << " queries issued)\n";
  return 0;
}
