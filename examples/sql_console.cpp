// Interactive SQL console over a populated performance database — the
// debugging companion the COSY developers would have used while hand-
// translating property conditions into queries (paper §5). Reads one
// statement per line; with piped stdin it runs as a batch.
//
// Usage: sql_console [workload]   (default imbalanced_ocean)
// Meta commands: .tables  .schema <table>  .quit

#include <iostream>
#include <string>

#include "cosy/db_import.hpp"
#include "cosy/schema_gen.hpp"
#include "cosy/specs.hpp"
#include "cosy/store_builder.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"
#include "support/error.hpp"

using namespace kojak;

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "imbalanced_ocean";
  perf::AppSpec app = perf::workloads::imbalanced_ocean();
  for (const auto& [name, factory] : perf::workloads::all_named()) {
    if (workload == name) app = factory();
  }

  const asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store(model);
  cosy::build_store(store, perf::simulate_experiment(app, {1, 8, 32}));
  db::Database database;
  cosy::create_schema(database, model);
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::import_store(conn, store);

  std::cout << "performance database for '" << app.name << "' ("
            << database.total_rows() << " rows). Type .tables, .schema <t>, "
            << "SQL statements, or .quit\n";

  std::string line;
  while (std::cout << "sql> " << std::flush, std::getline(std::cin, line)) {
    if (line == ".quit" || line == ".exit") break;
    if (line.empty()) continue;
    if (line == ".tables") {
      for (const std::string& name : database.table_names()) {
        std::cout << "  " << name << " (" << database.table(name).live_row_count()
                  << " rows)\n";
      }
      continue;
    }
    if (line.rfind(".schema ", 0) == 0) {
      const std::string table = line.substr(8);
      if (const db::Table* t = database.find_table(table)) {
        std::cout << t->schema().to_ddl() << ";\n";
      } else {
        std::cout << "no such table: " << table << '\n';
      }
      continue;
    }
    try {
      const db::QueryResult result = database.execute(line);
      if (!result.columns.empty()) {
        std::cout << result.to_table();
        std::cout << "(" << result.row_count() << " rows)\n";
      } else {
        std::cout << "ok (" << result.affected_rows << " rows affected)\n";
      }
    } catch (const support::Error& error) {
      std::cout << "error: " << error.what() << '\n';
    }
  }
  std::cout << '\n';
  return 0;
}
