// Speedup study: the workflow the paper's §3 describes — multiple test runs
// of one program version, analyzed against the smallest-PE reference run.
// For each PE count this prints the speedup, the cost decomposition at the
// program region (total / measured / unmeasured), and where the bottleneck
// moved.
//
// Usage: speedup_study [workload] [max_pe]
//   workload: scalable_stencil | imbalanced_ocean | serial_bottleneck |
//             message_bound | io_heavy        (default imbalanced_ocean)
//   max_pe:   largest PE count of the sweep    (default 64)

#include <cstdlib>
#include <iostream>

#include "cosy/analyzer.hpp"
#include "cosy/report_render.hpp"
#include "cosy/specs.hpp"
#include "cosy/store_builder.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

using namespace kojak;

namespace {

double severity_of(const cosy::AnalysisReport& report, std::string_view property,
                   std::string_view context) {
  for (const cosy::Finding& finding : report.findings) {
    if (finding.property == property && finding.context == context) {
      return finding.result.severity;
    }
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = argc > 1 ? argv[1] : "imbalanced_ocean";
  const int max_pe = argc > 2 ? std::atoi(argv[2]) : 64;

  perf::AppSpec app;
  bool found = false;
  for (const auto& [name, factory] : perf::workloads::all_named()) {
    if (workload == name) {
      app = factory();
      found = true;
    }
  }
  if (!found) {
    std::cerr << "unknown workload '" << workload << "'; options:";
    for (const auto& [name, factory] : perf::workloads::all_named()) {
      std::cerr << ' ' << name;
    }
    std::cerr << '\n';
    return 1;
  }

  std::vector<int> pes;
  for (int p = 1; p <= max_pe; p *= 2) pes.push_back(p);

  const asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store(model);
  const cosy::StoreHandles handles =
      cosy::build_store(store, perf::simulate_experiment(app, pes));
  cosy::Analyzer analyzer(model, store, handles);

  support::TablePrinter table;
  table.add_column("PEs", support::TablePrinter::Align::kRight)
      .add_column("total cost", support::TablePrinter::Align::kRight)
      .add_column("measured", support::TablePrinter::Align::kRight)
      .add_column("unmeasured", support::TablePrinter::Align::kRight)
      .add_column("#problems", support::TablePrinter::Align::kRight)
      .add_column("bottleneck");

  std::cout << "Speedup study of " << app.name << " (reference run: " << pes[0]
            << " PE)\n\n";
  for (std::size_t run = 0; run < pes.size(); ++run) {
    const cosy::AnalysisReport report = analyzer.analyze(run);
    const std::string bottleneck =
        report.bottleneck() == nullptr
            ? "- (tuned)"
            : support::cat(report.bottleneck()->property, " @ ",
                           report.bottleneck()->context,
                           report.tuned() ? "  [ok]" : "");
    table.add_row(
        {std::to_string(pes[run]),
         support::format_double(severity_of(report, "SublinearSpeedup",
                                            handles.main_region), 4),
         support::format_double(severity_of(report, "MeasuredCost",
                                            handles.main_region), 4),
         support::format_double(severity_of(report, "UnmeasuredCost",
                                            handles.main_region), 4),
         std::to_string(report.problems().size()), bottleneck});
  }
  std::cout << table.render();
  std::cout << "\n(severities are fractions of the program duration in the "
               "analyzed run, as in the paper's SEVERITY expressions)\n\n";

  // Detail view of the largest run.
  const cosy::AnalysisReport last = analyzer.analyze(pes.size() - 1);
  std::cout << last.to_table(15) << '\n';

  // Severity matrix across the whole sweep (which property grew where).
  std::vector<cosy::AnalysisReport> reports;
  for (std::size_t run = 0; run < pes.size(); ++run) {
    reports.push_back(analyzer.analyze(run));
  }
  std::cout << "Severity per run (top properties):\n"
            << cosy::severity_matrix(reports, 12) << '\n';
  return 0;
}
