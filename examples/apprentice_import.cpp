// The data-supply interface: Apprentice writes a report file; COSY parses
// it and transfers the content into the relational database (paper §3).
// This example writes a report to disk, reads it back, imports it through a
// chosen backend profile, and shows the insertion cost accounting plus a
// few SQL queries over the result.
//
// Usage: apprentice_import [report_path] [backend]
//   backend: access | oracle | mssql | postgres   (default oracle)

#include <fstream>
#include <iostream>
#include <sstream>

#include "cosy/db_import.hpp"
#include "cosy/schema_gen.hpp"
#include "cosy/specs.hpp"
#include "cosy/store_builder.hpp"
#include "perf/report_io.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"
#include "support/str.hpp"

using namespace kojak;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/ocean_sim.apprentice";
  const std::string backend = argc > 2 ? argv[2] : "oracle";

  db::ConnectionProfile profile = db::ConnectionProfile::oracle7();
  if (backend == "access") profile = db::ConnectionProfile::access_local();
  if (backend == "mssql") profile = db::ConnectionProfile::mssql_server();
  if (backend == "postgres") profile = db::ConnectionProfile::postgres();

  // 1. "Apprentice" writes its report after the test runs.
  const perf::ExperimentData measured = perf::simulate_experiment(
      perf::workloads::imbalanced_ocean(), {1, 4, 16, 64});
  {
    std::ofstream out(path);
    perf::write_report(measured, out);
  }
  std::cout << "wrote " << path << '\n';

  // 2. COSY reads the file — a fresh process would start here.
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const perf::ExperimentData imported = perf::parse_report(buffer.str());
  std::cout << "parsed report: " << imported.structure.functions.size()
            << " functions, " << imported.runs.size() << " test runs\n";

  // 3. Transfer into the database through the selected backend profile.
  const asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store(model);
  cosy::build_store(store, imported);
  db::Database database;
  cosy::create_schema(database, model);
  db::Connection conn(database, profile);
  const cosy::ImportStats stats = cosy::import_store(conn, store);
  std::cout << "imported " << stats.rows << " rows into '" << profile.name
            << "' in " << support::format_double(stats.virtual_ms, 5)
            << " virtual ms ("
            << support::format_double(stats.virtual_ms * 1000.0 / stats.rows, 4)
            << " us/row)\n\n";

  // 4. The database is now queryable with plain SQL.
  const char* queries[] = {
      "SELECT Name FROM Program",
      "SELECT NoPe, Clockspeed FROM TestRun ORDER BY NoPe",
      "SELECT COUNT(*) AS regions FROM Region",
      "SELECT r.Name, t.Incl FROM Region r "
      "JOIN Region_TotTimes j ON j.owner = r.id "
      "JOIN TotalTiming t ON t.id = j.member "
      "JOIN TestRun run ON run.id = t.Run "
      "WHERE run.NoPe = 64 ORDER BY t.Incl DESC LIMIT 5",
  };
  for (const char* sql : queries) {
    std::cout << "sql> " << sql << '\n'
              << database.execute(sql).to_table() << '\n';
  }
  return 0;
}
