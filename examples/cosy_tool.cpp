// The COSY command-line tool: the closest thing to the user interface the
// paper describes in §3 ("select a program version and a specific test
// run... the performance properties are ranked according to their severity
// and presented to the application programmer").
//
// Usage:
//   cosy_tool --report <file>            analyze an Apprentice report file
//   cosy_tool --workload <name>          simulate + analyze a named workload
//   options:
//     --pes 1,8,32        PE counts when simulating      (default 1,16)
//     --run <index>       test run to analyze            (default last)
//     --threshold <t>     problem threshold              (default 0.05)
//     --backend <name>    evaluation backend             (default interpreter)
//                         any registry name (--list-backends); legacy
//                         shorthands interpreter|sql|client|bulk still work
//     --spec <file.asl>   additional property documents  (repeatable)
//     --top <n>           rows to print                  (default 15)
//     --format <f>        text|markdown|csv              (default text)
//     --watch <n>         online monitoring: n evaluation epochs over a
//                         streaming store (member-partitioned timing
//                         junctions, bulk ingest, incremental per-partition
//                         re-evaluation through cosy::Monitor)
//     --list-workloads
//     --list-backends

#include <fstream>
#include <iostream>
#include <sstream>

#include "asl/sema.hpp"
#include "cosy/analyzer.hpp"
#include "cosy/db_import.hpp"
#include "cosy/eval_backend.hpp"
#include "cosy/monitor.hpp"
#include "cosy/report_render.hpp"
#include "cosy/schema_gen.hpp"
#include "cosy/specs.hpp"
#include "perf/report_io.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

using namespace kojak;

namespace {

struct Options {
  std::string report_path;
  std::string workload;
  std::vector<int> pes = {1, 16};
  std::optional<std::size_t> run;
  double threshold = 0.05;
  std::string backend = "interpreter";
  std::vector<std::string> extra_specs;
  std::size_t top = 15;
  std::string format = "text";
  std::size_t watch = 0;  ///< 0 = one-shot analysis; N = monitoring epochs
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " (--report <file> | --workload <name>) [--pes 1,8,32]"
               " [--run N] [--threshold T] [--backend <name>]"
               " [--spec file.asl]... [--top N] [--list-workloads]"
               " [--list-backends]\n       backends:";
  for (const std::string& name : cosy::EvalBackend::names()) {
    std::cerr << ' ' << name;
  }
  std::cerr << '\n';
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw support::ImportError(support::cat("cannot open ", path));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--report") {
      options.report_path = next();
    } else if (arg == "--workload") {
      options.workload = next();
    } else if (arg == "--pes") {
      options.pes.clear();
      for (const std::string& pe : support::split(next(), ',')) {
        options.pes.push_back(std::atoi(pe.c_str()));
      }
    } else if (arg == "--run") {
      options.run = static_cast<std::size_t>(std::atoll(next().c_str()));
    } else if (arg == "--threshold") {
      options.threshold = std::atof(next().c_str());
    } else if (arg == "--strategy" || arg == "--backend") {
      const std::string value = next();
      // Legacy shorthands map onto registry names; anything else must be a
      // registered backend.
      if (value == "interpreter" || cosy::EvalBackend::exists(value)) {
        options.backend = value;
      } else if (value == "sql") {
        options.backend = "sql-pushdown";
      } else if (value == "whole") {
        options.backend = "sql-whole-condition";
      } else if (value == "client") {
        options.backend = "client-fetch";
      } else if (value == "bulk") {
        options.backend = "bulk-fetch";
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--spec") {
      options.extra_specs.push_back(next());
    } else if (arg == "--top") {
      options.top = static_cast<std::size_t>(std::atoll(next().c_str()));
    } else if (arg == "--format") {
      options.format = next();
      if (options.format != "text" && options.format != "markdown" &&
          options.format != "csv") {
        return usage(argv[0]);
      }
    } else if (arg == "--watch") {
      options.watch = static_cast<std::size_t>(std::atoll(next().c_str()));
    } else if (arg == "--list-workloads") {
      for (const auto& [name, factory] : perf::workloads::all_named()) {
        std::cout << name << '\n';
      }
      return 0;
    } else if (arg == "--list-backends") {
      for (const std::string& name : cosy::EvalBackend::names()) {
        std::cout << name << "  —  " << cosy::EvalBackend::describe(name)
                  << '\n';
      }
      return 0;
    } else {
      return usage(argv[0]);
    }
  }
  if (options.report_path.empty() == options.workload.empty()) {
    return usage(argv[0]);
  }

  try {
    // 1. Performance data: from a report file or a simulated workload.
    perf::ExperimentData data;
    if (!options.report_path.empty()) {
      data = perf::parse_report(read_file(options.report_path));
    } else {
      bool found = false;
      for (const auto& [name, factory] : perf::workloads::all_named()) {
        if (options.workload == name) {
          data = perf::simulate_experiment(factory(), options.pes);
          found = true;
        }
      }
      if (!found) {
        std::cerr << "unknown workload '" << options.workload
                  << "' (try --list-workloads)\n";
        return 2;
      }
    }

    // 2. Specification: the shipped documents plus any user ones.
    std::vector<asl::ast::SpecFile> specs;
    specs.push_back(asl::parse_spec_or_throw(cosy::cosy_model_source()));
    specs.push_back(asl::parse_spec_or_throw(cosy::cosy_properties_source()));
    specs.push_back(asl::parse_spec_or_throw(cosy::extended_properties_source()));
    for (const std::string& path : options.extra_specs) {
      specs.push_back(asl::parse_spec_or_throw(read_file(path)));
    }
    const asl::Model model = asl::analyze(asl::merge_specs(std::move(specs)));

    // 3. Populate store (+ database when the backend needs one).
    asl::ObjectStore store(model);
    const cosy::StoreHandles handles = cosy::build_store(store, data);

    // --watch: the online-monitoring loop instead of the one-shot report.
    // Member-partitioned timing junctions spread each region's samples
    // across partitions (so the whole-condition compiler's partition-union
    // rewrite fires), the store arrives through the bulk-ingest path, and
    // each epoch replays one partition's worth of timing links to emulate
    // new samples streaming in — cosy::Monitor then recomputes only the
    // dirtied partition and reports what changed.
    if (options.watch > 0) {
      if (!cosy::EvalBackend::requires_connection(options.backend)) {
        options.backend = "sql-whole-condition";
      }
      db::Database database;
      cosy::SchemaOptions schema;
      schema.junction_partitions.push_back({"Region", "TotTimes", "member", 8});
      schema.junction_partitions.push_back({"Region", "TypTimes", "member", 8});
      cosy::create_schema(database, model, schema);
      db::Connection conn(database, db::ConnectionProfile::in_memory());
      const cosy::ImportStats import =
          cosy::import_store(conn, store, /*batch_rows=*/64);
      std::cout << "bulk ingest: " << import.rows << " rows in "
                << import.statements << " statements\n";

      cosy::MonitorOptions monitor_options;
      monitor_options.backend = options.backend;
      cosy::Monitor monitor(model, conn, monitor_options);
      const std::size_t run_index = options.run.value_or(handles.runs.size() - 1);
      const asl::ObjectId run = handles.runs.at(run_index);
      const asl::ObjectId basis = handles.regions.at(handles.main_region);
      for (const asl::PropertyInfo& prop : model.properties()) {
        for (cosy::PropertyContext& ctx : cosy::enumerate_property_contexts(
                 model, handles, prop, run, basis)) {
          monitor.watch(prop, std::move(ctx.args), std::move(ctx.label));
        }
      }
      std::cout << monitor.evaluate().to_summary();

      const db::QueryResult links =
          conn.execute("SELECT owner, member FROM Region_TypTimes");
      const db::Table& junction = database.table("Region_TypTimes");
      for (std::size_t epoch = 1; epoch < options.watch; ++epoch) {
        const std::size_t target = (epoch - 1) % junction.partition_count();
        cosy::IngestBatch batch;
        for (const db::Row& row : links.rows) {
          if (junction.route(row[1]) != target) continue;
          batch.add("Region_TypTimes", {row[0], row[1]});
          if (batch.rows() >= 256) break;
        }
        monitor.ingest(batch);
        std::cout << monitor.evaluate().to_summary();
      }
      return 0;
    }

    std::unique_ptr<db::Database> database;
    std::unique_ptr<db::Connection> conn;
    if (cosy::EvalBackend::requires_connection(options.backend)) {
      database = std::make_unique<db::Database>();
      cosy::create_schema(*database, model);
      conn = std::make_unique<db::Connection>(
          *database, db::ConnectionProfile::in_memory());
      cosy::import_store(*conn, store);
    }

    // 4. Analyze and present.
    cosy::Analyzer analyzer(model, store, handles, conn.get());
    cosy::AnalyzerConfig config;
    config.backend = options.backend;
    config.problem_threshold = options.threshold;
    const std::size_t run = options.run.value_or(handles.runs.size() - 1);
    const cosy::AnalysisReport report = analyzer.analyze(run, config);
    if (options.format == "markdown") {
      std::cout << cosy::to_markdown(report, options.top);
    } else if (options.format == "csv") {
      std::cout << cosy::to_csv(report);
    } else {
      std::cout << report.to_table(options.top);
    }
    if (!report.not_applicable.empty()) {
      std::cout << report.not_applicable.size()
                << " context(s) not applicable (data gaps)\n";
    }
    if (report.sql_queries > 0) {
      std::cout << report.sql_queries << " SQL statements issued ("
                << options.backend << ")\n";
    }
    return report.tuned() ? 0 : 1;
  } catch (const support::Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 2;
  }
}
