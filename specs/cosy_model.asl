// COSY performance data model (paper §4.1, Figure 2).
//
// One Program has many ProgVersions; each version was exercised by several
// TestRuns and consists of Functions containing a static Region tree.
// Dynamic data is attached to the static structure as summary objects
// (TotalTiming / TypedTiming per region, CallTiming per call site), one per
// test run. The model is inheritance-free, which keeps every class a
// concrete table for the SQL strategies.

class Program {
  String Name;
  setof ProgVersion Versions;
}

class SourceCode {
  String Text;
}

class ProgVersion {
  DateTime Compilation;
  SourceCode Code;
  setof TestRun Runs;
  setof Function Functions;
}

class TestRun {
  DateTime Start;
  int NoPe;
  int Clockspeed;
}

class Function {
  String Name;
  setof Region Regions;
  setof FunctionCall Calls;
}

class Region {
  String Name;
  String Kind;
  Region ParentRegion;
  setof TotalTiming TotTimes;
  setof TypedTiming TypTimes;
}

// A static call site, owned by the *callee*'s Calls set (§4.1); it points
// back to the calling function and the region the call appears in.
class FunctionCall {
  Function Caller;
  Region CallingReg;
  setof CallTiming Sums;
}

class TotalTiming {
  TestRun Run;
  float Excl;
  float Incl;
  float Ovhd;
}

class TypedTiming {
  TestRun Run;
  TimingType Type;
  float Time;
}

class CallTiming {
  TestRun Run;
  float MinCalls;
  float MaxCalls;
  float MeanCalls;
  float StdevCalls;
  int MinCallsPe;
  int MaxCallsPe;
  float MinTime;
  float MaxTime;
  float MeanTime;
  float StdevTime;
  int MinTimePe;
  int MaxTimePe;
}

// The 25 typed-overhead categories of the Apprentice substrate ("Apprentice
// knows 25 such types", §4.1). Ordinals must match perf::TimingType; a test
// pins the two lists together.
enum TimingType {
  Barrier, SendMsg, RecvMsg, BroadcastMsg, ReduceMsg, GatherMsg, ScatterMsg,
  MsgWait, IORead, IOWrite, IOOpen, IOClose, IOSeek, ShmemGet, ShmemPut,
  LockAcquire, LockRelease, CriticalSection, Instrumentation, BufferCopy,
  MsgPack, MsgUnpack, CacheMiss, PageFault, IdleWait
};
