// Extended property suite: the retargetability claim of §6 made concrete.
// Eight further bottleneck classes over the same data model, defined purely
// in ASL — the analyzer, database schema, and SQL compiler are untouched.
// TypedTime sums one Apprentice overhead category for a (region, run).

const float CommBoundThreshold = 0.2;
const float PackThreshold = 0.04;
const float InstrumentationThreshold = 0.01;

float TypedTime(Region r, TestRun t, TimingType ty) =
    SUM(x.Time WHERE x IN r.TypTimes AND x.Run == t AND x.Type == ty);

// File I/O time of the region.
Property IOCost(Region r, TestRun t, Region Basis) {
  LET float IO = TypedTime(r, t, IORead) + TypedTime(r, t, IOWrite)
      + TypedTime(r, t, IOOpen) + TypedTime(r, t, IOClose)
      + TypedTime(r, t, IOSeek);
  IN
  CONDITION: IO > 0;
  CONFIDENCE: 1;
  SEVERITY: IO / Duration(Basis, t);
};

// Point-to-point message passing time (transfer, waiting, marshalling).
Property MessagePassingCost(Region r, TestRun t, Region Basis) {
  LET float Msg = TypedTime(r, t, SendMsg) + TypedTime(r, t, RecvMsg)
      + TypedTime(r, t, MsgWait) + TypedTime(r, t, MsgPack)
      + TypedTime(r, t, MsgUnpack);
  IN
  CONDITION: Msg > 0;
  CONFIDENCE: 1;
  SEVERITY: Msg / Duration(Basis, t);
};

// Collective operation time (broadcast/reduce/gather/scatter).
Property CollectiveCost(Region r, TestRun t, Region Basis) {
  LET float Coll = TypedTime(r, t, BroadcastMsg) + TypedTime(r, t, ReduceMsg)
      + TypedTime(r, t, GatherMsg) + TypedTime(r, t, ScatterMsg);
  IN
  CONDITION: Coll > 0;
  CONFIDENCE: 1;
  SEVERITY: Coll / Duration(Basis, t);
};

// The region spends a substantial share of its own duration communicating —
// either point-to-point or collectively.
Property CommunicationBound(Region r, TestRun t, Region Basis) {
  LET float P2P = TypedTime(r, t, SendMsg) + TypedTime(r, t, RecvMsg)
          + TypedTime(r, t, MsgWait);
      float Coll = TypedTime(r, t, BroadcastMsg) + TypedTime(r, t, ReduceMsg)
          + TypedTime(r, t, GatherMsg) + TypedTime(r, t, ScatterMsg);
  IN
  CONDITION: (p2p) P2P > CommBoundThreshold * Duration(r, t)
          OR (coll) Coll > CommBoundThreshold * Duration(r, t);
  CONFIDENCE: MAX((p2p) -> 0.9, (coll) -> 0.85);
  SEVERITY: MAX((p2p) -> P2P / Duration(Basis, t),
                (coll) -> Coll / Duration(Basis, t));
};

// Marshalling dominates: many small messages get packed and unpacked.
Property SmallMessageOverhead(Region r, TestRun t, Region Basis) {
  LET float Pack = TypedTime(r, t, MsgPack) + TypedTime(r, t, MsgUnpack);
      float P2P = TypedTime(r, t, SendMsg) + TypedTime(r, t, RecvMsg)
          + TypedTime(r, t, MsgWait);
  IN
  CONDITION: Pack > PackThreshold * P2P;
  CONFIDENCE: 0.75;
  SEVERITY: Pack / Duration(Basis, t);
};

// The monitoring itself perturbs the region noticeably.
Property InstrumentationOverhead(Region r, TestRun t, Region Basis) {
  LET float Instr = TypedTime(r, t, Instrumentation);
  IN
  CONDITION: Instr > InstrumentationThreshold * Duration(r, t);
  CONFIDENCE: 0.7;
  SEVERITY: Instr / Duration(Basis, t);
};

// PEs sit idle waiting for work.
Property IdleWaitCost(Region r, TestRun t, Region Basis) {
  LET float Idle = TypedTime(r, t, IdleWait);
  IN
  CONDITION: Idle > 0;
  CONFIDENCE: 1;
  SEVERITY: Idle / Duration(Basis, t);
};

// The *number* of calls varies across PEs: work distribution is skewed even
// where the per-call time is uniform.
Property ImbalancedPassCounts(FunctionCall Call, TestRun t, Region Basis) {
  LET CallTiming ct = UNIQUE({c IN Call.Sums WITH c.Run == t});
  IN
  CONDITION: ct.StdevCalls > ImbalanceThreshold * ct.MeanCalls;
  CONFIDENCE: 0.8;
  SEVERITY: ct.MeanTime / Duration(Basis, t);
};
