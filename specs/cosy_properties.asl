// The paper's property suite (§4.2, Figure 1): the five performance
// properties COSY ships with, plus the helper functions they build on.
// Severities are normalized by the duration of a basis region — by default
// the whole program — so they are comparable across properties ("ranked
// according to their severity").

const float ImbalanceThreshold = 0.25;

// The per-run timing summary of a region. UNIQUE fails (-> the property is
// not applicable) when the region was not measured in that run.
TotalTiming Summary(Region r, TestRun t) =
    UNIQUE({s IN r.TotTimes WITH s.Run == t});

float Duration(Region r, TestRun t) = Summary(r, t).Incl;

// Figure 1: the total cost of a test run — how much longer the region took
// than in the run with the fewest PEs (the reference run).
Property SublinearSpeedup(Region r, TestRun t, Region Basis) {
  LET TotalTiming MinPeSum = UNIQUE({sum IN r.TotTimes WITH sum.Run.NoPe ==
        MIN(s.Run.NoPe WHERE s IN r.TotTimes)});
      float TotalCost = Duration(r, t) - Duration(r, MinPeSum.Run);
  IN
  CONDITION: TotalCost > 0;
  CONFIDENCE: 1;
  SEVERITY: TotalCost / Duration(Basis, t);
};

// The share of the cost Apprentice measured directly (overhead time).
Property MeasuredCost(Region r, TestRun t, Region Basis) {
  LET float Cost = Summary(r, t).Ovhd;
  IN
  CONDITION: Cost > 0;
  CONFIDENCE: 1;
  SEVERITY: Cost / Duration(Basis, t);
};

// The remainder of the total cost that no instrumentation accounts for.
Property UnmeasuredCost(Region r, TestRun t, Region Basis) {
  LET TotalTiming MinPeSum = UNIQUE({sum IN r.TotTimes WITH sum.Run.NoPe ==
        MIN(s.Run.NoPe WHERE s IN r.TotTimes)});
      float Unmeasured = Duration(r, t) - Duration(r, MinPeSum.Run)
          - Summary(r, t).Ovhd;
  IN
  CONDITION: Unmeasured > 0;
  CONFIDENCE: 1;
  SEVERITY: Unmeasured / Duration(Basis, t);
};

// Synchronization cost: total barrier time of the region in this run.
Property SyncCost(Region r, TestRun t, Region Basis) {
  LET float Barrier = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t
        AND tt.Type == Barrier);
  IN
  CONDITION: Barrier > 0;
  CONFIDENCE: 1;
  SEVERITY: Barrier / Duration(Basis, t);
};

// Figure 1: the runtime of a called function varies too much across the
// PEs — the classic load imbalance signature.
Property LoadImbalance(FunctionCall Call, TestRun t, Region Basis) {
  LET CallTiming ct = UNIQUE({c IN Call.Sums WITH c.Run == t});
      float Dev = ct.StdevTime;
      float Mean = ct.MeanTime;
  IN
  CONDITION: Dev > ImbalanceThreshold * Mean;
  CONFIDENCE: 1;
  SEVERITY: Mean / Duration(Basis, t);
};
