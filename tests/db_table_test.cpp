// Direct storage-layer tests: Table heap, tombstones, index maintenance,
// ordered-index range scans, and schema DDL round-trips — below the SQL
// surface that db_exec_test covers.

#include <gtest/gtest.h>

#include "db/database.hpp"
#include "db/table.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace kdb = kojak::db;
using kdb::ColumnDef;
using kdb::Index;
using kdb::Table;
using kdb::TableSchema;
using kdb::Value;
using kdb::ValueType;
using kojak::support::EvalError;

namespace {

TableSchema people_schema() {
  return TableSchema(
      "people", {ColumnDef{"id", ValueType::kInt, false, true},
                 ColumnDef{"name", ValueType::kString, true, false},
                 ColumnDef{"age", ValueType::kInt, true, false}});
}

Table seeded_table() {
  Table table(people_schema());
  table.insert({Value::integer(1), Value::text("ada"), Value::integer(36)});
  table.insert({Value::integer(2), Value::text("bob"), Value::integer(25)});
  table.insert({Value::integer(3), Value::text("cyd"), Value::integer(36)});
  return table;
}

}  // namespace

TEST(Schema, Lookup) {
  const TableSchema schema = people_schema();
  EXPECT_EQ(schema.name(), "people");
  EXPECT_EQ(schema.column_count(), 3u);
  EXPECT_EQ(schema.find_column("NAME"), 1u);  // case-insensitive
  EXPECT_FALSE(schema.find_column("nope").has_value());
  EXPECT_EQ(schema.primary_key(), 0u);
}

TEST(Schema, RejectsDuplicateColumns) {
  EXPECT_THROW(TableSchema("t", {ColumnDef{"a", ValueType::kInt, true, false},
                                 ColumnDef{"A", ValueType::kInt, true, false}}),
               EvalError);
}

TEST(Schema, DdlRoundTrip) {
  // to_ddl must re-create an equivalent schema through the SQL front end.
  kdb::Database db;
  db.execute(people_schema().to_ddl());
  const Table& table = db.table("people");
  EXPECT_EQ(table.schema().column_count(), 3u);
  EXPECT_TRUE(table.schema().column(0).primary_key);
  EXPECT_FALSE(table.schema().column(0).nullable);
  EXPECT_TRUE(table.schema().column(1).nullable);
}

TEST(Table, InsertValidates) {
  Table table = seeded_table();
  EXPECT_EQ(table.live_row_count(), 3u);
  // Arity.
  EXPECT_THROW(table.insert({Value::integer(9)}), EvalError);
  // Primary key NULL.
  EXPECT_THROW(
      table.insert({Value::null(), Value::text("x"), Value::integer(1)}),
      EvalError);
  // Duplicate primary key.
  EXPECT_THROW(
      table.insert({Value::integer(1), Value::text("dup"), Value::integer(1)}),
      EvalError);
  // Type coercion int -> double is allowed, string -> int is not.
  EXPECT_THROW(
      table.insert({Value::integer(4), Value::integer(42), Value::integer(1)}),
      EvalError);
}

TEST(Table, TombstonesKeepIdsStable) {
  Table table = seeded_table();
  table.erase(1);
  EXPECT_EQ(table.live_row_count(), 2u);
  EXPECT_EQ(table.heap_size(), 3u);
  EXPECT_FALSE(table.is_live(1));
  EXPECT_TRUE(table.is_live(2));
  EXPECT_EQ(table.live_rows(), (std::vector<std::size_t>{0, 2}));
  // Double-erase is an error.
  EXPECT_THROW(table.erase(1), EvalError);
  // The key of the erased row is reusable.
  table.insert({Value::integer(2), Value::text("bob2"), Value::integer(26)});
  EXPECT_EQ(table.live_row_count(), 3u);
}

TEST(Table, UpdateRevalidates) {
  Table table = seeded_table();
  table.update(0, {Value::integer(1), Value::text("ada!"), Value::null()});
  EXPECT_EQ(table.row(0)[1].as_string(), "ada!");
  EXPECT_TRUE(table.row(0)[2].is_null());
  EXPECT_THROW(
      table.update(0, {Value::null(), Value::text("x"), Value::null()}),
      EvalError);
}

TEST(Index, HashEqualRange) {
  Table table = seeded_table();
  table.create_index("by_age", 2, Index::Kind::kHash);
  const Index* index = table.find_index_on(2);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->equal_range(Value::integer(36)).size(), 2u);
  EXPECT_EQ(index->equal_range(Value::integer(99)).size(), 0u);
}

TEST(Index, MaintainedAcrossMutations) {
  Table table = seeded_table();
  table.create_index("by_age", 2, Index::Kind::kHash);
  const Index* index = table.find_index_on(2);
  table.erase(0);  // ada, 36
  EXPECT_EQ(index->equal_range(Value::integer(36)).size(), 1u);
  table.update(1, {Value::integer(2), Value::text("bob"), Value::integer(36)});
  EXPECT_EQ(index->equal_range(Value::integer(36)).size(), 2u);
  EXPECT_EQ(index->equal_range(Value::integer(25)).size(), 0u);
}

TEST(Index, BuiltOverExistingRows) {
  Table table = seeded_table();
  // Index created after inserts must see them.
  table.create_index("late", 1, Index::Kind::kHash);
  EXPECT_EQ(table.find_index_on(1)->equal_range(Value::text("cyd")).size(), 1u);
}

TEST(Index, OrderedRangeScan) {
  Table table(people_schema());
  for (int i = 0; i < 20; ++i) {
    table.insert({Value::integer(i), Value::text("p"), Value::integer(i * 10)});
  }
  table.create_index("ord", 2, Index::Kind::kOrdered);
  const Index* index = table.find_index_on(2);
  const auto hits = index->range(Value::integer(35), Value::integer(90));
  // ages 40,50,60,70,80,90 -> rows 4..9
  EXPECT_EQ(hits.size(), 6u);
  // Hash indexes reject range scans.
  table.create_index("h", 0, Index::Kind::kHash);
  EXPECT_THROW((void)table.find_index_on(0)->range(Value::integer(0),
                                                   Value::integer(5)),
               EvalError);
}

TEST(Index, OrderedViaSqlSurface) {
  kdb::Database db;
  db.execute(
      "CREATE TABLE t (k INTEGER, v TEXT);"
      "CREATE ORDERED INDEX ord_k ON t (k);"
      "INSERT INTO t VALUES (5, 'a'), (1, 'b'), (3, 'c'), (5, 'd')");
  // Equality probes work through either index kind.
  EXPECT_EQ(db.execute("SELECT v FROM t WHERE k = 5").row_count(), 2u);
}

TEST(Index, CreateIndexValidatesColumn) {
  Table table = seeded_table();
  EXPECT_THROW(table.create_index("bad", 9, Index::Kind::kHash), EvalError);
}

TEST(QueryResult, Helpers) {
  kdb::QueryResult result;
  result.columns = {"a", "b"};
  result.rows.push_back({Value::integer(1), Value::text("x")});
  EXPECT_EQ(result.column_index("B"), 1u);
  EXPECT_THROW((void)result.column_index("c"), EvalError);
  EXPECT_THROW((void)result.scalar(), EvalError);  // 1x2, not scalar

  kdb::QueryResult scalar;
  scalar.columns = {"n"};
  scalar.rows.push_back({Value::integer(7)});
  EXPECT_EQ(scalar.scalar().as_int(), 7);

  kdb::QueryResult empty;
  empty.columns = {"n"};
  EXPECT_TRUE(empty.scalar().is_null());

  const std::string table_text = result.to_table();
  EXPECT_NE(table_text.find("a | b"), std::string::npos);
  EXPECT_NE(table_text.find("1 | x"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Ordered-index range access path through the SQL surface

namespace {

/// Builds two identical databases, one with an ordered index; every range
/// query must agree between the indexed and scan paths.
struct RangePair {
  kdb::Database indexed;
  kdb::Database plain;

  RangePair() {
    for (kdb::Database* db : {&indexed, &plain}) {
      db->execute("CREATE TABLE t (id INTEGER PRIMARY KEY, k DOUBLE)");
    }
    indexed.execute("CREATE ORDERED INDEX ord_k ON t (k)");
    for (int i = 0; i < 200; ++i) {
      const std::string insert = kojak::support::cat(
          "INSERT INTO t VALUES (", i, ", ",
          i % 13 == 0 ? "NULL" : std::to_string((i * 37) % 100), ")");
      indexed.execute(insert);
      plain.execute(insert);
    }
  }
};

}  // namespace

TEST(RangeScan, MatchesFullScanOnEveryOperator) {
  RangePair pair;
  const char* queries[] = {
      "SELECT id FROM t WHERE k > 30 ORDER BY id",
      "SELECT id FROM t WHERE k >= 30 ORDER BY id",
      "SELECT id FROM t WHERE k < 12 ORDER BY id",
      "SELECT id FROM t WHERE k <= 12 ORDER BY id",
      "SELECT id FROM t WHERE k > 20 AND k < 40 ORDER BY id",
      "SELECT id FROM t WHERE k >= 20 AND k <= 20 ORDER BY id",
      "SELECT id FROM t WHERE 50 < k ORDER BY id",       // mirrored operand
      "SELECT id FROM t WHERE k > 25 AND id > 100 ORDER BY id",
      "SELECT COUNT(*) FROM t WHERE k > 90",
  };
  for (const char* query : queries) {
    const kdb::QueryResult a = pair.indexed.execute(query);
    const kdb::QueryResult b = pair.plain.execute(query);
    ASSERT_EQ(a.row_count(), b.row_count()) << query;
    for (std::size_t r = 0; r < a.row_count(); ++r) {
      EXPECT_EQ(a.at(r, 0).as_int(), b.at(r, 0).as_int()) << query;
    }
  }
}

TEST(RangeScan, NullKeysNeverMatchRanges) {
  RangePair pair;
  // NULL k rows must not appear however the range is phrased.
  const auto result =
      pair.indexed.execute("SELECT COUNT(*) FROM t WHERE k >= 0");
  const auto nulls =
      pair.indexed.execute("SELECT COUNT(*) FROM t WHERE k IS NULL");
  EXPECT_EQ(result.scalar().as_int() + nulls.scalar().as_int(), 200);
}

TEST(RangeScan, RangeOpenDirect) {
  Table table(people_schema());
  for (int i = 0; i < 10; ++i) {
    table.insert({Value::integer(i), Value::text("p"), Value::integer(i)});
  }
  table.create_index("ord", 2, Index::Kind::kOrdered);
  const Index* index = table.find_index_on(2);
  const Value lo = Value::integer(7);
  EXPECT_EQ(index->range_open(&lo, nullptr).size(), 3u);  // 7, 8, 9
  const Value hi = Value::integer(2);
  EXPECT_EQ(index->range_open(nullptr, &hi).size(), 3u);  // 0, 1, 2
  EXPECT_EQ(index->range_open(nullptr, nullptr).size(), 10u);
}

// ---------------------------------------------------------------------------
// NULL keys in ordered-index range scans

TEST(Index, RangeOpenExcludesNullKeys) {
  Table table(people_schema());
  for (int i = 0; i < 12; ++i) {
    table.insert({Value::integer(i), Value::text("p"),
                  i % 3 == 0 ? Value::null() : Value::integer(i)});
  }
  table.create_index("ord", 2, Index::Kind::kOrdered);
  const Index* index = table.find_index_on(2);
  // 4 of 12 keys are NULL; no range phrasing may ever return them.
  EXPECT_EQ(index->range_open(nullptr, nullptr).size(), 8u);
  const Value lo = Value::integer(0);
  EXPECT_EQ(index->range_open(&lo, nullptr).size(), 8u);
  const Value hi = Value::integer(100);
  EXPECT_EQ(index->range_open(nullptr, &hi).size(), 8u);
  EXPECT_EQ(index->range(lo, hi).size(), 8u);
  for (const std::size_t id : index->range_open(nullptr, nullptr)) {
    EXPECT_FALSE(table.row(id)[2].is_null());
  }
}

// ---------------------------------------------------------------------------
// Partitioned storage

namespace {

/// people schema hash-partitioned on the age column (index 2).
TableSchema hash_partitioned_schema(std::size_t partitions) {
  TableSchema schema = people_schema();
  kdb::PartitionSpec spec;
  spec.method = kdb::PartitionSpec::Method::kHash;
  spec.column = "age";
  spec.partitions = partitions;
  schema.set_partition(std::move(spec));
  return schema;
}

}  // namespace

TEST(Partition, RoutingIsDeterministicAndNullSafe) {
  Table table(hash_partitioned_schema(4));
  EXPECT_EQ(table.partition_count(), 4u);
  EXPECT_EQ(table.partition_column(), 2u);
  for (int v = 0; v < 50; ++v) {
    const std::size_t p = table.route(Value::integer(v));
    EXPECT_LT(p, 4u);
    EXPECT_EQ(p, table.route(Value::integer(v)));
  }
  EXPECT_EQ(table.route(Value::null()), 0u);
}

TEST(Partition, RangeRoutingFollowsBounds) {
  TableSchema schema = people_schema();
  kdb::PartitionSpec spec;
  spec.method = kdb::PartitionSpec::Method::kRange;
  spec.column = "age";
  spec.range_bounds = {Value::integer(10), Value::integer(20)};
  schema.set_partition(std::move(spec));
  Table table(std::move(schema));
  EXPECT_EQ(table.partition_count(), 3u);
  EXPECT_EQ(table.route(Value::integer(-5)), 0u);
  EXPECT_EQ(table.route(Value::integer(10)), 0u);  // inclusive upper bound
  EXPECT_EQ(table.route(Value::integer(11)), 1u);
  EXPECT_EQ(table.route(Value::integer(20)), 1u);
  EXPECT_EQ(table.route(Value::integer(21)), 2u);  // overflow partition
  EXPECT_EQ(table.route(Value::null()), 0u);
}

TEST(Partition, BoundsMustAscend) {
  TableSchema schema = people_schema();
  kdb::PartitionSpec spec;
  spec.method = kdb::PartitionSpec::Method::kRange;
  spec.column = "age";
  spec.range_bounds = {Value::integer(20), Value::integer(10)};
  EXPECT_THROW(schema.set_partition(std::move(spec)), EvalError);
  kdb::PartitionSpec unknown;
  unknown.column = "nope";
  unknown.partitions = 2;
  EXPECT_THROW(schema.set_partition(std::move(unknown)), EvalError);
}

TEST(Partition, RowIdsEncodePartitionAndStayStable) {
  Table table(hash_partitioned_schema(4));
  std::vector<std::size_t> ids;
  for (int i = 0; i < 40; ++i) {
    ids.push_back(table.insert(
        {Value::integer(i), Value::text("p"), Value::integer(i * 7)}));
  }
  EXPECT_EQ(table.live_row_count(), 40u);
  EXPECT_EQ(table.heap_size(), 40u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    // The id's partition bits must agree with the router.
    EXPECT_EQ(kdb::row_id_partition(ids[i]),
              table.route(Value::integer(static_cast<int>(i) * 7)));
    EXPECT_TRUE(table.is_live(ids[i]));
    EXPECT_EQ(table.row(ids[i])[0].as_int(), static_cast<int>(i));
  }
  // Tombstoning one row leaves every other id untouched.
  table.erase(ids[17]);
  EXPECT_FALSE(table.is_live(ids[17]));
  EXPECT_EQ(table.live_row_count(), 39u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i == 17) continue;
    EXPECT_TRUE(table.is_live(ids[i]));
  }
  // live_rows is partition-major: partition indices never decrease.
  const std::vector<std::size_t> live = table.live_rows();
  EXPECT_EQ(live.size(), 39u);
  for (std::size_t i = 1; i < live.size(); ++i) {
    EXPECT_LE(kdb::row_id_partition(live[i - 1]),
              kdb::row_id_partition(live[i]));
  }
}

TEST(Partition, SinglePartitionKeepsPlainOffsets) {
  // Partition 0 encodes to the local offset, so an unpartitioned table (and
  // partition 0 of any table) keeps the seed's id contract bit for bit.
  Table table = seeded_table();
  EXPECT_EQ(table.partition_count(), 1u);
  EXPECT_EQ(table.insert({Value::integer(9), Value::text("x"),
                          Value::integer(1)}),
            3u);
}

TEST(Partition, IndexMaintainedAcrossMutations) {
  Table table(hash_partitioned_schema(4));
  table.create_index("by_name", 1, Index::Kind::kHash);
  for (int i = 0; i < 30; ++i) {
    table.insert({Value::integer(i), Value::text(i % 2 == 0 ? "even" : "odd"),
                  Value::integer(i)});
  }
  const Index* index = table.find_index_on(1);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->shard_count(), 4u);
  EXPECT_EQ(index->equal_range(Value::text("even")).size(), 15u);

  // Erase through the index-maintenance path.
  const auto evens = index->equal_range(Value::text("even"));
  table.erase(evens[0]);
  EXPECT_EQ(index->equal_range(Value::text("even")).size(), 14u);

  // In-place update (partition column unchanged) re-keys the index.
  const auto odds = index->equal_range(Value::text("odd"));
  const kdb::Row& row = table.row(odds[0]);
  table.update(odds[0],
               {row[0], Value::text("even"), row[2]});
  EXPECT_EQ(index->equal_range(Value::text("even")).size(), 15u);
  EXPECT_EQ(index->equal_range(Value::text("odd")).size(), 14u);
}

TEST(Partition, UpdateMovesRowAcrossPartitions) {
  Table table(hash_partitioned_schema(8));
  table.create_index("by_name", 1, Index::Kind::kHash);
  const std::size_t id =
      table.insert({Value::integer(1), Value::text("mover"), Value::integer(3)});
  // Find an age value that routes to a different partition than 3 does.
  int other = -1;
  for (int v = 4; v < 100; ++v) {
    if (table.route(Value::integer(v)) != kdb::row_id_partition(id)) {
      other = v;
      break;
    }
  }
  ASSERT_NE(other, -1);
  table.update(id, {Value::integer(1), Value::text("mover"),
                    Value::integer(other)});
  // The old id died; the row lives on in the target partition and the
  // index followed it.
  EXPECT_FALSE(table.is_live(id));
  EXPECT_EQ(table.live_row_count(), 1u);
  const auto hits = table.find_index_on(1)->equal_range(Value::text("mover"));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(kdb::row_id_partition(hits[0]),
            table.route(Value::integer(other)));
  EXPECT_EQ(table.row(hits[0])[2].as_int(), other);
}

TEST(Partition, PrimaryKeyUniqueAcrossPartitions) {
  // The PK is NOT the partition column: a duplicate key that would land in
  // a different partition must still be rejected (with and without an
  // index on the key).
  Table plain(hash_partitioned_schema(4));
  plain.insert({Value::integer(1), Value::text("a"), Value::integer(10)});
  EXPECT_THROW(
      plain.insert({Value::integer(1), Value::text("b"), Value::integer(11)}),
      EvalError);
  Table indexed(hash_partitioned_schema(4));
  indexed.create_index("pk", 0, Index::Kind::kHash);
  indexed.insert({Value::integer(1), Value::text("a"), Value::integer(10)});
  EXPECT_THROW(
      indexed.insert({Value::integer(1), Value::text("b"), Value::integer(11)}),
      EvalError);
}

TEST(Partition, OrderedIndexMergesShardsInKeyOrder) {
  // Ordered index on the PK of a table hash-partitioned on age: range
  // results must come back in global key order even though the keys are
  // spread over four shards, with NULL range keys excluded per shard.
  Table table(hash_partitioned_schema(4));
  table.create_index("ord_id", 0, Index::Kind::kOrdered);
  for (int i = 29; i >= 0; --i) {
    table.insert({Value::integer(i), Value::text("p"), Value::integer(i * 13)});
  }
  const Index* index = table.find_index_on(0);
  const Value lo = Value::integer(5);
  const Value hi = Value::integer(24);
  const auto hits = index->range(lo, hi);
  ASSERT_EQ(hits.size(), 20u);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(table.row(hits[i])[0].as_int(),
              static_cast<std::int64_t>(i) + 5);
  }
}

TEST(Partition, ForEachLiveRowMatchesLiveRows) {
  Table table(hash_partitioned_schema(4));
  for (int i = 0; i < 20; ++i) {
    table.insert({Value::integer(i), Value::text("p"), Value::integer(i)});
  }
  const auto all = table.live_rows();
  table.erase(all[3]);
  table.erase(all[11]);

  std::vector<std::size_t> visited;
  table.for_each_live_row([&](std::size_t row_id, const kdb::Row& row) {
    EXPECT_EQ(&row, &table.row(row_id));  // zero-copy: the heap row itself
    visited.push_back(row_id);
  });
  EXPECT_EQ(visited, table.live_rows());

  // The per-partition visitor covers exactly the partition-major stream.
  std::vector<std::size_t> by_partition;
  for (std::size_t p = 0; p < table.partition_count(); ++p) {
    table.for_each_live_row_in(p, [&](std::size_t row_id, const kdb::Row&) {
      by_partition.push_back(row_id);
    });
    EXPECT_EQ(table.live_rows_in(p).size(),
              table.partition_live_count(p));
  }
  EXPECT_EQ(by_partition, visited);
}

TEST(Partition, DdlRoundTrip) {
  kdb::Database db;
  db.execute(
      "CREATE TABLE ph (k INTEGER, v TEXT) PARTITION BY HASH(k) PARTITIONS 8");
  db.execute(
      "CREATE TABLE pr (k INTEGER, v TEXT) "
      "PARTITION BY RANGE(k) VALUES (10, 20)");
  const Table& ph = db.table("ph");
  EXPECT_EQ(ph.partition_count(), 8u);
  const Table& pr = db.table("pr");
  EXPECT_EQ(pr.partition_count(), 3u);

  // to_ddl re-creates equivalent partitioned schemas through the front end.
  kdb::Database copy;
  copy.execute(ph.schema().to_ddl());
  copy.execute(pr.schema().to_ddl());
  EXPECT_EQ(copy.table("ph").partition_count(), 8u);
  EXPECT_EQ(copy.table("pr").partition_count(), 3u);
  ASSERT_TRUE(copy.table("pr").schema().partition().has_value());
  EXPECT_EQ(copy.table("pr").schema().partition()->range_bounds.size(), 2u);
  for (int v : {-3, 0, 10, 15, 20, 99}) {
    EXPECT_EQ(copy.table("pr").route(Value::integer(v)),
              pr.route(Value::integer(v)))
        << v;
  }
}

TEST(Partition, VersionsBumpTheOwningPartitionOnEveryMutation) {
  Table table(hash_partitioned_schema(4));
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(table.partition_version(p), 0u);
  }
  EXPECT_EQ(table.table_version(), 0u);

  // Insert bumps exactly the routed partition.
  const std::size_t id =
      table.insert({Value::integer(1), Value::text("ada"), Value::integer(3)});
  const std::size_t home = table.route(Value::integer(3));
  EXPECT_EQ(table.partition_version(home), 1u);
  EXPECT_EQ(table.table_version(), 1u);

  // In-place update (partition column unchanged) bumps the same partition
  // once.
  table.update(id, {Value::integer(1), Value::text("eda"), Value::integer(3)});
  EXPECT_EQ(table.partition_version(home), 2u);
  EXPECT_EQ(table.table_version(), 2u);

  // Cross-partition move bumps BOTH sides: the source (row leaves) and the
  // target (row arrives).
  int other = -1;
  for (int v = 4; v < 100; ++v) {
    if (table.route(Value::integer(v)) != home) {
      other = v;
      break;
    }
  }
  ASSERT_NE(other, -1);
  table.update(id, {Value::integer(1), Value::text("eda"),
                    Value::integer(other)});
  const std::size_t target = table.route(Value::integer(other));
  EXPECT_EQ(table.partition_version(home), 3u);
  EXPECT_EQ(table.partition_version(target), 1u);
  EXPECT_EQ(table.table_version(), 4u);

  // Erase bumps the partition the row died in.
  const auto live = table.live_rows();
  ASSERT_EQ(live.size(), 1u);
  table.erase(live[0]);
  EXPECT_EQ(table.partition_version(target), 2u);
  EXPECT_EQ(table.table_version(), 5u);
  // Untouched partitions never moved.
  for (std::size_t p = 0; p < 4; ++p) {
    if (p != home && p != target) EXPECT_EQ(table.partition_version(p), 0u);
  }
}

TEST(Partition, StoreEpochSumsTableVersionsAndNeverDecreases) {
  kdb::Database db;
  db.execute(
      "CREATE TABLE a (k INTEGER, v TEXT) PARTITION BY HASH(k) PARTITIONS 4");
  db.execute("CREATE TABLE b (k INTEGER)");
  EXPECT_EQ(db.store_epoch(), 0u);

  std::uint64_t last = 0;
  for (int i = 0; i < 6; ++i) {
    db.execute(kojak::support::cat("INSERT INTO a VALUES (", i, ", 'x')"));
    const std::uint64_t now = db.store_epoch();
    EXPECT_GT(now, last);  // every mutation advances the epoch
    last = now;
  }
  db.execute("INSERT INTO b VALUES (9)");
  EXPECT_EQ(db.store_epoch(), last + 1);
  db.execute("DELETE FROM a WHERE k = 0");
  EXPECT_EQ(db.store_epoch(), last + 2);
  EXPECT_EQ(db.store_epoch(),
            db.table("a").table_version() + db.table("b").table_version());
}

// ---------------------------------------------------------------------------
// Columnar storage: typed column vectors + validity bitmap per partition,
// lane-aligned with the row heap (lane i == heap row i, tombstones and all)

namespace {

TableSchema columnar_schema(std::size_t partitions) {
  TableSchema schema = hash_partitioned_schema(partitions);
  schema.set_storage(kdb::StorageMode::kColumnar);
  return schema;
}

}  // namespace

TEST(ColumnarTable, ColumnSlicesMirrorTheHeapIncludingNulls) {
  Table table(columnar_schema(4));
  std::vector<std::size_t> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(table.insert(
        {Value::integer(i),
         i % 5 == 0 ? Value::null() : Value::text(kojak::support::cat("n", i)),
         Value::integer(i % 7)}));
  }

  // Every live row reads back identically through its column lanes.
  for (const std::size_t id : ids) {
    const std::size_t p = kdb::row_id_partition(id);
    const std::size_t lane = kdb::row_id_local(id);
    const kdb::Row& row = table.row(id);
    const Table::ColumnSlice names = table.column_slice(p, 1);
    const Table::ColumnSlice ages = table.column_slice(p, 2);
    ASSERT_EQ(names.size, table.partition_heap_size(p));
    if (row[1].is_null()) {
      EXPECT_EQ(names.valid[lane], 0);
    } else {
      EXPECT_EQ(names.valid[lane], 1);
      EXPECT_EQ(names.strs[lane], row[1].as_string());
    }
    EXPECT_EQ(ages.ints[lane], row[2].as_int());
    EXPECT_EQ(table.live_bits(p)[lane], 1);
  }

  // Erase leaves the lane in place; only the live bitmap changes.
  const std::size_t victim = ids[3];
  const std::size_t vp = kdb::row_id_partition(victim);
  const std::size_t vlane = kdb::row_id_local(victim);
  const std::size_t heap_before = table.partition_heap_size(vp);
  table.erase(victim);
  EXPECT_EQ(table.live_bits(vp)[vlane], 0);
  EXPECT_EQ(table.partition_heap_size(vp), heap_before);
  EXPECT_EQ(table.column_slice(vp, 2).size, heap_before);

  // In-place update overwrites the lane, including null <-> value flips.
  const std::size_t target = ids[5];  // name was NULL (5 % 5 == 0)
  const std::size_t tp = kdb::row_id_partition(target);
  const std::size_t tlane = kdb::row_id_local(target);
  ASSERT_EQ(table.column_slice(tp, 1).valid[tlane], 0);
  table.update(target,
               {Value::integer(5), Value::text("filled"), Value::integer(5 % 7)});
  EXPECT_EQ(table.column_slice(tp, 1).valid[tlane], 1);
  EXPECT_EQ(table.column_slice(tp, 1).strs[tlane], "filled");
  table.update(target,
               {Value::integer(5), Value::null(), Value::integer(5 % 7)});
  EXPECT_EQ(table.column_slice(tp, 1).valid[tlane], 0);

  // Row tables have no column store to slice.
  Table row_table(hash_partitioned_schema(2));
  row_table.insert({Value::integer(1), Value::text("x"), Value::integer(1)});
  EXPECT_FALSE(row_table.columnar());
  EXPECT_THROW((void)row_table.column_slice(0, 1), EvalError);
}

TEST(ColumnarTable, IndexMaintainedAcrossMutations) {
  Table table(columnar_schema(4));
  table.create_index("by_name", 1, Index::Kind::kHash);
  for (int i = 0; i < 30; ++i) {
    table.insert({Value::integer(i), Value::text(i % 2 == 0 ? "even" : "odd"),
                  Value::integer(i)});
  }
  const Index* index = table.find_index_on(1);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->equal_range(Value::text("even")).size(), 15u);

  const auto evens = index->equal_range(Value::text("even"));
  table.erase(evens[0]);
  EXPECT_EQ(index->equal_range(Value::text("even")).size(), 14u);

  // Re-keying through update keeps index and column lanes in step.
  const auto odds = index->equal_range(Value::text("odd"));
  const kdb::Row& row = table.row(odds[0]);
  const std::size_t lane = kdb::row_id_local(odds[0]);
  table.update(odds[0], {row[0], Value::text("even"), row[2]});
  EXPECT_EQ(index->equal_range(Value::text("even")).size(), 15u);
  EXPECT_EQ(
      table.column_slice(kdb::row_id_partition(odds[0]), 1).strs[lane],
      "even");
}

TEST(ColumnarTable, UpdateMovesLanesAcrossPartitions) {
  Table table(columnar_schema(8));
  table.create_index("by_name", 1, Index::Kind::kHash);
  const std::size_t id =
      table.insert({Value::integer(1), Value::text("mover"), Value::integer(3)});
  int other = -1;
  for (int v = 4; v < 100; ++v) {
    if (table.route(Value::integer(v)) != kdb::row_id_partition(id)) {
      other = v;
      break;
    }
  }
  ASSERT_NE(other, -1);
  table.update(id, {Value::integer(1), Value::text("mover"),
                    Value::integer(other)});

  // The source lane is tombstoned, the target partition grew a fresh lane
  // carrying the new values, and the index follows the move.
  EXPECT_FALSE(table.is_live(id));
  EXPECT_EQ(table.live_bits(kdb::row_id_partition(id))[kdb::row_id_local(id)],
            0);
  const auto hits = table.find_index_on(1)->equal_range(Value::text("mover"));
  ASSERT_EQ(hits.size(), 1u);
  const std::size_t np = kdb::row_id_partition(hits[0]);
  const std::size_t nlane = kdb::row_id_local(hits[0]);
  EXPECT_EQ(np, table.route(Value::integer(other)));
  EXPECT_EQ(table.column_slice(np, 2).ints[nlane], other);
  EXPECT_EQ(table.column_slice(np, 1).strs[nlane], "mover");
  EXPECT_EQ(table.live_bits(np)[nlane], 1);
}
