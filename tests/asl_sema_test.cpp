#include <gtest/gtest.h>

#include "asl/sema.hpp"
#include "support/error.hpp"

namespace asl = kojak::asl;
using asl::TypeKind;
using kojak::support::SemaError;

namespace {

constexpr const char* kModel = R"(
enum Color { Red, Green, Blue };
class Leaf { int N; float X; String S; Color C; }
class Node { String Name; Node Next; setof Leaf Leaves; }
)";

asl::Model analyze_ok(std::string_view extra) {
  return asl::load_model({kModel, extra});
}

void expect_sema_error(std::string_view extra, std::string_view needle) {
  try {
    (void)asl::load_model({kModel, extra});
    FAIL() << "expected SemaError for: " << extra;
  } catch (const SemaError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual: " << e.what();
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Declarations

TEST(Sema, ModelShape) {
  const asl::Model model = analyze_ok("");
  ASSERT_TRUE(model.find_class("Node").has_value());
  const auto& node = model.class_info(*model.find_class("Node"));
  ASSERT_EQ(node.attrs.size(), 3u);
  EXPECT_EQ(node.attrs[1].type.kind, TypeKind::kClass);
  EXPECT_EQ(node.attrs[2].type.kind, TypeKind::kSet);
  EXPECT_EQ(model.type_name(node.attrs[2].type), "setof Leaf");
  ASSERT_TRUE(model.find_enum("Color").has_value());
  const auto member = model.find_enum_member("Green");
  ASSERT_TRUE(member.has_value());
  EXPECT_EQ(member->second, 1);
}

TEST(Sema, InheritanceFlattensAttributes) {
  const asl::Model model = analyze_ok("class Special extends Leaf { float Y; }");
  const auto id = model.find_class("Special");
  ASSERT_TRUE(id.has_value());
  const auto& cls = model.class_info(*id);
  ASSERT_EQ(cls.attrs.size(), 5u);  // N, X, S, C inherited + Y
  EXPECT_EQ(cls.attrs[0].name, "N");
  EXPECT_EQ(cls.attrs[4].name, "Y");
  EXPECT_EQ(cls.own_attr_begin, 4u);
  EXPECT_TRUE(model.is_subclass_of(*id, *model.find_class("Leaf")));
  EXPECT_FALSE(model.is_subclass_of(*model.find_class("Leaf"), *id));
}

TEST(Sema, Functions) {
  const asl::Model model = analyze_ok(
      "float Mean(Node n) = SUM(l.X WHERE l IN n.Leaves) / SIZE(n.Leaves);");
  const asl::FunctionInfo* fn = model.find_function("Mean");
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn->return_type.kind, TypeKind::kFloat);
  ASSERT_EQ(fn->params.size(), 1u);
}

TEST(Sema, Properties) {
  const asl::Model model = analyze_ok(
      "Property P(Node n) {\n"
      "  LET float S = SUM(l.X WHERE l IN n.Leaves)\n"
      "  IN CONDITION: (big) S > 10 OR S > 1;\n"
      "  CONFIDENCE: MAX((big) -> 1, 0.5);\n"
      "  SEVERITY: S;\n"
      "};");
  const asl::PropertyInfo* prop = model.find_property("P");
  ASSERT_NE(prop, nullptr);
  EXPECT_EQ(prop->lets.size(), 1u);
  EXPECT_EQ(prop->conditions.size(), 2u);
  EXPECT_EQ(prop->confidence.size(), 2u);
}

// ---------------------------------------------------------------------------
// Error cases

TEST(SemaErrors, UnknownType) {
  expect_sema_error("class A { Mystery M; }", "unknown type 'Mystery'");
}

TEST(SemaErrors, DuplicateClass) {
  expect_sema_error("class Leaf { int Z; }", "duplicate type name");
}

TEST(SemaErrors, DuplicateAttribute) {
  expect_sema_error("class A { int X; float X; }", "duplicate attribute");
}

TEST(SemaErrors, SetofScalar) {
  expect_sema_error("class A { setof int Xs; }", "element type must be a class");
}

TEST(SemaErrors, UnknownBaseClass) {
  expect_sema_error("class A extends Nope { int X; }", "unknown base class");
}

TEST(SemaErrors, InheritanceCycle) {
  expect_sema_error("class A extends B { int X; } class B extends A { int Y; }",
                    "inheritance cycle");
}

TEST(SemaErrors, DuplicateEnumMemberAcrossEnums) {
  expect_sema_error("enum Other { Red };", "already defined");
}

TEST(SemaErrors, UnknownAttribute) {
  expect_sema_error("float F(Node n) = n.Nope;", "has no attribute 'Nope'");
}

TEST(SemaErrors, MemberOnScalar) {
  expect_sema_error("float F(Leaf l) = l.N.X;", "attribute access");
}

TEST(SemaErrors, UnknownName) {
  expect_sema_error("float F(Node n) = Undefined;", "unknown name");
}

TEST(SemaErrors, UnknownFunction) {
  expect_sema_error("float F(Node n) = Nope(n);", "unknown function");
}

TEST(SemaErrors, WrongArgCount) {
  expect_sema_error(
      "float G(Leaf l) = l.X; float F(Leaf l) = G(l, l);", "expects 1 arguments");
}

TEST(SemaErrors, WrongArgType) {
  expect_sema_error("float G(Leaf l) = l.X; float F(Node n) = G(n);",
                    "cannot use Node");
}

TEST(SemaErrors, ReturnTypeMismatch) {
  expect_sema_error("int F(Leaf l) = l.X;", "cannot use float");
}

TEST(SemaErrors, ConditionMustBeBool) {
  expect_sema_error(
      "Property P(Node n) { CONDITION: SIZE(n.Leaves); CONFIDENCE: 1; "
      "SEVERITY: 1; };",
      "condition must be bool");
}

TEST(SemaErrors, SeverityMustBeNumeric) {
  expect_sema_error(
      "Property P(Node n) { CONDITION: true; CONFIDENCE: 1; "
      "SEVERITY: n.Name; };",
      "SEVERITY must be numeric");
}

TEST(SemaErrors, DuplicateConditionId) {
  expect_sema_error(
      "Property P(Node n) { CONDITION: (c) true OR (c) false; CONFIDENCE: 1; "
      "SEVERITY: 1; };",
      "duplicate condition id");
}

TEST(SemaErrors, GuardNamesUnknownCondition) {
  expect_sema_error(
      "Property P(Node n) { CONDITION: (c) true; "
      "CONFIDENCE: MAX((nope) -> 1, 0.5); SEVERITY: 1; };",
      "does not name a condition");
}

TEST(SemaErrors, ComprehensionOverNonSet) {
  expect_sema_error("float F(Node n) = SUM(x.X WHERE x IN n.Next);",
                    "must range over a set");
}

TEST(SemaErrors, AggregateValueMustBeNumeric) {
  expect_sema_error("float F(Node n) = SUM(l.S WHERE l IN n.Leaves);",
                    "aggregate value must be numeric");
}

TEST(SemaErrors, BoolOperatorsNeedBools) {
  expect_sema_error("bool F(Leaf l) = l.N AND true;", "requires bool operands");
}

TEST(SemaErrors, CompareIncompatible) {
  expect_sema_error("bool F(Leaf l) = l.S == l.N;", "cannot compare");
}

TEST(SemaErrors, CompareEnumWithInt) {
  expect_sema_error("bool F(Leaf l) = l.C == 1;", "cannot compare");
}

TEST(SemaErrors, OrderingOnEnums) {
  expect_sema_error("bool F(Leaf l) = l.C < l.C;", "ordering comparison");
}

TEST(SemaErrors, UniqueNeedsSet) {
  expect_sema_error("Leaf F(Node n) = UNIQUE(n.Next);", "UNIQUE requires a set");
}

TEST(SemaErrors, DuplicateProperty) {
  expect_sema_error(
      "Property P(Node n) { CONDITION: true; CONFIDENCE: 1; SEVERITY: 1; };"
      "Property P(Node n) { CONDITION: true; CONFIDENCE: 1; SEVERITY: 1; };",
      "duplicate property");
}

TEST(SemaErrors, MultipleErrorsReportedTogether) {
  try {
    (void)asl::load_model({kModel,
                           "class A { Mystery M; OtherMystery O; }"});
    FAIL();
  } catch (const SemaError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("Mystery"), std::string::npos);
    EXPECT_NE(what.find("OtherMystery"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Type rules

TEST(SemaTypes, NumericPromotion) {
  // int / int is float (ASL division), int + int stays int.
  const asl::Model model = analyze_ok(
      "float F(Leaf l) = l.N / 2;\n"
      "int G(Leaf l) = l.N + 1;\n"
      "float H(Leaf l) = l.N + 0.5;\n");
  EXPECT_EQ(model.find_function("F")->return_type.kind, TypeKind::kFloat);
  EXPECT_EQ(model.find_function("G")->return_type.kind, TypeKind::kInt);
  EXPECT_EQ(model.find_function("H")->return_type.kind, TypeKind::kFloat);
}

TEST(SemaTypes, NullComparableWithObjects) {
  (void)analyze_ok("bool F(Node n) = n.Next == null;");
}

TEST(SemaTypes, SubclassAssignable) {
  (void)asl::load_model(
      {kModel,
       "class Special extends Leaf { float Y; }\n"
       "float F(Leaf l) = l.X;\n"
       "float G(Special s) = F(s);\n"});
}

TEST(SemaTypes, AggregateResultTypes) {
  const asl::Model model = analyze_ok(
      "int MinN(Node n) = MIN(l.N WHERE l IN n.Leaves);\n"
      "float SumN(Node n) = SUM(l.N WHERE l IN n.Leaves);\n"
      "int CountBig(Node n) = COUNT(l WHERE l IN n.Leaves AND l.X > 1);\n");
  EXPECT_EQ(model.find_function("MinN")->return_type.kind, TypeKind::kInt);
  EXPECT_EQ(model.find_function("SumN")->return_type.kind, TypeKind::kFloat);
  EXPECT_EQ(model.find_function("CountBig")->return_type.kind, TypeKind::kInt);
}

TEST(SemaTypes, MergeSpecsAcrossDocuments) {
  // Model in one document, properties in another (the COSY layout).
  const asl::Model model = asl::load_model(
      {kModel, "float F(Leaf l) = l.X;",
       "Property P(Node n) { CONDITION: true; CONFIDENCE: 1; SEVERITY: 1; };"});
  EXPECT_NE(model.find_function("F"), nullptr);
  EXPECT_NE(model.find_property("P"), nullptr);
}
