#include <gtest/gtest.h>

#include "cosy/report_render.hpp"
#include "cosy/specs.hpp"
#include "cosy/store_builder.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"
#include "support/csv.hpp"

namespace asl = kojak::asl;
namespace cosy = kojak::cosy;
namespace perf = kojak::perf;

namespace {

struct Fixture {
  asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store{model};
  cosy::StoreHandles handles;

  Fixture() {
    handles = cosy::build_store(
        store, perf::simulate_experiment(perf::workloads::imbalanced_ocean(),
                                         {1, 8, 32}));
  }
};

}  // namespace

TEST(Render, MarkdownContainsRankedTable) {
  Fixture fx;
  cosy::Analyzer analyzer(fx.model, fx.store, fx.handles);
  const cosy::AnalysisReport report = analyzer.analyze(2);
  const std::string md = cosy::to_markdown(report, 5);
  EXPECT_NE(md.find("# COSY analysis: ocean_sim on 32 PEs"), std::string::npos);
  EXPECT_NE(md.find("**bottleneck**: `SublinearSpeedup` @ `main`"),
            std::string::npos);
  EXPECT_NE(md.find("| 1 | SublinearSpeedup | `main` |"), std::string::npos);
  EXPECT_NE(md.find("further findings omitted"), std::string::npos);
}

TEST(Render, MarkdownHandlesEmptyReport) {
  const cosy::AnalysisReport empty{.program = "idle", .pe_count = 1};
  const std::string md = cosy::to_markdown(empty);
  EXPECT_NE(md.find("none (no property holds)"), std::string::npos);
}

TEST(Render, CsvParsesBackRowPerFinding) {
  Fixture fx;
  cosy::Analyzer analyzer(fx.model, fx.store, fx.handles);
  const cosy::AnalysisReport report = analyzer.analyze(2);
  const std::string csv = cosy::to_csv(report);

  std::size_t lines = 0;
  std::size_t start = 0;
  std::vector<std::string> first_data_row;
  while (start < csv.size()) {
    std::size_t end = csv.find('\n', start);
    if (end == std::string::npos) end = csv.size();
    const auto fields =
        kojak::support::parse_csv_line(csv.substr(start, end - start));
    EXPECT_EQ(fields.size(), 7u);
    if (lines == 1) first_data_row = fields;
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, report.findings.size() + 1);  // header + rows
  ASSERT_FALSE(first_data_row.empty());
  EXPECT_EQ(first_data_row[1], "SublinearSpeedup");
  EXPECT_EQ(first_data_row[6], "yes");
}

TEST(Render, SeverityMatrixTracksRuns) {
  Fixture fx;
  cosy::Analyzer analyzer(fx.model, fx.store, fx.handles);
  std::vector<cosy::AnalysisReport> reports;
  for (std::size_t run = 0; run < 3; ++run) {
    reports.push_back(analyzer.analyze(run));
  }
  const std::string matrix = cosy::severity_matrix(reports, 10);
  EXPECT_NE(matrix.find("1 PE"), std::string::npos);
  EXPECT_NE(matrix.find("8 PE"), std::string::npos);
  EXPECT_NE(matrix.find("32 PE"), std::string::npos);
  EXPECT_NE(matrix.find("SublinearSpeedup @ main"), std::string::npos);
  // The reference run has no SublinearSpeedup -> '-' in the first column.
  const std::size_t row = matrix.find("SublinearSpeedup @ main");
  const std::size_t eol = matrix.find('\n', row);
  const std::string line = matrix.substr(row, eol - row);
  EXPECT_NE(line.find('-'), std::string::npos);
}

TEST(Render, SeverityMatrixEmptyInput) {
  EXPECT_FALSE(cosy::severity_matrix({}).empty());
}
