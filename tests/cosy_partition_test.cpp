// Partitioned-store differential: hash-partitioning Region_TotTimes /
// Region_TypTimes by region (cosy::SchemaOptions) must be invisible to every
// analysis backend — byte-identical reports against the unpartitioned seed
// layout across all 13 properties, every backend family, and 1/2/8 worker
// threads — while the engine-side partition counters prove the partitioned
// layout actually scans and prunes differently under the hood.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>

#include "asl/sema.hpp"
#include "cosy/analyzer.hpp"
#include "cosy/db_import.hpp"
#include "cosy/eval_backend.hpp"
#include "cosy/schema_gen.hpp"
#include "cosy/specs.hpp"
#include "cosy/sql_eval.hpp"
#include "cosy/store_builder.hpp"
#include "db/connection_pool.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"
#include "support/str.hpp"

namespace asl = kojak::asl;
namespace cosy = kojak::cosy;
namespace db = kojak::db;
namespace perf = kojak::perf;

namespace {

/// One experiment imported twice: into the seed single-heap layout and into
/// the partitioned layout (8 partitions per region timing junction).
struct TwinWorld {
  asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store{model};
  cosy::StoreHandles handles;
  db::Database flat;
  db::Database partitioned;

  explicit TwinWorld(const perf::AppSpec& app, std::vector<int> pes,
                     std::uint64_t seed = 1) {
    perf::SimulationOptions options;
    options.seed = seed;
    const perf::ExperimentData data =
        perf::simulate_experiment(app, pes, options);
    handles = cosy::build_store(store, data);
    cosy::create_schema(
        flat, model,
        {.region_timing_partitions = 1, .junction_partitions = {}});
    cosy::create_schema(
        partitioned, model,
        {.region_timing_partitions = 8, .junction_partitions = {}});
    for (db::Database* database : {&flat, &partitioned}) {
      db::Connection conn(*database, db::ConnectionProfile::in_memory());
      cosy::import_store(conn, store);
    }
  }
};

/// Byte-exact report rendering (ranked findings plus not-applicable audits
/// including notes): one backend over two physical layouts promises full
/// identity, prose included.
std::string render_exact(const cosy::AnalysisReport& report) {
  std::string out = report.to_table(0);
  for (const cosy::Finding& f : report.not_applicable) {
    out += kojak::support::cat("NA ", f.property, "@", f.context, "!",
                               f.result.note, "\n");
  }
  return out;
}

cosy::AnalysisReport analyze(TwinWorld& world, db::Database& database,
                             const std::string& backend, std::size_t threads) {
  cosy::AnalyzerConfig config;
  config.backend = backend;
  config.threads = threads;
  if (backend == "sql-sharded") {
    db::ConnectionPool pool(database, db::ConnectionProfile::in_memory(),
                            threads == 0 ? 2 : threads);
    cosy::Analyzer analyzer(world.model, world.store, world.handles,
                            /*conn=*/nullptr, &pool);
    return analyzer.analyze(2, config);
  }
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::Analyzer analyzer(world.model, world.store, world.handles, &conn);
  return analyzer.analyze(2, config);
}

}  // namespace

TEST(PartitionedStore, SchemaPartitionsRegionTimingJunctions) {
  const asl::Model model = cosy::load_cosy_model();
  // Default layout: 4 hash partitions by owner on the region timing
  // junctions, single heaps everywhere else.
  db::Database database;
  cosy::create_schema(database, model);
  EXPECT_EQ(database.table("Region_TypTimes").partition_count(), 4u);
  EXPECT_EQ(database.table("Region_TotTimes").partition_count(), 4u);
  EXPECT_EQ(database.table("Region").partition_count(), 1u);
  EXPECT_EQ(database.table("TypedTiming").partition_count(), 1u);
  const auto& spec = database.table("Region_TypTimes").schema().partition();
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->column, "owner");

  // The knob turns it off (seed layout) or up.
  db::Database flat;
  cosy::create_schema(
      flat, model,
      {.region_timing_partitions = 1, .junction_partitions = {}});
  EXPECT_EQ(flat.table("Region_TypTimes").partition_count(), 1u);
}

TEST(PartitionedStore, ExecCountersSeePartitionedScans) {
  TwinWorld world(perf::workloads::imbalanced_ocean(), {1, 4});
  world.partitioned.set_scan_config({.threads = 4, .min_parallel_rows = 1});

  // A whole-table scan (the modulo filter defeats every index) must touch
  // all 8 partitions and go through the parallel path...
  const char* scan = "SELECT COUNT(*) FROM Region_TypTimes WHERE member % 3 = 0";
  const auto before = world.partitioned.exec_stats();
  const db::QueryResult partitioned = world.partitioned.execute(scan);
  const auto after = world.partitioned.exec_stats();
  EXPECT_EQ(after.partition_scans - before.partition_scans, 8u);
  EXPECT_GE(after.parallel_scan_batches - before.parallel_scan_batches, 1u);
  // ...and still count exactly what the seed layout counts.
  EXPECT_EQ(partitioned.scalar().as_int(),
            world.flat.execute(scan).scalar().as_int());

  // Per-region probes stay single-shard: the owner index routes, so no heap
  // partitions are scanned at all.
  const asl::ObjectId region = world.handles.regions.begin()->second;
  const auto probe_before = world.partitioned.exec_stats();
  world.partitioned.execute(kojak::support::cat(
      "SELECT COUNT(*) FROM Region_TypTimes WHERE owner = ", region));
  const auto probe_after = world.partitioned.exec_stats();
  EXPECT_EQ(probe_after.partition_scans - probe_before.partition_scans, 0u);
}

TEST(PartitionedStore, AllBackendsByteIdenticalAcrossLayouts) {
  ASSERT_EQ(cosy::load_cosy_model().properties().size(), 13u);
  TwinWorld world(perf::workloads::imbalanced_ocean(), {1, 4, 16});
  // Force engine-side parallel scans on the partitioned twin so the
  // differential also covers the parallel merge path.
  world.partitioned.set_scan_config({.threads = 4, .min_parallel_rows = 1});

  for (const char* backend :
       {"interpreter", "sql-pushdown", "sql-whole-condition",
        "sql-whole-condition-plain", "client-fetch", "bulk-fetch"}) {
    const cosy::AnalysisReport flat = analyze(world, world.flat, backend, 0);
    const cosy::AnalysisReport part =
        analyze(world, world.partitioned, backend, 0);
    EXPECT_EQ(render_exact(flat), render_exact(part)) << backend;
    EXPECT_FALSE(flat.findings.empty()) << backend;
  }
}

// ---------------------------------------------------------------------------
// Partition-union rewrite: whole-set aggregates over a junction partitioned
// by MEMBER spread one owner's rows across every partition, so the
// whole-condition compiler must compile them into one part<K> CTE per
// partition (PARTITION (K)-pinned scans) combined by a coordinator
// expression — and the executor must materialize those CTEs in parallel
// inside ONE statement per (property, context).

namespace {

constexpr const char* kFleetSpec = R"(
  class Fleet {
    String Name;
    setof Probe Readings;
  }
  class Probe {
    int Slot;
    float T;
  }

  Property FleetLoad(Fleet f) {
    LET float Total = SUM(p.T WHERE p IN f.Readings);
    IN
    CONDITION: Total > 0;
    CONFIDENCE: 1;
    SEVERITY: Total;
  };

  Property FleetShape(Fleet f) {
    LET int N = COUNT(f.Readings);
        int Low = MIN(p.Slot WHERE p IN f.Readings);
        int High = MAX(p.Slot WHERE p IN f.Readings);
        float Mean = AVG(p.T WHERE p IN f.Readings);
    IN
    CONDITION: High >= Low;
    CONFIDENCE: 1;
    SEVERITY: Mean + N + High - Low;
  };

  Property FleetHot(Fleet f, int Cut) {
    LET int Hot = COUNT(p WHERE p IN f.Readings AND p.Slot >= Cut);
    IN
    CONDITION: EXISTS({p IN f.Readings WITH p.Slot >= Cut});
    CONFIDENCE: 1;
    SEVERITY: Hot;
  };
)";

/// Synthetic world for the rewrite: a handful of fleets, each owning many
/// probes. With `exact_values`, every probe of one fleet carries the same
/// dyadic T, so SUM/AVG are FP-exact in ANY accumulation order and reports
/// can be compared byte-for-byte across physical layouts; without it, T is
/// pseudo-random and comparisons go through a 1e-9 tolerance (incremental
/// aggregates legitimately accumulate in scan order).
struct FleetWorld {
  asl::Model model = asl::load_model({kFleetSpec});
  asl::ObjectStore store{model};
  std::vector<asl::ObjectId> fleets;

  FleetWorld(int fleet_count, int probes_per_fleet, bool exact_values) {
    for (int f = 0; f < fleet_count; ++f) {
      const asl::ObjectId fleet = store.create("Fleet");
      store.set_attr(fleet, "Name",
                     asl::RtValue::of_string(kojak::support::cat("fleet", f)));
      fleets.push_back(fleet);
      const int probes = f == fleet_count - 1 ? 0 : probes_per_fleet;
      for (int i = 0; i < probes; ++i) {
        const asl::ObjectId probe = store.create("Probe");
        store.set_attr(probe, "Slot", asl::RtValue::of_int(i % 11));
        const double t = exact_values
                             ? static_cast<double>(f % 4) * 0.25 + 0.5
                             : 0.37 * static_cast<double>((f * 131 + i * 17) % 97) + 0.01;
        store.set_attr(probe, "T", asl::RtValue::of_float(t));
        store.add_to_set(fleet, "Readings", probe);
      }
    }
  }

  /// Schema with Fleet_Readings hash-partitioned by MEMBER into
  /// `partitions` shards (1 = the flat layout), then the store imported.
  void populate(db::Database& database, std::size_t partitions) const {
    cosy::SchemaOptions options;
    options.junction_partitions.push_back(
        {"Fleet", "Readings", "member", partitions});
    cosy::create_schema(database, model, options);
    db::Connection conn(database, db::ConnectionProfile::in_memory());
    cosy::import_store(conn, store);
  }
};

/// Byte-exact rendering of one result (hexfloat doubles: identical bits or
/// it does not match). `with_note` is off when comparing against the
/// interpreter: not-applicable NOTES legitimately differ between the
/// interpreter ("MIN over an empty set") and the compiled path ("a LET
/// binding hit a data gap") — the verdict mapping is the contract, and the
/// sql backends still pin their notes byte-identically among themselves.
std::string render_result(const asl::PropertyResult& result,
                          bool with_note = true) {
  char confidence[40];
  char severity[40];
  std::snprintf(confidence, sizeof confidence, "%a", result.confidence);
  std::snprintf(severity, sizeof severity, "%a", result.severity);
  return kojak::support::cat(static_cast<int>(result.status), "|",
                             result.matched_condition, "|", confidence, "|",
                             severity, "|", with_note ? result.note : "",
                             "\n");
}

/// Evaluates every (property, fleet) context through `backend` and renders
/// the whole sweep. `threads` feeds the sharding backends; sql-sharded gets
/// its own pool sized to match.
std::string evaluate_fleet_suite(const FleetWorld& world,
                                 db::Database& database,
                                 const std::string& backend,
                                 std::size_t threads = 0,
                                 bool with_note = true) {
  struct Sweep {
    std::vector<std::vector<asl::RtValue>> args;
    std::vector<cosy::EvalRequest> requests;
  };
  Sweep sweep;
  for (const asl::PropertyInfo& prop : world.model.properties()) {
    for (const asl::ObjectId fleet : world.fleets) {
      std::vector<asl::RtValue> args = {asl::RtValue::of_object(fleet)};
      if (prop.params.size() == 2) args.push_back(asl::RtValue::of_int(5));
      sweep.args.push_back(std::move(args));
    }
  }
  std::size_t slot = 0;
  for (const asl::PropertyInfo& prop : world.model.properties()) {
    for (std::size_t f = 0; f < world.fleets.size(); ++f) {
      sweep.requests.push_back({&prop, &sweep.args[slot++]});
    }
  }

  cosy::EvalBackendDeps deps;
  deps.model = &world.model;
  deps.store = &world.store;
  deps.threads = threads;

  db::Connection conn(database, db::ConnectionProfile::in_memory());
  std::optional<db::ConnectionPool> pool;
  if (backend == "sql-sharded") {
    pool.emplace(database, db::ConnectionProfile::in_memory(),
                 threads == 0 ? 2 : threads);
    deps.pool = &*pool;
  } else {
    deps.conn = &conn;
  }
  const std::unique_ptr<cosy::EvalBackend> engine =
      cosy::EvalBackend::create(backend, deps);
  std::vector<asl::PropertyResult> results(sweep.requests.size());
  engine->evaluate_all(sweep.requests, results);
  std::string rendered;
  for (const asl::PropertyResult& result : results) {
    rendered += render_result(result, with_note);
  }
  return rendered;
}

}  // namespace

TEST(PartitionUnion, WholeSetAggregateCompilesToPartCteUnion) {
  const FleetWorld world(4, 40, /*exact_values=*/true);
  db::Database partitioned;
  world.populate(partitioned, 4);
  db::Database flat;
  world.populate(flat, 1);

  const asl::PropertyInfo* load = world.model.find_property("FleetLoad");
  ASSERT_NE(load, nullptr);

  db::Connection conn(partitioned, db::ConnectionProfile::in_memory());
  cosy::SqlEvaluator whole(world.model, conn,
                           cosy::SqlEvalMode::kWholeCondition);
  const auto before = partitioned.exec_stats();
  const std::string text = whole.explain_whole_condition(*load);
  const auto after = partitioned.exec_stats();
  // Diagnostic-only compilation moves NO execution telemetry.
  EXPECT_EQ(after.partition_union_rewrites - before.partition_union_rewrites,
            0u);

  // The whole-table SUM compiled to WITH part0..part3, each shard pinned to
  // its partition, combined by a SUM-of-SUMs coordinator — and because the
  // LET is referenced by probe, condition, and severity, the coordinator
  // itself dedupes into a cse CTE.
  EXPECT_EQ(text.rfind("WITH part0 AS (SELECT ", 0), 0u) << text;
  for (const char* shard :
       {"part0 AS (SELECT COALESCE(SUM(b.T), 0.0) AS v0 FROM Fleet_Readings "
        "PARTITION (0) j JOIN Probe b ON b.id = j.member WHERE j.owner = ?",
        "Fleet_Readings PARTITION (1) j", "Fleet_Readings PARTITION (2) j",
        "Fleet_Readings PARTITION (3) j"}) {
    EXPECT_NE(text.find(shard), std::string::npos) << shard << "\n" << text;
  }
  EXPECT_EQ(text.find("PARTITION (4)"), std::string::npos) << text;
  EXPECT_NE(
      text.find("(SELECT v0 FROM part0) + (SELECT v0 FROM part1) + "
                "(SELECT v0 FROM part2) + (SELECT v0 FROM part3)"),
      std::string::npos)
      << text;
  // Rewrite telemetry tracks plans compiled for EXECUTION: exactly one
  // aggregate site for FleetLoad.
  const auto eval_before = partitioned.exec_stats();
  (void)whole.evaluate_property(
      *load, {asl::RtValue::of_object(world.fleets[0])});
  const auto eval_after = partitioned.exec_stats();
  EXPECT_EQ(eval_after.partition_union_rewrites -
                eval_before.partition_union_rewrites,
            1u);
  // Still ONE statement.
  EXPECT_EQ(text.find(';'), std::string::npos) << text;

  // The flat layout compiles layout-blind (no shards)...
  db::Connection flat_conn(flat, db::ConnectionProfile::in_memory());
  cosy::SqlEvaluator flat_whole(world.model, flat_conn,
                                cosy::SqlEvalMode::kWholeCondition);
  EXPECT_EQ(flat_whole.explain_whole_condition(*load).find("part0"),
            std::string::npos);
  // ...and so does the ablation baseline on the partitioned layout.
  cosy::SqlEvaluator plain(world.model, conn,
                           cosy::SqlEvalMode::kWholeCondition,
                           /*plan_cache=*/nullptr, /*common_subexpr=*/false);
  const std::string plain_text = plain.explain_whole_condition(*load);
  EXPECT_EQ(plain_text.find("PARTITION ("), std::string::npos) << plain_text;

  // All four FleetShape aggregates fold the same set, so they share ONE
  // shard group — four CTEs total (part0..part3, no part4), each carrying
  // one output column per distinct fold fragment; every partition is
  // scanned once per statement no matter how many operators consume it.
  // MIN/MAX combine through the NULL-skipping LEAST/GREATEST coordinators,
  // AVG re-derives from per-partition SUM and COUNT.
  const asl::PropertyInfo* shape = world.model.find_property("FleetShape");
  ASSERT_NE(shape, nullptr);
  const std::string shape_text = whole.explain_whole_condition(*shape);
  EXPECT_NE(shape_text.find("part3"), std::string::npos) << shape_text;
  EXPECT_EQ(shape_text.find("part4"), std::string::npos) << shape_text;
  EXPECT_NE(shape_text.find("LEAST((SELECT v1 FROM part"), std::string::npos)
      << shape_text;
  EXPECT_NE(shape_text.find("GREATEST((SELECT v2 FROM part"),
            std::string::npos)
      << shape_text;
  EXPECT_NE(shape_text.find("COALESCE(SUM(b.T), 0.0) AS v3, COUNT(b.T) AS v4"),
            std::string::npos)
      << shape_text;
  EXPECT_NE(shape_text.find(" / "), std::string::npos) << shape_text;

  // FleetHot's COUNT LET and its EXISTS condition compile to the same
  // coordinator: one rewrite counted, not two.
  const asl::PropertyInfo* hot = world.model.find_property("FleetHot");
  ASSERT_NE(hot, nullptr);
  const auto hot_before = partitioned.exec_stats();
  (void)whole.evaluate_property(*hot,
                                {asl::RtValue::of_object(world.fleets[0]),
                                 asl::RtValue::of_int(5)});
  const auto hot_after = partitioned.exec_stats();
  EXPECT_EQ(
      hot_after.partition_union_rewrites - hot_before.partition_union_rewrites,
      1u);
}

TEST(PartitionUnion, OneStatementPerContextWithParallelCteMaterialization) {
  const FleetWorld world(4, 64, /*exact_values=*/true);
  db::Database database;
  world.populate(database, 4);
  database.set_scan_config({.threads = 4, .min_parallel_rows = 1});

  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::PlanCache cache(world.model);
  cosy::SqlEvaluator whole(world.model, conn,
                           cosy::SqlEvalMode::kWholeCondition, &cache);
  const asl::PropertyInfo* load = world.model.find_property("FleetLoad");
  ASSERT_NE(load, nullptr);

  // Warm the plan, then pin the per-context contract: ONE statement per
  // (property, context), with the partition CTEs of that one statement
  // materialized concurrently on the scan pool.
  const std::vector<asl::RtValue> args = {
      asl::RtValue::of_object(world.fleets[0])};
  (void)whole.evaluate_property(*load, args);
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t queries_before = whole.queries_issued();
    const auto before = database.exec_stats();
    const asl::PropertyResult result = whole.evaluate_property(*load, args);
    const auto after = database.exec_stats();
    EXPECT_EQ(result.status, asl::PropertyResult::Status::kHolds);
    EXPECT_EQ(whole.queries_issued() - queries_before, 1u) << i;
    // All four part<K> shards of the one statement ran on the pool.
    EXPECT_GE(after.cte_parallel_materializations -
                  before.cte_parallel_materializations,
              4u)
        << i;
    // The shard bodies keep their indexed owner equality: each one probes
    // the owner index and filters the ids to its PARTITION (K), so no
    // partition heap is walked at all.
    EXPECT_EQ(after.partition_scans - before.partition_scans, 0u) << i;
  }
  EXPECT_EQ(whole.whole_fallbacks(), 0u);

  // Serial scan config: same statement, no parallel CTE batches.
  database.set_scan_config({.threads = 1, .min_parallel_rows = 1});
  const auto serial_before = database.exec_stats();
  (void)whole.evaluate_property(*load, args);
  const auto serial_after = database.exec_stats();
  EXPECT_EQ(serial_after.cte_parallel_materializations -
                serial_before.cte_parallel_materializations,
            0u);
}

TEST(PartitionUnion, RewrittenBackendsByteIdenticalAcrossLayoutsAndThreads) {
  const FleetWorld world(6, 48, /*exact_values=*/true);

  // Reference 1: the serial interpreter over the in-memory store (verdicts
  // and values; NA note text is backend-specific by design).
  std::string interp_reference;
  {
    const asl::Interpreter interp(world.model, world.store);
    for (const asl::PropertyInfo& prop : world.model.properties()) {
      for (const asl::ObjectId fleet : world.fleets) {
        std::vector<asl::RtValue> args = {asl::RtValue::of_object(fleet)};
        if (prop.params.size() == 2) args.push_back(asl::RtValue::of_int(5));
        interp_reference += render_result(interp.evaluate_property(prop, args),
                                          /*with_note=*/false);
      }
    }
  }
  ASSERT_NE(interp_reference.find("2|"), std::string::npos);  // NA covered

  // Reference 2: the full sql-side report (notes included) from the FLAT
  // layout — every rewritten backend must reproduce it byte for byte on
  // every partition layout and thread count.
  std::string sql_reference;
  {
    db::Database flat;
    world.populate(flat, 1);
    sql_reference = evaluate_fleet_suite(world, flat, "sql-whole-condition");
    EXPECT_EQ(
        evaluate_fleet_suite(world, flat, "sql-whole-condition", 0,
                             /*with_note=*/false),
        interp_reference);
  }

  for (const std::size_t partitions : {1u, 4u, 8u}) {
    db::Database database;
    world.populate(database, partitions);
    database.set_scan_config({.threads = 4, .min_parallel_rows = 1});
    for (const char* backend :
         {"sql-whole-condition", "sql-whole-condition-plain"}) {
      EXPECT_EQ(evaluate_fleet_suite(world, database, backend), sql_reference)
          << backend << " @ " << partitions << " partitions";
    }
    for (const std::size_t threads : {1u, 2u, 8u}) {
      EXPECT_EQ(evaluate_fleet_suite(world, database, "sql-sharded", threads),
                sql_reference)
          << "sql-sharded @ " << partitions << " partitions, " << threads
          << " threads";
    }
  }
}

TEST(PartitionUnion, RandomValuesAgreeWithInterpreterWithinTolerance) {
  const FleetWorld world(5, 40, /*exact_values=*/false);
  const asl::Interpreter interp(world.model, world.store);

  for (const std::size_t partitions : {4u, 8u}) {
    db::Database database;
    world.populate(database, partitions);
    database.set_scan_config({.threads = 4, .min_parallel_rows = 1});
    db::Connection conn(database, db::ConnectionProfile::in_memory());
    cosy::SqlEvaluator whole(world.model, conn,
                             cosy::SqlEvalMode::kWholeCondition);
    for (const asl::PropertyInfo& prop : world.model.properties()) {
      for (const asl::ObjectId fleet : world.fleets) {
        std::vector<asl::RtValue> args = {asl::RtValue::of_object(fleet)};
        if (prop.params.size() == 2) args.push_back(asl::RtValue::of_int(5));
        const asl::PropertyResult a = interp.evaluate_property(prop, args);
        const asl::PropertyResult b = whole.evaluate_property(prop, args);
        EXPECT_EQ(a.status, b.status)
            << prop.name << " fleet " << fleet << " (" << a.note << " vs "
            << b.note << ")";
        if (a.status == asl::PropertyResult::Status::kHolds) {
          EXPECT_EQ(a.matched_condition, b.matched_condition) << prop.name;
          EXPECT_NEAR(a.confidence, b.confidence, 1e-9) << prop.name;
          EXPECT_NEAR(a.severity, b.severity,
                      1e-9 * std::max(1.0, std::abs(a.severity)))
              << prop.name << " fleet " << fleet;
        }
      }
    }
    EXPECT_EQ(whole.whole_fallbacks(), 0u) << partitions;
  }
}

TEST(PartitionUnion, MinMaxDeclineBeyondTheFoldArgCap) {
  // LEAST/GREATEST accept at most 64 arguments; on a 65+-partition layout a
  // MIN/MAX coordinator would fail at bind time and demote every context to
  // the sitewise fallback. The compiler must decline the rewrite for those
  // operators (SUM/COUNT/AVG fold with +-chains and still rewrite).
  const FleetWorld world(2, 16, /*exact_values=*/true);
  db::Database database;
  world.populate(database, 65);

  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::SqlEvaluator whole(world.model, conn,
                           cosy::SqlEvalMode::kWholeCondition);
  const asl::PropertyInfo* shape = world.model.find_property("FleetShape");
  ASSERT_NE(shape, nullptr);
  const std::string text = whole.explain_whole_condition(*shape);
  EXPECT_EQ(text.find("LEAST("), std::string::npos) << text;
  EXPECT_EQ(text.find("GREATEST("), std::string::npos) << text;
  // The COUNT and AVG aggregates of the same property still union.
  EXPECT_NE(text.find("PARTITION (64)"), std::string::npos) << text;

  const asl::Interpreter interp(world.model, world.store);
  const std::vector<asl::RtValue> args = {
      asl::RtValue::of_object(world.fleets[0])};
  EXPECT_EQ(render_result(whole.evaluate_property(*shape, args)),
            render_result(interp.evaluate_property(*shape, args)));
  EXPECT_EQ(whole.whole_fallbacks(), 0u);
}

TEST(PartitionUnion, OwnerPinnedProbesStayFlat) {
  // The COSY layout partitions the region timing junctions by OWNER, and
  // every property probes per owner: those scans prune to one partition at
  // bind time, so the rewrite must NOT fire — a union of one live shard and
  // N-1 empty ones would only add cost. This is the layout-aware "leave it
  // alone" half of the rewrite.
  TwinWorld world(perf::workloads::imbalanced_ocean(), {1, 4});
  db::Connection conn(world.partitioned, db::ConnectionProfile::in_memory());
  cosy::SqlEvaluator whole(world.model, conn,
                           cosy::SqlEvalMode::kWholeCondition);
  const auto before = world.partitioned.exec_stats();
  for (const asl::PropertyInfo& prop : world.model.properties()) {
    const std::string text = whole.explain_whole_condition(prop);
    EXPECT_EQ(text.find("PARTITION ("), std::string::npos) << prop.name;
  }
  const auto after = world.partitioned.exec_stats();
  EXPECT_EQ(after.partition_union_rewrites - before.partition_union_rewrites,
            0u);
}

TEST(PartitionUnion, PlanCacheKeyedOnLayoutFingerprint) {
  // One shared PlanCache over two physical layouts of the same model: the
  // layout fingerprint in the key keeps the flat-layout plan from being
  // replayed against the partitioned store (and vice versa). Before the
  // layout key, re-partitioning silently reused stale flat SQL.
  const FleetWorld world(3, 24, /*exact_values=*/true);
  db::Database flat;
  world.populate(flat, 1);
  db::Database partitioned;
  world.populate(partitioned, 4);

  db::Connection flat_conn(flat, db::ConnectionProfile::in_memory());
  db::Connection part_conn(partitioned, db::ConnectionProfile::in_memory());
  EXPECT_NE(flat_conn.layout_fingerprint(), part_conn.layout_fingerprint());

  cosy::PlanCache cache(world.model);
  cosy::SqlEvaluator on_flat(world.model, flat_conn,
                             cosy::SqlEvalMode::kWholeCondition, &cache);
  cosy::SqlEvaluator on_partitioned(world.model, part_conn,
                                    cosy::SqlEvalMode::kWholeCondition, &cache);
  EXPECT_NE(on_flat.layout_fingerprint(), on_partitioned.layout_fingerprint());

  const asl::PropertyInfo* load = world.model.find_property("FleetLoad");
  ASSERT_NE(load, nullptr);
  const std::vector<asl::RtValue> args = {
      asl::RtValue::of_object(world.fleets[0])};

  const asl::PropertyResult flat_result =
      on_flat.evaluate_property(*load, args);
  const std::size_t after_flat = cache.size();
  EXPECT_GE(after_flat, 1u);

  // Same property, same cache, different layout: a fresh compilation under
  // the partitioned key — NOT a hit on the flat plan.
  const asl::PropertyResult part_result =
      on_partitioned.evaluate_property(*load, args);
  EXPECT_GT(cache.size(), after_flat);
  EXPECT_EQ(on_partitioned.plan_cache_hits(), 0u);
  EXPECT_EQ(render_result(flat_result), render_result(part_result));

  // Re-evaluating on either layout now hits its own plan.
  (void)on_flat.evaluate_property(*load, args);
  (void)on_partitioned.evaluate_property(*load, args);
  EXPECT_EQ(on_flat.plan_cache_hits(), 1u);
  EXPECT_EQ(on_partitioned.plan_cache_hits(), 1u);
}

TEST(PartitionedStore, ShardedBackendsByteIdenticalAtAnyThreadCount) {
  TwinWorld world(perf::workloads::scalable_stencil(), {1, 4, 16}, 2);
  world.partitioned.set_scan_config({.threads = 4, .min_parallel_rows = 1});

  // The reference: the serial interpreter over the in-memory store.
  const std::string reference = render_exact(
      analyze(world, world.flat, "interpreter", 0));

  for (const char* backend : {"interpreter-sharded", "sql-sharded"}) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      const std::string flat =
          render_exact(analyze(world, world.flat, backend, threads));
      const std::string part =
          render_exact(analyze(world, world.partitioned, backend, threads));
      EXPECT_EQ(flat, part) << backend << " @ " << threads;
      if (std::string_view(backend) == "interpreter-sharded") {
        // Store-backed: byte-exact against the serial interpreter too.
        EXPECT_EQ(flat, reference) << backend << " @ " << threads;
      }
    }
  }
}
