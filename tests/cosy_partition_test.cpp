// Partitioned-store differential: hash-partitioning Region_TotTimes /
// Region_TypTimes by region (cosy::SchemaOptions) must be invisible to every
// analysis backend — byte-identical reports against the unpartitioned seed
// layout across all 13 properties, every backend family, and 1/2/8 worker
// threads — while the engine-side partition counters prove the partitioned
// layout actually scans and prunes differently under the hood.

#include <gtest/gtest.h>

#include "cosy/analyzer.hpp"
#include "cosy/db_import.hpp"
#include "cosy/eval_backend.hpp"
#include "cosy/schema_gen.hpp"
#include "cosy/specs.hpp"
#include "cosy/sql_eval.hpp"
#include "cosy/store_builder.hpp"
#include "db/connection_pool.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"
#include "support/str.hpp"

namespace asl = kojak::asl;
namespace cosy = kojak::cosy;
namespace db = kojak::db;
namespace perf = kojak::perf;

namespace {

/// One experiment imported twice: into the seed single-heap layout and into
/// the partitioned layout (8 partitions per region timing junction).
struct TwinWorld {
  asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store{model};
  cosy::StoreHandles handles;
  db::Database flat;
  db::Database partitioned;

  explicit TwinWorld(const perf::AppSpec& app, std::vector<int> pes,
                     std::uint64_t seed = 1) {
    perf::SimulationOptions options;
    options.seed = seed;
    const perf::ExperimentData data =
        perf::simulate_experiment(app, pes, options);
    handles = cosy::build_store(store, data);
    cosy::create_schema(flat, model, {.region_timing_partitions = 1});
    cosy::create_schema(partitioned, model, {.region_timing_partitions = 8});
    for (db::Database* database : {&flat, &partitioned}) {
      db::Connection conn(*database, db::ConnectionProfile::in_memory());
      cosy::import_store(conn, store);
    }
  }
};

/// Byte-exact report rendering (ranked findings plus not-applicable audits
/// including notes): one backend over two physical layouts promises full
/// identity, prose included.
std::string render_exact(const cosy::AnalysisReport& report) {
  std::string out = report.to_table(0);
  for (const cosy::Finding& f : report.not_applicable) {
    out += kojak::support::cat("NA ", f.property, "@", f.context, "!",
                               f.result.note, "\n");
  }
  return out;
}

cosy::AnalysisReport analyze(TwinWorld& world, db::Database& database,
                             const std::string& backend, std::size_t threads) {
  cosy::AnalyzerConfig config;
  config.backend = backend;
  config.threads = threads;
  if (backend == "sql-sharded") {
    db::ConnectionPool pool(database, db::ConnectionProfile::in_memory(),
                            threads == 0 ? 2 : threads);
    cosy::Analyzer analyzer(world.model, world.store, world.handles,
                            /*conn=*/nullptr, &pool);
    return analyzer.analyze(2, config);
  }
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::Analyzer analyzer(world.model, world.store, world.handles, &conn);
  return analyzer.analyze(2, config);
}

}  // namespace

TEST(PartitionedStore, SchemaPartitionsRegionTimingJunctions) {
  const asl::Model model = cosy::load_cosy_model();
  // Default layout: 4 hash partitions by owner on the region timing
  // junctions, single heaps everywhere else.
  db::Database database;
  cosy::create_schema(database, model);
  EXPECT_EQ(database.table("Region_TypTimes").partition_count(), 4u);
  EXPECT_EQ(database.table("Region_TotTimes").partition_count(), 4u);
  EXPECT_EQ(database.table("Region").partition_count(), 1u);
  EXPECT_EQ(database.table("TypedTiming").partition_count(), 1u);
  const auto& spec = database.table("Region_TypTimes").schema().partition();
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->column, "owner");

  // The knob turns it off (seed layout) or up.
  db::Database flat;
  cosy::create_schema(flat, model, {.region_timing_partitions = 1});
  EXPECT_EQ(flat.table("Region_TypTimes").partition_count(), 1u);
}

TEST(PartitionedStore, ExecCountersSeePartitionedScans) {
  TwinWorld world(perf::workloads::imbalanced_ocean(), {1, 4});
  world.partitioned.set_scan_config({.threads = 4, .min_parallel_rows = 1});

  // A whole-table scan (the modulo filter defeats every index) must touch
  // all 8 partitions and go through the parallel path...
  const char* scan = "SELECT COUNT(*) FROM Region_TypTimes WHERE member % 3 = 0";
  const auto before = world.partitioned.exec_stats();
  const db::QueryResult partitioned = world.partitioned.execute(scan);
  const auto after = world.partitioned.exec_stats();
  EXPECT_EQ(after.partition_scans - before.partition_scans, 8u);
  EXPECT_GE(after.parallel_scan_batches - before.parallel_scan_batches, 1u);
  // ...and still count exactly what the seed layout counts.
  EXPECT_EQ(partitioned.scalar().as_int(),
            world.flat.execute(scan).scalar().as_int());

  // Per-region probes stay single-shard: the owner index routes, so no heap
  // partitions are scanned at all.
  const asl::ObjectId region = world.handles.regions.begin()->second;
  const auto probe_before = world.partitioned.exec_stats();
  world.partitioned.execute(kojak::support::cat(
      "SELECT COUNT(*) FROM Region_TypTimes WHERE owner = ", region));
  const auto probe_after = world.partitioned.exec_stats();
  EXPECT_EQ(probe_after.partition_scans - probe_before.partition_scans, 0u);
}

TEST(PartitionedStore, AllBackendsByteIdenticalAcrossLayouts) {
  ASSERT_EQ(cosy::load_cosy_model().properties().size(), 13u);
  TwinWorld world(perf::workloads::imbalanced_ocean(), {1, 4, 16});
  // Force engine-side parallel scans on the partitioned twin so the
  // differential also covers the parallel merge path.
  world.partitioned.set_scan_config({.threads = 4, .min_parallel_rows = 1});

  for (const char* backend :
       {"interpreter", "sql-pushdown", "sql-whole-condition",
        "sql-whole-condition-plain", "client-fetch", "bulk-fetch"}) {
    const cosy::AnalysisReport flat = analyze(world, world.flat, backend, 0);
    const cosy::AnalysisReport part =
        analyze(world, world.partitioned, backend, 0);
    EXPECT_EQ(render_exact(flat), render_exact(part)) << backend;
    EXPECT_FALSE(flat.findings.empty()) << backend;
  }
}

TEST(PartitionedStore, ShardedBackendsByteIdenticalAtAnyThreadCount) {
  TwinWorld world(perf::workloads::scalable_stencil(), {1, 4, 16}, 2);
  world.partitioned.set_scan_config({.threads = 4, .min_parallel_rows = 1});

  // The reference: the serial interpreter over the in-memory store.
  const std::string reference = render_exact(
      analyze(world, world.flat, "interpreter", 0));

  for (const char* backend : {"interpreter-sharded", "sql-sharded"}) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      const std::string flat =
          render_exact(analyze(world, world.flat, backend, threads));
      const std::string part =
          render_exact(analyze(world, world.partitioned, backend, threads));
      EXPECT_EQ(flat, part) << backend << " @ " << threads;
      if (std::string_view(backend) == "interpreter-sharded") {
        // Store-backed: byte-exact against the serial interpreter too.
        EXPECT_EQ(flat, reference) << backend << " @ " << threads;
      }
    }
  }
}
