#include <gtest/gtest.h>

#include "cosy/analyzer.hpp"
#include "cosy/baseline/earl.hpp"
#include "cosy/baseline/paradyn.hpp"
#include "cosy/db_import.hpp"
#include "cosy/schema_gen.hpp"
#include "cosy/specs.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"
#include "support/error.hpp"

namespace asl = kojak::asl;
namespace cosy = kojak::cosy;
namespace db = kojak::db;
namespace perf = kojak::perf;

namespace {

struct World {
  asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store{model};
  cosy::StoreHandles handles;
  db::Database database;
  db::Connection conn{database, db::ConnectionProfile::in_memory()};
  perf::ExperimentData data;

  explicit World(const perf::AppSpec& app, std::vector<int> pes) {
    data = perf::simulate_experiment(app, pes);
    handles = cosy::build_store(store, data);
    cosy::create_schema(database, model);
    cosy::import_store(conn, store);
  }
};

const cosy::Finding* find(const cosy::AnalysisReport& report,
                          std::string_view property, std::string_view context) {
  for (const cosy::Finding& finding : report.findings) {
    if (finding.property == property && finding.context == context) {
      return &finding;
    }
  }
  return nullptr;
}

}  // namespace

TEST(Analyzer, OceanRankingShape) {
  World world(perf::workloads::imbalanced_ocean(), {1, 16});
  cosy::Analyzer analyzer(world.model, world.store, world.handles, &world.conn);
  const cosy::AnalysisReport report = analyzer.analyze(1);

  ASSERT_FALSE(report.findings.empty());
  // The paper's main property: total cost of the test run, at the program
  // region, ranks first.
  EXPECT_EQ(report.bottleneck()->property, "SublinearSpeedup");
  EXPECT_EQ(report.bottleneck()->context, "main");
  EXPECT_FALSE(report.tuned());

  // Severities are sorted non-increasing.
  for (std::size_t i = 1; i < report.findings.size(); ++i) {
    EXPECT_GE(report.findings[i - 1].result.severity,
              report.findings[i].result.severity);
  }

  // The imbalanced barrier shows up as SyncCost at the step region and as
  // LoadImbalance at the barrier call site (the paper's refinement chain).
  const cosy::Finding* sync = find(report, "SyncCost", "main.time_loop.step");
  ASSERT_NE(sync, nullptr);
  EXPECT_GT(sync->result.severity, 0.01);
  bool load_imbalance_at_barrier = false;
  for (const cosy::Finding& finding : report.findings) {
    if (finding.property == "LoadImbalance" &&
        finding.context.find("barrier @ main.time_loop.step") !=
            std::string::npos) {
      load_imbalance_at_barrier = true;
    }
  }
  EXPECT_TRUE(load_imbalance_at_barrier);

  // MeasuredCost at main explains most of the total cost; UnmeasuredCost
  // covers the (smaller) rest.
  const cosy::Finding* total = find(report, "SublinearSpeedup", "main");
  const cosy::Finding* measured = find(report, "MeasuredCost", "main");
  ASSERT_NE(measured, nullptr);
  EXPECT_GT(measured->result.severity, 0.3 * total->result.severity);
}

TEST(Analyzer, ScalableAppIsTunedAtLowThreshold) {
  World world(perf::workloads::scalable_stencil(), {1, 4});
  cosy::Analyzer analyzer(world.model, world.store, world.handles);
  cosy::AnalyzerConfig config;
  config.problem_threshold = 0.3;
  const cosy::AnalysisReport report = analyzer.analyze(1, config);
  // Properties may hold (there is *some* overhead), but nothing crosses the
  // problem threshold: "the program does not need any further tuning".
  EXPECT_TRUE(report.tuned());
  EXPECT_TRUE(report.problems().empty());
}

TEST(Analyzer, ReferenceRunHasNoSublinearSpeedup) {
  World world(perf::workloads::imbalanced_ocean(), {1, 16});
  cosy::Analyzer analyzer(world.model, world.store, world.handles);
  const cosy::AnalysisReport report = analyzer.analyze(0);  // the 1-PE run
  EXPECT_EQ(find(report, "SublinearSpeedup", "main"), nullptr);
}

TEST(Analyzer, StrategiesAgree) {
  World world(perf::workloads::imbalanced_ocean(), {1, 8});
  cosy::Analyzer analyzer(world.model, world.store, world.handles, &world.conn);

  cosy::AnalyzerConfig interp_config;
  cosy::AnalyzerConfig sql_config;
  sql_config.strategy = cosy::EvalStrategy::kSqlPushdown;
  cosy::AnalyzerConfig fetch_config;
  fetch_config.strategy = cosy::EvalStrategy::kClientFetch;
  cosy::AnalyzerConfig bulk_config;
  bulk_config.strategy = cosy::EvalStrategy::kBulkFetch;

  const cosy::AnalysisReport a = analyzer.analyze(1, interp_config);
  const cosy::AnalysisReport b = analyzer.analyze(1, sql_config);
  const cosy::AnalysisReport c = analyzer.analyze(1, fetch_config);
  const cosy::AnalysisReport d = analyzer.analyze(1, bulk_config);

  ASSERT_EQ(a.findings.size(), b.findings.size());
  ASSERT_EQ(a.findings.size(), c.findings.size());
  ASSERT_EQ(a.findings.size(), d.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].property, b.findings[i].property);
    EXPECT_EQ(a.findings[i].context, b.findings[i].context);
    EXPECT_NEAR(a.findings[i].result.severity, b.findings[i].result.severity,
                1e-9);
    EXPECT_EQ(a.findings[i].property, c.findings[i].property);
    EXPECT_NEAR(a.findings[i].result.severity, c.findings[i].result.severity,
                1e-9);
    EXPECT_EQ(a.findings[i].property, d.findings[i].property);
    EXPECT_NEAR(a.findings[i].result.severity, d.findings[i].result.severity,
                1e-9);
  }
  // Record-at-a-time client fetch issues the most statements; pushdown
  // compacts them; bulk fetch needs only one scan per table.
  EXPECT_GT(c.sql_queries, b.sql_queries);
  EXPECT_GT(b.sql_queries, d.sql_queries);
  EXPECT_GT(d.sql_queries, 0u);
}

TEST(Analyzer, ParallelEvaluationIsDeterministic) {
  World world(perf::workloads::imbalanced_ocean(), {1, 16});
  cosy::Analyzer analyzer(world.model, world.store, world.handles);
  cosy::AnalyzerConfig serial_config;
  cosy::AnalyzerConfig parallel_config;
  parallel_config.parallel = true;
  const cosy::AnalysisReport a = analyzer.analyze(1, serial_config);
  const cosy::AnalysisReport b = analyzer.analyze(1, parallel_config);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].property, b.findings[i].property);
    EXPECT_EQ(a.findings[i].context, b.findings[i].context);
    EXPECT_DOUBLE_EQ(a.findings[i].result.severity, b.findings[i].result.severity);
  }
}

TEST(Analyzer, SqlStrategyWithoutConnectionThrows) {
  World world(perf::workloads::scalable_stencil(), {1, 2});
  cosy::Analyzer analyzer(world.model, world.store, world.handles, nullptr);
  cosy::AnalyzerConfig config;
  config.strategy = cosy::EvalStrategy::kSqlPushdown;
  EXPECT_THROW((void)analyzer.analyze(1, config), kojak::support::EvalError);
}

TEST(Analyzer, BadRunIndexThrows) {
  World world(perf::workloads::scalable_stencil(), {1, 2});
  cosy::Analyzer analyzer(world.model, world.store, world.handles);
  EXPECT_THROW((void)analyzer.analyze(7), kojak::support::EvalError);
}

TEST(Analyzer, CustomBasisRegion) {
  World world(perf::workloads::imbalanced_ocean(), {1, 16});
  cosy::Analyzer analyzer(world.model, world.store, world.handles);
  cosy::AnalyzerConfig config;
  config.basis_region = "main.time_loop";
  const cosy::AnalysisReport report = analyzer.analyze(1, config);
  // Normalizing by a smaller basis raises severities.
  const cosy::Finding* sync =
      find(report, "SyncCost", "main.time_loop.step");
  ASSERT_NE(sync, nullptr);
  cosy::AnalyzerConfig default_config;
  const cosy::AnalysisReport base = analyzer.analyze(1, default_config);
  const cosy::Finding* base_sync =
      find(base, "SyncCost", "main.time_loop.step");
  ASSERT_NE(base_sync, nullptr);
  EXPECT_GT(sync->result.severity, base_sync->result.severity);
  EXPECT_THROW((void)[&] {
    cosy::AnalyzerConfig bad;
    bad.basis_region = "nope";
    return analyzer.analyze(1, bad);
  }(), kojak::support::EvalError);
}

TEST(Analyzer, ReportRendering) {
  World world(perf::workloads::imbalanced_ocean(), {1, 16});
  cosy::Analyzer analyzer(world.model, world.store, world.handles);
  const cosy::AnalysisReport report = analyzer.analyze(1);
  const std::string table = report.to_table(5);
  EXPECT_NE(table.find("SublinearSpeedup"), std::string::npos);
  EXPECT_NE(table.find("bottleneck:"), std::string::npos);
  EXPECT_NE(table.find("severity"), std::string::npos);
}

TEST(Analyzer, NotApplicableContextsAreAudited) {
  // A store with a region that has no timings at all: UNIQUE gaps must land
  // in not_applicable, not crash the analysis.
  World world(perf::workloads::imbalanced_ocean(), {1, 4});
  const asl::ObjectId ghost = world.store.create("Region");
  world.store.set_attr(ghost, "Name", asl::RtValue::of_string("ghost"));
  world.store.set_attr(ghost, "Kind", asl::RtValue::of_string("Loop"));
  auto handles = world.handles;
  handles.regions["ghost"] = ghost;
  cosy::Analyzer analyzer(world.model, world.store, handles);
  const cosy::AnalysisReport report = analyzer.analyze(1);
  bool ghost_not_applicable = false;
  for (const cosy::Finding& finding : report.not_applicable) {
    if (finding.context == "ghost") ghost_not_applicable = true;
  }
  EXPECT_TRUE(ghost_not_applicable);
}

TEST(Analyzer, ContextCount) {
  World world(perf::workloads::imbalanced_ocean(), {1, 4});
  cosy::Analyzer analyzer(world.model, world.store, world.handles);
  // 11 region properties x 11 regions + 2 call properties x 3 sites.
  EXPECT_EQ(analyzer.context_count(), 11u * 11u + 2u * 3u);
}

// ---------------------------------------------------------------------------
// Paradyn baseline

TEST(Paradyn, FixedHypothesisSet) {
  const auto names = cosy::baseline::ParadynSearch::hypotheses();
  EXPECT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "CPUbound");
}

TEST(Paradyn, FindsSyncOnOcean) {
  World world(perf::workloads::imbalanced_ocean(), {1, 16});
  cosy::baseline::ParadynSearch search;
  const auto findings = search.search(world.data, 1);
  bool sync_found = false;
  for (const auto& finding : findings) {
    if (finding.hypothesis == "ExcessiveSyncWaitingTime") sync_found = true;
    EXPECT_GT(finding.value, finding.threshold);
  }
  EXPECT_TRUE(sync_found);
}

TEST(Paradyn, RefinesIntoRegions) {
  World world(perf::workloads::io_heavy(), {1, 8});
  cosy::baseline::ParadynSearch search;
  const auto findings = search.search(world.data, 1);
  bool refined = false;
  for (const auto& finding : findings) {
    if (finding.hypothesis == "ExcessiveIOBlockingTime" && finding.depth > 0) {
      refined = true;
      EXPECT_NE(finding.focus, "main");
    }
  }
  EXPECT_TRUE(refined);
}

TEST(Paradyn, CpuBoundOnScalableApp) {
  World world(perf::workloads::scalable_stencil(), {1, 2});
  cosy::baseline::ParadynSearch search;
  const auto findings = search.search(world.data, 1);
  bool cpu_bound = false;
  for (const auto& finding : findings) {
    if (finding.hypothesis == "CPUbound" && finding.focus == "main") {
      cpu_bound = true;
    }
  }
  EXPECT_TRUE(cpu_bound);
}

TEST(Paradyn, BadRunIndexThrows) {
  World world(perf::workloads::scalable_stencil(), {1});
  cosy::baseline::ParadynSearch search;
  EXPECT_THROW((void)search.search(world.data, 3), kojak::support::EvalError);
}

// ---------------------------------------------------------------------------
// EARL baseline

TEST(Earl, FindsBarrierImbalanceInTrace) {
  const auto trace =
      perf::generate_trace(perf::workloads::imbalanced_ocean(), 8);
  cosy::baseline::EarlAnalyzer earl;
  const auto results = earl.analyze(trace);
  ASSERT_EQ(results.size(), 3u);
  const auto& barrier = results[0];
  EXPECT_EQ(barrier.pattern, "barrier_imbalance");
  EXPECT_GT(barrier.matches, 0u);
  EXPECT_GT(barrier.total_ms, 0.0);
}

TEST(Earl, IoBlockingDetected) {
  const auto trace = perf::generate_trace(perf::workloads::io_heavy(), 4);
  cosy::baseline::EarlAnalyzer earl;
  const auto results = earl.analyze(trace);
  EXPECT_GT(results[2].matches, 0u);
}

TEST(Earl, EmptyTrace) {
  cosy::baseline::EarlAnalyzer earl;
  const auto results = earl.analyze({});
  for (const auto& result : results) {
    EXPECT_EQ(result.matches, 0u);
    EXPECT_DOUBLE_EQ(result.total_ms, 0.0);
  }
}
