// Semantic verification of every shipped property against a hand-built
// store with hand-computed severities. The differential tests elsewhere
// prove interpreter == SQL; this suite proves both equal *the paper's
// arithmetic*.

#include <gtest/gtest.h>

#include "asl/interp.hpp"
#include "cosy/db_import.hpp"
#include "cosy/schema_gen.hpp"
#include "cosy/specs.hpp"
#include "cosy/sql_eval.hpp"
#include "perf/timing_types.hpp"
#include "support/error.hpp"

namespace asl = kojak::asl;
namespace cosy = kojak::cosy;
namespace db = kojak::db;
namespace perf = kojak::perf;
using asl::ObjectId;
using asl::PropertyResult;
using asl::RtValue;

namespace {

/// Hand-built population:
///   run0: NoPe=1; run1: NoPe=4.
///   whole (basis): Incl 1000 (run0) / 1600 (run1), Ovhd 100/500,
///     typed (run1): Barrier 120, SendMsg 50, RecvMsg 30, MsgWait 10,
///       MsgPack 4, MsgUnpack 2, IORead 40, IOWrite 20, IOOpen 5,
///       ReduceMsg 60, BroadcastMsg 25, Instrumentation 30, IdleWait 70;
///     typed (run0): Barrier 10.
///   comm: Incl 280 (run0) / 300 (run1);
///     typed (run1): SendMsg 40, RecvMsg 30, MsgWait 10, ReduceMsg 70.
///   ghost: no timings at all (data gap).
///   call0 @ whole: CallTiming run0 (mean 40, stdev 0, counts 10/0),
///                  run1 (MeanTime 40, StdevTime 15, MeanCalls 10,
///                        StdevCalls 4).
class PropertySemantics : public ::testing::Test {
 protected:
  PropertySemantics() : model_(cosy::load_cosy_model()), store_(model_) {
    const auto enum_id = *model_.find_enum("TimingType");
    program_ = store_.create("Program");
    store_.set_attr(program_, "Name", RtValue::of_string("hand"));
    version_ = store_.create("ProgVersion");
    store_.add_to_set(program_, "Versions", version_);

    for (int r = 0; r < 2; ++r) {
      const ObjectId run = store_.create("TestRun");
      store_.set_attr(run, "NoPe", RtValue::of_int(r == 0 ? 1 : 4));
      store_.set_attr(run, "Clockspeed", RtValue::of_int(450));
      store_.set_attr(run, "Start", RtValue::of_int(941806800 + r));
      store_.add_to_set(version_, "Runs", run);
      runs_.push_back(run);
    }

    fn_ = store_.create("Function");
    store_.set_attr(fn_, "Name", RtValue::of_string("main"));
    store_.add_to_set(version_, "Functions", fn_);

    whole_ = make_region("whole");
    comm_ = make_region("comm");
    ghost_ = make_region("ghost");

    add_total(whole_, runs_[0], 1000.0, 800.0, 100.0);
    add_total(whole_, runs_[1], 1600.0, 800.0, 500.0);
    add_total(comm_, runs_[0], 280.0, 200.0, 60.0);
    add_total(comm_, runs_[1], 300.0, 200.0, 90.0);

    using TT = perf::TimingType;
    const std::pair<TT, double> whole_run1[] = {
        {TT::kBarrier, 120},   {TT::kSendMsg, 50},  {TT::kRecvMsg, 30},
        {TT::kMsgWait, 10},    {TT::kMsgPack, 4},   {TT::kMsgUnpack, 2},
        {TT::kIORead, 40},     {TT::kIOWrite, 20},  {TT::kIOOpen, 5},
        {TT::kReduceMsg, 60},  {TT::kBroadcastMsg, 25},
        {TT::kInstrumentation, 30},                 {TT::kIdleWait, 70},
    };
    for (const auto& [type, ms] : whole_run1) {
      add_typed(whole_, runs_[1], enum_id, type, ms);
    }
    add_typed(whole_, runs_[0], enum_id, TT::kBarrier, 10);
    const std::pair<TT, double> comm_run1[] = {
        {TT::kSendMsg, 40}, {TT::kRecvMsg, 30}, {TT::kMsgWait, 10},
        {TT::kReduceMsg, 70},
    };
    for (const auto& [type, ms] : comm_run1) {
      add_typed(comm_, runs_[1], enum_id, type, ms);
    }

    call_ = store_.create("FunctionCall");
    store_.set_attr(call_, "Caller", RtValue::of_object(fn_));
    store_.set_attr(call_, "CallingReg", RtValue::of_object(whole_));
    store_.add_to_set(fn_, "Calls", call_);
    add_call_timing(runs_[0], /*mean_time=*/40, /*stdev_time=*/0,
                    /*mean_calls=*/10, /*stdev_calls=*/0);
    add_call_timing(runs_[1], 40, 15, 10, 4);
  }

  ObjectId make_region(const char* name) {
    const ObjectId region = store_.create("Region");
    store_.set_attr(region, "Name", RtValue::of_string(name));
    store_.set_attr(region, "Kind", RtValue::of_string("Loop"));
    store_.add_to_set(fn_, "Regions", region);
    return region;
  }

  void add_total(ObjectId region, ObjectId run, double incl, double excl,
                 double ovhd) {
    const ObjectId total = store_.create("TotalTiming");
    store_.set_attr(total, "Run", RtValue::of_object(run));
    store_.set_attr(total, "Incl", RtValue::of_float(incl));
    store_.set_attr(total, "Excl", RtValue::of_float(excl));
    store_.set_attr(total, "Ovhd", RtValue::of_float(ovhd));
    store_.add_to_set(region, "TotTimes", total);
  }

  void add_typed(ObjectId region, ObjectId run, std::uint32_t enum_id,
                 perf::TimingType type, double ms) {
    const ObjectId typed = store_.create("TypedTiming");
    store_.set_attr(typed, "Run", RtValue::of_object(run));
    store_.set_attr(typed, "Type",
                    RtValue::of_enum(enum_id, static_cast<std::int32_t>(type)));
    store_.set_attr(typed, "Time", RtValue::of_float(ms));
    store_.add_to_set(region, "TypTimes", typed);
  }

  void add_call_timing(ObjectId run, double mean_time, double stdev_time,
                       double mean_calls, double stdev_calls) {
    const ObjectId ct = store_.create("CallTiming");
    store_.set_attr(ct, "Run", RtValue::of_object(run));
    store_.set_attr(ct, "MinCalls", RtValue::of_float(mean_calls - stdev_calls));
    store_.set_attr(ct, "MaxCalls", RtValue::of_float(mean_calls + stdev_calls));
    store_.set_attr(ct, "MeanCalls", RtValue::of_float(mean_calls));
    store_.set_attr(ct, "StdevCalls", RtValue::of_float(stdev_calls));
    store_.set_attr(ct, "MinCallsPe", RtValue::of_int(0));
    store_.set_attr(ct, "MaxCallsPe", RtValue::of_int(3));
    store_.set_attr(ct, "MinTime", RtValue::of_float(mean_time - stdev_time));
    store_.set_attr(ct, "MaxTime", RtValue::of_float(mean_time + stdev_time));
    store_.set_attr(ct, "MeanTime", RtValue::of_float(mean_time));
    store_.set_attr(ct, "StdevTime", RtValue::of_float(stdev_time));
    store_.set_attr(ct, "MinTimePe", RtValue::of_int(1));
    store_.set_attr(ct, "MaxTimePe", RtValue::of_int(2));
    store_.add_to_set(call_, "Sums", ct);
  }

  /// Evaluates (property, first, run1, basis=whole) with the interpreter.
  PropertyResult eval(const char* property, ObjectId first,
                      std::size_t run_index = 1) {
    const asl::Interpreter interp(model_, store_);
    return interp.evaluate_property(
        *model_.find_property(property),
        {RtValue::of_object(first), RtValue::of_object(runs_[run_index]),
         RtValue::of_object(whole_)});
  }

  asl::Model model_;
  asl::ObjectStore store_;
  ObjectId program_ = 0, version_ = 0, fn_ = 0;
  ObjectId whole_ = 0, comm_ = 0, ghost_ = 0, call_ = 0;
  std::vector<ObjectId> runs_;
};

}  // namespace

TEST_F(PropertySemantics, SublinearSpeedup) {
  const PropertyResult r = eval("SublinearSpeedup", whole_);
  ASSERT_TRUE(r.holds());
  // TotalCost = 1600 - 1000; severity = 600 / Duration(whole, run1).
  EXPECT_NEAR(r.severity, 600.0 / 1600.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.confidence, 1.0);
}

TEST_F(PropertySemantics, SublinearSpeedupReferenceRun) {
  // In the 1-PE run the cost is zero: the property must not hold.
  EXPECT_EQ(eval("SublinearSpeedup", whole_, 0).status,
            PropertyResult::Status::kDoesNotHold);
}

TEST_F(PropertySemantics, MeasuredCost) {
  const PropertyResult r = eval("MeasuredCost", whole_);
  ASSERT_TRUE(r.holds());
  EXPECT_NEAR(r.severity, 500.0 / 1600.0, 1e-12);
}

TEST_F(PropertySemantics, UnmeasuredCost) {
  const PropertyResult r = eval("UnmeasuredCost", whole_);
  ASSERT_TRUE(r.holds());
  // (1600 - 1000) - 500 = 100.
  EXPECT_NEAR(r.severity, 100.0 / 1600.0, 1e-12);
}

TEST_F(PropertySemantics, SyncCost) {
  const PropertyResult r = eval("SyncCost", whole_);
  ASSERT_TRUE(r.holds());
  EXPECT_NEAR(r.severity, 120.0 / 1600.0, 1e-12);
  // Reference run: barrier 10 over duration 1000.
  const PropertyResult r0 = eval("SyncCost", whole_, 0);
  EXPECT_NEAR(r0.severity, 10.0 / 1000.0, 1e-12);
}

TEST_F(PropertySemantics, LoadImbalance) {
  const PropertyResult r = eval("LoadImbalance", call_);
  ASSERT_TRUE(r.holds());  // 15 > 0.25 * 40
  EXPECT_NEAR(r.severity, 40.0 / 1600.0, 1e-12);
  // Run 0 has zero deviation: not an imbalance.
  EXPECT_EQ(eval("LoadImbalance", call_, 0).status,
            PropertyResult::Status::kDoesNotHold);
}

TEST_F(PropertySemantics, IOCost) {
  const PropertyResult r = eval("IOCost", whole_);
  ASSERT_TRUE(r.holds());
  EXPECT_NEAR(r.severity, (40.0 + 20.0 + 5.0) / 1600.0, 1e-12);
}

TEST_F(PropertySemantics, MessagePassingCost) {
  const PropertyResult r = eval("MessagePassingCost", whole_);
  ASSERT_TRUE(r.holds());
  EXPECT_NEAR(r.severity, (50 + 30 + 10 + 4 + 2) / 1600.0, 1e-12);
}

TEST_F(PropertySemantics, CollectiveCost) {
  const PropertyResult r = eval("CollectiveCost", whole_);
  ASSERT_TRUE(r.holds());
  EXPECT_NEAR(r.severity, (60.0 + 25.0) / 1600.0, 1e-12);
}

TEST_F(PropertySemantics, CommunicationBoundGuards) {
  // At 'whole': Msg = 90 < 0.2*1600 and Coll = 85 < 320 -> does not hold.
  EXPECT_EQ(eval("CommunicationBound", whole_).status,
            PropertyResult::Status::kDoesNotHold);
  // At 'comm': Msg = 80 > 0.2*300 = 60 -> p2p guard; Coll = 70 also > 60,
  // but p2p is the first matched condition. Both guarded severity arms are
  // eligible; MAX picks the larger (80/1600).
  const PropertyResult r = eval("CommunicationBound", comm_);
  ASSERT_TRUE(r.holds());
  EXPECT_EQ(r.matched_condition, "p2p");
  EXPECT_NEAR(r.confidence, 0.9, 1e-12);
  EXPECT_NEAR(r.severity, 80.0 / 1600.0, 1e-12);
}

TEST_F(PropertySemantics, SmallMessageOverhead) {
  const PropertyResult r = eval("SmallMessageOverhead", whole_);
  ASSERT_TRUE(r.holds());  // pack 6 > 0.04 * 80
  EXPECT_NEAR(r.severity, 6.0 / 1600.0, 1e-12);
  EXPECT_NEAR(r.confidence, 0.75, 1e-12);
  // 'comm' has no pack/unpack time -> condition fails.
  EXPECT_FALSE(eval("SmallMessageOverhead", comm_).holds());
}

TEST_F(PropertySemantics, InstrumentationOverhead) {
  const PropertyResult r = eval("InstrumentationOverhead", whole_);
  ASSERT_TRUE(r.holds());  // 30 > 0.01 * 1600
  EXPECT_NEAR(r.severity, 30.0 / 1600.0, 1e-12);
  EXPECT_NEAR(r.confidence, 0.7, 1e-12);
}

TEST_F(PropertySemantics, IdleWaitCost) {
  const PropertyResult r = eval("IdleWaitCost", whole_);
  ASSERT_TRUE(r.holds());
  EXPECT_NEAR(r.severity, 70.0 / 1600.0, 1e-12);
}

TEST_F(PropertySemantics, ImbalancedPassCounts) {
  const PropertyResult r = eval("ImbalancedPassCounts", call_);
  ASSERT_TRUE(r.holds());  // 4 > 0.25 * 10
  EXPECT_NEAR(r.severity, 40.0 / 1600.0, 1e-12);
  EXPECT_NEAR(r.confidence, 0.8, 1e-12);
}

TEST_F(PropertySemantics, GhostRegionIsNotApplicable) {
  const PropertyResult r = eval("SublinearSpeedup", ghost_);
  EXPECT_EQ(r.status, PropertyResult::Status::kNotApplicable);
  EXPECT_FALSE(r.note.empty());
}

TEST_F(PropertySemantics, SqlStrategyMatchesHandNumbers) {
  db::Database database;
  cosy::create_schema(database, model_);
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::import_store(conn, store_);
  for (const auto mode :
       {cosy::SqlEvalMode::kPushdown, cosy::SqlEvalMode::kClientSide}) {
    cosy::SqlEvaluator sql(model_, conn, mode);
    const PropertyResult r = sql.evaluate_property(
        *model_.find_property("SublinearSpeedup"),
        {RtValue::of_object(whole_), RtValue::of_object(runs_[1]),
         RtValue::of_object(whole_)});
    ASSERT_TRUE(r.holds());
    EXPECT_NEAR(r.severity, 600.0 / 1600.0, 1e-12);
  }
}
