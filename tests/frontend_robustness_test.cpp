// Robustness property tests for both front ends: randomly mutated sources
// must either parse or fail with a *clean* diagnostic (ParseError/SemaError
// with a position) — never crash, hang, or corrupt state. The repro note on
// this paper flags "parsing awkward"; these sweeps are the guard rail.

#include <gtest/gtest.h>

#include "asl/parser.hpp"
#include "asl/sema.hpp"
#include "cosy/specs.hpp"
#include "db/sql/parser.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace asl = kojak::asl;
namespace cosy = kojak::cosy;
namespace sql = kojak::db::sql;
using kojak::support::Error;
using kojak::support::Rng;

namespace {

/// Applies `count` random single-character edits (delete / duplicate /
/// replace with a character drawn from the language's alphabet).
std::string mutate(std::string text, Rng& rng, int count,
                   std::string_view alphabet) {
  for (int i = 0; i < count && !text.empty(); ++i) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
    switch (rng.uniform_int(0, 2)) {
      case 0:
        text.erase(pos, 1);
        break;
      case 1:
        text.insert(pos, 1, text[pos]);
        break;
      default:
        text[pos] = alphabet[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(alphabet.size()) - 1))];
        break;
    }
  }
  return text;
}

constexpr std::string_view kAslAlphabet =
    "abcxyzRT09_.;:,(){}<>=+-*/\"' \n";
constexpr std::string_view kSqlAlphabet =
    "abcxyzT09_.;:,()*<>=+-/'% \n";

}  // namespace

class AslMutation : public ::testing::TestWithParam<int> {};

TEST_P(AslMutation, NeverCrashesOnMutatedSpecs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::string base = kojak::support::cat(
      cosy::cosy_model_source(), "\n", cosy::cosy_properties_source());
  int parsed_ok = 0;
  int rejected = 0;
  for (int round = 0; round < 40; ++round) {
    const std::string source =
        mutate(base, rng, 1 + round % 8, kAslAlphabet);
    try {
      const asl::ParseResult result = asl::parse_spec(source);
      if (result.ok()) {
        ++parsed_ok;
        // Whatever parsed must also survive sema (cleanly) and printing.
        try {
          asl::ast::SpecFile copy = asl::parse_spec_or_throw(source);
          (void)asl::analyze(std::move(copy));
        } catch (const Error&) {
          // semantic rejection is fine
        }
      } else {
        ++rejected;
        EXPECT_GT(result.diags.error_count(), 0u);
        // Every diagnostic carries a plausible position.
        for (const auto& diag : result.diags.diagnostics()) {
          EXPECT_GE(diag.loc.line, 1u);
        }
      }
    } catch (const Error&) {
      ++rejected;  // lexer-level rejection is equally acceptable
    }
  }
  // The sweep must exercise both outcomes.
  EXPECT_GT(parsed_ok + rejected, 0);
  EXPECT_GT(rejected, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AslMutation, ::testing::Range(1, 7));

class SqlMutation : public ::testing::TestWithParam<int> {};

TEST_P(SqlMutation, NeverCrashesOnMutatedStatements) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::string base =
      "SELECT r.Name, SUM(t.Incl) AS s FROM Region r "
      "JOIN Region_TotTimes j ON j.owner = r.id "
      "JOIN TotalTiming t ON t.id = j.member "
      "WHERE t.Run = 3 AND r.Kind LIKE 'L%' "
      "GROUP BY r.Name HAVING COUNT(*) > 1 ORDER BY s DESC LIMIT 10";
  int rejected = 0;
  for (int round = 0; round < 120; ++round) {
    const std::string source = mutate(base, rng, 1 + round % 6, kSqlAlphabet);
    try {
      (void)sql::parse_sql(source);
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlMutation, ::testing::Range(1, 7));

TEST(AslRecovery, DiagnosticsPointIntoTheSource) {
  // A targeted broken spec: the rendered diagnostics must carry the caret
  // into the right line.
  const char* source =
      "class Ok { int X; }\n"
      "Property Broken(Region r) {\n"
      "  CONDITION r.X > 0;\n"  // missing ':'
      "  CONFIDENCE: 1; SEVERITY: 1;\n"
      "};\n";
  const asl::ParseResult result = asl::parse_spec(source);
  ASSERT_FALSE(result.ok());
  const std::string rendered = result.diags.render(source);
  EXPECT_NE(rendered.find("3:"), std::string::npos);
  EXPECT_NE(rendered.find("^"), std::string::npos);
}

TEST(AslRecovery, KeepsGoodDeclarationsAroundBadOnes) {
  // Shuffle a set of declarations with one broken each time: the good ones
  // must always survive recovery.
  Rng rng(7);
  const std::vector<std::string> good = {
      "class A { int X; }",
      "class B { float Y; }",
      "enum E { M1, M2 };",
      "const float T = 0.5;",
      "Property P(A a) { CONDITION: a.X > 0; CONFIDENCE: 1; SEVERITY: 1; };",
  };
  for (int round = 0; round < 20; ++round) {
    std::vector<std::string> decls = good;
    decls.insert(decls.begin() + rng.uniform_int(0, 4),
                 "Property Broken(A a) { CONDITION a.X; };");
    std::string source;
    for (const auto& decl : decls) source += decl + "\n";
    const asl::ParseResult result = asl::parse_spec(source);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.spec.classes.size(), 2u) << source;
    EXPECT_EQ(result.spec.enums.size(), 1u);
    EXPECT_EQ(result.spec.constants.size(), 1u);
    EXPECT_EQ(result.spec.properties.size(), 1u);
  }
}
