#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <sstream>

#include "support/csv.hpp"
#include "support/diagnostics.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace ks = kojak::support;

// ---------------------------------------------------------------------------
// RunningStats

TEST(RunningStats, EmptyIsZero) {
  ks::RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev_sample(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  ks::RunningStats stats;
  stats.push(42.0, 7);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 42.0);
  EXPECT_DOUBLE_EQ(stats.stddev_sample(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 42.0);
  EXPECT_DOUBLE_EQ(stats.max(), 42.0);
  EXPECT_EQ(stats.min_tag(), 7u);
  EXPECT_EQ(stats.max_tag(), 7u);
}

TEST(RunningStats, MatchesNaiveFormulas) {
  const std::vector<double> xs = {3.0, 1.5, 9.25, -2.0, 4.0, 4.0, 17.5};
  ks::RunningStats stats;
  for (std::size_t i = 0; i < xs.size(); ++i) stats.push(xs[i], i);

  const double n = static_cast<double>(xs.size());
  const double mean = std::accumulate(xs.begin(), xs.end(), 0.0) / n;
  double ss = 0;
  for (double x : xs) ss += (x - mean) * (x - mean);

  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance_population(), ss / n, 1e-12);
  EXPECT_NEAR(stats.variance_sample(), ss / (n - 1), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), -2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 17.5);
  EXPECT_EQ(stats.min_tag(), 3u);
  EXPECT_EQ(stats.max_tag(), 6u);
  EXPECT_NEAR(stats.sum(), mean * n, 1e-9);
}

TEST(RunningStats, MinMaxTagKeepsFirstExtreme) {
  ks::RunningStats stats;
  stats.push(5.0, 0);
  stats.push(5.0, 1);  // equal: strict < keeps the first
  EXPECT_EQ(stats.min_tag(), 0u);
  EXPECT_EQ(stats.max_tag(), 0u);
}

TEST(RunningStats, MergeEqualsSequential) {
  std::vector<double> xs(257);
  ks::Rng rng(17);
  for (double& x : xs) x = rng.normal(10.0, 4.0);

  ks::RunningStats all;
  for (std::size_t i = 0; i < xs.size(); ++i) all.push(xs[i], i);

  ks::RunningStats a, b;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 100 ? a : b).push(xs[i], i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance_sample(), all.variance_sample(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_EQ(a.min_tag(), all.min_tag());
  EXPECT_EQ(a.max_tag(), all.max_tag());
}

TEST(RunningStats, MergeWithEmpty) {
  ks::RunningStats a, b;
  a.push(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

// ---------------------------------------------------------------------------
// String helpers

TEST(Str, Trim) {
  EXPECT_EQ(ks::trim("  a b  "), "a b");
  EXPECT_EQ(ks::trim("\t\n x \r"), "x");
  EXPECT_EQ(ks::trim(""), "");
  EXPECT_EQ(ks::trim("   "), "");
}

TEST(Str, Split) {
  EXPECT_EQ(ks::split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(ks::split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(ks::split("", ','), (std::vector<std::string>{""}));
}

TEST(Str, SplitWs) {
  EXPECT_EQ(ks::split_ws("  a\tb  c\n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(ks::split_ws("   ").empty());
}

TEST(Str, JoinAndCase) {
  EXPECT_EQ(ks::join({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(ks::join({}, ","), "");
  EXPECT_EQ(ks::to_lower("AbC"), "abc");
  EXPECT_EQ(ks::to_upper("AbC"), "ABC");
  EXPECT_TRUE(ks::iequals("SELECT", "select"));
  EXPECT_FALSE(ks::iequals("SELECT", "selec"));
}

TEST(Str, StartsEndsWith) {
  EXPECT_TRUE(ks::starts_with("REGION main", "REGION "));
  EXPECT_FALSE(ks::starts_with("REG", "REGION"));
  EXPECT_TRUE(ks::ends_with("file.asl", ".asl"));
  EXPECT_FALSE(ks::ends_with(".asl", "file.asl"));
}

TEST(Str, SqlQuote) {
  EXPECT_EQ(ks::sql_quote("abc"), "'abc'");
  EXPECT_EQ(ks::sql_quote("o'brien"), "'o''brien'");
  EXPECT_EQ(ks::sql_quote(""), "''");
}

TEST(Str, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.5, -3.25, 1e-9, 123456789.123456, 2.0 / 3.0}) {
    EXPECT_DOUBLE_EQ(std::stod(ks::format_double(v)), v);
  }
}

TEST(Str, Cat) {
  EXPECT_EQ(ks::cat("a", 1, '-', 2.5), "a1-2.5");
  EXPECT_EQ(ks::cat(), "");
}

// ---------------------------------------------------------------------------
// Diagnostics

TEST(Diagnostics, CollectsAndCounts) {
  ks::DiagnosticEngine diags;
  EXPECT_FALSE(diags.has_errors());
  diags.warning({1, 2, 0}, "w");
  EXPECT_FALSE(diags.has_errors());
  diags.error({2, 3, 0}, "e");
  diags.note({2, 4, 0}, "n");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.diagnostics().size(), 3u);
}

TEST(Diagnostics, RenderWithCaret) {
  ks::DiagnosticEngine diags;
  diags.error({2, 5, 0}, "bad token");
  const std::string out = diags.render("line one\nline two here\n");
  EXPECT_NE(out.find("2:5: error: bad token"), std::string::npos);
  EXPECT_NE(out.find("line two here"), std::string::npos);
  EXPECT_NE(out.find("    ^"), std::string::npos);
}

TEST(Diagnostics, Clear) {
  ks::DiagnosticEngine diags;
  diags.error({}, "x");
  diags.clear();
  EXPECT_FALSE(diags.has_errors());
  EXPECT_TRUE(diags.diagnostics().empty());
}

// ---------------------------------------------------------------------------
// Rng

TEST(Rng, Deterministic) {
  ks::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformBounds) {
  ks::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, NormalAtLeastClamps) {
  ks::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.normal_at_least(0.0, 10.0, 0.5), 0.5);
  }
}

TEST(Rng, ForkIndependent) {
  ks::Rng a(5);
  ks::Rng child = a.fork();
  // The fork must not replay the parent's stream.
  ks::Rng b(5);
  (void)b.fork();
  EXPECT_NE(child.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
}

// ---------------------------------------------------------------------------
// TablePrinter

TEST(TablePrinter, AlignsColumns) {
  ks::TablePrinter table;
  table.add_column("name").add_column("n", ks::TablePrinter::Align::kRight);
  table.add_row({"alpha", "1"});
  table.add_row({"b", "100"});
  const std::string out = table.render();
  EXPECT_NE(out.find("alpha    1"), std::string::npos);
  EXPECT_NE(out.find("b      100"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TablePrinter, MissingAndSurplusCells) {
  ks::TablePrinter table;
  table.add_column("a").add_column("b");
  table.add_row({"only"});
  table.add_row({"x", "y", "ignored"});
  const std::string out = table.render();
  EXPECT_NE(out.find("only"), std::string::npos);
  EXPECT_EQ(out.find("ignored"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CSV

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(ks::CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(ks::CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(ks::CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WriteAndParseRoundTrip) {
  std::ostringstream out;
  ks::CsvWriter writer(out);
  writer.write_row({"a", "with,comma", "with \"quote\""});
  const std::string line = out.str().substr(0, out.str().size() - 1);
  const auto fields = ks::parse_csv_line(line);
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "with,comma");
  EXPECT_EQ(fields[2], "with \"quote\"");
}

TEST(Csv, ParsePlainLine) {
  const auto fields = ks::parse_csv_line("1,2,3");
  EXPECT_EQ(fields, (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(ks::parse_csv_line(""), (std::vector<std::string>{""}));
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, SubmitReturnsValue) {
  ks::ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ks::ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw ks::Error("boom"); });
  EXPECT_THROW(f.get(), ks::Error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ks::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmpty) {
  ks::ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForRethrows) {
  ks::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(16,
                                 [](std::size_t i) {
                                   if (i == 7) throw ks::Error("x");
                                 }),
               ks::Error);
}

// ---------------------------------------------------------------------------
// Errors

TEST(Errors, ParseErrorCarriesLocation) {
  const ks::ParseError error("unexpected token", {3, 9, 42});
  EXPECT_EQ(error.loc().line, 3u);
  EXPECT_NE(std::string(error.what()).find("3:9"), std::string::npos);
}

TEST(Errors, HierarchyCatchableAsBase) {
  try {
    throw ks::EvalError("x");
  } catch (const ks::Error& e) {
    EXPECT_STREQ(e.what(), "x");
  }
}
