#include <gtest/gtest.h>

#include "asl/interp.hpp"
#include "asl/sema.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace asl = kojak::asl;
using asl::ObjectId;
using asl::PropertyResult;
using asl::RtValue;
using kojak::support::EvalError;

namespace {

constexpr const char* kModel = R"(
enum Color { Red, Green, Blue };
class Leaf { int N; float X; String S; Color C; }
class Node { String Name; Node Next; setof Leaf Leaves; }
)";

/// Fixture with three leaves under one node:
///   leaf0: N=1, X=1.5, S="a", C=Red
///   leaf1: N=2, X=2.5, S="b", C=Green
///   leaf2: N=2, X=-4.0, S="c", C=Green
class InterpTest : public ::testing::Test {
 protected:
  explicit InterpTest(std::string_view extra_spec = "")
      : model_(asl::load_model({kModel, extra_spec})), store_(model_) {
    node_ = store_.create("Node");
    store_.set_attr(node_, "Name", RtValue::of_string("root"));
    const auto enum_id = *model_.find_enum("Color");
    const int ns[] = {1, 2, 2};
    const double xs[] = {1.5, 2.5, -4.0};
    const char* ss[] = {"a", "b", "c"};
    const std::int32_t cs[] = {0, 1, 1};
    for (int i = 0; i < 3; ++i) {
      const ObjectId leaf = store_.create("Leaf");
      store_.set_attr(leaf, "N", RtValue::of_int(ns[i]));
      store_.set_attr(leaf, "X", RtValue::of_float(xs[i]));
      store_.set_attr(leaf, "S", RtValue::of_string(ss[i]));
      store_.set_attr(leaf, "C", RtValue::of_enum(enum_id, cs[i]));
      store_.add_to_set(node_, "Leaves", leaf);
      leaves_.push_back(leaf);
    }
  }

  /// Parses `expr_source` as the body of a throwaway function over (Node n)
  /// and evaluates it with n = node_.
  RtValue eval_node_expr(std::string_view type, std::string_view expr_source) {
    const asl::Model model = asl::load_model(
        {kModel, kojak::support::cat(type, " TestFn(Node n) = ", expr_source, ";")});
    // The store was built against model_, whose class ids match (same spec
    // prefix), so evaluation against the new model is safe.
    asl::ObjectStore store(model);
    rebuild_into(store);
    const asl::Interpreter interp(model, store);
    return interp.call(*model.find_function("TestFn"),
                       {RtValue::of_object(node_)});
  }

  void rebuild_into(asl::ObjectStore& store) {
    // Replay the fixture into a store bound to another (extended) model.
    const ObjectId node = store.create("Node");
    store.set_attr(node, "Name", store_.attr(node_, "Name"));
    for (const ObjectId leaf : leaves_) {
      const ObjectId copy = store.create("Leaf");
      for (const char* attr : {"N", "X", "S", "C"}) {
        store.set_attr(copy, attr, store_.attr(leaf, attr));
      }
      store.add_to_set(node, "Leaves", copy);
    }
  }

  asl::Model model_;
  asl::ObjectStore store_;
  ObjectId node_ = asl::kNullObject;
  std::vector<ObjectId> leaves_;
};

}  // namespace

// ---------------------------------------------------------------------------
// ObjectStore semantics

TEST_F(InterpTest, StoreBasics) {
  EXPECT_EQ(store_.size(), 4u);
  EXPECT_EQ(store_.all_of("Leaf").size(), 3u);
  EXPECT_EQ(store_.all_of("Node").size(), 1u);
  EXPECT_EQ(store_.attr(node_, "Name").as_string(), "root");
  EXPECT_TRUE(store_.attr(node_, "Next").is_null());
  EXPECT_EQ(store_.attr(node_, "Leaves").as_set().size(), 3u);
}

TEST_F(InterpTest, StoreErrors) {
  EXPECT_THROW(store_.create("Nope"), EvalError);
  EXPECT_THROW((void)store_.attr(node_, "Nope"), EvalError);
  EXPECT_THROW(store_.set_attr(node_, "Nope", RtValue::null()), EvalError);
}

TEST(RtValue, EqualsSemantics) {
  EXPECT_TRUE(RtValue::equals(RtValue::of_int(2), RtValue::of_float(2.0)));
  EXPECT_TRUE(RtValue::equals(RtValue::null(), RtValue::null()));
  EXPECT_FALSE(RtValue::equals(RtValue::null(), RtValue::of_object(1)));
  EXPECT_TRUE(RtValue::equals(RtValue::of_object(3), RtValue::of_object(3)));
  EXPECT_FALSE(RtValue::equals(RtValue::of_enum(0, 1), RtValue::of_enum(0, 2)));
  EXPECT_THROW((void)RtValue::equals(RtValue::of_string("1"), RtValue::of_int(1)),
               EvalError);
}

// ---------------------------------------------------------------------------
// Expression evaluation

TEST_F(InterpTest, Arithmetic) {
  EXPECT_EQ(eval_node_expr("int", "1 + 2 * 3").as_int(), 7);
  EXPECT_DOUBLE_EQ(eval_node_expr("float", "7 / 2").as_float(), 3.5);
  EXPECT_EQ(eval_node_expr("int", "-(3 - 5)").as_int(), 2);
  EXPECT_DOUBLE_EQ(eval_node_expr("float", "2.5 * 2").as_float(), 5.0);
}

TEST_F(InterpTest, DivisionByZeroThrows) {
  EXPECT_THROW(eval_node_expr("float", "1 / (1 - 1)"), EvalError);
}

TEST_F(InterpTest, MemberChains) {
  EXPECT_EQ(eval_node_expr("String", "n.Name").as_string(), "root");
}

TEST_F(InterpTest, NullMemberAccessThrows) {
  EXPECT_THROW(eval_node_expr("String", "n.Next.Name"), EvalError);
}

TEST_F(InterpTest, ComprehensionFilters) {
  EXPECT_EQ(eval_node_expr("int", "SIZE({l IN n.Leaves WITH l.N == 2})").as_int(),
            2);
  EXPECT_EQ(eval_node_expr("int", "SIZE({l IN n.Leaves WITH l.X > 100})").as_int(),
            0);
  EXPECT_EQ(eval_node_expr("int", "SIZE(n.Leaves)").as_int(), 3);
}

TEST_F(InterpTest, ComprehensionOverEnum) {
  EXPECT_EQ(
      eval_node_expr("int", "SIZE({l IN n.Leaves WITH l.C == Green})").as_int(),
      2);
}

TEST_F(InterpTest, Aggregates) {
  EXPECT_DOUBLE_EQ(eval_node_expr("float", "SUM(l.X WHERE l IN n.Leaves)").as_float(),
                   0.0);  // 1.5 + 2.5 - 4.0
  EXPECT_EQ(eval_node_expr("int", "MIN(l.N WHERE l IN n.Leaves)").as_int(), 1);
  EXPECT_EQ(eval_node_expr("int", "MAX(l.N WHERE l IN n.Leaves)").as_int(), 2);
  EXPECT_DOUBLE_EQ(
      eval_node_expr("float", "AVG(l.X WHERE l IN n.Leaves)").as_float(),
      0.0);
  EXPECT_EQ(eval_node_expr("int",
                           "COUNT(l WHERE l IN n.Leaves AND l.X > 0)")
                .as_int(),
            2);
}

TEST_F(InterpTest, AggregateWithCompoundFilter) {
  EXPECT_DOUBLE_EQ(
      eval_node_expr("float",
                     "SUM(l.X WHERE l IN n.Leaves AND l.N == 2 AND l.C == Green)")
          .as_float(),
      -1.5);
}

TEST_F(InterpTest, AggregatesOverEmptySets) {
  EXPECT_DOUBLE_EQ(
      eval_node_expr("float", "SUM(l.X WHERE l IN n.Leaves AND l.N > 99)")
          .as_float(),
      0.0);
  EXPECT_EQ(
      eval_node_expr("int", "COUNT(l WHERE l IN n.Leaves AND l.N > 99)").as_int(),
      0);
  EXPECT_THROW(eval_node_expr("int", "MIN(l.N WHERE l IN n.Leaves AND l.N > 99)"),
               EvalError);
  EXPECT_THROW(eval_node_expr("float", "AVG(l.X WHERE l IN n.Leaves AND l.N > 99)"),
               EvalError);
}

TEST_F(InterpTest, IdentityAggregate) {
  // MAX over a single scalar (degenerate list form) is the identity.
  EXPECT_DOUBLE_EQ(eval_node_expr("float", "MAX(2.5)").as_float(), 2.5);
}

TEST_F(InterpTest, UniqueSemantics) {
  EXPECT_EQ(eval_node_expr(
                "int", "UNIQUE({l IN n.Leaves WITH l.N == 1}).N")
                .as_int(),
            1);
  EXPECT_THROW(eval_node_expr("int", "UNIQUE(n.Leaves).N"), EvalError);
  EXPECT_THROW(
      eval_node_expr("int", "UNIQUE({l IN n.Leaves WITH l.N > 99}).N"),
      EvalError);
}

TEST_F(InterpTest, ExistsSemantics) {
  EXPECT_TRUE(
      eval_node_expr("bool", "EXISTS({l IN n.Leaves WITH l.X < 0})").as_bool());
  EXPECT_FALSE(
      eval_node_expr("bool", "EXISTS({l IN n.Leaves WITH l.X > 99})").as_bool());
}

TEST_F(InterpTest, BooleanShortCircuit) {
  // Short-circuit: the RHS would throw (division by zero).
  EXPECT_FALSE(eval_node_expr("bool", "false AND 1 / 0 > 0").as_bool());
  EXPECT_TRUE(eval_node_expr("bool", "true OR 1 / 0 > 0").as_bool());
}

TEST_F(InterpTest, Comparisons) {
  EXPECT_TRUE(eval_node_expr("bool", "2 == 2.0").as_bool());
  EXPECT_TRUE(eval_node_expr("bool", "n.Name == \"root\"").as_bool());
  EXPECT_TRUE(eval_node_expr("bool", "n.Next == null").as_bool());
  EXPECT_TRUE(eval_node_expr("bool", "\"abc\" < \"abd\"").as_bool());
  EXPECT_FALSE(eval_node_expr("bool", "3 != 3").as_bool());
}

TEST_F(InterpTest, UserFunctionComposition) {
  const asl::Model model = asl::load_model(
      {kModel,
       "float Total(Node n) = SUM(l.X WHERE l IN n.Leaves);\n"
       "float Scaled(Node n, float f) = Total(n) * f + 1.0;\n"});
  asl::ObjectStore store(model);
  rebuild_into(store);
  const asl::Interpreter interp(model, store);
  const RtValue result = interp.call(*model.find_function("Scaled"),
                                     {RtValue::of_object(0), RtValue::of_float(2.0)});
  EXPECT_DOUBLE_EQ(result.as_float(), 1.0);
}

TEST_F(InterpTest, Constants) {
  const asl::Model model = asl::load_model(
      {kModel, "const float Threshold = 0.25;\n"
               "bool F(Node n) = SIZE(n.Leaves) > Threshold * 4;\n"});
  asl::ObjectStore store(model);
  rebuild_into(store);
  const asl::Interpreter interp(model, store);
  EXPECT_TRUE(interp.call(*model.find_function("F"), {RtValue::of_object(0)})
                  .as_bool());
}

// ---------------------------------------------------------------------------
// Property evaluation

class InterpPropertyTest : public InterpTest {
 public:
  PropertyResult run_property(const std::string& source) {
    const asl::Model model = asl::load_model({kModel, source});
    asl::ObjectStore store(model);
    rebuild_into(store);
    const asl::Interpreter interp(model, store);
    return interp.evaluate_property(*model.find_property("P"),
                                    {RtValue::of_object(0)});
  }
};

TEST_F(InterpPropertyTest, HoldsWithSeverity) {
  const PropertyResult result = run_property(
      "Property P(Node n) {\n"
      "  LET float Total = SUM(l.X WHERE l IN n.Leaves AND l.X > 0)\n"
      "  IN CONDITION: Total > 1; CONFIDENCE: 0.8; SEVERITY: Total / 2;\n"
      "};");
  EXPECT_EQ(result.status, PropertyResult::Status::kHolds);
  EXPECT_DOUBLE_EQ(result.confidence, 0.8);
  EXPECT_DOUBLE_EQ(result.severity, 2.0);  // (1.5 + 2.5) / 2
  EXPECT_EQ(result.matched_condition, "#1");
}

TEST_F(InterpPropertyTest, DoesNotHold) {
  const PropertyResult result = run_property(
      "Property P(Node n) { CONDITION: SIZE(n.Leaves) > 99; CONFIDENCE: 1; "
      "SEVERITY: 42; };");
  EXPECT_EQ(result.status, PropertyResult::Status::kDoesNotHold);
  EXPECT_DOUBLE_EQ(result.severity, 0.0);
  EXPECT_DOUBLE_EQ(result.confidence, 0.0);
}

TEST_F(InterpPropertyTest, OrConditionsPickFirstMatch) {
  const PropertyResult result = run_property(
      "Property P(Node n) {\n"
      "  CONDITION: (none) SIZE(n.Leaves) > 99 OR (some) SIZE(n.Leaves) > 0;\n"
      "  CONFIDENCE: 1; SEVERITY: 1;\n"
      "};");
  EXPECT_TRUE(result.holds());
  EXPECT_EQ(result.matched_condition, "some");
}

TEST_F(InterpPropertyTest, GuardedArmsSelectByCondition) {
  const PropertyResult result = run_property(
      "Property P(Node n) {\n"
      "  CONDITION: (neg) EXISTS({l IN n.Leaves WITH l.X < 0})\n"
      "          OR (huge) EXISTS({l IN n.Leaves WITH l.X > 99});\n"
      "  CONFIDENCE: MAX((neg) -> 0.7, (huge) -> 0.9);\n"
      "  SEVERITY: MAX((neg) -> 4.0, (huge) -> 8.0);\n"
      "};");
  EXPECT_TRUE(result.holds());
  // Only the 'neg' guard held, so only its arms are eligible.
  EXPECT_DOUBLE_EQ(result.confidence, 0.7);
  EXPECT_DOUBLE_EQ(result.severity, 4.0);
}

TEST_F(InterpPropertyTest, UnguardedArmAlwaysEligible) {
  const PropertyResult result = run_property(
      "Property P(Node n) {\n"
      "  CONDITION: (a) true OR (b) false;\n"
      "  CONFIDENCE: MAX((b) -> 0.9, 0.3);\n"
      "  SEVERITY: MAX((b) -> 100, 7);\n"
      "};");
  EXPECT_DOUBLE_EQ(result.confidence, 0.3);
  EXPECT_DOUBLE_EQ(result.severity, 7.0);
}

TEST_F(InterpPropertyTest, ConfidenceClampedToUnitInterval) {
  const PropertyResult result = run_property(
      "Property P(Node n) { CONDITION: true; CONFIDENCE: 3.5; SEVERITY: 1; };");
  EXPECT_DOUBLE_EQ(result.confidence, 1.0);
}

TEST_F(InterpPropertyTest, EvaluationErrorsBecomeNotApplicable) {
  const PropertyResult result = run_property(
      "Property P(Node n) {\n"
      "  LET Leaf only = UNIQUE(n.Leaves)\n"  // set has 3 members
      "  IN CONDITION: only.X > 0; CONFIDENCE: 1; SEVERITY: 1;\n"
      "};");
  EXPECT_EQ(result.status, PropertyResult::Status::kNotApplicable);
  EXPECT_NE(result.note.find("UNIQUE"), std::string::npos);
}

TEST_F(InterpPropertyTest, LetsEvaluateInOrder) {
  const PropertyResult result = run_property(
      "Property P(Node n) {\n"
      "  LET float A = SUM(l.X WHERE l IN n.Leaves AND l.X > 0);\n"
      "      float B = A * 2\n"
      "  IN CONDITION: B == 8.0; CONFIDENCE: 1; SEVERITY: B;\n"
      "};");
  EXPECT_TRUE(result.holds());
  EXPECT_DOUBLE_EQ(result.severity, 8.0);
}

TEST_F(InterpPropertyTest, ArgumentArityChecked) {
  const asl::Model model = asl::load_model(
      {kModel,
       "Property P(Node n) { CONDITION: true; CONFIDENCE: 1; SEVERITY: 1; };"});
  asl::ObjectStore store(model);
  rebuild_into(store);
  const asl::Interpreter interp(model, store);
  EXPECT_THROW(
      (void)interp.evaluate_property(*model.find_property("P"), {}),
      EvalError);
}

// ---------------------------------------------------------------------------
// Runtime inheritance (the language feature the COSY model does not use)

TEST(InterpInheritance, SubclassObjectsFlowThroughBaseTypedSets) {
  const asl::Model model = asl::load_model(
      {kModel,
       "class Special extends Leaf { float Extra; }\n"
       "float SumX(Node n) = SUM(l.X WHERE l IN n.Leaves);\n"});
  asl::ObjectStore store(model);
  const ObjectId node = store.create("Node");
  const ObjectId plain = store.create("Leaf");
  store.set_attr(plain, "X", RtValue::of_float(1.0));
  const ObjectId special = store.create("Special");
  store.set_attr(special, "X", RtValue::of_float(2.0));       // inherited slot
  store.set_attr(special, "Extra", RtValue::of_float(9.0));   // own slot
  store.add_to_set(node, "Leaves", plain);
  store.add_to_set(node, "Leaves", special);

  // all_of with subclasses includes Special; without, it does not.
  EXPECT_EQ(store.all_of("Leaf", true).size(), 2u);
  EXPECT_EQ(store.all_of("Leaf", false).size(), 1u);

  const asl::Interpreter interp(model, store);
  const RtValue sum = interp.call(*model.find_function("SumX"),
                                  {RtValue::of_object(node)});
  EXPECT_DOUBLE_EQ(sum.as_float(), 3.0);
}
