#include <gtest/gtest.h>

#include "perf/report_io.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"
#include "support/error.hpp"

namespace perf = kojak::perf;
using kojak::support::ImportError;

namespace {

perf::ExperimentData sample_experiment() {
  return perf::simulate_experiment(perf::workloads::imbalanced_ocean(), {1, 4});
}

void expect_equal(const perf::ExperimentData& a, const perf::ExperimentData& b) {
  EXPECT_EQ(a.structure.program_name, b.structure.program_name);
  EXPECT_EQ(a.structure.compilation_time, b.structure.compilation_time);
  EXPECT_EQ(a.structure.source_code, b.structure.source_code);
  ASSERT_EQ(a.structure.functions.size(), b.structure.functions.size());
  for (std::size_t f = 0; f < a.structure.functions.size(); ++f) {
    EXPECT_EQ(a.structure.functions[f].name, b.structure.functions[f].name);
    ASSERT_EQ(a.structure.functions[f].regions.size(),
              b.structure.functions[f].regions.size());
    for (std::size_t r = 0; r < a.structure.functions[f].regions.size(); ++r) {
      const auto& ra = a.structure.functions[f].regions[r];
      const auto& rb = b.structure.functions[f].regions[r];
      EXPECT_EQ(ra.name, rb.name);
      EXPECT_EQ(ra.kind, rb.kind);
      EXPECT_EQ(ra.parent, rb.parent);
    }
  }
  ASSERT_EQ(a.structure.call_sites.size(), b.structure.call_sites.size());
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    const perf::RunResult& ra = a.runs[i];
    const perf::RunResult& rb = b.runs[i];
    EXPECT_EQ(ra.nope, rb.nope);
    EXPECT_EQ(ra.clockspeed_mhz, rb.clockspeed_mhz);
    EXPECT_EQ(ra.start_time, rb.start_time);
    ASSERT_EQ(ra.regions.size(), rb.regions.size());
    for (std::size_t r = 0; r < ra.regions.size(); ++r) {
      EXPECT_EQ(ra.regions[r].region, rb.regions[r].region);
      EXPECT_DOUBLE_EQ(ra.regions[r].excl_ms, rb.regions[r].excl_ms);
      EXPECT_DOUBLE_EQ(ra.regions[r].incl_ms, rb.regions[r].incl_ms);
      EXPECT_DOUBLE_EQ(ra.regions[r].ovhd_ms, rb.regions[r].ovhd_ms);
      ASSERT_EQ(ra.regions[r].typed_ms.size(), rb.regions[r].typed_ms.size());
      for (std::size_t t = 0; t < ra.regions[r].typed_ms.size(); ++t) {
        EXPECT_EQ(ra.regions[r].typed_ms[t].first,
                  rb.regions[r].typed_ms[t].first);
        EXPECT_DOUBLE_EQ(ra.regions[r].typed_ms[t].second,
                         rb.regions[r].typed_ms[t].second);
      }
    }
    ASSERT_EQ(ra.calls.size(), rb.calls.size());
    for (std::size_t c = 0; c < ra.calls.size(); ++c) {
      EXPECT_EQ(ra.calls[c].site_index, rb.calls[c].site_index);
      EXPECT_DOUBLE_EQ(ra.calls[c].calls.mean, rb.calls[c].calls.mean);
      EXPECT_DOUBLE_EQ(ra.calls[c].calls.stddev, rb.calls[c].calls.stddev);
      EXPECT_DOUBLE_EQ(ra.calls[c].time_ms.min, rb.calls[c].time_ms.min);
      EXPECT_DOUBLE_EQ(ra.calls[c].time_ms.max, rb.calls[c].time_ms.max);
      EXPECT_EQ(ra.calls[c].time_ms.min_pe, rb.calls[c].time_ms.min_pe);
      EXPECT_EQ(ra.calls[c].time_ms.max_pe, rb.calls[c].time_ms.max_pe);
    }
  }
}

}  // namespace

TEST(PeStats, FromVector) {
  const perf::PeStats stats = perf::PeStats::from({4.0, 1.0, 7.0, 4.0});
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 7.0);
  EXPECT_DOUBLE_EQ(stats.mean, 4.0);
  EXPECT_EQ(stats.min_pe, 1u);
  EXPECT_EQ(stats.max_pe, 2u);
  EXPECT_NEAR(stats.stddev, 2.449489742783178, 1e-12);
}

TEST(ReportIo, RoundTripExact) {
  const perf::ExperimentData original = sample_experiment();
  const std::string text = perf::write_report(original);
  const perf::ExperimentData parsed = perf::parse_report(text);
  expect_equal(original, parsed);
}

TEST(ReportIo, RoundTripTwiceIsStable) {
  const perf::ExperimentData original = sample_experiment();
  const std::string once = perf::write_report(original);
  const std::string twice = perf::write_report(perf::parse_report(once));
  EXPECT_EQ(once, twice);
}

TEST(ReportIo, ToleratesCommentsAndBlankLines) {
  const perf::ExperimentData original = sample_experiment();
  std::string text = perf::write_report(original);
  // Inject comments/blank lines between records (not inside the source block).
  const std::size_t pos = text.find("FUNCTION");
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos, "# a comment\n\n   \n");
  const perf::ExperimentData parsed = perf::parse_report(text);
  expect_equal(original, parsed);
}

TEST(ReportIo, ProgramNameWithSpaces) {
  perf::ExperimentData data = sample_experiment();
  data.structure.program_name = "ocean sim v2";
  const perf::ExperimentData parsed =
      perf::parse_report(perf::write_report(data));
  EXPECT_EQ(parsed.structure.program_name, "ocean sim v2");
}

TEST(ReportIo, EmptyRunsSection) {
  perf::ExperimentData data = sample_experiment();
  data.runs.clear();
  const perf::ExperimentData parsed =
      perf::parse_report(perf::write_report(data));
  EXPECT_TRUE(parsed.runs.empty());
  EXPECT_EQ(parsed.structure.functions.size(), data.structure.functions.size());
}

// ---------------------------------------------------------------------------
// Malformed inputs ("parsing awkward" is where the substrate must be solid)

struct BadReport {
  const char* label;
  const char* mutation_from;
  const char* mutation_to;
};

class ReportParserError : public ::testing::TestWithParam<BadReport> {};

TEST_P(ReportParserError, RejectsWithLineInfo) {
  std::string text = perf::write_report(sample_experiment());
  const std::string from = GetParam().mutation_from;
  const std::size_t pos = text.find(from);
  ASSERT_NE(pos, std::string::npos) << "mutation anchor missing: " << from;
  text.replace(pos, from.size(), GetParam().mutation_to);
  try {
    (void)perf::parse_report(text);
    FAIL() << "expected ImportError for " << GetParam().label;
  } catch (const ImportError& e) {
    EXPECT_NE(std::string(e.what()).find("report line"), std::string::npos)
        << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mutations, ReportParserError,
    ::testing::Values(
        BadReport{"bad_magic", "APPRENTICE REPORT v1", "APPRENTICE REPORT v9"},
        BadReport{"missing_program", "PROGRAM ", "PROGRAMME "},
        BadReport{"bad_compiled", "COMPILED ", "COMPILED x"},
        BadReport{"bad_kind", "kind=Loop", "kind=Spiral"},
        BadReport{"bad_typed", "TYPED Barrier", "TYPED Barrieri"},
        BadReport{"bad_nope", "RUN nope=1 ", "RUN nope=one "},
        BadReport{"bad_rtime_number", "excl=", "excl=abc"},
        BadReport{"bad_site_key", "CTIME site=", "CTIME sight="}),
    [](const auto& info) { return info.param.label; });

TEST(ReportParserError, TruncatedFile) {
  std::string text = perf::write_report(sample_experiment());
  text.resize(text.size() / 2);
  EXPECT_THROW((void)perf::parse_report(text), ImportError);
}

TEST(ReportParserError, SiteIndexOutOfRange) {
  std::string text = perf::write_report(sample_experiment());
  const std::size_t pos = text.find("CTIME site=");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("CTIME site=0").size(), "CTIME site=99");
  EXPECT_THROW((void)perf::parse_report(text), ImportError);
}

TEST(ReportParserError, EmptyInput) {
  EXPECT_THROW((void)perf::parse_report(""), ImportError);
}
