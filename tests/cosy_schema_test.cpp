#include <gtest/gtest.h>

#include <algorithm>

#include "cosy/db_import.hpp"
#include "cosy/schema_gen.hpp"
#include "cosy/specs.hpp"
#include "cosy/store_builder.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"
#include "support/str.hpp"

namespace asl = kojak::asl;
namespace cosy = kojak::cosy;
namespace db = kojak::db;
namespace perf = kojak::perf;

namespace {

struct Fixture {
  asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store{model};
  cosy::StoreHandles handles;
  db::Database database;

  explicit Fixture(std::vector<int> pes = {1, 4}) {
    const perf::ExperimentData data =
        perf::simulate_experiment(perf::workloads::imbalanced_ocean(), pes);
    handles = cosy::build_store(store, data);
    cosy::create_schema(database, model);
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Spec loading

TEST(Specs, CosyModelLoads) {
  const asl::Model model = cosy::load_cosy_model(/*extended=*/false);
  // The paper's 10 classes (incl. SourceCode) and 5 properties.
  EXPECT_EQ(model.classes().size(), 10u);
  EXPECT_EQ(model.properties().size(), 5u);
  EXPECT_TRUE(model.find_class("Program").has_value());
  EXPECT_TRUE(model.find_class("CallTiming").has_value());
  EXPECT_NE(model.find_property("SublinearSpeedup"), nullptr);
  EXPECT_NE(model.find_property("LoadImbalance"), nullptr);
  EXPECT_NE(model.find_function("Summary"), nullptr);
  EXPECT_NE(model.find_function("Duration"), nullptr);
  EXPECT_NE(model.find_constant("ImbalanceThreshold"), nullptr);
}

TEST(Specs, ExtendedSuiteLoads) {
  const asl::Model model = cosy::load_cosy_model(/*extended=*/true);
  EXPECT_EQ(model.properties().size(), 13u);
  EXPECT_NE(model.find_property("IOCost"), nullptr);
  EXPECT_NE(model.find_property("CommunicationBound"), nullptr);
}

TEST(Specs, TimingTypeEnumMatchesSubstrate) {
  const asl::Model model = cosy::load_cosy_model();
  const auto enum_id = model.find_enum("TimingType");
  ASSERT_TRUE(enum_id.has_value());
  const asl::EnumInfo& info = model.enum_info(*enum_id);
  ASSERT_EQ(info.members.size(), perf::kTimingTypeCount);
  for (std::size_t i = 0; i < perf::kTimingTypeCount; ++i) {
    EXPECT_EQ(info.members[i],
              perf::to_string(static_cast<perf::TimingType>(i)))
        << "ordinal " << i;
  }
}

// ---------------------------------------------------------------------------
// Store building

TEST(StoreBuilder, PopulatesDataModel) {
  Fixture fx;
  EXPECT_NE(fx.handles.program, asl::kNullObject);
  EXPECT_EQ(fx.handles.runs.size(), 2u);
  EXPECT_EQ(fx.store.attr(fx.handles.program, "Name").as_string(), "ocean_sim");
  EXPECT_EQ(fx.handles.main_region, "main");

  // Runs carry NoPe.
  EXPECT_EQ(fx.store.attr(fx.handles.runs[0], "NoPe").as_int(), 1);
  EXPECT_EQ(fx.store.attr(fx.handles.runs[1], "NoPe").as_int(), 4);

  // Region tree: main.time_loop's parent is main.
  const asl::ObjectId loop = fx.handles.regions.at("main.time_loop");
  const asl::RtValue parent = fx.store.attr(loop, "ParentRegion");
  EXPECT_EQ(parent.as_object(), fx.handles.regions.at("main"));

  // Every region has one TotalTiming per run it executed in.
  const asl::RtValue tot = fx.store.attr(loop, "TotTimes");
  EXPECT_EQ(tot.as_set().size(), 2u);
}

TEST(StoreBuilder, CallSitesOwnedByCallee) {
  Fixture fx;
  const asl::Model& model = fx.model;
  // The barrier function's Calls set holds the barrier call sites.
  bool found_barrier_fn = false;
  for (const auto& [name, fn_obj] : fx.handles.functions) {
    if (name != "barrier") continue;
    found_barrier_fn = true;
    const asl::RtValue calls = fx.store.attr(fn_obj, "Calls");
    EXPECT_EQ(calls.as_set().size(), 2u);  // step + checkpoint sites
  }
  EXPECT_TRUE(found_barrier_fn);
  (void)model;
}

TEST(StoreBuilder, StatsCount) {
  Fixture fx;
  const cosy::StoreStats stats = cosy::store_stats(fx.store);
  EXPECT_GT(stats.objects, 50u);
  EXPECT_EQ(stats.regions, 11u);  // 9 main/physics regions + barrier + region
  EXPECT_GT(stats.typed_timings, 20u);
  EXPECT_EQ(stats.call_timings, 6u);  // 3 sites x 2 runs
}

// ---------------------------------------------------------------------------
// Schema generation

TEST(SchemaGen, DdlCoversClassesAndJunctions) {
  const asl::Model model = cosy::load_cosy_model();
  const auto ddl = cosy::generate_ddl(model);
  const auto contains = [&](std::string_view needle) {
    return std::any_of(ddl.begin(), ddl.end(), [&](const std::string& stmt) {
      return stmt.find(needle) != std::string::npos;
    });
  };
  EXPECT_TRUE(contains("CREATE TABLE Region"));
  EXPECT_TRUE(contains("CREATE TABLE Region_TotTimes"));
  EXPECT_TRUE(contains("CREATE TABLE Region_TypTimes"));
  EXPECT_TRUE(contains("CREATE TABLE FunctionCall_Sums"));
  EXPECT_TRUE(contains("CREATE INDEX idx_Region_TotTimes_owner"));
  EXPECT_TRUE(contains("CREATE INDEX idx_TotalTiming_Run"));
  // Enum attribute maps to INTEGER ordinal.
  EXPECT_TRUE(contains("Type INTEGER"));
}

TEST(SchemaGen, ColumnTypes) {
  using asl::Type;
  using asl::TypeKind;
  EXPECT_EQ(cosy::column_type(Type::of(TypeKind::kInt)), db::ValueType::kInt);
  EXPECT_EQ(cosy::column_type(Type::of(TypeKind::kFloat)), db::ValueType::kDouble);
  EXPECT_EQ(cosy::column_type(Type::of(TypeKind::kString)), db::ValueType::kString);
  EXPECT_EQ(cosy::column_type(Type::of(TypeKind::kDateTime)),
            db::ValueType::kDateTime);
  EXPECT_EQ(cosy::column_type(Type::class_of(3)), db::ValueType::kInt);
  EXPECT_EQ(cosy::column_type(Type::enum_of(0)), db::ValueType::kInt);
  EXPECT_THROW((void)cosy::column_type(Type::set_of(1)),
               kojak::support::EvalError);
}

TEST(SchemaGen, ExecutesCleanly) {
  Fixture fx;  // constructor ran create_schema
  EXPECT_NE(fx.database.find_table("Program"), nullptr);
  EXPECT_NE(fx.database.find_table("Program_Versions"), nullptr);
  EXPECT_NE(fx.database.find_table("CallTiming"), nullptr);
}

// ---------------------------------------------------------------------------
// Import + rebuild round trip

TEST(DbImport, RowCountsMatchStore) {
  Fixture fx;
  db::Connection conn(fx.database, db::ConnectionProfile::in_memory());
  const cosy::ImportStats stats = cosy::import_store(conn, fx.store);
  EXPECT_GT(stats.rows, fx.store.size());  // objects + junction rows
  EXPECT_EQ(stats.statements, stats.rows);  // row-at-a-time inserts

  // Every object landed in its class table.
  const auto count_of = [&](const char* table) {
    return fx.database
        .execute(kojak::support::cat("SELECT COUNT(*) FROM ", table))
        .scalar()
        .as_int();
  };
  EXPECT_EQ(count_of("Program"), 1);
  EXPECT_EQ(count_of("TestRun"), 2);
  EXPECT_EQ(static_cast<std::size_t>(count_of("Region")),
            fx.handles.regions.size());
  EXPECT_EQ(count_of("CallTiming"), 6);
}

TEST(DbImport, ValueConversionRoundTrip) {
  using asl::RtValue;
  using asl::Type;
  using asl::TypeKind;
  const struct {
    RtValue rt;
    Type type;
  } cases[] = {
      {RtValue::of_int(-7), Type::of(TypeKind::kInt)},
      {RtValue::of_float(2.5), Type::of(TypeKind::kFloat)},
      {RtValue::of_bool(true), Type::of(TypeKind::kBool)},
      {RtValue::of_string("x y"), Type::of(TypeKind::kString)},
      {RtValue::of_int(941806800), Type::of(TypeKind::kDateTime)},
      {RtValue::of_object(12), Type::class_of(2)},
      {RtValue::of_enum(0, 3), Type::enum_of(0)},
      {RtValue::null(), Type::class_of(2)},
  };
  for (const auto& c : cases) {
    const db::Value dbv = cosy::to_db_value(c.rt, c.type);
    const RtValue back = cosy::to_rt_value(dbv, c.type);
    EXPECT_TRUE(RtValue::equals(back, c.rt)) << c.rt.to_display();
  }
}

TEST(DbImport, RebuildStoreRoundTrip) {
  Fixture fx;
  db::Connection conn(fx.database, db::ConnectionProfile::in_memory());
  cosy::import_store(conn, fx.store);
  const asl::ObjectStore rebuilt = cosy::rebuild_store(conn, fx.model);

  ASSERT_EQ(rebuilt.size(), fx.store.size());
  for (asl::ObjectId id = 0; id < fx.store.size(); ++id) {
    const asl::Object& original = fx.store.object(id);
    const asl::Object& copy = rebuilt.object(id);
    ASSERT_EQ(original.class_id, copy.class_id) << "object " << id;
    const asl::ClassInfo& cls = fx.model.class_info(original.class_id);
    for (std::size_t a = 0; a < cls.attrs.size(); ++a) {
      if (cls.attrs[a].type.kind == asl::TypeKind::kSet) {
        // Sets compare as sorted id multisets.
        std::vector<asl::ObjectId> lhs, rhs;
        if (!original.attrs[a].is_null()) lhs = original.attrs[a].as_set();
        if (!copy.attrs[a].is_null()) rhs = copy.attrs[a].as_set();
        std::sort(lhs.begin(), lhs.end());
        std::sort(rhs.begin(), rhs.end());
        EXPECT_EQ(lhs, rhs) << cls.name << "." << cls.attrs[a].name;
      } else {
        EXPECT_TRUE(asl::RtValue::equals(original.attrs[a], copy.attrs[a]))
            << cls.name << "." << cls.attrs[a].name << " of object " << id;
      }
    }
  }
}

TEST(DbImport, VirtualTimeAccountsBackend) {
  Fixture fx;
  db::Database db2;
  cosy::create_schema(db2, fx.model);
  db::Connection fast(fx.database, db::ConnectionProfile::access_local());
  db::Connection slow(db2, db::ConnectionProfile::oracle7());
  const auto fast_stats = cosy::import_store(fast, fx.store);
  const auto slow_stats = cosy::import_store(slow, fx.store);
  EXPECT_EQ(fast_stats.rows, slow_stats.rows);
  // §5: insertion ~20x faster on the local backend.
  EXPECT_GT(slow_stats.virtual_ms / fast_stats.virtual_ms, 10.0);
}

TEST(DbImport, BulkIngestMatchesRowAtATimeByteForByte) {
  Fixture row_world;
  db::Database bulk_db;
  cosy::create_schema(bulk_db, row_world.model);
  db::Connection row_conn(row_world.database,
                          db::ConnectionProfile::in_memory());
  db::Connection bulk_conn(bulk_db, db::ConnectionProfile::in_memory());
  const auto one = cosy::import_store(row_conn, row_world.store);
  const auto bulk = cosy::import_store(bulk_conn, row_world.store,
                                       /*batch_rows=*/64);

  // Identical rows in identical heap order: every table's full scan streams
  // the same bytes, and every partition version counter agrees (so the
  // epoch machinery can't tell the two imports apart either).
  EXPECT_EQ(one.rows, bulk.rows);
  EXPECT_EQ(row_world.database.store_epoch(), bulk_db.store_epoch());
  for (const asl::ClassInfo& cls : row_world.model.classes()) {
    std::vector<std::string> tables = {cls.name};
    for (const asl::AttrInfo& attr : cls.attrs) {
      if (attr.type.kind == asl::TypeKind::kSet) {
        tables.push_back(cosy::junction_table(cls.name, attr.name));
      }
    }
    for (const std::string& table : tables) {
      const std::string sql = kojak::support::cat("SELECT * FROM ", table);
      const db::QueryResult a = row_world.database.execute(sql);
      const db::QueryResult b = bulk_db.execute(sql);
      ASSERT_EQ(a.row_count(), b.row_count()) << table;
      for (std::size_t r = 0; r < a.rows.size(); ++r) {
        for (std::size_t c = 0; c < a.rows[r].size(); ++c) {
          EXPECT_EQ(a.rows[r][c].to_display(), b.rows[r][c].to_display())
              << table << " row " << r;
        }
      }
    }
  }

  // The fast path's whole point: an order of magnitude fewer statements
  // (per-table remainder batches keep it under the full batch_rows factor on
  // this small world), which on a modelled wire is a pinned time win — the
  // per-row/per-value transfer costs stay, only the per-statement round
  // trips collapse.
  EXPECT_LT(bulk.statements * 8, one.statements);
  db::Database wire_row_db;
  db::Database wire_bulk_db;
  cosy::create_schema(wire_row_db, row_world.model);
  cosy::create_schema(wire_bulk_db, row_world.model);
  db::Connection wire_row(wire_row_db, db::ConnectionProfile::oracle7());
  db::Connection wire_bulk(wire_bulk_db, db::ConnectionProfile::oracle7());
  const auto row_wire = cosy::import_store(wire_row, row_world.store);
  const auto bulk_wire = cosy::import_store(wire_bulk, row_world.store, 64);
  EXPECT_GT(row_wire.virtual_ms / bulk_wire.virtual_ms, 1.3);
}
