#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "db/database.hpp"
#include "db/sql/parser.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace kdb = kojak::db;
using kdb::Database;
using kdb::QueryResult;
using kdb::Value;
using kojak::support::EvalError;

namespace {

/// Fresh database with a small, representative population.
Database make_db() {
  Database db;
  db.execute(
      "CREATE TABLE emp (id INTEGER PRIMARY KEY, name TEXT, dept INTEGER, "
      "salary DOUBLE, hired DATETIME);"
      "CREATE TABLE dept (id INTEGER PRIMARY KEY, name TEXT);"
      "INSERT INTO dept VALUES (1, 'dev'), (2, 'ops'), (3, 'empty');"
      "INSERT INTO emp VALUES "
      "(1, 'ada', 1, 100.0, DATETIME '1999-01-01'),"
      "(2, 'bob', 1, 80.0, DATETIME '1999-02-01'),"
      "(3, 'cyd', 2, 120.0, DATETIME '1999-03-01'),"
      "(4, 'dee', 2, 120.0, DATETIME '1999-04-01'),"
      "(5, 'eve', NULL, NULL, NULL);");
  return db;
}

}  // namespace

TEST(Exec, SelectAllColumnsAndNames) {
  Database db = make_db();
  const QueryResult result = db.execute("SELECT * FROM emp");
  EXPECT_EQ(result.row_count(), 5u);
  ASSERT_EQ(result.columns.size(), 5u);
  EXPECT_EQ(result.columns[0], "id");
  EXPECT_EQ(result.column_index("SALARY"), 3u);  // case-insensitive
}

TEST(Exec, SelectExpressionsWithoutFrom) {
  Database db;
  const QueryResult result = db.execute("SELECT 1 + 2 AS three, 'x', TRUE");
  ASSERT_EQ(result.row_count(), 1u);
  EXPECT_EQ(result.at(0, 0).as_int(), 3);
  EXPECT_EQ(result.columns[0], "three");
  EXPECT_EQ(result.at(0, 1).as_string(), "x");
  EXPECT_TRUE(result.at(0, 2).as_bool());
}

TEST(Exec, WhereFilters) {
  Database db = make_db();
  EXPECT_EQ(db.execute("SELECT id FROM emp WHERE salary > 90").row_count(), 3u);
  EXPECT_EQ(db.execute("SELECT id FROM emp WHERE dept = 1 AND salary >= 100")
                .row_count(),
            1u);
  EXPECT_EQ(db.execute("SELECT id FROM emp WHERE name LIKE '%e%'").row_count(),
            2u);  // dee, eve
  EXPECT_EQ(
      db.execute("SELECT id FROM emp WHERE hired >= DATETIME '1999-03-01'")
          .row_count(),
      2u);
}

TEST(Exec, NullSemantics) {
  Database db = make_db();
  // NULL comparisons are unknown -> filtered out.
  EXPECT_EQ(db.execute("SELECT id FROM emp WHERE salary > 0").row_count(), 4u);
  EXPECT_EQ(db.execute("SELECT id FROM emp WHERE salary IS NULL").row_count(), 1u);
  EXPECT_EQ(db.execute("SELECT id FROM emp WHERE salary IS NOT NULL").row_count(),
            4u);
  // FALSE AND NULL is FALSE; TRUE OR NULL is TRUE (three-valued logic).
  EXPECT_EQ(db.execute("SELECT id FROM emp WHERE salary > 1e9 AND dept = 1")
                .row_count(),
            0u);
  EXPECT_EQ(db.execute("SELECT id FROM emp WHERE id = 5 AND (id = 5 OR salary > 0)")
                .row_count(),
            1u);
  // IN with NULL needle yields unknown.
  EXPECT_EQ(db.execute("SELECT id FROM emp WHERE salary IN (100.0)").row_count(),
            1u);
}

TEST(Exec, ScalarFunctions) {
  Database db;
  const QueryResult result = db.execute(
      "SELECT ABS(-3), SQRT(9.0), FLOOR(2.7), CEIL(2.1), ROUND(2.456, 2), "
      "LENGTH('abc'), UPPER('aB'), LOWER('aB'), COALESCE(NULL, NULL, 7), "
      "IIF(1 < 2, 'yes', 'no'), NULLIF(3, 3)");
  EXPECT_EQ(result.at(0, 0).as_int(), 3);
  EXPECT_DOUBLE_EQ(result.at(0, 1).as_double(), 3.0);
  EXPECT_DOUBLE_EQ(result.at(0, 2).as_double(), 2.0);
  EXPECT_DOUBLE_EQ(result.at(0, 3).as_double(), 3.0);
  EXPECT_DOUBLE_EQ(result.at(0, 4).as_double(), 2.46);
  EXPECT_EQ(result.at(0, 5).as_int(), 3);
  EXPECT_EQ(result.at(0, 6).as_string(), "AB");
  EXPECT_EQ(result.at(0, 7).as_string(), "ab");
  EXPECT_EQ(result.at(0, 8).as_int(), 7);
  EXPECT_EQ(result.at(0, 9).as_string(), "yes");
  EXPECT_TRUE(result.at(0, 10).is_null());
}

TEST(Exec, LikePatterns) {
  Database db;
  const auto like = [&](const char* text, const char* pattern) {
    return db
        .execute(kojak::support::cat("SELECT ", kojak::support::sql_quote(text),
                                     " LIKE ",
                                     kojak::support::sql_quote(pattern)))
        .at(0, 0)
        .as_bool();
  };
  EXPECT_TRUE(like("hello", "h%o"));
  EXPECT_TRUE(like("hello", "_ello"));
  EXPECT_TRUE(like("hello", "%"));
  EXPECT_FALSE(like("hello", "h_o"));
  EXPECT_TRUE(like("", "%"));
  EXPECT_FALSE(like("", "_"));
  EXPECT_TRUE(like("a%b", "a%b"));
}

TEST(Exec, Joins) {
  Database db = make_db();
  const QueryResult result = db.execute(
      "SELECT e.name, d.name FROM emp e JOIN dept d ON e.dept = d.id "
      "ORDER BY e.id");
  ASSERT_EQ(result.row_count(), 4u);  // eve has NULL dept
  EXPECT_EQ(result.at(0, 1).as_string(), "dev");
  EXPECT_EQ(result.at(2, 1).as_string(), "ops");
}

TEST(Exec, JoinHashEqualsNestedLoop) {
  Database db = make_db();
  // Same join expressed as equi-join (hash path) and via CROSS + WHERE
  // (nested path) must agree.
  const QueryResult hash = db.execute(
      "SELECT e.id, d.id FROM emp e JOIN dept d ON e.dept = d.id ORDER BY 1, 2");
  const QueryResult cross = db.execute(
      "SELECT e.id, d.id FROM emp e CROSS JOIN dept d WHERE e.dept = d.id "
      "ORDER BY 1, 2");
  ASSERT_EQ(hash.row_count(), cross.row_count());
  for (std::size_t r = 0; r < hash.row_count(); ++r) {
    EXPECT_EQ(hash.at(r, 0).as_int(), cross.at(r, 0).as_int());
    EXPECT_EQ(hash.at(r, 1).as_int(), cross.at(r, 1).as_int());
  }
}

TEST(Exec, JoinWithExtraConjunct) {
  Database db = make_db();
  const QueryResult result = db.execute(
      "SELECT e.id FROM emp e JOIN dept d ON e.dept = d.id AND d.name = 'ops' "
      "ORDER BY 1");
  ASSERT_EQ(result.row_count(), 2u);
  EXPECT_EQ(result.at(0, 0).as_int(), 3);
}

TEST(Exec, ThreeWayJoin) {
  Database db = make_db();
  db.execute(
      "CREATE TABLE badge (emp INTEGER, code TEXT);"
      "INSERT INTO badge VALUES (1, 'A'), (3, 'B'), (3, 'C')");
  const QueryResult result = db.execute(
      "SELECT e.name, d.name, b.code FROM emp e JOIN dept d ON e.dept = d.id "
      "JOIN badge b ON b.emp = e.id ORDER BY b.code");
  ASSERT_EQ(result.row_count(), 3u);
  EXPECT_EQ(result.at(2, 2).as_string(), "C");
}

TEST(Exec, GroupByAggregates) {
  Database db = make_db();
  const QueryResult result = db.execute(
      "SELECT dept, COUNT(*), SUM(salary), AVG(salary), MIN(salary), "
      "MAX(salary) FROM emp WHERE dept IS NOT NULL GROUP BY dept ORDER BY dept");
  ASSERT_EQ(result.row_count(), 2u);
  EXPECT_EQ(result.at(0, 1).as_int(), 2);
  EXPECT_DOUBLE_EQ(result.at(0, 2).as_double(), 180.0);
  EXPECT_DOUBLE_EQ(result.at(0, 3).as_double(), 90.0);
  EXPECT_DOUBLE_EQ(result.at(1, 4).as_double(), 120.0);
  EXPECT_DOUBLE_EQ(result.at(1, 5).as_double(), 120.0);
}

TEST(Exec, AggregatesSkipNulls) {
  Database db = make_db();
  const QueryResult result =
      db.execute("SELECT COUNT(*), COUNT(salary), AVG(salary) FROM emp");
  EXPECT_EQ(result.at(0, 0).as_int(), 5);
  EXPECT_EQ(result.at(0, 1).as_int(), 4);
  EXPECT_DOUBLE_EQ(result.at(0, 2).as_double(), 105.0);
}

TEST(Exec, GlobalAggregateOverEmptyInput) {
  Database db = make_db();
  const QueryResult result = db.execute(
      "SELECT COUNT(*), SUM(salary), MIN(salary) FROM emp WHERE id > 100");
  ASSERT_EQ(result.row_count(), 1u);
  EXPECT_EQ(result.at(0, 0).as_int(), 0);
  EXPECT_TRUE(result.at(0, 1).is_null());
  EXPECT_TRUE(result.at(0, 2).is_null());
}

TEST(Exec, StddevMatchesSampleFormula) {
  Database db = make_db();
  const QueryResult result = db.execute(
      "SELECT STDDEV(salary), VARIANCE(salary) FROM emp WHERE dept = 2");
  // Two equal values: zero spread.
  EXPECT_DOUBLE_EQ(result.at(0, 0).as_double(), 0.0);
  const QueryResult spread =
      db.execute("SELECT STDDEV(salary) FROM emp WHERE dept = 1");
  // {100, 80}: sample stddev = sqrt(200) ~ 14.1421
  EXPECT_NEAR(spread.at(0, 0).as_double(), 14.142135623730951, 1e-9);
}

TEST(Exec, CountDistinct) {
  Database db = make_db();
  const QueryResult result =
      db.execute("SELECT COUNT(DISTINCT salary) FROM emp");
  EXPECT_EQ(result.at(0, 0).as_int(), 3);  // 100, 80, 120 (NULL skipped)
}

TEST(Exec, Having) {
  Database db = make_db();
  const QueryResult result = db.execute(
      "SELECT dept, COUNT(*) AS n FROM emp WHERE dept IS NOT NULL "
      "GROUP BY dept HAVING SUM(salary) > 200 ORDER BY dept");
  ASSERT_EQ(result.row_count(), 1u);
  EXPECT_EQ(result.at(0, 0).as_int(), 2);
}

TEST(Exec, AggregateExpressionArithmetic) {
  Database db = make_db();
  const QueryResult result = db.execute(
      "SELECT SUM(salary) / COUNT(salary) FROM emp WHERE dept IS NOT NULL");
  EXPECT_DOUBLE_EQ(result.at(0, 0).as_double(), 105.0);
}

TEST(Exec, Distinct) {
  Database db = make_db();
  EXPECT_EQ(db.execute("SELECT DISTINCT salary FROM emp").row_count(), 4u);
  EXPECT_EQ(db.execute("SELECT DISTINCT dept FROM emp").row_count(), 3u);
}

TEST(Exec, OrderByVariants) {
  Database db = make_db();
  // By alias.
  QueryResult result =
      db.execute("SELECT name AS n FROM emp ORDER BY n DESC LIMIT 1");
  EXPECT_EQ(result.at(0, 0).as_string(), "eve");
  // By ordinal.
  result = db.execute("SELECT salary, name FROM emp ORDER BY 1 DESC, 2 LIMIT 2");
  EXPECT_EQ(result.at(0, 1).as_string(), "cyd");
  EXPECT_EQ(result.at(1, 1).as_string(), "dee");
  // NULLs sort first under the total order.
  result = db.execute("SELECT salary FROM emp ORDER BY salary");
  EXPECT_TRUE(result.at(0, 0).is_null());
  // By expression not in the select list.
  result = db.execute("SELECT name FROM emp ORDER BY id DESC LIMIT 1");
  EXPECT_EQ(result.at(0, 0).as_string(), "eve");
}

TEST(Exec, OrderByAggregate) {
  Database db = make_db();
  const QueryResult result = db.execute(
      "SELECT dept FROM emp WHERE dept IS NOT NULL GROUP BY dept "
      "ORDER BY SUM(salary) DESC");
  EXPECT_EQ(result.at(0, 0).as_int(), 2);
}

TEST(Exec, LimitOffset) {
  Database db = make_db();
  const QueryResult result =
      db.execute("SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 1");
  ASSERT_EQ(result.row_count(), 2u);
  EXPECT_EQ(result.at(0, 0).as_int(), 2);
  EXPECT_EQ(result.at(1, 0).as_int(), 3);
  EXPECT_EQ(db.execute("SELECT id FROM emp LIMIT 0").row_count(), 0u);
  EXPECT_EQ(db.execute("SELECT id FROM emp LIMIT 99 OFFSET 10").row_count(), 0u);
}

TEST(Exec, UpdateAndDelete) {
  Database db = make_db();
  QueryResult result = db.execute("UPDATE emp SET salary = salary * 2 WHERE dept = 1");
  EXPECT_EQ(result.affected_rows, 2u);
  EXPECT_DOUBLE_EQ(
      db.execute("SELECT salary FROM emp WHERE id = 1").at(0, 0).as_double(),
      200.0);
  result = db.execute("DELETE FROM emp WHERE dept = 2");
  EXPECT_EQ(result.affected_rows, 2u);
  EXPECT_EQ(db.execute("SELECT COUNT(*) FROM emp").at(0, 0).as_int(), 3);
}

TEST(Exec, PreparedStatementWithParams) {
  Database db = make_db();
  kdb::PreparedStatement stmt =
      db.prepare("SELECT name FROM emp WHERE dept = ? AND salary >= ?");
  const std::vector<Value> params = {Value::integer(2), Value::real(100.0)};
  const QueryResult result = db.execute(stmt, params);
  EXPECT_EQ(result.row_count(), 2u);
  // Re-execution with different params.
  const std::vector<Value> params2 = {Value::integer(1), Value::real(90.0)};
  EXPECT_EQ(db.execute(stmt, params2).row_count(), 1u);
}

TEST(Exec, MissingParamThrows) {
  Database db = make_db();
  EXPECT_THROW(db.execute("SELECT * FROM emp WHERE id = ?"), EvalError);
}

TEST(Exec, ScalarSubquery) {
  Database db = make_db();
  const QueryResult result = db.execute(
      "SELECT name FROM emp WHERE salary = (SELECT MAX(salary) FROM emp) "
      "ORDER BY id");
  ASSERT_EQ(result.row_count(), 2u);
  EXPECT_EQ(result.at(0, 0).as_string(), "cyd");
}

TEST(Exec, SubqueryEmptyIsNull) {
  Database db = make_db();
  const QueryResult result =
      db.execute("SELECT (SELECT id FROM emp WHERE id > 100)");
  EXPECT_TRUE(result.at(0, 0).is_null());
}

TEST(Exec, SubqueryMultiRowThrows) {
  Database db = make_db();
  EXPECT_THROW(db.execute("SELECT (SELECT id FROM emp)"), EvalError);
}

TEST(Exec, UncorrelatedSubqueryMemoizedWithinOneExecution) {
  // Structurally identical uncorrelated subqueries execute once per
  // statement execution; later occurrences come from the per-statement
  // memo. Distinct shapes still execute separately.
  Database db = make_db();
  const auto before = db.exec_stats();
  const QueryResult result = db.execute(
      "SELECT (SELECT MAX(salary) FROM emp) + (SELECT MAX(salary) FROM emp), "
      "(SELECT MIN(salary) FROM emp)");
  const auto after = db.exec_stats();
  EXPECT_DOUBLE_EQ(result.at(0, 0).as_double(), 240.0);
  EXPECT_EQ(after.subquery_executions - before.subquery_executions, 2u);
  EXPECT_EQ(after.subquery_memo_hits - before.subquery_memo_hits, 1u);

  // The memo is per execution, not per statement object: running the text
  // again re-executes both distinct shapes.
  db.execute(
      "SELECT (SELECT MAX(salary) FROM emp) + (SELECT MAX(salary) FROM emp), "
      "(SELECT MIN(salary) FROM emp)");
  const auto again = db.exec_stats();
  EXPECT_EQ(again.subquery_executions - after.subquery_executions, 2u);
}

TEST(Exec, SubqueriesWithDifferentParamsAreNotShared) {
  Database db = make_db();
  const std::vector<Value> params = {Value::integer(1), Value::integer(2)};
  const auto before = db.exec_stats();
  const QueryResult result = db.execute(
      "SELECT (SELECT COUNT(*) FROM emp WHERE dept = ?), "
      "(SELECT COUNT(*) FROM emp WHERE dept = ?)",
      params);
  const auto after = db.exec_stats();
  EXPECT_EQ(result.at(0, 0).as_int(), 2);
  EXPECT_EQ(result.at(0, 1).as_int(), 2);
  // Different parameter indices -> different shapes -> no memo sharing.
  EXPECT_EQ(after.subquery_executions - before.subquery_executions, 2u);
  EXPECT_EQ(after.subquery_memo_hits - before.subquery_memo_hits, 0u);
}

// ---------------------------------------------------------------------------
// WITH / common table expressions

TEST(Exec, CteMaterializesOncePerExecution) {
  Database db = make_db();
  const auto before = db.exec_stats();
  const QueryResult result = db.execute(
      "WITH top AS (SELECT MAX(salary) AS v FROM emp) "
      "SELECT (SELECT v FROM top) + (SELECT v FROM top), (SELECT v FROM top)");
  const auto after = db.exec_stats();
  EXPECT_DOUBLE_EQ(result.at(0, 0).as_double(), 240.0);
  EXPECT_DOUBLE_EQ(result.at(0, 1).as_double(), 120.0);
  // The CTE body ran exactly once; the three references scanned the
  // materialized row (one real reference scan + two memo hits).
  EXPECT_EQ(after.cte_materializations - before.cte_materializations, 1u);
  EXPECT_EQ(after.subquery_executions - before.subquery_executions, 1u);
  EXPECT_EQ(after.subquery_memo_hits - before.subquery_memo_hits, 2u);
}

TEST(Exec, CteUsableInFromAndJoins) {
  Database db = make_db();
  const QueryResult from_cte = db.execute(
      "WITH rich AS (SELECT id, name, salary FROM emp WHERE salary > 90) "
      "SELECT name FROM rich ORDER BY id");
  ASSERT_EQ(from_cte.row_count(), 3u);
  EXPECT_EQ(from_cte.at(0, 0).as_string(), "ada");

  const QueryResult joined = db.execute(
      "WITH rich AS (SELECT id, name, dept FROM emp WHERE salary > 90) "
      "SELECT rich.name, dept.name FROM rich JOIN dept ON dept.id = rich.dept "
      "ORDER BY rich.id");
  ASSERT_EQ(joined.row_count(), 3u);
  EXPECT_EQ(joined.at(0, 1).as_string(), "dev");

  // SELECT * over a CTE expands the CTE's column list.
  const QueryResult star = db.execute(
      "WITH two AS (SELECT id, name FROM emp WHERE dept = 2) "
      "SELECT * FROM two ORDER BY id");
  ASSERT_EQ(star.columns.size(), 2u);
  EXPECT_EQ(star.columns[1], "name");
  EXPECT_EQ(star.row_count(), 2u);
}

TEST(Exec, CteChainsReferenceEarlierEntries) {
  Database db = make_db();
  const QueryResult result = db.execute(
      "WITH per_dept AS (SELECT dept, SUM(salary) AS total FROM emp "
      "WHERE dept IS NOT NULL GROUP BY dept), "
      "best AS (SELECT MAX(total) AS v FROM per_dept) "
      "SELECT (SELECT v FROM best)");
  EXPECT_DOUBLE_EQ(result.at(0, 0).as_double(), 240.0);
}

TEST(Exec, CteShadowsTableOfTheSameName) {
  Database db = make_db();
  const QueryResult result = db.execute(
      "WITH emp AS (SELECT 42 AS id) SELECT id FROM emp");
  ASSERT_EQ(result.row_count(), 1u);
  EXPECT_EQ(result.at(0, 0).as_int(), 42);
}

TEST(Exec, CteAggregationOverDerivedRows) {
  Database db = make_db();
  const QueryResult result = db.execute(
      "WITH rich AS (SELECT salary FROM emp WHERE salary > 90) "
      "SELECT COUNT(*), AVG(salary) FROM rich");
  EXPECT_EQ(result.at(0, 0).as_int(), 3);
  EXPECT_DOUBLE_EQ(result.at(0, 1).as_double(), (100.0 + 120.0 + 120.0) / 3);
}

TEST(Exec, CteScalarReferenceKeepsCardinalityRules) {
  Database db = make_db();
  // The CTE itself may hold many rows; a scalar reference to it enforces
  // the one-row rule exactly like any scalar subquery.
  EXPECT_THROW(db.execute("WITH all_ids AS (SELECT id FROM emp) "
                          "SELECT (SELECT id FROM all_ids)"),
               EvalError);
  const QueryResult empty = db.execute(
      "WITH none AS (SELECT id FROM emp WHERE id > 100) "
      "SELECT (SELECT id FROM none)");
  EXPECT_TRUE(empty.at(0, 0).is_null());
}

TEST(Exec, PrimaryKeyUniqueness) {
  Database db = make_db();
  EXPECT_THROW(db.execute("INSERT INTO dept VALUES (1, 'dup')"), EvalError);
  // NOT NULL enforcement on the key.
  EXPECT_THROW(db.execute("INSERT INTO dept VALUES (NULL, 'x')"), EvalError);
}

TEST(Exec, InsertColumnSubset) {
  Database db = make_db();
  db.execute("INSERT INTO emp (id, name) VALUES (9, 'zed')");
  const QueryResult result =
      db.execute("SELECT dept, salary FROM emp WHERE id = 9");
  EXPECT_TRUE(result.at(0, 0).is_null());
  EXPECT_TRUE(result.at(0, 1).is_null());
}

TEST(Exec, DropTableSemantics) {
  Database db = make_db();
  db.execute("DROP TABLE dept");
  EXPECT_THROW(db.execute("SELECT * FROM dept"), EvalError);
  db.execute("DROP TABLE IF EXISTS dept");  // no-op
  EXPECT_THROW(db.execute("DROP TABLE dept"), EvalError);
}

// ---------------------------------------------------------------------------
// Index correctness: indexed access path must agree with full scans.

class IndexEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(IndexEquivalence, IndexedQueriesMatchScans) {
  kojak::support::Rng rng(GetParam());
  Database with_index, without_index;
  for (Database* db : {&with_index, &without_index}) {
    db->execute("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v DOUBLE)");
  }
  with_index.execute("CREATE INDEX idx_k ON t (k)");

  for (int i = 0; i < 500; ++i) {
    const std::string insert = kojak::support::cat(
        "INSERT INTO t VALUES (", i, ", ", rng.uniform_int(0, 20), ", ",
        kojak::support::format_double(rng.uniform(0, 100)), ")");
    with_index.execute(insert);
    without_index.execute(insert);
  }
  // Mutate both: deletes and updates must keep indexes in sync.
  for (const char* mutation :
       {"DELETE FROM t WHERE k = 3", "UPDATE t SET k = 7 WHERE k = 5"}) {
    with_index.execute(mutation);
    without_index.execute(mutation);
  }

  for (int key = 0; key <= 21; ++key) {
    const std::string q = kojak::support::cat(
        "SELECT id, v FROM t WHERE k = ", key, " ORDER BY id");
    const QueryResult a = with_index.execute(q);
    const QueryResult b = without_index.execute(q);
    ASSERT_EQ(a.row_count(), b.row_count()) << q;
    for (std::size_t r = 0; r < a.row_count(); ++r) {
      EXPECT_EQ(a.at(r, 0).as_int(), b.at(r, 0).as_int());
      EXPECT_DOUBLE_EQ(a.at(r, 1).as_double(), b.at(r, 1).as_double());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexEquivalence, ::testing::Values(1, 2, 3, 7));

// ---------------------------------------------------------------------------
// Errors

TEST(ExecErrors, UnknownEntities) {
  Database db = make_db();
  EXPECT_THROW(db.execute("SELECT * FROM nope"), EvalError);
  EXPECT_THROW(db.execute("SELECT nope FROM emp"), EvalError);
  EXPECT_THROW(db.execute("SELECT x.name FROM emp"), EvalError);
  EXPECT_THROW(db.execute("INSERT INTO emp (nope) VALUES (1)"), EvalError);
  EXPECT_THROW(db.execute("CREATE INDEX i ON emp (nope)"), EvalError);
}

TEST(ExecErrors, AmbiguousColumn) {
  Database db = make_db();
  EXPECT_THROW(
      db.execute("SELECT name FROM emp e JOIN dept d ON e.dept = d.id"),
      EvalError);
}

TEST(ExecErrors, AggregateInWhere) {
  Database db = make_db();
  EXPECT_THROW(db.execute("SELECT id FROM emp WHERE SUM(salary) > 0"),
               EvalError);
}

TEST(ExecErrors, NestedAggregate) {
  Database db = make_db();
  EXPECT_THROW(db.execute("SELECT SUM(MAX(salary)) FROM emp"), EvalError);
}

TEST(ExecErrors, DuplicateAlias) {
  Database db = make_db();
  EXPECT_THROW(
      db.execute("SELECT 1 FROM emp e JOIN dept e ON 1 = 1"), EvalError);
}

TEST(ExecErrors, ArityMismatch) {
  Database db = make_db();
  EXPECT_THROW(db.execute("INSERT INTO dept VALUES (10)"), EvalError);
  EXPECT_THROW(db.execute("SELECT ABS(1, 2)"), EvalError);
  EXPECT_THROW(db.execute("SELECT NOPEFN(1)"), EvalError);
}

TEST(ExecErrors, OrderByOrdinalOutOfRange) {
  Database db = make_db();
  EXPECT_THROW(db.execute("SELECT id FROM emp ORDER BY 2"), EvalError);
}

TEST(Exec, TotalRowsBookkeeping) {
  Database db = make_db();
  EXPECT_EQ(db.total_rows(), 8u);
  db.execute("DELETE FROM emp WHERE id = 1");
  EXPECT_EQ(db.total_rows(), 7u);
  EXPECT_EQ(db.table_names().size(), 2u);
}

// ---------------------------------------------------------------------------
// Partitioned tables: pruning, parallel scans, exec_stats counters

namespace {

/// Hash-partitioned table without an index on the partition column, so the
/// planner's pruning (not an index probe) is what routes the scans.
Database make_partitioned_db(std::size_t partitions, int rows) {
  Database db;
  db.execute(kojak::support::cat(
      "CREATE TABLE pt (k INTEGER, v INTEGER) PARTITION BY HASH(k) "
      "PARTITIONS ",
      partitions));
  for (int i = 0; i < rows; ++i) {
    db.execute(kojak::support::cat("INSERT INTO pt VALUES (", i, ", ",
                                   i * 3, ")"));
  }
  return db;
}

}  // namespace

TEST(Partitioned, FullScanCountsEveryPartition) {
  Database db = make_partitioned_db(4, 50);
  const auto before = db.exec_stats();
  EXPECT_EQ(db.execute("SELECT COUNT(*) FROM pt").scalar().as_int(), 50);
  const auto after = db.exec_stats();
  EXPECT_EQ(after.partition_scans - before.partition_scans, 4u);
  EXPECT_EQ(after.partitions_pruned - before.partitions_pruned, 0u);
}

TEST(Partitioned, EqualityOnPartitionColumnPrunes) {
  Database db = make_partitioned_db(4, 50);
  const auto before = db.exec_stats();
  const QueryResult result = db.execute("SELECT v FROM pt WHERE k = 7");
  const auto after = db.exec_stats();
  ASSERT_EQ(result.row_count(), 1u);
  EXPECT_EQ(result.at(0, 0).as_int(), 21);
  // One partition scanned, three skipped by routing.
  EXPECT_EQ(after.partition_scans - before.partition_scans, 1u);
  EXPECT_EQ(after.partitions_pruned - before.partitions_pruned, 3u);
  // Equality on a non-partition column cannot prune.
  const auto b2 = db.exec_stats();
  db.execute("SELECT k FROM pt WHERE v = 21");
  const auto a2 = db.exec_stats();
  EXPECT_EQ(a2.partition_scans - b2.partition_scans, 4u);
  EXPECT_EQ(a2.partitions_pruned - b2.partitions_pruned, 0u);
}

TEST(Partitioned, ParallelScanMatchesSerialByteForByte) {
  Database db = make_partitioned_db(8, 400);
  // No ORDER BY on purpose: the partition-order merge itself must be
  // deterministic, so serial and parallel scans yield the same row stream.
  const char* query = "SELECT k, v FROM pt WHERE v % 7 = 0";

  db.set_scan_config({.threads = 1, .min_parallel_rows = 0});
  const auto serial_before = db.exec_stats();
  const QueryResult serial = db.execute(query);
  const auto serial_after = db.exec_stats();
  EXPECT_EQ(serial_after.parallel_scan_batches -
                serial_before.parallel_scan_batches,
            0u);

  db.set_scan_config({.threads = 4, .min_parallel_rows = 1});
  const auto par_before = db.exec_stats();
  const QueryResult parallel = db.execute(query);
  const auto par_after = db.exec_stats();
  EXPECT_GE(par_after.parallel_scan_batches - par_before.parallel_scan_batches,
            1u);
  EXPECT_EQ(par_after.partition_scans - par_before.partition_scans, 8u);

  ASSERT_EQ(serial.row_count(), parallel.row_count());
  ASSERT_GT(serial.row_count(), 0u);
  for (std::size_t r = 0; r < serial.row_count(); ++r) {
    EXPECT_EQ(serial.at(r, 0).as_int(), parallel.at(r, 0).as_int());
    EXPECT_EQ(serial.at(r, 1).as_int(), parallel.at(r, 1).as_int());
  }

  // The row threshold gates dispatch: a tiny scan stays serial even with
  // parallel workers configured.
  db.set_scan_config({.threads = 4, .min_parallel_rows = 1000000});
  const auto gated_before = db.exec_stats();
  db.execute(query);
  const auto gated_after = db.exec_stats();
  EXPECT_EQ(gated_after.parallel_scan_batches -
                gated_before.parallel_scan_batches,
            0u);
}

TEST(Partitioned, QueriesAgreeWithUnpartitionedTable) {
  Database flat = make_partitioned_db(1, 300);
  Database sharded = make_partitioned_db(8, 300);
  sharded.set_scan_config({.threads = 4, .min_parallel_rows = 1});
  const char* queries[] = {
      "SELECT COUNT(*) FROM pt",
      "SELECT SUM(v) FROM pt WHERE k % 2 = 0",
      "SELECT k, v FROM pt WHERE v > 60 AND v < 300 ORDER BY k",
      "SELECT COUNT(*) FROM pt WHERE k = 123",
      "SELECT MIN(v), MAX(v) FROM pt WHERE k >= 100",
  };
  for (const char* query : queries) {
    const QueryResult a = flat.execute(query);
    const QueryResult b = sharded.execute(query);
    ASSERT_EQ(a.row_count(), b.row_count()) << query;
    for (std::size_t r = 0; r < a.row_count(); ++r) {
      for (std::size_t c = 0; c < a.column_count(); ++c) {
        const Value& va = a.at(r, c);
        const Value& vb = b.at(r, c);
        if (va.type() == kdb::ValueType::kDouble) {
          // Incremental aggregates accumulate in scan order; a full-table
          // scan's order legitimately differs across layouts, so double
          // aggregates agree to rounding, not bit for bit. (Per-owner index
          // probes — what the analysis backends issue — preserve order
          // exactly; the cosy_partition differential pins that.)
          EXPECT_NEAR(va.as_double(), vb.as_double(),
                      1e-9 * std::max(1.0, std::abs(va.as_double())))
              << query << " row " << r << " col " << c;
        } else {
          EXPECT_TRUE(va.equals_total(vb))
              << query << " row " << r << " col " << c;
        }
      }
    }
  }
}

TEST(Partitioned, SkewedFanoutGatesOnLivePartitions) {
  // All rows hash to one shard: the fan-out gate counts partitions with
  // live rows, not configured partitions, so a fully skewed table never
  // pays pool dispatch for seven empty heaps.
  Database db;
  db.execute(
      "CREATE TABLE pt (k INTEGER, v INTEGER) PARTITION BY HASH(k) "
      "PARTITIONS 8");
  for (int i = 0; i < 400; ++i) {
    db.execute(kojak::support::cat("INSERT INTO pt VALUES (5, ", i, ")"));
  }
  db.set_scan_config({.threads = 4, .min_parallel_rows = 1});
  const auto before = db.exec_stats();
  const QueryResult result = db.execute("SELECT k, v FROM pt WHERE v % 7 = 0");
  const auto after = db.exec_stats();
  EXPECT_EQ(result.row_count(), 58u);
  EXPECT_EQ(after.parallel_scan_batches - before.parallel_scan_batches, 0u);
  EXPECT_EQ(after.partition_scans - before.partition_scans, 8u);
}

// ---------------------------------------------------------------------------
// Columnar storage: vectorized scan counters and fused-plan accounting

namespace {

Database make_columnar_db(std::size_t partitions, int rows) {
  Database db;
  db.execute(kojak::support::cat(
      "CREATE TABLE ct (k INTEGER, v INTEGER) PARTITION BY HASH(k) "
      "PARTITIONS ",
      partitions, " STORAGE COLUMNAR"));
  for (int i = 0; i < rows; ++i) {
    db.execute(
        kojak::support::cat("INSERT INTO ct VALUES (", i, ", ", i * 3, ")"));
  }
  return db;
}

}  // namespace

TEST(Columnar, VectorizedCountersPinned) {
  Database db = make_columnar_db(4, 50);
  // Count nonempty shards up front (batch accounting is per nonempty
  // partition); these probes bump counters, so snapshot after them.
  std::size_t nonempty = 0;
  for (int p = 0; p < 4; ++p) {
    if (db.execute(kojak::support::cat("SELECT COUNT(*) FROM ct PARTITION (",
                                       p, ")"))
            .scalar()
            .as_int() > 0) {
      ++nonempty;
    }
  }

  // Identical data in a row-storage table: the vectorized kernels must
  // reproduce the row path's incremental accumulation bit for bit (same
  // routing, same partition-major scan order).
  Database row_db = make_partitioned_db(4, 50);
  const QueryResult row_result =
      row_db.execute("SELECT COUNT(*), SUM(v) FROM pt WHERE v >= 30");

  const auto before = db.exec_stats();
  const QueryResult result =
      db.execute("SELECT COUNT(*), SUM(v) FROM ct WHERE v >= 30");
  const auto after = db.exec_stats();
  EXPECT_EQ(result.at(0, 0).as_int(), 40);
  EXPECT_EQ(result.at(0, 1).as_double(), row_result.at(0, 1).as_double());
  EXPECT_EQ(after.columnar_scans - before.columnar_scans, 4u);
  EXPECT_EQ(after.partition_scans - before.partition_scans, 4u);
  EXPECT_EQ(after.vectorized_batches - before.vectorized_batches, nonempty);
  // 10 live rows (v < 30) were filtered by the selection bitmap before any
  // aggregate kernel ran.
  EXPECT_EQ(after.rows_skipped_by_bitmap - before.rows_skipped_by_bitmap, 10u);

  // Partition pruning composes: equality on the partition column routes the
  // vectorized scan to one shard.
  const auto b2 = db.exec_stats();
  EXPECT_EQ(
      db.execute("SELECT SUM(v) FROM ct WHERE k = 7").scalar().as_double(),
      21.0);
  const auto a2 = db.exec_stats();
  EXPECT_EQ(a2.columnar_scans - b2.columnar_scans, 1u);
  EXPECT_EQ(a2.partitions_pruned - b2.partitions_pruned, 3u);

  // Row-storage tables never take the vectorized path.
  const auto rb = row_db.exec_stats();
  row_db.execute("SELECT COUNT(*), SUM(v) FROM pt WHERE v >= 30");
  const auto ra = row_db.exec_stats();
  EXPECT_EQ(ra.columnar_scans - rb.columnar_scans, 0u);
  EXPECT_EQ(ra.vectorized_batches - rb.vectorized_batches, 0u);
  EXPECT_EQ(ra.rows_skipped_by_bitmap - rb.rows_skipped_by_bitmap, 0u);
}

TEST(Columnar, FusedPlanReuseCountsOnlyCacheHits) {
  Database db = make_columnar_db(4, 50);
  kdb::PreparedStatement stmt =
      db.prepare("SELECT COUNT(*) FROM ct WHERE v >= ?");

  // First execution analyzes the statement and caches the fused plan — the
  // counter pins *reuse*, so it must not move yet.
  const auto b1 = db.exec_stats();
  EXPECT_EQ(db.execute(stmt, std::vector<Value>{Value::integer(30)}).scalar().as_int(), 40);
  const auto a1 = db.exec_stats();
  EXPECT_EQ(a1.fused_plan_evals - b1.fused_plan_evals, 0u);
  EXPECT_EQ(a1.columnar_scans - b1.columnar_scans, 4u);

  // Re-execution with different params reuses the cached structural plan.
  EXPECT_EQ(db.execute(stmt, std::vector<Value>{Value::integer(60)}).scalar().as_int(), 30);
  EXPECT_EQ(db.execute(stmt, std::vector<Value>{Value::integer(90)}).scalar().as_int(), 20);
  const auto a2 = db.exec_stats();
  EXPECT_EQ(a2.fused_plan_evals - a1.fused_plan_evals, 2u);
}

TEST(Columnar, GroupedVectorizedCountersPinned) {
  Database db = make_columnar_db(4, 50);

  // v = 3k, so v >= 30 keeps k = 10..49: 40 groups of one row each, emitted
  // in ascending key order like the row path's std::map.
  const auto before = db.exec_stats();
  const QueryResult result = db.execute(
      "SELECT k, COUNT(*), SUM(v) FROM ct WHERE v >= 30 GROUP BY k");
  const auto after = db.exec_stats();
  EXPECT_EQ(result.row_count(), 40u);
  EXPECT_EQ(result.at(0, 0).as_int(), 10);
  EXPECT_EQ(result.at(39, 0).as_int(), 49);
  EXPECT_EQ(result.at(0, 1).as_int(), 1);
  EXPECT_EQ(result.at(0, 2).as_double(), 30.0);
  EXPECT_EQ(after.grouped_vector_evals - before.grouped_vector_evals, 1u);
  EXPECT_EQ(after.groups_built - before.groups_built, 40u);
  EXPECT_EQ(after.columnar_scans - before.columnar_scans, 4u);
  EXPECT_EQ(after.rows_skipped_by_bitmap - before.rows_skipped_by_bitmap, 10u);

  // Row storage: same rows, no kernel counters.
  Database row_db = make_partitioned_db(4, 50);
  const auto rb = row_db.exec_stats();
  const QueryResult row_result = row_db.execute(
      "SELECT k, COUNT(*), SUM(v) FROM pt WHERE v >= 30 GROUP BY k");
  const auto ra = row_db.exec_stats();
  ASSERT_EQ(row_result.row_count(), 40u);
  for (std::size_t r = 0; r < 40; ++r) {
    EXPECT_EQ(result.at(r, 0).as_int(), row_result.at(r, 0).as_int());
    EXPECT_EQ(result.at(r, 2).as_double(), row_result.at(r, 2).as_double());
  }
  EXPECT_EQ(ra.grouped_vector_evals - rb.grouped_vector_evals, 0u);
  EXPECT_EQ(ra.groups_built - rb.groups_built, 0u);
}

TEST(Columnar, FusedPlanSurvivesClone) {
  Database db = make_columnar_db(4, 50);

  // First execution analyzes the statement and caches the plan on its AST.
  kdb::sql::Statement parsed =
      kdb::sql::parse_single("SELECT COUNT(*) FROM ct WHERE v >= 30");
  auto& sel = std::get<kdb::sql::SelectStmt>(parsed);
  EXPECT_EQ(db.execute(parsed).scalar().as_int(), 40);
  ASSERT_NE(sel.fused_plan, nullptr);

  // clone() carries the plan by remapping its expression pointers onto the
  // copied tree, so the clone's first execution is already a cache hit.
  std::unique_ptr<kdb::sql::SelectStmt> copy = sel.clone();
  ASSERT_NE(copy->fused_plan, nullptr);
  kdb::sql::Statement cloned{std::move(*copy)};
  const auto before = db.exec_stats();
  EXPECT_EQ(db.execute(cloned).scalar().as_int(), 40);
  const auto after = db.exec_stats();
  EXPECT_EQ(after.fused_plan_evals - before.fused_plan_evals, 1u);
}

TEST(Columnar, ScalarSubqueryPlanBackPropagates) {
  Database db = make_columnar_db(4, 50);

  // Scalar subqueries execute on a clone of their AST; the verdict the
  // clone's execution produced must flow back to the prepared statement so
  // the second execution's clone starts pre-analyzed.
  kdb::PreparedStatement stmt =
      db.prepare("SELECT (SELECT COUNT(*) FROM ct WHERE v >= 30)");
  const auto b1 = db.exec_stats();
  EXPECT_EQ(db.execute(stmt).scalar().as_int(), 40);
  const auto a1 = db.exec_stats();
  EXPECT_EQ(a1.fused_plan_evals - b1.fused_plan_evals, 0u);
  EXPECT_EQ(db.execute(stmt).scalar().as_int(), 40);
  const auto a2 = db.exec_stats();
  EXPECT_EQ(a2.fused_plan_evals - a1.fused_plan_evals, 1u);
}

TEST(Partitioned, PartitionSelectorPinsTheScan) {
  Database db = make_partitioned_db(4, 50);

  // The selected shards tile the table: per-partition counts sum to the
  // full count, and each selector scan touches exactly one partition heap.
  std::int64_t total = 0;
  for (int k = 0; k < 4; ++k) {
    const auto before = db.exec_stats();
    total += db.execute(kojak::support::cat(
                            "SELECT COUNT(*) FROM pt PARTITION (", k, ")"))
                 .scalar()
                 .as_int();
    const auto after = db.exec_stats();
    EXPECT_EQ(after.partition_scans - before.partition_scans, 1u);
    EXPECT_EQ(after.partitions_pruned - before.partitions_pruned, 3u);
  }
  EXPECT_EQ(total, 50);

  // Selector + agreeing equality on the partition column: the row is in
  // its shard. Disagreeing: provably empty, nothing scanned.
  const std::size_t home = db.table("pt").route(Value::integer(7));
  EXPECT_EQ(db.execute(kojak::support::cat(
                           "SELECT COUNT(*) FROM pt PARTITION (", home,
                           ") WHERE k = 7"))
                .scalar()
                .as_int(),
            1);
  const std::size_t away = (home + 1) % 4;
  const auto before = db.exec_stats();
  EXPECT_EQ(db.execute(kojak::support::cat(
                           "SELECT COUNT(*) FROM pt PARTITION (", away,
                           ") WHERE k = 7"))
                .scalar()
                .as_int(),
            0);
  const auto after = db.exec_stats();
  EXPECT_EQ(after.partition_scans - before.partition_scans, 0u);
  EXPECT_EQ(after.partitions_pruned - before.partitions_pruned, 4u);

  // Joins accept a selector on the inner table too.
  db.execute("CREATE TABLE names (k INTEGER, label TEXT)");
  db.execute("INSERT INTO names VALUES (7, 'seven'), (8, 'eight')");
  const QueryResult joined = db.execute(kojak::support::cat(
      "SELECT names.label FROM names JOIN pt PARTITION (", home,
      ") p ON p.k = names.k"));
  ASSERT_EQ(joined.row_count(),
            home == db.table("pt").route(Value::integer(8)) ? 2u
                                                                       : 1u);
  EXPECT_EQ(joined.at(0, 0).as_string(), "seven");

  // With an index on a non-partition column, a selector keeps the index
  // probe and filters the resulting ids by partition bits — no shard heap
  // walk (partition_scans stays flat), results respect the selector.
  db.execute("CREATE INDEX idx_pt_v ON pt (v)");
  const auto probe_before = db.exec_stats();
  EXPECT_EQ(db.execute(kojak::support::cat(
                           "SELECT COUNT(*) FROM pt PARTITION (", home,
                           ") WHERE v = 21"))
                .scalar()
                .as_int(),
            1);
  EXPECT_EQ(db.execute(kojak::support::cat(
                           "SELECT COUNT(*) FROM pt PARTITION (", away,
                           ") WHERE v = 21"))
                .scalar()
                .as_int(),
            0);
  const auto probe_after = db.exec_stats();
  EXPECT_EQ(probe_after.partition_scans - probe_before.partition_scans, 0u);

  // Out-of-range selectors are a diagnostic, not partition 0.
  EXPECT_THROW(db.execute("SELECT COUNT(*) FROM pt PARTITION (4)"), EvalError);
}

TEST(Exec, LeastGreatestSkipNulls) {
  Database db = make_db();
  EXPECT_EQ(db.execute("SELECT LEAST(3, 1, 2)").scalar().as_int(), 1);
  EXPECT_EQ(db.execute("SELECT GREATEST(3, 1, 2)").scalar().as_int(), 3);
  // NULL arguments are skipped (aggregate-MIN/MAX semantics): the rewrite
  // folds per-partition extrema where an empty shard yields NULL.
  EXPECT_EQ(db.execute("SELECT LEAST(NULL, 5, NULL)").scalar().as_int(), 5);
  EXPECT_DOUBLE_EQ(
      db.execute("SELECT GREATEST(NULL, 1.5, 2.5, NULL)").scalar().as_double(),
      2.5);
  EXPECT_TRUE(db.execute("SELECT LEAST(NULL, NULL)").scalar().is_null());
  EXPECT_THROW(db.execute("SELECT LEAST(1)"), EvalError);
}

TEST(Exec, IndependentCtesMaterializeInParallel) {
  Database db = make_partitioned_db(4, 400);
  const char* query =
      "WITH s0 AS (SELECT COUNT(*) AS v FROM pt PARTITION (0)), "
      "s1 AS (SELECT COUNT(*) AS v FROM pt PARTITION (1)), "
      "s2 AS (SELECT COUNT(*) AS v FROM pt PARTITION (2)), "
      "s3 AS (SELECT COUNT(*) AS v FROM pt PARTITION (3)), "
      "total AS (SELECT (SELECT v FROM s0) + (SELECT v FROM s1) + "
      "(SELECT v FROM s2) + (SELECT v FROM s3) AS v) "
      "SELECT (SELECT v FROM total)";

  // Serial configuration: all five CTEs materialize, none on the pool.
  db.set_scan_config({.threads = 1, .min_parallel_rows = 1});
  const auto serial_before = db.exec_stats();
  EXPECT_EQ(db.execute(query).scalar().as_int(), 400);
  const auto serial_after = db.exec_stats();
  EXPECT_EQ(serial_after.cte_materializations -
                serial_before.cte_materializations,
            5u);
  EXPECT_EQ(serial_after.cte_parallel_materializations -
                serial_before.cte_parallel_materializations,
            0u);

  // Parallel configuration: the four independent shard CTEs run as one
  // scan-pool wave; `total` depends on all of them and runs after. The
  // result is identical.
  db.set_scan_config({.threads = 4, .min_parallel_rows = 1});
  const auto par_before = db.exec_stats();
  EXPECT_EQ(db.execute(query).scalar().as_int(), 400);
  const auto par_after = db.exec_stats();
  EXPECT_EQ(par_after.cte_materializations - par_before.cte_materializations,
            5u);
  EXPECT_EQ(par_after.cte_parallel_materializations -
                par_before.cte_parallel_materializations,
            4u);

  // The row threshold gates the wave dispatch exactly like heap scans.
  db.set_scan_config({.threads = 4, .min_parallel_rows = 1000000});
  const auto gated_before = db.exec_stats();
  EXPECT_EQ(db.execute(query).scalar().as_int(), 400);
  const auto gated_after = db.exec_stats();
  EXPECT_EQ(gated_after.cte_parallel_materializations -
                gated_before.cte_parallel_materializations,
            0u);
}

TEST(Exec, PartitionUnionStatementOverOwnerHashedTimingTable) {
  // The acceptance shape end-to-end at the engine level: a timing table
  // partitioned HASH(owner) PARTITIONS 4, whose whole-table aggregate runs
  // as ONE WITH part0..part3 union statement with the shard CTEs
  // materialized in parallel — and agrees with the flat aggregate.
  Database db;
  db.execute(
      "CREATE TABLE timing (owner INTEGER NOT NULL, t DOUBLE) "
      "PARTITION BY HASH(owner) PARTITIONS 4");
  for (int i = 0; i < 200; ++i) {
    db.execute(kojak::support::cat("INSERT INTO timing VALUES (", i % 37,
                                   ", ", (i % 8) * 0.25, ")"));
  }
  db.set_scan_config({.threads = 4, .min_parallel_rows = 1});

  const double flat =
      db.execute("SELECT COALESCE(SUM(t), 0.0) FROM timing").scalar().as_double();
  const char* union_stmt =
      "WITH part0 AS (SELECT COALESCE(SUM(t), 0.0) AS v FROM timing PARTITION (0)), "
      "part1 AS (SELECT COALESCE(SUM(t), 0.0) AS v FROM timing PARTITION (1)), "
      "part2 AS (SELECT COALESCE(SUM(t), 0.0) AS v FROM timing PARTITION (2)), "
      "part3 AS (SELECT COALESCE(SUM(t), 0.0) AS v FROM timing PARTITION (3)) "
      "SELECT (SELECT v FROM part0) + (SELECT v FROM part1) + "
      "(SELECT v FROM part2) + (SELECT v FROM part3)";
  const auto before = db.exec_stats();
  const double unioned = db.execute(union_stmt).scalar().as_double();
  const auto after = db.exec_stats();
  EXPECT_DOUBLE_EQ(unioned, flat);
  EXPECT_EQ(after.cte_materializations - before.cte_materializations, 4u);
  EXPECT_EQ(after.cte_parallel_materializations -
                before.cte_parallel_materializations,
            4u);
  // Each shard CTE scanned its own partition and pruned the other three.
  EXPECT_EQ(after.partition_scans - before.partition_scans, 4u);
  EXPECT_EQ(after.partitions_pruned - before.partitions_pruned, 12u);
}

TEST(Exec, ParallelCtesKeepDeterministicResults) {
  Database db = make_partitioned_db(8, 600);
  // Four independent CTEs with ORDER-sensitive bodies, consumed in FROM
  // position: the parallel schedule must not change any row stream.
  const char* query =
      "WITH a AS (SELECT k, v FROM pt PARTITION (0)), "
      "b AS (SELECT k, v FROM pt PARTITION (3)), "
      "c AS (SELECT MIN(v) AS m FROM pt PARTITION (5)), "
      "d AS (SELECT MAX(v) AS m FROM pt PARTITION (6)) "
      "SELECT a.k, b.k, (SELECT m FROM c), (SELECT m FROM d) "
      "FROM a JOIN b ON b.k = a.k + 1";
  db.set_scan_config({.threads = 1, .min_parallel_rows = 1});
  const QueryResult serial = db.execute(query);
  db.set_scan_config({.threads = 8, .min_parallel_rows = 1});
  const QueryResult parallel = db.execute(query);
  ASSERT_EQ(serial.row_count(), parallel.row_count());
  for (std::size_t r = 0; r < serial.row_count(); ++r) {
    for (std::size_t c = 0; c < serial.column_count(); ++c) {
      EXPECT_TRUE(serial.at(r, c).equals_total(parallel.at(r, c)))
          << r << "," << c;
    }
  }
}

TEST(Partitioned, DmlRoundTripUnderPartitioning) {
  Database db = make_partitioned_db(4, 60);
  // UPDATE of the partition column moves rows between partitions under the
  // SQL surface; counts and contents must stay coherent.
  EXPECT_EQ(db.execute("UPDATE pt SET k = k + 1 WHERE v = 30").affected_rows,
            1u);
  EXPECT_EQ(db.execute("SELECT COUNT(*) FROM pt").scalar().as_int(), 60);
  EXPECT_EQ(db.execute("SELECT v FROM pt WHERE k = 11").row_count(), 2u);
  EXPECT_EQ(db.execute("DELETE FROM pt WHERE k % 2 = 0").affected_rows, 29u);
  EXPECT_EQ(db.execute("SELECT COUNT(*) FROM pt").scalar().as_int(), 31);
}

TEST(Exec, PrepareRejectsMultiStatementScripts) {
  Database db = make_db();
  // More than one statement at prepare time is a diagnostic, not a silent
  // first/last-statement surprise.
  try {
    (void)db.prepare("SELECT 1; SELECT 2");
    FAIL() << "expected ParseError";
  } catch (const kojak::support::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("exactly one statement"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)db.prepare("DELETE FROM emp; DELETE FROM dept"),
               kojak::support::ParseError);
  // One statement with a trailing semicolon stays preparable.
  kdb::PreparedStatement stmt = db.prepare("SELECT COUNT(*) FROM emp;");
  EXPECT_EQ(db.execute(stmt).scalar().as_int(), 5);
}
