#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "db/connection.hpp"
#include "db/connection_pool.hpp"
#include "support/str.hpp"

namespace kdb = kojak::db;
using kdb::Connection;
using kdb::ConnectionProfile;
using kdb::Database;
using kdb::DriverKind;
using kdb::Value;

namespace {

Database seeded_db(int rows = 100) {
  Database db;
  db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v DOUBLE, s TEXT)");
  db.execute("CREATE INDEX idx_id ON t (id)");
  for (int i = 0; i < rows; ++i) {
    db.execute(kojak::support::cat("INSERT INTO t VALUES (", i, ", ", i * 1.5,
                                   ", 'row_", i, "')"));
  }
  return db;
}

}  // namespace

TEST(SimClock, Accumulates) {
  kdb::SimClock clock;
  EXPECT_EQ(clock.now_ns(), 0u);
  clock.advance_us(1.5);
  clock.advance_ns(500);
  EXPECT_EQ(clock.now_ns(), 2000u);
  EXPECT_DOUBLE_EQ(clock.now_us(), 2.0);
  clock.reset();
  EXPECT_EQ(clock.now_ns(), 0u);
}

TEST(Profiles, PaperCalibrationOrdering) {
  const auto access = ConnectionProfile::access_local();
  const auto oracle = ConnectionProfile::oracle7();
  const auto mssql = ConnectionProfile::mssql_server();
  const auto postgres = ConnectionProfile::postgres();

  EXPECT_FALSE(access.distributed);
  EXPECT_TRUE(oracle.distributed);

  // Per-row insert cost (incl. the statement round trip that dominates
  // row-at-a-time imports) reproduces §5: Access fastest by ~20x vs Oracle,
  // MSSQL/Postgres ~2x faster than Oracle.
  const auto insert_cost = [](const ConnectionProfile& p) {
    return p.insert_row_us + (p.distributed ? p.stmt_roundtrip_us : 0.0);
  };
  const double ratio_oracle = insert_cost(oracle) / insert_cost(access);
  EXPECT_GT(ratio_oracle, 15.0);
  EXPECT_LT(ratio_oracle, 25.0);
  const double vs_mssql = insert_cost(oracle) / insert_cost(mssql);
  EXPECT_GT(vs_mssql, 1.6);
  EXPECT_LT(vs_mssql, 2.6);
  const double vs_postgres = insert_cost(oracle) / insert_cost(postgres);
  EXPECT_GT(vs_postgres, 1.6);
  EXPECT_LT(vs_postgres, 2.6);

  EXPECT_EQ(ConnectionProfile::all_paper_profiles().size(), 4u);
}

TEST(Connection, ChargesConnectCost) {
  Database db = seeded_db(1);
  Connection conn(db, ConnectionProfile::oracle7());
  EXPECT_DOUBLE_EQ(conn.clock().now_us(),
                   ConnectionProfile::oracle7().connect_us);
}

TEST(Connection, InsertChargesPerRow) {
  Database db;
  db.execute("CREATE TABLE t (x INTEGER)");
  Connection conn(db, ConnectionProfile::postgres());
  const double before = conn.clock().now_us();
  conn.execute("INSERT INTO t VALUES (1), (2), (3)");
  const double charged = conn.clock().now_us() - before;
  const auto profile = ConnectionProfile::postgres();
  EXPECT_GE(charged, profile.stmt_roundtrip_us + 3 * profile.insert_row_us);
  EXPECT_EQ(conn.rows_transferred(), 3u);
  EXPECT_EQ(conn.statements_executed(), 1u);
}

TEST(Connection, FetchChargesPerRowAndValue) {
  Database db = seeded_db(50);
  Connection conn(db, ConnectionProfile::oracle7());
  const double before = conn.clock().now_us();
  const auto result = conn.execute("SELECT id, v, s FROM t");
  const double charged = conn.clock().now_us() - before;
  EXPECT_EQ(result.row_count(), 50u);
  const auto profile = ConnectionProfile::oracle7();
  const double expected = profile.stmt_roundtrip_us +
                          50 * profile.fetch_row_us +
                          50 * 3 * profile.value_wire_us;
  EXPECT_NEAR(charged, expected, 1.0);
}

TEST(Connection, InMemoryProfileChargesNothing) {
  Database db = seeded_db(10);
  Connection conn(db, ConnectionProfile::in_memory());
  conn.execute("SELECT * FROM t");
  EXPECT_EQ(conn.clock().now_ns(), 0u);
}

TEST(Connection, BridgeDriverCostFactorInBand) {
  // §5: JDBC-style access is a factor 2-4 slower than C-based access.
  Database db = seeded_db(200);
  Connection native(db, ConnectionProfile::oracle7(), DriverKind::kNative);
  Connection bridge(db, ConnectionProfile::oracle7(), DriverKind::kBridge);
  const double n0 = native.clock().now_us();
  const double b0 = bridge.clock().now_us();
  native.execute("SELECT id, v, s FROM t");
  bridge.execute("SELECT id, v, s FROM t");
  const double native_cost = native.clock().now_us() - n0;
  const double bridge_cost = bridge.clock().now_us() - b0;
  const double factor = bridge_cost / native_cost;
  EXPECT_GT(factor, 2.0);
  EXPECT_LT(factor, 4.0);
}

TEST(Connection, OracleJdbcFetchIsAboutOneMillisecond) {
  // §5: "fetching a record from the Oracle server takes about 1 ms" (JDBC).
  Database db = seeded_db(100);
  Connection bridge(db, ConnectionProfile::oracle7(), DriverKind::kBridge);
  const double before = bridge.clock().now_us();
  for (int i = 0; i < 100; ++i) {
    const std::vector<Value> params = {Value::integer(i)};
    auto stmt = db.prepare("SELECT id, v, s FROM t WHERE id = ?");
    bridge.execute(stmt, params);
  }
  const double per_record_us = (bridge.clock().now_us() - before) / 100.0;
  EXPECT_GT(per_record_us, 500.0);
  EXPECT_LT(per_record_us, 1500.0);
}

TEST(BridgeMarshal, RoundTripPreservesValues) {
  Database db = seeded_db(5);
  db.execute("INSERT INTO t VALUES (100, NULL, NULL)");
  const auto direct = db.execute("SELECT id, v, s FROM t ORDER BY id");
  const auto bridged = kdb::bridge_marshal_roundtrip(direct);
  ASSERT_EQ(bridged.row_count(), direct.row_count());
  ASSERT_EQ(bridged.columns, direct.columns);
  for (std::size_t r = 0; r < direct.row_count(); ++r) {
    for (std::size_t c = 0; c < direct.column_count(); ++c) {
      EXPECT_EQ(kdb::Value::compare_total(bridged.at(r, c), direct.at(r, c)), 0)
          << "row " << r << " col " << c;
    }
  }
}

TEST(BridgeMarshal, HandlesAllTypes) {
  kdb::QueryResult result;
  result.columns = {"a", "b", "c", "d", "e", "f"};
  result.rows.push_back({Value::null(), Value::boolean(true),
                         Value::integer(-42), Value::real(2.5),
                         Value::text("hello world"), Value::datetime(941806800)});
  const auto bridged = kdb::bridge_marshal_roundtrip(result);
  ASSERT_EQ(bridged.row_count(), 1u);
  EXPECT_TRUE(bridged.at(0, 0).is_null());
  EXPECT_TRUE(bridged.at(0, 1).as_bool());
  EXPECT_EQ(bridged.at(0, 2).as_int(), -42);
  EXPECT_DOUBLE_EQ(bridged.at(0, 3).as_double(), 2.5);
  EXPECT_EQ(bridged.at(0, 4).as_string(), "hello world");
  EXPECT_EQ(bridged.at(0, 5).as_datetime(), 941806800);
}

TEST(Connection, BridgeReturnsEqualResults) {
  Database db = seeded_db(20);
  Connection native(db, ConnectionProfile::in_memory(), DriverKind::kNative);
  Connection bridge(db, ConnectionProfile::in_memory(), DriverKind::kBridge);
  const auto a = native.execute("SELECT * FROM t ORDER BY id");
  const auto b = bridge.execute("SELECT * FROM t ORDER BY id");
  ASSERT_EQ(a.row_count(), b.row_count());
  for (std::size_t r = 0; r < a.row_count(); ++r) {
    for (std::size_t c = 0; c < a.column_count(); ++c) {
      EXPECT_EQ(kdb::Value::compare_total(a.at(r, c), b.at(r, c)), 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Connection pool

TEST(ConnectionPool, CreatesLazilyAndReuses) {
  Database db = seeded_db(10);
  kdb::ConnectionPool pool(db, ConnectionProfile::oracle7(), 4);
  EXPECT_EQ(pool.capacity(), 4u);
  EXPECT_EQ(pool.created(), 0u);

  {
    const auto lease = pool.acquire();
    EXPECT_TRUE(lease);
    EXPECT_EQ(pool.created(), 1u);
    EXPECT_EQ(pool.idle(), 0u);
    lease->execute("SELECT COUNT(*) FROM t");
  }
  EXPECT_EQ(pool.idle(), 1u);

  // A second sequential acquire reuses the same session: its clock keeps
  // accumulating and no second connect cost is charged.
  const double after_first = pool.total_clock_us();
  {
    const auto lease = pool.acquire();
    EXPECT_EQ(pool.created(), 1u);
    lease->execute("SELECT COUNT(*) FROM t");
  }
  EXPECT_EQ(pool.created(), 1u);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.reuses, 1u);
  EXPECT_EQ(stats.waits, 0u);
  EXPECT_GT(pool.total_clock_us(), after_first);
  EXPECT_LT(pool.total_clock_us(),
            after_first + ConnectionProfile::oracle7().connect_us);
}

TEST(ConnectionPool, TryAcquireExhaustion) {
  Database db = seeded_db(1);
  kdb::ConnectionPool pool(db, ConnectionProfile::in_memory(), 2);
  auto a = pool.try_acquire();
  auto b = pool.try_acquire();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_FALSE(pool.try_acquire().has_value());
  a->release();
  EXPECT_TRUE(pool.try_acquire().has_value());
}

TEST(ConnectionPool, MoveTransfersOwnership) {
  Database db = seeded_db(1);
  kdb::ConnectionPool pool(db, ConnectionProfile::in_memory(), 1);
  auto a = pool.acquire();
  kdb::ConnectionPool::Lease b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_TRUE(b);
  EXPECT_EQ(pool.idle(), 0u);
  b.release();
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(ConnectionPool, ContentionBlocksAndEveryWorkerGetsASession) {
  // 8 workers over 2 sessions: the pool must serialize the excess, nobody
  // deadlocks, and every statement lands. Traffic is read-only — the engine
  // only permits concurrent SELECTs (the batch engine's access pattern);
  // writes would need one session or external serialization.
  Database db = seeded_db(50);
  kdb::ConnectionPool pool(db, ConnectionProfile::in_memory(), 2);

  constexpr int kWorkers = 8;
  constexpr int kRounds = 5;
  std::atomic<int> executed{0};
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&pool, &executed] {
      for (int round = 0; round < kRounds; ++round) {
        auto lease = pool.acquire();
        if (lease->execute("SELECT COUNT(*) FROM t").scalar().as_int() == 50) {
          executed.fetch_add(1);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  EXPECT_EQ(executed.load(), kWorkers * kRounds);
  EXPECT_LE(pool.created(), 2u);
  EXPECT_EQ(pool.idle(), pool.created());
  const auto stats = pool.stats();
  EXPECT_EQ(stats.acquires,
            static_cast<std::uint64_t>(kWorkers * kRounds));
  EXPECT_EQ(pool.statements_executed(),
            static_cast<std::uint64_t>(kWorkers * kRounds));
}

TEST(ConnectionPool, ConcurrentReadersOnDistinctSessions) {
  // Parallel read-only pushdown traffic: distinct sessions may query the
  // same database concurrently (this is the batch engine's access pattern;
  // the sanitizer job watches this test closely).
  Database db = seeded_db(200);
  kdb::ConnectionPool pool(db, ConnectionProfile::postgres(), 4);

  // Force all four sessions into existence with work on each (lazy LIFO
  // reuse means a fast sequential storm could otherwise be served by one
  // session, making the makespan assertion below vacuous).
  {
    std::vector<kdb::ConnectionPool::Lease> held;
    for (int i = 0; i < 4; ++i) held.push_back(pool.acquire());
    for (auto& lease : held) lease->execute("SELECT COUNT(*) FROM t");
  }
  ASSERT_EQ(pool.created(), 4u);

  std::atomic<std::int64_t> total{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&pool, &total] {
      for (int i = 0; i < 20; ++i) {
        auto lease = pool.acquire();
        const auto result =
            lease->execute("SELECT COUNT(*) FROM t WHERE v >= 0");
        total.fetch_add(result.scalar().as_int());
      }
    });
  }
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(total.load(), 4 * 20 * 200);
  // Four sessions each did work: the virtual makespan (busiest session)
  // sits strictly below the serial-equivalent sum.
  EXPECT_LT(pool.max_clock_us(), pool.total_clock_us());
  EXPECT_EQ(pool.clock_snapshot_us().size(), pool.created());
}
