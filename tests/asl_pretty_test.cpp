// Pretty-printer output and the shipped specification documents: the specs
// on disk must parse, analyze, survive a print->parse round trip, and agree
// with the substrate's enumerations.

#include <gtest/gtest.h>

#include "asl/parser.hpp"
#include "asl/pretty.hpp"
#include "asl/sema.hpp"
#include "cosy/specs.hpp"
#include "support/str.hpp"

namespace asl = kojak::asl;
namespace cosy = kojak::cosy;

namespace {

std::string print_expr(std::string_view expr_source) {
  const auto spec = asl::parse_spec_or_throw(
      kojak::support::cat("float F(Region r, TestRun t) = ", expr_source, ";"));
  return asl::to_source(*spec.functions[0].body);
}

}  // namespace

TEST(Pretty, ExpressionForms) {
  EXPECT_EQ(print_expr("1 + 2 * 3"), "(1 + (2 * 3))");
  EXPECT_EQ(print_expr("Summary(r, t).Incl"), "Summary(r, t).Incl");
  EXPECT_EQ(print_expr("UNIQUE({s IN r.TotTimes WITH s.Run == t})"),
            "UNIQUE({s IN r.TotTimes WITH (s.Run == t)})");
  EXPECT_EQ(print_expr("SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t)"),
            "SUM(tt.Time WHERE tt IN r.TypTimes AND (tt.Run == t))");
  EXPECT_EQ(print_expr("-x"), "-(x)");
  EXPECT_EQ(print_expr("NOT a AND b"), "(NOT (a) AND b)");
  EXPECT_EQ(print_expr("SIZE(r.TotTimes)"), "SIZE(r.TotTimes)");
  EXPECT_EQ(print_expr("2.0"), "2.0");  // float marker survives
  EXPECT_EQ(print_expr("null"), "null");
}

TEST(Pretty, StringEscapes) {
  const auto spec = asl::parse_spec_or_throw(
      "String F(Region r) = \"a\\\"b\\n\";");
  EXPECT_EQ(asl::to_source(*spec.functions[0].body), "\"a\\\"b\\n\"");
}

TEST(Pretty, PropertyRendering) {
  const auto spec = asl::parse_spec_or_throw(
      "Property P(Region r, TestRun t) {\n"
      " LET float X = 1 IN\n"
      " CONDITION: (a) X > 0 OR X < -1;\n"
      " CONFIDENCE: MAX((a) -> 0.9, 0.5);\n"
      " SEVERITY: X;\n"
      "};");
  const std::string printed = asl::to_source(spec);
  EXPECT_NE(printed.find("Property P(Region r, TestRun t)"), std::string::npos);
  EXPECT_NE(printed.find("LET"), std::string::npos);
  EXPECT_NE(printed.find("CONDITION: (a) (X > 0) OR (X < -(1))"),
            std::string::npos);
  EXPECT_NE(printed.find("CONFIDENCE: MAX((a) -> 0.9, 0.5)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Shipped documents

TEST(ShippedSpecs, ParseAndAnalyze) {
  EXPECT_NO_THROW((void)cosy::load_cosy_model(false));
  EXPECT_NO_THROW((void)cosy::load_cosy_model(true));
}

TEST(ShippedSpecs, RoundTripThroughPrinter) {
  for (const std::string* source :
       {&cosy::cosy_model_source(), &cosy::cosy_properties_source(),
        &cosy::extended_properties_source()}) {
    const auto first = asl::parse_spec_or_throw(*source);
    const std::string printed = asl::to_source(first);
    const auto second = asl::parse_spec_or_throw(printed);
    EXPECT_EQ(printed, asl::to_source(second));
  }
}

TEST(ShippedSpecs, PrintedSpecStillAnalyzes) {
  // Printing the merged spec and re-analyzing must yield the same model
  // inventory (names and counts).
  const auto merged = asl::merge_specs([] {
    std::vector<asl::ast::SpecFile> specs;
    specs.push_back(asl::parse_spec_or_throw(cosy::cosy_model_source()));
    specs.push_back(asl::parse_spec_or_throw(cosy::cosy_properties_source()));
    specs.push_back(
        asl::parse_spec_or_throw(cosy::extended_properties_source()));
    return specs;
  }());
  const std::string printed = asl::to_source(merged);
  const asl::Model reparsed = asl::analyze(asl::parse_spec_or_throw(printed));
  const asl::Model original = cosy::load_cosy_model();
  ASSERT_EQ(reparsed.classes().size(), original.classes().size());
  ASSERT_EQ(reparsed.properties().size(), original.properties().size());
  for (std::size_t i = 0; i < original.properties().size(); ++i) {
    EXPECT_EQ(reparsed.properties()[i].name, original.properties()[i].name);
    EXPECT_EQ(reparsed.properties()[i].conditions.size(),
              original.properties()[i].conditions.size());
  }
}

TEST(ShippedSpecs, PaperPropertiesHaveExpectedShape) {
  const asl::Model model = cosy::load_cosy_model(false);
  const asl::PropertyInfo* sls = model.find_property("SublinearSpeedup");
  ASSERT_NE(sls, nullptr);
  ASSERT_EQ(sls->params.size(), 3u);
  EXPECT_EQ(sls->params[0].first, "r");
  EXPECT_EQ(sls->params[2].first, "Basis");
  EXPECT_EQ(sls->lets.size(), 2u);
  EXPECT_EQ(sls->conditions.size(), 1u);

  const asl::PropertyInfo* li = model.find_property("LoadImbalance");
  ASSERT_NE(li, nullptr);
  EXPECT_EQ(model.type_name(li->params[0].second), "FunctionCall");
}
