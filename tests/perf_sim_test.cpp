#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <map>
#include <set>

#include "perf/simulator.hpp"
#include "perf/workloads.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace perf = kojak::perf;
using kojak::support::EvalError;

namespace {

double typed_of(const perf::RegionTiming& timing, perf::TimingType type) {
  for (const auto& [t, ms] : timing.typed_ms) {
    if (t == type) return ms;
  }
  return 0.0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Timing types

TEST(TimingTypes, TwentyFiveDistinctNames) {
  std::set<std::string_view> names;
  for (const perf::TimingType type : perf::all_timing_types()) {
    names.insert(perf::to_string(type));
  }
  EXPECT_EQ(names.size(), perf::kTimingTypeCount);
  EXPECT_EQ(perf::kTimingTypeCount, 25u);
}

TEST(TimingTypes, ParseRoundTrip) {
  for (const perf::TimingType type : perf::all_timing_types()) {
    const auto parsed = perf::parse_timing_type(perf::to_string(type));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, type);
  }
  EXPECT_FALSE(perf::parse_timing_type("NotAType").has_value());
}

TEST(TimingTypes, CategoriesArePartitionedSensibly) {
  EXPECT_TRUE(perf::is_message_passing(perf::TimingType::kSendMsg));
  EXPECT_TRUE(perf::is_io(perf::TimingType::kIORead));
  EXPECT_TRUE(perf::is_synchronization(perf::TimingType::kBarrier));
  EXPECT_FALSE(perf::is_io(perf::TimingType::kBarrier));
  EXPECT_FALSE(perf::is_message_passing(perf::TimingType::kInstrumentation));
}

// ---------------------------------------------------------------------------
// App model validation

TEST(AppModel, NamedWorkloadsValidate) {
  for (const auto& [name, factory] : perf::workloads::all_named()) {
    EXPECT_NO_THROW(perf::validate(factory())) << name;
  }
}

TEST(AppModel, RejectsUnknownCallee) {
  perf::AppSpec app = perf::workloads::scalable_stencil();
  perf::RegionSpec call;
  call.name = "main.badcall";
  call.kind = perf::RegionKind::kCall;
  call.callee = "ghost";
  app.functions[0].body.children.push_back(std::move(call));
  EXPECT_THROW(perf::validate(app), EvalError);
}

TEST(AppModel, RejectsRecursion) {
  perf::AppSpec app;
  app.name = "rec";
  perf::FunctionSpec main_fn;
  main_fn.name = "main";
  main_fn.body.name = "main";
  main_fn.body.kind = perf::RegionKind::kFunction;
  perf::RegionSpec call;
  call.name = "main.self";
  call.kind = perf::RegionKind::kCall;
  call.callee = "main";
  main_fn.body.children.push_back(std::move(call));
  app.functions.push_back(std::move(main_fn));
  EXPECT_THROW(perf::validate(app), EvalError);
}

TEST(AppModel, RejectsDuplicateRegionNames) {
  perf::AppSpec app = perf::workloads::scalable_stencil();
  auto& children = app.functions[0].body.children;
  children.push_back(children.front());  // duplicate "main.init"
  EXPECT_THROW(perf::validate(app), EvalError);
}

TEST(AppModel, RegionKindRoundTrip) {
  for (const perf::RegionKind kind :
       {perf::RegionKind::kFunction, perf::RegionKind::kLoop,
        perf::RegionKind::kIfBlock, perf::RegionKind::kCall,
        perf::RegionKind::kBasicBlock}) {
    EXPECT_EQ(perf::parse_region_kind(perf::to_string(kind)), kind);
  }
}

// ---------------------------------------------------------------------------
// Structure extraction

TEST(Structure, OceanShape) {
  const perf::ProgramStructure s =
      perf::structure_of(perf::workloads::imbalanced_ocean());
  EXPECT_EQ(s.program_name, "ocean_sim");
  // main + physics_step + synthetic barrier function.
  ASSERT_EQ(s.functions.size(), 3u);
  EXPECT_EQ(s.functions.back().name, perf::kBarrierFunction);
  // Call sites: main->physics_step, plus 2 barrier sites (step, checkpoint).
  EXPECT_EQ(s.call_sites.size(), 3u);
  EXPECT_FALSE(s.source_code.empty());
  EXPECT_NE(s.source_code.find("SUBROUTINE main"), std::string::npos);
}

TEST(Structure, ParentLinks) {
  const perf::ProgramStructure s =
      perf::structure_of(perf::workloads::imbalanced_ocean());
  const perf::StaticFunction* main_fn = s.find_function("main");
  ASSERT_NE(main_fn, nullptr);
  EXPECT_EQ(main_fn->regions.front().parent, "");
  bool found = false;
  for (const auto& region : main_fn->regions) {
    if (region.name == "main.time_loop.step") {
      EXPECT_EQ(region.parent, "main.time_loop");
      EXPECT_EQ(region.kind, perf::RegionKind::kCall);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Simulation

TEST(Simulator, DeterministicForSeed) {
  const perf::AppSpec app = perf::workloads::imbalanced_ocean();
  perf::SimulationOptions options;
  options.seed = 42;
  const perf::RunResult a = perf::simulate(app, 8, options);
  const perf::RunResult b = perf::simulate(app, 8, options);
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (std::size_t i = 0; i < a.regions.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.regions[i].incl_ms, b.regions[i].incl_ms);
    EXPECT_DOUBLE_EQ(a.regions[i].excl_ms, b.regions[i].excl_ms);
  }
  ASSERT_EQ(a.calls.size(), b.calls.size());
  for (std::size_t i = 0; i < a.calls.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.calls[i].time_ms.mean, b.calls[i].time_ms.mean);
  }
}

TEST(Simulator, DifferentSeedsDiffer) {
  const perf::AppSpec app = perf::workloads::imbalanced_ocean();
  perf::SimulationOptions a_options, b_options;
  a_options.seed = 1;
  b_options.seed = 2;
  const perf::RunResult a = perf::simulate(app, 8, a_options);
  const perf::RunResult b = perf::simulate(app, 8, b_options);
  // The noisy regions must differ somewhere.
  double max_delta = 0;
  for (std::size_t i = 0; i < a.regions.size(); ++i) {
    max_delta = std::max(max_delta,
                         std::abs(a.regions[i].incl_ms - b.regions[i].incl_ms));
  }
  EXPECT_GT(max_delta, 1e-9);
}

TEST(Simulator, PooledExecutionIsBitIdentical) {
  const perf::AppSpec app = perf::workloads::imbalanced_ocean();
  perf::SimulationOptions serial_options;
  serial_options.seed = 7;
  perf::SimulationOptions pooled_options = serial_options;
  kojak::support::ThreadPool pool(4);
  pooled_options.pool = &pool;
  const perf::RunResult a = perf::simulate(app, 32, serial_options);
  const perf::RunResult b = perf::simulate(app, 32, pooled_options);
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (std::size_t i = 0; i < a.regions.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.regions[i].incl_ms, b.regions[i].incl_ms) << i;
    EXPECT_DOUBLE_EQ(a.regions[i].ovhd_ms, b.regions[i].ovhd_ms) << i;
  }
}

TEST(Simulator, InclusiveContainsChildren) {
  const perf::RunResult run =
      perf::simulate(perf::workloads::imbalanced_ocean(), 8);
  const perf::RegionTiming* parent = run.find_region("main.time_loop");
  const perf::RegionTiming* child = run.find_region("main.time_loop.halo");
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_GT(parent->incl_ms, child->incl_ms);
  const perf::RegionTiming* root = run.find_region("main");
  ASSERT_NE(root, nullptr);
  EXPECT_GE(root->incl_ms, parent->incl_ms);
}

TEST(Simulator, OvhdEqualsTypedSumsRecursively) {
  const perf::RunResult run =
      perf::simulate(perf::workloads::imbalanced_ocean(), 4);
  // For leaf regions, ovhd == sum of typed entries.
  const perf::RegionTiming* halo = run.find_region("main.time_loop.halo");
  ASSERT_NE(halo, nullptr);
  double typed_sum = 0;
  for (const auto& [type, ms] : halo->typed_ms) typed_sum += ms;
  EXPECT_NEAR(halo->ovhd_ms, typed_sum, 1e-9);
}

TEST(Simulator, ExclusiveIsComputeOnly) {
  const perf::RunResult run =
      perf::simulate(perf::workloads::scalable_stencil(), 4);
  const perf::RegionTiming* update = run.find_region("main.sweep_loop.update");
  ASSERT_NE(update, nullptr);
  // Summed across PEs the parallel share stays ~constant (imbalance-mean 1).
  EXPECT_NEAR(update->excl_ms, 1600.0, 1600.0 * 0.05);
}

TEST(Simulator, SerialWorkReplicates) {
  const perf::RunResult p1 =
      perf::simulate(perf::workloads::serial_bottleneck(), 1);
  const perf::RunResult p8 =
      perf::simulate(perf::workloads::serial_bottleneck(), 8);
  const double setup1 = p1.find_region("main.setup")->excl_ms;
  const double setup8 = p8.find_region("main.setup")->excl_ms;
  // Replicated serial region: summed time grows ~linearly with P.
  EXPECT_NEAR(setup8 / setup1, 8.0, 0.5);
}

TEST(Simulator, BarrierWaitGrowsWithImbalance) {
  perf::AppSpec balanced = perf::workloads::imbalanced_ocean();
  // Zero out the physics imbalance -> barrier waits collapse.
  for (auto& fn : balanced.functions) {
    const std::function<void(perf::RegionSpec&)> flatten =
        [&](perf::RegionSpec& region) {
          region.imbalance = 0.0;
          region.noise = 0.0;
          for (auto& child : region.children) flatten(child);
        };
    flatten(fn.body);
  }
  const perf::RunResult skewed =
      perf::simulate(perf::workloads::imbalanced_ocean(), 16);
  const perf::RunResult flat = perf::simulate(balanced, 16);
  const double skewed_barrier =
      typed_of(*skewed.find_region("main.time_loop.step"),
               perf::TimingType::kBarrier);
  const double flat_barrier = typed_of(
      *flat.find_region("main.time_loop.step"), perf::TimingType::kBarrier);
  EXPECT_GT(skewed_barrier, 10.0 * std::max(flat_barrier, 1e-9));
}

TEST(Simulator, SerializedIoChargesIdleWait) {
  const perf::RunResult run = perf::simulate(perf::workloads::io_heavy(), 8);
  const perf::RegionTiming* dump = run.find_region("main.dump");
  ASSERT_NE(dump, nullptr);
  EXPECT_GT(typed_of(*dump, perf::TimingType::kIOWrite), 0.0);
  EXPECT_GT(typed_of(*dump, perf::TimingType::kIdleWait), 0.0);
  // 7 of 8 PEs wait for PE0's write.
  EXPECT_NEAR(typed_of(*dump, perf::TimingType::kIdleWait) /
                  typed_of(*dump, perf::TimingType::kIOWrite),
              7.0, 0.2);
}

TEST(Simulator, SinglePeHasNoBarrierImbalance) {
  const perf::RunResult run =
      perf::simulate(perf::workloads::imbalanced_ocean(), 1);
  for (const perf::CallSiteTiming& call : run.calls) {
    EXPECT_DOUBLE_EQ(call.time_ms.stddev, 0.0);
  }
}

TEST(Simulator, CallSiteStatsShapeForBarriers) {
  const perf::AppSpec app = perf::workloads::imbalanced_ocean();
  const perf::ProgramStructure s = perf::structure_of(app);
  const perf::RunResult run = perf::simulate(app, 16);
  ASSERT_EQ(run.calls.size(), s.call_sites.size());
  for (std::size_t i = 0; i < run.calls.size(); ++i) {
    if (s.call_sites[i].callee != perf::kBarrierFunction) continue;
    const perf::CallSiteTiming& call = run.calls[i];
    EXPECT_GT(call.calls.mean, 0.0);
    EXPECT_GE(call.time_ms.max, call.time_ms.mean);
    EXPECT_GE(call.time_ms.mean, call.time_ms.min);
    EXPECT_LT(call.time_ms.min_pe, 16u);
    EXPECT_LT(call.time_ms.max_pe, 16u);
  }
}

TEST(Simulator, ImbalancedBarrierCallSiteHasHighStdev) {
  const perf::AppSpec app = perf::workloads::imbalanced_ocean();
  const perf::ProgramStructure s = perf::structure_of(app);
  const perf::RunResult run = perf::simulate(app, 16);
  bool checked = false;
  for (std::size_t i = 0; i < run.calls.size(); ++i) {
    if (s.call_sites[i].callee == perf::kBarrierFunction &&
        s.call_sites[i].calling_region == "main.time_loop.step") {
      // The paper's LoadImbalance trigger: Dev > 0.25 * Mean.
      EXPECT_GT(run.calls[i].time_ms.stddev, 0.25 * run.calls[i].time_ms.mean);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(Simulator, RejectsBadNope) {
  EXPECT_THROW((void)perf::simulate(perf::workloads::scalable_stencil(), 0),
               EvalError);
}

TEST(Simulator, ExperimentPackagesRuns) {
  const perf::ExperimentData data =
      perf::simulate_experiment(perf::workloads::scalable_stencil(), {1, 2, 4});
  EXPECT_EQ(data.runs.size(), 3u);
  EXPECT_EQ(data.runs[0].nope, 1);
  EXPECT_EQ(data.runs[2].nope, 4);
  // Start times are distinct and ordered.
  EXPECT_LT(data.runs[0].start_time, data.runs[1].start_time);
  EXPECT_GT(data.structure.compilation_time, 0);
}

// ---------------------------------------------------------------------------
// Scaling shape (T5 groundwork)

TEST(Scaling, ScalableAppHasLowCostGrowth) {
  const perf::AppSpec app = perf::workloads::scalable_stencil();
  const double d1 = perf::simulate(app, 1).find_region("main")->incl_ms;
  const double d16 = perf::simulate(app, 16).find_region("main")->incl_ms;
  // Summed duration growth (lost cycles) stays small for the control app.
  EXPECT_LT((d16 - d1) / d1, 0.25);
}

TEST(Scaling, ImbalancedAppCostGrows) {
  const perf::AppSpec app = perf::workloads::imbalanced_ocean();
  const double d1 = perf::simulate(app, 1).find_region("main")->incl_ms;
  const double d32 = perf::simulate(app, 32).find_region("main")->incl_ms;
  EXPECT_GT((d32 - d1) / d1, 0.5);
}

// ---------------------------------------------------------------------------
// Event traces

TEST(Trace, OrderedAndBalanced) {
  const auto trace = perf::generate_trace(perf::workloads::imbalanced_ocean(), 4);
  ASSERT_FALSE(trace.empty());
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].t_ms, trace[i].t_ms);
  }
  // Enter/exit counts match per region.
  std::map<std::string, int> balance;
  for (const auto& event : trace) {
    if (event.kind == perf::EventKind::kEnter) balance[event.region]++;
    if (event.kind == perf::EventKind::kExit) balance[event.region]--;
  }
  for (const auto& [region, count] : balance) {
    EXPECT_EQ(count, 0) << region;
  }
}

TEST(Trace, LengthScalesWithPeCount) {
  const perf::AppSpec app = perf::workloads::imbalanced_ocean();
  const auto small = perf::generate_trace(app, 2);
  const auto large = perf::generate_trace(app, 16);
  EXPECT_GT(large.size(), 4 * small.size());
}

TEST(Trace, ContainsBarrierEpisodes) {
  const auto trace = perf::generate_trace(perf::workloads::imbalanced_ocean(), 4);
  std::size_t enters = 0;
  std::size_t exits = 0;
  for (const auto& event : trace) {
    if (event.kind == perf::EventKind::kBarrierEnter) ++enters;
    if (event.kind == perf::EventKind::kBarrierExit) ++exits;
  }
  EXPECT_GT(enters, 0u);
  EXPECT_EQ(enters, exits);
}
