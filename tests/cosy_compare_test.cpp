#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "cosy/compare.hpp"
#include "cosy/specs.hpp"
#include "cosy/store_builder.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"
#include "support/error.hpp"

namespace asl = kojak::asl;
namespace cosy = kojak::cosy;
namespace perf = kojak::perf;

namespace {

cosy::AnalysisReport analyze(const perf::AppSpec& app, int pes,
                             const asl::Model& model) {
  asl::ObjectStore store(model);
  const cosy::StoreHandles handles =
      cosy::build_store(store, perf::simulate_experiment(app, {1, pes}));
  cosy::Analyzer analyzer(model, store, handles);
  return analyzer.analyze(1);
}

perf::AppSpec tuned_ocean() {
  perf::AppSpec app = perf::workloads::imbalanced_ocean();
  for (auto& fn : app.functions) {
    const std::function<void(perf::RegionSpec&)> tune =
        [&](perf::RegionSpec& region) {
          region.imbalance *= 0.15;
          region.io_serialized = false;  // parallel I/O after the fix
          for (auto& child : region.children) tune(child);
        };
    tune(fn.body);
  }
  return app;
}

}  // namespace

TEST(Compare, TuningImprovesTheBottleneck) {
  const asl::Model model = cosy::load_cosy_model();
  const cosy::AnalysisReport before =
      analyze(perf::workloads::imbalanced_ocean(), 32, model);
  const cosy::AnalysisReport after = analyze(tuned_ocean(), 32, model);

  const cosy::ComparisonReport report = cosy::compare_runs(before, after);
  EXPECT_TRUE(report.improved());
  EXPECT_LT(report.bottleneck_severity_after,
            report.bottleneck_severity_before);
  EXPECT_EQ(report.pe_count, 32);
  ASSERT_FALSE(report.deltas.empty());
  // Deltas are sorted by movement size.
  for (std::size_t i = 1; i < report.deltas.size(); ++i) {
    EXPECT_GE(std::fabs(report.deltas[i - 1].delta()),
              std::fabs(report.deltas[i].delta()));
  }
  // The idle-wait cost at the checkpoint must be among the big movers
  // (serialized I/O was removed entirely).
  bool idle_fixed = false;
  for (const cosy::PropertyDelta& delta : report.deltas) {
    if (delta.property == "IdleWaitCost" && delta.context == "main.checkpoint") {
      EXPECT_TRUE(delta.vanished());
      idle_fixed = true;
    }
  }
  EXPECT_TRUE(idle_fixed);
}

TEST(Compare, IdenticalRunsShowNoMovement) {
  const asl::Model model = cosy::load_cosy_model();
  const cosy::AnalysisReport report =
      analyze(perf::workloads::serial_bottleneck(), 8, model);
  const cosy::ComparisonReport cmp = cosy::compare_runs(report, report);
  EXPECT_FALSE(cmp.improved());  // equal, not strictly better
  for (const cosy::PropertyDelta& delta : cmp.deltas) {
    EXPECT_DOUBLE_EQ(delta.delta(), 0.0);
  }
  EXPECT_TRUE(cmp.regressions().empty());
}

TEST(Compare, RegressionsDetected) {
  const asl::Model model = cosy::load_cosy_model();
  // Treat the tuned version as "before": going back is a regression.
  const cosy::AnalysisReport before = analyze(tuned_ocean(), 32, model);
  const cosy::AnalysisReport after =
      analyze(perf::workloads::imbalanced_ocean(), 32, model);
  const cosy::ComparisonReport report = cosy::compare_runs(before, after);
  EXPECT_FALSE(report.improved());
  EXPECT_FALSE(report.regressions(0.05).empty());
}

TEST(Compare, MismatchedRunsRejected) {
  const asl::Model model = cosy::load_cosy_model();
  const cosy::AnalysisReport a =
      analyze(perf::workloads::scalable_stencil(), 8, model);
  const cosy::AnalysisReport b =
      analyze(perf::workloads::scalable_stencil(), 16, model);
  EXPECT_THROW((void)cosy::compare_runs(a, b), kojak::support::EvalError);
}

TEST(Compare, TableRendering) {
  const asl::Model model = cosy::load_cosy_model();
  const cosy::AnalysisReport before =
      analyze(perf::workloads::imbalanced_ocean(), 16, model);
  const cosy::AnalysisReport after = analyze(tuned_ocean(), 16, model);
  const std::string table = cosy::compare_runs(before, after).to_table(8);
  EXPECT_NE(table.find("Version comparison of ocean_sim on 16 PEs"),
            std::string::npos);
  EXPECT_NE(table.find("bottleneck:"), std::string::npos);
  EXPECT_NE(table.find("improved"), std::string::npos);
}
