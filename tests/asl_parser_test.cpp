#include <gtest/gtest.h>

#include "asl/parser.hpp"
#include "asl/pretty.hpp"
#include "support/error.hpp"

namespace asl = kojak::asl;
using asl::ast::Expr;
using kojak::support::ParseError;

namespace {

asl::ast::SpecFile parse_ok(std::string_view source) {
  asl::ParseResult result = asl::parse_spec(source);
  EXPECT_TRUE(result.ok()) << result.diags.render(source);
  return std::move(result.spec);
}

}  // namespace

// ---------------------------------------------------------------------------
// Data model syntax (§4.1)

TEST(AslParser, ClassDeclaration) {
  const auto spec = parse_ok(
      "class Program {\n"
      "  String Name;\n"
      "  setof ProgVersion Versions;\n"
      "}\n");
  ASSERT_EQ(spec.classes.size(), 1u);
  const auto& cls = spec.classes[0];
  EXPECT_EQ(cls.name, "Program");
  ASSERT_EQ(cls.attrs.size(), 2u);
  EXPECT_EQ(cls.attrs[0].type.name, "String");
  EXPECT_FALSE(cls.attrs[0].type.is_set);
  EXPECT_TRUE(cls.attrs[1].type.is_set);
  EXPECT_EQ(cls.attrs[1].type.name, "ProgVersion");
}

TEST(AslParser, ClassWithInheritance) {
  const auto spec = parse_ok("class Derived extends Base { int X; }");
  EXPECT_EQ(spec.classes[0].base, "Base");
}

TEST(AslParser, EnumDeclaration) {
  const auto spec = parse_ok("enum TimingType { Barrier, IO, Send };");
  ASSERT_EQ(spec.enums.size(), 1u);
  EXPECT_EQ(spec.enums[0].members,
            (std::vector<std::string>{"Barrier", "IO", "Send"}));
}

TEST(AslParser, ConstDeclaration) {
  const auto spec = parse_ok("const float ImbalanceThreshold = 0.25;");
  ASSERT_EQ(spec.constants.size(), 1u);
  EXPECT_EQ(spec.constants[0].name, "ImbalanceThreshold");
  EXPECT_EQ(spec.constants[0].value->kind, Expr::Kind::kFloatLit);
}

TEST(AslParser, FunctionDeclaration) {
  const auto spec = parse_ok(
      "TotalTiming Summary(Region r, TestRun t) = "
      "UNIQUE({s IN r.TotTimes WITH s.Run == t});");
  ASSERT_EQ(spec.functions.size(), 1u);
  const auto& fn = spec.functions[0];
  EXPECT_EQ(fn.name, "Summary");
  ASSERT_EQ(fn.params.size(), 2u);
  EXPECT_EQ(fn.params[0].type.name, "Region");
  EXPECT_EQ(fn.body->kind, Expr::Kind::kUnique);
  EXPECT_EQ(fn.body->base->kind, Expr::Kind::kComprehension);
}

// ---------------------------------------------------------------------------
// Property syntax (Figure 1)

TEST(AslParser, PaperSublinearSpeedupVerbatim) {
  // Exactly as printed in the paper (§4.2) — including the 'TotTimes' type
  // typo, which is a *semantic* problem, not a syntactic one.
  const auto spec = parse_ok(
      "Property SublinearSpeedup(Region r, TestRun t, Region Basis) {\n"
      " LET TotTimes MinPeSum = UNIQUE({sum IN r.TotTimes WITH sum.Run.NoPe ==\n"
      "   MIN(s.Run.NoPe WHERE s IN r.TotTimes)});\n"
      "   float TotalCost = Duration(r,t) - Duration(r,MinPeSum.Run)\n"
      " IN\n"
      " CONDITION: TotalCost>0; CONFIDENCE: 1;\n"
      " SEVERITY: TotalCost/Duration(Basis,t);\n"
      "}\n");
  ASSERT_EQ(spec.properties.size(), 1u);
  const auto& prop = spec.properties[0];
  EXPECT_EQ(prop.name, "SublinearSpeedup");
  EXPECT_EQ(prop.params.size(), 3u);
  ASSERT_EQ(prop.lets.size(), 2u);
  EXPECT_EQ(prop.lets[0].name, "MinPeSum");
  EXPECT_EQ(prop.lets[0].type.name, "TotTimes");
  ASSERT_EQ(prop.conditions.size(), 1u);
  EXPECT_TRUE(prop.conditions[0].id.empty());
  ASSERT_EQ(prop.confidence.size(), 1u);
  EXPECT_FALSE(prop.confidence_is_max);
}

TEST(AslParser, PaperMeasuredCostVerbatim) {
  const auto spec = parse_ok(
      "Property MeasuredCost (Region r, TestRun t, Region Basis) {\n"
      " LET float Cost = Summary(r,t).Ovhd;\n"
      " IN CONDITION: Cost > 0; CONFIDENCE: 1;\n"
      " SEVERITY: Cost / Duration(Basis,t);\n"
      "}\n");
  EXPECT_EQ(spec.properties[0].lets.size(), 1u);
  // Member access on a call result.
  EXPECT_EQ(spec.properties[0].lets[0].init->kind, Expr::Kind::kMember);
  EXPECT_EQ(spec.properties[0].lets[0].init->base->kind, Expr::Kind::kCall);
}

TEST(AslParser, PaperSyncCostVerbatim) {
  const auto spec = parse_ok(
      "Property SyncCost(Region r, TestRun t, Region Basis) {\n"
      " LET float Barrier = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t\n"
      "   AND tt.Type == Barrier);\n"
      " IN CONDITION: Barrier > 0; CONFIDENCE: 1;\n"
      " SEVERITY: Barrier / Duration(Basis,t);\n"
      "}\n");
  const auto& agg = *spec.properties[0].lets[0].init;
  EXPECT_EQ(agg.kind, Expr::Kind::kAggregate);
  EXPECT_EQ(agg.agg_kind, asl::ast::AggKind::kSum);
  EXPECT_EQ(agg.name, "tt");
  ASSERT_NE(agg.filter, nullptr);
  // Filter carries both conjuncts: tt.Run==t AND tt.Type == Barrier.
  EXPECT_EQ(agg.filter->bin_op, asl::ast::BinOp::kAnd);
}

TEST(AslParser, PaperLoadImbalanceVerbatim) {
  const auto spec = parse_ok(
      "Property LoadImbalance(FunctionCall Call, TestRun t, Region Basis) {\n"
      " LET CallTiming ct = UNIQUE ({c IN Call.Sums WITH c.Run == t});\n"
      " float Dev = ct.StdevTime;\n"
      " float Mean = ct.MeanTime;\n"
      " IN CONDITION: Dev > ImbalanceThreshold * Mean; CONFIDENCE: 1;\n"
      " SEVERITY: Mean / Duration(Basis,t);\n"
      "}\n");
  EXPECT_EQ(spec.properties[0].lets.size(), 3u);
}

TEST(AslParser, ConditionIdsAndGuardedMax) {
  const auto spec = parse_ok(
      "Property Multi(Region r, TestRun t) {\n"
      " CONDITION: (c1) r.A > 0 OR (c2) r.B > 0 OR r.C > 0;\n"
      " CONFIDENCE: MAX((c1) -> 0.9, (c2) -> 0.5, 0.1);\n"
      " SEVERITY: MAX((c1) -> r.A, (c2) -> r.B);\n"
      "};");
  const auto& prop = spec.properties[0];
  ASSERT_EQ(prop.conditions.size(), 3u);
  EXPECT_EQ(prop.conditions[0].id, "c1");
  EXPECT_EQ(prop.conditions[1].id, "c2");
  EXPECT_TRUE(prop.conditions[2].id.empty());
  EXPECT_TRUE(prop.confidence_is_max);
  ASSERT_EQ(prop.confidence.size(), 3u);
  EXPECT_EQ(prop.confidence[0].guard, "c1");
  EXPECT_TRUE(prop.confidence[2].guard.empty());
  EXPECT_TRUE(prop.severity_is_max);
}

TEST(AslParser, ParenthesizedConditionIsNotAnId) {
  // "(TotalCost) > 0" — a parenthesized expression, not a condition id.
  const auto spec = parse_ok(
      "Property P(Region r) { CONDITION: (TotalCost) > 0; "
      "CONFIDENCE: 1; SEVERITY: 1; };");
  EXPECT_TRUE(spec.properties[0].conditions[0].id.empty());
}

TEST(AslParser, AggregateMaxInSeverityIsNotListMax) {
  // MAX(...) with a WHERE binder is an aggregate expression, not the
  // spec-level list MAX.
  const auto spec = parse_ok(
      "Property P(Region r, TestRun t) {\n"
      " CONDITION: true;\n"
      " CONFIDENCE: 1;\n"
      " SEVERITY: MAX(s.Incl WHERE s IN r.TotTimes);\n"
      "};");
  EXPECT_FALSE(spec.properties[0].severity_is_max);
  EXPECT_EQ(spec.properties[0].severity[0].expr->kind, Expr::Kind::kAggregate);
}

TEST(AslParser, PropertyWithoutLet) {
  const auto spec = parse_ok(
      "Property P(Region r) { CONDITION: r.X > 0; CONFIDENCE: 0.5; "
      "SEVERITY: r.X; };");
  EXPECT_TRUE(spec.properties[0].lets.empty());
}

TEST(AslParser, CountForms) {
  const auto spec = parse_ok(
      "int F(Region r, TestRun t) = COUNT(r.TotTimes);\n"
      "int G(Region r, TestRun t) = COUNT(s WHERE s IN r.TotTimes AND "
      "s.Run == t);\n");
  EXPECT_EQ(spec.functions[0].body->kind, Expr::Kind::kSize);
  EXPECT_EQ(spec.functions[1].body->kind, Expr::Kind::kAggregate);
  EXPECT_EQ(spec.functions[1].body->agg_kind, asl::ast::AggKind::kCount);
}

TEST(AslParser, SizeExistsUnique) {
  const auto spec = parse_ok(
      "int F(Region r) = SIZE(r.TotTimes);\n"
      "bool G(Region r) = EXISTS({s IN r.TotTimes WITH s.Incl > 0});\n");
  EXPECT_EQ(spec.functions[0].body->kind, Expr::Kind::kSize);
  EXPECT_EQ(spec.functions[1].body->kind, Expr::Kind::kExists);
}

TEST(AslParser, OperatorPrecedence) {
  const auto spec = parse_ok("float F(Region r) = 1 + 2 * 3 - 4 / 2;");
  // ((1 + (2*3)) - (4/2))
  const Expr& e = *spec.functions[0].body;
  EXPECT_EQ(e.bin_op, asl::ast::BinOp::kSub);
  EXPECT_EQ(e.lhs->bin_op, asl::ast::BinOp::kAdd);
  EXPECT_EQ(e.lhs->rhs->bin_op, asl::ast::BinOp::kMul);
  EXPECT_EQ(e.rhs->bin_op, asl::ast::BinOp::kDiv);
}

TEST(AslParser, NotAndOrPrecedence) {
  const auto spec = parse_ok("bool F(Region r) = NOT r.A > 0 AND r.B > 0 OR r.C > 0;");
  const Expr& e = *spec.functions[0].body;
  EXPECT_EQ(e.bin_op, asl::ast::BinOp::kOr);
  EXPECT_EQ(e.lhs->bin_op, asl::ast::BinOp::kAnd);
  EXPECT_EQ(e.lhs->lhs->kind, Expr::Kind::kUnary);
}

// ---------------------------------------------------------------------------
// Error recovery

TEST(AslParser, RecoversAtDeclarationBoundary) {
  const auto result = asl::parse_spec(
      "class Good1 { int X; }\n"
      "class Bad { int ; }\n"       // error here
      "class Good2 { int Y; }\n"
      "Property AlsoBad(Region r) { CONDITION r.X; }\n"  // missing ':'
      "class Good3 { int Z; }\n");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.diags.error_count(), 2u);
  // All three good classes survive.
  EXPECT_EQ(result.spec.classes.size(), 3u);
  EXPECT_EQ(result.spec.classes[2].name, "Good3");
}

TEST(AslParser, ThrowVariantAggregatesErrors) {
  try {
    (void)asl::parse_spec_or_throw("class A { broken }");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("syntax errors"), std::string::npos);
  }
}

struct BadAsl {
  const char* label;
  const char* text;
};

class AslParserError : public ::testing::TestWithParam<BadAsl> {};

TEST_P(AslParserError, Reported) {
  EXPECT_FALSE(asl::parse_spec(GetParam().text).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, AslParserError,
    ::testing::Values(
        BadAsl{"missing_condition", "Property P(Region r) { CONFIDENCE: 1; "
                                    "SEVERITY: 1; };"},
        BadAsl{"clauses_out_of_order", "Property P(Region r) { SEVERITY: 1; "
                                       "CONDITION: true; CONFIDENCE: 1; };"},
        BadAsl{"unclosed_class", "class A { int X;"},
        BadAsl{"enum_trailing_comma", "enum E { A, };"},
        BadAsl{"setof_missing_elem", "class A { setof ; }"},
        BadAsl{"let_without_in", "Property P(Region r) { LET float X = 1; "
                                 "CONDITION: true; CONFIDENCE: 1; SEVERITY: 1; };"},
        BadAsl{"empty_comprehension", "float F(Region r) = UNIQUE({});"},
        BadAsl{"aggregate_missing_in", "float F(Region r) = MIN(s.X WHERE s);"},
        BadAsl{"stray_top_level", "42;"}),
    [](const auto& info) { return info.param.label; });

// ---------------------------------------------------------------------------
// Pretty-printer round trip

namespace {

const char* kRoundTripSources[] = {
    "class Program { String Name; setof ProgVersion Versions; }",
    "enum TimingType { Barrier, IO };",
    "const float T = 0.25;",
    "float Duration(Region r, TestRun t) = Summary(r, t).Incl;",
    "Property SyncCost(Region r, TestRun t, Region Basis) {\n"
    " LET float B = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t);\n"
    " IN CONDITION: B > 0; CONFIDENCE: 1; SEVERITY: B / Duration(Basis, t);\n"
    "};",
    "Property Multi(Region r) {\n"
    " CONDITION: (a) r.X > 0 OR (b) NOT r.Y == 0;\n"
    " CONFIDENCE: MAX((a) -> 0.9, (b) -> 0.4);\n"
    " SEVERITY: MAX((a) -> r.X, (b) -> -r.Y + 1.5);\n"
    "};",
    "bool F(Region r) = EXISTS({s IN r.TotTimes WITH s.Run.NoPe >= 2});",
};

}  // namespace

class AslRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(AslRoundTrip, PrintParsePrintIsFixedPoint) {
  const char* source = kRoundTripSources[GetParam()];
  const auto first = parse_ok(source);
  const std::string printed = asl::to_source(first);
  const auto second = parse_ok(printed);
  const std::string printed_again = asl::to_source(second);
  EXPECT_EQ(printed, printed_again) << "original source:\n" << source;
}

INSTANTIATE_TEST_SUITE_P(Cases, AslRoundTrip,
                         ::testing::Range(0, static_cast<int>(
                                                 std::size(kRoundTripSources))));
