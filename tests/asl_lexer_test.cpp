#include <gtest/gtest.h>

#include "asl/lexer.hpp"
#include "support/error.hpp"

namespace asl = kojak::asl;
using asl::TokenKind;
using kojak::support::ParseError;

TEST(AslLexer, KeywordsAreCaseInsensitive) {
  for (const char* text : {"PROPERTY", "Property", "property"}) {
    const auto tokens = asl::lex_asl(text);
    EXPECT_EQ(tokens[0].kind, TokenKind::kProperty) << text;
  }
  EXPECT_EQ(asl::lex_asl("CONDITION")[0].kind, TokenKind::kCondition);
  EXPECT_EQ(asl::lex_asl("setof")[0].kind, TokenKind::kSetof);
  EXPECT_EQ(asl::lex_asl("IN")[0].kind, TokenKind::kIn);
  EXPECT_EQ(asl::lex_asl("with")[0].kind, TokenKind::kWith);
}

TEST(AslLexer, BuiltinFunctionNamesStayIdentifiers) {
  // UNIQUE/MIN/MAX/SUM must not be keywords — they can appear as attribute
  // names in a data model.
  for (const char* name : {"UNIQUE", "MIN", "MAX", "SUM", "AVG", "COUNT"}) {
    EXPECT_EQ(asl::lex_asl(name)[0].kind, TokenKind::kIdent) << name;
  }
}

TEST(AslLexer, OperatorsOfThePaper) {
  const auto tokens = asl::lex_asl("== != <= >= < > = -> - + * /");
  const TokenKind expected[] = {
      TokenKind::kEq, TokenKind::kNe, TokenKind::kLe, TokenKind::kGe,
      TokenKind::kLt, TokenKind::kGt, TokenKind::kAssign, TokenKind::kArrow,
      TokenKind::kMinus, TokenKind::kPlus, TokenKind::kStar, TokenKind::kSlash,
  };
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << i;
  }
}

TEST(AslLexer, ArrowVsMinus) {
  const auto tokens = asl::lex_asl("a -> b - > c");
  EXPECT_EQ(tokens[1].kind, TokenKind::kArrow);
  EXPECT_EQ(tokens[3].kind, TokenKind::kMinus);
  EXPECT_EQ(tokens[4].kind, TokenKind::kGt);
}

TEST(AslLexer, NumbersAndFloats) {
  const auto tokens = asl::lex_asl("42 0.25 1e3 2.5E-2");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLit);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloatLit);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 0.25);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 0.025);
}

TEST(AslLexer, Strings) {
  const auto tokens = asl::lex_asl(R"("hello \"there\"\n")");
  EXPECT_EQ(tokens[0].kind, TokenKind::kStringLit);
  EXPECT_EQ(tokens[0].text, "hello \"there\"\n");
}

TEST(AslLexer, Comments) {
  const auto tokens = asl::lex_asl(
      "a // line comment\n/* block\ncomment */ b");
  ASSERT_EQ(tokens.size(), 3u);  // a, b, EOF
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(AslLexer, TracksLocations) {
  const auto tokens = asl::lex_asl("a\n  bb\n");
  EXPECT_EQ(tokens[0].loc.line, 1u);
  EXPECT_EQ(tokens[0].loc.column, 1u);
  EXPECT_EQ(tokens[1].loc.line, 2u);
  EXPECT_EQ(tokens[1].loc.column, 3u);
}

TEST(AslLexer, Punctuation) {
  const auto tokens = asl::lex_asl("{ } ( ) ; : , .");
  const TokenKind expected[] = {
      TokenKind::kLBrace, TokenKind::kRBrace, TokenKind::kLParen,
      TokenKind::kRParen, TokenKind::kSemicolon, TokenKind::kColon,
      TokenKind::kComma, TokenKind::kDot,
  };
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << i;
  }
}

TEST(AslLexer, Errors) {
  EXPECT_THROW((void)asl::lex_asl("\"unterminated"), ParseError);
  EXPECT_THROW((void)asl::lex_asl("/* unterminated"), ParseError);
  EXPECT_THROW((void)asl::lex_asl("a $ b"), ParseError);
  EXPECT_THROW((void)asl::lex_asl("!x"), ParseError);  // '!' only in '!='
}

TEST(AslLexer, EndToken) {
  const auto tokens = asl::lex_asl("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}
