// Columnar-layout differential: STORAGE COLUMNAR keeps per-partition typed
// column vectors + validity bitmaps alongside the row heap and routes
// eligible whole-partition aggregates through the vectorized fused path —
// and none of that may be visible in any report. Every analysis backend
// must render byte-identical reports across flat/partitioned x row/columnar
// layouts and 1/2/8 worker threads, while the engine counters prove the
// columnar twin really scanned column vectors.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "asl/sema.hpp"
#include "cosy/analyzer.hpp"
#include "cosy/db_import.hpp"
#include "cosy/eval_backend.hpp"
#include "cosy/schema_gen.hpp"
#include "cosy/specs.hpp"
#include "cosy/store_builder.hpp"
#include "db/connection_pool.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"
#include "support/str.hpp"

namespace asl = kojak::asl;
namespace cosy = kojak::cosy;
namespace db = kojak::db;
namespace perf = kojak::perf;

namespace {

/// One experiment imported four times: {flat, partitioned} x {row, columnar}.
/// The partitioned twins use 8 region-timing shards (as in the partition
/// differential); the columnar twins differ ONLY in storage mode.
struct QuadWorld {
  asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store{model};
  cosy::StoreHandles handles;
  db::Database row_flat;
  db::Database row_part;
  db::Database col_flat;
  db::Database col_part;

  explicit QuadWorld(const perf::AppSpec& app, std::vector<int> pes,
                     std::uint64_t seed = 1) {
    perf::SimulationOptions options;
    options.seed = seed;
    const perf::ExperimentData data =
        perf::simulate_experiment(app, pes, options);
    handles = cosy::build_store(store, data);
    const auto layout = [](std::size_t partitions, bool columnar) {
      cosy::SchemaOptions schema;
      schema.region_timing_partitions = partitions;
      schema.columnar = columnar;
      return schema;
    };
    cosy::create_schema(row_flat, model, layout(1, false));
    cosy::create_schema(row_part, model, layout(8, false));
    cosy::create_schema(col_flat, model, layout(1, true));
    cosy::create_schema(col_part, model, layout(8, true));
    for (db::Database* database :
         {&row_flat, &row_part, &col_flat, &col_part}) {
      db::Connection conn(*database, db::ConnectionProfile::in_memory());
      cosy::import_store(conn, store);
    }
  }
};

/// Byte-exact report rendering (ranked findings plus not-applicable audits
/// including notes): one backend over different physical layouts promises
/// full identity, prose included.
std::string render_exact(const cosy::AnalysisReport& report) {
  std::string out = report.to_table(0);
  for (const cosy::Finding& f : report.not_applicable) {
    out += kojak::support::cat("NA ", f.property, "@", f.context, "!",
                               f.result.note, "\n");
  }
  return out;
}

cosy::AnalysisReport analyze(QuadWorld& world, db::Database& database,
                             const std::string& backend, std::size_t threads) {
  cosy::AnalyzerConfig config;
  config.backend = backend;
  config.threads = threads;
  if (backend == "sql-sharded") {
    db::ConnectionPool pool(database, db::ConnectionProfile::in_memory(),
                            threads == 0 ? 2 : threads);
    cosy::Analyzer analyzer(world.model, world.store, world.handles,
                            /*conn=*/nullptr, &pool);
    return analyzer.analyze(2, config);
  }
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::Analyzer analyzer(world.model, world.store, world.handles, &conn);
  return analyzer.analyze(2, config);
}

}  // namespace

TEST(ColumnarStore, SchemaEmitsAndRoundTripsStorageColumnar) {
  const asl::Model model = cosy::load_cosy_model();
  cosy::SchemaOptions options;
  options.columnar = true;

  // Every generated CREATE TABLE carries the storage clause.
  for (const std::string& stmt : cosy::generate_ddl(model, options)) {
    if (stmt.rfind("CREATE TABLE", 0) != 0) continue;
    EXPECT_NE(stmt.find(" STORAGE COLUMNAR"), std::string::npos) << stmt;
  }

  db::Database database;
  cosy::create_schema(database, model, options);
  EXPECT_EQ(database.table("Region").schema().storage(),
            db::StorageMode::kColumnar);
  EXPECT_EQ(database.table("Region_TypTimes").schema().storage(),
            db::StorageMode::kColumnar);
  // Columnar composes with partitioning instead of replacing it.
  EXPECT_EQ(database.table("Region_TypTimes").partition_count(), 4u);

  // to_ddl round-trips the mode: replaying the rendered DDL reproduces a
  // columnar partitioned table.
  const std::string ddl = database.table("Region_TypTimes").schema().to_ddl();
  EXPECT_NE(ddl.find("PARTITION BY HASH"), std::string::npos) << ddl;
  EXPECT_NE(ddl.find("STORAGE COLUMNAR"), std::string::npos) << ddl;
  db::Database replay;
  replay.execute(ddl);
  EXPECT_EQ(replay.table("Region_TypTimes").schema().storage(),
            db::StorageMode::kColumnar);

  // The default stays row: no clause, row mode.
  db::Database row;
  cosy::create_schema(row, model);
  EXPECT_EQ(row.table("Region").schema().storage(), db::StorageMode::kRow);
  EXPECT_EQ(row.table("Region").schema().to_ddl().find("STORAGE"),
            std::string::npos);
}

TEST(ColumnarStore, AllBackendsByteIdenticalAcrossLayouts) {
  ASSERT_EQ(cosy::load_cosy_model().properties().size(), 13u);
  QuadWorld world(perf::workloads::imbalanced_ocean(), {1, 4, 16});
  // Parallel engine scans on the partitioned twins so the differential also
  // covers the fan-out path over both storage modes.
  world.row_part.set_scan_config({.threads = 4, .min_parallel_rows = 1});
  world.col_part.set_scan_config({.threads = 4, .min_parallel_rows = 1});

  for (const char* backend :
       {"interpreter", "sql-pushdown", "sql-whole-condition",
        "sql-whole-condition-plain", "sql-distributed", "client-fetch",
        "bulk-fetch"}) {
    const std::string reference =
        render_exact(analyze(world, world.row_flat, backend, 0));
    EXPECT_FALSE(reference.empty()) << backend;
    EXPECT_EQ(render_exact(analyze(world, world.col_flat, backend, 0)),
              reference)
        << backend << " col_flat";
    EXPECT_EQ(render_exact(analyze(world, world.row_part, backend, 0)),
              reference)
        << backend << " row_part";
    EXPECT_EQ(render_exact(analyze(world, world.col_part, backend, 0)),
              reference)
        << backend << " col_part";
  }
}

TEST(ColumnarStore, ShardedBackendsByteIdenticalAtAnyThreadCount) {
  QuadWorld world(perf::workloads::scalable_stencil(), {1, 4, 16}, 2);
  world.row_part.set_scan_config({.threads = 4, .min_parallel_rows = 1});
  world.col_part.set_scan_config({.threads = 4, .min_parallel_rows = 1});

  for (const std::size_t threads : {1u, 2u, 8u}) {
    const std::string reference =
        render_exact(analyze(world, world.row_flat, "sql-sharded", threads));
    for (db::Database* database :
         {&world.col_flat, &world.row_part, &world.col_part}) {
      EXPECT_EQ(render_exact(analyze(world, *database, "sql-sharded", threads)),
                reference)
          << threads << " threads";
    }
  }
}

// ---------------------------------------------------------------------------
// The fused vectorized path under the whole-condition statement shape:
// partition-pinned part<K> CTEs of filter + k aggregates over one table are
// exactly what the hot-plan evaluator specializes. Twin junctions (row vs
// columnar) must produce bit-identical coordinator results at every thread
// count while the columnar twin's counters prove the kernels ran.

namespace {

void fill_junction(db::Database& database, bool columnar) {
  database.execute(kojak::support::cat(
      "CREATE TABLE m (owner INTEGER, member INTEGER, w DOUBLE) "
      "PARTITION BY HASH(member) PARTITIONS 8",
      columnar ? " STORAGE COLUMNAR" : ""));
  for (int i = 0; i < 600; ++i) {
    // Deterministic non-dyadic weights: accumulation order differences would
    // show up in the hexfloat rendering immediately.
    const double w = 0.37 * static_cast<double>((i * 131) % 97) + 0.01;
    database.execute(kojak::support::cat("INSERT INTO m VALUES (", i % 5, ", ",
                                         i, ", ", w, ")"));
  }
}

std::string union_statement() {
  // The whole-condition compiler's partition-union shape, single-table
  // variant: one CTE per partition, each filter + SUM/COUNT over its pinned
  // shard, folded by a coordinator expression.
  std::string sql = "WITH ";
  for (int k = 0; k < 8; ++k) {
    sql += kojak::support::cat(
        "part", k, " AS (SELECT COALESCE(SUM(w), 0.0) AS v0, COUNT(w) AS v1 ",
        "FROM m PARTITION (", k, ") WHERE member >= 120), ");
  }
  sql.resize(sql.size() - 2);
  sql += " SELECT ";
  for (int k = 0; k < 8; ++k) {
    sql += kojak::support::cat("(SELECT v0 FROM part", k, ")",
                               k == 7 ? "" : " + ");
  }
  sql += ", ";
  for (int k = 0; k < 8; ++k) {
    sql += kojak::support::cat("(SELECT v1 FROM part", k, ")",
                               k == 7 ? "" : " + ");
  }
  return sql;
}

std::string render_row(const db::QueryResult& result) {
  char buffer[64];
  std::string out;
  for (std::size_t c = 0; c < result.column_count(); ++c) {
    const db::Value& v = result.at(0, c);
    if (v.type() == db::ValueType::kDouble) {
      std::snprintf(buffer, sizeof buffer, "%a", v.as_double());
      out += buffer;
    } else {
      out += kojak::support::cat(v.as_int());
    }
    out += '|';
  }
  return out;
}

}  // namespace

TEST(ColumnarStore, PartitionUnionCtesTakeTheFusedPathBitIdentically) {
  db::Database row;
  fill_junction(row, /*columnar=*/false);
  db::Database columnar;
  fill_junction(columnar, /*columnar=*/true);
  const std::string sql = union_statement();

  const std::string reference = render_row(row.execute(sql));
  for (const std::size_t threads : {1u, 2u, 8u}) {
    row.set_scan_config({.threads = threads, .min_parallel_rows = 1});
    columnar.set_scan_config({.threads = threads, .min_parallel_rows = 1});

    const auto before = columnar.exec_stats();
    const std::string vectorized = render_row(columnar.execute(sql));
    const auto after = columnar.exec_stats();
    EXPECT_EQ(vectorized, reference) << threads << " threads";
    EXPECT_EQ(render_row(row.execute(sql)), reference) << threads;
    // Each part<K> CTE vector-scanned its pinned shard and pruned the rest.
    EXPECT_EQ(after.columnar_scans - before.columnar_scans, 8u) << threads;
    EXPECT_EQ(after.partitions_pruned - before.partitions_pruned, 56u)
        << threads;
    EXPECT_GE(after.vectorized_batches - before.vectorized_batches, 8u)
        << threads;
    EXPECT_GT(after.rows_skipped_by_bitmap - before.rows_skipped_by_bitmap, 0u)
        << threads;
  }
}
