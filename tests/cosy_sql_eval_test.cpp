#include <gtest/gtest.h>

#include "asl/interp.hpp"
#include "asl/sema.hpp"
#include "cosy/db_import.hpp"
#include "cosy/schema_gen.hpp"
#include "cosy/specs.hpp"
#include "cosy/sql_eval.hpp"
#include "cosy/store_builder.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace asl = kojak::asl;
namespace cosy = kojak::cosy;
namespace db = kojak::db;
namespace perf = kojak::perf;
using asl::PropertyResult;
using asl::RtValue;

namespace {

/// Shared world: COSY model, a populated store, and the imported database.
struct World {
  asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store{model};
  cosy::StoreHandles handles;
  db::Database database;
  db::Connection conn{database, db::ConnectionProfile::in_memory()};

  explicit World(const perf::AppSpec& app, std::vector<int> pes,
                 std::uint64_t seed = 1) {
    perf::SimulationOptions options;
    options.seed = seed;
    const perf::ExperimentData data =
        perf::simulate_experiment(app, pes, options);
    handles = cosy::build_store(store, data);
    cosy::create_schema(database, model);
    cosy::import_store(conn, store);
  }
};

void expect_same(const PropertyResult& a, const PropertyResult& b,
                 const std::string& what) {
  EXPECT_EQ(a.status, b.status) << what << " (interp note: " << a.note
                                << ", sql note: " << b.note << ")";
  if (a.status == PropertyResult::Status::kHolds &&
      b.status == PropertyResult::Status::kHolds) {
    EXPECT_EQ(a.matched_condition, b.matched_condition) << what;
    EXPECT_NEAR(a.confidence, b.confidence, 1e-9) << what;
    const double tolerance = 1e-9 * std::max(1.0, std::abs(a.severity));
    EXPECT_NEAR(a.severity, b.severity, tolerance) << what;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Targeted checks of the compiled SQL

TEST(SqlEval, ExplainComprehension) {
  World world(perf::workloads::imbalanced_ocean(), {1, 4});
  cosy::SqlEvaluator sql(world.model, world.conn);
  // {s IN r.TotTimes WITH s.Run == t} from the Summary function.
  const asl::FunctionInfo* summary = world.model.find_function("Summary");
  ASSERT_NE(summary, nullptr);
  const asl::ast::Expr& unique_expr = *summary->body;  // UNIQUE(comprehension)
  const asl::PropertyInfo fake{
      "ctx",
      {{"r", asl::Type::class_of(*world.model.find_class("Region"))},
       {"t", asl::Type::class_of(*world.model.find_class("TestRun"))}},
      {},
      {},
      {},
      {}};
  const std::string text = sql.explain_set(
      *unique_expr.base, fake,
      {RtValue::of_object(world.handles.regions.at("main")),
       RtValue::of_object(world.handles.runs[0])});
  EXPECT_NE(text.find("FROM Region_TotTimes"), std::string::npos) << text;
  EXPECT_NE(text.find("JOIN TotalTiming b ON b.id = j.member"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("j.owner = "), std::string::npos) << text;
  EXPECT_NE(text.find("b.Run = "), std::string::npos) << text;
}

TEST(SqlEval, QueriesAreIssued) {
  World world(perf::workloads::imbalanced_ocean(), {1, 4});
  cosy::SqlEvaluator sql(world.model, world.conn);
  const asl::PropertyInfo* prop = world.model.find_property("SyncCost");
  ASSERT_NE(prop, nullptr);
  const auto result = sql.evaluate_property(
      *prop, {RtValue::of_object(world.handles.regions.at("main.time_loop.step")),
              RtValue::of_object(world.handles.runs[1]),
              RtValue::of_object(world.handles.regions.at("main"))});
  EXPECT_EQ(result.status, PropertyResult::Status::kHolds);
  EXPECT_GT(sql.queries_issued(), 0u);
}

TEST(SqlEval, RejectsInheritanceModels) {
  const asl::Model model = asl::load_model(
      {"class Base { int X; } class Derived extends Base { int Y; }"});
  db::Database database;
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  EXPECT_THROW(cosy::SqlEvaluator(model, conn), kojak::support::EvalError);
}

// ---------------------------------------------------------------------------
// Differential: interpreter vs SQL pushdown on every paper property and
// context of real workloads.

struct DiffCase {
  const char* workload;
  perf::AppSpec (*factory)();
  std::uint64_t seed;
};

class SqlDifferential : public ::testing::TestWithParam<DiffCase> {};

TEST_P(SqlDifferential, AllPropertiesAllContextsAgree) {
  World world(GetParam().factory(), {1, 4, 16}, GetParam().seed);
  const asl::Interpreter interp(world.model, world.store);
  cosy::SqlEvaluator sql(world.model, world.conn);

  const auto region_class = *world.model.find_class("Region");
  const auto call_class = *world.model.find_class("FunctionCall");
  const RtValue basis =
      RtValue::of_object(world.handles.regions.at(world.handles.main_region));

  std::size_t checked = 0;
  for (const asl::PropertyInfo& prop : world.model.properties()) {
    const bool over_regions =
        prop.params[0].second == asl::Type::class_of(region_class);
    ASSERT_TRUE(over_regions ||
                prop.params[0].second == asl::Type::class_of(call_class));
    std::vector<std::pair<std::string, RtValue>> firsts;
    if (over_regions) {
      for (const auto& [name, id] : world.handles.regions) {
        firsts.emplace_back(name, RtValue::of_object(id));
      }
    } else {
      for (std::size_t i = 0; i < world.handles.call_sites.size(); ++i) {
        firsts.emplace_back(world.handles.call_site_labels[i],
                            RtValue::of_object(world.handles.call_sites[i]));
      }
    }
    for (const auto& [label, first] : firsts) {
      for (const asl::ObjectId run : world.handles.runs) {
        const std::vector<RtValue> args = {first, RtValue::of_object(run),
                                           basis};
        const PropertyResult a = interp.evaluate_property(prop, args);
        const PropertyResult b = sql.evaluate_property(prop, args);
        expect_same(a, b, kojak::support::cat(prop.name, " @ ", label));
        ++checked;
      }
    }
  }
  // 13 properties x (regions or call sites) x 3 runs — a real sweep (the
  // smallest workload, message_bound, yields 99 contexts).
  EXPECT_GT(checked, 90u);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SqlDifferential,
    ::testing::Values(
        DiffCase{"ocean", &perf::workloads::imbalanced_ocean, 1},
        DiffCase{"stencil", &perf::workloads::scalable_stencil, 2},
        DiffCase{"serial", &perf::workloads::serial_bottleneck, 3},
        DiffCase{"messages", &perf::workloads::message_bound, 4},
        DiffCase{"io", &perf::workloads::io_heavy, 5}),
    [](const auto& info) { return info.param.workload; });

// ---------------------------------------------------------------------------
// Differential on randomized synthetic stores: the data need not come from
// the simulator for the two evaluators to agree.

class RandomStoreDifferential : public ::testing::TestWithParam<int> {};

TEST_P(RandomStoreDifferential, Agrees) {
  kojak::support::Rng rng(GetParam());

  asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store(model);
  const auto enum_id = *model.find_enum("TimingType");

  // Hand-rolled random population: one version, 2 runs, N regions.
  const asl::ObjectId program = store.create("Program");
  store.set_attr(program, "Name", RtValue::of_string("random"));
  const asl::ObjectId version = store.create("ProgVersion");
  store.add_to_set(program, "Versions", version);
  std::vector<asl::ObjectId> runs;
  for (int r = 0; r < 2; ++r) {
    const asl::ObjectId run = store.create("TestRun");
    store.set_attr(run, "NoPe", RtValue::of_int(r == 0 ? 1 : 8));
    store.set_attr(run, "Clockspeed", RtValue::of_int(450));
    store.set_attr(run, "Start", RtValue::of_int(941806800 + r));
    store.add_to_set(version, "Runs", run);
    runs.push_back(run);
  }
  const asl::ObjectId fn = store.create("Function");
  store.set_attr(fn, "Name", RtValue::of_string("main"));
  store.add_to_set(version, "Functions", fn);

  const int region_count = static_cast<int>(rng.uniform_int(2, 8));
  std::vector<asl::ObjectId> regions;
  for (int i = 0; i < region_count; ++i) {
    const asl::ObjectId region = store.create("Region");
    store.set_attr(region, "Name",
                   RtValue::of_string(kojak::support::cat("r", i)));
    store.set_attr(region, "Kind", RtValue::of_string("Loop"));
    store.add_to_set(fn, "Regions", region);
    regions.push_back(region);
    for (const asl::ObjectId run : runs) {
      // Not every region gets timings in every run (exercises UNIQUE gaps).
      if (i > 0 && rng.chance(0.2)) continue;
      const asl::ObjectId total = store.create("TotalTiming");
      store.set_attr(total, "Run", RtValue::of_object(run));
      const double incl = rng.uniform(10, 1000);
      store.set_attr(total, "Incl", RtValue::of_float(incl));
      store.set_attr(total, "Excl", RtValue::of_float(incl * rng.uniform(0.2, 0.9)));
      store.set_attr(total, "Ovhd", RtValue::of_float(incl * rng.uniform(0.0, 0.5)));
      store.add_to_set(region, "TotTimes", total);
      const int typed_count = static_cast<int>(rng.uniform_int(0, 5));
      for (int t = 0; t < typed_count; ++t) {
        const asl::ObjectId typed = store.create("TypedTiming");
        store.set_attr(typed, "Run", RtValue::of_object(run));
        store.set_attr(
            typed, "Type",
            RtValue::of_enum(enum_id,
                             static_cast<std::int32_t>(rng.uniform_int(0, 24))));
        store.set_attr(typed, "Time", RtValue::of_float(rng.uniform(0, 50)));
        store.add_to_set(region, "TypTimes", typed);
      }
    }
  }

  db::Database database;
  cosy::create_schema(database, model);
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::import_store(conn, store);

  const asl::Interpreter interp(model, store);
  cosy::SqlEvaluator sql(model, conn);

  for (const char* prop_name :
       {"SublinearSpeedup", "MeasuredCost", "UnmeasuredCost", "SyncCost",
        "IOCost", "MessagePassingCost", "CommunicationBound",
        "InstrumentationOverhead", "IdleWaitCost"}) {
    const asl::PropertyInfo* prop = model.find_property(prop_name);
    ASSERT_NE(prop, nullptr) << prop_name;
    for (const asl::ObjectId region : regions) {
      for (const asl::ObjectId run : runs) {
        const std::vector<RtValue> args = {RtValue::of_object(region),
                                           RtValue::of_object(run),
                                           RtValue::of_object(regions[0])};
        expect_same(interp.evaluate_property(*prop, args),
                    sql.evaluate_property(*prop, args),
                    kojak::support::cat(prop_name, " region ", region, " run ",
                                        run, " seed ", GetParam()));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStoreDifferential,
                         ::testing::Range(1, 13));
