#include <gtest/gtest.h>

#include "db/sql/lexer.hpp"
#include "db/sql/parser.hpp"
#include "support/error.hpp"

namespace sql = kojak::db::sql;
using kojak::support::ParseError;

// ---------------------------------------------------------------------------
// Lexer

TEST(SqlLexer, BasicTokens) {
  const auto tokens = sql::lex_sql("SELECT a, 42 FROM t WHERE x >= 1.5;");
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_TRUE(tokens[0].is_keyword("select"));
  EXPECT_EQ(tokens[1].text, "a");
  EXPECT_TRUE(tokens[2].is_symbol(","));
  EXPECT_EQ(tokens[3].int_value, 42);
  EXPECT_TRUE(tokens.back().kind == sql::TokenKind::kEnd);
}

TEST(SqlLexer, StringEscapes) {
  const auto tokens = sql::lex_sql("'it''s'");
  EXPECT_EQ(tokens[0].kind, sql::TokenKind::kStringLit);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(SqlLexer, Comments) {
  const auto tokens = sql::lex_sql("SELECT 1 -- trailing comment\n+ 2");
  // 'SELECT', '1', '+', '2', EOF
  EXPECT_EQ(tokens.size(), 5u);
}

TEST(SqlLexer, FloatForms) {
  EXPECT_DOUBLE_EQ(sql::lex_sql("1.25")[0].float_value, 1.25);
  EXPECT_DOUBLE_EQ(sql::lex_sql("1e3")[0].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(sql::lex_sql("2.5E-1")[0].float_value, 0.25);
  // '1.' without digits is int then dot.
  const auto tokens = sql::lex_sql("1 .x");
  EXPECT_EQ(tokens[0].kind, sql::TokenKind::kIntLit);
}

TEST(SqlLexer, TwoCharOperators) {
  const auto tokens = sql::lex_sql("<> <= >= != =");
  EXPECT_TRUE(tokens[0].is_symbol("<>"));
  EXPECT_TRUE(tokens[1].is_symbol("<="));
  EXPECT_TRUE(tokens[2].is_symbol(">="));
  EXPECT_TRUE(tokens[3].is_symbol("!="));
  EXPECT_TRUE(tokens[4].is_symbol("="));
}

TEST(SqlLexer, ErrorsCarryLocation) {
  try {
    (void)sql::lex_sql("SELECT 'unterminated");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.loc().line, 1u);
  }
  EXPECT_THROW((void)sql::lex_sql("SELECT @"), ParseError);
}

// ---------------------------------------------------------------------------
// Parser: statements

TEST(SqlParser, SelectShape) {
  const auto stmt = sql::parse_single(
      "SELECT a, b AS bee, t.c FROM tab t JOIN u ON t.id = u.id "
      "WHERE a > 1 GROUP BY a HAVING COUNT(*) > 2 ORDER BY bee DESC LIMIT 5 "
      "OFFSET 2");
  const auto& select = std::get<sql::SelectStmt>(stmt);
  EXPECT_EQ(select.items.size(), 3u);
  EXPECT_EQ(select.items[1].alias, "bee");
  ASSERT_TRUE(select.from.has_value());
  EXPECT_EQ(select.from->table, "tab");
  EXPECT_EQ(select.from->alias, "t");
  ASSERT_EQ(select.joins.size(), 1u);
  EXPECT_NE(select.where, nullptr);
  EXPECT_EQ(select.group_by.size(), 1u);
  EXPECT_NE(select.having, nullptr);
  ASSERT_EQ(select.order_by.size(), 1u);
  EXPECT_TRUE(select.order_by[0].descending);
  EXPECT_EQ(select.limit, 5u);
  EXPECT_EQ(select.offset, 2u);
}

TEST(SqlParser, SelectStarForms) {
  const auto stmt = sql::parse_single("SELECT *, t.* FROM t");
  const auto& select = std::get<sql::SelectStmt>(stmt);
  ASSERT_EQ(select.items.size(), 2u);
  EXPECT_TRUE(select.items[0].star);
  EXPECT_TRUE(select.items[1].star);
  EXPECT_EQ(select.items[1].star_table, "t");
}

TEST(SqlParser, SelectWithoutFrom) {
  const auto stmt = sql::parse_single("SELECT 1 + 2 * 3");
  const auto& select = std::get<sql::SelectStmt>(stmt);
  EXPECT_FALSE(select.from.has_value());
  // Precedence: 1 + (2 * 3)
  const sql::Expr& e = *select.items[0].expr;
  EXPECT_EQ(e.bin_op, sql::BinOp::kAdd);
  EXPECT_EQ(e.rhs->bin_op, sql::BinOp::kMul);
}

TEST(SqlParser, CreateTable) {
  const auto stmt = sql::parse_single(
      "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT NULL, "
      "score DOUBLE, at DATETIME)");
  const auto& create = std::get<sql::CreateTableStmt>(stmt);
  EXPECT_EQ(create.schema.name(), "t");
  ASSERT_EQ(create.schema.column_count(), 4u);
  EXPECT_TRUE(create.schema.column(0).primary_key);
  EXPECT_FALSE(create.schema.column(0).nullable);
  EXPECT_FALSE(create.schema.column(1).nullable);
  EXPECT_TRUE(create.schema.column(2).nullable);
  EXPECT_EQ(create.schema.column(3).type, kojak::db::ValueType::kDateTime);
}

TEST(SqlParser, CreateTableIfNotExists) {
  const auto stmt =
      sql::parse_single("CREATE TABLE IF NOT EXISTS t (x INTEGER)");
  EXPECT_TRUE(std::get<sql::CreateTableStmt>(stmt).if_not_exists);
}

TEST(SqlParser, CreateIndex) {
  const auto hash = sql::parse_single("CREATE INDEX i1 ON t (col)");
  EXPECT_FALSE(std::get<sql::CreateIndexStmt>(hash).ordered);
  const auto ordered = sql::parse_single("CREATE ORDERED INDEX i2 ON t (col)");
  EXPECT_TRUE(std::get<sql::CreateIndexStmt>(ordered).ordered);
}

TEST(SqlParser, InsertForms) {
  const auto stmt = sql::parse_single(
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  const auto& insert = std::get<sql::InsertStmt>(stmt);
  EXPECT_EQ(insert.columns, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(insert.rows.size(), 2u);

  const auto bare = sql::parse_single("INSERT INTO t VALUES (?, ?)");
  EXPECT_TRUE(std::get<sql::InsertStmt>(bare).columns.empty());
}

TEST(SqlParser, UpdateDeleteDrop) {
  const auto update =
      sql::parse_single("UPDATE t SET a = a + 1, b = 2 WHERE id = 3");
  EXPECT_EQ(std::get<sql::UpdateStmt>(update).assignments.size(), 2u);

  const auto del = sql::parse_single("DELETE FROM t WHERE x IS NULL");
  EXPECT_NE(std::get<sql::DeleteStmt>(del).where, nullptr);

  const auto drop = sql::parse_single("DROP TABLE IF EXISTS t");
  EXPECT_TRUE(std::get<sql::DropTableStmt>(drop).if_exists);
}

TEST(SqlParser, MultiStatementScript) {
  const auto stmts = sql::parse_sql(
      "CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (1); SELECT * FROM t;");
  EXPECT_EQ(stmts.size(), 3u);
}

// ---------------------------------------------------------------------------
// Parser: WITH (non-recursive common table expressions)

TEST(SqlParser, WithClauseShape) {
  const auto stmt = sql::parse_single(
      "WITH a AS (SELECT 1 x), b AS (SELECT x FROM a) "
      "SELECT (SELECT x FROM b), (SELECT x FROM a)");
  const auto& select = std::get<sql::SelectStmt>(stmt);
  ASSERT_EQ(select.ctes.size(), 2u);
  EXPECT_EQ(select.ctes[0].name, "a");
  EXPECT_EQ(select.ctes[1].name, "b");
  ASSERT_NE(select.ctes[1].select, nullptr);
  EXPECT_TRUE(select.ctes[1].select->from.has_value());
  EXPECT_EQ(select.items.size(), 2u);
}

TEST(SqlParser, WithCloneDeepCopies) {
  const auto stmt = sql::parse_single(
      "WITH a AS (SELECT COUNT(*) v FROM t) SELECT (SELECT v FROM a)");
  const auto& select = std::get<sql::SelectStmt>(stmt);
  const auto copy = select.clone();
  ASSERT_EQ(copy->ctes.size(), 1u);
  EXPECT_EQ(copy->ctes[0].name, "a");
  EXPECT_NE(copy->ctes[0].select.get(), select.ctes[0].select.get());
}

TEST(SqlParser, WithDuplicateNamesRejectedWithDiagnostic) {
  try {
    (void)sql::parse_sql(
        "WITH a AS (SELECT 1), a AS (SELECT 2) SELECT 3");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate CTE name 'a'"),
              std::string::npos)
        << e.what();
  }
  // Case-insensitive, like every other name in the engine.
  EXPECT_THROW(
      (void)sql::parse_sql("WITH a AS (SELECT 1), A AS (SELECT 2) SELECT 3"),
      ParseError);
}

TEST(SqlParser, WithSelfReferenceRejectedAsRecursive) {
  try {
    (void)sql::parse_sql("WITH a AS (SELECT x FROM a) SELECT 1");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("recursive"), std::string::npos)
        << e.what();
  }
  // Self-reference buried in a subquery is caught too.
  EXPECT_THROW((void)sql::parse_sql(
                   "WITH a AS (SELECT (SELECT COUNT(*) FROM a)) SELECT 1"),
               ParseError);
  // The explicit RECURSIVE keyword gets its own diagnostic.
  try {
    (void)sql::parse_sql(
        "WITH RECURSIVE a AS (SELECT 1) SELECT 1");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("recursive CTEs are not supported"),
              std::string::npos)
        << e.what();
  }
}

TEST(SqlParser, WithForwardReferenceRejectedWithDiagnostic) {
  try {
    (void)sql::parse_sql(
        "WITH a AS (SELECT x FROM b), b AS (SELECT 1 x) SELECT 1");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("before it is defined"),
              std::string::npos)
        << e.what();
  }
  // Backward references are exactly what WITH is for.
  EXPECT_NO_THROW((void)sql::parse_sql(
      "WITH b AS (SELECT 1 x), a AS (SELECT x FROM b) SELECT 1"));
}

TEST(SqlParser, WithRequiresSelectAfterClause) {
  EXPECT_THROW((void)sql::parse_sql("WITH a AS (SELECT 1)"), ParseError);
  EXPECT_THROW((void)sql::parse_sql("WITH a AS (SELECT 1) INSERT INTO t "
                                    "VALUES (1)"),
               ParseError);
  EXPECT_THROW((void)sql::parse_sql("WITH a (SELECT 1) SELECT 1"), ParseError);
}

// ---------------------------------------------------------------------------
// Parser: expressions

TEST(SqlParser, ExpressionKinds) {
  const auto stmt = sql::parse_single(
      "SELECT x IN (1, 2), y NOT LIKE 'a%', z IS NOT NULL, NOT (a AND b), "
      "COUNT(DISTINCT c), COALESCE(a, b, 0), (SELECT 1)");
  const auto& items = std::get<sql::SelectStmt>(stmt).items;
  EXPECT_EQ(items[0].expr->kind, sql::Expr::Kind::kInList);
  EXPECT_EQ(items[1].expr->kind, sql::Expr::Kind::kLike);
  EXPECT_TRUE(items[1].expr->negated);
  EXPECT_EQ(items[2].expr->kind, sql::Expr::Kind::kIsNull);
  EXPECT_TRUE(items[2].expr->negated);
  EXPECT_EQ(items[3].expr->kind, sql::Expr::Kind::kUnary);
  EXPECT_TRUE(items[4].expr->distinct_arg);
  EXPECT_EQ(items[5].expr->args.size(), 3u);
  EXPECT_EQ(items[6].expr->kind, sql::Expr::Kind::kSubquery);
}

TEST(SqlParser, DateTimeLiteral) {
  const auto stmt = sql::parse_single("SELECT DATETIME '1999-11-05 13:00:00'");
  const auto& e = *std::get<sql::SelectStmt>(stmt).items[0].expr;
  EXPECT_EQ(e.kind, sql::Expr::Kind::kLiteral);
  EXPECT_EQ(e.literal.as_datetime(), 941806800);
}

TEST(SqlParser, ParamNumbering) {
  const auto stmt = sql::parse_single("SELECT ? + ?, ?");
  const auto& items = std::get<sql::SelectStmt>(stmt).items;
  EXPECT_EQ(items[0].expr->lhs->param_index, 0u);
  EXPECT_EQ(items[0].expr->rhs->param_index, 1u);
  EXPECT_EQ(items[1].expr->param_index, 2u);
}

TEST(SqlParser, PrecedenceAndOr) {
  // a OR b AND c parses as a OR (b AND c)
  const auto stmt = sql::parse_single("SELECT a OR b AND c");
  const auto& e = *std::get<sql::SelectStmt>(stmt).items[0].expr;
  EXPECT_EQ(e.bin_op, sql::BinOp::kOr);
  EXPECT_EQ(e.rhs->bin_op, sql::BinOp::kAnd);
}

TEST(SqlParser, CloneDeepCopies) {
  const auto stmt = sql::parse_single("SELECT a + 1 FROM t WHERE b = 2");
  const auto& select = std::get<sql::SelectStmt>(stmt);
  const auto copy = select.clone();
  EXPECT_EQ(copy->items.size(), select.items.size());
  EXPECT_NE(copy->items[0].expr.get(), select.items[0].expr.get());
  EXPECT_EQ(copy->items[0].expr->to_string(), select.items[0].expr->to_string());
}

TEST(SqlParser, ToStringStable) {
  const auto stmt = sql::parse_single("SELECT (a + b) * 2 FROM t");
  EXPECT_EQ(std::get<sql::SelectStmt>(stmt).items[0].expr->to_string(),
            "((a + b) * 2)");
}

// ---------------------------------------------------------------------------
// Parser: errors

struct BadSql {
  const char* label;
  const char* text;
};

class SqlParserError : public ::testing::TestWithParam<BadSql> {};

TEST_P(SqlParserError, Throws) {
  EXPECT_THROW((void)sql::parse_sql(GetParam().text), ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, SqlParserError,
    ::testing::Values(
        BadSql{"missing_from_table", "SELECT * FROM"},
        BadSql{"trailing_comma", "SELECT a, FROM t"},
        BadSql{"unclosed_paren", "SELECT (1 + 2"},
        BadSql{"bad_statement", "EXPLAIN SELECT 1"},
        BadSql{"create_missing_type", "CREATE TABLE t (x)"},
        BadSql{"create_unknown_type", "CREATE TABLE t (x BLOB)"},
        BadSql{"insert_no_values", "INSERT INTO t"},
        BadSql{"negative_limit", "SELECT 1 LIMIT -1"},
        BadSql{"lone_not", "SELECT a NOT b"},
        BadSql{"join_without_on", "SELECT * FROM a JOIN b WHERE 1 = 1"},
        BadSql{"two_statements_no_semi", "SELECT 1 SELECT 2"}),
    [](const auto& info) { return info.param.label; });

// ---------------------------------------------------------------------------
// Partitioned-table DDL

TEST(SqlParser, PartitionByHashClause) {
  const auto stmt = sql::parse_single(
      "CREATE TABLE t (a INTEGER, b TEXT) PARTITION BY HASH(b) PARTITIONS 8");
  const auto& create = std::get<sql::CreateTableStmt>(stmt);
  ASSERT_TRUE(create.schema.partition().has_value());
  const kojak::db::PartitionSpec& spec = *create.schema.partition();
  EXPECT_EQ(spec.method, kojak::db::PartitionSpec::Method::kHash);
  EXPECT_EQ(spec.column, "b");
  EXPECT_EQ(spec.partitions, 8u);
}

TEST(SqlParser, PartitionByRangeClause) {
  const auto stmt = sql::parse_single(
      "CREATE TABLE t (a INTEGER, b TEXT) "
      "PARTITION BY RANGE(a) VALUES (-5, 2.5, 10)");
  const auto& create = std::get<sql::CreateTableStmt>(stmt);
  ASSERT_TRUE(create.schema.partition().has_value());
  const kojak::db::PartitionSpec& spec = *create.schema.partition();
  EXPECT_EQ(spec.method, kojak::db::PartitionSpec::Method::kRange);
  EXPECT_EQ(spec.column, "a");
  EXPECT_EQ(spec.partitions, 4u);  // 3 bounds + overflow
  ASSERT_EQ(spec.range_bounds.size(), 3u);
  EXPECT_EQ(spec.range_bounds[0].as_int(), -5);
  EXPECT_DOUBLE_EQ(spec.range_bounds[1].as_double(), 2.5);
}

TEST(SqlParser, PartitionClauseDiagnostics) {
  // Unknown partition column, located at the column token.
  try {
    (void)sql::parse_single(
        "CREATE TABLE t (a INTEGER) PARTITION BY HASH(nope) PARTITIONS 4");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown partition column 'nope'"),
              std::string::npos)
        << e.what();
    EXPECT_EQ(e.loc().line, 1u);
  }
  // Count must be a positive integer within the supported cap.
  EXPECT_THROW((void)sql::parse_single(
                   "CREATE TABLE t (a INTEGER) PARTITION BY HASH(a) "
                   "PARTITIONS 0"),
               ParseError);
  EXPECT_THROW((void)sql::parse_single(
                   "CREATE TABLE t (a INTEGER) PARTITION BY HASH(a) "
                   "PARTITIONS 99999"),
               ParseError);
  // Only HASH and RANGE methods exist.
  EXPECT_THROW((void)sql::parse_single(
                   "CREATE TABLE t (a INTEGER) PARTITION BY LIST(a) "
                   "PARTITIONS 2"),
               ParseError);
  // Range bounds: literals only, strictly ascending.
  EXPECT_THROW((void)sql::parse_single(
                   "CREATE TABLE t (a INTEGER) PARTITION BY RANGE(a) "
                   "VALUES (20, 10)"),
               ParseError);
  EXPECT_THROW((void)sql::parse_single(
                   "CREATE TABLE t (a INTEGER) PARTITION BY RANGE(a) "
                   "VALUES (5, 5)"),
               ParseError);
  EXPECT_THROW((void)sql::parse_single(
                   "CREATE TABLE t (a INTEGER) PARTITION BY RANGE(a) "
                   "VALUES (a + 1)"),
               ParseError);
}

TEST(SqlParser, PartitionSelectorOnTableRefs) {
  // `FROM t PARTITION (k)` pins the scan to one partition; alias forms and
  // JOIN positions all accept it.
  const auto stmt = sql::parse_single(
      "SELECT x.a FROM t PARTITION (2) x JOIN u PARTITION (0) ON u.id = x.a");
  const auto& select = std::get<sql::SelectStmt>(stmt);
  ASSERT_TRUE(select.from.has_value());
  ASSERT_TRUE(select.from->partition.has_value());
  EXPECT_EQ(*select.from->partition, 2u);
  EXPECT_EQ(select.from->alias, "x");
  ASSERT_EQ(select.joins.size(), 1u);
  ASSERT_TRUE(select.joins[0].table.partition.has_value());
  EXPECT_EQ(*select.joins[0].table.partition, 0u);

  // A bare `PARTITION` without parentheses stays a legal alias.
  const auto aliased = sql::parse_single("SELECT 1 FROM t PARTITION");
  EXPECT_EQ(std::get<sql::SelectStmt>(aliased).from->alias, "PARTITION");
  EXPECT_FALSE(std::get<sql::SelectStmt>(aliased).from->partition.has_value());

  // The selector survives statement cloning (subquery materialization
  // executes clones).
  const auto cloned = std::get<sql::SelectStmt>(stmt).clone();
  ASSERT_TRUE(cloned->from->partition.has_value());
  EXPECT_EQ(*cloned->from->partition, 2u);

  // Selector index must be a non-negative integer literal.
  EXPECT_THROW((void)sql::parse_single("SELECT 1 FROM t PARTITION (x)"),
               ParseError);
  EXPECT_THROW((void)sql::parse_single("SELECT 1 FROM t PARTITION (-1)"),
               ParseError);
}

TEST(SqlParser, PartitionSelectorOnCteIsALocatedDiagnostic) {
  // CTEs are temp results without partitions: selecting a partition of one
  // must fail at parse time, anchored at the offending reference —
  // previously only catalog tables were validated and the mistake
  // surfaced (if at all) at execution time.
  try {
    (void)sql::parse_single(
        "WITH tmp AS (SELECT 1 AS v)\n"
        "SELECT v FROM tmp PARTITION (0)");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("PARTITION selector on CTE 'tmp'"),
              std::string::npos)
        << e.what();
    EXPECT_EQ(e.loc().line, 2u);
    EXPECT_EQ(e.loc().column, 15u);  // anchored at the table reference
  }
  // The same inside a later CTE body or a nested subquery.
  EXPECT_THROW((void)sql::parse_single(
                   "WITH a AS (SELECT 1 AS v), "
                   "b AS (SELECT v FROM a PARTITION (1)) SELECT v FROM b"),
               ParseError);
  EXPECT_THROW((void)sql::parse_single(
                   "WITH a AS (SELECT 1 AS v) "
                   "SELECT (SELECT v FROM a PARTITION (0))"),
               ParseError);
  // Catalog-table selectors inside a WITH statement stay legal (the
  // rewrite's shard CTEs are exactly this shape).
  EXPECT_NO_THROW((void)sql::parse_single(
      "WITH s0 AS (SELECT COUNT(*) AS v FROM t PARTITION (0)) "
      "SELECT (SELECT v FROM s0)"));
}

// ---------------------------------------------------------------------------
// parse_single: exactly one statement

TEST(SqlParser, ParseSingleRejectsMultiStatementScripts) {
  // Silently taking the first (or last) statement of a script is how
  // prepare() bugs hide; the second statement must be a located error.
  try {
    (void)sql::parse_single("SELECT 1; SELECT 2");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("exactly one statement"),
              std::string::npos)
        << e.what();
    EXPECT_EQ(e.loc().line, 1u);
    EXPECT_EQ(e.loc().column, 11u);  // anchored at the second SELECT
  }
  // Leading/trailing semicolons around ONE statement stay legal.
  EXPECT_NO_THROW((void)sql::parse_single("SELECT 1;"));
  EXPECT_NO_THROW((void)sql::parse_single(";;SELECT 1;;"));
  EXPECT_THROW((void)sql::parse_single(""), ParseError);
  EXPECT_THROW((void)sql::parse_single(";"), ParseError);
}
