// The pluggable evaluation-backend seam: registry behavior, the two new
// backends (sql-whole-condition, interpreter-sharded) pinned differentially
// against the interpreter across every connection profile, the exact
// one-statement-per-context contract of whole-condition compilation (paper
// §6), and its site-wise fallback path.

#include <gtest/gtest.h>

#include "asl/compilability.hpp"
#include "asl/interp.hpp"
#include "asl/sema.hpp"
#include "cosy/analyzer.hpp"
#include "cosy/batch.hpp"
#include "cosy/db_import.hpp"
#include "cosy/eval_backend.hpp"
#include "cosy/schema_gen.hpp"
#include "cosy/specs.hpp"
#include "cosy/sql_eval.hpp"
#include "cosy/store_builder.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace asl = kojak::asl;
namespace cosy = kojak::cosy;
namespace db = kojak::db;
namespace perf = kojak::perf;
using asl::PropertyResult;
using asl::RtValue;
using kojak::support::EvalError;

namespace {

struct World {
  asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store{model};
  cosy::StoreHandles handles;
  db::Database database;

  explicit World(const perf::AppSpec& app, std::vector<int> pes,
                 std::uint64_t seed = 1) {
    perf::SimulationOptions options;
    options.seed = seed;
    const perf::ExperimentData data =
        perf::simulate_experiment(app, pes, options);
    handles = cosy::build_store(store, data);
    cosy::create_schema(database, model);
    db::Connection import_conn(database, db::ConnectionProfile::in_memory());
    cosy::import_store(import_conn, store);
  }
};

/// Deterministic rendering that different backend families must agree on:
/// the full ranked findings table plus the (property, context) set of
/// not-applicable audits. Notes are excluded on purpose — an interpreter
/// explains a data gap differently than a SQL backend, and the contract is
/// about statuses and numbers, not prose.
std::string render_findings(const cosy::AnalysisReport& report) {
  std::string out = report.to_table(0);
  for (const cosy::Finding& f : report.not_applicable) {
    out += kojak::support::cat("NA ", f.property, "@", f.context, "\n");
  }
  return out;
}

/// Byte-exact rendering (including not-applicable notes) for backends that
/// promise full identity, e.g. the sharded interpreter at any thread count.
std::string render_exact(const cosy::AnalysisReport& report) {
  std::string out = report.to_table(0);
  for (const cosy::Finding& f : report.not_applicable) {
    out += kojak::support::cat("NA ", f.property, "@", f.context, "!",
                               f.result.note, "\n");
  }
  return out;
}

void expect_same(const PropertyResult& a, const PropertyResult& b,
                 const std::string& what) {
  EXPECT_EQ(a.status, b.status) << what << " (a note: " << a.note
                                << ", b note: " << b.note << ")";
  if (a.status == PropertyResult::Status::kHolds &&
      b.status == PropertyResult::Status::kHolds) {
    EXPECT_EQ(a.matched_condition, b.matched_condition) << what;
    EXPECT_NEAR(a.confidence, b.confidence, 1e-9) << what;
    const double tolerance = 1e-9 * std::max(1.0, std::abs(a.severity));
    EXPECT_NEAR(a.severity, b.severity, tolerance) << what;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry

TEST(EvalBackendRegistry, ListsAllBuiltins) {
  const std::vector<std::string> names = cosy::EvalBackend::names();
  for (const char* expected :
       {"interpreter", "interpreter-sharded", "sql-pushdown",
        "sql-whole-condition", "sql-whole-condition-plain", "sql-sharded",
        "client-fetch", "bulk-fetch"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
    EXPECT_TRUE(cosy::EvalBackend::exists(expected)) << expected;
    EXPECT_FALSE(cosy::EvalBackend::describe(expected).empty()) << expected;
  }
  EXPECT_FALSE(cosy::EvalBackend::requires_connection("interpreter"));
  EXPECT_FALSE(cosy::EvalBackend::requires_connection("interpreter-sharded"));
  EXPECT_TRUE(cosy::EvalBackend::requires_connection("sql-pushdown"));
  EXPECT_TRUE(cosy::EvalBackend::requires_connection("sql-whole-condition"));
  EXPECT_TRUE(
      cosy::EvalBackend::requires_connection("sql-whole-condition-plain"));
  EXPECT_TRUE(cosy::EvalBackend::requires_connection("sql-sharded"));
  EXPECT_TRUE(cosy::EvalBackend::requires_connection("client-fetch"));
  EXPECT_TRUE(cosy::EvalBackend::requires_connection("bulk-fetch"));
}

TEST(EvalBackendRegistry, UnknownNamesThrowListingAvailable) {
  World world(perf::workloads::scalable_stencil(), {1, 2});
  cosy::EvalBackendDeps deps;
  deps.model = &world.model;
  deps.store = &world.store;
  EXPECT_THROW((void)cosy::EvalBackend::create("no-such-backend", deps),
               EvalError);
  try {
    (void)cosy::EvalBackend::create("no-such-backend", deps);
    FAIL() << "expected EvalError";
  } catch (const EvalError& error) {
    // The message must name what *is* available.
    EXPECT_NE(std::string(error.what()).find("sql-whole-condition"),
              std::string::npos)
        << error.what();
  }
  EXPECT_THROW((void)cosy::EvalBackend::requires_connection("nope"),
               EvalError);
  EXPECT_FALSE(cosy::EvalBackend::exists("nope"));

  // Missing dependencies are rejected with the backend's name.
  cosy::EvalBackendDeps no_conn;
  no_conn.model = &world.model;
  EXPECT_THROW((void)cosy::EvalBackend::create("sql-whole-condition", no_conn),
               EvalError);
  cosy::EvalBackendDeps no_store;
  no_store.model = &world.model;
  EXPECT_THROW((void)cosy::EvalBackend::create("interpreter", no_store),
               EvalError);
}

TEST(EvalBackendRegistry, AnalyzerRejectsUnknownBackendString) {
  World world(perf::workloads::scalable_stencil(), {1, 2});
  cosy::Analyzer analyzer(world.model, world.store, world.handles);
  cosy::AnalyzerConfig config;
  config.backend = "definitely-not-registered";
  EXPECT_THROW((void)analyzer.analyze(1, config), EvalError);
}

namespace {

/// A user-registered backend: everything evaluates to "does not hold". The
/// open seam the redesign exists for — no analyzer edits required.
class NothingHoldsBackend final : public cosy::EvalBackend {
 public:
  explicit NothingHoldsBackend(const cosy::EvalBackendDeps& deps)
      : cosy::EvalBackend(deps) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "test-nothing-holds";
  }
  [[nodiscard]] PropertyResult evaluate(
      const asl::PropertyInfo&, const std::vector<RtValue>&) override {
    PropertyResult result;
    result.status = PropertyResult::Status::kDoesNotHold;
    return result;
  }
};

}  // namespace

TEST(EvalBackendRegistry, UserBackendsPlugIntoTheAnalyzer) {
  cosy::EvalBackend::register_backend(
      {"test-nothing-holds", "test double: nothing ever holds",
       /*needs_store=*/false, /*needs_connection=*/false,
       [](const cosy::EvalBackendDeps& deps) {
         return std::make_unique<NothingHoldsBackend>(deps);
       }});
  World world(perf::workloads::imbalanced_ocean(), {1, 4});
  cosy::Analyzer analyzer(world.model, world.store, world.handles);
  cosy::AnalyzerConfig config;
  config.backend = "test-nothing-holds";
  const cosy::AnalysisReport report = analyzer.analyze(1, config);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_TRUE(report.not_applicable.empty());
  EXPECT_TRUE(report.tuned());
}

// ---------------------------------------------------------------------------
// Name coverage of the deprecated enum aliases (they must match registry
// spellings exactly — a config string round-trips through either surface).

TEST(EvalBackendRegistry, StrategyAliasesSpellRegistryNames) {
  for (const cosy::EvalStrategy strategy :
       {cosy::EvalStrategy::kInterpreter, cosy::EvalStrategy::kSqlPushdown,
        cosy::EvalStrategy::kClientFetch, cosy::EvalStrategy::kBulkFetch,
        cosy::EvalStrategy::kShardedInterpreter,
        cosy::EvalStrategy::kSqlWholeCondition}) {
    const std::string name{to_string(strategy)};
    EXPECT_NE(name, "?");
    EXPECT_TRUE(cosy::EvalBackend::exists(name)) << name;
  }
  EXPECT_EQ(to_string(cosy::EvalStrategy::kSqlWholeCondition),
            "sql-whole-condition");
  EXPECT_EQ(to_string(cosy::EvalStrategy::kShardedInterpreter),
            "interpreter-sharded");
  EXPECT_EQ(to_string(cosy::SqlEvalMode::kPushdown), "pushdown");
  EXPECT_EQ(to_string(cosy::SqlEvalMode::kClientSide), "client-side");
  EXPECT_EQ(to_string(cosy::SqlEvalMode::kWholeCondition), "whole-condition");

  cosy::AnalyzerConfig legacy;
  legacy.strategy = cosy::EvalStrategy::kInterpreter;
  legacy.parallel = true;  // deprecated flag upgrades to the sharded backend
  EXPECT_EQ(legacy.backend_name(), "interpreter-sharded");
  legacy.backend = "sql-whole-condition";  // explicit name wins
  EXPECT_EQ(legacy.backend_name(), "sql-whole-condition");
}

// ---------------------------------------------------------------------------
// Report-surface fixes that ride along with the API redesign.

TEST(AnalysisReport, TableWithZeroCapShowsEveryFinding) {
  World world(perf::workloads::imbalanced_ocean(), {1, 16});
  cosy::Analyzer analyzer(world.model, world.store, world.handles);
  const cosy::AnalysisReport report = analyzer.analyze(1);
  ASSERT_GT(report.findings.size(), 3u);
  const std::string all = report.to_table(0);
  // The last-ranked finding must appear; under the old behavior a 0 cap
  // rendered an empty table.
  EXPECT_NE(all.find(report.findings.back().context), std::string::npos);
  EXPECT_NE(all.find(kojak::support::cat(report.findings.size())),
            std::string::npos);
  // tuned() agrees with the bottleneck it reports (computed once).
  ASSERT_NE(report.bottleneck(), nullptr);
  EXPECT_EQ(report.tuned(),
            report.bottleneck()->result.severity <= report.problem_threshold);
  EXPECT_EQ(report.problems().empty(), report.tuned());
}

// ---------------------------------------------------------------------------
// Whole-condition compilation (paper §6)

TEST(WholeCondition, EveryShippedPropertyIsCompilable) {
  const asl::Model model = cosy::load_cosy_model();
  const auto classified = asl::classify_whole_condition(model);
  EXPECT_EQ(classified.size(), 13u);  // 5 paper + 8 extended
  for (const auto& pc : classified) {
    EXPECT_TRUE(pc.whole_condition_compilable())
        << pc.property << ": " << pc.first_blocker()->site << " — "
        << pc.first_blocker()->reason;
  }
}

TEST(WholeCondition, ExactlyOneStatementPerContext) {
  World world(perf::workloads::imbalanced_ocean(), {1, 4, 16});
  db::Connection conn(world.database, db::ConnectionProfile::in_memory());
  cosy::Analyzer analyzer(world.model, world.store, world.handles, &conn);

  cosy::PlanCache cache(world.model);
  cosy::AnalyzerConfig config;
  config.backend = "sql-whole-condition";
  config.plan_cache = &cache;

  const std::uint64_t before = conn.statements_executed();
  const cosy::AnalysisReport report = analyzer.analyze(2, config);
  // The §6 contract: one statement per (property, context), no more.
  EXPECT_EQ(report.sql_queries, analyzer.context_count());
  EXPECT_EQ(conn.statements_executed() - before, report.sql_queries);
  // One compiled plan per property, shared across all its contexts.
  EXPECT_EQ(cache.size(), world.model.properties().size());
  EXPECT_EQ(report.plan_cache_misses, cache.size());
  EXPECT_GT(report.plan_cache_hits, report.plan_cache_misses);

  // A warm cache still issues one statement per context, compiling nothing.
  const cosy::AnalysisReport warm = analyzer.analyze(1, config);
  EXPECT_EQ(warm.sql_queries, analyzer.context_count());
  EXPECT_EQ(warm.plan_cache_misses, 0u);
}

TEST(WholeCondition, ExplainProducesOneFromlessSelect) {
  World world(perf::workloads::imbalanced_ocean(), {1, 4});
  db::Connection conn(world.database, db::ConnectionProfile::in_memory());
  cosy::SqlEvaluator plain(world.model, conn,
                           cosy::SqlEvalMode::kWholeCondition,
                           /*plan_cache=*/nullptr, /*common_subexpr=*/false);
  const asl::PropertyInfo* prop = world.model.find_property("SyncCost");
  ASSERT_NE(prop, nullptr);
  const std::string text = plain.explain_whole_condition(*prop);
  EXPECT_EQ(text.rfind("SELECT ", 0), 0u) << text;
  // LET probe + condition + confidence + severity = 4 columns, and the
  // typed-timing set appears as a scalar subquery with bound parameters.
  EXPECT_NE(text.find("COALESCE(SUM("), std::string::npos) << text;
  EXPECT_NE(text.find("FROM Region_TypTimes"), std::string::npos) << text;
  EXPECT_NE(text.find('?'), std::string::npos) << text;
  // No second statement: the whole surface lives in this one SELECT.
  EXPECT_EQ(text.find(';'), std::string::npos) << text;
}

TEST(WholeCondition, ExplainAnnotatesFusedVerdictPerStatement) {
  World world(perf::workloads::imbalanced_ocean(), {1, 4});
  db::Connection conn(world.database, db::ConnectionProfile::in_memory());
  cosy::SqlEvaluator cse(world.model, conn,
                         cosy::SqlEvalMode::kWholeCondition);
  const asl::PropertyInfo* prop = world.model.find_property("SyncCost");
  ASSERT_NE(prop, nullptr);
  const std::string text = cse.explain_whole_condition(*prop);
  // Every statement part carries a fused-eligibility note. The FROM-less
  // coordinator SELECT can never fuse.
  EXPECT_NE(text.find("-- fused: main: row path (no aggregation)"),
            std::string::npos)
      << text;
  // TODO(expr-vm): the dominant COSY shape — an aggregate over a
  // set-membership JOIN (cse0: SUM(b.T) FROM <set> j JOIN <elem> b ON
  // b.id = j.member WHERE j.owner = ?) — still declines, because the fused
  // evaluator takes exactly one base table. Widening eligibility to this
  // two-table membership shape is the named next step for the expression
  // VM; update this pin when that lands.
  EXPECT_NE(
      text.find("-- fused: cse0: row path (not a single columnar base table)"),
      std::string::npos)
      << text;
}

TEST(WholeCondition, CseHoistsSharedSubexpressionsIntoCtes) {
  World world(perf::workloads::imbalanced_ocean(), {1, 4});
  db::Connection conn(world.database, db::ConnectionProfile::in_memory());
  cosy::SqlEvaluator cse(world.model, conn,
                         cosy::SqlEvalMode::kWholeCondition);
  cosy::SqlEvaluator plain(world.model, conn,
                           cosy::SqlEvalMode::kWholeCondition,
                           /*plan_cache=*/nullptr, /*common_subexpr=*/false);
  const asl::PropertyInfo* prop = world.model.find_property("SyncCost");
  ASSERT_NE(prop, nullptr);

  const std::string with_cse = cse.explain_whole_condition(*prop);
  const std::string without = plain.explain_whole_condition(*prop);
  // The shared LET subquery (probe + condition + severity all reference the
  // Barrier SUM) compiles into one named CTE, referenced per occurrence.
  EXPECT_EQ(with_cse.rfind("WITH cse0 AS (SELECT ", 0), 0u) << with_cse;
  EXPECT_NE(with_cse.find("(SELECT v FROM cse0)"), std::string::npos)
      << with_cse;
  // Deduplication is real: shorter text, strictly fewer bound parameters.
  EXPECT_LT(with_cse.size(), without.size());
  const auto params_of = [](const std::string& text) {
    return std::count(text.begin(), text.end(), '?');
  };
  EXPECT_LT(params_of(with_cse), params_of(without)) << with_cse;
  // Still one statement.
  EXPECT_EQ(with_cse.find(';'), std::string::npos) << with_cse;
}

TEST(WholeCondition, CseSharedSubexpressionExecutesOncePerContext) {
  // The tentpole contract, pinned on the executor's own counters: every
  // CSE-hoisted subexpression materializes exactly once per (property,
  // context) evaluation — one CTE materialization per WITH entry, no
  // re-execution per referencing column.
  World world(perf::workloads::imbalanced_ocean(), {1, 4});
  db::Connection conn(world.database, db::ConnectionProfile::in_memory());
  cosy::PlanCache cache(world.model);
  cosy::SqlEvaluator whole(world.model, conn,
                           cosy::SqlEvalMode::kWholeCondition, &cache);
  const asl::PropertyInfo* prop = world.model.find_property("SyncCost");
  ASSERT_NE(prop, nullptr);

  const std::string text = whole.explain_whole_condition(*prop);
  std::size_t ctes = 0;
  for (std::size_t pos = text.find(" AS (SELECT ");
       pos != std::string::npos; pos = text.find(" AS (SELECT ", pos + 1)) {
    ++ctes;
  }
  ASSERT_GE(ctes, 1u) << text;
  // cse0 is referenced more than once — that is why it was hoisted.
  std::size_t refs = 0;
  for (std::size_t pos = text.find("(SELECT v FROM cse0)");
       pos != std::string::npos;
       pos = text.find("(SELECT v FROM cse0)", pos + 1)) {
    ++refs;
  }
  EXPECT_GE(refs, 2u) << text;

  const asl::ObjectId region = world.handles.regions.begin()->second;
  const asl::ObjectId run = world.handles.runs[1];
  const std::vector<RtValue> args = {RtValue::of_object(region),
                                     RtValue::of_object(run),
                                     RtValue::of_object(region)};
  (void)whole.evaluate_property(*prop, args);  // warm plan + statement
  for (int i = 0; i < 3; ++i) {
    const auto before = world.database.exec_stats();
    (void)whole.evaluate_property(*prop, args);
    const auto after = world.database.exec_stats();
    // Exactly one materialization per WITH entry per evaluation: each
    // shared subexpression ran once for this (property, context).
    EXPECT_EQ(after.cte_materializations - before.cte_materializations, ctes)
        << "iteration " << i;
  }
}

TEST(WholeCondition, CseNamesAvoidModelTableCollisions) {
  // A model may legally declare a class named like a generated CTE; the
  // compiler must rename its CTEs (bind_sources resolves CTE names before
  // the catalog, so a collision would shadow the class table) and the
  // results must still match the interpreter without falling back.
  const asl::Model model = asl::load_model({R"(
    class cse0 { float V; }
    class Holder { String Name; setof cse0 Items; }
    Property SharedSum(Holder h) {
      LET float s = SUM(i.V WHERE i IN h.Items);
      IN
      CONDITION: s > 1.0;
      CONFIDENCE: 1;
      SEVERITY: s;
    };
  )"});

  asl::ObjectStore store(model);
  const asl::ObjectId holder = store.create("Holder");
  store.set_attr(holder, "Name", RtValue::of_string("h"));
  for (const double v : {1.5, 2.5}) {
    const asl::ObjectId item = store.create("cse0");
    store.set_attr(item, "V", RtValue::of_float(v));
    store.add_to_set(holder, "Items", item);
  }
  db::Database database;
  cosy::create_schema(database, model);
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::import_store(conn, store);

  cosy::SqlEvaluator whole(model, conn, cosy::SqlEvalMode::kWholeCondition);
  const asl::PropertyInfo* prop = model.find_property("SharedSum");
  ASSERT_NE(prop, nullptr);
  const std::string text = whole.explain_whole_condition(*prop);
  // The shared SUM is hoisted, but NOT under the colliding name.
  EXPECT_EQ(text.rfind("WITH _cse0 AS (SELECT ", 0), 0u) << text;
  EXPECT_NE(text.find("(SELECT v FROM _cse0)"), std::string::npos) << text;
  EXPECT_NE(text.find("JOIN cse0 b"), std::string::npos) << text;

  const asl::Interpreter interp(model, store);
  const std::vector<RtValue> args = {RtValue::of_object(holder)};
  expect_same(interp.evaluate_property(*prop, args),
              whole.evaluate_property(*prop, args), "SharedSum");
  EXPECT_EQ(whole.whole_fallbacks(), 0u);
}

struct ProfileCase {
  const char* name;
  db::ConnectionProfile (*profile)();
};

// The CSE headline, pinned: identical query count, strictly less modelled
// wire/server time than plain whole-condition on the paper's distributed
// profiles (deduplicated subexpressions bind each argument once instead of
// once per occurrence).
TEST(WholeCondition, CseBeatsPlainWholeConditionOnDistributedProfiles) {
  World world(perf::workloads::imbalanced_ocean(), {1, 16});
  for (const ProfileCase& pc :
       {ProfileCase{"oracle7", &db::ConnectionProfile::oracle7},
        ProfileCase{"postgres", &db::ConnectionProfile::postgres}}) {
    double virtual_ms[2] = {0, 0};
    std::uint64_t queries[2] = {0, 0};
    const char* backends[2] = {"sql-whole-condition-plain",
                               "sql-whole-condition"};
    for (int i = 0; i < 2; ++i) {
      db::Connection conn(world.database, pc.profile());
      cosy::Analyzer analyzer(world.model, world.store, world.handles, &conn);
      cosy::PlanCache cache(world.model);
      cosy::AnalyzerConfig config;
      config.backend = backends[i];
      config.plan_cache = &cache;
      const cosy::AnalysisReport report = analyzer.analyze(1, config);
      virtual_ms[i] = conn.clock().now_ms();
      queries[i] = report.sql_queries;
    }
    EXPECT_EQ(queries[1], queries[0]) << pc.name;  // still one stmt/context
    EXPECT_LT(virtual_ms[1], virtual_ms[0]) << pc.name;  // modelled win
  }
}

// Differential: the SQL-family backends (whole-condition with and without
// CSE, sharded SQL) plus the sharded interpreter against the interpreter
// reference — all 13 properties, every connection profile of the paper's
// §5 comparison.
class BackendDifferential : public ::testing::TestWithParam<ProfileCase> {};

TEST_P(BackendDifferential, AgreesWithInterpreterOnAllWorkloads) {
  struct WorkloadCase {
    const char* name;
    perf::AppSpec (*factory)();
    std::uint64_t seed;
  };
  const WorkloadCase workloads[] = {
      {"ocean", &perf::workloads::imbalanced_ocean, 1},
      {"stencil", &perf::workloads::scalable_stencil, 2},
      {"io", &perf::workloads::io_heavy, 5},
  };
  for (const WorkloadCase& wl : workloads) {
    World world(wl.factory(), {1, 4, 16}, wl.seed);
    db::Connection conn(world.database, GetParam().profile());
    cosy::Analyzer analyzer(world.model, world.store, world.handles, &conn);

    cosy::AnalyzerConfig reference;
    reference.backend = "interpreter";
    const std::string expected =
        render_findings(analyzer.analyze(2, reference));

    for (const char* backend :
         {"sql-whole-condition", "sql-whole-condition-plain", "sql-sharded",
          "interpreter-sharded"}) {
      cosy::AnalyzerConfig config;
      config.backend = backend;
      const cosy::AnalysisReport report = analyzer.analyze(2, config);
      EXPECT_EQ(expected, render_findings(report))
          << wl.name << " / " << backend << " / " << GetParam().name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, BackendDifferential,
    ::testing::Values(
        ProfileCase{"access", &db::ConnectionProfile::access_local},
        ProfileCase{"oracle7", &db::ConnectionProfile::oracle7},
        ProfileCase{"mssql", &db::ConnectionProfile::mssql_server},
        ProfileCase{"postgres", &db::ConnectionProfile::postgres},
        ProfileCase{"inmemory", &db::ConnectionProfile::in_memory}),
    [](const auto& info) { return info.param.name; });

// Randomized stores with UNIQUE data gaps: whole-condition must map NULL
// propagation back onto the interpreter's not-applicable semantics.
class WholeConditionRandomStore : public ::testing::TestWithParam<int> {};

TEST_P(WholeConditionRandomStore, AgreesWithInterpreter) {
  kojak::support::Rng rng(GetParam());

  asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store(model);
  const auto enum_id = *model.find_enum("TimingType");

  const asl::ObjectId program = store.create("Program");
  store.set_attr(program, "Name", RtValue::of_string("random"));
  const asl::ObjectId version = store.create("ProgVersion");
  store.add_to_set(program, "Versions", version);
  std::vector<asl::ObjectId> runs;
  for (int r = 0; r < 2; ++r) {
    const asl::ObjectId run = store.create("TestRun");
    store.set_attr(run, "NoPe", RtValue::of_int(r == 0 ? 1 : 8));
    store.set_attr(run, "Clockspeed", RtValue::of_int(450));
    store.set_attr(run, "Start", RtValue::of_int(941806800 + r));
    store.add_to_set(version, "Runs", run);
    runs.push_back(run);
  }
  const asl::ObjectId fn = store.create("Function");
  store.set_attr(fn, "Name", RtValue::of_string("main"));
  store.add_to_set(version, "Functions", fn);

  const int region_count = static_cast<int>(rng.uniform_int(2, 8));
  std::vector<asl::ObjectId> regions;
  for (int i = 0; i < region_count; ++i) {
    const asl::ObjectId region = store.create("Region");
    store.set_attr(region, "Name",
                   RtValue::of_string(kojak::support::cat("r", i)));
    store.set_attr(region, "Kind", RtValue::of_string("Loop"));
    store.add_to_set(fn, "Regions", region);
    regions.push_back(region);
    for (const asl::ObjectId run : runs) {
      // Data gaps on purpose: some regions lack timings in some runs, which
      // must surface as not-applicable in both engines.
      if (i > 0 && rng.chance(0.25)) continue;
      const asl::ObjectId total = store.create("TotalTiming");
      store.set_attr(total, "Run", RtValue::of_object(run));
      const double incl = rng.uniform(10, 1000);
      store.set_attr(total, "Incl", RtValue::of_float(incl));
      store.set_attr(total, "Excl",
                     RtValue::of_float(incl * rng.uniform(0.2, 0.9)));
      store.set_attr(total, "Ovhd",
                     RtValue::of_float(incl * rng.uniform(0.0, 0.5)));
      store.add_to_set(region, "TotTimes", total);
      const int typed_count = static_cast<int>(rng.uniform_int(0, 5));
      for (int t = 0; t < typed_count; ++t) {
        const asl::ObjectId typed = store.create("TypedTiming");
        store.set_attr(typed, "Run", RtValue::of_object(run));
        store.set_attr(
            typed, "Type",
            RtValue::of_enum(enum_id,
                             static_cast<std::int32_t>(rng.uniform_int(0, 24))));
        store.set_attr(typed, "Time", RtValue::of_float(rng.uniform(0, 50)));
        store.add_to_set(region, "TypTimes", typed);
      }
    }
  }

  db::Database database;
  cosy::create_schema(database, model);
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::import_store(conn, store);

  const asl::Interpreter interp(model, store);
  cosy::PlanCache cache(model);
  cosy::SqlEvaluator whole(model, conn, cosy::SqlEvalMode::kWholeCondition,
                           &cache);

  std::size_t checked = 0;
  for (const asl::PropertyInfo& prop : model.properties()) {
    if (prop.params[0].second !=
        asl::Type::class_of(*model.find_class("Region"))) {
      continue;  // no call sites in this synthetic store
    }
    for (const asl::ObjectId region : regions) {
      for (const asl::ObjectId run : runs) {
        const std::vector<RtValue> args = {RtValue::of_object(region),
                                           RtValue::of_object(run),
                                           RtValue::of_object(regions[0])};
        expect_same(interp.evaluate_property(prop, args),
                    whole.evaluate_property(prop, args),
                    kojak::support::cat(prop.name, " region ", region,
                                        " run ", run, " seed ", GetParam()));
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 40u);
  // Data gaps surface as NULL columns, not as statement failures: the
  // single-statement contract holds even on gappy stores.
  EXPECT_EQ(whole.whole_fallbacks(), 0u);
  EXPECT_EQ(whole.queries_issued(), checked);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WholeConditionRandomStore,
                         ::testing::Range(1, 9));

TEST(WholeCondition, UniqueOverSeveralMembersFallsBackCorrectly) {
  // Two TotalTimings for the same (region, run) make UNIQUE throw in the
  // interpreter; the whole-condition statement aborts in the scalar
  // subquery and the evaluator must recover through the site-wise path
  // with an identical not-applicable verdict.
  asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store(model);
  const asl::ObjectId program = store.create("Program");
  store.set_attr(program, "Name", RtValue::of_string("dup"));
  const asl::ObjectId run = store.create("TestRun");
  store.set_attr(run, "NoPe", RtValue::of_int(4));
  store.set_attr(run, "Clockspeed", RtValue::of_int(450));
  store.set_attr(run, "Start", RtValue::of_int(941806800));
  const asl::ObjectId region = store.create("Region");
  store.set_attr(region, "Name", RtValue::of_string("main"));
  store.set_attr(region, "Kind", RtValue::of_string("Function"));
  for (int i = 0; i < 2; ++i) {
    const asl::ObjectId total = store.create("TotalTiming");
    store.set_attr(total, "Run", RtValue::of_object(run));
    store.set_attr(total, "Incl", RtValue::of_float(100.0 + i));
    store.set_attr(total, "Excl", RtValue::of_float(50.0));
    store.set_attr(total, "Ovhd", RtValue::of_float(5.0));
    store.add_to_set(region, "TotTimes", total);
  }

  db::Database database;
  cosy::create_schema(database, model);
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::import_store(conn, store);

  const asl::Interpreter interp(model, store);
  cosy::SqlEvaluator whole(model, conn, cosy::SqlEvalMode::kWholeCondition);
  const asl::PropertyInfo* prop = model.find_property("MeasuredCost");
  ASSERT_NE(prop, nullptr);
  const std::vector<RtValue> args = {RtValue::of_object(region),
                                     RtValue::of_object(run),
                                     RtValue::of_object(region)};
  const PropertyResult a = interp.evaluate_property(*prop, args);
  const PropertyResult b = whole.evaluate_property(*prop, args);
  EXPECT_EQ(a.status, PropertyResult::Status::kNotApplicable);
  expect_same(a, b, "MeasuredCost with duplicate summaries");
  EXPECT_GT(whole.whole_fallbacks(), 0u);
}

TEST(WholeCondition, GapNullsInEqualityStayNotApplicable) {
  // The flip side of total null equality: a NULL produced by a data gap
  // (empty AVG here) is an interpreter *error*, not a legal null — it must
  // surface as not-applicable even under ==/!=, and `== null` must not
  // match it. All without fallbacks: the distinction is compiled in.
  const asl::Model model = asl::load_model({R"(
    class Holder { String Name; setof Item Items; }
    class Item { float V; }
    Property AvgIsFive(Holder h) {
      CONDITION: AVG(i.V WHERE i IN h.Items) == 5.0;
      CONFIDENCE: 1;
      SEVERITY: 1;
    };
    Property BigItemIsNull(Holder h) {
      CONDITION: UNIQUE({i IN h.Items WITH i.V > 5.0}) == null;
      CONFIDENCE: 1;
      SEVERITY: 1;
    };
  )"});

  asl::ObjectStore store(model);
  const asl::ObjectId empty = store.create("Holder");
  store.set_attr(empty, "Name", RtValue::of_string("empty"));
  const asl::ObjectId full = store.create("Holder");
  store.set_attr(full, "Name", RtValue::of_string("full"));
  for (const double v : {4.0, 6.0}) {  // AVG = 5.0
    const asl::ObjectId item = store.create("Item");
    store.set_attr(item, "V", RtValue::of_float(v));
    store.add_to_set(full, "Items", item);
  }

  db::Database database;
  cosy::create_schema(database, model);
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::import_store(conn, store);

  const asl::Interpreter interp(model, store);
  cosy::SqlEvaluator whole(model, conn, cosy::SqlEvalMode::kWholeCondition);

  for (const char* prop_name : {"AvgIsFive", "BigItemIsNull"}) {
    const asl::PropertyInfo* prop = model.find_property(prop_name);
    ASSERT_NE(prop, nullptr) << prop_name;
    for (const asl::ObjectId holder : {empty, full}) {
      const std::vector<RtValue> args = {RtValue::of_object(holder)};
      expect_same(interp.evaluate_property(*prop, args),
                  whole.evaluate_property(*prop, args),
                  kojak::support::cat(prop_name, " holder ", holder));
    }
  }
  const auto on_empty = interp.evaluate_property(
      *model.find_property("AvgIsFive"), {RtValue::of_object(empty)});
  EXPECT_EQ(on_empty.status, PropertyResult::Status::kNotApplicable);
  const auto on_full = interp.evaluate_property(
      *model.find_property("AvgIsFive"), {RtValue::of_object(full)});
  EXPECT_EQ(on_full.status, PropertyResult::Status::kHolds);
  EXPECT_EQ(whole.whole_fallbacks(), 0u);
}

TEST(WholeCondition, NonCompilablePropertyFallsBackToSitewise) {
  // An aggregate whose value expression applies SIZE to the binder is
  // correlated — outside the compilable subset. The classifier must flag
  // it, and the whole-condition evaluator must agree byte-for-byte with
  // the site-wise evaluator it falls back to.
  const asl::Model model = asl::load_model({R"(
    class Holder { String Name; setof Item Items; }
    class Item { float V; setof Sub Subs; }
    class Sub { float W; }
    Property DeepFanout(Holder h) {
      CONDITION: SUM(SIZE(i.Subs) WHERE i IN h.Items) > 1;
      CONFIDENCE: 1;
      SEVERITY: SUM(i.V WHERE i IN h.Items);
    };
  )"});
  const asl::PropertyInfo* prop = model.find_property("DeepFanout");
  ASSERT_NE(prop, nullptr);
  const auto classified = asl::classify_whole_condition(model, *prop);
  EXPECT_FALSE(classified.whole_condition_compilable());
  ASSERT_NE(classified.first_blocker(), nullptr);
  EXPECT_NE(classified.first_blocker()->reason.find("correlated"),
            std::string::npos)
      << classified.first_blocker()->reason;

  asl::ObjectStore store(model);
  const asl::ObjectId holder = store.create("Holder");
  store.set_attr(holder, "Name", RtValue::of_string("h"));
  for (int i = 0; i < 3; ++i) {
    const asl::ObjectId item = store.create("Item");
    store.set_attr(item, "V", RtValue::of_float(1.5 * i));
    store.add_to_set(holder, "Items", item);
    for (int s = 0; s <= i; ++s) {
      const asl::ObjectId sub = store.create("Sub");
      store.set_attr(sub, "W", RtValue::of_float(0.25));
      store.add_to_set(item, "Subs", sub);
    }
  }
  db::Database database;
  cosy::create_schema(database, model);
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::import_store(conn, store);

  cosy::SqlEvaluator whole(model, conn, cosy::SqlEvalMode::kWholeCondition);
  cosy::SqlEvaluator sitewise(model, conn, cosy::SqlEvalMode::kPushdown);
  const std::vector<RtValue> args = {RtValue::of_object(holder)};
  expect_same(sitewise.evaluate_property(*prop, args),
              whole.evaluate_property(*prop, args), "DeepFanout");
  EXPECT_EQ(whole.whole_fallbacks(), 1u);
}

TEST(WholeCondition, NullAttributeSemanticsMatchTheInterpreter) {
  // ASL equality is total (null equals only null, never an error), ASL
  // AND/OR short-circuit left to right, and an unset attribute is a legal
  // null value — none of which SQL's three-valued logic gives for free.
  // All four properties must agree with the interpreter WITHOUT falling
  // back to the site-wise path.
  const asl::Model model = asl::load_model({R"(
    class Node { String Name; bool Flag; Node Link; setof Node Kids; }
    Property LinkIsNull(Node n) {
      LET Node p = n.Link;
      IN
      CONDITION: p == null;
      CONFIDENCE: 1;
      SEVERITY: 1;
    };
    Property LinkIsSet(Node n) {
      CONDITION: n.Link != null;
      CONFIDENCE: 1;
      SEVERITY: 1;
    };
    Property LinksSelf(Node n) {
      CONDITION: n.Link == n;
      CONFIDENCE: 1;
      SEVERITY: 1;
    };
    Property FlagOrName(Node n) {
      CONDITION: n.Flag OR n.Name == "a";
      CONFIDENCE: 1;
      SEVERITY: 1;
    };
  )"});

  asl::ObjectStore store(model);
  const asl::ObjectId unlinked = store.create("Node");
  store.set_attr(unlinked, "Name", RtValue::of_string("a"));
  // Flag and Link stay unset: legal nulls, except where as_bool needs them.
  const asl::ObjectId linked = store.create("Node");
  store.set_attr(linked, "Name", RtValue::of_string("b"));
  store.set_attr(linked, "Flag", RtValue::of_bool(true));
  store.set_attr(linked, "Link", RtValue::of_object(unlinked));

  db::Database database;
  cosy::create_schema(database, model);
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::import_store(conn, store);

  const asl::Interpreter interp(model, store);
  cosy::PlanCache cache(model);
  cosy::SqlEvaluator whole(model, conn, cosy::SqlEvalMode::kWholeCondition,
                           &cache);

  for (const char* prop_name :
       {"LinkIsNull", "LinkIsSet", "LinksSelf", "FlagOrName"}) {
    const asl::PropertyInfo* prop = model.find_property(prop_name);
    ASSERT_NE(prop, nullptr) << prop_name;
    for (const asl::ObjectId node : {unlinked, linked}) {
      const std::vector<RtValue> args = {RtValue::of_object(node)};
      expect_same(interp.evaluate_property(*prop, args),
                  whole.evaluate_property(*prop, args),
                  kojak::support::cat(prop_name, " node ", node));
    }
  }
  // Spot-check the interesting verdicts so the comparison can't pass
  // vacuously: a legal null holds `== null`, the unset Flag in an OR is a
  // data gap (interpreter would throw on as_bool), the set Flag decides
  // without consulting the right operand.
  const auto eval_one = [&](const char* name, asl::ObjectId node) {
    return interp.evaluate_property(
        *model.find_property(name), {RtValue::of_object(node)});
  };
  EXPECT_EQ(eval_one("LinkIsNull", unlinked).status,
            PropertyResult::Status::kHolds);
  EXPECT_EQ(eval_one("LinksSelf", unlinked).status,
            PropertyResult::Status::kDoesNotHold);
  EXPECT_EQ(eval_one("FlagOrName", unlinked).status,
            PropertyResult::Status::kNotApplicable);
  EXPECT_EQ(eval_one("FlagOrName", linked).status,
            PropertyResult::Status::kHolds);
  EXPECT_EQ(whole.whole_fallbacks(), 0u);
}

TEST(WholeCondition, PlanCachePinsToTheModelInstance) {
  // A cache built against a reloaded model (equal fingerprint, different
  // AST) must be rejected at backend creation, like the evaluator itself.
  World world(perf::workloads::scalable_stencil(), {1, 2});
  db::Connection conn(world.database, db::ConnectionProfile::in_memory());
  const asl::Model reloaded = cosy::load_cosy_model();
  ASSERT_EQ(world.model.fingerprint(), reloaded.fingerprint());
  cosy::PlanCache stale(reloaded);

  cosy::EvalBackendDeps deps;
  deps.model = &world.model;
  deps.conn = &conn;
  deps.plan_cache = &stale;
  EXPECT_THROW((void)cosy::EvalBackend::create("sql-whole-condition", deps),
               EvalError);
  EXPECT_THROW((void)cosy::EvalBackend::create("sql-pushdown", deps),
               EvalError);

  // The analyzer surfaces the same guard for config-supplied caches.
  cosy::Analyzer analyzer(world.model, world.store, world.handles, &conn);
  cosy::AnalyzerConfig config;
  config.backend = "sql-whole-condition";
  config.plan_cache = &stale;
  EXPECT_THROW((void)analyzer.analyze(1, config), EvalError);
}

// The headline §6 claim, pinned: on distributed profiles the one-statement
// backend spends less modelled wire/server time than the pushdown path.
TEST(WholeCondition, BeatsPushdownOnDistributedProfiles) {
  World world(perf::workloads::imbalanced_ocean(), {1, 16});
  for (const ProfileCase& pc :
       {ProfileCase{"oracle7", &db::ConnectionProfile::oracle7},
        ProfileCase{"postgres", &db::ConnectionProfile::postgres}}) {
    double virtual_ms[2] = {0, 0};
    std::uint64_t queries[2] = {0, 0};
    const char* backends[2] = {"sql-pushdown", "sql-whole-condition"};
    for (int i = 0; i < 2; ++i) {
      db::Connection conn(world.database, pc.profile());
      cosy::Analyzer analyzer(world.model, world.store, world.handles, &conn);
      cosy::PlanCache cache(world.model);
      cosy::AnalyzerConfig config;
      config.backend = backends[i];
      config.plan_cache = &cache;
      const cosy::AnalysisReport report = analyzer.analyze(1, config);
      virtual_ms[i] = conn.clock().now_ms();
      queries[i] = report.sql_queries;
    }
    EXPECT_LT(queries[1], queries[0]) << pc.name;
    EXPECT_LT(virtual_ms[1], virtual_ms[0]) << pc.name;
  }
}

// ---------------------------------------------------------------------------
// Sharded SQL backend

TEST(SqlSharded, ByteIdenticalToWholeConditionAtAnyThreadCount) {
  // The acceptance contract: context shards across pooled sessions reduce
  // in request order, so the report — findings, not-applicable audits,
  // notes, everything — is byte-identical to the single-session
  // whole-condition backend at 1, 2, and 8 threads.
  World world(perf::workloads::imbalanced_ocean(), {1, 4, 16});

  db::Connection reference_conn(world.database,
                                db::ConnectionProfile::postgres());
  cosy::Analyzer reference(world.model, world.store, world.handles,
                           &reference_conn);
  cosy::AnalyzerConfig whole;
  whole.backend = "sql-whole-condition";
  std::vector<std::string> expected;
  for (std::size_t run = 0; run < world.handles.runs.size(); ++run) {
    expected.push_back(render_exact(reference.analyze(run, whole)));
  }

  for (const std::size_t threads : {1u, 2u, 8u}) {
    db::ConnectionPool pool(world.database, db::ConnectionProfile::postgres(),
                            threads);
    cosy::Analyzer analyzer(world.model, world.store, world.handles,
                            /*conn=*/nullptr, &pool);
    cosy::AnalyzerConfig sharded;
    sharded.backend = "sql-sharded";
    sharded.threads = threads;
    for (std::size_t run = 0; run < world.handles.runs.size(); ++run) {
      const cosy::AnalysisReport report = analyzer.analyze(run, sharded);
      EXPECT_EQ(expected[run], render_exact(report))
          << "run " << run << " threads " << threads;
      // Sharding cannot change the statement economics: still exactly one
      // statement per (property, context).
      EXPECT_EQ(report.sql_queries, analyzer.context_count())
          << "run " << run << " threads " << threads;
    }
  }
}

TEST(SqlSharded, SharedPlanCacheCompilesEachPropertyOnce) {
  World world(perf::workloads::imbalanced_ocean(), {1, 4});
  db::ConnectionPool pool(world.database, db::ConnectionProfile::in_memory(),
                          4);
  cosy::Analyzer analyzer(world.model, world.store, world.handles,
                          /*conn=*/nullptr, &pool);
  cosy::PlanCache cache(world.model);
  cosy::AnalyzerConfig config;
  config.backend = "sql-sharded";
  config.threads = 4;
  config.plan_cache = &cache;
  const cosy::AnalysisReport report = analyzer.analyze(1, config);
  EXPECT_EQ(report.sql_queries, analyzer.context_count());
  // One whole-condition plan per property, shared across every shard.
  EXPECT_EQ(cache.size(), world.model.properties().size());
  EXPECT_GT(report.plan_cache_hits, 0u);
}

TEST(SqlSharded, NeedsAConnectionOrAPool) {
  World world(perf::workloads::scalable_stencil(), {1, 2});
  cosy::EvalBackendDeps deps;
  deps.model = &world.model;
  EXPECT_THROW((void)cosy::EvalBackend::create("sql-sharded", deps),
               EvalError);
  try {
    (void)cosy::EvalBackend::create("sql-sharded", deps);
    FAIL() << "expected EvalError";
  } catch (const EvalError& error) {
    EXPECT_NE(std::string(error.what()).find("connection pool"),
              std::string::npos)
        << error.what();
  }
  db::ConnectionPool pool(world.database, db::ConnectionProfile::in_memory(),
                          2);
  deps.pool = &pool;
  EXPECT_NE(cosy::EvalBackend::create("sql-sharded", deps), nullptr);

  // The model-instance pinning guard applies at creation, like the other
  // SQL backends.
  const asl::Model reloaded = cosy::load_cosy_model();
  cosy::PlanCache stale(reloaded);
  deps.plan_cache = &stale;
  EXPECT_THROW((void)cosy::EvalBackend::create("sql-sharded", deps),
               EvalError);
}

// ---------------------------------------------------------------------------
// Sharded interpreter backend

TEST(ShardedInterpreter, ByteIdenticalReportsForAnyThreadCount) {
  World world(perf::workloads::imbalanced_ocean(), {1, 4, 16});
  cosy::Analyzer analyzer(world.model, world.store, world.handles);

  cosy::AnalyzerConfig serial;
  serial.backend = "interpreter";
  std::vector<std::string> references;
  for (std::size_t run = 0; run < world.handles.runs.size(); ++run) {
    references.push_back(render_exact(analyzer.analyze(run, serial)));
  }

  for (const std::size_t threads : {1u, 2u, 8u}) {
    cosy::AnalyzerConfig sharded;
    sharded.backend = "interpreter-sharded";
    sharded.threads = threads;
    for (std::size_t run = 0; run < world.handles.runs.size(); ++run) {
      EXPECT_EQ(references[run], render_exact(analyzer.analyze(run, sharded)))
          << "run " << run << " threads " << threads;
    }
  }
}

TEST(ShardedInterpreter, WorksInsideTheBatchEngine) {
  World world(perf::workloads::imbalanced_ocean(), {1, 4, 16});
  cosy::BatchAnalyzer batch(world.model, world.store, world.handles, nullptr);
  cosy::BatchConfig config;
  config.backend = "interpreter-sharded";
  config.threads = 2;
  const cosy::BatchResult result = batch.analyze_all(config);
  EXPECT_EQ(result.items.size(), world.handles.runs.size());
  EXPECT_EQ(result.summary.sql_queries, 0u);

  cosy::Analyzer analyzer(world.model, world.store, world.handles);
  for (std::size_t run = 0; run < world.handles.runs.size(); ++run) {
    EXPECT_EQ(render_exact(analyzer.analyze(run)),
              render_exact(result.items[run].report))
        << "run " << run;
  }
}

// ---------------------------------------------------------------------------
// Whole-condition through the batch engine

TEST(BatchWholeCondition, DeterministicAcrossThreadCountsAndOneStatement) {
  World world(perf::workloads::imbalanced_ocean(), {1, 4, 16});
  cosy::Analyzer sequential(world.model, world.store, world.handles);
  std::string reference;
  std::uint64_t contexts_per_run = 0;
  {
    cosy::Analyzer counting(world.model, world.store, world.handles);
    contexts_per_run = counting.context_count();
  }
  for (const std::size_t threads : {1u, 4u}) {
    db::ConnectionPool pool(world.database, db::ConnectionProfile::postgres(),
                            threads);
    cosy::BatchAnalyzer batch(world.model, world.store, world.handles, &pool);
    cosy::BatchConfig config;
    config.backend = "sql-whole-condition";
    config.threads = threads;
    const cosy::BatchResult result = batch.analyze_all(config);
    EXPECT_EQ(result.summary.sql_queries,
              contexts_per_run * world.handles.runs.size())
        << "threads=" << threads;
    std::string rendered;
    for (const cosy::BatchItem& item : result.items) {
      rendered += render_findings(item.report);
    }
    if (reference.empty()) {
      reference = rendered;
    } else {
      EXPECT_EQ(reference, rendered) << "threads=" << threads;
    }
  }
}
