// Differential suite for the expression bytecode VM: every result the
// vectorized path (compiled WHERE programs, compiled aggregate arguments,
// compiled group keys, expression join keys) produces must be bit-identical
// to the row interpreter evaluating the same statement over the same data
// in row storage. Digests render doubles as hexfloat, so "close" is not
// good enough. Documented divergence (README): when several lanes of one
// batch raise, the VM may surface a different lane's diagnostic than the
// row-major interpreter — errors are compared throw-vs-throw, not
// message-vs-message.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "db/database.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace kdb = kojak::db;
using kdb::Database;
using kdb::QueryResult;
using kdb::Value;
using kojak::support::cat;
using kojak::support::EvalError;
using kojak::support::Rng;

namespace {

/// Bit-exact rendering of one result set: ints as decimal, doubles as
/// hexfloat (%a), strings raw, NULL as a marker. Any representational
/// drift between the VM and the row path shows up as a digest mismatch.
std::string digest(const QueryResult& result) {
  std::string out;
  for (const auto& row : result.rows) {
    for (const Value& v : row) {
      switch (v.type()) {
        case kdb::ValueType::kNull:
          out += "~";
          break;
        case kdb::ValueType::kDouble: {
          char buf[40];
          std::snprintf(buf, sizeof buf, "%a", v.as_double());
          out += buf;
          break;
        }
        case kdb::ValueType::kInt:
        case kdb::ValueType::kBool:
        case kdb::ValueType::kDateTime:
          out += std::to_string(v.as_int());
          break;
        case kdb::ValueType::kString:
          out += v.as_string();
          break;
      }
      out += "|";
    }
    out += "\n";
  }
  return out;
}

/// Executes `sql`; any error becomes a distinguished digest so an erroring
/// statement still differentiates (both paths must throw).
std::string run_digest(Database& db, const std::string& sql) {
  try {
    return digest(db.execute(sql));
  } catch (const std::exception&) {
    return "<error>";
  }
}

/// Fixed-notation double literal: ostream's default shortest form can emit
/// scientific notation the SQL lexer does not accept.
std::string dbl_lit(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

constexpr int kRows = 311;  // not a multiple of the batch width

/// Populates `t` with mixed int/double/string columns and sprinkled NULLs.
/// `layout` is appended to CREATE TABLE ("", PARTITION BY ..., STORAGE ...).
Database make_db(const std::string& layout) {
  Database db;
  db.execute(cat("CREATE TABLE t (id INTEGER, a INTEGER, b INTEGER, "
                 "d DOUBLE, e DOUBLE, s TEXT)",
                 layout));
  Rng rng(0xC0FFEE);
  static const char* kWords[] = {"alpha", "beta", "gamma", "delta", "Epsilon"};
  std::string batch = "INSERT INTO t VALUES ";
  for (int i = 0; i < kRows; ++i) {
    const auto cell = [&](std::string v) {
      return rng.chance(0.12) ? std::string("NULL") : v;
    };
    if (i > 0) batch += ",";
    batch += cat("(", i, ",", cell(std::to_string(rng.uniform_int(-50, 50))),
                 ",", cell(std::to_string(rng.uniform_int(1, 9))), ",",
                 cell(dbl_lit(rng.uniform(-4.0, 4.0))), ",",
                 cell(dbl_lit(rng.uniform(0.5, 2.5))), ",",
                 cell(cat("'", kWords[rng.uniform_int(0, 4)], "'")), ")");
  }
  db.execute(batch);
  return db;
}

// Reference row-storage twins share the partition layout: double
// accumulation order is part of the byte-identical contract, and it is
// per layout (partition-major), not per logical row set.
constexpr const char* kPartitioned = " PARTITION BY HASH(id) PARTITIONS 4";

Database make_row_db() { return make_db(""); }
Database make_partitioned_row_db() { return make_db(kPartitioned); }
Database make_flat_vm_db() { return make_db(" STORAGE COLUMNAR"); }
Database make_partitioned_vm_db() {
  return make_db(cat(kPartitioned, " STORAGE COLUMNAR"));
}

// ---------------------------------------------------------------------------
// Randomized expression trees

/// Depth-limited random SQL expression generator. Liberal on purpose: trees
/// the VM declines (ambiguous types, unsupported calls) must STILL match the
/// row path — they just take it on both sides.
class ExprGen {
 public:
  explicit ExprGen(std::uint64_t seed) : rng_(seed) {}

  std::string value(int depth) {
    if (depth <= 0 || rng_.chance(0.25)) return value_leaf();
    switch (rng_.uniform_int(0, 10)) {
      case 0: return cat("(", value(depth - 1), " + ", value(depth - 1), ")");
      case 1: return cat("(", value(depth - 1), " - ", value(depth - 1), ")");
      case 2: return cat("(", value(depth - 1), " * ", value(depth - 1), ")");
      case 3: return cat("(", value(depth - 1), " / 2.5)");
      case 4: return cat("(", value(depth - 1), " % 7)");
      case 5: return cat("(-", value(depth - 1), ")");
      case 6: return cat("ABS(", value(depth - 1), ")");
      case 7:
        return cat("IIF(", boolean(depth - 1), ", ", value(depth - 1), ", ",
                   value(depth - 1), ")");
      case 8: return cat("COALESCE(", value(depth - 1), ", ", value_leaf(), ")");
      case 9:
        return cat(rng_.chance(0.5) ? "LEAST(" : "GREATEST(", value(depth - 1),
                   ", ", value(depth - 1), ")");
      default:
        switch (rng_.uniform_int(0, 3)) {
          case 0: return cat("ROUND(", value(depth - 1), ", 2)");
          case 1: return cat("SQRT(ABS(", value(depth - 1), ") + 1.0)");
          case 2: return cat("FLOOR(", value(depth - 1), " * 0.5)");
          default: return cat("CEIL(", value(depth - 1), " * 0.5)");
        }
    }
  }

  std::string boolean(int depth) {
    if (depth <= 0 || rng_.chance(0.3)) return compare();
    switch (rng_.uniform_int(0, 4)) {
      case 0:
        return cat("(", boolean(depth - 1), " AND ", boolean(depth - 1), ")");
      case 1:
        return cat("(", boolean(depth - 1), " OR ", boolean(depth - 1), ")");
      case 2: return cat("(NOT ", boolean(depth - 1), ")");
      case 3: return cat(value(depth - 1), " IS ",
                         rng_.chance(0.5) ? "NULL" : "NOT NULL");
      default: return compare();
    }
  }

 private:
  std::string value_leaf() {
    switch (rng_.uniform_int(0, 7)) {
      case 0: return "t.a";
      case 1: return "t.b";
      case 2: return "t.d";
      case 3: return "t.e";
      case 4: return "t.id";
      case 5: return std::to_string(rng_.uniform_int(-9, 9));
      case 6: return dbl_lit(rng_.uniform(-3.0, 3.0));
      default: return "NULL";
    }
  }

  std::string compare() {
    switch (rng_.uniform_int(0, 5)) {
      case 0: return cat(value(1), " < ", value(1));
      case 1: return cat(value(1), " >= ", value(1));
      case 2: return cat(value(1), " = ", value(1));
      case 3: return "t.s LIKE '%a%'";
      case 4: return "t.s IN ('alpha', 'delta', 'missing')";
      default: return cat("LENGTH(t.s) > ", rng_.uniform_int(3, 6));
    }
  }

  Rng rng_;
};

}  // namespace

// ~200 seeded random statements, each checked on the flat and partitioned
// columnar layouts at 1/2/8 scan threads against one row-storage reference.
TEST(ExprVmDifferential, RandomizedTreesMatchRowPath) {
  Database flat_row_db = make_row_db();
  Database part_row_db = make_partitioned_row_db();
  Database flat_db = make_flat_vm_db();
  Database part_db = make_partitioned_vm_db();
  std::pair<Database*, Database*> layouts[] = {{&flat_db, &flat_row_db},
                                               {&part_db, &part_row_db}};

  ExprGen gen(0x5EED5EED);
  std::size_t compiled_hits = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string sql =
        cat("SELECT COUNT(*), SUM(", gen.value(3), "), MIN(", gen.value(2),
            "), MAX(", gen.value(2), "), AVG(", gen.value(2), ") FROM t",
            i % 3 == 0 ? "" : cat(" WHERE ", gen.boolean(2)));
    for (auto& [db, row_db] : layouts) {
      const std::string expected = run_digest(*row_db, sql);
      for (const std::size_t threads : {1u, 2u, 8u}) {
        db->set_scan_config({.threads = threads, .min_parallel_rows = 1});
        const auto before = db->exec_stats();
        EXPECT_EQ(run_digest(*db, sql), expected)
            << "seed tree #" << i << " threads=" << threads << "\n"
            << sql;
        compiled_hits +=
            db->exec_stats().expr_program_evals - before.expr_program_evals;
      }
    }
  }
  // The generator must actually exercise the VM, not shower the row path.
  EXPECT_GT(compiled_hits, 400u);
}

// The acceptance shape: aggregates over arithmetic with a
// column-vs-expression WHERE runs fused, byte-identical per layout at
// 1/2/8 threads, and the second execution reuses the cached plan
// (fused_plan_evals counts reuses only).
TEST(ExprVmDifferential, AcceptanceShapeFusedAndReused) {
  const std::string sql =
      "SELECT SUM(t.d - t.e), COUNT(*), AVG(t.d * 2.0 + t.e) "
      "FROM t WHERE t.d > 1.2 * t.e";

  for (const bool partitioned : {false, true}) {
    Database row_db = partitioned ? make_partitioned_row_db() : make_row_db();
    const std::string expected = run_digest(row_db, sql);
    ASSERT_NE(expected, "<error>");
    Database db = partitioned ? make_partitioned_vm_db() : make_flat_vm_db();
    for (const std::size_t threads : {1u, 2u, 8u}) {
      db.set_scan_config({.threads = threads, .min_parallel_rows = 1});
      const auto before = db.exec_stats();
      EXPECT_EQ(run_digest(db, sql), expected) << "threads=" << threads;
      EXPECT_EQ(run_digest(db, sql), expected) << "threads=" << threads;
      const auto after = db.exec_stats();
      // WHERE + two compiled aggregate arguments bind on every execution.
      EXPECT_GE(after.expr_program_evals - before.expr_program_evals, 6u);
      EXPECT_GT(after.expr_vm_batches, before.expr_vm_batches);
      EXPECT_GT(after.expr_vm_lanes, before.expr_vm_lanes);
      // Second execution of the (re-parsed, so re-analyzed) statement hits
      // the cached annotation within each db.execute's own parse; reuse is
      // observable through a prepared statement instead.
    }
    auto prepared = db.prepare(sql);
    db.execute(prepared, {});
    const auto before = db.exec_stats();
    db.execute(prepared, {});
    const auto after = db.exec_stats();
    EXPECT_GE(after.fused_plan_evals - before.fused_plan_evals, 1u);
    EXPECT_GT(after.expr_program_evals - before.expr_program_evals, 0u);
  }
}

// Compiled GROUP BY key programs: grouping on an expression stays on the
// vectorized grouped path and matches the row path byte for byte,
// including group emission order.
TEST(ExprVmDifferential, GroupedExpressionKeys) {
  Database row_db = make_partitioned_row_db();
  Database vm_db = make_partitioned_vm_db();
  const std::string sql =
      "SELECT t.b % 3, COUNT(*), SUM(t.d + 1.0), MIN(t.a * t.b) "
      "FROM t WHERE t.a IS NOT NULL GROUP BY t.b % 3 ORDER BY 2, 1";
  const std::string expected = run_digest(row_db, sql);
  ASSERT_NE(expected, "<error>");
  for (const std::size_t threads : {1u, 2u, 8u}) {
    vm_db.set_scan_config({.threads = threads, .min_parallel_rows = 1});
    const auto before = vm_db.exec_stats();
    EXPECT_EQ(run_digest(vm_db, sql), expected) << "threads=" << threads;
    const auto after = vm_db.exec_stats();
    EXPECT_GT(after.expr_program_evals, before.expr_program_evals);
  }
}

// Parameter markers compile to runtime-constant slots, re-bound per
// execution; a parameter that changes type between executions declines
// that execution to the row path instead of computing with stale types.
TEST(ExprVmDifferential, ParameterRebindAndTypeDrift) {
  Database row_db = make_row_db();
  Database vm_db = make_flat_vm_db();
  const std::string sql = "SELECT SUM(t.d * ?), COUNT(*) FROM t WHERE t.a > ?";
  auto vm_stmt = vm_db.prepare(sql);
  auto row_stmt = row_db.prepare(sql);
  const std::vector<Value> first = {Value::real(2.0), Value::integer(10)};
  const std::vector<Value> second = {Value::real(-0.5), Value::integer(-3)};
  for (const auto& params : {first, second}) {
    EXPECT_EQ(digest(vm_db.execute(vm_stmt, params)),
              digest(row_db.execute(row_stmt, params)));
  }
  // Type drift: the double slot now carries a string. Both paths throw the
  // row path's diagnostic (the VM declines and falls back).
  const std::vector<Value> drift = {Value::text("oops"), Value::integer(10)};
  EXPECT_THROW((void)vm_db.execute(vm_stmt, drift), EvalError);
  EXPECT_THROW((void)row_db.execute(row_stmt, drift), EvalError);
}

// Errors raised inside compiled programs surface on both paths. The lane
// the diagnostic names may differ (documented divergence: the VM is
// instruction-major within a batch), so only throw-vs-throw is compared.
TEST(ExprVmDifferential, ErrorsSurfaceOnBothPaths) {
  Database row_db = make_row_db();
  Database vm_db = make_flat_vm_db();
  const std::string sql = "SELECT SUM(t.a / (t.b - t.b)) FROM t";
  EXPECT_EQ(run_digest(vm_db, sql), "<error>");
  EXPECT_EQ(run_digest(row_db, sql), "<error>");
}

// ---------------------------------------------------------------------------
// Expression join keys (satellite 1)

namespace {

/// Two joinable tables where the equality key is computed on both sides.
void fill_join_tables(Database& db, const std::string& layout) {
  db.execute(cat("CREATE TABLE lhs (id INTEGER, v INTEGER)", layout));
  db.execute(cat("CREATE TABLE rhs (id INTEGER, w INTEGER)", layout));
  Rng rng(0xBEEF);
  for (int i = 0; i < 83; ++i) {
    db.execute(cat("INSERT INTO lhs VALUES (", i, ", ",
                   rng.chance(0.1) ? "NULL" : std::to_string(i % 21), ")"));
    db.execute(cat("INSERT INTO rhs VALUES (", i, ", ",
                   rng.chance(0.1) ? "NULL" : std::to_string(i % 13), ")"));
  }
}

}  // namespace

TEST(ExprVmJoin, ComputedKeysStayColumnar) {
  Database row_db;
  fill_join_tables(row_db, "");
  Database vm_db;
  fill_join_tables(vm_db, " STORAGE COLUMNAR");
  const std::string sql =
      "SELECT lhs.id, rhs.id FROM lhs JOIN rhs ON lhs.v + 1 = rhs.w * 2";
  const std::string expected = run_digest(row_db, sql);
  ASSERT_NE(expected, "<error>");
  const auto before = vm_db.exec_stats();
  EXPECT_EQ(run_digest(vm_db, sql), expected);
  const auto after = vm_db.exec_stats();
  EXPECT_EQ(after.hash_join_builds - before.hash_join_builds, 1u);
  // Both key programs bound for the one execution.
  EXPECT_GE(after.expr_program_evals - before.expr_program_evals, 2u);
  EXPECT_GT(after.expr_vm_lanes, before.expr_vm_lanes);
}

// Pinned decline verdict: an ON clause that is not a single equality (here
// an AND of an expression equality and a residual comparison) stays on the
// row-path nested loop — no hash build — and still returns the same rows.
TEST(ExprVmJoin, NonSingleEqualityDeclines) {
  Database row_db;
  fill_join_tables(row_db, "");
  Database vm_db;
  fill_join_tables(vm_db, " STORAGE COLUMNAR");
  const std::string sql =
      "SELECT lhs.id, rhs.id FROM lhs JOIN rhs "
      "ON lhs.v + 1 = rhs.w * 2 AND lhs.id < rhs.id";
  const std::string expected = run_digest(row_db, sql);
  const auto before = vm_db.exec_stats();
  EXPECT_EQ(run_digest(vm_db, sql), expected);
  const auto after = vm_db.exec_stats();
  EXPECT_EQ(after.hash_join_builds - before.hash_join_builds, 0u);
  EXPECT_EQ(after.expr_program_evals - before.expr_program_evals, 0u);
}

// ---------------------------------------------------------------------------
// explain_fused (satellite 2 surface)

TEST(ExprVmExplain, VerdictsAndCounterNeutrality) {
  Database vm_db = make_flat_vm_db();
  Database row_db = make_row_db();

  const auto verdict_of = [](Database& db, const std::string& sql) {
    const auto notes = db.explain_fused(sql);
    EXPECT_EQ(notes.size(), 1u);
    return notes.empty() ? std::string() : notes[0].verdict;
  };

  const auto before = vm_db.exec_stats();
  EXPECT_EQ(verdict_of(vm_db,
                       "SELECT SUM(t.d - t.e) FROM t WHERE t.d > 1.2 * t.e"),
            "fused global aggregate (vectorized)");
  EXPECT_EQ(verdict_of(vm_db,
                       "SELECT t.b % 3, COUNT(*) FROM t GROUP BY t.b % 3"),
            "fused grouped (vectorized)");
  EXPECT_EQ(verdict_of(vm_db, "SELECT t.a FROM t"),
            "row path (no aggregation)");
  // COUNT(DISTINCT ...) has no kernel: the analysis itself declines.
  EXPECT_EQ(verdict_of(vm_db, "SELECT COUNT(DISTINCT t.a) FROM t"),
            "row path (shape unsupported)");
  EXPECT_EQ(verdict_of(vm_db, "DELETE FROM t"), "not a SELECT");
  const auto after = vm_db.exec_stats();
  // Explain is analysis-only: the pinned VM counters must not move.
  EXPECT_EQ(after.expr_programs_compiled, before.expr_programs_compiled);
  EXPECT_EQ(after.expr_program_evals, before.expr_program_evals);
  EXPECT_EQ(after.expr_vm_batches, before.expr_vm_batches);

  EXPECT_EQ(verdict_of(row_db, "SELECT SUM(t.a) FROM t"),
            "row path (not a single columnar base table)");

  // Per-CTE verdicts for WITH statements.
  const auto notes = vm_db.explain_fused(
      "WITH s AS (SELECT SUM(t.d * 2.0) AS x FROM t) SELECT COUNT(*) FROM s");
  ASSERT_EQ(notes.size(), 2u);
  EXPECT_EQ(notes[0].statement, "s");
  EXPECT_EQ(notes[0].verdict, "fused global aggregate (vectorized)");
  EXPECT_EQ(notes[1].statement, "main");
  EXPECT_EQ(notes[1].verdict, "row path (not a single columnar base table)");
}
