// Online-monitoring differential: the ingest -> snapshot -> incremental
// re-evaluation loop must be invisible in every report. The shard-result
// cache serves clean partitions' `part<K>` CTE rows across epochs (pinned
// hit/miss/dirty counters prove only dirtied partitions recompute), epoch
// reports stay byte-identical to a cold full recompute at the same epoch
// across 1/2/8 scan threads, and a concurrent appender thread never tears a
// snapshot: every captured epoch replays quiesced to the identical report.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "asl/interp.hpp"
#include "asl/sema.hpp"
#include "cosy/eval_backend.hpp"
#include "cosy/db_import.hpp"
#include "cosy/monitor.hpp"
#include "cosy/schema_gen.hpp"
#include "cosy/shard_cache.hpp"
#include "db/connection.hpp"
#include "support/str.hpp"

namespace asl = kojak::asl;
namespace cosy = kojak::cosy;
namespace db = kojak::db;

namespace {

// Fleet world (as in cosy_partition_test.cpp): whole-set aggregates over a
// MEMBER-partitioned junction, where the whole-condition compiler's
// partition-union rewrite — and with it the shard-result cache — fires.
constexpr const char* kFleetSpec = R"(
  class Fleet {
    String Name;
    setof Probe Readings;
  }
  class Probe {
    int Slot;
    float T;
  }

  Property FleetLoad(Fleet f) {
    LET float Total = SUM(p.T WHERE p IN f.Readings);
    IN
    CONDITION: Total > 0;
    CONFIDENCE: 1;
    SEVERITY: Total;
  };

  Property FleetShape(Fleet f) {
    LET int N = COUNT(f.Readings);
        int Low = MIN(p.Slot WHERE p IN f.Readings);
        int High = MAX(p.Slot WHERE p IN f.Readings);
        float Mean = AVG(p.T WHERE p IN f.Readings);
    IN
    CONDITION: High >= Low;
    CONFIDENCE: 1;
    SEVERITY: Mean + N + High - Low;
  };

  Property FleetHot(Fleet f, int Cut) {
    LET int Hot = COUNT(p WHERE p IN f.Readings AND p.Slot >= Cut);
    IN
    CONDITION: EXISTS({p IN f.Readings WITH p.Slot >= Cut});
    CONFIDENCE: 1;
    SEVERITY: Hot;
  };
)";

struct FleetWorld {
  asl::Model model = asl::load_model({kFleetSpec});
  asl::ObjectStore store{model};
  std::vector<asl::ObjectId> fleets;

  FleetWorld(int fleet_count, int probes_per_fleet) {
    for (int f = 0; f < fleet_count; ++f) {
      const asl::ObjectId fleet = store.create("Fleet");
      store.set_attr(fleet, "Name",
                     asl::RtValue::of_string(kojak::support::cat("fleet", f)));
      fleets.push_back(fleet);
      // Last fleet stays empty: raised-on-first-data deltas need a context
      // that starts out not holding.
      const int probes = f == fleet_count - 1 ? 0 : probes_per_fleet;
      for (int i = 0; i < probes; ++i) {
        const asl::ObjectId probe = store.create("Probe");
        store.set_attr(probe, "Slot", asl::RtValue::of_int(i % 11));
        // Dyadic T: FP-exact in any accumulation order, so epoch reports
        // compare byte-for-byte across scan-thread counts and cache states.
        store.set_attr(probe, "T", asl::RtValue::of_float(
                                       static_cast<double>(f % 4) * 0.25 + 0.5));
        store.add_to_set(fleet, "Readings", probe);
      }
    }
  }

  void populate(db::Database& database, std::size_t partitions) const {
    cosy::SchemaOptions options;
    options.junction_partitions.push_back(
        {"Fleet", "Readings", "member", partitions});
    cosy::create_schema(database, model, options);
    db::Connection conn(database, db::ConnectionProfile::in_memory());
    cosy::import_store(conn, store);
  }

  /// First probe of fleet `f` (object ids are allocated fleet-then-probes).
  [[nodiscard]] asl::ObjectId first_probe(std::size_t f) const {
    return fleets.at(f) + 1;
  }

  void watch_all(cosy::Monitor& monitor) const {
    for (const asl::PropertyInfo& prop : model.properties()) {
      for (std::size_t f = 0; f < fleets.size(); ++f) {
        std::vector<asl::RtValue> args = {asl::RtValue::of_object(fleets[f])};
        if (prop.params.size() == 2) args.push_back(asl::RtValue::of_int(5));
        monitor.watch(prop, std::move(args),
                      kojak::support::cat("fleet", f));
      }
    }
  }
};

std::string render_result(const asl::PropertyResult& result) {
  char confidence[40];
  char severity[40];
  std::snprintf(confidence, sizeof confidence, "%a", result.confidence);
  std::snprintf(severity, sizeof severity, "%a", result.severity);
  return kojak::support::cat(static_cast<int>(result.status), "|",
                             result.matched_condition, "|", confidence, "|",
                             severity, "|", result.note, "\n");
}

std::string render_report(const cosy::EpochReport& report) {
  std::string out;
  for (const cosy::MonitorFinding& finding : report.findings) {
    out += kojak::support::cat(finding.property, "@", finding.context, "|",
                               render_result(finding.result));
  }
  return out;
}

const cosy::FindingDelta* find_delta(const cosy::EpochReport& report,
                                     cosy::DeltaKind kind,
                                     const std::string& property,
                                     const std::string& context) {
  for (const cosy::FindingDelta& delta : report.deltas) {
    if (delta.kind == kind && delta.property == property &&
        delta.context == context) {
      return &delta;
    }
  }
  return nullptr;
}

}  // namespace

// ---------------------------------------------------------------------------
// Shard-result cache: pinned per-partition accounting

TEST(ShardCache, OnlyDirtyPartitionsRecompute) {
  const FleetWorld world(4, 40);
  db::Database database;
  world.populate(database, 8);
  db::Connection conn(database, db::ConnectionProfile::in_memory());

  const asl::PropertyInfo* load = world.model.find_property("FleetLoad");
  ASSERT_NE(load, nullptr);
  const std::vector<asl::RtValue> args = {
      asl::RtValue::of_object(world.fleets[0])};

  cosy::ShardResultCache cache;
  cosy::EvalBackendDeps deps;
  deps.model = &world.model;
  deps.conn = &conn;
  deps.shard_cache = &cache;
  const std::unique_ptr<cosy::EvalBackend> backend =
      cosy::EvalBackend::create("sql-whole-condition", deps);

  // Cold pass: all 8 part<K> CTEs compute and enter the cache.
  const auto s0 = database.exec_stats();
  const asl::PropertyResult cold = backend->evaluate(*load, args);
  const auto s1 = database.exec_stats();
  EXPECT_EQ(s1.shard_cache_misses - s0.shard_cache_misses, 8u);
  EXPECT_EQ(s1.shard_cache_hits - s0.shard_cache_hits, 0u);
  EXPECT_EQ(s1.dirty_partitions_recomputed - s0.dirty_partitions_recomputed,
            0u);

  // Unchanged store: the whole-statement memo answers before any shard
  // probe runs — no hits, no misses, one memoized statement, byte-identical
  // result.
  const asl::PropertyResult warm = backend->evaluate(*load, args);
  const auto s2 = database.exec_stats();
  EXPECT_EQ(s2.shard_cache_hits - s1.shard_cache_hits, 0u);
  EXPECT_EQ(s2.shard_cache_misses - s1.shard_cache_misses, 0u);
  EXPECT_EQ(s2.statements_memoized - s1.statements_memoized, 1u);
  EXPECT_EQ(render_result(warm), render_result(cold));

  // Dirty exactly one partition: one new link from fleet0 to an existing
  // probe (the junction partitions by member, so the row lands in — and
  // bumps — route(member)'s partition only; Probe itself stays untouched).
  const asl::ObjectId member = world.first_probe(0);
  conn.execute("INSERT INTO Fleet_Readings VALUES (?, ?)",
               std::vector<db::Value>{
                   db::Value::integer(static_cast<std::int64_t>(world.fleets[0])),
                   db::Value::integer(static_cast<std::int64_t>(member))});

  const asl::PropertyResult dirty = backend->evaluate(*load, args);
  const auto s3 = database.exec_stats();
  EXPECT_EQ(s3.shard_cache_hits - s2.shard_cache_hits, 7u);
  EXPECT_EQ(s3.shard_cache_misses - s2.shard_cache_misses, 1u);
  EXPECT_EQ(s3.dirty_partitions_recomputed - s2.dirty_partitions_recomputed,
            1u);
  // The recompute saw the new row: fleet0's SUM grew by probe T = 0.5
  // exactly (dyadic), and matches a cache-free evaluation byte for byte.
  EXPECT_EQ(dirty.severity, cold.severity + 0.5);
  cosy::EvalBackendDeps cold_deps = deps;
  cold_deps.shard_cache = nullptr;
  const std::unique_ptr<cosy::EvalBackend> reference =
      cosy::EvalBackend::create("sql-whole-condition", cold_deps);
  EXPECT_EQ(render_result(dirty), render_result(reference->evaluate(*load, args)));
}

// ---------------------------------------------------------------------------
// Shard-result cache: LRU cap (mirrors PlanCache::max_plans)

TEST(ShardCache, LruCapEvictsLeastRecentlyUsedFirst) {
  cosy::ShardResultCache cache(2);
  EXPECT_EQ(cache.capacity(), 2u);
  const auto rows_of = [](double v) {
    db::QueryResult r;
    r.columns = {"v"};
    r.rows.push_back({db::Value::real(v)});
    return r;
  };

  // Fill to cap, then touch p0 so p1 becomes the coldest entry.
  (void)cache.store("plan", 0, 1, rows_of(0.0));
  (void)cache.store("plan", 1, 1, rows_of(1.0));
  EXPECT_NE(cache.probe("plan", 0, 1).rows, nullptr);

  // Inserting p2 over a full cache must evict exactly p1.
  (void)cache.store("plan", 2, 1, rows_of(2.0));
  cosy::ShardResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  const cosy::ShardResultCache::Probe victim = cache.probe("plan", 1, 1);
  EXPECT_EQ(victim.rows, nullptr);
  EXPECT_FALSE(victim.stale);  // eviction leaves no stale ghost behind
  EXPECT_NE(cache.probe("plan", 0, 1).rows, nullptr);

  // Replacing an entry in place (same key, newer version) is not an insert:
  // nothing is evicted, and the replaced key becomes hottest.
  const std::shared_ptr<const db::QueryResult> held =
      cache.probe("plan", 2, 1).rows;
  ASSERT_NE(held, nullptr);
  (void)cache.store("plan", 0, 2, rows_of(0.5));
  EXPECT_EQ(cache.stats().evictions, 1u);

  // Next insert evicts p2 (now coldest) — but the handle handed out above
  // keeps the evicted rows alive and readable.
  (void)cache.store("plan", 3, 1, rows_of(3.0));
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.probe("plan", 2, 1).rows, nullptr);
  EXPECT_EQ(held->at(0, 0).as_double(), 2.0);

  // The statement-memo level is capped independently at the same bound.
  (void)cache.store_statement("s0", 1, rows_of(10.0));
  (void)cache.store_statement("s1", 1, rows_of(11.0));
  EXPECT_NE(cache.probe_statement("s0", 1), nullptr);
  (void)cache.store_statement("s2", 1, rows_of(12.0));
  stats = cache.stats();
  EXPECT_EQ(stats.statement_entries, 2u);
  EXPECT_EQ(stats.evictions, 3u);
  EXPECT_EQ(cache.probe_statement("s1", 1), nullptr);
  EXPECT_NE(cache.probe_statement("s0", 1), nullptr);
}

TEST(Monitor, BoundedShardCacheNeverChangesReports) {
  const FleetWorld world(4, 40);
  db::Database database;
  world.populate(database, 8);
  db::Connection conn(database, db::ConnectionProfile::in_memory());

  // A cap far below the working set (12 watches x 8 partitions) forces
  // constant eviction; every pass must still render byte-identically to an
  // unbounded monitor at the same epoch.
  cosy::Monitor bounded(world.model, conn, {.max_shard_entries = 3});
  cosy::Monitor unbounded(world.model, conn);
  world.watch_all(bounded);
  world.watch_all(unbounded);

  for (int pass = 0; pass < 3; ++pass) {
    if (pass > 0) {
      cosy::IngestBatch batch;
      batch.add("Fleet_Readings",
                {db::Value::integer(static_cast<std::int64_t>(world.fleets[1])),
                 db::Value::integer(
                     static_cast<std::int64_t>(world.first_probe(1)))});
      bounded.ingest(batch);
    }
    const cosy::EpochReport capped = bounded.evaluate();
    const cosy::EpochReport free = unbounded.evaluate();
    EXPECT_EQ(capped.epoch, free.epoch) << "pass " << pass;
    EXPECT_EQ(render_report(capped), render_report(free)) << "pass " << pass;
  }
  EXPECT_LE(bounded.shard_cache().stats().entries, 3u);
  EXPECT_GT(bounded.shard_cache().stats().evictions, 0u);
}

// ---------------------------------------------------------------------------
// Monitor: epoch deltas

TEST(Monitor, ReportsRaisedClearedAndSeverityChangedDeltas) {
  const FleetWorld world(4, 24);
  db::Database database;
  world.populate(database, 8);
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::Monitor monitor(world.model, conn);
  world.watch_all(monitor);
  ASSERT_EQ(monitor.watch_count(), 12u);

  // Pass 1: every holding context is a raised delta; fleet3 is empty so
  // nothing holds there.
  const cosy::EpochReport first = monitor.evaluate();
  EXPECT_EQ(first.pass, 1u);
  EXPECT_EQ(first.rows_ingested, 0u);
  EXPECT_FALSE(first.findings.empty());
  EXPECT_EQ(first.deltas.size(), first.findings.size());
  for (const cosy::FindingDelta& delta : first.deltas) {
    EXPECT_EQ(delta.kind, cosy::DeltaKind::kRaised);
  }
  EXPECT_EQ(find_delta(first, cosy::DeltaKind::kRaised, "FleetLoad", "fleet3"),
            nullptr);

  // Ingest: fleet3 receives its first samples (links to existing probes of
  // fleet0 — Slot 0 and 1, so FleetHot's Cut=5 stays unmet) and fleet0
  // re-reads one probe (severity moves, verdict does not).
  cosy::IngestBatch batch;
  const auto fleet = [&](std::size_t f) {
    return db::Value::integer(static_cast<std::int64_t>(world.fleets[f]));
  };
  const auto probe = [&](std::size_t f) {
    return db::Value::integer(static_cast<std::int64_t>(world.first_probe(f)));
  };
  batch.add("Fleet_Readings", {fleet(3), probe(0)});
  batch.add("Fleet_Readings",
            {fleet(3), db::Value::integer(
                           static_cast<std::int64_t>(world.first_probe(0) + 1))});
  batch.add("Fleet_Readings", {fleet(0), probe(0)});
  EXPECT_EQ(monitor.ingest(batch), 3u);

  const cosy::EpochReport second = monitor.evaluate();
  EXPECT_EQ(second.pass, 2u);
  EXPECT_EQ(second.rows_ingested, 3u);
  EXPECT_GT(second.epoch, first.epoch);
  EXPECT_NE(find_delta(second, cosy::DeltaKind::kRaised, "FleetLoad", "fleet3"),
            nullptr);
  EXPECT_NE(
      find_delta(second, cosy::DeltaKind::kRaised, "FleetShape", "fleet3"),
      nullptr);
  EXPECT_EQ(find_delta(second, cosy::DeltaKind::kRaised, "FleetHot", "fleet3"),
            nullptr);
  const cosy::FindingDelta* moved =
      find_delta(second, cosy::DeltaKind::kSeverityChanged, "FleetLoad",
                 "fleet0");
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->severity_after, moved->severity_before + 0.5);
  // Untouched fleets report no delta at all.
  EXPECT_EQ(find_delta(second, cosy::DeltaKind::kSeverityChanged, "FleetLoad",
                       "fleet1"),
            nullptr);

  // Fleet3 drains again (a delete outside the monitor still advances the
  // store epoch): its raised findings clear on the next pass.
  conn.execute("DELETE FROM Fleet_Readings WHERE owner = ?",
               std::vector<db::Value>{fleet(3)});
  const cosy::EpochReport third = monitor.evaluate();
  EXPECT_GT(third.epoch, second.epoch);
  EXPECT_EQ(third.rows_ingested, 0u);
  EXPECT_NE(find_delta(third, cosy::DeltaKind::kCleared, "FleetLoad", "fleet3"),
            nullptr);
  EXPECT_NE(
      find_delta(third, cosy::DeltaKind::kCleared, "FleetShape", "fleet3"),
      nullptr);
  // The summary renders every delta kind it reports.
  const std::string summary = third.to_summary();
  EXPECT_NE(summary.find("cleared"), std::string::npos);
  EXPECT_NE(summary.find("FleetLoad @ fleet3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Incremental == cold full recompute, across scan-thread counts

TEST(Monitor, IncrementalReportByteIdenticalToColdRecompute) {
  const FleetWorld world(4, 40);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    db::Database database;
    world.populate(database, 8);
    if (threads > 1) {
      database.set_scan_config({.threads = threads, .min_parallel_rows = 1});
    }
    db::Connection conn(database, db::ConnectionProfile::in_memory());

    cosy::Monitor incremental(world.model, conn);
    world.watch_all(incremental);
    (void)incremental.evaluate();  // warm the shard cache

    cosy::IngestBatch batch;
    batch.add("Fleet_Readings",
              {db::Value::integer(static_cast<std::int64_t>(world.fleets[1])),
               db::Value::integer(
                   static_cast<std::int64_t>(world.first_probe(1)))});
    incremental.ingest(batch);
    const cosy::EpochReport warm = incremental.evaluate();
    // The pass really was incremental: most partitions served from cache,
    // at least the dirtied one recomputed.
    EXPECT_GE(warm.dirty_partitions_recomputed, 1u) << threads << " threads";
    EXPECT_GT(warm.shard_cache_hits, warm.shard_cache_misses)
        << threads << " threads";

    // A second monitor with a cold cache recomputes everything at the same
    // epoch — the reports must match byte for byte.
    cosy::Monitor cold(world.model, conn);
    world.watch_all(cold);
    const cosy::EpochReport full = cold.evaluate();
    EXPECT_EQ(full.epoch, warm.epoch) << threads << " threads";
    EXPECT_EQ(render_report(warm), render_report(full))
        << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// Snapshot isolation: a concurrent appender never tears an epoch

TEST(Monitor, ConcurrentIngestSnapshotsReplayQuiesced) {
  const FleetWorld world(4, 24);
  db::Database database;
  world.populate(database, 8);
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::Monitor monitor(world.model, conn);
  world.watch_all(monitor);

  // Pre-build the ingest schedule: each batch links existing probes to a
  // rotating fleet. Whole batches land under one write gate, so the only
  // legal epochs are the ladder below.
  constexpr std::size_t kBatches = 12;
  constexpr std::size_t kRowsPerBatch = 8;
  std::vector<cosy::IngestBatch> batches(kBatches);
  for (std::size_t b = 0; b < kBatches; ++b) {
    for (std::size_t r = 0; r < kRowsPerBatch; ++r) {
      batches[b].add(
          "Fleet_Readings",
          {db::Value::integer(static_cast<std::int64_t>(world.fleets[b % 4])),
           db::Value::integer(static_cast<std::int64_t>(
               world.first_probe(0) + (b * kRowsPerBatch + r) % 23))});
    }
  }
  std::vector<std::uint64_t> ladder = {database.store_epoch()};
  for (const cosy::IngestBatch& batch : batches) {
    ladder.push_back(ladder.back() + batch.rows());
  }

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (const cosy::IngestBatch& batch : batches) monitor.ingest(batch);
    done.store(true);
  });
  std::vector<cosy::EpochReport> captured;
  while (!done.load()) captured.push_back(monitor.evaluate());
  writer.join();
  captured.push_back(monitor.evaluate());  // final, quiesced

  ASSERT_EQ(captured.back().epoch, ladder.back());
  std::vector<std::uint64_t> replayed;
  for (const cosy::EpochReport& report : captured) {
    // Batch atomicity: a snapshot can only land on the ladder, never in the
    // middle of a batch.
    const auto rung = std::find(ladder.begin(), ladder.end(), report.epoch);
    ASSERT_NE(rung, ladder.end()) << "epoch " << report.epoch;
    if (std::find(replayed.begin(), replayed.end(), report.epoch) !=
        replayed.end()) {
      continue;
    }
    replayed.push_back(report.epoch);

    // Replay the same prefix of batches quiesced on a fresh store; the
    // captured mid-flight incremental report must match byte for byte.
    const std::size_t applied =
        static_cast<std::size_t>(rung - ladder.begin());
    db::Database quiesced_db;
    world.populate(quiesced_db, 8);
    db::Connection quiesced_conn(quiesced_db,
                                 db::ConnectionProfile::in_memory());
    cosy::Monitor quiesced(world.model, quiesced_conn);
    world.watch_all(quiesced);
    for (std::size_t b = 0; b < applied; ++b) quiesced.ingest(batches[b]);
    const cosy::EpochReport reference = quiesced.evaluate();
    ASSERT_EQ(reference.epoch, report.epoch);
    EXPECT_EQ(render_report(report), render_report(reference))
        << "epoch " << report.epoch;
  }
}
