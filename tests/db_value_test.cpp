#include <gtest/gtest.h>

#include "db/value.hpp"
#include "support/error.hpp"

namespace kdb = kojak::db;
using kdb::Value;
using kdb::ValueType;
using kojak::support::EvalError;

TEST(Value, TypesAndAccessors) {
  EXPECT_EQ(Value::null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::null().is_null());
  EXPECT_EQ(Value::boolean(true).type(), ValueType::kBool);
  EXPECT_TRUE(Value::boolean(true).as_bool());
  EXPECT_EQ(Value::integer(-5).as_int(), -5);
  EXPECT_DOUBLE_EQ(Value::real(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::text("hi").as_string(), "hi");
  EXPECT_EQ(Value::datetime(1000).type(), ValueType::kDateTime);
  EXPECT_EQ(Value::datetime(1000).as_datetime(), 1000);
}

TEST(Value, IntIsNotDateTime) {
  EXPECT_EQ(Value::integer(5).type(), ValueType::kInt);
  EXPECT_THROW((void)Value::integer(5).as_datetime(), EvalError);
  EXPECT_THROW((void)Value::datetime(5).as_int(), EvalError);
}

TEST(Value, AsDoubleAcceptsInt) {
  EXPECT_DOUBLE_EQ(Value::integer(4).as_double(), 4.0);
  EXPECT_THROW((void)Value::text("x").as_double(), EvalError);
}

TEST(Value, CheckedAccessorsThrow) {
  EXPECT_THROW((void)Value::integer(1).as_bool(), EvalError);
  EXPECT_THROW((void)Value::real(1).as_string(), EvalError);
  EXPECT_THROW((void)Value::null().as_int(), EvalError);
}

TEST(Value, CompareSqlNumericCrossType) {
  const auto cmp = Value::compare_sql(Value::integer(2), Value::real(2.0));
  ASSERT_TRUE(cmp.has_value());
  EXPECT_EQ(*cmp, 0);
  EXPECT_LT(*Value::compare_sql(Value::integer(1), Value::real(1.5)), 0);
  EXPECT_GT(*Value::compare_sql(Value::real(3.5), Value::integer(3)), 0);
}

TEST(Value, CompareSqlNullIsUnknown) {
  EXPECT_FALSE(Value::compare_sql(Value::null(), Value::integer(1)).has_value());
  EXPECT_FALSE(Value::compare_sql(Value::text("x"), Value::null()).has_value());
}

TEST(Value, CompareSqlStringsAndBools) {
  EXPECT_LT(*Value::compare_sql(Value::text("abc"), Value::text("abd")), 0);
  EXPECT_EQ(*Value::compare_sql(Value::text("x"), Value::text("x")), 0);
  EXPECT_LT(*Value::compare_sql(Value::boolean(false), Value::boolean(true)), 0);
  EXPECT_LT(*Value::compare_sql(Value::datetime(10), Value::datetime(20)), 0);
}

TEST(Value, CompareSqlCrossTypeThrows) {
  EXPECT_THROW((void)Value::compare_sql(Value::text("1"), Value::integer(1)),
               EvalError);
  EXPECT_THROW((void)Value::compare_sql(Value::boolean(true), Value::integer(1)),
               EvalError);
}

TEST(Value, TotalOrderNullFirst) {
  EXPECT_LT(Value::compare_total(Value::null(), Value::integer(-100)), 0);
  EXPECT_EQ(Value::compare_total(Value::null(), Value::null()), 0);
  EXPECT_GT(Value::compare_total(Value::text(""), Value::integer(5)), 0);
}

TEST(Value, TotalOrderNumericMixes) {
  EXPECT_EQ(Value::compare_total(Value::integer(2), Value::real(2.0)), 0);
  EXPECT_LT(Value::compare_total(Value::integer(1), Value::real(1.25)), 0);
}

TEST(Value, HashConsistentWithTotalEquality) {
  EXPECT_EQ(Value::integer(2).hash(), Value::real(2.0).hash());
  EXPECT_EQ(Value::text("abc").hash(), Value::text("abc").hash());
  EXPECT_TRUE(Value::integer(2).equals_total(Value::real(2.0)));
}

TEST(Value, DisplayForms) {
  EXPECT_EQ(Value::null().to_display(), "NULL");
  EXPECT_EQ(Value::boolean(true).to_display(), "true");
  EXPECT_EQ(Value::integer(-3).to_display(), "-3");
  EXPECT_EQ(Value::text("t").to_display(), "t");
  EXPECT_EQ(Value::datetime(0).to_display(), "1970-01-01 00:00:00");
}

TEST(Value, SqlLiteralRoundTripMarkers) {
  EXPECT_EQ(Value::integer(7).to_sql_literal(), "7");
  EXPECT_EQ(Value::real(2.0).to_sql_literal(), "2.0");  // forced float marker
  EXPECT_EQ(Value::text("o'x").to_sql_literal(), "'o''x'");
  EXPECT_EQ(Value::boolean(false).to_sql_literal(), "FALSE");
  EXPECT_EQ(Value::null().to_sql_literal(), "NULL");
  EXPECT_EQ(Value::datetime(0).to_sql_literal(),
            "DATETIME '1970-01-01 00:00:00'");
}

TEST(Value, CoerceRules) {
  EXPECT_EQ(Value::integer(3).coerce_to(ValueType::kDouble).type(),
            ValueType::kDouble);
  EXPECT_EQ(Value::integer(3).coerce_to(ValueType::kDateTime).type(),
            ValueType::kDateTime);
  EXPECT_EQ(Value::datetime(3).coerce_to(ValueType::kInt).type(),
            ValueType::kInt);
  EXPECT_TRUE(Value::null().coerce_to(ValueType::kString).is_null());
  EXPECT_THROW((void)Value::real(1.5).coerce_to(ValueType::kInt), EvalError);
  EXPECT_THROW((void)Value::text("x").coerce_to(ValueType::kInt), EvalError);
}

TEST(Value, NumericBinop) {
  EXPECT_EQ(kdb::numeric_binop('+', Value::integer(2), Value::integer(3)).as_int(), 5);
  EXPECT_EQ(kdb::numeric_binop('*', Value::integer(-2), Value::integer(3)).as_int(), -6);
  EXPECT_DOUBLE_EQ(
      kdb::numeric_binop('/', Value::integer(1), Value::integer(2)).as_double(),
      0.5);  // division always real
  EXPECT_DOUBLE_EQ(
      kdb::numeric_binop('+', Value::real(0.5), Value::integer(1)).as_double(),
      1.5);
  EXPECT_EQ(kdb::numeric_binop('%', Value::integer(7), Value::integer(3)).as_int(), 1);
}

TEST(Value, NumericBinopNullPropagates) {
  EXPECT_TRUE(kdb::numeric_binop('+', Value::null(), Value::integer(1)).is_null());
}

TEST(Value, NumericBinopErrors) {
  EXPECT_THROW((void)kdb::numeric_binop('/', Value::integer(1), Value::integer(0)),
               EvalError);
  EXPECT_THROW((void)kdb::numeric_binop('%', Value::integer(1), Value::integer(0)),
               EvalError);
  EXPECT_THROW((void)kdb::numeric_binop('-', Value::text("a"), Value::integer(1)),
               EvalError);
}

TEST(Value, StringConcatViaPlus) {
  EXPECT_EQ(kdb::numeric_binop('+', Value::text("a"), Value::text("b")).as_string(),
            "ab");
}

// ---------------------------------------------------------------------------
// DateTime civil conversions

TEST(DateTime, FormatKnownInstants) {
  EXPECT_EQ(kdb::format_datetime(0), "1970-01-01 00:00:00");
  EXPECT_EQ(kdb::format_datetime(86399), "1970-01-01 23:59:59");
  EXPECT_EQ(kdb::format_datetime(86400), "1970-01-02 00:00:00");
  EXPECT_EQ(kdb::format_datetime(941806800), "1999-11-05 13:00:00");
}

TEST(DateTime, ParseFormats) {
  EXPECT_EQ(kdb::parse_datetime("1970-01-01 00:00:00"), 0);
  EXPECT_EQ(kdb::parse_datetime("1999-11-05 13:00:00"), 941806800);
  EXPECT_EQ(kdb::parse_datetime("1999-11-05"), 941760000);
}

TEST(DateTime, ParseRejectsMalformed) {
  EXPECT_FALSE(kdb::parse_datetime("not a date").has_value());
  EXPECT_FALSE(kdb::parse_datetime("1999-13-05").has_value());
  EXPECT_FALSE(kdb::parse_datetime("1999-11-05 25:00:00").has_value());
  EXPECT_FALSE(kdb::parse_datetime("1999-11-05T13:00:00").has_value());
  EXPECT_FALSE(kdb::parse_datetime("").has_value());
}

TEST(DateTime, RoundTripSweep) {
  // Sweep across leap years and month boundaries.
  for (std::int64_t t = -1000000000; t <= 2000000000; t += 86400 * 37 + 12345) {
    const std::string text = kdb::format_datetime(t);
    const auto parsed = kdb::parse_datetime(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(*parsed, t) << text;
  }
}

TEST(DateTime, LeapDay) {
  const auto t = kdb::parse_datetime("2000-02-29 12:00:00");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(kdb::format_datetime(*t), "2000-02-29 12:00:00");
}

TEST(TypeNames, ParseTypeName) {
  EXPECT_EQ(kdb::parse_type_name("INTEGER"), ValueType::kInt);
  EXPECT_EQ(kdb::parse_type_name("bigint"), ValueType::kInt);
  EXPECT_EQ(kdb::parse_type_name("DOUBLE"), ValueType::kDouble);
  EXPECT_EQ(kdb::parse_type_name("VarChar"), ValueType::kString);
  EXPECT_EQ(kdb::parse_type_name("BOOLEAN"), ValueType::kBool);
  EXPECT_EQ(kdb::parse_type_name("TIMESTAMP"), ValueType::kDateTime);
  EXPECT_FALSE(kdb::parse_type_name("BLOB").has_value());
}
