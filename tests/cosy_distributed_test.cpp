// Distributed scatter/gather differential: the coordinator/worker executor
// split must be invisible in every report — `sql-distributed` byte-identical
// to `sql-whole-condition` across 1/2/8 workers, in-process and
// modelled-remote worker fleets, injected worker failures (recovered via
// retry-with-backoff), and stragglers (recovered via re-issue to a replica)
// — while the pinned exec_stats counters prove the shards really scattered.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "asl/interp.hpp"
#include "asl/sema.hpp"
#include "cosy/analyzer.hpp"
#include "cosy/db_import.hpp"
#include "cosy/eval_backend.hpp"
#include "cosy/schema_gen.hpp"
#include "cosy/specs.hpp"
#include "cosy/sql_eval.hpp"
#include "cosy/store_builder.hpp"
#include "db/connection_pool.hpp"
#include "db/distributed.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace asl = kojak::asl;
namespace cosy = kojak::cosy;
namespace db = kojak::db;
namespace perf = kojak::perf;

using std::chrono::milliseconds;

namespace {

// ---------------------------------------------------------------------------
// Micro world: a hand-written partition-union statement against a small
// hash-partitioned table, for pinning the coordinator's shard accounting
// without the compiler in the loop.

constexpr const char* kUnionStatement =
    "WITH part0 AS (SELECT COALESCE(SUM(v), 0.0) AS s FROM M PARTITION (0) "
    "WHERE v > ?), "
    "part1 AS (SELECT COALESCE(SUM(v), 0.0) AS s FROM M PARTITION (1) "
    "WHERE v > ?), "
    "part2 AS (SELECT COALESCE(SUM(v), 0.0) AS s FROM M PARTITION (2) "
    "WHERE v > ?), "
    "part3 AS (SELECT COALESCE(SUM(v), 0.0) AS s FROM M PARTITION (3) "
    "WHERE v > ?) "
    "SELECT ((SELECT s FROM part0) + (SELECT s FROM part1) + "
    "(SELECT s FROM part2) + (SELECT s FROM part3)) AS total";

struct MicroWorld {
  db::Database db;

  MicroWorld() {
    db.execute(
        "CREATE TABLE M (k INTEGER, v DOUBLE) "
        "PARTITION BY HASH(k) PARTITIONS 4");
    for (int i = 0; i < 64; ++i) {
      db.execute(kojak::support::cat("INSERT INTO M VALUES (", i, ", ",
                                     i % 7, ".5)"));
    }
  }
};

/// Byte-exact rendering of a result set (hexfloat doubles).
std::string render_rows(const db::QueryResult& result) {
  std::string out;
  for (const std::string& column : result.columns) {
    out += kojak::support::cat(column, "|");
  }
  out += "\n";
  for (const db::Row& row : result.rows) {
    for (const db::Value& value : row) {
      if (value.type() == db::ValueType::kDouble) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%a", value.as_double());
        out += buf;
      } else {
        out += value.to_display();
      }
      out += "|";
    }
    out += "\n";
  }
  return out;
}

std::vector<db::Value> union_params() {
  return {db::Value::real(1.0), db::Value::real(1.0), db::Value::real(1.0),
          db::Value::real(1.0)};
}

// ---------------------------------------------------------------------------
// Fleet world: the partition-union compiler's synthetic workload (as in
// cosy_partition_test.cpp), where whole-set aggregates over a MEMBER-
// partitioned junction really scatter.

constexpr const char* kFleetSpec = R"(
  class Fleet {
    String Name;
    setof Probe Readings;
  }
  class Probe {
    int Slot;
    float T;
  }

  Property FleetLoad(Fleet f) {
    LET float Total = SUM(p.T WHERE p IN f.Readings);
    IN
    CONDITION: Total > 0;
    CONFIDENCE: 1;
    SEVERITY: Total;
  };

  Property FleetShape(Fleet f) {
    LET int N = COUNT(f.Readings);
        int Low = MIN(p.Slot WHERE p IN f.Readings);
        int High = MAX(p.Slot WHERE p IN f.Readings);
        float Mean = AVG(p.T WHERE p IN f.Readings);
    IN
    CONDITION: High >= Low;
    CONFIDENCE: 1;
    SEVERITY: Mean + N + High - Low;
  };

  Property FleetHot(Fleet f, int Cut) {
    LET int Hot = COUNT(p WHERE p IN f.Readings AND p.Slot >= Cut);
    IN
    CONDITION: EXISTS({p IN f.Readings WITH p.Slot >= Cut});
    CONFIDENCE: 1;
    SEVERITY: Hot;
  };
)";

struct FleetWorld {
  asl::Model model = asl::load_model({kFleetSpec});
  asl::ObjectStore store{model};
  std::vector<asl::ObjectId> fleets;

  FleetWorld(int fleet_count, int probes_per_fleet) {
    for (int f = 0; f < fleet_count; ++f) {
      const asl::ObjectId fleet = store.create("Fleet");
      store.set_attr(fleet, "Name",
                     asl::RtValue::of_string(kojak::support::cat("fleet", f)));
      fleets.push_back(fleet);
      // Last fleet stays empty so the NA paths are in the differential too.
      const int probes = f == fleet_count - 1 ? 0 : probes_per_fleet;
      for (int i = 0; i < probes; ++i) {
        const asl::ObjectId probe = store.create("Probe");
        store.set_attr(probe, "Slot", asl::RtValue::of_int(i % 11));
        // Dyadic values: FP-exact in any accumulation order, so reports
        // compare byte-for-byte across worker fleets.
        store.set_attr(probe, "T", asl::RtValue::of_float(
                                       static_cast<double>(f % 4) * 0.25 + 0.5));
        store.add_to_set(fleet, "Readings", probe);
      }
    }
  }

  void populate(db::Database& database, std::size_t partitions) const {
    cosy::SchemaOptions options;
    options.junction_partitions.push_back(
        {"Fleet", "Readings", "member", partitions});
    cosy::create_schema(database, model, options);
    db::Connection conn(database, db::ConnectionProfile::in_memory());
    cosy::import_store(conn, store);
  }
};

std::string render_result(const asl::PropertyResult& result) {
  char confidence[40];
  char severity[40];
  std::snprintf(confidence, sizeof confidence, "%a", result.confidence);
  std::snprintf(severity, sizeof severity, "%a", result.severity);
  return kojak::support::cat(static_cast<int>(result.status), "|",
                             result.matched_condition, "|", confidence, "|",
                             severity, "|", result.note, "\n");
}

/// Evaluates every (property, fleet) context through `backend` and renders
/// the whole sweep byte-exactly. `coordinator` (optional) is handed to the
/// deps for fault-injection tests; `profile` selects in-process vs
/// modelled-remote worker fleets for self-built coordinators.
std::string evaluate_fleet_suite(
    const FleetWorld& world, db::Database& database,
    const std::string& backend, std::size_t threads = 0,
    db::Coordinator* coordinator = nullptr,
    db::ConnectionProfile profile = db::ConnectionProfile::in_memory(),
    cosy::EvalStats* stats_out = nullptr) {
  std::vector<std::vector<asl::RtValue>> args;
  for (const asl::PropertyInfo& prop : world.model.properties()) {
    for (const asl::ObjectId fleet : world.fleets) {
      std::vector<asl::RtValue> tuple = {asl::RtValue::of_object(fleet)};
      if (prop.params.size() == 2) tuple.push_back(asl::RtValue::of_int(5));
      args.push_back(std::move(tuple));
    }
  }
  std::vector<cosy::EvalRequest> requests;
  std::size_t slot = 0;
  for (const asl::PropertyInfo& prop : world.model.properties()) {
    for (std::size_t f = 0; f < world.fleets.size(); ++f) {
      requests.push_back({&prop, &args[slot++]});
    }
  }

  db::Connection conn(database, std::move(profile));
  cosy::EvalBackendDeps deps;
  deps.model = &world.model;
  deps.store = &world.store;
  deps.threads = threads;
  deps.conn = coordinator != nullptr ? &coordinator->session() : &conn;
  deps.coordinator = coordinator;
  const std::unique_ptr<cosy::EvalBackend> engine =
      cosy::EvalBackend::create(backend, deps);
  std::vector<asl::PropertyResult> results(requests.size());
  engine->evaluate_all(requests, results);
  std::string rendered;
  for (const asl::PropertyResult& result : results) {
    rendered += render_result(result);
  }
  if (stats_out != nullptr) *stats_out = engine->stats();
  return rendered;
}

// ---------------------------------------------------------------------------
// COSY twin world (all 13 properties), as in cosy_partition_test.cpp.

struct TwinWorld {
  asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store{model};
  cosy::StoreHandles handles;
  db::Database flat;
  db::Database partitioned;

  TwinWorld(const perf::AppSpec& app, std::vector<int> pes) {
    perf::SimulationOptions options;
    options.seed = 1;
    const perf::ExperimentData data =
        perf::simulate_experiment(app, pes, options);
    handles = cosy::build_store(store, data);
    cosy::create_schema(
        flat, model,
        {.region_timing_partitions = 1, .junction_partitions = {}});
    cosy::create_schema(
        partitioned, model,
        {.region_timing_partitions = 8, .junction_partitions = {}});
    for (db::Database* database : {&flat, &partitioned}) {
      db::Connection conn(*database, db::ConnectionProfile::in_memory());
      cosy::import_store(conn, store);
    }
  }
};

std::string render_exact(const cosy::AnalysisReport& report) {
  std::string out = report.to_table(0);
  for (const cosy::Finding& f : report.not_applicable) {
    out += kojak::support::cat("NA ", f.property, "@", f.context, "!",
                               f.result.note, "\n");
  }
  return out;
}

cosy::AnalysisReport analyze(TwinWorld& world, db::Database& database,
                             const std::string& backend, std::size_t threads) {
  cosy::AnalyzerConfig config;
  config.backend = backend;
  config.threads = threads;
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::Analyzer analyzer(world.model, world.store, world.handles, &conn);
  return analyzer.analyze(2, config);
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry and rendering

TEST(Distributed, BackendIsRegistered) {
  EXPECT_TRUE(cosy::EvalBackend::exists("sql-distributed"));
  EXPECT_TRUE(cosy::EvalBackend::requires_connection("sql-distributed"));
  EXPECT_NE(cosy::EvalBackend::describe("sql-distributed").find("scatter"),
            std::string::npos);
}

TEST(Distributed, ShardRenderingRoundTripsTextAndParamOrder) {
  db::Database db;
  db.execute("CREATE TABLE t (a INTEGER, b DOUBLE)");
  db::PreparedStatement stmt = db.prepare(
      "SELECT COALESCE(SUM(b), 0.0) AS s FROM t WHERE a > ? AND b < ?");
  auto* select = std::get_if<db::sql::SelectStmt>(&stmt.ast());
  ASSERT_NE(select, nullptr);
  std::string text;
  std::vector<std::size_t> order;
  ASSERT_TRUE(db::render_select_sql(*select, text, order));
  // The rendered text re-parses and the placeholders keep their order.
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1}));
  db.execute("INSERT INTO t VALUES (5, 1.5)");
  const std::vector<db::Value> params = {db::Value::integer(1),
                                         db::Value::real(9.0)};
  EXPECT_EQ(render_rows(db.execute(text, params)),
            render_rows(db.execute(stmt, params)));
}

// ---------------------------------------------------------------------------
// Coordinator over the micro world: pinned shard accounting

TEST(Distributed, CoordinatorScattersPartitionCtesAcrossWorkers) {
  MicroWorld world;
  db::Connection session(world.db, db::ConnectionProfile::in_memory());
  const std::string plain = render_rows(world.db.execute(
      kUnionStatement, union_params()));

  db::ReplicaSet replicas(world.db, 2);
  db::Coordinator coord(session, db::make_workers(replicas, session.profile()));
  ASSERT_EQ(coord.worker_count(), 2u);

  const auto before = world.db.exec_stats();
  const db::QueryResult via = coord.execute(kUnionStatement, union_params());
  const auto after = world.db.exec_stats();

  EXPECT_EQ(render_rows(via), plain);
  EXPECT_EQ(after.shards_dispatched - before.shards_dispatched, 4u);
  EXPECT_EQ(after.shard_retries - before.shard_retries, 0u);
  EXPECT_EQ(after.straggler_reissues - before.straggler_reissues, 0u);
  EXPECT_EQ(after.worker_failures - before.worker_failures, 0u);
  // Round-robin: both workers executed shards, 4 in total.
  EXPECT_EQ(coord.worker(0).shards_executed() + coord.worker(1).shards_executed(),
            4u);
  EXPECT_GT(coord.worker(0).shards_executed(), 0u);
  EXPECT_GT(coord.worker(1).shards_executed(), 0u);
}

TEST(Distributed, RemoteWorkersShipTextAndChargeWireCosts) {
  MicroWorld world;
  // A distributed profile builds modelled-remote workers: the shard CTEs
  // serialize to SQL text + sliced params, execute on the replica through a
  // per-worker Connection, and the gather barrier charges the session the
  // slowest worker's delta.
  db::Connection session(world.db, db::ConnectionProfile::postgres());
  const std::string plain = render_rows(world.db.execute(
      kUnionStatement, union_params()));

  db::ReplicaSet replicas(world.db, 2);
  auto workers = db::make_workers(replicas, session.profile());
  ASSERT_NE(dynamic_cast<db::RemoteWorker*>(workers[0].get()), nullptr);
  db::Coordinator coord(session, std::move(workers));

  const std::uint64_t clock_before = session.clock().now_ns();
  const db::QueryResult via = coord.execute(kUnionStatement, union_params());
  EXPECT_EQ(render_rows(via), plain);
  EXPECT_GT(coord.worker(0).modelled_ns(), 0u);
  // Makespan (worker wire/server time) + the residual statement both landed
  // on the session clock.
  EXPECT_GT(session.clock().now_ns(), clock_before);
}

TEST(Distributed, WorkerFailureRecoversViaRetryWithPinnedCounters) {
  MicroWorld world;
  db::Connection session(world.db, db::ConnectionProfile::in_memory());
  const std::string plain = render_rows(world.db.execute(
      kUnionStatement, union_params()));

  db::ReplicaSet replicas(world.db, 1);
  std::vector<std::unique_ptr<db::Worker>> workers;
  workers.push_back(
      std::make_unique<db::InProcessWorker>("w0", replicas.replica(0)));
  db::Worker* w0 = workers[0].get();
  db::Coordinator coord(session, std::move(workers));

  w0->set_faults({.fail_first = 2});
  const auto before = world.db.exec_stats();
  const db::QueryResult via = coord.execute(kUnionStatement, union_params());
  const auto after = world.db.exec_stats();

  EXPECT_EQ(render_rows(via), plain);
  // Every injected failure is one observed worker failure and one retry;
  // with fail_first below max_attempts the statement always recovers.
  EXPECT_EQ(after.worker_failures - before.worker_failures, 2u);
  EXPECT_EQ(after.shard_retries - before.shard_retries, 2u);
  EXPECT_EQ(after.shards_dispatched - before.shards_dispatched, 4u);
  EXPECT_EQ(after.straggler_reissues - before.straggler_reissues, 0u);

  // A worker that keeps failing exhausts max_attempts and the statement
  // surfaces the failure to the caller.
  w0->set_faults({.fail_first = 1000});
  EXPECT_THROW(coord.execute(kUnionStatement, union_params()),
               kojak::support::EvalError);
  w0->set_faults({});
}

TEST(Distributed, StragglerReissuesToReplicaWithPinnedCounters) {
  MicroWorld world;
  db::Connection session(world.db, db::ConnectionProfile::in_memory());
  const std::string plain = render_rows(world.db.execute(
      kUnionStatement, union_params()));

  db::ReplicaSet replicas(world.db, 2);
  std::vector<std::unique_ptr<db::Worker>> workers;
  workers.push_back(
      std::make_unique<db::InProcessWorker>("w0", replicas.replica(0)));
  workers.push_back(
      std::make_unique<db::InProcessWorker>("w1", replicas.replica(1)));
  db::Worker* w0 = workers[0].get();
  db::CoordinatorOptions options;
  options.shard_deadline = milliseconds{10};
  db::Coordinator coord(session, std::move(workers), options);

  // Worker 0 straggles far past the deadline on every shard; its two
  // primaries (round-robin shards 0 and 2) re-issue to worker 1's replica
  // and the first result wins — results stay byte-identical.
  w0->set_faults({.delay = milliseconds{200}});
  const auto before = world.db.exec_stats();
  const db::QueryResult via = coord.execute(kUnionStatement, union_params());
  const auto after = world.db.exec_stats();

  EXPECT_EQ(render_rows(via), plain);
  EXPECT_EQ(after.straggler_reissues - before.straggler_reissues, 2u);
  EXPECT_EQ(after.worker_failures - before.worker_failures, 0u);
  EXPECT_EQ(after.shards_dispatched - before.shards_dispatched, 4u);
  w0->set_faults({});
}

// ---------------------------------------------------------------------------
// Backend differential over the fleet world

TEST(Distributed, FleetSuiteByteIdenticalAcrossWorkerCounts) {
  const FleetWorld world(5, 48);
  db::Database reference_db;
  world.populate(reference_db, 8);
  const std::string reference =
      evaluate_fleet_suite(world, reference_db, "sql-whole-condition");

  for (const std::size_t workers : {1u, 2u, 8u}) {
    db::Database database;
    world.populate(database, 8);
    cosy::EvalStats stats;
    EXPECT_EQ(evaluate_fleet_suite(world, database, "sql-distributed", workers,
                                   nullptr, db::ConnectionProfile::in_memory(),
                                   &stats),
              reference)
        << workers << " workers";
    EXPECT_EQ(stats.whole_fallbacks, 0u) << workers << " workers";
    // The statements really scattered: every context's part<K> CTEs were
    // dispatched as shard tasks.
    EXPECT_GT(database.exec_stats().shards_dispatched, 0u)
        << workers << " workers";
  }
}

TEST(Distributed, FleetSuiteByteIdenticalWithRemoteWorkerFleet) {
  const FleetWorld world(4, 40);
  db::Database reference_db;
  world.populate(reference_db, 4);
  const std::string reference =
      evaluate_fleet_suite(world, reference_db, "sql-whole-condition");

  // A distributed session profile makes the backend build modelled-remote
  // workers: every shard round-trips through SQL text + sliced params on a
  // per-worker Connection. Values are exact, so reports stay byte-identical.
  db::Database database;
  world.populate(database, 4);
  EXPECT_EQ(evaluate_fleet_suite(world, database, "sql-distributed", 2,
                                 nullptr, db::ConnectionProfile::postgres()),
            reference);
  EXPECT_GT(database.exec_stats().shards_dispatched, 0u);
}

TEST(Distributed, FleetSuiteRecoversFromInjectedWorkerFailure) {
  const FleetWorld world(4, 40);
  db::Database reference_db;
  world.populate(reference_db, 8);
  const std::string reference =
      evaluate_fleet_suite(world, reference_db, "sql-whole-condition");

  db::Database database;
  world.populate(database, 8);
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  db::ReplicaSet replicas(database, 2);
  auto workers = db::make_workers(replicas, conn.profile());
  db::Worker* w0 = workers[0].get();
  db::Coordinator coord(conn, std::move(workers));
  w0->set_faults({.fail_first = 2});

  cosy::EvalStats stats;
  EXPECT_EQ(evaluate_fleet_suite(world, database, "sql-distributed", 0, &coord,
                                 db::ConnectionProfile::in_memory(), &stats),
            reference);
  const auto exec = database.exec_stats();
  EXPECT_EQ(exec.worker_failures, 2u);
  EXPECT_EQ(exec.shard_retries, 2u);
  EXPECT_EQ(stats.whole_fallbacks, 0u);
}

TEST(Distributed, FleetSuiteByteIdenticalUnderStragglerReissue) {
  const FleetWorld world(3, 32);
  db::Database reference_db;
  world.populate(reference_db, 4);
  const std::string reference =
      evaluate_fleet_suite(world, reference_db, "sql-whole-condition");

  db::Database database;
  world.populate(database, 4);
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  db::ReplicaSet replicas(database, 2);
  auto workers = db::make_workers(replicas, conn.profile());
  db::Worker* w0 = workers[0].get();
  db::CoordinatorOptions options;
  options.shard_deadline = milliseconds{5};
  db::Coordinator coord(conn, std::move(workers), options);
  // Straggle only the first statement's shards, then run clean: re-issue
  // must be observable without stretching the suite's wall time.
  w0->set_faults({.delay = milliseconds{100}});

  const asl::PropertyInfo* load = world.model.find_property("FleetLoad");
  ASSERT_NE(load, nullptr);
  cosy::SqlEvaluator eval(world.model, conn,
                          cosy::SqlEvalMode::kWholeCondition);
  eval.set_coordinator(&coord);
  const std::string slow = render_result(eval.evaluate_property(
      *load, {asl::RtValue::of_object(world.fleets[0])}));
  EXPECT_GT(database.exec_stats().straggler_reissues, 0u);
  w0->set_faults({});

  // Same evaluator, faults cleared: the rest of the sweep through the
  // injected coordinator still matches the reference byte for byte.
  EXPECT_EQ(evaluate_fleet_suite(world, database, "sql-distributed", 0, &coord),
            reference);
  // The straggled evaluation itself matched its slice of the reference.
  db::Database clean_db;
  world.populate(clean_db, 4);
  db::Connection clean_conn(clean_db, db::ConnectionProfile::in_memory());
  cosy::SqlEvaluator clean(world.model, clean_conn,
                           cosy::SqlEvalMode::kWholeCondition);
  EXPECT_EQ(slow, render_result(clean.evaluate_property(
                      *load, {asl::RtValue::of_object(world.fleets[0])})));
}

// ---------------------------------------------------------------------------
// Full COSY differential: all 13 properties through the analyzer

TEST(Distributed, CosySuiteByteIdenticalAcrossWorkerCountsAndLayouts) {
  ASSERT_EQ(cosy::load_cosy_model().properties().size(), 13u);
  TwinWorld world(perf::workloads::imbalanced_ocean(), {1, 4, 16});
  world.partitioned.set_scan_config({.threads = 4, .min_parallel_rows = 1});

  const std::string reference =
      render_exact(analyze(world, world.flat, "sql-whole-condition", 0));
  for (db::Database* database : {&world.flat, &world.partitioned}) {
    for (const std::size_t workers : {1u, 2u, 8u}) {
      EXPECT_EQ(render_exact(analyze(world, *database, "sql-distributed",
                                     workers)),
                reference)
          << (database == &world.flat ? "flat" : "partitioned") << " @ "
          << workers << " workers";
    }
  }
}

// ---------------------------------------------------------------------------
// Replica staleness: version-checked refresh before scatter

TEST(Distributed, ReplicaSetDetectsStalenessAndRefreshesIncrementally) {
  MicroWorld world;
  db::ReplicaSet replicas(world.db, 2);
  EXPECT_FALSE(replicas.replica_stale(0));
  EXPECT_EQ(replicas.refresh(0), 0u);  // refreshing a fresh replica is a no-op

  // New ingest lands in exactly one partition -> exactly one partition
  // re-copies on refresh; the other replica stays independently stale.
  world.db.execute("INSERT INTO M VALUES (3, 9.5)");
  EXPECT_TRUE(replicas.replica_stale(0));
  EXPECT_TRUE(replicas.replica_stale(1));
  EXPECT_EQ(replicas.refresh(0), 1u);
  EXPECT_FALSE(replicas.replica_stale(0));
  EXPECT_TRUE(replicas.replica_stale(1));

  // The refreshed replica streams byte-for-byte the source's live rows.
  const char* scan = "SELECT k, v FROM M";
  EXPECT_EQ(render_rows(replicas.replica(0).execute(scan)),
            render_rows(world.db.execute(scan)));
}

TEST(Distributed, CoordinatorRefreshesStaleReplicasBeforeScatter) {
  MicroWorld world;
  db::Connection session(world.db, db::ConnectionProfile::in_memory());
  db::ReplicaSet replicas(world.db, 2);
  db::Coordinator coord(session, db::make_workers(replicas, session.profile()));
  coord.attach_replicas(&replicas);

  // Fresh fleet: scatter with no refresh traffic.
  const auto s0 = world.db.exec_stats();
  (void)coord.execute(kUnionStatement, union_params());
  const auto s1 = world.db.exec_stats();
  EXPECT_EQ(s1.replica_refreshes - s0.replica_refreshes, 0u);
  EXPECT_EQ(s1.shards_dispatched - s0.shards_dispatched, 4u);

  // Ingest after fleet construction: both replicas are behind. The next
  // statement version-checks, re-copies the one dirty partition on each
  // replica, and the gathered result already includes the new row.
  world.db.execute("INSERT INTO M VALUES (65, 7.5)");
  const std::string plain =
      render_rows(world.db.execute(kUnionStatement, union_params()));
  const db::QueryResult via = coord.execute(kUnionStatement, union_params());
  const auto s2 = world.db.exec_stats();
  EXPECT_EQ(render_rows(via), plain);
  EXPECT_EQ(s2.replica_refreshes - s1.replica_refreshes, 2u);
  EXPECT_EQ(s2.shards_dispatched - s1.shards_dispatched, 4u);

  // Refreshed fleet: the next statement pays nothing again.
  (void)coord.execute(kUnionStatement, union_params());
  EXPECT_EQ(world.db.exec_stats().replica_refreshes - s2.replica_refreshes,
            0u);
}

TEST(Distributed, CoordinatorDeclinesToScatterWhenRefreshDisabled) {
  MicroWorld world;
  db::Connection session(world.db, db::ConnectionProfile::in_memory());
  db::ReplicaSet replicas(world.db, 2);
  db::CoordinatorOptions options;
  options.refresh_stale_replicas = false;
  db::Coordinator coord(session, db::make_workers(replicas, session.profile()),
                        options);
  coord.attach_replicas(&replicas);

  world.db.execute("INSERT INTO M VALUES (65, 7.5)");
  const std::string plain =
      render_rows(world.db.execute(kUnionStatement, union_params()));
  const auto before = world.db.exec_stats();
  const db::QueryResult via = coord.execute(kUnionStatement, union_params());
  const auto after = world.db.exec_stats();
  // Never a stale read: with refresh disabled the coordinator declines to
  // scatter and runs the statement on the session — no shards, no
  // refreshes, same bytes.
  EXPECT_EQ(render_rows(via), plain);
  EXPECT_EQ(after.shards_dispatched - before.shards_dispatched, 0u);
  EXPECT_EQ(after.replica_refreshes - before.replica_refreshes, 0u);
  EXPECT_TRUE(replicas.replica_stale(0));
}
