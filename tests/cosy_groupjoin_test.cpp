// Grouped-aggregate and hash-join differential: the vectorized hash GROUP
// BY evaluator and the columnar hash equi-join must be invisible in every
// result. Twin tables (row vs columnar storage of the same layout, flat
// and partitioned) must produce byte-identical rows — hexfloat doubles
// included — at every thread count, for grouped statements, HAVING
// filters, NULL group keys, join row streams, and aggregates over joins,
// while the engine counters prove the columnar twins really took the
// kernel paths. (Flat and partitioned layouts scan rows in different
// orders, so double sums legitimately differ in the last ulp *across*
// layouts — the identity promise is per layout, storage-mode- and
// thread-count-invariant.) The analyzer backends ride the same promise
// end to end.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "asl/sema.hpp"
#include "cosy/analyzer.hpp"
#include "cosy/db_import.hpp"
#include "cosy/schema_gen.hpp"
#include "cosy/specs.hpp"
#include "cosy/store_builder.hpp"
#include "db/database.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"
#include "support/str.hpp"

namespace asl = kojak::asl;
namespace cosy = kojak::cosy;
namespace db = kojak::db;
namespace perf = kojak::perf;

namespace {

/// Twin pair of tables for the grouped/join statements: j is the fact side
/// (grouped on owner/tag, joined on member), c the dimension side. NULLs
/// land in every role — group key, join key, aggregated column — so the
/// kernels' NULL lanes are exercised, and the weights are non-dyadic so an
/// accumulation-order difference shows up in the hexfloat rendering
/// immediately. No index on c.id: the equi-join must take the hash branch.
void fill_groupjoin(db::Database& database, std::size_t partitions,
                    bool columnar) {
  const char* storage = columnar ? " STORAGE COLUMNAR" : "";
  if (partitions > 1) {
    database.execute(kojak::support::cat(
        "CREATE TABLE j (owner INTEGER, member INTEGER, t DOUBLE, tag TEXT) "
        "PARTITION BY HASH(member) PARTITIONS ",
        partitions, storage));
    database.execute(kojak::support::cat(
        "CREATE TABLE c (id INTEGER, name TEXT, region INTEGER) "
        "PARTITION BY HASH(id) PARTITIONS ",
        partitions / 2, storage));
  } else {
    database.execute(kojak::support::cat(
        "CREATE TABLE j (owner INTEGER, member INTEGER, t DOUBLE, tag TEXT)",
        storage));
    database.execute(kojak::support::cat(
        "CREATE TABLE c (id INTEGER, name TEXT, region INTEGER)", storage));
  }
  for (int i = 0; i < 400; ++i) {
    const std::string owner =
        i % 13 == 0 ? "NULL" : kojak::support::cat(i % 7);
    const std::string member = i % 11 == 0 ? "NULL" : kojak::support::cat(i);
    const std::string t =
        i % 17 == 0
            ? "NULL"
            : kojak::support::cat(0.37 * static_cast<double>((i * 131) % 97) +
                                  0.01);
    const std::string tag =
        i % 19 == 0 ? "NULL" : kojak::support::cat("'g", i % 5, "'");
    database.execute(kojak::support::cat("INSERT INTO j VALUES (", owner, ", ",
                                         member, ", ", t, ", ", tag, ")"));
  }
  for (int i = 0; i < 64; ++i) {
    const std::string id = i % 9 == 0 ? "NULL" : kojak::support::cat(i * 2);
    const std::string name =
        i % 10 == 0 ? "NULL" : kojak::support::cat("'g", i % 5, "'");
    database.execute(kojak::support::cat("INSERT INTO c VALUES (", id, ", ",
                                         name, ", ", i % 3, ")"));
  }
}

/// Byte-exact multi-row rendering: hexfloat doubles, explicit NULL marker,
/// row and column separators — any ordering or accumulation divergence
/// between twins breaks the string.
std::string render_rows(const db::QueryResult& result) {
  char buffer[64];
  std::string out;
  for (std::size_t r = 0; r < result.row_count(); ++r) {
    for (std::size_t c = 0; c < result.column_count(); ++c) {
      const db::Value& v = result.at(r, c);
      if (v.is_null()) {
        out += "NULL";
      } else if (v.type() == db::ValueType::kDouble) {
        std::snprintf(buffer, sizeof buffer, "%a", v.as_double());
        out += buffer;
      } else if (v.type() == db::ValueType::kString) {
        out += v.as_string();
      } else {
        out += kojak::support::cat(v.as_int());
      }
      out += '|';
    }
    out += '\n';
  }
  return out;
}

/// The statement matrix both twins must agree on. Covers: plain grouped
/// aggregation (and its native group output order — no ORDER BY), every
/// kernel aggregate, WHERE conjuncts the bitmap path supports, HAVING over
/// grouped results, NULL group keys, multi-column keys, a WHERE shape the
/// kernels reject (fallback must agree too), integer- and string-keyed
/// equi-joins (row-stream identity without ORDER BY), an ON clause with an
/// extra conjunct, and aggregation over a join.
std::vector<std::string> groupjoin_statements() {
  return {
      "SELECT owner, COUNT(*), SUM(t), AVG(t), MIN(t), MAX(t) FROM j "
      "GROUP BY owner",
      "SELECT owner, COUNT(t), STDDEV(t) FROM j GROUP BY owner ORDER BY owner",
      "SELECT owner, tag, SUM(t) FROM j GROUP BY owner, tag",
      "SELECT owner, COUNT(*) FROM j WHERE t > 5.0 GROUP BY owner",
      "SELECT owner, SUM(t) FROM j WHERE t > 5.0 GROUP BY owner "
      "HAVING SUM(t) > 100.0",
      "SELECT owner, COUNT(*) FROM j WHERE owner + member > 50 GROUP BY owner",
      "SELECT owner, member, t, region FROM j JOIN c ON j.member = c.id",
      "SELECT tag, region, t FROM j JOIN c ON j.tag = c.name "
      "WHERE region > 0",
      "SELECT owner, t, region FROM j JOIN c "
      "ON j.member = c.id AND c.region > 0",
      "SELECT COUNT(*), SUM(t) FROM j JOIN c ON j.member = c.id",
  };
}

}  // namespace

TEST(GroupJoin, TwinsByteIdenticalAcrossLayoutsAndThreads) {
  db::Database row_flat;
  fill_groupjoin(row_flat, 1, /*columnar=*/false);
  db::Database row_part;
  fill_groupjoin(row_part, 8, /*columnar=*/false);
  db::Database col_flat;
  fill_groupjoin(col_flat, 1, /*columnar=*/true);
  db::Database col_part;
  fill_groupjoin(col_part, 8, /*columnar=*/true);

  struct LayoutPair {
    const char* name;
    db::Database* row;
    db::Database* col;
  };
  const LayoutPair layouts[] = {{"flat", &row_flat, &col_flat},
                                {"partitioned", &row_part, &col_part}};

  for (const std::string& sql : groupjoin_statements()) {
    for (const LayoutPair& layout : layouts) {
      layout.row->set_scan_config({.threads = 1, .min_parallel_rows = 1});
      const std::string reference = render_rows(layout.row->execute(sql));
      EXPECT_FALSE(reference.empty()) << sql;
      for (const std::size_t threads : {1u, 2u, 8u}) {
        for (db::Database* database : {layout.row, layout.col}) {
          database->set_scan_config(
              {.threads = threads, .min_parallel_rows = 1});
          EXPECT_EQ(render_rows(database->execute(sql)), reference)
              << sql << " [" << layout.name << "] @" << threads << " threads";
        }
      }
    }
  }
}

TEST(GroupJoin, CountersProveTheColumnarKernelsRan) {
  db::Database row;
  fill_groupjoin(row, 8, /*columnar=*/false);
  db::Database columnar;
  fill_groupjoin(columnar, 8, /*columnar=*/true);

  const std::string grouped =
      "SELECT owner, COUNT(*), SUM(t) FROM j WHERE t > 5.0 GROUP BY owner";
  const std::string join =
      "SELECT COUNT(*), SUM(t) FROM j JOIN c ON j.member = c.id";

  const auto cb = columnar.exec_stats();
  const std::string grouped_cols = render_rows(columnar.execute(grouped));
  const std::string join_cols = render_rows(columnar.execute(join));
  const auto ca = columnar.exec_stats();
  EXPECT_EQ(ca.grouped_vector_evals - cb.grouped_vector_evals, 1u);
  // 7 owner groups plus the NULL-key group.
  EXPECT_EQ(ca.groups_built - cb.groups_built, 8u);
  EXPECT_EQ(ca.hash_join_builds - cb.hash_join_builds, 1u);
  EXPECT_GT(ca.join_lanes_probed - cb.join_lanes_probed, 0u);

  // The row twins agree on every byte and never touch the kernels.
  const auto rb = row.exec_stats();
  EXPECT_EQ(render_rows(row.execute(grouped)), grouped_cols);
  EXPECT_EQ(render_rows(row.execute(join)), join_cols);
  const auto ra = row.exec_stats();
  EXPECT_EQ(ra.grouped_vector_evals - rb.grouped_vector_evals, 0u);
  EXPECT_EQ(ra.groups_built - rb.groups_built, 0u);
  EXPECT_EQ(ra.hash_join_builds - rb.hash_join_builds, 0u);
  EXPECT_EQ(ra.join_lanes_probed - rb.join_lanes_probed, 0u);
}

// ---------------------------------------------------------------------------
// Analyzer backends over the twin layouts: the full report pipeline (whose
// SQL backends emit grouped and joined statements of their own) must stay
// byte-identical, prose included, now that those statements can route
// through the new kernels.

namespace {

struct QuadWorld {
  asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store{model};
  cosy::StoreHandles handles;
  db::Database row_flat;
  db::Database row_part;
  db::Database col_flat;
  db::Database col_part;

  explicit QuadWorld(const perf::AppSpec& app, std::vector<int> pes,
                     std::uint64_t seed = 1) {
    perf::SimulationOptions options;
    options.seed = seed;
    const perf::ExperimentData data =
        perf::simulate_experiment(app, pes, options);
    handles = cosy::build_store(store, data);
    const auto layout = [](std::size_t partitions, bool columnar) {
      cosy::SchemaOptions schema;
      schema.region_timing_partitions = partitions;
      schema.columnar = columnar;
      return schema;
    };
    cosy::create_schema(row_flat, model, layout(1, false));
    cosy::create_schema(row_part, model, layout(8, false));
    cosy::create_schema(col_flat, model, layout(1, true));
    cosy::create_schema(col_part, model, layout(8, true));
    for (db::Database* database :
         {&row_flat, &row_part, &col_flat, &col_part}) {
      db::Connection conn(*database, db::ConnectionProfile::in_memory());
      cosy::import_store(conn, store);
    }
  }
};

std::string render_exact(const cosy::AnalysisReport& report) {
  std::string out = report.to_table(0);
  for (const cosy::Finding& f : report.not_applicable) {
    out += kojak::support::cat("NA ", f.property, "@", f.context, "!",
                               f.result.note, "\n");
  }
  return out;
}

cosy::AnalysisReport analyze(QuadWorld& world, db::Database& database,
                             const std::string& backend) {
  cosy::AnalyzerConfig config;
  config.backend = backend;
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::Analyzer analyzer(world.model, world.store, world.handles, &conn);
  return analyzer.analyze(2, config);
}

}  // namespace

TEST(GroupJoin, AnalyzerBackendsByteIdenticalAcrossLayouts) {
  QuadWorld world(perf::workloads::imbalanced_ocean(), {1, 4, 16});
  world.row_part.set_scan_config({.threads = 4, .min_parallel_rows = 1});
  world.col_part.set_scan_config({.threads = 4, .min_parallel_rows = 1});

  for (const char* backend : {"interpreter", "sql-pushdown",
                              "sql-whole-condition", "sql-distributed"}) {
    const std::string reference =
        render_exact(analyze(world, world.row_flat, backend));
    EXPECT_FALSE(reference.empty()) << backend;
    for (db::Database* database :
         {&world.col_flat, &world.row_part, &world.col_part}) {
      EXPECT_EQ(render_exact(analyze(world, *database, backend)), reference)
          << backend;
    }
  }
}
