// Randomized differential test of the SQL engine against a hand-rolled
// reference computation: filters, grouped aggregates, joins, and ordering
// over generated data must match naive C++ loops over the same rows.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <optional>

#include "db/database.hpp"
#include "support/rng.hpp"
#include "support/str.hpp"

namespace kdb = kojak::db;
using kdb::Database;
using kdb::QueryResult;
using kdb::Value;
using kojak::support::Rng;

namespace {

struct RowData {
  std::int64_t id;
  std::int64_t k;            // group key 0..6
  std::optional<double> v;   // nullable measure
  std::string tag;           // "t0".."t3"
};

struct Dataset {
  std::vector<RowData> rows;
  Database db;
};

Dataset make_dataset(int seed, int n) {
  Dataset data;
  Rng rng(static_cast<std::uint64_t>(seed));
  data.db.execute(
      "CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v DOUBLE, tag TEXT);"
      "CREATE INDEX idx_t_k ON t (k)");
  for (int i = 0; i < n; ++i) {
    RowData row;
    row.id = i;
    row.k = rng.uniform_int(0, 6);
    if (!rng.chance(0.1)) row.v = std::round(rng.uniform(-50, 50) * 4) / 4.0;
    row.tag = kojak::support::cat("t", rng.uniform_int(0, 3));
    const std::string insert = kojak::support::cat(
        "INSERT INTO t VALUES (", row.id, ", ", row.k, ", ",
        row.v ? kojak::support::format_double(*row.v) : "NULL", ", '", row.tag,
        "')");
    data.db.execute(insert);
    data.rows.push_back(std::move(row));
  }
  return data;
}

}  // namespace

class SqlStress : public ::testing::TestWithParam<int> {};

TEST_P(SqlStress, FilteredAggregatesMatchReference) {
  Dataset data = make_dataset(GetParam(), 400);
  for (int key = 0; key <= 7; ++key) {
    const QueryResult result = data.db.execute(kojak::support::cat(
        "SELECT COUNT(*), COUNT(v), SUM(v), MIN(v), MAX(v) FROM t WHERE k = ",
        key));
    std::int64_t count = 0, non_null = 0;
    double sum = 0;
    std::optional<double> min, max;
    for (const RowData& row : data.rows) {
      if (row.k != key) continue;
      ++count;
      if (!row.v) continue;
      ++non_null;
      sum += *row.v;
      min = min ? std::min(*min, *row.v) : *row.v;
      max = max ? std::max(*max, *row.v) : *row.v;
    }
    EXPECT_EQ(result.at(0, 0).as_int(), count) << "k=" << key;
    EXPECT_EQ(result.at(0, 1).as_int(), non_null);
    if (non_null == 0) {
      EXPECT_TRUE(result.at(0, 2).is_null());
      EXPECT_TRUE(result.at(0, 3).is_null());
    } else {
      EXPECT_NEAR(result.at(0, 2).as_double(), sum, 1e-9);
      EXPECT_DOUBLE_EQ(result.at(0, 3).as_double(), *min);
      EXPECT_DOUBLE_EQ(result.at(0, 4).as_double(), *max);
    }
  }
}

TEST_P(SqlStress, GroupByMatchesReference) {
  Dataset data = make_dataset(GetParam(), 300);
  const QueryResult result = data.db.execute(
      "SELECT k, tag, COUNT(*), AVG(v) FROM t GROUP BY k, tag ORDER BY k, tag");

  struct Acc {
    std::int64_t count = 0;
    double sum = 0;
    std::int64_t non_null = 0;
  };
  std::map<std::pair<std::int64_t, std::string>, Acc> groups;
  for (const RowData& row : data.rows) {
    Acc& acc = groups[{row.k, row.tag}];
    ++acc.count;
    if (row.v) {
      acc.sum += *row.v;
      ++acc.non_null;
    }
  }
  ASSERT_EQ(result.row_count(), groups.size());
  std::size_t r = 0;
  for (const auto& [key, acc] : groups) {
    EXPECT_EQ(result.at(r, 0).as_int(), key.first);
    EXPECT_EQ(result.at(r, 1).as_string(), key.second);
    EXPECT_EQ(result.at(r, 2).as_int(), acc.count);
    if (acc.non_null == 0) {
      EXPECT_TRUE(result.at(r, 3).is_null());
    } else {
      EXPECT_NEAR(result.at(r, 3).as_double(),
                  acc.sum / static_cast<double>(acc.non_null), 1e-9);
    }
    ++r;
  }
}

TEST_P(SqlStress, HavingMatchesReference) {
  Dataset data = make_dataset(GetParam(), 300);
  const QueryResult result = data.db.execute(
      "SELECT k, SUM(v) AS s FROM t GROUP BY k HAVING COUNT(v) >= 10 "
      "ORDER BY k");
  std::map<std::int64_t, std::pair<double, std::int64_t>> groups;
  for (const RowData& row : data.rows) {
    if (!row.v) continue;
    groups[row.k].first += *row.v;
    groups[row.k].second += 1;
  }
  std::vector<std::pair<std::int64_t, double>> expected;
  for (const auto& [k, acc] : groups) {
    if (acc.second >= 10) expected.emplace_back(k, acc.first);
  }
  ASSERT_EQ(result.row_count(), expected.size());
  for (std::size_t r = 0; r < expected.size(); ++r) {
    EXPECT_EQ(result.at(r, 0).as_int(), expected[r].first);
    EXPECT_NEAR(result.at(r, 1).as_double(), expected[r].second, 1e-9);
  }
}

TEST_P(SqlStress, SelfJoinMatchesReference) {
  Dataset data = make_dataset(GetParam(), 120);
  // Pairs (a, b) with equal k and a.id < b.id.
  const QueryResult result = data.db.execute(
      "SELECT a.id, b.id FROM t a JOIN t b ON a.k = b.k WHERE a.id < b.id "
      "ORDER BY 1, 2");
  std::size_t expected = 0;
  for (const RowData& a : data.rows) {
    for (const RowData& b : data.rows) {
      if (a.k == b.k && a.id < b.id) ++expected;
    }
  }
  EXPECT_EQ(result.row_count(), expected);
  for (std::size_t r = 1; r < result.row_count(); ++r) {
    const bool ordered =
        result.at(r - 1, 0).as_int() < result.at(r, 0).as_int() ||
        (result.at(r - 1, 0).as_int() == result.at(r, 0).as_int() &&
         result.at(r - 1, 1).as_int() < result.at(r, 1).as_int());
    EXPECT_TRUE(ordered) << "row " << r;
  }
}

TEST_P(SqlStress, OrderLimitOffsetMatchesReference) {
  Dataset data = make_dataset(GetParam(), 200);
  const QueryResult result = data.db.execute(
      "SELECT id FROM t WHERE v IS NOT NULL ORDER BY v DESC, id LIMIT 17 "
      "OFFSET 5");
  std::vector<const RowData*> sorted;
  for (const RowData& row : data.rows) {
    if (row.v) sorted.push_back(&row);
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const RowData* a, const RowData* b) {
                     if (*a->v != *b->v) return *a->v > *b->v;
                     return a->id < b->id;
                   });
  ASSERT_LE(result.row_count(), 17u);
  for (std::size_t r = 0; r < result.row_count(); ++r) {
    ASSERT_LT(r + 5, sorted.size());
    EXPECT_EQ(result.at(r, 0).as_int(), sorted[r + 5]->id) << "row " << r;
  }
}

TEST_P(SqlStress, StddevMatchesReference) {
  Dataset data = make_dataset(GetParam(), 250);
  const QueryResult result =
      data.db.execute("SELECT STDDEV(v), VARIANCE(v) FROM t");
  std::vector<double> xs;
  for (const RowData& row : data.rows) {
    if (row.v) xs.push_back(*row.v);
  }
  ASSERT_GT(xs.size(), 2u);
  const double mean =
      std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
  double ss = 0;
  for (const double x : xs) ss += (x - mean) * (x - mean);
  const double var = ss / static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(result.at(0, 1).as_double(), var, 1e-6);
  EXPECT_NEAR(result.at(0, 0).as_double(), std::sqrt(var), 1e-6);
}

TEST_P(SqlStress, DeleteThenAggregateStaysConsistent) {
  Dataset data = make_dataset(GetParam(), 200);
  data.db.execute("DELETE FROM t WHERE k = 3 OR v IS NULL");
  std::erase_if(data.rows,
                [](const RowData& row) { return row.k == 3 || !row.v; });
  const QueryResult result = data.db.execute("SELECT COUNT(*), SUM(v) FROM t");
  double sum = 0;
  for (const RowData& row : data.rows) sum += *row.v;
  EXPECT_EQ(result.at(0, 0).as_int(),
            static_cast<std::int64_t>(data.rows.size()));
  EXPECT_NEAR(result.at(0, 1).as_double(), sum, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlStress, ::testing::Range(1, 9));
