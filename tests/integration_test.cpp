// End-to-end scenarios across all libraries: the full COSY pipeline the
// paper's Figure-less §3 describes, including the Apprentice report file as
// the tool interface and the backend cost model.

#include <gtest/gtest.h>

#include "asl/sema.hpp"
#include "cosy/analyzer.hpp"
#include "cosy/db_import.hpp"
#include "cosy/schema_gen.hpp"
#include "cosy/specs.hpp"
#include <functional>

#include "perf/report_io.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"
#include "support/str.hpp"

namespace asl = kojak::asl;
namespace cosy = kojak::cosy;
namespace db = kojak::db;
namespace perf = kojak::perf;

TEST(Integration, FullPipelineThroughReportFile) {
  // 1. Measure (simulate) and write the Apprentice report.
  const perf::AppSpec app = perf::workloads::imbalanced_ocean();
  const perf::ExperimentData measured =
      perf::simulate_experiment(app, {1, 8, 32});
  const std::string report_text = perf::write_report(measured);

  // 2. COSY imports the report file — this is the tool boundary.
  const perf::ExperimentData imported = perf::parse_report(report_text);

  // 3. Populate store + database.
  const asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store(model);
  const cosy::StoreHandles handles = cosy::build_store(store, imported);
  db::Database database;
  cosy::create_schema(database, model);
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::import_store(conn, store);

  // 4. Analyze the largest run via SQL pushdown and check the headline.
  cosy::Analyzer analyzer(model, store, handles, &conn);
  cosy::AnalyzerConfig config;
  config.strategy = cosy::EvalStrategy::kSqlPushdown;
  const cosy::AnalysisReport report = analyzer.analyze(2, config);
  ASSERT_NE(report.bottleneck(), nullptr);
  EXPECT_EQ(report.bottleneck()->property, "SublinearSpeedup");
  EXPECT_EQ(report.bottleneck()->context, "main");
  EXPECT_FALSE(report.tuned());
}

TEST(Integration, CostDecompositionIsConsistent) {
  // MeasuredCost + UnmeasuredCost ~ SublinearSpeedup at the program region
  // (when both cost shares are positive, severities add up to the total).
  const perf::AppSpec app = perf::workloads::imbalanced_ocean();
  const perf::ExperimentData data = perf::simulate_experiment(app, {1, 16});
  const asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store(model);
  const cosy::StoreHandles handles = cosy::build_store(store, data);
  const asl::Interpreter interp(model, store);

  const asl::RtValue main_region =
      asl::RtValue::of_object(handles.regions.at("main"));
  const asl::RtValue run = asl::RtValue::of_object(handles.runs[1]);
  const std::vector<asl::RtValue> args = {main_region, run, main_region};

  const auto total =
      interp.evaluate_property(*model.find_property("SublinearSpeedup"), args);
  const auto measured =
      interp.evaluate_property(*model.find_property("MeasuredCost"), args);
  const auto unmeasured =
      interp.evaluate_property(*model.find_property("UnmeasuredCost"), args);

  ASSERT_TRUE(total.holds());
  ASSERT_TRUE(measured.holds());
  if (unmeasured.holds()) {
    // Measured + unmeasured should not wildly exceed the total: measured
    // overhead also exists in the reference run, so the sum overshoots by
    // exactly the reference run's overhead share.
    EXPECT_GT(measured.severity + unmeasured.severity, total.severity * 0.9);
  }
  EXPECT_LT(total.severity, 1.0);
}

TEST(Integration, SeverityRanksGrowWithScale) {
  // The SublinearSpeedup severity of the imbalanced app grows with PE count.
  const perf::AppSpec app = perf::workloads::imbalanced_ocean();
  const perf::ExperimentData data =
      perf::simulate_experiment(app, {1, 4, 16, 64});
  const asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store(model);
  const cosy::StoreHandles handles = cosy::build_store(store, data);
  cosy::Analyzer analyzer(model, store, handles);

  double previous = 0.0;
  for (std::size_t run = 1; run < handles.runs.size(); ++run) {
    const cosy::AnalysisReport report = analyzer.analyze(run);
    ASSERT_NE(report.bottleneck(), nullptr);
    const double severity = report.bottleneck()->result.severity;
    EXPECT_GT(severity, previous) << "run " << run;
    previous = severity;
  }
}

TEST(Integration, MultipleProgramsInOneStore) {
  const asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store(model);
  const auto ocean = cosy::build_store(
      store,
      perf::simulate_experiment(perf::workloads::imbalanced_ocean(), {1, 8}));
  const auto stencil = cosy::build_store(
      store,
      perf::simulate_experiment(perf::workloads::scalable_stencil(), {1, 8}));

  // Two Program objects coexist; analyses stay independent.
  EXPECT_EQ(store.all_of("Program").size(), 2u);
  cosy::Analyzer ocean_analyzer(model, store, ocean);
  cosy::Analyzer stencil_analyzer(model, store, stencil);
  const auto ocean_report = ocean_analyzer.analyze(1);
  const auto stencil_report = stencil_analyzer.analyze(1);
  EXPECT_EQ(ocean_report.program, "ocean_sim");
  EXPECT_EQ(stencil_report.program, "stencil2d");
  ASSERT_NE(ocean_report.bottleneck(), nullptr);
  if (stencil_report.bottleneck() != nullptr) {
    EXPECT_GT(ocean_report.bottleneck()->result.severity,
              stencil_report.bottleneck()->result.severity);
  }
}

TEST(Integration, RetargetingWithUserProperty) {
  // The paper's retargetability claim: a new bottleneck class lands in the
  // tool by *editing the specification*, with zero analyzer changes.
  const std::string custom_property = R"(
Property ReductionHeavy(Region r, TestRun t, Region Basis) {
  LET float Red = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t
      AND tt.Type == ReduceMsg)
  IN
  CONDITION: Red > 0;
  CONFIDENCE: 0.9;
  SEVERITY: Red / Duration(Basis, t);
};
)";
  const asl::Model model = asl::load_model({cosy::cosy_model_source(),
                                            cosy::cosy_properties_source(),
                                            custom_property});
  EXPECT_EQ(model.properties().size(), 6u);

  asl::ObjectStore store(model);
  const cosy::StoreHandles handles = cosy::build_store(
      store,
      perf::simulate_experiment(perf::workloads::imbalanced_ocean(), {1, 16}));
  cosy::Analyzer analyzer(model, store, handles);
  const cosy::AnalysisReport report = analyzer.analyze(1);
  bool found = false;
  for (const cosy::Finding& finding : report.findings) {
    if (finding.property == "ReductionHeavy" &&
        finding.context == "main.time_loop.energy_check") {
      found = true;
      EXPECT_DOUBLE_EQ(finding.result.confidence, 0.9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Integration, BackendProfilesPreserveResults) {
  // The cost model changes the virtual clock, never the data.
  const perf::ExperimentData data =
      perf::simulate_experiment(perf::workloads::serial_bottleneck(), {1, 8});
  const asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store(model);
  const cosy::StoreHandles handles = cosy::build_store(store, data);

  std::vector<std::string> bottlenecks;
  for (const db::ConnectionProfile& profile :
       db::ConnectionProfile::all_paper_profiles()) {
    db::Database database;
    cosy::create_schema(database, model);
    db::Connection conn(database, profile);
    cosy::import_store(conn, store);
    cosy::Analyzer analyzer(model, store, handles, &conn);
    cosy::AnalyzerConfig config;
    config.strategy = cosy::EvalStrategy::kSqlPushdown;
    const cosy::AnalysisReport report = analyzer.analyze(1, config);
    ASSERT_NE(report.bottleneck(), nullptr) << profile.name;
    bottlenecks.push_back(kojak::support::cat(
        report.bottleneck()->property, "@", report.bottleneck()->context, ":",
        kojak::support::format_double(report.bottleneck()->result.severity, 12)));
  }
  for (std::size_t i = 1; i < bottlenecks.size(); ++i) {
    EXPECT_EQ(bottlenecks[i], bottlenecks[0]);
  }
}

TEST(Integration, ReportFileSurvivesReanalysis) {
  // Write, parse, rebuild, and re-analyze: equal rankings both ways.
  const perf::ExperimentData original =
      perf::simulate_experiment(perf::workloads::message_bound(), {1, 8});
  const perf::ExperimentData reparsed =
      perf::parse_report(perf::write_report(original));

  const asl::Model model = cosy::load_cosy_model();
  std::vector<std::string> rankings;
  for (const perf::ExperimentData* data : {&original, &reparsed}) {
    asl::ObjectStore store(model);
    const cosy::StoreHandles handles = cosy::build_store(store, *data);
    cosy::Analyzer analyzer(model, store, handles);
    const cosy::AnalysisReport report = analyzer.analyze(1);
    std::string ranking;
    for (const cosy::Finding& finding : report.findings) {
      ranking += kojak::support::cat(finding.property, "@", finding.context,
                                     ";");
    }
    rankings.push_back(std::move(ranking));
  }
  EXPECT_EQ(rankings[0], rankings[1]);
}

TEST(Integration, MultipleVersionsOfOneProgram) {
  // The paper §3: "The database includes multiple applications with
  // different versions and multiple test runs per program version." Model a
  // tuning step: version 2 removes most of the imbalance, and the analysis
  // of the same run size shows a smaller bottleneck severity.
  const asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store(model);

  perf::AppSpec before = perf::workloads::imbalanced_ocean();
  perf::AppSpec after = before;
  for (auto& fn : after.functions) {
    const std::function<void(perf::RegionSpec&)> tune =
        [&](perf::RegionSpec& region) {
          region.imbalance *= 0.2;  // the fix the programmer applied
          for (auto& child : region.children) tune(child);
        };
    tune(fn.body);
  }
  // Distinct region names per version keep the store unambiguous (the
  // simulator requires unique names; versions are separate structures).
  perf::ExperimentData v1 = perf::simulate_experiment(before, {1, 32});
  perf::ExperimentData v2 = perf::simulate_experiment(after, {1, 32});
  v2.structure.compilation_time = v1.structure.compilation_time + 7200;

  const cosy::StoreHandles h1 = cosy::build_store(store, v1);
  // Second version of the same program: same name, later compilation.
  const cosy::StoreHandles h2 = [&] {
    // Rename regions to keep handle keys distinct within this test.
    return cosy::build_store(store, v2);
  }();

  EXPECT_EQ(store.all_of("Program").size(), 2u);  // one Program object each
  cosy::Analyzer a1(model, store, h1);
  cosy::Analyzer a2(model, store, h2);
  const auto r1 = a1.analyze(1);
  const auto r2 = a2.analyze(1);
  ASSERT_NE(r1.bottleneck(), nullptr);
  ASSERT_NE(r2.bottleneck(), nullptr);
  // The tuned version's total cost shrinks.
  EXPECT_LT(r2.bottleneck()->result.severity, r1.bottleneck()->result.severity);
}
