// The batch analysis engine and the compiled-plan cache: parallel multi-run
// evaluation must be byte-identical to the sequential per-run loop (for any
// thread count), and the plan cache must trade repeated property->SQL
// translation for cache hits without changing a single finding.

#include <gtest/gtest.h>

#include "asl/sema.hpp"
#include "cosy/analyzer.hpp"
#include "cosy/batch.hpp"
#include "cosy/db_import.hpp"
#include "cosy/schema_gen.hpp"
#include "cosy/specs.hpp"
#include "cosy/sql_eval.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace asl = kojak::asl;
namespace cosy = kojak::cosy;
namespace db = kojak::db;
namespace perf = kojak::perf;

namespace {

struct World {
  asl::Model model = cosy::load_cosy_model();
  asl::ObjectStore store{model};
  cosy::StoreHandles handles;
  db::Database database;

  explicit World(std::vector<int> pes = {1, 4, 16}) {
    const perf::ExperimentData data =
        perf::simulate_experiment(perf::workloads::imbalanced_ocean(), pes);
    handles = cosy::build_store(store, data);
    cosy::create_schema(database, model);
    db::Connection import_conn(database, db::ConnectionProfile::in_memory());
    cosy::import_store(import_conn, store);
  }
};

/// Byte-exact serialization of everything a report says.
std::string render(const cosy::AnalysisReport& report) {
  std::string out = report.to_table(1000);
  for (const cosy::Finding& f : report.not_applicable) {
    out += kojak::support::cat(f.property, "@", f.context, "!", f.result.note,
                               "\n");
  }
  return out;
}

std::string render(const cosy::BatchResult& result) {
  std::string out;
  for (const cosy::BatchItem& item : result.items) {
    out += kojak::support::cat("[", item.suite, "/", item.run_index, "]\n",
                               render(item.report));
  }
  // The analytical part of the summary (worst contexts, regressions) must
  // be deterministic too; engine telemetry (wall ms, session counts) is not
  // part of the contract.
  for (const auto& w : result.summary.worst) {
    out += kojak::support::cat("W ", w.suite, " ", w.property, "@", w.context,
                               " run=", w.run_index, " pe=", w.pe_count, " s=",
                               kojak::support::format_double(w.severity), "\n");
  }
  for (const auto& r : result.summary.regressions) {
    out += kojak::support::cat("R ", r.suite, " ", r.property, "@", r.context,
                               " ", r.from_run, "->", r.to_run, " ",
                               kojak::support::format_double(r.severity_before),
                               "->",
                               kojak::support::format_double(r.severity_after),
                               "\n");
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Plan cache

TEST(PlanCache, CachedAnalysisIsIdenticalAndHits) {
  World world;
  db::Connection conn(world.database, db::ConnectionProfile::in_memory());
  cosy::Analyzer analyzer(world.model, world.store, world.handles, &conn);

  cosy::AnalyzerConfig plain;
  plain.strategy = cosy::EvalStrategy::kSqlPushdown;
  const cosy::AnalysisReport base = analyzer.analyze(2, plain);
  EXPECT_EQ(base.plan_cache_hits, 0u);
  EXPECT_EQ(base.plan_cache_misses, 0u);

  cosy::PlanCache cache(world.model);
  cosy::AnalyzerConfig cached = plain;
  cached.plan_cache = &cache;
  const cosy::AnalysisReport first = analyzer.analyze(2, cached);

  // Same findings, byte for byte; every property's translation ran once
  // (misses == distinct plans), everything else was a hit.
  EXPECT_EQ(render(base), render(first));
  EXPECT_GT(first.plan_cache_hits, 0u);
  EXPECT_GT(first.plan_cache_misses, 0u);
  EXPECT_EQ(first.plan_cache_misses, cache.size());
  EXPECT_GT(first.plan_cache_hits, first.plan_cache_misses);

  // A second run over warm plans translates nothing at all.
  const cosy::AnalysisReport second = analyzer.analyze(1, cached);
  EXPECT_EQ(second.plan_cache_misses, 0u);
  EXPECT_GT(second.plan_cache_hits, 0u);
  EXPECT_EQ(render(analyzer.analyze(1, plain)), render(second));
  EXPECT_GT(cache.stats().hit_rate(), 0.5);
}

TEST(PlanCache, ClientFetchModeCachesToo) {
  World world;
  db::Connection conn(world.database, db::ConnectionProfile::in_memory());
  cosy::Analyzer analyzer(world.model, world.store, world.handles, &conn);

  cosy::PlanCache cache(world.model);
  cosy::AnalyzerConfig plain;
  plain.strategy = cosy::EvalStrategy::kClientFetch;
  cosy::AnalyzerConfig cached = plain;
  cached.plan_cache = &cache;
  EXPECT_EQ(render(analyzer.analyze(1, plain)),
            render(analyzer.analyze(1, cached)));
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(PlanCache, RejectsForeignModel) {
  World world;
  db::Connection conn(world.database, db::ConnectionProfile::in_memory());
  // A cache built against a structurally different model must not be
  // attachable: its plans point into another AST.
  const asl::Model other = asl::load_model({"class Lone { int X; }"});
  cosy::PlanCache foreign(other);
  EXPECT_THROW(
      cosy::SqlEvaluator(world.model, conn, cosy::SqlEvalMode::kPushdown,
                         &foreign),
      kojak::support::EvalError);
}

TEST(PlanCache, RejectsReloadedModelInstance) {
  // Even a model reloaded from the same documents is rejected: equal
  // fingerprint, but the cached plans point into the *other* instance's
  // AST — accepting it would be a use-after-free waiting to happen.
  World world;
  db::Connection conn(world.database, db::ConnectionProfile::in_memory());
  const asl::Model reloaded = cosy::load_cosy_model();
  ASSERT_EQ(world.model.fingerprint(), reloaded.fingerprint());
  cosy::PlanCache stale(reloaded);
  EXPECT_THROW(
      cosy::SqlEvaluator(world.model, conn, cosy::SqlEvalMode::kPushdown,
                         &stale),
      kojak::support::EvalError);
}

TEST(PlanCache, LruCapBoundsResidentPlansWithoutChangingResults) {
  // The unbounded-growth guard for long batch campaigns: a capped cache
  // never holds more than `max_plans` translations, evicts least-recently
  // used, reports evictions in its stats — and none of it may change a
  // single finding.
  World world;
  db::Connection conn(world.database, db::ConnectionProfile::in_memory());
  cosy::Analyzer analyzer(world.model, world.store, world.handles, &conn);

  cosy::AnalyzerConfig plain;
  plain.strategy = cosy::EvalStrategy::kSqlPushdown;
  const std::string reference = render(analyzer.analyze(2, plain));

  cosy::PlanCache unbounded(world.model);
  cosy::AnalyzerConfig warm = plain;
  warm.plan_cache = &unbounded;
  (void)analyzer.analyze(2, warm);
  const std::size_t full_size = unbounded.size();
  ASSERT_GT(full_size, 4u);
  EXPECT_EQ(unbounded.capacity(), 0u);
  EXPECT_EQ(unbounded.stats().evictions, 0u);

  cosy::PlanCache capped(world.model, /*max_plans=*/4);
  EXPECT_EQ(capped.capacity(), 4u);
  cosy::AnalyzerConfig capped_config = plain;
  capped_config.plan_cache = &capped;
  EXPECT_EQ(reference, render(analyzer.analyze(2, capped_config)));
  EXPECT_LE(capped.size(), 4u);
  const cosy::PlanCache::Stats stats = capped.stats();
  EXPECT_GT(stats.evictions, 0u);
  // Conservation: every compiled plan is either resident or was evicted.
  EXPECT_EQ(stats.misses, capped.size() + stats.evictions);

  // A second pass still answers identically (recompiling evicted sites) and
  // stays within the cap.
  EXPECT_EQ(reference, render(analyzer.analyze(2, capped_config)));
  EXPECT_LE(capped.size(), 4u);
  EXPECT_GT(capped.stats().evictions, stats.evictions);
}

TEST(PlanCache, LruEvictsColdestFirst) {
  // Direct LRU-order pin on the whole-condition path: with a cap of one,
  // alternating two properties recompiles every time; with room for both,
  // nothing is ever evicted.
  World world;
  db::Connection conn(world.database, db::ConnectionProfile::in_memory());

  const asl::PropertyInfo* a = world.model.find_property("SyncCost");
  const asl::PropertyInfo* b = world.model.find_property("MeasuredCost");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  const asl::ObjectId region = world.handles.regions.begin()->second;
  const std::vector<asl::RtValue> args = {
      asl::RtValue::of_object(region),
      asl::RtValue::of_object(world.handles.runs[0]),
      asl::RtValue::of_object(region)};

  cosy::PlanCache tiny(world.model, /*max_plans=*/1);
  cosy::SqlEvaluator eval(world.model, conn,
                          cosy::SqlEvalMode::kWholeCondition, &tiny);
  (void)eval.evaluate_property(*a, args);
  (void)eval.evaluate_property(*b, args);  // evicts a's plan
  (void)eval.evaluate_property(*a, args);  // recompiles, evicts b's plan
  EXPECT_EQ(tiny.size(), 1u);
  EXPECT_EQ(tiny.stats().evictions, 2u);
  EXPECT_EQ(tiny.stats().hits, 0u);

  // The eviction churn must not pin dead plan generations in the
  // evaluator's prepared-statement map: alternating two properties under a
  // cap of one keeps the resident statement count flat instead of growing
  // by one per recompile.
  for (int i = 0; i < 4; ++i) {
    (void)eval.evaluate_property(*b, args);
    (void)eval.evaluate_property(*a, args);
  }
  EXPECT_LE(eval.statements_resident(), 2u);

  cosy::PlanCache roomy(world.model, /*max_plans=*/2);
  cosy::SqlEvaluator eval2(world.model, conn,
                           cosy::SqlEvalMode::kWholeCondition, &roomy);
  (void)eval2.evaluate_property(*a, args);
  (void)eval2.evaluate_property(*b, args);
  (void)eval2.evaluate_property(*a, args);
  EXPECT_EQ(roomy.size(), 2u);
  EXPECT_EQ(roomy.stats().evictions, 0u);
  EXPECT_EQ(roomy.stats().hits, 1u);
}

TEST(PlanCache, FingerprintTracksSpecContent) {
  const asl::Model a = cosy::load_cosy_model();
  const asl::Model b = cosy::load_cosy_model();
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  const asl::Model c = cosy::load_cosy_model(/*extended=*/false);
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

// ---------------------------------------------------------------------------
// Batch engine

TEST(BatchAnalyzer, MatchesSequentialLoopByteForByte) {
  World world;
  db::Connection conn(world.database, db::ConnectionProfile::in_memory());
  cosy::Analyzer sequential(world.model, world.store, world.handles, &conn);
  cosy::AnalyzerConfig seq_config;
  seq_config.strategy = cosy::EvalStrategy::kSqlPushdown;

  db::ConnectionPool pool(world.database, db::ConnectionProfile::in_memory(),
                          4);
  cosy::BatchAnalyzer batch(world.model, world.store, world.handles, &pool);
  cosy::BatchConfig config;
  config.threads = 4;
  const cosy::BatchResult result = batch.analyze_all(config);

  ASSERT_EQ(result.items.size(), world.handles.runs.size());
  for (std::size_t run = 0; run < world.handles.runs.size(); ++run) {
    EXPECT_EQ(result.items[run].run_index, run);
    EXPECT_EQ(render(sequential.analyze(run, seq_config)),
              render(result.items[run].report))
        << "run " << run;
  }
  EXPECT_GT(result.summary.plan_cache_hits, 0u);
  EXPECT_GT(result.summary.plan_cache_hit_rate(), 0.5);
}

TEST(BatchAnalyzer, DeterministicAcrossThreadCounts) {
  World world;
  std::string reference;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    db::ConnectionPool pool(world.database, db::ConnectionProfile::postgres(),
                            threads);
    cosy::BatchAnalyzer batch(world.model, world.store, world.handles, &pool);
    cosy::BatchConfig config;
    config.threads = threads;
    const cosy::BatchResult result = batch.analyze_all(config);
    const std::string rendered = render(result);
    if (reference.empty()) {
      reference = rendered;
    } else {
      EXPECT_EQ(reference, rendered) << "threads=" << threads;
    }
  }
}

TEST(BatchAnalyzer, RunsTimesSuitesGrid) {
  World world;
  db::ConnectionPool pool(world.database, db::ConnectionProfile::in_memory(),
                          2);
  cosy::BatchAnalyzer batch(world.model, world.store, world.handles, &pool);

  const std::vector<cosy::PropertySuite> suites = {
      {"paper",
       {"SublinearSpeedup", "MeasuredCost", "UnmeasuredCost", "SyncCost",
        "LoadImbalance"}},
      {"communication", {"MessagePassingCost", "CollectiveCost"}},
  };
  const std::vector<std::size_t> runs = {1, 2};
  cosy::BatchConfig config;
  config.threads = 2;
  const cosy::BatchResult result = batch.analyze_runs(runs, suites, config);

  ASSERT_EQ(result.items.size(), 4u);  // 2 suites x 2 runs
  const cosy::AnalysisReport* paper = result.report_for(1, "paper");
  ASSERT_NE(paper, nullptr);
  const cosy::AnalysisReport* comm = result.report_for(1, "communication");
  ASSERT_NE(comm, nullptr);
  // Suites saw only their own properties.
  for (const cosy::Finding& f : comm->findings) {
    EXPECT_TRUE(f.property == "MessagePassingCost" ||
                f.property == "CollectiveCost")
        << f.property;
  }
  bool paper_has_sls = false;
  for (const cosy::Finding& f : paper->findings) {
    if (f.property == "SublinearSpeedup") paper_has_sls = true;
  }
  EXPECT_TRUE(paper_has_sls);
  EXPECT_EQ(result.report_for(3, "paper"), nullptr);
}

TEST(BatchAnalyzer, UnknownSuitePropertyThrows) {
  World world;
  db::ConnectionPool pool(world.database, db::ConnectionProfile::in_memory(),
                          2);
  cosy::BatchAnalyzer batch(world.model, world.store, world.handles, &pool);
  const std::vector<cosy::PropertySuite> suites = {{"bad", {"NoSuchProp"}}};
  const std::vector<std::size_t> runs = {1};
  EXPECT_THROW((void)batch.analyze_runs(runs, suites, {}),
               kojak::support::EvalError);
}

TEST(BatchAnalyzer, SqlStrategyWithoutPoolThrows) {
  World world;
  cosy::BatchAnalyzer batch(world.model, world.store, world.handles, nullptr);
  EXPECT_THROW((void)batch.analyze_all({}), kojak::support::EvalError);
}

TEST(BatchAnalyzer, InterpreterStrategyNeedsNoPool) {
  World world;
  cosy::BatchAnalyzer batch(world.model, world.store, world.handles, nullptr);
  cosy::BatchConfig config;
  config.strategy = cosy::EvalStrategy::kInterpreter;
  config.threads = 2;
  const cosy::BatchResult result = batch.analyze_all(config);
  EXPECT_EQ(result.items.size(), world.handles.runs.size());
  EXPECT_EQ(result.summary.sql_queries, 0u);
}

TEST(BatchAnalyzer, SummaryFindsScalingRegressions) {
  // The imbalanced app gets worse with PE count: the cross-run summary must
  // say so, and the worst context must be the flagship bottleneck at the
  // largest run.
  World world({1, 4, 16});
  db::ConnectionPool pool(world.database, db::ConnectionProfile::in_memory(),
                          2);
  cosy::BatchAnalyzer batch(world.model, world.store, world.handles, &pool);
  cosy::BatchConfig config;
  config.threads = 2;
  const cosy::BatchResult result = batch.analyze_all(config);

  ASSERT_FALSE(result.summary.worst.empty());
  EXPECT_EQ(result.summary.worst.front().property, "SublinearSpeedup");
  EXPECT_EQ(result.summary.worst.front().context, "main");
  EXPECT_EQ(result.summary.worst.front().run_index, 2u);
  EXPECT_EQ(result.summary.worst.front().pe_count, 16);

  ASSERT_FALSE(result.summary.regressions.empty());
  bool total_cost_regressed = false;
  for (const cosy::Regression& regression : result.summary.regressions) {
    EXPECT_GT(regression.delta(), 0.0);
    if (regression.property == "SublinearSpeedup" &&
        regression.context == "main") {
      total_cost_regressed = true;
    }
  }
  EXPECT_TRUE(total_cost_regressed);

  const std::string table = result.summary.to_table();
  EXPECT_NE(table.find("worst contexts"), std::string::npos);
  EXPECT_NE(table.find("SublinearSpeedup"), std::string::npos);
  EXPECT_NE(table.find("hit rate"), std::string::npos);
}

TEST(BatchAnalyzer, CallerOwnedPlanCachePersistsAcrossBatches) {
  // The ROADMAP follow-up: a long-lived service hands the batch engine its
  // own PlanCache, and every batch reports its traffic on it (as a delta)
  // in the cross-run summary.
  World world;
  cosy::PlanCache cache(world.model);
  db::ConnectionPool pool(world.database, db::ConnectionProfile::in_memory(),
                          2);
  cosy::BatchAnalyzer batch(world.model, world.store, world.handles, &pool);
  cosy::BatchConfig config;
  config.threads = 2;
  config.plan_cache = &cache;

  const cosy::BatchResult first = batch.analyze_all(config);
  EXPECT_GT(first.summary.shared_cache.misses, 0u);
  EXPECT_GT(first.summary.shared_cache.hits, 0u);
  EXPECT_EQ(first.summary.shared_cache_plans, cache.size());
  EXPECT_GT(first.summary.shared_cache.hit_rate(), 0.5);

  // A second batch over the warm cache compiles nothing: the summary's
  // delta semantics make that visible even though the cache's lifetime
  // counters keep growing.
  const cosy::BatchResult second = batch.analyze_all(config);
  EXPECT_EQ(second.summary.shared_cache.misses, 0u);
  EXPECT_GT(second.summary.shared_cache.hits, 0u);
  EXPECT_EQ(second.summary.plan_cache_misses, 0u);
  EXPECT_EQ(second.summary.shared_cache_plans,
            first.summary.shared_cache_plans);
  EXPECT_EQ(render(first), render(second));

  const std::string table = second.summary.to_table();
  EXPECT_NE(table.find("shared plan cache"), std::string::npos);
  EXPECT_NE(table.find("compiled plans resident"), std::string::npos);
}

TEST(BatchAnalyzer, PoolSessionsAreReusedAcrossTasks) {
  World world({1, 2, 4, 8, 16});
  db::ConnectionPool pool(world.database, db::ConnectionProfile::postgres(),
                          2);
  cosy::BatchAnalyzer batch(world.model, world.store, world.handles, &pool);
  cosy::BatchConfig config;
  config.threads = 2;
  const cosy::BatchResult result = batch.analyze_all(config);
  // 5 tasks over 2 sessions: every task acquired, at most 2 sessions exist.
  EXPECT_EQ(result.summary.pool.acquires, 5u);
  EXPECT_LE(result.summary.pooled_connections, 2u);
  EXPECT_GE(result.summary.pool.reuses, 3u);
  // The makespan of two busy sessions beats the serial-equivalent total.
  EXPECT_LT(result.summary.backend_makespan_ms,
            result.summary.backend_total_ms);
}
