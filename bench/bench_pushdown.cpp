// Experiment T3 (paper §5, work distribution): "It is a significant
// advantage to translate the conditions of performance properties entirely
// into SQL queries instead of first accessing the data components and
// evaluating the expressions in the analysis tool."
//
// Sweeps the program size and compares the SQL-pushdown strategy against
// the client-fetch strategy on two axes:
//   * modelled wire time on a distributed backend (what §5 observed), and
//   * real engine time (both strategies do real relational work here).

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

using namespace kojak;

namespace {

struct Scale {
  std::size_t functions;
  std::size_t regions_per_function;
};

const std::vector<Scale>& scales() {
  static const std::vector<Scale> kScales = {{4, 5}, {8, 10}, {16, 20}};
  return kScales;
}

bench::World& world_at(std::size_t index) {
  static std::vector<std::unique_ptr<bench::World>> cache(scales().size());
  if (!cache[index]) {
    const Scale scale = scales()[index];
    cache[index] = std::make_unique<bench::World>(
        perf::workloads::synthetic_scale(scale.functions,
                                         scale.regions_per_function),
        std::vector<int>{1, 16});
  }
  return *cache[index];
}

struct StrategyOutcome {
  double virtual_ms = 0;
  double real_ms = 0;
  std::uint64_t queries = 0;
  std::size_t findings = 0;
};

StrategyOutcome run_strategy(bench::World& world, cosy::EvalStrategy strategy) {
  db::Database database;
  cosy::create_schema(database, world.model);
  {
    db::Connection import_conn(database, db::ConnectionProfile::in_memory());
    cosy::import_store(import_conn, *world.store);
  }
  // Analysis happens over a distributed backend: wire costs count.
  db::Connection conn(database, db::ConnectionProfile::postgres());
  cosy::Analyzer analyzer(world.model, *world.store, world.handles, &conn);
  cosy::AnalyzerConfig config;
  config.strategy = strategy;

  const double v0 = conn.clock().now_ms();
  const auto t0 = std::chrono::steady_clock::now();
  const cosy::AnalysisReport report = analyzer.analyze(1, config);
  const auto t1 = std::chrono::steady_clock::now();

  StrategyOutcome outcome;
  outcome.virtual_ms = conn.clock().now_ms() - v0;
  outcome.real_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  outcome.queries = report.sql_queries;
  outcome.findings = report.findings.size();
  return outcome;
}

void print_summary_table() {
  support::TablePrinter table;
  table.add_column("regions", support::TablePrinter::Align::kRight)
      .add_column("contexts", support::TablePrinter::Align::kRight)
      .add_column("pushdown ms", support::TablePrinter::Align::kRight)
      .add_column("client ms", support::TablePrinter::Align::kRight)
      .add_column("advantage", support::TablePrinter::Align::kRight)
      .add_column("bulk ms", support::TablePrinter::Align::kRight)
      .add_column("push q", support::TablePrinter::Align::kRight)
      .add_column("client q", support::TablePrinter::Align::kRight);
  for (std::size_t i = 0; i < scales().size(); ++i) {
    bench::World& world = world_at(i);
    const StrategyOutcome push =
        run_strategy(world, cosy::EvalStrategy::kSqlPushdown);
    const StrategyOutcome fetch =
        run_strategy(world, cosy::EvalStrategy::kClientFetch);
    const StrategyOutcome bulk =
        run_strategy(world, cosy::EvalStrategy::kBulkFetch);
    cosy::Analyzer analyzer(world.model, *world.store, world.handles);
    table.add_row(
        {std::to_string(world.handles.regions.size()),
         std::to_string(analyzer.context_count()),
         support::format_double(push.virtual_ms, 5),
         support::format_double(fetch.virtual_ms, 5),
         support::format_double(fetch.virtual_ms / push.virtual_ms, 3),
         support::format_double(bulk.virtual_ms, 5),
         std::to_string(push.queries), std::to_string(fetch.queries)});
  }
  std::cout << "\n=== T3: SQL pushdown vs client-side evaluation over a "
               "distributed backend (paper: pushdown is a 'significant "
               "advantage') ===\n"
            << table.render()
            << "(virtual ms = modelled wire/server time on the Postgres "
               "profile. 'client' fetches data components record by record "
               "and evaluates in the tool — the paper's slow path; 'bulk' is "
               "the modern batch variant. All strategies compute identical "
               "findings.)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_summary_table();
  for (std::size_t i = 0; i < scales().size(); ++i) {
    benchmark::RegisterBenchmark(
        support::cat("BM_Pushdown/scale_", scales()[i].functions, "x",
                     scales()[i].regions_per_function).c_str(),
        [i](benchmark::State& state) {
          bench::World& world = world_at(i);
          StrategyOutcome outcome;
          for (auto _ : state) {
            outcome = run_strategy(world, cosy::EvalStrategy::kSqlPushdown);
          }
          state.counters["virtual_ms"] = outcome.virtual_ms;
          state.counters["queries"] = static_cast<double>(outcome.queries);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
    benchmark::RegisterBenchmark(
        support::cat("BM_ClientFetch/scale_", scales()[i].functions, "x",
                     scales()[i].regions_per_function).c_str(),
        [i](benchmark::State& state) {
          bench::World& world = world_at(i);
          StrategyOutcome outcome;
          for (auto _ : state) {
            outcome = run_strategy(world, cosy::EvalStrategy::kClientFetch);
          }
          state.counters["virtual_ms"] = outcome.virtual_ms;
          state.counters["queries"] = static_cast<double>(outcome.queries);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        support::cat("BM_BulkFetch/scale_", scales()[i].functions, "x",
                     scales()[i].regions_per_function).c_str(),
        [i](benchmark::State& state) {
          bench::World& world = world_at(i);
          StrategyOutcome outcome;
          for (auto _ : state) {
            outcome = run_strategy(world, cosy::EvalStrategy::kBulkFetch);
          }
          state.counters["virtual_ms"] = outcome.virtual_ms;
          state.counters["queries"] = static_cast<double>(outcome.queries);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
