// Experiment T3 (paper §5, work distribution): "It is a significant
// advantage to translate the conditions of performance properties entirely
// into SQL queries instead of first accessing the data components and
// evaluating the expressions in the analysis tool."
//
// Sweeps the program size and compares five evaluation backends —
// sql-pushdown, sql-whole-condition-plain (the paper's §6 future work: ONE
// statement per (property, context)), sql-whole-condition (the same with
// common subexpressions hoisted into engine-side CTEs: every shared
// subquery executes once per context and binds its arguments once),
// client-fetch, and bulk-fetch — on two axes:
//   * modelled wire time on distributed backends (Oracle 7 and Postgres,
//     what §5 observed), and
//   * real engine time (all backends do real relational work here).
//
// Under KOJAK_BENCH_SMOKE=1 only the smallest scale runs, but every column
// (including whole-condition) still prints, so CI exercises the whole
// comparison.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>

#include "asl/sema.hpp"
#include "bench_util.hpp"
#include "cosy/eval_backend.hpp"
#include "cosy/sql_eval.hpp"
#include "db/connection_pool.hpp"
#include "db/distributed.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

using namespace kojak;

namespace {

struct Scale {
  std::size_t functions;
  std::size_t regions_per_function;
};

bool smoke_mode() {
  const char* env = std::getenv("KOJAK_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

const std::vector<Scale>& scales() {
  static const std::vector<Scale> kScales = [] {
    std::vector<Scale> all = {{4, 5}, {8, 10}, {16, 20}};
    if (smoke_mode()) all.resize(1);
    return all;
  }();
  return kScales;
}

bench::World& world_at(std::size_t index) {
  static std::vector<std::unique_ptr<bench::World>> cache(scales().size());
  if (!cache[index]) {
    const Scale scale = scales()[index];
    cache[index] = std::make_unique<bench::World>(
        perf::workloads::synthetic_scale(scale.functions,
                                         scale.regions_per_function),
        std::vector<int>{1, 16});
  }
  return *cache[index];
}

struct BackendOutcome {
  double virtual_ms = 0;
  double real_ms = 0;
  std::uint64_t queries = 0;
  std::size_t findings = 0;
};

BackendOutcome run_backend(bench::World& world, const std::string& backend,
                           const db::ConnectionProfile& profile) {
  db::Database database;
  cosy::create_schema(database, world.model);
  {
    db::Connection import_conn(database, db::ConnectionProfile::in_memory());
    cosy::import_store(import_conn, *world.store);
  }
  cosy::PlanCache cache(world.model);
  cosy::AnalyzerConfig config;
  config.backend = backend;
  config.plan_cache = &cache;

  if (backend == "sql-sharded") {
    // The sharded backend leases its own sessions: give it a real pool so
    // the benchmark measures sharded execution, not the serial fallback.
    db::ConnectionPool pool(database, profile, 4);
    cosy::Analyzer analyzer(world.model, *world.store, world.handles,
                            /*conn=*/nullptr, &pool);
    config.threads = 4;
    const double v0 = pool.total_clock_us();
    const auto t0 = std::chrono::steady_clock::now();
    const cosy::AnalysisReport report = analyzer.analyze(1, config);
    const auto t1 = std::chrono::steady_clock::now();
    BackendOutcome outcome;
    outcome.virtual_ms = (pool.total_clock_us() - v0) / 1000.0;
    outcome.real_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    outcome.queries = report.sql_queries;
    outcome.findings = report.findings.size();
    return outcome;
  }

  // Analysis happens over a distributed backend: wire costs count.
  db::Connection conn(database, profile);
  cosy::Analyzer analyzer(world.model, *world.store, world.handles, &conn);

  const double v0 = conn.clock().now_ms();
  const auto t0 = std::chrono::steady_clock::now();
  const cosy::AnalysisReport report = analyzer.analyze(1, config);
  const auto t1 = std::chrono::steady_clock::now();

  BackendOutcome outcome;
  outcome.virtual_ms = conn.clock().now_ms() - v0;
  outcome.real_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  outcome.queries = report.sql_queries;
  outcome.findings = report.findings.size();
  return outcome;
}

void print_summary_table() {
  const std::pair<const char*, db::ConnectionProfile> profiles[] = {
      {"oracle7", db::ConnectionProfile::oracle7()},
      {"postgres", db::ConnectionProfile::postgres()},
  };
  support::TablePrinter table;
  table.add_column("profile")
      .add_column("regions", support::TablePrinter::Align::kRight)
      .add_column("contexts", support::TablePrinter::Align::kRight)
      .add_column("pushdown ms", support::TablePrinter::Align::kRight)
      .add_column("whole ms", support::TablePrinter::Align::kRight)
      .add_column("whole+cse ms", support::TablePrinter::Align::kRight)
      .add_column("dist ms", support::TablePrinter::Align::kRight)
      .add_column("whole gain", support::TablePrinter::Align::kRight)
      .add_column("cse gain", support::TablePrinter::Align::kRight)
      .add_column("client ms", support::TablePrinter::Align::kRight)
      .add_column("bulk ms", support::TablePrinter::Align::kRight)
      .add_column("push q", support::TablePrinter::Align::kRight)
      .add_column("whole q", support::TablePrinter::Align::kRight);
  for (const auto& [profile_name, profile] : profiles) {
    for (std::size_t i = 0; i < scales().size(); ++i) {
      bench::World& world = world_at(i);
      const BackendOutcome push = run_backend(world, "sql-pushdown", profile);
      const BackendOutcome whole =
          run_backend(world, "sql-whole-condition-plain", profile);
      const BackendOutcome cse =
          run_backend(world, "sql-whole-condition", profile);
      const BackendOutcome dist =
          run_backend(world, "sql-distributed", profile);
      const BackendOutcome fetch = run_backend(world, "client-fetch", profile);
      const BackendOutcome bulk = run_backend(world, "bulk-fetch", profile);
      cosy::Analyzer analyzer(world.model, *world.store, world.handles);
      table.add_row(
          {profile_name, std::to_string(world.handles.regions.size()),
           std::to_string(analyzer.context_count()),
           support::format_double(push.virtual_ms, 5),
           support::format_double(whole.virtual_ms, 5),
           support::format_double(cse.virtual_ms, 5),
           support::format_double(dist.virtual_ms, 5),
           support::format_double(push.virtual_ms / whole.virtual_ms, 3),
           support::format_double(whole.virtual_ms / cse.virtual_ms, 3),
           support::format_double(fetch.virtual_ms, 5),
           support::format_double(bulk.virtual_ms, 5),
           std::to_string(push.queries), std::to_string(whole.queries)});
    }
  }
  std::cout << "\n=== T3: evaluation backends over distributed database "
               "profiles (paper §5: pushdown is a 'significant advantage'; "
               "§6: whole-condition compilation cuts each context to ONE "
               "statement; +cse hoists shared subexpressions into WITH CTEs "
               "that execute once and bind once) ===\n"
            << table.render()
            << "('dist' is sql-distributed: the same whole-condition "
               "statements through the coordinator/worker split — COSY's "
               "owner-pinned statements carry no part<K> CTEs, so they fall "
               "through to the session and the column shows the split is "
               "free when nothing scatters; the scatter/gather table below "
               "is where the shards move. 'whole q' equals the context "
               "count: one statement per "
               "(property, context) — the CSE pass keeps that invariant while "
               "cutting bound-parameter wire values and repeated engine-side "
               "scans. 'client' fetches data components record "
               "by record and evaluates in the tool — the paper's slow path; "
               "'bulk' is the modern batch variant. All backends compute "
               "identical findings.)\n\n";
}

// ---------------------------------------------------------------------------
// Partition-union rewrite: whole-set aggregates over a junction partitioned
// by member (one owner's rows spread across every shard) compile into one
// part<K> CTE per partition, materialized in parallel inside ONE statement.
// The flat column is the SAME compiler (whole-condition, CSE on) against the
// single-heap layout, where the rewrite has nothing to do — so the
// union-vs-flat delta the Release CI bench-compare step prints isolates the
// partition-union rewrite alone, not the CSE pass (the T3 table above
// already ablates that separately via sql-whole-condition-plain).

constexpr const char* kUnionSpec = R"(
  class Fleet {
    String Name;
    setof Probe Readings;
  }
  class Probe {
    int Slot;
    float T;
  }

  Property UnionLoad(Fleet f) {
    LET float Total = SUM(p.T WHERE p IN f.Readings);
        float Mean = AVG(p.T WHERE p IN f.Readings);
        int High = MAX(p.Slot WHERE p IN f.Readings);
    IN
    CONDITION: Total > 0;
    CONFIDENCE: 1;
    SEVERITY: Total / (Mean + High);
  };
)";

/// One populated database per (partitions) layout, built once and reused
/// across benchmark iterations (imports dominate otherwise).
struct UnionWorld {
  asl::Model model = asl::load_model({kUnionSpec});
  asl::ObjectStore store{model};
  std::vector<asl::ObjectId> fleets;
  std::map<std::size_t, std::unique_ptr<db::Database>> databases;

  UnionWorld(int fleet_count, int probes_per_fleet) {
    for (int f = 0; f < fleet_count; ++f) {
      const asl::ObjectId fleet = store.create("Fleet");
      store.set_attr(fleet, "Name",
                     asl::RtValue::of_string(support::cat("fleet", f)));
      fleets.push_back(fleet);
      for (int i = 0; i < probes_per_fleet; ++i) {
        const asl::ObjectId probe = store.create("Probe");
        store.set_attr(probe, "Slot", asl::RtValue::of_int(i % 17));
        store.set_attr(probe, "T",
                       asl::RtValue::of_float(0.25 * ((f * 7 + i) % 13) + 0.5));
        store.add_to_set(fleet, "Readings", probe);
      }
    }
  }

  db::Database& database_for(std::size_t partitions) {
    auto& slot = databases[partitions];
    if (!slot) {
      slot = std::make_unique<db::Database>();
      cosy::SchemaOptions options;
      options.junction_partitions.push_back(
          {"Fleet", "Readings", "member", partitions});
      cosy::create_schema(*slot, model, options);
      db::Connection conn(*slot, db::ConnectionProfile::in_memory());
      cosy::import_store(conn, store);
      slot->set_scan_config({.threads = 4, .min_parallel_rows = 1});
    }
    return *slot;
  }
};

UnionWorld& union_world() {
  static UnionWorld world(smoke_mode() ? 2 : 4, smoke_mode() ? 500 : 20000);
  return world;
}

struct UnionOutcome {
  double real_ms = 0;
  std::uint64_t statements = 0;
  std::uint64_t rewrites = 0;
  std::uint64_t parallel_ctes = 0;
};

/// Sweeps UnionLoad over every fleet with a fresh whole-condition (+CSE)
/// evaluator against the given layout; `partitions == 1` is the flat
/// baseline the rewrite never fires on.
UnionOutcome run_union(std::size_t partitions) {
  UnionWorld& world = union_world();
  db::Database& database = world.database_for(partitions);
  db::Connection conn(database, db::ConnectionProfile::in_memory());
  cosy::SqlEvaluator eval(world.model, conn,
                          cosy::SqlEvalMode::kWholeCondition);
  const asl::PropertyInfo* prop = world.model.find_property("UnionLoad");
  const auto before = database.exec_stats();
  const auto t0 = std::chrono::steady_clock::now();
  for (const asl::ObjectId fleet : world.fleets) {
    (void)eval.evaluate_property(*prop, {asl::RtValue::of_object(fleet)});
  }
  const auto t1 = std::chrono::steady_clock::now();
  const auto after = database.exec_stats();
  UnionOutcome outcome;
  outcome.real_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  outcome.statements = eval.queries_issued();
  outcome.rewrites =
      after.partition_union_rewrites - before.partition_union_rewrites;
  outcome.parallel_ctes = after.cte_parallel_materializations -
                          before.cte_parallel_materializations;
  return outcome;
}

void print_union_table() {
  support::TablePrinter table;
  table.add_column("layout")
      .add_column("union ms", support::TablePrinter::Align::kRight)
      .add_column("flat ms", support::TablePrinter::Align::kRight)
      .add_column("union/flat", support::TablePrinter::Align::kRight)
      .add_column("stmts", support::TablePrinter::Align::kRight)
      .add_column("rewrites", support::TablePrinter::Align::kRight)
      .add_column("par CTEs", support::TablePrinter::Align::kRight);
  const UnionOutcome flat = run_union(1);
  for (const std::size_t partitions : {std::size_t{4}, std::size_t{8}}) {
    const UnionOutcome with_union = run_union(partitions);
    table.add_row({support::cat(partitions, " partition(s)"),
                   support::format_double(with_union.real_ms, 4),
                   support::format_double(flat.real_ms, 4),
                   support::format_double(with_union.real_ms / flat.real_ms, 3),
                   std::to_string(with_union.statements),
                   std::to_string(with_union.rewrites),
                   std::to_string(with_union.parallel_ctes)});
  }
  std::cout << "\n=== Partition-union rewrite: whole-set aggregates over a "
               "member-partitioned junction compile to per-partition CTE "
               "unions materialized in parallel inside ONE statement per "
               "(property, context); 'flat' is the SAME compiler on the "
               "single-heap layout, so the ratio isolates the rewrite "
               "(identical findings; the wall-clock win scales with cores — "
               "single-core CI shows counter proof, not speedup) ===\n"
            << table.render() << "\n";
}

// ---------------------------------------------------------------------------
// Distributed scatter/gather: the SAME partition-union statements, with the
// part<K> CTEs scattered as shard tasks to modelled-remote workers (per-shard
// wire cost: statement text + sliced params out, result rows back) instead of
// materializing on the session engine. The gather barrier charges the session
// the slowest worker's delta, so the modelled win over one worker is the
// per-shard wire costs overlapping across the fleet — exactly what
// bench_compare --pair BM_DistributedScatter BM_DistributedSerial prints.

/// Session + replica fleet + coordinator, built once per (partitions,
/// workers) and reused across iterations (replica construction copies the
/// whole database and would otherwise dominate).
struct DistributedRig {
  db::Connection session;
  db::ReplicaSet replicas;
  db::Coordinator coordinator;

  DistributedRig(db::Database& database, std::size_t workers)
      : session(database, db::ConnectionProfile::postgres()),
        replicas(database, workers),
        coordinator(session, db::make_workers(replicas, session.profile())) {}
};

DistributedRig& distributed_rig(std::size_t partitions, std::size_t workers) {
  static std::map<std::pair<std::size_t, std::size_t>,
                  std::unique_ptr<DistributedRig>>
      cache;
  auto& slot = cache[{partitions, workers}];
  if (!slot) {
    slot = std::make_unique<DistributedRig>(
        union_world().database_for(partitions), workers);
  }
  return *slot;
}

struct DistributedOutcome {
  double wire_ms = 0;
  double real_ms = 0;
  std::uint64_t shards = 0;
};

/// Sweeps UnionLoad over every fleet with the coordinator in the loop;
/// `workers == 1` is the serial baseline (one remote worker executes every
/// shard back to back: the same per-shard wire costs with zero overlap).
DistributedOutcome run_distributed(std::size_t partitions,
                                   std::size_t workers) {
  UnionWorld& world = union_world();
  db::Database& database = world.database_for(partitions);
  DistributedRig& rig = distributed_rig(partitions, workers);
  cosy::SqlEvaluator eval(world.model, rig.session,
                          cosy::SqlEvalMode::kWholeCondition);
  eval.set_coordinator(&rig.coordinator);
  const asl::PropertyInfo* prop = world.model.find_property("UnionLoad");
  const auto before = database.exec_stats();
  const double v0 = rig.session.clock().now_ms();
  const auto t0 = std::chrono::steady_clock::now();
  for (const asl::ObjectId fleet : world.fleets) {
    (void)eval.evaluate_property(*prop, {asl::RtValue::of_object(fleet)});
  }
  const auto t1 = std::chrono::steady_clock::now();
  const auto after = database.exec_stats();
  DistributedOutcome outcome;
  outcome.wire_ms = rig.session.clock().now_ms() - v0;
  outcome.real_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  outcome.shards = after.shards_dispatched - before.shards_dispatched;
  return outcome;
}

void print_distributed_table() {
  constexpr std::size_t kPartitions = 8;
  support::TablePrinter table;
  table.add_column("workers")
      .add_column("wire ms", support::TablePrinter::Align::kRight)
      .add_column("vs serial", support::TablePrinter::Align::kRight)
      .add_column("shards", support::TablePrinter::Align::kRight)
      .add_column("real ms", support::TablePrinter::Align::kRight);
  const DistributedOutcome serial = run_distributed(kPartitions, 1);
  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const DistributedOutcome outcome =
        workers == 1 ? serial : run_distributed(kPartitions, workers);
    table.add_row({support::cat(workers, " worker(s)"),
                   support::format_double(outcome.wire_ms, 5),
                   support::format_double(serial.wire_ms / outcome.wire_ms, 3),
                   std::to_string(outcome.shards),
                   support::format_double(outcome.real_ms, 4)});
  }
  std::cout << "\n=== Distributed scatter/gather (8-partition layout, "
               "modelled-remote postgres workers): part<K> CTEs ship as "
               "per-shard statements and the gather barrier charges the "
               "MAKESPAN — the wire-cost win over one worker is per-shard "
               "costs overlapping across the fleet; results are "
               "byte-identical at every width ===\n"
            << table.render() << "\n";
}

void register_distributed_bench(const char* label, std::size_t workers,
                                std::size_t partitions) {
  benchmark::RegisterBenchmark(
      support::cat(label, "/parts_", partitions).c_str(),
      [workers, partitions](benchmark::State& state) {
        DistributedOutcome outcome;
        for (auto _ : state) {
          outcome = run_distributed(partitions, workers);
        }
        state.counters["wire_virtual_ms"] = outcome.wire_ms;
        state.counters["shards"] = static_cast<double>(outcome.shards);
      })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(2);
}

/// `union_layout` selects the partitioned database; the paired flat bench
/// keeps the SAME name suffix but always measures the single-heap layout,
/// so bench_compare --pair diffs the rewrite and nothing else.
void register_union_bench(const char* label, bool union_layout,
                          std::size_t partitions) {
  benchmark::RegisterBenchmark(
      support::cat(label, "/parts_", partitions).c_str(),
      [union_layout, partitions](benchmark::State& state) {
        UnionOutcome outcome;
        for (auto _ : state) {
          outcome = run_union(union_layout ? partitions : 1);
        }
        state.counters["union_rewrites"] =
            static_cast<double>(outcome.rewrites);
        state.counters["parallel_ctes"] =
            static_cast<double>(outcome.parallel_ctes);
        state.counters["statements"] = static_cast<double>(outcome.statements);
      })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(2);
}

void register_backend_bench(const char* label, const std::string& backend,
                            std::size_t scale_index, int iterations) {
  benchmark::RegisterBenchmark(
      support::cat(label, "/scale_", scales()[scale_index].functions, "x",
                   scales()[scale_index].regions_per_function)
          .c_str(),
      [backend, scale_index](benchmark::State& state) {
        bench::World& world = world_at(scale_index);
        BackendOutcome outcome;
        for (auto _ : state) {
          outcome = run_backend(world, backend,
                                db::ConnectionProfile::postgres());
        }
        state.counters["virtual_ms"] = outcome.virtual_ms;
        state.counters["queries"] = static_cast<double>(outcome.queries);
      })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(iterations);
}

}  // namespace

int main(int argc, char** argv) {
  print_summary_table();
  print_union_table();
  print_distributed_table();
  for (const std::size_t partitions : {std::size_t{4}, std::size_t{8}}) {
    register_union_bench("BM_PartitionUnion", /*union_layout=*/true,
                         partitions);
    register_union_bench("BM_PartitionFlat", /*union_layout=*/false,
                         partitions);
    register_distributed_bench("BM_DistributedScatter", /*workers=*/4,
                               partitions);
    register_distributed_bench("BM_DistributedSerial", /*workers=*/1,
                               partitions);
  }
  for (std::size_t i = 0; i < scales().size(); ++i) {
    register_backend_bench("BM_Pushdown", "sql-pushdown", i, 2);
    register_backend_bench("BM_WholeCondition", "sql-whole-condition-plain",
                           i, 2);
    register_backend_bench("BM_WholeConditionCse", "sql-whole-condition", i, 2);
    register_backend_bench("BM_SqlSharded", "sql-sharded", i, 2);
    register_backend_bench("BM_ClientFetch", "client-fetch", i, 1);
    register_backend_bench("BM_BulkFetch", "bulk-fetch", i, 2);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
