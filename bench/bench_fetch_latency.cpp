// Experiment T2 (paper §5, access latency): per-record fetch cost through
// the native driver vs the JDBC-style bridge. Paper shape to reproduce:
// ~1 ms to fetch a record from the Oracle server via JDBC, and the bridge
// being a factor 2-4 slower than C-based access on every backend.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

using namespace kojak;

namespace {

db::Database& shared_db() {
  static std::unique_ptr<db::Database> database = [] {
    bench::World world(perf::workloads::synthetic_scale(8, 8), {1, 8});
    return world.make_database();
  }();
  return *database;
}

/// Fetches every Region row one record at a time (the COSY access pattern
/// for property contexts) and reports virtual us per record.
double fetch_us_per_record(const db::ConnectionProfile& profile,
                           db::DriverKind driver) {
  db::Database& database = shared_db();
  db::Connection conn(database, profile, driver);
  db::PreparedStatement stmt =
      database.prepare("SELECT id, Name, Kind, ParentRegion FROM Region WHERE id = ?");
  const db::QueryResult ids = database.execute("SELECT id FROM Region");
  const double before = conn.clock().now_us();
  std::size_t fetched = 0;
  for (const db::Row& row : ids.rows) {
    const std::vector<db::Value> params = {row[0]};
    const db::QueryResult record = conn.execute(stmt, params);
    fetched += record.row_count();
  }
  return (conn.clock().now_us() - before) / static_cast<double>(fetched);
}

void BM_FetchRecord(benchmark::State& state, db::ConnectionProfile profile,
                    db::DriverKind driver) {
  db::Database& database = shared_db();
  db::PreparedStatement stmt =
      database.prepare("SELECT id, Name, Kind, ParentRegion FROM Region WHERE id = ?");
  db::Connection conn(database, profile, driver);
  std::int64_t id = 0;
  const std::int64_t max_id =
      database.execute("SELECT MAX(id) FROM Region").scalar().as_int();
  for (auto _ : state) {
    const std::vector<db::Value> params = {db::Value::integer(id)};
    benchmark::DoNotOptimize(conn.execute(stmt, params));
    id = (id + 1) % (max_id + 1);
  }
  state.counters["virtual_us_per_record"] =
      fetch_us_per_record(profile, driver);
}

void print_summary_table() {
  support::TablePrinter table;
  table.add_column("backend")
      .add_column("native us/rec", support::TablePrinter::Align::kRight)
      .add_column("bridge us/rec", support::TablePrinter::Align::kRight)
      .add_column("bridge/native", support::TablePrinter::Align::kRight);
  for (const db::ConnectionProfile& profile :
       db::ConnectionProfile::all_paper_profiles()) {
    const double native = fetch_us_per_record(profile, db::DriverKind::kNative);
    const double bridge = fetch_us_per_record(profile, db::DriverKind::kBridge);
    table.add_row({profile.name, support::format_double(native, 4),
                   support::format_double(bridge, 4),
                   support::format_double(bridge / native, 3)});
  }
  std::cout << "\n=== T2: per-record fetch latency, native vs JDBC-style "
               "bridge (paper: ~1 ms/record on Oracle via JDBC; bridge 2-4x "
               "slower) ===\n"
            << table.render() << '\n';
}

void register_benchmarks() {
  for (const db::ConnectionProfile& profile :
       db::ConnectionProfile::all_paper_profiles()) {
    for (const db::DriverKind driver :
         {db::DriverKind::kNative, db::DriverKind::kBridge}) {
      benchmark::RegisterBenchmark(
          support::cat("BM_FetchRecord/", profile.name, "/",
                       to_string(driver)).c_str(),
          [profile, driver](benchmark::State& state) {
            BM_FetchRecord(state, profile, driver);
          })
          ->Unit(benchmark::kMicrosecond)
          ->Iterations(500);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_summary_table();
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
