#ifndef KOJAK_BENCH_BENCH_UTIL_HPP
#define KOJAK_BENCH_BENCH_UTIL_HPP

// Shared fixtures for the experiment benches. Each bench binary reproduces
// one table/figure/claim of the paper (see DESIGN.md experiment index) and
// prints a human-readable table next to the google-benchmark timings;
// EXPERIMENTS.md quotes those tables.

#include <memory>
#include <vector>

#include "cosy/analyzer.hpp"
#include "cosy/db_import.hpp"
#include "cosy/schema_gen.hpp"
#include "cosy/specs.hpp"
#include "cosy/store_builder.hpp"
#include "perf/report_io.hpp"
#include "perf/simulator.hpp"
#include "perf/workloads.hpp"

namespace kojak::bench {

/// One fully-populated COSY world (model + store + handles), built once and
/// shared across benchmark iterations.
struct World {
  asl::Model model;
  std::unique_ptr<asl::ObjectStore> store;
  cosy::StoreHandles handles;
  perf::ExperimentData data;

  World(const perf::AppSpec& app, const std::vector<int>& pes,
        std::uint64_t seed = 1)
      : model(cosy::load_cosy_model()) {
    perf::SimulationOptions options;
    options.seed = seed;
    data = perf::simulate_experiment(app, pes, options);
    store = std::make_unique<asl::ObjectStore>(model);
    handles = cosy::build_store(*store, data);
  }

  /// Creates a database with the generated schema and imports the store.
  [[nodiscard]] std::unique_ptr<db::Database> make_database() const {
    auto database = std::make_unique<db::Database>();
    cosy::create_schema(*database, model);
    db::Connection conn(*database, db::ConnectionProfile::in_memory());
    cosy::import_store(conn, *store);
    return database;
  }
};

}  // namespace kojak::bench

#endif  // KOJAK_BENCH_BENCH_UTIL_HPP
