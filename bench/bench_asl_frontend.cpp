// Experiment F1 (paper Figure 1): the ASL grammar is executable. Parses the
// shipped specification documents (the paper's §4.1 data model and §4.2
// properties plus the extended suite), reports front-end throughput, and
// prints the spec inventory the analyzer is driven by.

#include <benchmark/benchmark.h>

#include <iostream>

#include "asl/lexer.hpp"
#include "asl/parser.hpp"
#include "asl/pretty.hpp"
#include "asl/sema.hpp"
#include "cosy/specs.hpp"
#include "support/str.hpp"

using namespace kojak;

namespace {

std::string full_source() {
  return support::cat(cosy::cosy_model_source(), "\n",
                      cosy::cosy_properties_source(), "\n",
                      cosy::extended_properties_source());
}

void BM_Lex(benchmark::State& state) {
  const std::string source = full_source();
  for (auto _ : state) {
    benchmark::DoNotOptimize(asl::lex_asl(source));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(source.size()));
}

void BM_Parse(benchmark::State& state) {
  const std::string source = full_source();
  for (auto _ : state) {
    benchmark::DoNotOptimize(asl::parse_spec(source));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(source.size()));
}

void BM_ParseAndAnalyze(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(cosy::load_cosy_model());
  }
}

void BM_PrettyPrintRoundTrip(benchmark::State& state) {
  const asl::ast::SpecFile spec = asl::parse_spec_or_throw(full_source());
  for (auto _ : state) {
    benchmark::DoNotOptimize(asl::parse_spec(asl::to_source(spec)));
  }
}

void print_inventory() {
  const asl::Model model = cosy::load_cosy_model();
  std::cout << "\n=== F1: the ASL specification drives the tool (Figure 1 "
               "grammar is executable) ===\n"
            << "spec bytes:     " << full_source().size() << '\n'
            << "classes:        " << model.classes().size() << '\n'
            << "enums:          " << model.enums().size() << " (TimingType: "
            << model.enum_info(*model.find_enum("TimingType")).members.size()
            << " members)\n"
            << "functions:      " << model.functions().size() << '\n'
            << "constants:      " << model.constants().size() << '\n'
            << "properties:     " << model.properties().size() << '\n';
  std::cout << "property names: ";
  for (std::size_t i = 0; i < model.properties().size(); ++i) {
    if (i > 0) std::cout << ", ";
    std::cout << model.properties()[i].name;
  }
  std::cout << "\n\n";
}

}  // namespace

BENCHMARK(BM_Lex)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Parse)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ParseAndAnalyze)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PrettyPrintRoundTrip)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  print_inventory();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
