// Experiment A1 (paper §2, ablation vs related work): the declarative ASL
// analysis against the Paradyn-style fixed search and the EARL-style event
// trace matcher. All three must agree on the bottleneck *class* of the
// flagship workload; the cost axes differ — trace matching scales with the
// event count (PEs x regions x messages), summary-based analysis with the
// region count.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "cosy/baseline/earl.hpp"
#include "cosy/baseline/paradyn.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

using namespace kojak;

namespace {

void print_agreement_table() {
  bench::World world(perf::workloads::imbalanced_ocean(), {1, 32});
  cosy::Analyzer analyzer(world.model, *world.store, world.handles);
  const cosy::AnalysisReport asl_report = analyzer.analyze(1);

  cosy::baseline::ParadynSearch paradyn;
  const auto paradyn_findings = paradyn.search(world.data, 1);

  const auto trace = perf::generate_trace(perf::workloads::imbalanced_ocean(), 32);
  cosy::baseline::EarlAnalyzer earl;
  const auto earl_results = earl.analyze(trace);

  std::cout << "\n=== A1: three detectors, one workload (imbalanced_ocean, "
               "32 PEs) ===\n\n";

  std::cout << "ASL/COSY (declarative spec, severity-ranked):\n";
  for (std::size_t i = 0; i < asl_report.findings.size() && i < 5; ++i) {
    const cosy::Finding& f = asl_report.findings[i];
    std::cout << "  " << i + 1 << ". " << f.property << " @ " << f.context
              << "  severity=" << support::format_double(f.result.severity, 4)
              << '\n';
  }

  std::cout << "\nParadyn baseline (fixed hypothesis set, refinement search):\n";
  for (const auto& finding : paradyn_findings) {
    std::cout << "  " << finding.hypothesis << " @ " << finding.focus
              << "  value=" << support::format_double(finding.value, 3)
              << " depth=" << finding.depth << '\n';
  }

  std::cout << "\nEARL baseline (event patterns over " << trace.size()
            << " trace events):\n";
  for (const auto& result : earl_results) {
    std::cout << "  " << result.pattern << ": " << result.matches
              << " matches, "
              << support::format_double(result.total_ms, 5) << " ms\n";
  }
  std::cout << "\n(The point of the comparison: extending COSY means editing "
               "the ASL spec; extending the baselines means changing tool "
               "code. See DESIGN.md A1.)\n\n";
}

void BM_AslAnalysis(benchmark::State& state) {
  static bench::World world(perf::workloads::imbalanced_ocean(),
                            {1, static_cast<int>(state.range(0))});
  cosy::Analyzer analyzer(world.model, *world.store, world.handles);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(1));
  }
}

void BM_ParadynSearch(benchmark::State& state) {
  const perf::ExperimentData data = perf::simulate_experiment(
      perf::workloads::imbalanced_ocean(), {1, static_cast<int>(state.range(0))});
  cosy::baseline::ParadynSearch search;
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.search(data, 1));
  }
}

void BM_EarlTraceMatching(benchmark::State& state) {
  const auto trace = perf::generate_trace(perf::workloads::imbalanced_ocean(),
                                          static_cast<int>(state.range(0)));
  cosy::baseline::EarlAnalyzer earl;
  std::size_t events = trace.size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(earl.analyze(trace));
  }
  state.counters["events"] = static_cast<double>(events);
}

}  // namespace

BENCHMARK(BM_AslAnalysis)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParadynSearch)->Arg(16)->Unit(benchmark::kMillisecond);
// EARL cost grows with the trace length (PE count drives events here).
BENCHMARK(BM_EarlTraceMatching)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  print_agreement_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
