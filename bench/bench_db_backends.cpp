// Experiment T1 (paper §5, database comparison): insertion of performance
// information into the four backend deployments. The engine executes every
// INSERT for real; the profile layer charges calibrated virtual time for
// wire and server costs. Paper shape to reproduce: MS Access fastest,
// Oracle 7 ~20x slower than Access, MS SQL Server and Postgres ~2x faster
// than Oracle.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

using namespace kojak;

namespace {

const bench::World& world() {
  static bench::World w(perf::workloads::synthetic_scale(12, 10), {1, 8, 16});
  return w;
}

struct ImportOutcome {
  cosy::ImportStats stats;
  double real_ms;
};

ImportOutcome run_import(const db::ConnectionProfile& profile) {
  db::Database database;
  cosy::create_schema(database, world().model);
  db::Connection conn(database, profile);
  const auto start = std::chrono::steady_clock::now();
  const cosy::ImportStats stats = cosy::import_store(conn, *world().store);
  const auto end = std::chrono::steady_clock::now();
  return {stats,
          std::chrono::duration<double, std::milli>(end - start).count()};
}

void BM_ImportBackend(benchmark::State& state,
                      const db::ConnectionProfile& profile) {
  double virtual_ms = 0;
  std::size_t rows = 0;
  for (auto _ : state) {
    const ImportOutcome outcome = run_import(profile);
    virtual_ms = outcome.stats.virtual_ms;
    rows = outcome.stats.rows;
  }
  state.counters["virtual_ms"] = virtual_ms;
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["virtual_us_per_row"] =
      virtual_ms * 1000.0 / static_cast<double>(rows);
}

void register_benchmarks() {
  for (const db::ConnectionProfile& profile :
       db::ConnectionProfile::all_paper_profiles()) {
    benchmark::RegisterBenchmark(
        support::cat("BM_ImportBackend/", profile.name).c_str(),
        [profile](benchmark::State& state) { BM_ImportBackend(state, profile); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
}

void print_summary_table() {
  support::TablePrinter table;
  table.add_column("backend")
      .add_column("deployment")
      .add_column("rows", support::TablePrinter::Align::kRight)
      .add_column("virtual ms", support::TablePrinter::Align::kRight)
      .add_column("us/row", support::TablePrinter::Align::kRight)
      .add_column("vs Access", support::TablePrinter::Align::kRight)
      .add_column("vs Oracle", support::TablePrinter::Align::kRight);

  struct RowData {
    std::string name;
    bool distributed;
    cosy::ImportStats stats;
  };
  std::vector<RowData> rows;
  for (const db::ConnectionProfile& profile :
       db::ConnectionProfile::all_paper_profiles()) {
    rows.push_back({profile.name, profile.distributed, run_import(profile).stats});
  }
  const double access_ms = rows[0].stats.virtual_ms;
  const double oracle_ms = rows[1].stats.virtual_ms;
  for (const RowData& row : rows) {
    table.add_row({row.name, row.distributed ? "distributed" : "local",
                   std::to_string(row.stats.rows),
                   support::format_double(row.stats.virtual_ms, 5),
                   support::format_double(row.stats.virtual_ms * 1000.0 /
                                              static_cast<double>(row.stats.rows),
                                          4),
                   support::format_double(row.stats.virtual_ms / access_ms, 3),
                   support::format_double(row.stats.virtual_ms / oracle_ms, 3)});
  }
  std::cout << "\n=== T1: performance-data insertion across backends "
               "(paper: Access ~20x faster than Oracle; MSSQL/Postgres ~2x "
               "faster than Oracle) ===\n"
            << table.render()
            << "(virtual time from the calibrated backend cost model; the "
               "relational work itself is executed for real)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_summary_table();
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
