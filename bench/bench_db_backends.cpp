// Experiment T1 (paper §5, database comparison): insertion of performance
// information into the four backend deployments. The engine executes every
// INSERT for real; the profile layer charges calibrated virtual time for
// wire and server costs. Paper shape to reproduce: MS Access fastest,
// Oracle 7 ~20x slower than Access, MS SQL Server and Postgres ~2x faster
// than Oracle.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

using namespace kojak;

namespace {

bool smoke_mode() {
  const char* env = std::getenv("KOJAK_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

const bench::World& world() {
  static bench::World w(perf::workloads::synthetic_scale(12, 10), {1, 8, 16});
  return w;
}

struct ImportOutcome {
  cosy::ImportStats stats;
  double real_ms;
};

ImportOutcome run_import(const db::ConnectionProfile& profile) {
  db::Database database;
  cosy::create_schema(database, world().model);
  db::Connection conn(database, profile);
  const auto start = std::chrono::steady_clock::now();
  const cosy::ImportStats stats = cosy::import_store(conn, *world().store);
  const auto end = std::chrono::steady_clock::now();
  return {stats,
          std::chrono::duration<double, std::milli>(end - start).count()};
}

void BM_ImportBackend(benchmark::State& state,
                      const db::ConnectionProfile& profile) {
  double virtual_ms = 0;
  std::size_t rows = 0;
  for (auto _ : state) {
    const ImportOutcome outcome = run_import(profile);
    virtual_ms = outcome.stats.virtual_ms;
    rows = outcome.stats.rows;
  }
  state.counters["virtual_ms"] = virtual_ms;
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["virtual_us_per_row"] =
      virtual_ms * 1000.0 / static_cast<double>(rows);
}

void register_benchmarks() {
  for (const db::ConnectionProfile& profile :
       db::ConnectionProfile::all_paper_profiles()) {
    benchmark::RegisterBenchmark(
        support::cat("BM_ImportBackend/", profile.name).c_str(),
        [profile](benchmark::State& state) { BM_ImportBackend(state, profile); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
}

// ---------------------------------------------------------------------------
// T1b: partitioned Region_TypTimes scans. The timing junctions are the
// store's dominant tables; hash-partitioning them by region lets the engine
// fan one whole-table scan out across partitions on the scan pool. The
// query's modulo predicate defeats every index, so this measures the heap
// scan path itself: serial seed layout vs partitioned layout at 1 and N
// worker threads, byte-identical results throughout.

struct ScanSetup {
  std::size_t partitions;
  std::size_t threads;
};

const bench::World& scan_world() {
  static bench::World w(smoke_mode()
                            ? perf::workloads::synthetic_scale(4, 5)
                            : perf::workloads::synthetic_scale(16, 16),
                        smoke_mode() ? std::vector<int>{1, 4}
                                     : std::vector<int>{1, 4, 8, 16, 32});
  return w;
}

db::Database& scan_database(std::size_t partitions, std::size_t threads) {
  // One database per layout, built once; the thread knob is per call.
  static std::map<std::size_t, std::unique_ptr<db::Database>> cache;
  std::unique_ptr<db::Database>& slot = cache[partitions];
  if (!slot) {
    slot = std::make_unique<db::Database>();
    cosy::create_schema(*slot, scan_world().model,
                        {.region_timing_partitions = partitions,
                         .junction_partitions = {}});
    db::Connection conn(*slot, db::ConnectionProfile::in_memory());
    cosy::import_store(conn, *scan_world().store);
  }
  slot->set_scan_config({.threads = threads, .min_parallel_rows = 1});
  return *slot;
}

struct ScanOutcome {
  double real_ms = 0;
  std::int64_t matches = 0;
  std::uint64_t parallel_batches = 0;
};

ScanOutcome run_scan(db::Database& database, int reps) {
  static const char* kQuery =
      "SELECT COUNT(*) FROM Region_TypTimes WHERE (member + owner) % 3 = 0";
  ScanOutcome outcome;
  const auto before = database.exec_stats();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    outcome.matches = database.execute(kQuery).scalar().as_int();
  }
  const auto t1 = std::chrono::steady_clock::now();
  outcome.real_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  outcome.parallel_batches =
      database.exec_stats().parallel_scan_batches - before.parallel_scan_batches;
  return outcome;
}

void print_partitioned_scan_table() {
  const int reps = smoke_mode() ? 3 : 20;
  const ScanSetup setups[] = {
      {1, 1},  // the serial seed layout
      {8, 1},  // partitioned, scans still serial
      {8, 4},  // partitioned, 4 scan-pool workers
  };
  const std::size_t rows =
      scan_database(1, 1).table("Region_TypTimes").live_row_count();

  support::TablePrinter table;
  table.add_column("layout")
      .add_column("rows", support::TablePrinter::Align::kRight)
      .add_column("threads", support::TablePrinter::Align::kRight)
      .add_column("scan ms", support::TablePrinter::Align::kRight)
      .add_column("vs serial", support::TablePrinter::Align::kRight)
      .add_column("matches", support::TablePrinter::Align::kRight);
  double serial_ms = 0;
  std::int64_t serial_matches = 0;
  for (const ScanSetup& setup : setups) {
    const ScanOutcome outcome = run_scan(scan_database(setup.partitions,
                                                       setup.threads),
                                         reps);
    if (serial_ms == 0) {
      serial_ms = outcome.real_ms;
      serial_matches = outcome.matches;
    }
    table.add_row({setup.partitions == 1
                       ? "single heap"
                       : support::cat(setup.partitions, " partitions"),
                   std::to_string(rows), std::to_string(setup.threads),
                   support::format_double(outcome.real_ms, 3),
                   support::format_double(serial_ms / outcome.real_ms, 2),
                   std::to_string(outcome.matches)});
    if (outcome.matches != serial_matches) {
      std::cerr << "partitioned scan diverged from the serial layout!\n";
      std::abort();
    }
  }
  std::cout << "\n=== T1b: whole-table Region_TypTimes scans across storage "
               "layouts (hash partitioning by region + engine-side parallel "
               "scan; identical results, partition-order merge) ===\n"
            << table.render()
            << "(modulo predicate defeats the owner/member indexes, so this "
               "is the raw heap-scan path; 'vs serial' is speedup against "
               "the single-heap seed layout)\n\n";
}

void register_scan_benchmarks() {
  const ScanSetup setups[] = {{1, 1}, {8, 1}, {8, 4}};
  for (const ScanSetup setup : setups) {
    benchmark::RegisterBenchmark(
        support::cat("BM_PartitionedScan/parts_", setup.partitions,
                     "/threads_", setup.threads)
            .c_str(),
        [setup](benchmark::State& state) {
          db::Database& database =
              scan_database(setup.partitions, setup.threads);
          std::int64_t matches = 0;
          std::uint64_t batches = 0;
          for (auto _ : state) {
            const ScanOutcome outcome = run_scan(database, 1);
            matches = outcome.matches;
            batches += outcome.parallel_batches;
          }
          state.counters["matches"] = static_cast<double>(matches);
          state.counters["parallel_batches"] = static_cast<double>(batches);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(smoke_mode() ? 2 : 10);
  }
}

// ---------------------------------------------------------------------------
// T1c: columnar vs row storage on the partition-union statement shape —
// one part<K> CTE per partition, each filter + SUM/COUNT over its pinned
// shard, folded by a coordinator expression. On STORAGE COLUMNAR tables
// each CTE is served by the fused vectorized evaluator (selection bitmap
// over column vectors + tight aggregate kernels); on the row twin the same
// statement walks Rows through the expression interpreter. Identical data,
// byte-identical results, same thread knobs.

constexpr std::size_t kUnionPartitions = 8;

std::string union_statement() {
  std::string sql = "WITH ";
  for (std::size_t k = 0; k < kUnionPartitions; ++k) {
    sql += support::cat(
        "part", k, " AS (SELECT COALESCE(SUM(w), 0.0) AS v0, COUNT(w) AS v1 ",
        "FROM m PARTITION (", k, ") WHERE member >= 1000), ");
  }
  sql.resize(sql.size() - 2);
  sql += " SELECT ";
  for (std::size_t k = 0; k < kUnionPartitions; ++k) {
    sql += support::cat("(SELECT v0 FROM part", k, ")",
                        k + 1 == kUnionPartitions ? "" : " + ");
  }
  sql += ", ";
  for (std::size_t k = 0; k < kUnionPartitions; ++k) {
    sql += support::cat("(SELECT v1 FROM part", k, ")",
                        k + 1 == kUnionPartitions ? "" : " + ");
  }
  return sql;
}

struct UnionDb {
  std::unique_ptr<db::Database> database;
  std::unique_ptr<db::PreparedStatement> stmt;
};

UnionDb& union_database(bool columnar, std::size_t threads) {
  static std::map<bool, UnionDb> cache;
  UnionDb& slot = cache[columnar];
  if (!slot.database) {
    slot.database = std::make_unique<db::Database>();
    db::Database& database = *slot.database;
    database.execute(support::cat(
        "CREATE TABLE m (owner INTEGER, member INTEGER, w DOUBLE) "
        "PARTITION BY HASH(member) PARTITIONS ",
        kUnionPartitions, columnar ? " STORAGE COLUMNAR" : ""));
    const int rows = smoke_mode() ? 4000 : 200000;
    std::string insert;
    for (int i = 0; i < rows; ++i) {
      if (insert.empty()) insert = "INSERT INTO m VALUES ";
      const double w = 0.37 * static_cast<double>((i * 131) % 97) + 0.01;
      insert += support::cat("(", i % 64, ", ", i, ", ", w, "),");
      if (i % 1024 == 1023 || i + 1 == rows) {
        insert.back() = ' ';
        database.execute(insert);
        insert.clear();
      }
    }
    slot.stmt =
        std::make_unique<db::PreparedStatement>(database.prepare(union_statement()));
  }
  slot.database->set_scan_config({.threads = threads, .min_parallel_rows = 1});
  return slot;
}

struct UnionOutcome {
  double real_ms = 0;
  double sum = 0;
  std::int64_t count = 0;
  std::uint64_t vectorized_batches = 0;
};

UnionOutcome run_union(UnionDb& setup, int reps) {
  UnionOutcome outcome;
  const auto before = setup.database->exec_stats();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    const db::QueryResult result = setup.database->execute(*setup.stmt);
    outcome.sum = result.at(0, 0).as_double();
    outcome.count = result.at(0, 1).as_int();
  }
  const auto t1 = std::chrono::steady_clock::now();
  outcome.real_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  outcome.vectorized_batches = setup.database->exec_stats().vectorized_batches -
                               before.vectorized_batches;
  return outcome;
}

void print_columnar_union_table() {
  const int reps = smoke_mode() ? 3 : 20;
  struct Setup {
    bool columnar;
    std::size_t threads;
  };
  const Setup setups[] = {
      {false, 1}, {false, 4}, {true, 1}, {true, 4}};

  support::TablePrinter table;
  table.add_column("storage")
      .add_column("threads", support::TablePrinter::Align::kRight)
      .add_column("union ms", support::TablePrinter::Align::kRight)
      .add_column("vs row", support::TablePrinter::Align::kRight)
      .add_column("selected", support::TablePrinter::Align::kRight);
  std::map<std::size_t, double> row_ms;
  double row_sum = 0;
  std::int64_t row_count = -1;
  for (const Setup& setup : setups) {
    const UnionOutcome outcome =
        run_union(union_database(setup.columnar, setup.threads), reps);
    if (!setup.columnar) {
      row_ms[setup.threads] = outcome.real_ms;
      row_sum = outcome.sum;
      row_count = outcome.count;
    } else if (outcome.sum != row_sum || outcome.count != row_count) {
      std::cerr << "columnar union diverged from the row layout!\n";
      std::abort();
    }
    table.add_row({setup.columnar ? "columnar" : "row",
                   std::to_string(setup.threads),
                   support::format_double(outcome.real_ms, 3),
                   support::format_double(row_ms[setup.threads] /
                                              outcome.real_ms,
                                          2),
                   std::to_string(outcome.count)});
  }
  std::cout << "\n=== T1c: partition-union aggregate statement, row vs "
               "columnar storage (fused vectorized part<K> evaluators; "
               "bit-identical coordinator results) ===\n"
            << table.render()
            << "('vs row' is speedup against the row layout at the same "
               "thread count; the columnar path filters through per-batch "
               "selection bitmaps and aggregates over selected lanes)\n\n";
}

void register_columnar_benchmarks() {
  struct Setup {
    bool columnar;
    std::size_t threads;
  };
  const Setup setups[] = {
      {false, 1}, {false, 4}, {true, 1}, {true, 4}};
  for (const Setup setup : setups) {
    benchmark::RegisterBenchmark(
        support::cat("BM_PartitionUnionScan/",
                     setup.columnar ? "columnar" : "row", "/threads_",
                     setup.threads)
            .c_str(),
        [setup](benchmark::State& state) {
          UnionDb& target = union_database(setup.columnar, setup.threads);
          double sum = 0;
          std::uint64_t batches = 0;
          for (auto _ : state) {
            const UnionOutcome outcome = run_union(target, 1);
            sum = outcome.sum;
            batches += outcome.vectorized_batches;
          }
          state.counters["sum"] = sum;
          state.counters["vectorized_batches"] =
              static_cast<double>(batches);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(smoke_mode() ? 2 : 10);
  }
}

// ---------------------------------------------------------------------------
// T1d: grouped aggregation and hash equi-join, row vs columnar storage. The
// grouped statement routes through the vectorized hash GROUP BY evaluator
// on STORAGE COLUMNAR (selection bitmap, lane-keyed group table, per-group
// batch kernels); on the row twin it walks Rows into a std::map of groups.
// The join statement takes the columnar hash equi-join (typed hash table
// over the smaller side's key column slice) vs the row hash join over
// materialized Rows. Identical data, byte-identical results — the digests
// are hexfloat-rendered and compared, divergence aborts the bench.

struct GroupJoinDb {
  std::unique_ptr<db::Database> database;
  std::unique_ptr<db::PreparedStatement> grouped;
  std::unique_ptr<db::PreparedStatement> join;
};

GroupJoinDb& groupjoin_database(bool columnar) {
  static std::map<bool, GroupJoinDb> cache;
  GroupJoinDb& slot = cache[columnar];
  if (!slot.database) {
    slot.database = std::make_unique<db::Database>();
    db::Database& database = *slot.database;
    const char* storage = columnar ? " STORAGE COLUMNAR" : "";
    database.execute(support::cat(
        "CREATE TABLE j (owner INTEGER, member INTEGER, t DOUBLE) "
        "PARTITION BY HASH(member) PARTITIONS 8",
        storage));
    database.execute(
        support::cat("CREATE TABLE c (id INTEGER, region INTEGER)", storage));
    const int rows = smoke_mode() ? 6000 : 200000;
    std::string insert;
    for (int i = 0; i < rows; ++i) {
      if (insert.empty()) insert = "INSERT INTO j VALUES ";
      const double t = 0.37 * static_cast<double>((i * 131) % 97) + 0.01;
      insert += support::cat("(", i % 64, ", ", i, ", ", t, "),");
      if (i % 1024 == 1023 || i + 1 == rows) {
        insert.back() = ' ';
        database.execute(insert);
        insert.clear();
      }
    }
    // Dimension ids spaced x8 for ~1/8 join selectivity; no index on c.id,
    // so the equi-join takes the hash branch on both storage modes.
    const int dims = rows / 8;
    for (int i = 0; i < dims; ++i) {
      if (insert.empty()) insert = "INSERT INTO c VALUES ";
      insert += support::cat("(", i * 8, ", ", i % 5, "),");
      if (i % 1024 == 1023 || i + 1 == dims) {
        insert.back() = ' ';
        database.execute(insert);
        insert.clear();
      }
    }
    slot.grouped = std::make_unique<db::PreparedStatement>(database.prepare(
        "SELECT owner, COUNT(*), SUM(t), AVG(t) FROM j WHERE t > 5.0 "
        "GROUP BY owner"));
    slot.join = std::make_unique<db::PreparedStatement>(database.prepare(
        "SELECT COUNT(*), SUM(t) FROM j JOIN c ON j.member = c.id"));
  }
  slot.database->set_scan_config({.threads = 1, .min_parallel_rows = 1});
  return slot;
}

std::string digest_result(const db::QueryResult& result) {
  char buffer[64];
  std::string out;
  for (std::size_t r = 0; r < result.row_count(); ++r) {
    for (std::size_t c = 0; c < result.column_count(); ++c) {
      const db::Value& v = result.at(r, c);
      if (v.type() == db::ValueType::kDouble) {
        std::snprintf(buffer, sizeof buffer, "%a", v.as_double());
        out += buffer;
      } else {
        out += support::cat(v.as_int());
      }
      out += '|';
    }
    out += '\n';
  }
  return out;
}

struct GroupJoinOutcome {
  double real_ms = 0;
  std::string digest;
  std::uint64_t groups = 0;
  std::uint64_t lanes_probed = 0;
};

GroupJoinOutcome run_groupjoin(GroupJoinDb& setup, bool join_stmt, int reps) {
  GroupJoinOutcome outcome;
  const auto before = setup.database->exec_stats();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    outcome.digest = digest_result(
        setup.database->execute(join_stmt ? *setup.join : *setup.grouped));
  }
  const auto t1 = std::chrono::steady_clock::now();
  outcome.real_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  const auto after = setup.database->exec_stats();
  outcome.groups = after.groups_built - before.groups_built;
  outcome.lanes_probed = after.join_lanes_probed - before.join_lanes_probed;
  return outcome;
}

void print_groupjoin_table() {
  const int reps = smoke_mode() ? 3 : 20;
  support::TablePrinter table;
  table.add_column("statement")
      .add_column("storage")
      .add_column("ms", support::TablePrinter::Align::kRight)
      .add_column("vs row", support::TablePrinter::Align::kRight)
      .add_column("groups", support::TablePrinter::Align::kRight)
      .add_column("lanes probed", support::TablePrinter::Align::kRight);
  for (const bool join_stmt : {false, true}) {
    double row_ms = 0;
    std::string row_digest;
    for (const bool columnar : {false, true}) {
      const GroupJoinOutcome outcome =
          run_groupjoin(groupjoin_database(columnar), join_stmt, reps);
      if (!columnar) {
        row_ms = outcome.real_ms;
        row_digest = outcome.digest;
      } else if (outcome.digest != row_digest) {
        std::cerr << "columnar "
                  << (join_stmt ? "join" : "grouped aggregate")
                  << " diverged from the row layout!\n";
        std::abort();
      }
      table.add_row({join_stmt ? "equi-join" : "grouped aggregate",
                     columnar ? "columnar" : "row",
                     support::format_double(outcome.real_ms, 3),
                     support::format_double(row_ms / outcome.real_ms, 2),
                     std::to_string(outcome.groups),
                     std::to_string(outcome.lanes_probed)});
    }
  }
  std::cout << "\n=== T1d: grouped aggregation and hash equi-join, row vs "
               "columnar storage (vectorized hash GROUP BY + columnar hash "
               "join; byte-identical results) ===\n"
            << table.render()
            << "('vs row' is speedup against the row layout; groups/lanes "
               "probed are the engine's kernel counters and stay zero on "
               "the row twin)\n\n";
}

void register_groupjoin_benchmarks() {
  for (const bool join_stmt : {false, true}) {
    for (const bool columnar : {false, true}) {
      benchmark::RegisterBenchmark(
          support::cat(join_stmt ? "BM_JunctionJoin/" : "BM_GroupedAggregate/",
                       columnar ? "columnar" : "row")
              .c_str(),
          [join_stmt, columnar](benchmark::State& state) {
            GroupJoinDb& target = groupjoin_database(columnar);
            std::uint64_t groups = 0;
            std::uint64_t probed = 0;
            for (auto _ : state) {
              const GroupJoinOutcome outcome =
                  run_groupjoin(target, join_stmt, 1);
              groups += outcome.groups;
              probed += outcome.lanes_probed;
            }
            state.counters["groups_built"] = static_cast<double>(groups);
            state.counters["join_lanes_probed"] =
                static_cast<double>(probed);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(smoke_mode() ? 2 : 10);
    }
  }
}

// ---------------------------------------------------------------------------
// T1e: expression bytecode VM vs the row interpreter on the same statement —
// aggregates over arithmetic with a column-vs-expression WHERE. On STORAGE
// COLUMNAR the whole WHERE and every aggregate argument compile to batch
// programs feeding the fused kernels; the row twin evaluates the identical
// expression trees row-at-a-time through eval_expr. Identical data and
// layout, byte-identical results (hexfloat digests, divergence aborts).

struct ExprVmDb {
  std::unique_ptr<db::Database> database;
  std::unique_ptr<db::PreparedStatement> stmt;
};

ExprVmDb& exprvm_database(bool vm) {
  static std::map<bool, ExprVmDb> cache;
  ExprVmDb& slot = cache[vm];
  if (!slot.database) {
    slot.database = std::make_unique<db::Database>();
    db::Database& database = *slot.database;
    database.execute(support::cat(
        "CREATE TABLE e (owner INTEGER, member INTEGER, t DOUBLE, w DOUBLE) "
        "PARTITION BY HASH(member) PARTITIONS 8",
        vm ? " STORAGE COLUMNAR" : ""));
    const int rows = smoke_mode() ? 6000 : 200000;
    std::string insert;
    for (int i = 0; i < rows; ++i) {
      if (insert.empty()) insert = "INSERT INTO e VALUES ";
      const double t = 0.37 * static_cast<double>((i * 131) % 97) + 0.01;
      const double w = 0.21 * static_cast<double>((i * 17) % 53) + 0.5;
      insert += support::cat("(", i % 64, ", ", i, ", ", t, ", ", w, "),");
      if (i % 1024 == 1023 || i + 1 == rows) {
        insert.back() = ' ';
        database.execute(insert);
        insert.clear();
      }
    }
    // Neither WHERE conjunct is `column op constant`, so the filter takes
    // the whole-WHERE compiled program; every aggregate argument but
    // COUNT(*) is an arithmetic expression served by a value program.
    slot.stmt = std::make_unique<db::PreparedStatement>(database.prepare(
        "SELECT COUNT(*), SUM(t - 0.2 * w), MIN(t / (w + 1.0)), "
        "AVG(t * 2.0 + w) FROM e WHERE t > 1.2 * w AND t - w < 30.0"));
  }
  slot.database->set_scan_config({.threads = 1, .min_parallel_rows = 1});
  return slot;
}

struct ExprVmOutcome {
  double real_ms = 0;
  std::string digest;
  std::uint64_t program_evals = 0;
  std::uint64_t vm_lanes = 0;
};

ExprVmOutcome run_exprvm(ExprVmDb& setup, int reps) {
  ExprVmOutcome outcome;
  const auto before = setup.database->exec_stats();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    outcome.digest = digest_result(setup.database->execute(*setup.stmt));
  }
  const auto t1 = std::chrono::steady_clock::now();
  outcome.real_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  const auto after = setup.database->exec_stats();
  outcome.program_evals = after.expr_program_evals - before.expr_program_evals;
  outcome.vm_lanes = after.expr_vm_lanes - before.expr_vm_lanes;
  return outcome;
}

void print_exprvm_table() {
  const int reps = smoke_mode() ? 3 : 20;
  support::TablePrinter table;
  table.add_column("evaluator")
      .add_column("ms", support::TablePrinter::Align::kRight)
      .add_column("vs row", support::TablePrinter::Align::kRight)
      .add_column("program evals", support::TablePrinter::Align::kRight)
      .add_column("vm lanes", support::TablePrinter::Align::kRight);
  double row_ms = 0;
  std::string row_digest;
  for (const bool vm : {false, true}) {
    const ExprVmOutcome outcome = run_exprvm(exprvm_database(vm), reps);
    if (!vm) {
      row_ms = outcome.real_ms;
      row_digest = outcome.digest;
    } else if (outcome.digest != row_digest) {
      std::cerr << "expression VM diverged from the row interpreter!\n";
      std::abort();
    }
    table.add_row({vm ? "bytecode VM" : "row interpreter",
                   support::format_double(outcome.real_ms, 3),
                   support::format_double(row_ms / outcome.real_ms, 2),
                   std::to_string(outcome.program_evals),
                   std::to_string(outcome.vm_lanes)});
  }
  std::cout << "\n=== T1e: arbitrary-expression filter + aggregation, row "
               "interpreter vs compiled batch programs (whole-WHERE and "
               "aggregate-argument bytecode on columnar lanes; byte-identical "
               "results) ===\n"
            << table.render()
            << "('vs row' is speedup against the row-storage twin at one "
               "thread; program evals / vm lanes are the engine's pinned VM "
               "counters and stay zero on the row twin)\n\n";
}

void register_exprvm_benchmarks() {
  for (const bool vm : {false, true}) {
    benchmark::RegisterBenchmark(
        support::cat("BM_ExprFilterAggregate/", vm ? "vm" : "row").c_str(),
        [vm](benchmark::State& state) {
          ExprVmDb& target = exprvm_database(vm);
          std::uint64_t evals = 0;
          std::uint64_t lanes = 0;
          for (auto _ : state) {
            const ExprVmOutcome outcome = run_exprvm(target, 1);
            evals += outcome.program_evals;
            lanes += outcome.vm_lanes;
          }
          state.counters["expr_program_evals"] = static_cast<double>(evals);
          state.counters["expr_vm_lanes"] = static_cast<double>(lanes);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(smoke_mode() ? 2 : 10);
  }
}

void print_summary_table() {
  support::TablePrinter table;
  table.add_column("backend")
      .add_column("deployment")
      .add_column("rows", support::TablePrinter::Align::kRight)
      .add_column("virtual ms", support::TablePrinter::Align::kRight)
      .add_column("us/row", support::TablePrinter::Align::kRight)
      .add_column("vs Access", support::TablePrinter::Align::kRight)
      .add_column("vs Oracle", support::TablePrinter::Align::kRight);

  struct RowData {
    std::string name;
    bool distributed;
    cosy::ImportStats stats;
  };
  std::vector<RowData> rows;
  for (const db::ConnectionProfile& profile :
       db::ConnectionProfile::all_paper_profiles()) {
    rows.push_back({profile.name, profile.distributed, run_import(profile).stats});
  }
  const double access_ms = rows[0].stats.virtual_ms;
  const double oracle_ms = rows[1].stats.virtual_ms;
  for (const RowData& row : rows) {
    table.add_row({row.name, row.distributed ? "distributed" : "local",
                   std::to_string(row.stats.rows),
                   support::format_double(row.stats.virtual_ms, 5),
                   support::format_double(row.stats.virtual_ms * 1000.0 /
                                              static_cast<double>(row.stats.rows),
                                          4),
                   support::format_double(row.stats.virtual_ms / access_ms, 3),
                   support::format_double(row.stats.virtual_ms / oracle_ms, 3)});
  }
  std::cout << "\n=== T1: performance-data insertion across backends "
               "(paper: Access ~20x faster than Oracle; MSSQL/Postgres ~2x "
               "faster than Oracle) ===\n"
            << table.render()
            << "(virtual time from the calibrated backend cost model; the "
               "relational work itself is executed for real)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_summary_table();
  print_partitioned_scan_table();
  print_columnar_union_table();
  print_groupjoin_table();
  print_exprvm_table();
  register_benchmarks();
  register_scan_benchmarks();
  register_columnar_benchmarks();
  register_groupjoin_benchmarks();
  register_exprvm_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
