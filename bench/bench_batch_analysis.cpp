// Batch engine experiment: N runs × threads sweep on the SQL-pushdown
// strategy. The baseline is the sequential per-run loop (one session, no
// plan cache — exactly what the single-run Analyzer did before the batch
// engine existed). The batch rows show two effects on top of it:
//   * the connection pool parallelizes the modelled backend traffic, so the
//     makespan (busiest session) drops roughly linearly with sessions;
//   * the shared compiled-plan cache removes the repeated property->SQL
//     translation and SQL parse, which also cuts real engine time.
// Findings are asserted byte-identical across every configuration.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "cosy/batch.hpp"
#include "db/connection_pool.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

using namespace kojak;

namespace {

bool smoke_mode() { return std::getenv("KOJAK_BENCH_SMOKE") != nullptr; }

const std::vector<int>& pe_counts() {
  static const std::vector<int> kFull = {1, 2, 4, 8, 12, 16, 24, 32};
  static const std::vector<int> kSmoke = {1, 4};
  return smoke_mode() ? kSmoke : kFull;
}

const std::vector<std::size_t>& thread_counts() {
  static const std::vector<std::size_t> kFull = {1, 2, 4, 8};
  static const std::vector<std::size_t> kSmoke = {1, 2};
  return smoke_mode() ? kSmoke : kFull;
}

bench::World& world() {
  static bench::World instance(perf::workloads::imbalanced_ocean(),
                               pe_counts());
  return instance;
}

db::Database& shared_database() {
  static std::unique_ptr<db::Database> database = world().make_database();
  return *database;
}

std::string digest(const std::vector<cosy::BatchItem>& items) {
  std::string out;
  for (const cosy::BatchItem& item : items) {
    out += item.report.to_table(1000);
  }
  return out;
}

struct Outcome {
  double wall_ms = 0;
  double backend_ms = 0;  // makespan for the batch, total for the baseline
  double hit_rate = 0;
  std::uint64_t queries = 0;
  std::string digest;
};

/// The pre-batch behavior: one session, one run at a time, translation from
/// scratch for every (run, context).
Outcome run_sequential_baseline() {
  db::Connection conn(shared_database(), db::ConnectionProfile::postgres());
  cosy::Analyzer analyzer(world().model, *world().store, world().handles,
                          &conn);
  cosy::AnalyzerConfig config;
  config.strategy = cosy::EvalStrategy::kSqlPushdown;

  Outcome outcome;
  const double v0 = conn.clock().now_ms();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t run = 0; run < world().handles.runs.size(); ++run) {
    const cosy::AnalysisReport report = analyzer.analyze(run, config);
    outcome.queries += report.sql_queries;
    outcome.digest += report.to_table(1000);
  }
  outcome.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  outcome.backend_ms = conn.clock().now_ms() - v0;
  return outcome;
}

Outcome run_batch(std::size_t threads) {
  db::ConnectionPool pool(shared_database(), db::ConnectionProfile::postgres(),
                          threads);
  cosy::BatchAnalyzer batch(world().model, *world().store, world().handles,
                            &pool);
  cosy::BatchConfig config;
  config.threads = threads;
  const cosy::BatchResult result = batch.analyze_all(config);

  Outcome outcome;
  outcome.wall_ms = result.summary.wall_ms;
  outcome.backend_ms = result.summary.backend_makespan_ms;
  outcome.hit_rate = result.summary.plan_cache_hit_rate();
  outcome.queries = result.summary.sql_queries;
  outcome.digest = digest(result.items);
  return outcome;
}

void print_summary_table() {
  const Outcome baseline = run_sequential_baseline();

  support::TablePrinter table;
  table.add_column("config")
      .add_column("backend ms", support::TablePrinter::Align::kRight)
      .add_column("speedup", support::TablePrinter::Align::kRight)
      .add_column("wall ms", support::TablePrinter::Align::kRight)
      .add_column("wall speedup", support::TablePrinter::Align::kRight)
      .add_column("hit rate", support::TablePrinter::Align::kRight)
      .add_column("queries", support::TablePrinter::Align::kRight)
      .add_column("identical", support::TablePrinter::Align::kRight);
  table.add_row({"sequential loop", support::format_double(baseline.backend_ms, 5),
                 "1.0", support::format_double(baseline.wall_ms, 5), "1.0", "-",
                 std::to_string(baseline.queries), "ref"});

  bool all_identical = true;
  for (const std::size_t threads : thread_counts()) {
    const Outcome batch = run_batch(threads);
    const bool identical = batch.digest == baseline.digest;
    all_identical = all_identical && identical;
    table.add_row(
        {support::cat("batch x", threads, " threads"),
         support::format_double(batch.backend_ms, 5),
         support::format_double(baseline.backend_ms / batch.backend_ms, 3),
         support::format_double(batch.wall_ms, 5),
         support::format_double(baseline.wall_ms / batch.wall_ms, 3),
         support::format_double(batch.hit_rate, 3),
         std::to_string(batch.queries), identical ? "yes" : "NO"});
  }

  std::cout << "\n=== Batch analysis engine: " << world().handles.runs.size()
            << " runs x " << world().model.properties().size()
            << " properties, SQL pushdown over the Postgres profile ===\n"
            << table.render()
            << "(backend ms = modelled wire/server makespan — the busiest "
               "pooled session; 'sequential loop' is one session doing every "
               "run in order with no plan cache. 'identical' checks the "
               "rendered findings byte-for-byte against the baseline.)\n\n";
  if (!all_identical) {
    std::cerr << "FATAL: batch findings diverged from the sequential loop\n";
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_summary_table();
  for (const std::size_t threads : thread_counts()) {
    benchmark::RegisterBenchmark(
        support::cat("BM_BatchAnalysis/threads_", threads).c_str(),
        [threads](benchmark::State& state) {
          Outcome outcome;
          for (auto _ : state) {
            outcome = run_batch(threads);
          }
          state.counters["backend_ms"] = outcome.backend_ms;
          state.counters["hit_rate"] = outcome.hit_rate;
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(smoke_mode() ? 1 : 2);
  }
  benchmark::RegisterBenchmark(
      "BM_SequentialLoop",
      [](benchmark::State& state) {
        Outcome outcome;
        for (auto _ : state) {
          outcome = run_sequential_baseline();
        }
        state.counters["backend_ms"] = outcome.backend_ms;
      })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(smoke_mode() ? 1 : 2);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
