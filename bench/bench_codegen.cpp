// Experiment A2 (paper §6, future work made real): automatic generation of
// the database design from the specification and automatic translation of
// property conditions into SQL. Times the spec -> schema -> import -> query
// pipeline and shows a sample of the SQL the compiler emits.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "cosy/sql_eval.hpp"
#include "support/str.hpp"

using namespace kojak;

namespace {

bench::World& world() {
  static bench::World w(perf::workloads::imbalanced_ocean(), {1, 16});
  return w;
}

void BM_GenerateDdl(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(cosy::generate_ddl(world().model));
  }
}

void BM_CreateSchema(benchmark::State& state) {
  for (auto _ : state) {
    db::Database database;
    cosy::create_schema(database, world().model);
    benchmark::DoNotOptimize(database.table_names());
  }
}

void BM_ImportStore(benchmark::State& state) {
  std::size_t rows = 0;
  for (auto _ : state) {
    db::Database database;
    cosy::create_schema(database, world().model);
    db::Connection conn(database, db::ConnectionProfile::in_memory());
    rows = cosy::import_store(conn, *world().store).rows;
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_RebuildStore(benchmark::State& state) {
  const std::unique_ptr<db::Database> database = world().make_database();
  db::Connection conn(*database, db::ConnectionProfile::in_memory());
  for (auto _ : state) {
    benchmark::DoNotOptimize(cosy::rebuild_store(conn, world().model));
  }
}

void BM_CompileAndRunProperty(benchmark::State& state) {
  const std::unique_ptr<db::Database> database = world().make_database();
  db::Connection conn(*database, db::ConnectionProfile::in_memory());
  cosy::SqlEvaluator sql(world().model, conn);
  const asl::PropertyInfo* prop = world().model.find_property("SublinearSpeedup");
  const std::vector<asl::RtValue> args = {
      asl::RtValue::of_object(world().handles.regions.at("main")),
      asl::RtValue::of_object(world().handles.runs[1]),
      asl::RtValue::of_object(world().handles.regions.at("main"))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql.evaluate_property(*prop, args));
  }
  state.counters["total_queries"] = static_cast<double>(sql.queries_issued());
}

void print_generated_artifacts() {
  std::cout << "\n=== A2: automatic schema generation + ASL->SQL translation "
               "(the paper's §6 future work) ===\n\nGenerated DDL (first "
               "8 statements of "
            << cosy::generate_ddl(world().model).size() << "):\n";
  const auto ddl = cosy::generate_ddl(world().model);
  for (std::size_t i = 0; i < ddl.size() && i < 8; ++i) {
    std::cout << "  " << ddl[i] << ";\n";
  }

  const std::unique_ptr<db::Database> database = world().make_database();
  db::Connection conn(*database, db::ConnectionProfile::in_memory());
  cosy::SqlEvaluator sql(world().model, conn);
  const asl::FunctionInfo* summary = world().model.find_function("Summary");
  const asl::PropertyInfo fake{
      "ctx",
      {{"r", asl::Type::class_of(*world().model.find_class("Region"))},
       {"t", asl::Type::class_of(*world().model.find_class("TestRun"))}},
      {}, {}, {}, {}};
  std::cout << "\nCompiled set query for Summary's comprehension "
               "{s IN r.TotTimes WITH s.Run == t}:\n  "
            << sql.explain_set(*summary->body->base, fake,
                               {asl::RtValue::of_object(
                                    world().handles.regions.at("main")),
                                asl::RtValue::of_object(world().handles.runs[1])})
            << "\n\n";
}

}  // namespace

BENCHMARK(BM_GenerateDdl)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CreateSchema)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ImportStore)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RebuildStore)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompileAndRunProperty)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  print_generated_artifacts();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
