// Experiment T4 (paper §3): the COSY analysis itself. Prints the ranked
// property table for the flagship workload at several PE counts — the
// output the paper describes presenting to the application programmer —
// and times the end-to-end analysis per strategy.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "support/str.hpp"

using namespace kojak;

namespace {

bench::World& world() {
  static bench::World w(perf::workloads::imbalanced_ocean(), {1, 4, 16, 64, 128});
  return w;
}

db::Database& database() {
  static std::unique_ptr<db::Database> db = world().make_database();
  return *db;
}

void BM_AnalyzeInterpreter(benchmark::State& state) {
  cosy::Analyzer analyzer(world().model, *world().store, world().handles);
  cosy::AnalyzerConfig config;
  const auto run = static_cast<std::size_t>(state.range(0));
  std::size_t findings = 0;
  for (auto _ : state) {
    findings = analyzer.analyze(run, config).findings.size();
  }
  state.counters["findings"] = static_cast<double>(findings);
}

void BM_AnalyzeInterpreterParallel(benchmark::State& state) {
  cosy::Analyzer analyzer(world().model, *world().store, world().handles);
  cosy::AnalyzerConfig config;
  config.parallel = true;
  const auto run = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(run, config));
  }
}

void BM_AnalyzeSqlPushdown(benchmark::State& state) {
  db::Connection conn(database(), db::ConnectionProfile::in_memory());
  cosy::Analyzer analyzer(world().model, *world().store, world().handles, &conn);
  cosy::AnalyzerConfig config;
  config.strategy = cosy::EvalStrategy::kSqlPushdown;
  const auto run = static_cast<std::size_t>(state.range(0));
  std::uint64_t queries = 0;
  for (auto _ : state) {
    queries = analyzer.analyze(run, config).sql_queries;
  }
  state.counters["sql_queries"] = static_cast<double>(queries);
}

void print_ranked_tables() {
  cosy::Analyzer analyzer(world().model, *world().store, world().handles);
  std::cout << "\n=== T4: COSY ranked analysis of " << world().data.structure.program_name
            << " (paper §3: properties ranked by severity; bottleneck + "
               "problem threshold) ===\n";
  for (const std::size_t run : {2u, 4u}) {
    const cosy::AnalysisReport report = analyzer.analyze(run);
    std::cout << '\n' << report.to_table(10);
  }
  std::cout << '\n';
}

}  // namespace

BENCHMARK(BM_AnalyzeInterpreter)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AnalyzeInterpreterParallel)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AnalyzeSqlPushdown)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

int main(int argc, char** argv) {
  print_ranked_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
