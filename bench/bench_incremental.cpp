// Incremental re-evaluation experiment: the online-monitoring claim. A
// Monitor watches every (property, context) of the COSY world over
// member-partitioned timing junctions (8 partitions), so each epoch's
// ingest dirties exactly one partition. BM_IncrementalRefresh rides the
// monitor's persistent state — compiled plans and the shard-result cache —
// and pays only the dirtied partition's `part<K>` CTE recomputes, while
// BM_FullRecompute is the from-scratch pass the subsystem replaces: a cold
// monitor at the same epoch that re-translates every property to SQL and
// recomputes every partition of every CTE. Findings are asserted
// byte-identical between the two at the same epoch.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <utility>
#include <iostream>

#include "bench_util.hpp"
#include "cosy/monitor.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

using namespace kojak;

namespace {

bool smoke_mode() { return std::getenv("KOJAK_BENCH_SMOKE") != nullptr; }

const std::vector<int>& pe_counts() {
  static const std::vector<int> kFull = {1, 4, 16, 32};
  static const std::vector<int> kSmoke = {1, 4};
  return smoke_mode() ? kSmoke : kFull;
}

constexpr std::size_t kPartitions = 8;
constexpr std::size_t kDirtyRowsPerEpoch = 64;

/// One monitored world: the COSY store imported over member-partitioned
/// timing junctions, a warm Monitor watching every context, and one replay
/// batch per junction partition (duplicate links of existing rows — legal,
/// and they dirty exactly their partition).
struct MonitorWorld {
  std::unique_ptr<db::Database> database;
  std::unique_ptr<db::Connection> conn;
  std::unique_ptr<cosy::Monitor> monitor;
  std::vector<cosy::PropertyContext> contexts;  // the full watch list
  std::vector<cosy::IngestBatch> dirty;  // non-empty, one per partition hit

  explicit MonitorWorld(const bench::World& world) : model_(&world.model) {
    database = std::make_unique<db::Database>();
    cosy::SchemaOptions schema;
    schema.junction_partitions.push_back(
        {"Region", "TotTimes", "member", kPartitions});
    schema.junction_partitions.push_back(
        {"Region", "TypTimes", "member", kPartitions});
    cosy::create_schema(*database, world.model, schema);
    conn = std::make_unique<db::Connection>(*database,
                                            db::ConnectionProfile::in_memory());
    cosy::import_store(*conn, *world.store, /*batch_rows=*/64);

    // Ballast: clone every linked timing row — and its junction link — under
    // a ghost run id that no watch references. Every property filters the
    // junction members by `Run`, so the ghost members fall out of every
    // result and the findings are untouched; but each junction partition now
    // carries the weight of a long collection history, which is exactly what
    // the `part<K>` CTE scans pay. This is what separates the two passes:
    // full recompute scans this volume for every partition of every CTE, the
    // incremental pass only for the dirtied one.
    const std::size_t amplify = smoke_mode() ? 2 : 64;
    {
      std::int64_t ghost_run = 0;
      for (const db::Row& row :
           conn->execute("SELECT id FROM TestRun").rows) {
        ghost_run = std::max(ghost_run, row[0].as_int() + 1);
      }
      cosy::IngestBatch ballast;
      const std::pair<const char*, const char*> junctions[] = {
          {"Region_TotTimes", "TotalTiming"},
          {"Region_TypTimes", "TypedTiming"}};
      for (const auto& [junction, entity] : junctions) {
        const db::QueryResult rows =
            conn->execute(support::cat("SELECT * FROM ", entity));
        std::map<std::int64_t, const db::Row*> by_id;
        std::int64_t next_id = 0;
        for (const db::Row& row : rows.rows) {
          by_id.emplace(row[0].as_int(), &row);
          next_id = std::max(next_id, row[0].as_int() + 1);
        }
        const db::QueryResult links = conn->execute(
            support::cat("SELECT owner, member FROM ", junction));
        for (std::size_t copy = 1; copy < amplify; ++copy) {
          for (const db::Row& link : links.rows) {
            const db::Row& row = *by_id.at(link[1].as_int());
            std::vector<db::Value> clone(row.begin(), row.end());
            clone[0] = db::Value::integer(next_id);
            clone[1] = db::Value::integer(ghost_run);
            ballast.add(entity, std::move(clone));
            ballast.add(junction,
                        {link[0], db::Value::integer(next_id)});
            ++next_id;
          }
        }
      }
      cosy::Monitor loader(world.model, *conn);
      loader.ingest(ballast);
    }

    const asl::ObjectId run = world.handles.runs.back();
    const asl::ObjectId basis =
        world.handles.regions.at(world.handles.main_region);
    for (const asl::PropertyInfo& prop : world.model.properties()) {
      for (cosy::PropertyContext& ctx : cosy::enumerate_property_contexts(
               world.model, world.handles, prop, run, basis)) {
        contexts.push_back(std::move(ctx));
      }
    }
    monitor = make_monitor();

    const db::QueryResult links =
        conn->execute("SELECT owner, member FROM Region_TypTimes");
    const db::Table& junction = database->table("Region_TypTimes");
    for (std::size_t target = 0; target < junction.partition_count();
         ++target) {
      cosy::IngestBatch batch;
      for (const db::Row& row : links.rows) {
        if (junction.route(row[1]) != target) continue;
        batch.add("Region_TypTimes", {row[0], row[1]});
        if (batch.rows() >= kDirtyRowsPerEpoch) break;
      }
      if (!batch.empty()) dirty.push_back(std::move(batch));
    }
    (void)monitor->evaluate();  // warm the plans and the shard cache
  }

  /// A cold monitor over this world's store: empty plan cache, empty shard
  /// cache, the full watch list.
  [[nodiscard]] std::unique_ptr<cosy::Monitor> make_monitor() const {
    auto fresh = std::make_unique<cosy::Monitor>(*model_, *conn);
    for (const cosy::PropertyContext& ctx : contexts) {
      fresh->watch(*ctx.property, ctx.args, ctx.label);
    }
    return fresh;
  }

 private:
  const asl::Model* model_ = nullptr;
};

bench::World& world() {
  static bench::World instance(perf::workloads::imbalanced_ocean(),
                               pe_counts());
  return instance;
}

MonitorWorld& incremental_world() {
  static MonitorWorld instance(world());
  return instance;
}

MonitorWorld& full_world() {
  static MonitorWorld instance(world());
  return instance;
}

/// Rendered findings of one pass, hexfloat so equality means bit-equality.
std::string render_findings(const cosy::EpochReport& report) {
  std::string out;
  for (const cosy::MonitorFinding& f : report.findings) {
    out += support::cat(f.property, " @ ", f.context, " | ",
                        f.result.matched_condition, " | ");
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%a %a\n", f.result.confidence,
                  f.result.severity);
    out += buffer;
  }
  return out;
}

struct Outcome {
  double wall_ms = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t dirty = 0;
  std::uint64_t memoized = 0;
};

Outcome run_incremental(MonitorWorld& mw, std::size_t epoch) {
  const cosy::IngestBatch& batch = mw.dirty[epoch % mw.dirty.size()];
  const auto t0 = std::chrono::steady_clock::now();
  mw.monitor->ingest(batch);
  const cosy::EpochReport report = mw.monitor->evaluate();
  Outcome outcome;
  outcome.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  outcome.hits = report.shard_cache_hits;
  outcome.misses = report.shard_cache_misses;
  outcome.dirty = report.dirty_partitions_recomputed;
  outcome.memoized = report.statements_memoized;
  return outcome;
}

Outcome run_full(MonitorWorld& mw) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::unique_ptr<cosy::Monitor> cold = mw.make_monitor();
  const cosy::EpochReport report = cold->evaluate();
  Outcome outcome;
  outcome.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  outcome.hits = report.shard_cache_hits;
  outcome.misses = report.shard_cache_misses;
  outcome.dirty = report.dirty_partitions_recomputed;
  outcome.memoized = report.statements_memoized;
  return outcome;
}

void print_summary_table() {
  MonitorWorld& inc = incremental_world();
  const std::size_t passes = smoke_mode() ? 2 : 8;

  double inc_ms = 0, full_ms = 0;
  Outcome last_inc, last_full;
  for (std::size_t epoch = 0; epoch < passes; ++epoch) {
    last_inc = run_incremental(inc, epoch);
    inc_ms += last_inc.wall_ms;
    last_full = run_full(full_world());
    full_ms += last_full.wall_ms;
  }
  inc_ms /= static_cast<double>(passes);
  full_ms /= static_cast<double>(passes);

  // Byte-identity: a cold monitor built over the already-mutated store must
  // land on exactly the warm monitor's findings at the same epoch.
  const cosy::EpochReport warm = inc.monitor->evaluate();
  const cosy::EpochReport cold_report = inc.make_monitor()->evaluate();
  const bool identical =
      warm.epoch == cold_report.epoch &&
      render_findings(warm) == render_findings(cold_report);

  support::TablePrinter table;
  table.add_column("pass")
      .add_column("wall ms", support::TablePrinter::Align::kRight)
      .add_column("speedup", support::TablePrinter::Align::kRight)
      .add_column("hits", support::TablePrinter::Align::kRight)
      .add_column("misses", support::TablePrinter::Align::kRight)
      .add_column("dirty", support::TablePrinter::Align::kRight)
      .add_column("memoized", support::TablePrinter::Align::kRight);
  table.add_row({"full recompute", support::format_double(full_ms, 3), "1.0",
                 std::to_string(last_full.hits),
                 std::to_string(last_full.misses),
                 std::to_string(last_full.dirty),
                 std::to_string(last_full.memoized)});
  table.add_row({"incremental refresh", support::format_double(inc_ms, 3),
                 support::format_double(full_ms / inc_ms, 2),
                 std::to_string(last_inc.hits),
                 std::to_string(last_inc.misses),
                 std::to_string(last_inc.dirty),
                 std::to_string(last_inc.memoized)});

  std::cout << "\n=== Incremental re-evaluation: "
            << inc.monitor->watch_count() << " watched contexts, "
            << kPartitions << "-way member-partitioned timing junctions, "
            << kDirtyRowsPerEpoch << " rows ingested per epoch ===\n"
            << table.render() << "(each epoch dirties one of " << kPartitions
            << " partitions; 'full recompute' clears the shard-result cache "
               "before evaluating. findings byte-identical to a cold monitor "
               "at the same epoch: "
            << (identical ? "yes" : "NO") << ")\n\n";
  if (!identical) {
    std::cerr << "FATAL: incremental findings diverged from cold recompute\n";
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_summary_table();
  benchmark::RegisterBenchmark(
      "BM_FullRecompute",
      [](benchmark::State& state) {
        MonitorWorld& mw = full_world();
        Outcome outcome;
        for (auto _ : state) {
          outcome = run_full(mw);
        }
        state.counters["misses"] = static_cast<double>(outcome.misses);
        state.counters["dirty"] = static_cast<double>(outcome.dirty);
      })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(smoke_mode() ? 1 : 10);
  benchmark::RegisterBenchmark(
      "BM_IncrementalRefresh",
      [](benchmark::State& state) {
        MonitorWorld& mw = incremental_world();
        Outcome outcome;
        std::size_t epoch = 0;
        for (auto _ : state) {
          outcome = run_incremental(mw, epoch++);
        }
        state.counters["hits"] = static_cast<double>(outcome.hits);
        state.counters["dirty"] = static_cast<double>(outcome.dirty);
        state.counters["memoized"] = static_cast<double>(outcome.memoized);
      })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(smoke_mode() ? 1 : 10);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
