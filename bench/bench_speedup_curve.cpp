// Experiment T5 (paper §3/§4): the sublinear-speedup cost curve. For each
// workload and PE count, reports speedup vs the reference run and the
// severity of the SublinearSpeedup property at the program region — lost
// cycles stay near zero for the scalable control app and grow steeply for
// the imbalanced/serial apps.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

using namespace kojak;

namespace {

const std::vector<int>& pe_counts() {
  static const std::vector<int> kPes = {1, 2, 4, 8, 16, 32, 64, 128};
  return kPes;
}

void print_curve(const char* workload_name, const perf::AppSpec& app) {
  bench::World world(app, pe_counts());
  cosy::Analyzer analyzer(world.model, *world.store, world.handles);

  support::TablePrinter table;
  table.add_column("PEs", support::TablePrinter::Align::kRight)
      .add_column("sum duration ms", support::TablePrinter::Align::kRight)
      .add_column("wall ms", support::TablePrinter::Align::kRight)
      .add_column("speedup", support::TablePrinter::Align::kRight)
      .add_column("total-cost severity", support::TablePrinter::Align::kRight)
      .add_column("bottleneck");

  const double reference_sum =
      world.data.runs[0].find_region("main")->incl_ms;
  for (std::size_t run = 0; run < pe_counts().size(); ++run) {
    const int pes = pe_counts()[run];
    const double sum_ms = world.data.runs[run].find_region("main")->incl_ms;
    const double wall_ms = sum_ms / pes;
    const double speedup = reference_sum / wall_ms;
    const cosy::AnalysisReport report = analyzer.analyze(run);
    double severity = 0.0;
    for (const cosy::Finding& finding : report.findings) {
      if (finding.property == "SublinearSpeedup" && finding.context == "main") {
        severity = finding.result.severity;
      }
    }
    const std::string bottleneck =
        report.bottleneck() == nullptr
            ? "-"
            : support::cat(report.bottleneck()->property, " @ ",
                           report.bottleneck()->context);
    table.add_row({std::to_string(pes), support::format_double(sum_ms, 6),
                   support::format_double(wall_ms, 6),
                   support::format_double(speedup, 4),
                   support::format_double(severity, 4), bottleneck});
  }
  std::cout << "\n--- " << workload_name << " ---\n" << table.render();
}

void BM_SimulateAndAnalyze(benchmark::State& state, perf::AppSpec app) {
  const int pes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    bench::World world(app, {1, pes});
    cosy::Analyzer analyzer(world.model, *world.store, world.handles);
    benchmark::DoNotOptimize(analyzer.analyze(1));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "\n=== T5: speedup and lost-cycles curves (paper: total cost "
               "= cycles lost vs the smallest-PE reference run) ===\n";
  print_curve("scalable_stencil (control)", perf::workloads::scalable_stencil());
  print_curve("imbalanced_ocean", perf::workloads::imbalanced_ocean());
  print_curve("serial_bottleneck (Amdahl)", perf::workloads::serial_bottleneck());
  std::cout << '\n';

  for (const auto& [name, factory] : perf::workloads::all_named()) {
    benchmark::RegisterBenchmark(
        support::cat("BM_SimulateAndAnalyze/", name, "/pe64").c_str(),
        [factory = factory](benchmark::State& state) {
          BM_SimulateAndAnalyze(state, factory());
        })
        ->Arg(64)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
