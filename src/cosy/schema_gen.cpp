#include "cosy/schema_gen.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::cosy {

using asl::Type;
using asl::TypeKind;

db::ValueType column_type(const Type& type) {
  switch (type.kind) {
    case TypeKind::kInt: return db::ValueType::kInt;
    case TypeKind::kFloat: return db::ValueType::kDouble;
    case TypeKind::kBool: return db::ValueType::kBool;
    case TypeKind::kString: return db::ValueType::kString;
    case TypeKind::kDateTime: return db::ValueType::kDateTime;
    case TypeKind::kClass: return db::ValueType::kInt;  // object id
    case TypeKind::kEnum: return db::ValueType::kInt;   // ordinal
    default:
      throw support::EvalError("attribute type has no column mapping");
  }
}

std::string junction_table(std::string_view class_name,
                           std::string_view attr_name) {
  return support::cat(class_name, "_", attr_name);
}

std::vector<std::string> generate_ddl(const asl::Model& model,
                                      const SchemaOptions& options) {
  std::vector<std::string> ddl;
  for (const asl::ClassInfo& cls : model.classes()) {
    std::string create = support::cat("CREATE TABLE ", cls.name,
                                      " (id INTEGER PRIMARY KEY");
    std::vector<std::string> ref_columns;
    for (const asl::AttrInfo& attr : cls.attrs) {
      if (attr.type.kind == TypeKind::kSet) continue;  // -> junction table
      create += support::cat(", ", attr.name, " ",
                             to_string(column_type(attr.type)));
      if (attr.type.kind == TypeKind::kClass) ref_columns.push_back(attr.name);
    }
    create += ")";
    ddl.push_back(std::move(create));
    ddl.push_back(support::cat("CREATE INDEX idx_", cls.name, "_id ON ",
                               cls.name, " (id)"));
    for (const std::string& ref : ref_columns) {
      ddl.push_back(support::cat("CREATE INDEX idx_", cls.name, "_", ref,
                                 " ON ", cls.name, " (", ref, ")"));
    }
    for (const asl::AttrInfo& attr : cls.attrs) {
      if (attr.type.kind != TypeKind::kSet) continue;
      const std::string junction = junction_table(cls.name, attr.name);
      std::string create =
          support::cat("CREATE TABLE ", junction,
                       " (owner INTEGER NOT NULL, member INTEGER NOT NULL)");
      // The per-region timing junctions dominate the store (runs x regions
      // x timing types rows); hash-partitioning them by owner keeps every
      // region's timings in one partition (per-region probes stay
      // single-shard and in insertion order) while whole-table scans
      // parallelize across partitions engine-side.
      if (cls.name == "Region" && options.region_timing_partitions > 1) {
        create += support::cat(" PARTITION BY HASH(owner) PARTITIONS ",
                               options.region_timing_partitions);
      }
      ddl.push_back(std::move(create));
      ddl.push_back(support::cat("CREATE INDEX idx_", junction, "_owner ON ",
                                 junction, " (owner)"));
      ddl.push_back(support::cat("CREATE INDEX idx_", junction, "_member ON ",
                                 junction, " (member)"));
    }
  }
  return ddl;
}

void create_schema(db::Database& db, const asl::Model& model,
                   const SchemaOptions& options) {
  for (const std::string& stmt : generate_ddl(model, options)) {
    db.execute(stmt);
  }
}

}  // namespace kojak::cosy
