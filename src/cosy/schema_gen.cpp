#include "cosy/schema_gen.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::cosy {

using asl::Type;
using asl::TypeKind;

db::ValueType column_type(const Type& type) {
  switch (type.kind) {
    case TypeKind::kInt: return db::ValueType::kInt;
    case TypeKind::kFloat: return db::ValueType::kDouble;
    case TypeKind::kBool: return db::ValueType::kBool;
    case TypeKind::kString: return db::ValueType::kString;
    case TypeKind::kDateTime: return db::ValueType::kDateTime;
    case TypeKind::kClass: return db::ValueType::kInt;  // object id
    case TypeKind::kEnum: return db::ValueType::kInt;   // ordinal
    default:
      throw support::EvalError("attribute type has no column mapping");
  }
}

std::string junction_table(std::string_view class_name,
                           std::string_view attr_name) {
  return support::cat(class_name, "_", attr_name);
}

std::vector<std::string> generate_ddl(const asl::Model& model,
                                      const SchemaOptions& options) {
  std::vector<std::string> ddl;
  // Two declarations for one junction would mean the first silently wins;
  // diagnose the conflict by name instead of letting the leftover surface
  // as a misleading "matches no setof attribute" below.
  for (std::size_t a = 0; a < options.junction_partitions.size(); ++a) {
    for (std::size_t b = a + 1; b < options.junction_partitions.size(); ++b) {
      const auto& first = options.junction_partitions[a];
      const auto& second = options.junction_partitions[b];
      if (first.class_name == second.class_name &&
          first.attr_name == second.attr_name) {
        throw support::EvalError(support::cat(
            "duplicate junction partition declaration for ", first.class_name,
            ".", first.attr_name));
      }
    }
  }
  std::vector<bool> matched(options.junction_partitions.size(), false);
  for (const asl::ClassInfo& cls : model.classes()) {
    std::string create = support::cat("CREATE TABLE ", cls.name,
                                      " (id INTEGER PRIMARY KEY");
    std::vector<std::string> ref_columns;
    for (const asl::AttrInfo& attr : cls.attrs) {
      if (attr.type.kind == TypeKind::kSet) continue;  // -> junction table
      create += support::cat(", ", attr.name, " ",
                             to_string(column_type(attr.type)));
      if (attr.type.kind == TypeKind::kClass) ref_columns.push_back(attr.name);
    }
    create += ")";
    if (options.columnar) create += " STORAGE COLUMNAR";
    ddl.push_back(std::move(create));
    ddl.push_back(support::cat("CREATE INDEX idx_", cls.name, "_id ON ",
                               cls.name, " (id)"));
    for (const std::string& ref : ref_columns) {
      ddl.push_back(support::cat("CREATE INDEX idx_", cls.name, "_", ref,
                                 " ON ", cls.name, " (", ref, ")"));
    }
    for (const asl::AttrInfo& attr : cls.attrs) {
      if (attr.type.kind != TypeKind::kSet) continue;
      const std::string junction = junction_table(cls.name, attr.name);
      std::string create =
          support::cat("CREATE TABLE ", junction,
                       " (owner INTEGER NOT NULL, member INTEGER NOT NULL)");
      // Explicit per-junction declarations win; otherwise the per-region
      // timing junctions dominate the store (runs x regions x timing types
      // rows) and hash-partition by owner: every region's timings stay in
      // one partition (per-region probes single-shard, insertion-ordered)
      // while whole-table scans parallelize across partitions engine-side.
      const SchemaOptions::JunctionPartition* declared = nullptr;
      for (std::size_t d = 0; d < options.junction_partitions.size(); ++d) {
        const auto& junction_partition = options.junction_partitions[d];
        if (junction_partition.class_name == cls.name &&
            junction_partition.attr_name == attr.name) {
          declared = &junction_partition;
          matched[d] = true;
          break;
        }
      }
      if (declared != nullptr) {
        if (declared->column != "owner" && declared->column != "member") {
          throw support::EvalError(support::cat(
              "junction partition column must be 'owner' or 'member', got '",
              declared->column, "' for ", junction));
        }
        if (declared->partitions > 1) {
          create += support::cat(" PARTITION BY HASH(", declared->column,
                                 ") PARTITIONS ", declared->partitions);
        }
      } else if (cls.name == "Region" && options.region_timing_partitions > 1) {
        create += support::cat(" PARTITION BY HASH(owner) PARTITIONS ",
                               options.region_timing_partitions);
      }
      if (options.columnar) create += " STORAGE COLUMNAR";
      ddl.push_back(std::move(create));
      ddl.push_back(support::cat("CREATE INDEX idx_", junction, "_owner ON ",
                                 junction, " (owner)"));
      ddl.push_back(support::cat("CREATE INDEX idx_", junction, "_member ON ",
                                 junction, " (member)"));
    }
  }
  // A declaration that matched no (class, setof attribute) pair is a typo,
  // not a no-op: silently skipping it would leave the junction a single
  // heap while the caller believes they partitioned it.
  for (std::size_t d = 0; d < matched.size(); ++d) {
    if (!matched[d]) {
      const auto& junction_partition = options.junction_partitions[d];
      throw support::EvalError(support::cat(
          "junction partition declaration matches no setof attribute: ",
          junction_partition.class_name, ".", junction_partition.attr_name));
    }
  }
  return ddl;
}

void create_schema(db::Database& db, const asl::Model& model,
                   const SchemaOptions& options) {
  for (const std::string& stmt : generate_ddl(model, options)) {
    db.execute(stmt);
  }
}

}  // namespace kojak::cosy
