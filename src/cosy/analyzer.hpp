#ifndef KOJAK_COSY_ANALYZER_HPP
#define KOJAK_COSY_ANALYZER_HPP

#include <optional>
#include <string>
#include <vector>

#include "asl/interp.hpp"
#include "cosy/store_builder.hpp"
#include "db/connection.hpp"

namespace kojak::db {
class ConnectionPool;
}

namespace kojak::cosy {

class PlanCache;
class ShardResultCache;

/// DEPRECATED thin alias for the named evaluation backends (see
/// eval_backend.hpp). Kept so existing configs keep compiling; every value
/// maps 1:1 onto a registry name via to_string(). New code — and anything
/// configurable from strings — should set AnalyzerConfig::backend instead,
/// which also reaches backends this enum never will (user-registered ones).
enum class EvalStrategy {
  kInterpreter,         // "interpreter"
  kSqlPushdown,         // "sql-pushdown"
  kClientFetch,         // "client-fetch"
  kBulkFetch,           // "bulk-fetch"
  kShardedInterpreter,  // "interpreter-sharded"
  kSqlWholeCondition,   // "sql-whole-condition" (paper §6, one stmt/context)
};

/// The registry name of a strategy (exact spelling EvalBackend::create
/// accepts).
[[nodiscard]] std::string_view to_string(EvalStrategy strategy);

struct AnalyzerConfig {
  /// Deprecated alias for `backend`; used only while `backend` is empty.
  EvalStrategy strategy = EvalStrategy::kInterpreter;
  /// Evaluation backend by registry name (e.g. "sql-whole-condition"); wins
  /// over `strategy` when non-empty. Unknown names throw, listing what is
  /// available.
  std::string backend;
  /// A property is a performance *problem* iff severity > threshold (§4).
  double problem_threshold = 0.05;
  /// Region whose duration normalizes severities; empty -> the main region.
  std::string basis_region;
  /// Deprecated alias: with the interpreter strategy selected, `parallel`
  /// upgrades it to the interpreter-sharded backend.
  bool parallel = false;
  /// Worker count for sharding backends (0 = hardware).
  std::size_t threads = 0;
  /// Evaluate only these properties (a "suite"); empty means every property
  /// of the model. Unknown names throw.
  std::vector<std::string> properties;
  /// Shared compiled-plan cache for the SQL backends (see PlanCache);
  /// null runs every translation from scratch, as the 1999 toolchain did.
  PlanCache* plan_cache = nullptr;
  /// Incremental shard-result cache for the whole-condition SQL backends
  /// (see ShardResultCache): per-partition `part<K>` CTE results persist
  /// across analyze() calls and only dirty partitions recompute.
  /// cosy::Monitor supplies one; null (the default) recomputes everything.
  ShardResultCache* shard_cache = nullptr;

  /// The backend name this config resolves to.
  [[nodiscard]] std::string backend_name() const;
};

/// One evaluated (property, context) pair.
struct Finding {
  std::string property;
  std::string context;  ///< region name or call-site label
  asl::PropertyResult result;

  [[nodiscard]] bool holds() const noexcept { return result.holds(); }
};

/// Ranked outcome of analyzing one test run (paper §3: "performance
/// properties are ranked according to their severity and presented to the
/// application programmer").
struct AnalysisReport {
  std::string program;
  /// Processing elements of the analyzed test run (the data model's NoPe).
  int pe_count = 0;
  double problem_threshold = 0.05;
  /// Properties that hold, sorted by decreasing severity (stable on ties).
  std::vector<Finding> findings;
  /// Contexts where evaluation was not applicable (data gaps), for audit.
  std::vector<Finding> not_applicable;
  std::uint64_t sql_queries = 0;  ///< statements issued (SQL backends)
  /// Plan-cache traffic (SQL backends with a PlanCache). Telemetry, not
  /// part of the deterministic contract: with a cache shared by concurrent
  /// analyses, racing workers may both compile a cold site, so the split
  /// between hits and misses can vary with scheduling.
  std::uint64_t plan_cache_hits = 0;    ///< SQL sites served by a cached plan
  std::uint64_t plan_cache_misses = 0;  ///< SQL sites compiled from scratch

  /// The unique bottleneck: the most severe property (§4), if any holds.
  [[nodiscard]] const Finding* bottleneck() const {
    return findings.empty() ? nullptr : &findings.front();
  }
  /// Findings whose severity exceeds the problem threshold.
  [[nodiscard]] std::vector<const Finding*> problems() const;
  /// True when the program needs no further tuning (§4: bottleneck is not a
  /// problem).
  [[nodiscard]] bool tuned() const {
    const Finding* top = bottleneck();
    return top == nullptr || top->result.severity <= problem_threshold;
  }

  /// Renders the ranked findings; `top_n == 0` means every finding (a
  /// zero-row cap would silently hide the ranking the report exists for).
  [[nodiscard]] std::string to_table(std::size_t top_n = 20) const;
};

/// One bound property context: the argument tuple plus its display label.
/// What the analyzer evaluates per run — and what cosy::Monitor watches
/// across epochs (cosy_tool --watch builds its watch list from these).
struct PropertyContext {
  const asl::PropertyInfo* property = nullptr;
  std::vector<asl::RtValue> args;
  std::string label;
};

/// Binds `prop`'s parameter list against the analyzed world: the first
/// Region/FunctionCall parameter iterates over the store's instances,
/// TestRun parameters bind `run`, later Region parameters bind `basis`.
/// Throws for parameter shapes the analyzer cannot bind.
[[nodiscard]] std::vector<PropertyContext> enumerate_property_contexts(
    const asl::Model& model, const StoreHandles& handles,
    const asl::PropertyInfo& prop, asl::ObjectId run, asl::ObjectId basis);

/// The COSY analysis engine: enumerates property contexts over one program
/// version and evaluates every property of the model.
class Analyzer {
 public:
  /// `store`/`handles` come from build_store; `conn` is required for the SQL
  /// strategies and must hold the same data (see import_store). `pool`
  /// supplies sessions for backends that shard one run's contexts across
  /// several database sessions (sql-sharded); either a connection or a pool
  /// satisfies such a backend.
  Analyzer(const asl::Model& model, const asl::ObjectStore& store,
           const StoreHandles& handles, db::Connection* conn = nullptr,
           db::ConnectionPool* pool = nullptr);

  /// Analyzes the test run at `run_index` (into handles.runs).
  [[nodiscard]] AnalysisReport analyze(std::size_t run_index,
                                       const AnalyzerConfig& config = {});

  /// Contexts enumerated per property for one run (bench bookkeeping).
  [[nodiscard]] std::size_t context_count() const;

 private:
  const asl::Model* model_;
  const asl::ObjectStore* store_;
  const StoreHandles* handles_;
  db::Connection* conn_;
  db::ConnectionPool* pool_;
};

}  // namespace kojak::cosy

#endif  // KOJAK_COSY_ANALYZER_HPP
