#ifndef KOJAK_COSY_ANALYZER_HPP
#define KOJAK_COSY_ANALYZER_HPP

#include <optional>
#include <string>
#include <vector>

#include "asl/interp.hpp"
#include "cosy/store_builder.hpp"
#include "db/connection.hpp"

namespace kojak::cosy {

/// How property conditions/severities are evaluated (paper §5 discusses the
/// work distribution between client and database):
///  * kInterpreter  — in-memory object store, no database involved;
///  * kSqlPushdown  — set operations compile to SQL, scalars client-side;
///  * kClientFetch  — record-at-a-time component access with all filtering
///                    and aggregation in the tool (the slow path §5 warns
///                    about: "first accessing the data components and
///                    evaluating the expressions in the analysis tool");
///  * kBulkFetch    — one bulk transfer of every table, then in-memory
///                    interpretation (a batch optimization of kClientFetch,
///                    kept as an ablation point).
enum class EvalStrategy { kInterpreter, kSqlPushdown, kClientFetch, kBulkFetch };

[[nodiscard]] std::string_view to_string(EvalStrategy strategy);

struct AnalyzerConfig {
  EvalStrategy strategy = EvalStrategy::kInterpreter;
  /// A property is a performance *problem* iff severity > threshold (§4).
  double problem_threshold = 0.05;
  /// Region whose duration normalizes severities; empty -> the main region.
  std::string basis_region;
  /// Evaluate contexts on the global thread pool (interpreter strategy only;
  /// results are reduced in deterministic order).
  bool parallel = false;
};

/// One evaluated (property, context) pair.
struct Finding {
  std::string property;
  std::string context;  ///< region name or call-site label
  asl::PropertyResult result;

  [[nodiscard]] bool holds() const noexcept { return result.holds(); }
};

/// Ranked outcome of analyzing one test run (paper §3: "performance
/// properties are ranked according to their severity and presented to the
/// application programmer").
struct AnalysisReport {
  std::string program;
  int nope = 0;
  double problem_threshold = 0.05;
  /// Properties that hold, sorted by decreasing severity (stable on ties).
  std::vector<Finding> findings;
  /// Contexts where evaluation was not applicable (data gaps), for audit.
  std::vector<Finding> not_applicable;
  std::uint64_t sql_queries = 0;  ///< statements issued (SQL strategies)

  /// The unique bottleneck: the most severe property (§4), if any holds.
  [[nodiscard]] const Finding* bottleneck() const {
    return findings.empty() ? nullptr : &findings.front();
  }
  /// Findings whose severity exceeds the problem threshold.
  [[nodiscard]] std::vector<const Finding*> problems() const;
  /// True when the program needs no further tuning (§4: bottleneck is not a
  /// problem).
  [[nodiscard]] bool tuned() const {
    return bottleneck() == nullptr ||
           bottleneck()->result.severity <= problem_threshold;
  }

  [[nodiscard]] std::string to_table(std::size_t top_n = 20) const;
};

/// The COSY analysis engine: enumerates property contexts over one program
/// version and evaluates every property of the model.
class Analyzer {
 public:
  /// `store`/`handles` come from build_store; `conn` is required for the SQL
  /// strategies and must hold the same data (see import_store).
  Analyzer(const asl::Model& model, const asl::ObjectStore& store,
           const StoreHandles& handles, db::Connection* conn = nullptr);

  /// Analyzes the test run at `run_index` (into handles.runs).
  [[nodiscard]] AnalysisReport analyze(std::size_t run_index,
                                       const AnalyzerConfig& config = {});

  /// Contexts enumerated per property for one run (bench bookkeeping).
  [[nodiscard]] std::size_t context_count() const;

 private:
  const asl::Model* model_;
  const asl::ObjectStore* store_;
  const StoreHandles* handles_;
  db::Connection* conn_;
};

}  // namespace kojak::cosy

#endif  // KOJAK_COSY_ANALYZER_HPP
