#include "cosy/monitor.hpp"

#include <algorithm>
#include <span>

#include "cosy/eval_backend.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::cosy {

using asl::PropertyResult;
using support::EvalError;

void IngestBatch::add(std::string table, std::vector<db::Value> row) {
  auto it = index_.find(table);
  if (it == index_.end()) {
    it = index_.emplace(table, groups_.size()).first;
    groups_.push_back({std::move(table), row.size(), {}, 0});
  }
  Group& group = groups_[it->second];
  if (row.size() != group.width) {
    throw EvalError(support::cat("ingest row width ", row.size(),
                                 " does not match earlier rows of ",
                                 group.table, " (", group.width, ")"));
  }
  group.values.insert(group.values.end(),
                      std::make_move_iterator(row.begin()),
                      std::make_move_iterator(row.end()));
  ++group.rows;
  ++rows_;
}

void IngestBatch::clear() {
  groups_.clear();
  index_.clear();
  rows_ = 0;
}

std::string_view to_string(DeltaKind kind) noexcept {
  switch (kind) {
    case DeltaKind::kRaised: return "raised";
    case DeltaKind::kCleared: return "cleared";
    case DeltaKind::kSeverityChanged: return "severity-changed";
  }
  return "?";
}

std::string EpochReport::to_summary() const {
  std::size_t raised = 0;
  std::size_t cleared = 0;
  std::size_t changed = 0;
  for (const FindingDelta& delta : deltas) {
    switch (delta.kind) {
      case DeltaKind::kRaised: ++raised; break;
      case DeltaKind::kCleared: ++cleared; break;
      case DeltaKind::kSeverityChanged: ++changed; break;
    }
  }
  std::string out = support::cat(
      "epoch ", epoch, " pass ", pass, ": ", findings.size(), " finding(s), +",
      raised, " raised, -", cleared, " cleared, ~", changed,
      " severity-changed; shard cache ", shard_cache_hits, " hit / ",
      shard_cache_misses, " miss, ", dirty_partitions_recomputed,
      " dirty partition(s) recomputed, ", statements_memoized,
      " statement(s) memoized; ", rows_ingested, " row(s) ingested\n");
  for (const FindingDelta& delta : deltas) {
    out += support::cat("  [", to_string(delta.kind), "] ", delta.property,
                        " @ ", delta.context);
    if (delta.kind == DeltaKind::kSeverityChanged) {
      out += support::cat("  severity ",
                          support::format_double(delta.severity_before, 4),
                          " -> ",
                          support::format_double(delta.severity_after, 4));
    } else if (delta.kind == DeltaKind::kRaised) {
      out += support::cat("  severity ",
                          support::format_double(delta.severity_after, 4));
    }
    out += "\n";
  }
  return out;
}

Monitor::Monitor(const asl::Model& model, db::Connection& conn,
                 MonitorOptions options)
    : model_(&model),
      conn_(&conn),
      options_(std::move(options)),
      plan_cache_(model, options_.max_plans),
      shard_cache_(options_.max_shard_entries) {}

Monitor::~Monitor() = default;

void Monitor::watch(const asl::PropertyInfo& property,
                    std::vector<asl::RtValue> args, std::string label) {
  watches_.push_back({&property, std::move(args), std::move(label)});
}

std::size_t Monitor::ingest(const IngestBatch& batch) {
  if (batch.empty()) return 0;
  db::Database& database = conn_->database();
  // One exclusive gate for the whole batch: an evaluate() snapshot sees all
  // of it or none of it, and concurrent producer ingests serialize here (so
  // the statement cache below needs no lock of its own).
  const db::Database::WriteGate gate = database.write_gate();
  const std::size_t cap = std::max<std::size_t>(1, options_.ingest_batch_rows);
  for (const IngestBatch::Group& group : batch.groups_) {
    std::size_t offset = 0;
    while (offset < group.rows) {
      const std::size_t n = std::min(cap, group.rows - offset);
      const std::string key = support::cat(group.table, "#", n);
      auto it = insert_cache_.find(key);
      if (it == insert_cache_.end()) {
        std::string sql = support::cat("INSERT INTO ", group.table, " VALUES ");
        for (std::size_t r = 0; r < n; ++r) {
          sql += r == 0 ? "(" : ", (";
          for (std::size_t c = 0; c < group.width; ++c) {
            sql += c == 0 ? "?" : ", ?";
          }
          sql += ")";
        }
        it = insert_cache_.emplace(key, database.prepare(sql)).first;
      }
      conn_->execute(it->second, std::span<const db::Value>(
                                     group.values.data() + offset * group.width,
                                     n * group.width));
      offset += n;
    }
  }
  rows_since_eval_ += batch.rows();
  return batch.rows();
}

EpochReport Monitor::evaluate() {
  db::Database& database = conn_->database();
  // Shared gate for the whole pass: ingest batches queue up behind it, so
  // every statement of the pass sees the same store epoch.
  const db::Database::ReadSnapshot snapshot = database.snapshot();
  const auto before = database.exec_stats();

  // The backend is created on the first pass and kept: a steady-state pass
  // reuses its evaluators' prepared statements instead of re-parsing every
  // compiled plan's SQL, which is most of a warm pass's cost.
  if (backend_ == nullptr) {
    EvalBackendDeps deps;
    deps.model = model_;
    deps.conn = conn_;
    deps.plan_cache = &plan_cache_;
    deps.threads = options_.threads;
    deps.shard_cache = &shard_cache_;
    backend_ = EvalBackend::create(options_.backend, deps);
  }

  std::vector<EvalRequest> requests;
  requests.reserve(watches_.size());
  for (const Watch& w : watches_) requests.push_back({w.property, &w.args});
  std::vector<PropertyResult> results(watches_.size());
  backend_->evaluate_all(requests, results);

  const auto after = database.exec_stats();

  EpochReport report;
  report.epoch = snapshot.epoch();
  report.pass = ++passes_;
  report.rows_ingested = rows_since_eval_;
  rows_since_eval_ = 0;
  report.shard_cache_hits = after.shard_cache_hits - before.shard_cache_hits;
  report.shard_cache_misses =
      after.shard_cache_misses - before.shard_cache_misses;
  report.dirty_partitions_recomputed = after.dirty_partitions_recomputed -
                                       before.dirty_partitions_recomputed;
  report.statements_memoized =
      after.statements_memoized - before.statements_memoized;

  std::map<std::pair<std::string, std::string>, PropertyResult> current;
  for (std::size_t i = 0; i < watches_.size(); ++i) {
    const Watch& w = watches_[i];
    const PropertyResult& result = results[i];
    if (result.holds()) {
      report.findings.push_back({w.property->name, w.label, result});
    }
    const auto prev = previous_.find({w.property->name, w.label});
    const bool held_before = prev != previous_.end() && prev->second.holds();
    if (result.holds() && !held_before) {
      report.deltas.push_back({DeltaKind::kRaised, w.property->name, w.label,
                               0.0, result.severity});
    } else if (!result.holds() && held_before) {
      report.deltas.push_back({DeltaKind::kCleared, w.property->name, w.label,
                               prev->second.severity, 0.0});
    } else if (result.holds() && held_before &&
               result.severity != prev->second.severity) {
      report.deltas.push_back({DeltaKind::kSeverityChanged, w.property->name,
                               w.label, prev->second.severity,
                               result.severity});
    }
    current.emplace(std::make_pair(w.property->name, w.label), result);
  }
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const MonitorFinding& a, const MonitorFinding& b) {
                     return a.result.severity > b.result.severity;
                   });
  previous_ = std::move(current);
  return report;
}

}  // namespace kojak::cosy
