#include "cosy/store_builder.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::cosy {

using asl::ObjectId;
using asl::ObjectStore;
using asl::RtValue;
using perf::ExperimentData;

StoreHandles build_store(ObjectStore& store, const ExperimentData& data) {
  const asl::Model& model = store.model();
  StoreHandles handles;

  const auto enum_id = model.find_enum("TimingType");
  if (!enum_id) {
    throw support::ImportError("data model lacks the TimingType enum");
  }

  handles.program = store.create("Program");
  store.set_attr(handles.program, "Name",
                 RtValue::of_string(data.structure.program_name));

  const ObjectId code = store.create("SourceCode");
  store.set_attr(code, "Text", RtValue::of_string(data.structure.source_code));

  handles.version = store.create("ProgVersion");
  store.set_attr(handles.version, "Compilation",
                 RtValue::of_int(data.structure.compilation_time));
  store.set_attr(handles.version, "Code", RtValue::of_object(code));
  store.add_to_set(handles.program, "Versions", handles.version);

  // Test runs.
  for (const perf::RunResult& run : data.runs) {
    const ObjectId run_obj = store.create("TestRun");
    store.set_attr(run_obj, "Start", RtValue::of_int(run.start_time));
    store.set_attr(run_obj, "NoPe", RtValue::of_int(run.nope));
    store.set_attr(run_obj, "Clockspeed", RtValue::of_int(run.clockspeed_mhz));
    store.add_to_set(handles.version, "Runs", run_obj);
    handles.runs.push_back(run_obj);
  }

  // Static structure: functions and regions.
  if (!data.structure.functions.empty() &&
      !data.structure.functions.front().regions.empty()) {
    handles.main_region = data.structure.functions.front().regions.front().name;
  }
  for (const perf::StaticFunction& fn : data.structure.functions) {
    const ObjectId fn_obj = store.create("Function");
    store.set_attr(fn_obj, "Name", RtValue::of_string(fn.name));
    store.add_to_set(handles.version, "Functions", fn_obj);
    handles.functions[fn.name] = fn_obj;
    for (const perf::StaticRegion& region : fn.regions) {
      const ObjectId region_obj = store.create("Region");
      store.set_attr(region_obj, "Name", RtValue::of_string(region.name));
      store.set_attr(region_obj, "Kind",
                     RtValue::of_string(std::string(to_string(region.kind))));
      store.add_to_set(fn_obj, "Regions", region_obj);
      if (handles.regions.contains(region.name)) {
        throw support::ImportError(
            support::cat("duplicate region name '", region.name, "'"));
      }
      handles.regions[region.name] = region_obj;
    }
  }
  // Parent links (second pass: parents may be declared in any order).
  for (const perf::StaticFunction& fn : data.structure.functions) {
    for (const perf::StaticRegion& region : fn.regions) {
      if (region.parent.empty()) continue;
      const auto parent = handles.regions.find(region.parent);
      if (parent == handles.regions.end()) {
        throw support::ImportError(support::cat("region '", region.name,
                                                "' has unknown parent '",
                                                region.parent, "'"));
      }
      store.set_attr(handles.regions.at(region.name), "ParentRegion",
                     RtValue::of_object(parent->second));
    }
  }

  // Call sites: owned by the *callee*'s Calls set (paper §4.1), pointing
  // back to the calling function and region.
  for (const perf::CallSite& site : data.structure.call_sites) {
    const auto callee = handles.functions.find(site.callee);
    const auto caller = handles.functions.find(site.caller);
    const auto region = handles.regions.find(site.calling_region);
    if (callee == handles.functions.end() || caller == handles.functions.end() ||
        region == handles.regions.end()) {
      throw support::ImportError(support::cat("call site ", site.caller, " -> ",
                                              site.callee, " @ ",
                                              site.calling_region,
                                              " references unknown entities"));
    }
    const ObjectId call_obj = store.create("FunctionCall");
    store.set_attr(call_obj, "Caller", RtValue::of_object(caller->second));
    store.set_attr(call_obj, "CallingReg", RtValue::of_object(region->second));
    store.add_to_set(callee->second, "Calls", call_obj);
    handles.call_sites.push_back(call_obj);
    handles.call_site_labels.push_back(support::cat(
        site.caller, " -> ", site.callee, " @ ", site.calling_region));
  }

  // Dynamic data per run.
  for (std::size_t run_index = 0; run_index < data.runs.size(); ++run_index) {
    const perf::RunResult& run = data.runs[run_index];
    const ObjectId run_obj = handles.runs[run_index];

    for (const perf::RegionTiming& timing : run.regions) {
      const auto region = handles.regions.find(timing.region);
      if (region == handles.regions.end()) {
        throw support::ImportError(support::cat("timing for unknown region '",
                                                timing.region, "'"));
      }
      const ObjectId total = store.create("TotalTiming");
      store.set_attr(total, "Run", RtValue::of_object(run_obj));
      store.set_attr(total, "Excl", RtValue::of_float(timing.excl_ms));
      store.set_attr(total, "Incl", RtValue::of_float(timing.incl_ms));
      store.set_attr(total, "Ovhd", RtValue::of_float(timing.ovhd_ms));
      store.add_to_set(region->second, "TotTimes", total);

      for (const auto& [type, ms] : timing.typed_ms) {
        const ObjectId typed = store.create("TypedTiming");
        store.set_attr(typed, "Run", RtValue::of_object(run_obj));
        store.set_attr(typed, "Type",
                       RtValue::of_enum(*enum_id,
                                        static_cast<std::int32_t>(type)));
        store.set_attr(typed, "Time", RtValue::of_float(ms));
        store.add_to_set(region->second, "TypTimes", typed);
      }
    }

    for (const perf::CallSiteTiming& call : run.calls) {
      if (call.site_index >= handles.call_sites.size()) {
        throw support::ImportError(support::cat("call timing for unknown site ",
                                                call.site_index));
      }
      const ObjectId ct = store.create("CallTiming");
      store.set_attr(ct, "Run", RtValue::of_object(run_obj));
      store.set_attr(ct, "MinCalls", RtValue::of_float(call.calls.min));
      store.set_attr(ct, "MaxCalls", RtValue::of_float(call.calls.max));
      store.set_attr(ct, "MeanCalls", RtValue::of_float(call.calls.mean));
      store.set_attr(ct, "StdevCalls", RtValue::of_float(call.calls.stddev));
      store.set_attr(ct, "MinCallsPe", RtValue::of_int(call.calls.min_pe));
      store.set_attr(ct, "MaxCallsPe", RtValue::of_int(call.calls.max_pe));
      store.set_attr(ct, "MinTime", RtValue::of_float(call.time_ms.min));
      store.set_attr(ct, "MaxTime", RtValue::of_float(call.time_ms.max));
      store.set_attr(ct, "MeanTime", RtValue::of_float(call.time_ms.mean));
      store.set_attr(ct, "StdevTime", RtValue::of_float(call.time_ms.stddev));
      store.set_attr(ct, "MinTimePe", RtValue::of_int(call.time_ms.min_pe));
      store.set_attr(ct, "MaxTimePe", RtValue::of_int(call.time_ms.max_pe));
      store.add_to_set(handles.call_sites[call.site_index], "Sums", ct);
    }
  }

  return handles;
}

StoreStats store_stats(const asl::ObjectStore& store) {
  StoreStats stats;
  stats.objects = store.size();
  const asl::Model& model = store.model();
  const auto count = [&](const char* cls) -> std::size_t {
    const auto id = model.find_class(cls);
    return id ? store.all_of(*id).size() : 0;
  };
  stats.regions = count("Region");
  stats.total_timings = count("TotalTiming");
  stats.typed_timings = count("TypedTiming");
  stats.call_timings = count("CallTiming");
  return stats;
}

}  // namespace kojak::cosy
