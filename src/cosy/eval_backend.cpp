#include "cosy/eval_backend.hpp"

#include <algorithm>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "cosy/db_import.hpp"
#include "cosy/sql_eval.hpp"
#include "db/connection.hpp"
#include "db/connection_pool.hpp"
#include "db/distributed.hpp"
#include "support/error.hpp"
#include "support/str.hpp"
#include "support/thread_pool.hpp"

namespace kojak::cosy {

using support::EvalError;

void EvalBackend::prepare(const asl::Model& model, asl::ObjectId run) {
  (void)run;
  if (&model != deps_.model) {
    throw EvalError(support::cat(
        "backend '", name(),
        "' was created for a different model instance; create one backend "
        "per (model, analysis)"));
  }
}

void EvalBackend::evaluate_all(std::span<const EvalRequest> requests,
                               std::span<asl::PropertyResult> results) {
  for (std::size_t i = 0; i < requests.size(); ++i) {
    results[i] = evaluate(*requests[i].property, *requests[i].args);
  }
}

namespace {

// ---------------------------------------------------------------------------
// Interpreter family

class InterpreterBackend : public EvalBackend {
 public:
  explicit InterpreterBackend(const EvalBackendDeps& deps)
      : EvalBackend(deps), interp_(*deps.model, *deps.store) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "interpreter";
  }

  [[nodiscard]] asl::PropertyResult evaluate(
      const asl::PropertyInfo& property,
      const std::vector<asl::RtValue>& args) override {
    return interp_.evaluate_property(property, args);
  }

 protected:
  const asl::Interpreter interp_;
};

/// The interpreter with the ROADMAP's intra-run parallelism: one huge run's
/// context list is split into contiguous shards, one per worker, and every
/// shard writes its own slice of the result array. The reduction order is
/// the request order regardless of scheduling, so reports are byte-identical
/// for any thread count.
class ShardedInterpreterBackend final : public InterpreterBackend {
 public:
  explicit ShardedInterpreterBackend(const EvalBackendDeps& deps)
      : InterpreterBackend(deps), threads_(deps.threads) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "interpreter-sharded";
  }

  void evaluate_all(std::span<const EvalRequest> requests,
                    std::span<asl::PropertyResult> results) override {
    const std::size_t n = requests.size();
    if (n == 0) return;
    if (threads_ == 0) {
      // No explicit worker count: shard on the long-lived process pool
      // instead of spawning threads per analysis (parallel_for chunks
      // contiguously; results are indexed, so reduction is deterministic).
      support::global_pool().parallel_for(n, [&](std::size_t i) {
        results[i] = interp_.evaluate_property(*requests[i].property,
                                               *requests[i].args);
      });
      return;
    }
    const std::size_t shards = std::min(threads_, n);
    if (shards <= 1) {
      EvalBackend::evaluate_all(requests, results);
      return;
    }
    // An explicit count gets its own pool: tests (and callers embedding the
    // backend under an already-saturated scheduler) rely on exactly this
    // many workers, which the hardware-sized global pool cannot promise.
    support::ThreadPool pool(shards);
    std::vector<std::future<void>> done;
    done.reserve(shards);
    const std::size_t chunk = (n + shards - 1) / shards;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t begin = s * chunk;
      const std::size_t end = std::min(begin + chunk, n);
      if (begin >= end) break;
      done.push_back(pool.submit([this, requests, results, begin, end] {
        for (std::size_t i = begin; i < end; ++i) {
          results[i] = interp_.evaluate_property(*requests[i].property,
                                                 *requests[i].args);
        }
      }));
    }
    for (std::future<void>& f : done) f.get();  // rethrows shard failures
  }

 private:
  std::size_t threads_;
};

// ---------------------------------------------------------------------------
// SQL family

class SqlBackend final : public EvalBackend {
 public:
  SqlBackend(std::string_view name, SqlEvalMode mode,
             const EvalBackendDeps& deps, bool common_subexpr = true)
      : EvalBackend(deps),
        name_(name),
        eval_(*deps.model, *deps.conn, mode, deps.plan_cache, common_subexpr) {
    eval_.set_shard_cache(deps.shard_cache);
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }

  [[nodiscard]] asl::PropertyResult evaluate(
      const asl::PropertyInfo& property,
      const std::vector<asl::RtValue>& args) override {
    return eval_.evaluate_property(property, args);
  }

  [[nodiscard]] EvalStats stats() const override {
    return {eval_.queries_issued(), eval_.plan_cache_hits(),
            eval_.plan_cache_misses(), eval_.whole_fallbacks()};
  }

 private:
  std::string_view name_;  // points at the registry key (stable)
  SqlEvaluator eval_;
};

/// The ROADMAP's sharded *SQL* backend: one run's context list is split into
/// contiguous shards, each shard leases its own session from the
/// db::ConnectionPool and drives a whole-condition (+CSE) SqlEvaluator over
/// it. Results land in their request slots, so the reduction is the same
/// deterministic index order `interpreter-sharded` uses — reports are
/// byte-identical to `sql-whole-condition` for any thread count. The shared
/// PlanCache (when supplied) means each property still compiles once per
/// analysis, not once per shard.
class ShardedSqlBackend final : public EvalBackend {
 public:
  explicit ShardedSqlBackend(const EvalBackendDeps& deps)
      : EvalBackend(deps), threads_(deps.threads) {
    if (deps.plan_cache != nullptr &&
        &deps.plan_cache->model() != deps.model) {
      // Same instance-pinning guard SqlEvaluator enforces, surfaced at
      // creation instead of first shard evaluation.
      throw EvalError(
          "plan cache was compiled against a different model instance; "
          "plans hold pointers into that model's AST");
    }
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "sql-sharded";
  }

  [[nodiscard]] asl::PropertyResult evaluate(
      const asl::PropertyInfo& property,
      const std::vector<asl::RtValue>& args) override {
    if (deps().conn != nullptr) {
      return primary().evaluate_property(property, args);
    }
    // Pool-only construction: lease a session for this one evaluation.
    db::ConnectionPool::Lease lease = deps().pool->acquire();
    SqlEvaluator eval(*deps().model, *lease, SqlEvalMode::kWholeCondition,
                      deps().plan_cache);
    eval.set_shard_cache(deps().shard_cache);
    const asl::PropertyResult result = eval.evaluate_property(property, args);
    absorb(eval);
    return result;
  }

  void evaluate_all(std::span<const EvalRequest> requests,
                    std::span<asl::PropertyResult> results) override {
    const std::size_t n = requests.size();
    if (n == 0) return;
    std::size_t shards =
        threads_ != 0 ? threads_
                      : std::max<std::size_t>(
                            1, std::thread::hardware_concurrency());
    if (deps().pool != nullptr) {
      // Never ask for more leases than the pool can hand out at once: a
      // shard holds its session for the whole chunk, so oversubscription
      // would serialize on acquire() without buying anything.
      shards = std::min(shards, deps().pool->capacity());
    }
    shards = std::min(shards, n);
    if (shards <= 1 || deps().pool == nullptr) {
      if (deps().conn == nullptr && deps().pool != nullptr) {
        // Serial, pool-only: hold one lease for the whole list instead of
        // re-leasing per context.
        db::ConnectionPool::Lease lease = deps().pool->acquire();
        SqlEvaluator eval(*deps().model, *lease, SqlEvalMode::kWholeCondition,
                          deps().plan_cache);
        eval.set_shard_cache(deps().shard_cache);
        for (std::size_t i = 0; i < n; ++i) {
          results[i] = eval.evaluate_property(*requests[i].property,
                                              *requests[i].args);
        }
        absorb(eval);
        return;
      }
      EvalBackend::evaluate_all(requests, results);
      return;
    }

    // Declaration order matters on the error path: the pool must be
    // destroyed (joining every worker) BEFORE the mutex and futures that
    // its tasks reference, or an exception rethrown from get() would
    // unwind them while shards still run.
    std::mutex stats_mutex;
    std::vector<std::future<void>> done;
    support::ThreadPool pool(shards);
    done.reserve(shards);
    const std::size_t chunk = (n + shards - 1) / shards;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t begin = s * chunk;
      const std::size_t end = std::min(begin + chunk, n);
      if (begin >= end) break;
      done.push_back(pool.submit([this, requests, results, begin, end,
                                  &stats_mutex] {
        db::ConnectionPool::Lease lease = deps().pool->acquire();
        SqlEvaluator eval(*deps().model, *lease, SqlEvalMode::kWholeCondition,
                          deps().plan_cache);
        eval.set_shard_cache(deps().shard_cache);
        for (std::size_t i = begin; i < end; ++i) {
          results[i] = eval.evaluate_property(*requests[i].property,
                                              *requests[i].args);
        }
        const std::lock_guard lock(stats_mutex);
        absorb(eval);
      }));
    }
    for (std::future<void>& f : done) f.get();  // rethrows shard failures
  }

  [[nodiscard]] EvalStats stats() const override {
    EvalStats out = stats_;
    if (primary_) {
      out.sql_queries += primary_->queries_issued();
      out.plan_cache_hits += primary_->plan_cache_hits();
      out.plan_cache_misses += primary_->plan_cache_misses();
      out.whole_fallbacks += primary_->whole_fallbacks();
    }
    return out;
  }

 private:
  SqlEvaluator& primary() {
    if (!primary_) {
      primary_.emplace(*deps().model, *deps().conn,
                       SqlEvalMode::kWholeCondition, deps().plan_cache);
      primary_->set_shard_cache(deps().shard_cache);
    }
    return *primary_;
  }

  void absorb(const SqlEvaluator& eval) {
    stats_.sql_queries += eval.queries_issued();
    stats_.plan_cache_hits += eval.plan_cache_hits();
    stats_.plan_cache_misses += eval.plan_cache_misses();
    stats_.whole_fallbacks += eval.whole_fallbacks();
  }

  std::size_t threads_;
  std::optional<SqlEvaluator> primary_;  // deps().conn-backed, serial path
  EvalStats stats_;  // accumulated from finished shard evaluators
};

/// The distributed scatter/gather backend: whole-condition evaluation with
/// statement execution routed through a db::Coordinator. Each statement's
/// partition-pinned `part<K>` CTEs scatter across Worker replicas (built
/// here from a ReplicaSet of the session's database unless the deps supply
/// a coordinator), the gathered rows are injected into the residual merge,
/// and failures/stragglers are absorbed by retry and re-issue — reports
/// stay byte-identical to `sql-whole-condition` for any worker count. The
/// worker kind follows the session's cost profile: modelled-remote workers
/// (each behind its own db::Connection paying per-shard wire costs) for
/// distributed profiles, in-process workers otherwise.
class DistributedSqlBackend final : public EvalBackend {
 public:
  explicit DistributedSqlBackend(const EvalBackendDeps& deps)
      : EvalBackend(deps) {
    if (deps.coordinator != nullptr) {
      coordinator_ = deps.coordinator;
    } else {
      if (deps.conn == nullptr) lease_.emplace(deps.pool->acquire());
      db::Connection& session = deps.conn != nullptr ? *deps.conn : **lease_;
      const std::size_t workers = deps.threads != 0 ? deps.threads : 2;
      replicas_.emplace(session.database(), workers);
      owned_coordinator_.emplace(
          session, db::make_workers(*replicas_, session.profile()));
      // Staleness guard: ingest into the session's database between
      // analyses version-bumps partitions, and the coordinator refreshes
      // the affected replica partitions before the next scatter.
      owned_coordinator_->attach_replicas(&*replicas_);
      coordinator_ = &*owned_coordinator_;
    }
    eval_.emplace(*deps.model, coordinator_->session(),
                  SqlEvalMode::kWholeCondition, deps.plan_cache);
    eval_->set_coordinator(coordinator_);
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "sql-distributed";
  }

  [[nodiscard]] asl::PropertyResult evaluate(
      const asl::PropertyInfo& property,
      const std::vector<asl::RtValue>& args) override {
    return eval_->evaluate_property(property, args);
  }

  [[nodiscard]] EvalStats stats() const override {
    return {eval_->queries_issued(), eval_->plan_cache_hits(),
            eval_->plan_cache_misses(), eval_->whole_fallbacks()};
  }

 private:
  // Declaration order is destruction order in reverse: the evaluator and
  // coordinator go before the replicas they execute against, the lease last.
  std::optional<db::ConnectionPool::Lease> lease_;
  std::optional<db::ReplicaSet> replicas_;
  std::optional<db::Coordinator> owned_coordinator_;
  db::Coordinator* coordinator_ = nullptr;
  std::optional<SqlEvaluator> eval_;
};

/// One bulk transfer of every table in prepare(), then in-memory
/// interpretation (the batch ablation point of the strategy comparison).
class BulkFetchBackend final : public EvalBackend {
 public:
  explicit BulkFetchBackend(const EvalBackendDeps& deps) : EvalBackend(deps) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "bulk-fetch";
  }

  void prepare(const asl::Model& model, asl::ObjectId run) override {
    EvalBackend::prepare(model, run);
    db::Connection& conn = *deps().conn;
    const std::uint64_t before = conn.statements_executed();
    fetched_.emplace(rebuild_store(conn, model));
    queries_ = conn.statements_executed() - before;
    interp_.emplace(model, *fetched_);
  }

  [[nodiscard]] asl::PropertyResult evaluate(
      const asl::PropertyInfo& property,
      const std::vector<asl::RtValue>& args) override {
    if (!interp_) {
      throw EvalError("bulk-fetch backend evaluated before prepare()");
    }
    return interp_->evaluate_property(property, args);
  }

  [[nodiscard]] EvalStats stats() const override {
    return {queries_, 0, 0, 0};
  }

 private:
  std::optional<asl::ObjectStore> fetched_;
  std::optional<asl::Interpreter> interp_;
  std::uint64_t queries_ = 0;
};

// ---------------------------------------------------------------------------
// Registry

struct Registry {
  std::mutex mutex;
  std::map<std::string, EvalBackend::Registration, std::less<>> entries;
};

Registry& registry() {
  static Registry instance;
  static const bool initialized = [] {
    Registry& r = instance;
    const auto add = [&r](EvalBackend::Registration reg) {
      std::string key = reg.name;
      r.entries.emplace(std::move(key), std::move(reg));
    };
    add({"interpreter", "tree-walking evaluation over the in-memory store",
         /*needs_store=*/true, /*needs_connection=*/false,
         [](const EvalBackendDeps& deps) {
           return std::make_unique<InterpreterBackend>(deps);
         }});
    add({"interpreter-sharded",
         "interpreter with the context list sharded across a thread pool "
         "(deterministic reduction order)",
         /*needs_store=*/true, /*needs_connection=*/false,
         [](const EvalBackendDeps& deps) {
           return std::make_unique<ShardedInterpreterBackend>(deps);
         }});
    add({"sql-pushdown",
         "set operations compile to SQL; scalar glue stays client-side",
         /*needs_store=*/false, /*needs_connection=*/true,
         [](const EvalBackendDeps& deps) {
           return std::make_unique<SqlBackend>(
               "sql-pushdown", SqlEvalMode::kPushdown, deps);
         }});
    add({"sql-whole-condition",
         "entire condition + confidence + severity compile into one "
         "parameterized statement per (property, context) with common "
         "subexpressions hoisted into CTEs and full-table aggregates over "
         "partitioned tables rewritten into per-partition CTE unions the "
         "engine materializes in parallel — paper §6",
         /*needs_store=*/false, /*needs_connection=*/true,
         [](const EvalBackendDeps& deps) {
           return std::make_unique<SqlBackend>(
               "sql-whole-condition", SqlEvalMode::kWholeCondition, deps);
         }});
    add({"sql-whole-condition-plain",
         "whole-condition compilation without the CSE/CTE pass (every "
         "repeated subexpression re-executes) and layout-blind (no "
         "partition-union rewrite); the ablation baseline",
         /*needs_store=*/false, /*needs_connection=*/true,
         [](const EvalBackendDeps& deps) {
           return std::make_unique<SqlBackend>(
               "sql-whole-condition-plain", SqlEvalMode::kWholeCondition,
               deps, /*common_subexpr=*/false);
         }});
    add({"sql-sharded",
         "whole-condition evaluation (incl. the partition-union rewrite) "
         "with one run's context list sharded across ConnectionPool "
         "sessions (deterministic reduction)",
         /*needs_store=*/false, /*needs_connection=*/true,
         [](const EvalBackendDeps& deps) {
           return std::make_unique<ShardedSqlBackend>(deps);
         },
         /*pool_satisfies_connection=*/true});
    add({"sql-distributed",
         "whole-condition statements executed through a coordinator/worker "
         "split: partition-pinned part<K> CTEs scatter to per-worker "
         "Database replicas (modelled-remote or in-process by connection "
         "profile) with straggler re-issue and retry-with-backoff, merged "
         "locally — byte-identical to sql-whole-condition",
         /*needs_store=*/false, /*needs_connection=*/true,
         [](const EvalBackendDeps& deps) {
           return std::make_unique<DistributedSqlBackend>(deps);
         },
         /*pool_satisfies_connection=*/true});
    add({"client-fetch",
         "record-at-a-time component fetching with all evaluation in the "
         "tool (the paper's §5 slow path)",
         /*needs_store=*/false, /*needs_connection=*/true,
         [](const EvalBackendDeps& deps) {
           return std::make_unique<SqlBackend>(
               "client-fetch", SqlEvalMode::kClientSide, deps);
         }});
    add({"bulk-fetch",
         "one bulk transfer per table, then in-memory interpretation",
         /*needs_store=*/false, /*needs_connection=*/true,
         [](const EvalBackendDeps& deps) {
           return std::make_unique<BulkFetchBackend>(deps);
         }});
    return true;
  }();
  (void)initialized;
  return instance;
}

const EvalBackend::Registration& find_registration(std::string_view name) {
  Registry& r = registry();
  const auto it = r.entries.find(name);
  if (it == r.entries.end()) {
    std::string available;
    for (const auto& [known, reg] : r.entries) {
      if (!available.empty()) available += ", ";
      available += known;
    }
    throw EvalError(support::cat("unknown evaluation backend '", name,
                                 "' (available: ", available, ")"));
  }
  return it->second;
}

}  // namespace

std::unique_ptr<EvalBackend> EvalBackend::create(std::string_view name,
                                                 const EvalBackendDeps& deps) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  const Registration& reg = find_registration(name);
  if (deps.model == nullptr) {
    throw EvalError(support::cat("backend '", name, "' needs a model"));
  }
  if (reg.needs_store && deps.store == nullptr) {
    throw EvalError(support::cat("backend '", name,
                                 "' needs an in-memory object store"));
  }
  if (reg.needs_connection && deps.conn == nullptr &&
      !(reg.pool_satisfies_connection && deps.pool != nullptr)) {
    throw EvalError(support::cat(
        "backend '", name, "' needs a database ",
        reg.pool_satisfies_connection ? "connection or connection pool"
                                      : "connection"));
  }
  return reg.factory(deps);
}

std::vector<std::string> EvalBackend::names() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  std::vector<std::string> out;
  out.reserve(r.entries.size());
  for (const auto& [name, reg] : r.entries) out.push_back(name);
  return out;
}

bool EvalBackend::exists(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  return r.entries.find(name) != r.entries.end();
}

std::string EvalBackend::describe(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  return find_registration(name).description;
}

bool EvalBackend::requires_connection(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  return find_registration(name).needs_connection;
}

void EvalBackend::register_backend(Registration registration) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  r.entries.insert_or_assign(registration.name, std::move(registration));
}

}  // namespace kojak::cosy
