#include "cosy/eval_backend.hpp"

#include <algorithm>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "cosy/db_import.hpp"
#include "cosy/sql_eval.hpp"
#include "db/connection.hpp"
#include "support/error.hpp"
#include "support/str.hpp"
#include "support/thread_pool.hpp"

namespace kojak::cosy {

using support::EvalError;

void EvalBackend::prepare(const asl::Model& model, asl::ObjectId run) {
  (void)run;
  if (&model != deps_.model) {
    throw EvalError(support::cat(
        "backend '", name(),
        "' was created for a different model instance; create one backend "
        "per (model, analysis)"));
  }
}

void EvalBackend::evaluate_all(std::span<const EvalRequest> requests,
                               std::span<asl::PropertyResult> results) {
  for (std::size_t i = 0; i < requests.size(); ++i) {
    results[i] = evaluate(*requests[i].property, *requests[i].args);
  }
}

namespace {

// ---------------------------------------------------------------------------
// Interpreter family

class InterpreterBackend : public EvalBackend {
 public:
  explicit InterpreterBackend(const EvalBackendDeps& deps)
      : EvalBackend(deps), interp_(*deps.model, *deps.store) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "interpreter";
  }

  [[nodiscard]] asl::PropertyResult evaluate(
      const asl::PropertyInfo& property,
      const std::vector<asl::RtValue>& args) override {
    return interp_.evaluate_property(property, args);
  }

 protected:
  const asl::Interpreter interp_;
};

/// The interpreter with the ROADMAP's intra-run parallelism: one huge run's
/// context list is split into contiguous shards, one per worker, and every
/// shard writes its own slice of the result array. The reduction order is
/// the request order regardless of scheduling, so reports are byte-identical
/// for any thread count.
class ShardedInterpreterBackend final : public InterpreterBackend {
 public:
  explicit ShardedInterpreterBackend(const EvalBackendDeps& deps)
      : InterpreterBackend(deps), threads_(deps.threads) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "interpreter-sharded";
  }

  void evaluate_all(std::span<const EvalRequest> requests,
                    std::span<asl::PropertyResult> results) override {
    const std::size_t n = requests.size();
    if (n == 0) return;
    if (threads_ == 0) {
      // No explicit worker count: shard on the long-lived process pool
      // instead of spawning threads per analysis (parallel_for chunks
      // contiguously; results are indexed, so reduction is deterministic).
      support::global_pool().parallel_for(n, [&](std::size_t i) {
        results[i] = interp_.evaluate_property(*requests[i].property,
                                               *requests[i].args);
      });
      return;
    }
    const std::size_t shards = std::min(threads_, n);
    if (shards <= 1) {
      EvalBackend::evaluate_all(requests, results);
      return;
    }
    // An explicit count gets its own pool: tests (and callers embedding the
    // backend under an already-saturated scheduler) rely on exactly this
    // many workers, which the hardware-sized global pool cannot promise.
    support::ThreadPool pool(shards);
    std::vector<std::future<void>> done;
    done.reserve(shards);
    const std::size_t chunk = (n + shards - 1) / shards;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t begin = s * chunk;
      const std::size_t end = std::min(begin + chunk, n);
      if (begin >= end) break;
      done.push_back(pool.submit([this, requests, results, begin, end] {
        for (std::size_t i = begin; i < end; ++i) {
          results[i] = interp_.evaluate_property(*requests[i].property,
                                                 *requests[i].args);
        }
      }));
    }
    for (std::future<void>& f : done) f.get();  // rethrows shard failures
  }

 private:
  std::size_t threads_;
};

// ---------------------------------------------------------------------------
// SQL family

class SqlBackend final : public EvalBackend {
 public:
  SqlBackend(std::string_view name, SqlEvalMode mode,
             const EvalBackendDeps& deps)
      : EvalBackend(deps),
        name_(name),
        eval_(*deps.model, *deps.conn, mode, deps.plan_cache) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }

  [[nodiscard]] asl::PropertyResult evaluate(
      const asl::PropertyInfo& property,
      const std::vector<asl::RtValue>& args) override {
    return eval_.evaluate_property(property, args);
  }

  [[nodiscard]] EvalStats stats() const override {
    return {eval_.queries_issued(), eval_.plan_cache_hits(),
            eval_.plan_cache_misses(), eval_.whole_fallbacks()};
  }

 private:
  std::string_view name_;  // points at the registry key (stable)
  SqlEvaluator eval_;
};

/// One bulk transfer of every table in prepare(), then in-memory
/// interpretation (the batch ablation point of the strategy comparison).
class BulkFetchBackend final : public EvalBackend {
 public:
  explicit BulkFetchBackend(const EvalBackendDeps& deps) : EvalBackend(deps) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "bulk-fetch";
  }

  void prepare(const asl::Model& model, asl::ObjectId run) override {
    EvalBackend::prepare(model, run);
    db::Connection& conn = *deps().conn;
    const std::uint64_t before = conn.statements_executed();
    fetched_.emplace(rebuild_store(conn, model));
    queries_ = conn.statements_executed() - before;
    interp_.emplace(model, *fetched_);
  }

  [[nodiscard]] asl::PropertyResult evaluate(
      const asl::PropertyInfo& property,
      const std::vector<asl::RtValue>& args) override {
    if (!interp_) {
      throw EvalError("bulk-fetch backend evaluated before prepare()");
    }
    return interp_->evaluate_property(property, args);
  }

  [[nodiscard]] EvalStats stats() const override {
    return {queries_, 0, 0, 0};
  }

 private:
  std::optional<asl::ObjectStore> fetched_;
  std::optional<asl::Interpreter> interp_;
  std::uint64_t queries_ = 0;
};

// ---------------------------------------------------------------------------
// Registry

struct Registry {
  std::mutex mutex;
  std::map<std::string, EvalBackend::Registration, std::less<>> entries;
};

Registry& registry() {
  static Registry instance;
  static const bool initialized = [] {
    Registry& r = instance;
    const auto add = [&r](EvalBackend::Registration reg) {
      std::string key = reg.name;
      r.entries.emplace(std::move(key), std::move(reg));
    };
    add({"interpreter", "tree-walking evaluation over the in-memory store",
         /*needs_store=*/true, /*needs_connection=*/false,
         [](const EvalBackendDeps& deps) {
           return std::make_unique<InterpreterBackend>(deps);
         }});
    add({"interpreter-sharded",
         "interpreter with the context list sharded across a thread pool "
         "(deterministic reduction order)",
         /*needs_store=*/true, /*needs_connection=*/false,
         [](const EvalBackendDeps& deps) {
           return std::make_unique<ShardedInterpreterBackend>(deps);
         }});
    add({"sql-pushdown",
         "set operations compile to SQL; scalar glue stays client-side",
         /*needs_store=*/false, /*needs_connection=*/true,
         [](const EvalBackendDeps& deps) {
           return std::make_unique<SqlBackend>(
               "sql-pushdown", SqlEvalMode::kPushdown, deps);
         }});
    add({"sql-whole-condition",
         "entire condition + confidence + severity compile into one "
         "parameterized statement per (property, context) — paper §6",
         /*needs_store=*/false, /*needs_connection=*/true,
         [](const EvalBackendDeps& deps) {
           return std::make_unique<SqlBackend>(
               "sql-whole-condition", SqlEvalMode::kWholeCondition, deps);
         }});
    add({"client-fetch",
         "record-at-a-time component fetching with all evaluation in the "
         "tool (the paper's §5 slow path)",
         /*needs_store=*/false, /*needs_connection=*/true,
         [](const EvalBackendDeps& deps) {
           return std::make_unique<SqlBackend>(
               "client-fetch", SqlEvalMode::kClientSide, deps);
         }});
    add({"bulk-fetch",
         "one bulk transfer per table, then in-memory interpretation",
         /*needs_store=*/false, /*needs_connection=*/true,
         [](const EvalBackendDeps& deps) {
           return std::make_unique<BulkFetchBackend>(deps);
         }});
    return true;
  }();
  (void)initialized;
  return instance;
}

const EvalBackend::Registration& find_registration(std::string_view name) {
  Registry& r = registry();
  const auto it = r.entries.find(name);
  if (it == r.entries.end()) {
    std::string available;
    for (const auto& [known, reg] : r.entries) {
      if (!available.empty()) available += ", ";
      available += known;
    }
    throw EvalError(support::cat("unknown evaluation backend '", name,
                                 "' (available: ", available, ")"));
  }
  return it->second;
}

}  // namespace

std::unique_ptr<EvalBackend> EvalBackend::create(std::string_view name,
                                                 const EvalBackendDeps& deps) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  const Registration& reg = find_registration(name);
  if (deps.model == nullptr) {
    throw EvalError(support::cat("backend '", name, "' needs a model"));
  }
  if (reg.needs_store && deps.store == nullptr) {
    throw EvalError(support::cat("backend '", name,
                                 "' needs an in-memory object store"));
  }
  if (reg.needs_connection && deps.conn == nullptr) {
    throw EvalError(support::cat("backend '", name,
                                 "' needs a database connection"));
  }
  return reg.factory(deps);
}

std::vector<std::string> EvalBackend::names() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  std::vector<std::string> out;
  out.reserve(r.entries.size());
  for (const auto& [name, reg] : r.entries) out.push_back(name);
  return out;
}

bool EvalBackend::exists(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  return r.entries.find(name) != r.entries.end();
}

std::string EvalBackend::describe(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  return find_registration(name).description;
}

bool EvalBackend::requires_connection(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  return find_registration(name).needs_connection;
}

void EvalBackend::register_backend(Registration registration) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  r.entries.insert_or_assign(registration.name, std::move(registration));
}

}  // namespace kojak::cosy
