#include "cosy/compare.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/error.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace kojak::cosy {

using support::cat;
using support::format_double;

std::vector<const PropertyDelta*> ComparisonReport::regressions(
    double threshold) const {
  std::vector<const PropertyDelta*> out;
  for (const PropertyDelta& delta : deltas) {
    if (delta.delta() > threshold) out.push_back(&delta);
  }
  return out;
}

std::string ComparisonReport::to_table(std::size_t top_n) const {
  support::TablePrinter table;
  table.add_column("property")
      .add_column("context")
      .add_column("before", support::TablePrinter::Align::kRight)
      .add_column("after", support::TablePrinter::Align::kRight)
      .add_column("delta", support::TablePrinter::Align::kRight)
      .add_column("");
  for (std::size_t i = 0; i < deltas.size() && i < top_n; ++i) {
    const PropertyDelta& d = deltas[i];
    const char* marker = d.vanished()  ? "fixed"
                         : d.appeared() ? "NEW"
                         : d.delta() < 0 ? "improved"
                                         : "REGRESSED";
    table.add_row({d.property, d.context,
                   d.appeared() ? "-" : format_double(d.severity_before, 4),
                   d.vanished() ? "-" : format_double(d.severity_after, 4),
                   format_double(d.delta(), 4), marker});
  }
  std::string out = cat("Version comparison of ", program, " on ", pe_count,
                        " PEs\n");
  out += table.render();
  out += cat("bottleneck: ", bottleneck_before, " (",
             format_double(bottleneck_severity_before, 4), ") -> ",
             bottleneck_after, " (",
             format_double(bottleneck_severity_after, 4), ")",
             improved() ? "  [improved]\n" : "  [NOT improved]\n");
  return out;
}

ComparisonReport compare_runs(const AnalysisReport& before,
                              const AnalysisReport& after) {
  if (before.pe_count != after.pe_count) {
    throw support::EvalError(
        cat("cannot compare runs with different PE counts (", before.pe_count,
            " vs ", after.pe_count, ")"));
  }

  ComparisonReport report;
  report.program = before.program;
  report.pe_count = before.pe_count;

  std::map<std::pair<std::string, std::string>, PropertyDelta> merged;
  for (const Finding& f : before.findings) {
    PropertyDelta& delta = merged[{f.property, f.context}];
    delta.property = f.property;
    delta.context = f.context;
    delta.severity_before = f.result.severity;
  }
  for (const Finding& f : after.findings) {
    PropertyDelta& delta = merged[{f.property, f.context}];
    delta.property = f.property;
    delta.context = f.context;
    delta.severity_after = f.result.severity;
  }
  report.deltas.reserve(merged.size());
  for (auto& [key, delta] : merged) report.deltas.push_back(std::move(delta));
  std::stable_sort(report.deltas.begin(), report.deltas.end(),
                   [](const PropertyDelta& a, const PropertyDelta& b) {
                     return std::fabs(a.delta()) > std::fabs(b.delta());
                   });

  const auto bottleneck_label = [](const AnalysisReport& r) -> std::string {
    const Finding* top = r.bottleneck();
    return top == nullptr ? "none" : cat(top->property, " @ ", top->context);
  };
  report.bottleneck_before = bottleneck_label(before);
  report.bottleneck_after = bottleneck_label(after);
  if (before.bottleneck() != nullptr) {
    report.bottleneck_severity_before = before.bottleneck()->result.severity;
  }
  if (after.bottleneck() != nullptr) {
    report.bottleneck_severity_after = after.bottleneck()->result.severity;
  }
  return report;
}

}  // namespace kojak::cosy
