#ifndef KOJAK_COSY_DB_IMPORT_HPP
#define KOJAK_COSY_DB_IMPORT_HPP

#include "asl/object_store.hpp"
#include "db/connection.hpp"

namespace kojak::cosy {

struct ImportStats {
  std::size_t rows = 0;
  std::size_t statements = 0;
  double virtual_ms = 0.0;  ///< modelled backend time consumed by the import
};

/// Transfers an object store into the relational database behind `conn`
/// (schema must exist; see create_schema). With `batch_rows <= 1` this is
/// row-at-a-time prepared INSERTs, as the 1999 toolchain did — what
/// experiment T1 measures across backend profiles. With `batch_rows > 1`
/// the bulk-ingest fast path groups up to that many rows per table into one
/// multi-row `INSERT ... VALUES (...), (...)` statement, cutting the
/// modelled per-statement round trips by ~batch_rows× while inserting the
/// identical rows in the identical order (partition routing is per row, so
/// the resulting store is byte-identical to the row-at-a-time import).
ImportStats import_store(db::Connection& conn, const asl::ObjectStore& store,
                         std::size_t batch_rows = 1);

/// Inverse of import_store: materializes every object of the model from the
/// database into a fresh store. This is the "first accessing the data
/// components and evaluating the expressions in the analysis tool" path of
/// §5, and the round-trip check of the schema generator.
[[nodiscard]] asl::ObjectStore rebuild_store(db::Connection& conn,
                                             const asl::Model& model);

/// RtValue -> database value conversion guided by the declared type.
[[nodiscard]] db::Value to_db_value(const asl::RtValue& value,
                                    const asl::Type& type);
/// Database value -> RtValue conversion guided by the declared type.
[[nodiscard]] asl::RtValue to_rt_value(const db::Value& value,
                                       const asl::Type& type);

}  // namespace kojak::cosy

#endif  // KOJAK_COSY_DB_IMPORT_HPP
