#include "cosy/report_render.hpp"

#include <algorithm>

#include <map>
#include <sstream>

#include "support/csv.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace kojak::cosy {

using support::cat;
using support::format_double;

std::string to_markdown(const AnalysisReport& report, std::size_t top_n) {
  std::ostringstream out;
  out << "# COSY analysis: " << report.program << " on " << report.pe_count
      << " PEs\n\n";
  out << "* problem threshold: " << format_double(report.problem_threshold, 4)
      << "\n* properties holding: " << report.findings.size()
      << "\n* performance problems: " << report.problems().size() << "\n";
  if (const Finding* top = report.bottleneck()) {
    out << "* **bottleneck**: `" << top->property << "` @ `" << top->context
        << "` (severity " << format_double(top->result.severity, 4) << ")"
        << (report.tuned() ? " — not a problem, no further tuning needed"
                           : " — performance problem")
        << "\n";
  } else {
    out << "* **bottleneck**: none (no property holds)\n";
  }

  out << "\n| # | property | context | condition | confidence | severity | "
         "problem |\n|---:|---|---|---|---:|---:|---|\n";
  for (std::size_t i = 0; i < report.findings.size() && i < top_n; ++i) {
    const Finding& f = report.findings[i];
    out << "| " << i + 1 << " | " << f.property << " | `" << f.context
        << "` | " << f.result.matched_condition << " | "
        << format_double(f.result.confidence, 3) << " | "
        << format_double(f.result.severity, 4) << " | "
        << (f.result.severity > report.problem_threshold ? "**yes**" : "no")
        << " |\n";
  }
  if (report.findings.size() > top_n) {
    out << "\n(" << report.findings.size() - top_n << " further findings "
        << "omitted)\n";
  }

  if (!report.not_applicable.empty()) {
    out << "\n## Not applicable (data gaps)\n\n";
    for (const Finding& f : report.not_applicable) {
      out << "* " << f.property << " @ `" << f.context << "`: "
          << f.result.note << "\n";
    }
  }
  return out.str();
}

std::string to_csv(const AnalysisReport& report) {
  std::ostringstream out;
  support::CsvWriter csv(out);
  csv.write_row({"rank", "property", "context", "condition", "confidence",
                 "severity", "problem"});
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    csv.write_row({std::to_string(i + 1), f.property, f.context,
                   f.result.matched_condition,
                   format_double(f.result.confidence),
                   format_double(f.result.severity),
                   f.result.severity > report.problem_threshold ? "yes" : "no"});
  }
  return out.str();
}

std::string severity_matrix(const std::vector<AnalysisReport>& reports,
                            std::size_t top_n) {
  // Collect severities per (property, context) across runs; rank rows by
  // their maximum severity so the table reads like the paper's output.
  std::map<std::string, std::vector<double>> rows;
  for (std::size_t r = 0; r < reports.size(); ++r) {
    for (const Finding& f : reports[r].findings) {
      auto& series = rows[cat(f.property, " @ ", f.context)];
      series.resize(reports.size(), 0.0);
      series[r] = f.result.severity;
    }
  }
  std::vector<std::pair<double, std::string>> ranked;
  for (const auto& [label, series] : rows) {
    double peak = 0;
    for (const double s : series) peak = std::max(peak, s);
    ranked.emplace_back(peak, label);
  }
  std::sort(ranked.rbegin(), ranked.rend());

  support::TablePrinter table;
  table.add_column("property @ context");
  for (const AnalysisReport& report : reports) {
    table.add_column(cat(report.pe_count, " PE"),
                     support::TablePrinter::Align::kRight);
  }
  for (std::size_t i = 0; i < ranked.size() && i < top_n; ++i) {
    std::vector<std::string> cells = {ranked[i].second};
    for (const double s : rows.at(ranked[i].second)) {
      cells.push_back(s == 0.0 ? "-" : format_double(s, 4));
    }
    table.add_row(std::move(cells));
  }
  return table.render();
}

}  // namespace kojak::cosy
