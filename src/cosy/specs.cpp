#include "cosy/specs.hpp"

#include <fstream>
#include <sstream>

#include "asl/sema.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

#ifndef KOJAK_SPEC_DIR
#error "KOJAK_SPEC_DIR must be defined by the build system"
#endif

namespace kojak::cosy {

namespace {

std::string read_spec_file(const char* name) {
  const std::string path = support::cat(KOJAK_SPEC_DIR, "/", name);
  std::ifstream in(path);
  if (!in) {
    throw support::ImportError(support::cat("cannot open spec file ", path));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

const std::string& cosy_model_source() {
  static const std::string source = read_spec_file("cosy_model.asl");
  return source;
}

const std::string& cosy_properties_source() {
  static const std::string source = read_spec_file("cosy_properties.asl");
  return source;
}

const std::string& extended_properties_source() {
  static const std::string source = read_spec_file("extended_properties.asl");
  return source;
}

asl::Model load_cosy_model(bool extended) {
  if (extended) {
    return asl::load_model({cosy_model_source(), cosy_properties_source(),
                            extended_properties_source()});
  }
  return asl::load_model({cosy_model_source(), cosy_properties_source()});
}

}  // namespace kojak::cosy
