#include "cosy/batch.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <tuple>

#include "cosy/eval_backend.hpp"
#include "cosy/sql_eval.hpp"
#include "support/error.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace kojak::cosy {

using support::EvalError;

std::string BatchSummary::to_table(std::size_t top_n) const {
  std::string out = support::cat(
      "Batch analysis: ", pooled_connections, " pooled sessions, ",
      support::format_double(wall_ms, 4), " ms wall, backend ",
      support::format_double(backend_total_ms, 4), " ms serial-equivalent / ",
      support::format_double(backend_makespan_ms, 4), " ms makespan\n",
      "SQL: ", sql_queries, " statements, plan cache ", plan_cache_hits,
      " hits / ", plan_cache_misses, " misses (",
      support::format_double(100.0 * plan_cache_hit_rate(), 4), "% hit rate)\n",
      "shared plan cache: ", shared_cache.hits, " hits / ",
      shared_cache.misses, " misses (",
      support::format_double(100.0 * shared_cache.hit_rate(), 4),
      "% hit rate), ", shared_cache_plans, " compiled plans resident\n");

  support::TablePrinter worst_table;
  worst_table.add_column("#", support::TablePrinter::Align::kRight)
      .add_column("suite")
      .add_column("property")
      .add_column("context")
      .add_column("run", support::TablePrinter::Align::kRight)
      .add_column("PEs", support::TablePrinter::Align::kRight)
      .add_column("severity", support::TablePrinter::Align::kRight);
  for (std::size_t i = 0; i < worst.size() && i < top_n; ++i) {
    const WorstContext& w = worst[i];
    worst_table.add_row({std::to_string(i + 1), w.suite, w.property, w.context,
                         std::to_string(w.run_index),
                         std::to_string(w.pe_count),
                         support::format_double(w.severity, 4)});
  }
  out += "worst contexts across runs:\n";
  out += worst_table.render();

  if (!regressions.empty()) {
    support::TablePrinter reg_table;
    reg_table.add_column("suite")
        .add_column("property")
        .add_column("context")
        .add_column("runs")
        .add_column("before", support::TablePrinter::Align::kRight)
        .add_column("after", support::TablePrinter::Align::kRight)
        .add_column("delta", support::TablePrinter::Align::kRight);
    for (std::size_t i = 0; i < regressions.size() && i < top_n; ++i) {
      const Regression& r = regressions[i];
      reg_table.add_row(
          {r.suite, r.property, r.context,
           support::cat(r.from_run, "->", r.to_run),
           support::format_double(r.severity_before, 4),
           support::format_double(r.severity_after, 4),
           support::format_double(r.delta(), 4)});
    }
    out += "scaling regressions (severity grew with the next run):\n";
    out += reg_table.render();
  } else {
    out += "scaling regressions: none\n";
  }
  return out;
}

const AnalysisReport* BatchResult::report_for(std::size_t run_index,
                                              std::string_view suite) const {
  for (const BatchItem& item : items) {
    if (item.run_index == run_index && item.suite == suite) {
      return &item.report;
    }
  }
  return nullptr;
}

BatchAnalyzer::BatchAnalyzer(const asl::Model& model,
                             const asl::ObjectStore& store,
                             const StoreHandles& handles,
                             db::ConnectionPool* pool)
    : model_(&model), store_(&store), handles_(&handles), pool_(pool) {}

BatchResult BatchAnalyzer::analyze_all(const BatchConfig& config) {
  std::vector<std::size_t> runs(handles_->runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) runs[i] = i;
  return analyze_runs(runs, {}, config);
}

BatchResult BatchAnalyzer::analyze_runs(std::span<const std::size_t> runs,
                                        std::span<const PropertySuite> suites,
                                        const BatchConfig& config) {
  const std::string backend = config.backend_name();
  // Resolving the requirement through the registry also validates the name
  // up front — before any worker spins up.
  const bool needs_db = EvalBackend::requires_connection(backend);
  if (needs_db && pool_ == nullptr) {
    throw EvalError(support::cat("batch backend '", backend,
                                 "' needs a connection pool"));
  }

  static const PropertySuite kAllSuite{"all", {}};
  if (suites.empty()) suites = std::span<const PropertySuite>(&kAllSuite, 1);

  // The shared plan cache: the caller's long-lived one, a per-batch one, or
  // none (translation from scratch per context, the pre-cache behavior).
  std::unique_ptr<PlanCache> owned_cache;
  PlanCache* cache = config.plan_cache;
  if (cache == nullptr && config.share_plan_cache && needs_db) {
    owned_cache = std::make_unique<PlanCache>(*model_);
    cache = owned_cache.get();
  }

  BatchResult result;
  result.items.resize(suites.size() * runs.size());

  const std::vector<double> clocks_before =
      pool_ != nullptr ? pool_->clock_snapshot_us() : std::vector<double>{};
  const db::ConnectionPool::Stats pool_before =
      pool_ != nullptr ? pool_->stats() : db::ConnectionPool::Stats{};
  const auto wall_start = std::chrono::steady_clock::now();

  // Distinct sessions that served this batch (exact, unlike the pool's
  // lifetime counters, which a caller-owned pool carries across batches).
  std::mutex used_mutex;
  std::set<const db::Connection*> used_sessions;

  const PlanCache::Stats cache_before =
      cache != nullptr ? cache->stats() : PlanCache::Stats{};

  std::vector<std::function<void()>> tasks;
  tasks.reserve(result.items.size());
  for (std::size_t s = 0; s < suites.size(); ++s) {
    for (std::size_t r = 0; r < runs.size(); ++r) {
      const std::size_t slot = s * runs.size() + r;
      tasks.push_back([this, slot, s, r, &suites, &runs, &config, cache,
                       needs_db, &backend, &result, &used_mutex,
                       &used_sessions] {
        AnalyzerConfig per_run;
        per_run.backend = backend;
        per_run.problem_threshold = config.problem_threshold;
        per_run.basis_region = config.basis_region;
        per_run.properties = suites[s].properties;
        per_run.plan_cache = cache;
        // Batch-level parallelism already saturates the workers; sharding
        // backends must not fan out again inside each task.
        per_run.threads = 1;

        BatchItem& item = result.items[slot];
        item.run_index = runs[r];
        item.suite = suites[s].name;
        if (!needs_db) {
          Analyzer analyzer(*model_, *store_, *handles_);
          item.report = analyzer.analyze(runs[r], per_run);
        } else {
          db::ConnectionPool::Lease lease = pool_->acquire();
          {
            const std::lock_guard lock(used_mutex);
            used_sessions.insert(lease.get());
          }
          Analyzer analyzer(*model_, *store_, *handles_, lease.get());
          item.report = analyzer.analyze(runs[r], per_run);
        }
      });
    }
  }

  support::ThreadPool workers(config.threads);
  workers.run_all(std::move(tasks));

  BatchSummary& summary = result.summary;
  summary.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
  if (pool_ != nullptr) {
    const std::vector<double> clocks_after = pool_->clock_snapshot_us();
    for (std::size_t i = 0; i < clocks_after.size(); ++i) {
      const double before = i < clocks_before.size() ? clocks_before[i] : 0.0;
      const double delta_ms = (clocks_after[i] - before) / 1000.0;
      summary.backend_total_ms += delta_ms;
      summary.backend_makespan_ms =
          std::max(summary.backend_makespan_ms, delta_ms);
    }
    const db::ConnectionPool::Stats now = pool_->stats();
    summary.pool.acquires = now.acquires - pool_before.acquires;
    summary.pool.reuses = now.reuses - pool_before.reuses;
    summary.pool.waits = now.waits - pool_before.waits;
    summary.pooled_connections = used_sessions.size();
  }
  if (cache != nullptr) {
    const PlanCache::Stats cache_after = cache->stats();
    summary.shared_cache.hits = cache_after.hits - cache_before.hits;
    summary.shared_cache.misses = cache_after.misses - cache_before.misses;
    summary.shared_cache_plans = cache->size();
  }

  for (const BatchItem& item : result.items) {
    summary.sql_queries += item.report.sql_queries;
    summary.plan_cache_hits += item.report.plan_cache_hits;
    summary.plan_cache_misses += item.report.plan_cache_misses;
    for (const Finding& finding : item.report.findings) {
      summary.worst.push_back({item.suite, finding.property, finding.context,
                               item.run_index, item.report.pe_count,
                               finding.result.severity});
    }
  }
  std::sort(summary.worst.begin(), summary.worst.end(),
            [](const BatchSummary::WorstContext& a,
               const BatchSummary::WorstContext& b) {
              if (a.severity != b.severity) return a.severity > b.severity;
              return std::tie(a.suite, a.property, a.context, a.run_index) <
                     std::tie(b.suite, b.property, b.context, b.run_index);
            });
  if (summary.worst.size() > config.top_contexts) {
    summary.worst.resize(config.top_contexts);
  }

  // Scaling regressions: same suite, same (property, context), severity
  // grew from one analyzed run to the next (in the order given).
  for (std::size_t s = 0; s < suites.size(); ++s) {
    for (std::size_t r = 0; r + 1 < runs.size(); ++r) {
      const AnalysisReport& before = result.items[s * runs.size() + r].report;
      const AnalysisReport& after =
          result.items[s * runs.size() + r + 1].report;
      for (const Finding& now : after.findings) {
        for (const Finding& prev : before.findings) {
          if (prev.property != now.property || prev.context != now.context) {
            continue;
          }
          if (now.result.severity > prev.result.severity) {
            summary.regressions.push_back(
                {suites[s].name, now.property, now.context, runs[r],
                 runs[r + 1], prev.result.severity, now.result.severity});
          }
          break;
        }
      }
    }
  }
  std::sort(summary.regressions.begin(), summary.regressions.end(),
            [](const Regression& a, const Regression& b) {
              if (a.delta() != b.delta()) return a.delta() > b.delta();
              return std::tie(a.suite, a.property, a.context, a.from_run) <
                     std::tie(b.suite, b.property, b.context, b.from_run);
            });

  return result;
}

}  // namespace kojak::cosy
