#ifndef KOJAK_COSY_COMPARE_HPP
#define KOJAK_COSY_COMPARE_HPP

#include <string>
#include <vector>

#include "cosy/analyzer.hpp"

namespace kojak::cosy {

/// Version-to-version comparison: the tuning loop the paper's multi-version
/// database exists for (§3: "multiple applications with different versions
/// and multiple test runs per program version"). Given the analysis of the
/// same-sized test run before and after a code change, reports which
/// performance properties improved, regressed, appeared, or vanished.
struct PropertyDelta {
  std::string property;
  std::string context;
  double severity_before = 0.0;
  double severity_after = 0.0;

  [[nodiscard]] double delta() const noexcept {
    return severity_after - severity_before;
  }
  [[nodiscard]] bool appeared() const noexcept { return severity_before == 0.0; }
  [[nodiscard]] bool vanished() const noexcept { return severity_after == 0.0; }
};

struct ComparisonReport {
  std::string program;
  int pe_count = 0;
  /// Sorted by |delta| descending: the biggest movements first.
  std::vector<PropertyDelta> deltas;
  /// Bottleneck movement.
  std::string bottleneck_before;
  std::string bottleneck_after;
  double bottleneck_severity_before = 0.0;
  double bottleneck_severity_after = 0.0;

  [[nodiscard]] bool improved() const noexcept {
    return bottleneck_severity_after < bottleneck_severity_before;
  }
  /// Regressions: properties whose severity grew by more than `threshold`.
  [[nodiscard]] std::vector<const PropertyDelta*> regressions(
      double threshold = 0.01) const;

  [[nodiscard]] std::string to_table(std::size_t top_n = 15) const;
};

/// Compares two analysis reports of equally-sized runs (same NoPe); throws
/// support::EvalError when the runs are not comparable.
[[nodiscard]] ComparisonReport compare_runs(const AnalysisReport& before,
                                            const AnalysisReport& after);

}  // namespace kojak::cosy

#endif  // KOJAK_COSY_COMPARE_HPP
