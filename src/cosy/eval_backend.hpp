#ifndef KOJAK_COSY_EVAL_BACKEND_HPP
#define KOJAK_COSY_EVAL_BACKEND_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "asl/interp.hpp"
#include "asl/model.hpp"

namespace kojak::db {
class Connection;
class ConnectionPool;
class Coordinator;
}

namespace kojak::cosy {

class PlanCache;
class ShardResultCache;

/// One (property, context) evaluation request: the property plus its
/// argument tuple, both owned by the caller for the duration of the call.
struct EvalRequest {
  const asl::PropertyInfo* property = nullptr;
  const std::vector<asl::RtValue>* args = nullptr;
};

/// Backend-side accounting of one analysis (mirrors the counters
/// AnalysisReport reports).
struct EvalStats {
  std::uint64_t sql_queries = 0;
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  /// sql-whole-condition only: contexts re-evaluated site-by-site because
  /// the single-statement path did not apply.
  std::uint64_t whole_fallbacks = 0;
};

/// Everything a backend may need, supplied by the analyzer. Which fields
/// must be non-null depends on the backend: the interpreter family needs
/// `store`, the SQL family needs `conn` (the registry checks and throws a
/// descriptive EvalError otherwise).
struct EvalBackendDeps {
  const asl::Model* model = nullptr;
  const asl::ObjectStore* store = nullptr;
  db::Connection* conn = nullptr;
  /// Session pool for backends that fan one run's context list out across
  /// multiple database sessions (sql-sharded). Backends that accept a pool
  /// fall back to `conn` when it is null (and vice versa).
  db::ConnectionPool* pool = nullptr;
  PlanCache* plan_cache = nullptr;
  /// Worker count for intra-run sharding backends; 0 means hardware.
  std::size_t threads = 0;
  /// Pre-built scatter/gather coordinator for sql-distributed (tests inject
  /// one with faulted workers). Null: the backend builds its own worker
  /// fleet — `threads` workers (default 2) over a ReplicaSet of the
  /// session's database, modelled-remote when the session profile is
  /// distributed, in-process otherwise.
  db::Coordinator* coordinator = nullptr;
  /// Incremental shard-result cache for the whole-condition SQL family
  /// (cosy::Monitor supplies one that lives across epochs): partition-pinned
  /// `part<K>` CTE results are served from cache and only dirty partitions
  /// recompute. Null: every pass recomputes everything (the cold behavior).
  /// Thread-safe, so the sharded backend shares it across its sessions.
  ShardResultCache* shard_cache = nullptr;
};

/// A property-evaluation engine behind a narrow, uniform contract:
///
///   prepare(model, run)  — once per analyzed run, before any evaluation;
///   evaluate(prop, args) — one (property, context) pair;
///   evaluate_all(...)    — a whole context list (overridable for intra-run
///                          parallelism; results are indexed by request, so
///                          any schedule reduces deterministically);
///   stats()              — the backend's accounting for the analysis.
///
/// Backends are named, listable, and constructible from config/CLI strings
/// through the registry (`EvalBackend::create`). Built-ins:
///
///   interpreter          — in-memory object store, the semantic reference;
///   interpreter-sharded  — the same, with the context list sharded across
///                          a support::ThreadPool (intra-run parallelism);
///   sql-pushdown         — set operations compile to SQL, scalars client-side;
///   sql-whole-condition  — the paper-§6 path: the entire condition +
///                          confidence + severity surface compiles into ONE
///                          parameterized statement per (property, context),
///                          with common subexpressions hoisted into CTEs
///                          (each shared subquery runs once per context);
///   sql-whole-condition-plain — the same without the CSE/CTE pass (the
///                          bench ablation baseline);
///   sql-sharded          — whole-condition evaluation with one run's
///                          context list sharded across ConnectionPool
///                          sessions (deterministic index-based reduction);
///   client-fetch         — the §5 slow path, record-at-a-time fetching;
///   bulk-fetch           — one bulk transfer per table, then interpretation.
///
/// An instance is single-analysis, single-thread (internal fan-out is the
/// backend's own business); the analyzer creates one per analyze() call so
/// stats stay per-report.
class EvalBackend {
 public:
  virtual ~EvalBackend() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Called once before evaluation of a run's contexts. `model` must be the
  /// instance the backend was created against.
  virtual void prepare(const asl::Model& model, asl::ObjectId run);

  [[nodiscard]] virtual asl::PropertyResult evaluate(
      const asl::PropertyInfo& property,
      const std::vector<asl::RtValue>& args) = 0;

  /// Evaluates `requests[i]` into `results[i]` for every i. The base
  /// implementation is a serial loop; sharding backends override it. The
  /// index-based contract keeps reduction order deterministic for any
  /// internal schedule.
  virtual void evaluate_all(std::span<const EvalRequest> requests,
                            std::span<asl::PropertyResult> results);

  [[nodiscard]] virtual EvalStats stats() const { return {}; }

  // --- registry ------------------------------------------------------------

  using Factory =
      std::function<std::unique_ptr<EvalBackend>(const EvalBackendDeps&)>;

  struct Registration {
    std::string name;
    std::string description;
    bool needs_store = false;
    bool needs_connection = false;
    Factory factory;
    /// When `needs_connection` is set, a ConnectionPool in the deps also
    /// satisfies the requirement (the backend leases its own sessions —
    /// sql-sharded). Defaults to false: most SQL backends drive exactly one
    /// session and dereference `conn` directly.
    bool pool_satisfies_connection = false;
  };

  /// Constructs the named backend. Throws support::EvalError for unknown
  /// names (the message lists what is available) and for missing deps.
  [[nodiscard]] static std::unique_ptr<EvalBackend> create(
      std::string_view name, const EvalBackendDeps& deps);

  /// Registered names, sorted; the registry is process-wide.
  [[nodiscard]] static std::vector<std::string> names();
  [[nodiscard]] static bool exists(std::string_view name);
  /// One-line description of a named backend (throws for unknown names).
  [[nodiscard]] static std::string describe(std::string_view name);
  /// Whether the named backend needs a database connection (drives pool
  /// acquisition in the batch engine; throws for unknown names).
  [[nodiscard]] static bool requires_connection(std::string_view name);

  /// Adds a backend to the registry (tools and tests can plug their own
  /// engines in). Re-registering an existing name replaces it.
  static void register_backend(Registration registration);

 protected:
  explicit EvalBackend(const EvalBackendDeps& deps) : deps_(deps) {}

  [[nodiscard]] const EvalBackendDeps& deps() const noexcept { return deps_; }

 private:
  EvalBackendDeps deps_;
};

}  // namespace kojak::cosy

#endif  // KOJAK_COSY_EVAL_BACKEND_HPP
