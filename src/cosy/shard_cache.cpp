#include "cosy/shard_cache.hpp"

#include "support/str.hpp"

namespace kojak::cosy {

std::string ShardResultCache::key(const std::string& fingerprint,
                                  std::size_t partition) {
  return support::cat(fingerprint, "#p", partition);
}

void ShardResultCache::touch(std::list<std::string>& lru, Entry& entry) {
  lru.splice(lru.begin(), lru, entry.lru_pos);
}

void ShardResultCache::upsert(EntryMap& map, std::list<std::string>& lru,
                              const std::string& k, std::uint64_t version,
                              std::shared_ptr<const db::QueryResult> rows) {
  auto it = map.find(k);
  if (it != map.end()) {
    it->second.version = version;
    it->second.rows = std::move(rows);
    touch(lru, it->second);
    return;
  }
  lru.push_front(k);
  map.emplace(k, Entry{version, std::move(rows), lru.begin()});
  if (max_entries_ != 0 && map.size() > max_entries_) {
    map.erase(lru.back());
    lru.pop_back();
    ++evictions_;
  }
}

ShardResultCache::Probe ShardResultCache::probe(const std::string& fingerprint,
                                                std::size_t partition,
                                                std::uint64_t version) {
  const std::string k = key(fingerprint, partition);
  std::lock_guard lock(mutex_);
  auto it = entries_.find(k);
  if (it != entries_.end() && it->second.version == version) {
    ++hits_;
    touch(lru_, it->second);
    return {it->second.rows, false};
  }
  ++misses_;
  const bool stale = it != entries_.end();
  if (stale) ++dirty_;
  return {nullptr, stale};
}

std::shared_ptr<const db::QueryResult> ShardResultCache::store(
    const std::string& fingerprint, std::size_t partition,
    std::uint64_t version, db::QueryResult rows) {
  const std::string k = key(fingerprint, partition);
  auto shared = std::make_shared<const db::QueryResult>(std::move(rows));
  std::lock_guard lock(mutex_);
  upsert(entries_, lru_, k, version, shared);
  return shared;
}

std::shared_ptr<const db::QueryResult> ShardResultCache::probe_statement(
    const std::string& fingerprint, std::uint64_t version) {
  std::lock_guard lock(mutex_);
  auto it = statement_entries_.find(fingerprint);
  if (it != statement_entries_.end() && it->second.version == version) {
    ++statement_hits_;
    touch(statement_lru_, it->second);
    return it->second.rows;
  }
  ++statement_misses_;
  return nullptr;
}

std::shared_ptr<const db::QueryResult> ShardResultCache::store_statement(
    const std::string& fingerprint, std::uint64_t version,
    db::QueryResult rows) {
  auto shared = std::make_shared<const db::QueryResult>(std::move(rows));
  std::lock_guard lock(mutex_);
  upsert(statement_entries_, statement_lru_, fingerprint, version, shared);
  return shared;
}

ShardResultCache::Stats ShardResultCache::stats() const {
  std::lock_guard lock(mutex_);
  return {hits_,
          misses_,
          dirty_,
          entries_.size(),
          statement_hits_,
          statement_misses_,
          statement_entries_.size(),
          evictions_};
}

void ShardResultCache::clear() {
  std::lock_guard lock(mutex_);
  entries_.clear();
  statement_entries_.clear();
  lru_.clear();
  statement_lru_.clear();
}

}  // namespace kojak::cosy
