#ifndef KOJAK_COSY_SHARD_CACHE_HPP
#define KOJAK_COSY_SHARD_CACHE_HPP

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "db/result.hpp"

namespace kojak::cosy {

/// Cross-epoch cache of materialized per-partition `part<K>` CTE results —
/// the storage half of incremental re-evaluation. The whole-condition
/// pipeline materializes full-table aggregates as one CTE per partition
/// (PR 5); those sub-results are pure functions of
///   (shard body SQL + bound parameters, referenced data versions),
/// so a monitor that re-runs the same plan after an ingest batch only needs
/// to recompute the partitions whose version token moved.
///
/// Keying: `fingerprint` identifies the *computation* — the caller builds it
/// from the rendered shard body text, the bound wire parameters, and the
/// owning database's identity/layout — while `version` is the data token
/// (the pinned partition's version combined with the versions of every other
/// table the body joins). The cache itself only compares tokens for
/// equality; all soundness reasoning lives with the caller (SqlEvaluator).
///
/// Results are held behind shared_ptr so an entry handed out for CTE
/// injection stays alive even if a concurrent store() replaces it.
/// Thread-safe; entries for a (fingerprint, partition) pair replace in
/// place, so the footprint is bounded by plans x partitions, not by epochs.
class ShardResultCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Misses where a prior entry existed at a different version — the
    /// "dirty partition" recomputes an incremental pass actually pays for
    /// (a first-touch miss is cold, not dirty).
    std::uint64_t dirty_recomputes = 0;
    std::size_t entries = 0;
    /// Whole-statement memo accounting (see probe_statement).
    std::uint64_t statement_hits = 0;
    std::uint64_t statement_misses = 0;
    std::size_t statement_entries = 0;
  };

  struct Probe {
    /// Non-null on hit: the cached partition rows at the probed version.
    std::shared_ptr<const db::QueryResult> rows;
    /// A prior entry existed but its version token differed (stale).
    bool stale = false;
  };

  /// Looks up (fingerprint, partition) and returns the cached rows when the
  /// stored version token equals `version`. Records hit/miss/dirty stats.
  [[nodiscard]] Probe probe(const std::string& fingerprint,
                            std::size_t partition, std::uint64_t version);

  /// Stores (replacing any prior entry for the pair) the materialized rows
  /// of one partition at `version`; returns the stored handle so the caller
  /// can inject it without re-probing.
  std::shared_ptr<const db::QueryResult> store(const std::string& fingerprint,
                                               std::size_t partition,
                                               std::uint64_t version,
                                               db::QueryResult rows);

  /// Whole-statement memo, one level above the partition entries: the final
  /// merged result of a statement whose `version` token covers EVERY table
  /// the statement reads (whole-table versions, computed by the caller). A
  /// hit means nothing the statement depends on changed since it last ran —
  /// the pass skips the statement entirely, not just its shard bodies.
  [[nodiscard]] std::shared_ptr<const db::QueryResult> probe_statement(
      const std::string& fingerprint, std::uint64_t version);
  std::shared_ptr<const db::QueryResult> store_statement(
      const std::string& fingerprint, std::uint64_t version,
      db::QueryResult rows);

  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  struct Entry {
    std::uint64_t version = 0;
    std::shared_ptr<const db::QueryResult> rows;
  };
  [[nodiscard]] static std::string key(const std::string& fingerprint,
                                       std::size_t partition);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::unordered_map<std::string, Entry> statement_entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t dirty_ = 0;
  std::uint64_t statement_hits_ = 0;
  std::uint64_t statement_misses_ = 0;
};

}  // namespace kojak::cosy

#endif  // KOJAK_COSY_SHARD_CACHE_HPP
