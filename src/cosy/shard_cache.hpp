#ifndef KOJAK_COSY_SHARD_CACHE_HPP
#define KOJAK_COSY_SHARD_CACHE_HPP

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "db/result.hpp"

namespace kojak::cosy {

/// Cross-epoch cache of materialized per-partition `part<K>` CTE results —
/// the storage half of incremental re-evaluation. The whole-condition
/// pipeline materializes full-table aggregates as one CTE per partition
/// (PR 5); those sub-results are pure functions of
///   (shard body SQL + bound parameters, referenced data versions),
/// so a monitor that re-runs the same plan after an ingest batch only needs
/// to recompute the partitions whose version token moved.
///
/// Keying: `fingerprint` identifies the *computation* — the caller builds it
/// from the rendered shard body text, the bound wire parameters, and the
/// owning database's identity/layout — while `version` is the data token
/// (the pinned partition's version combined with the versions of every other
/// table the body joins). The cache itself only compares tokens for
/// equality; all soundness reasoning lives with the caller (SqlEvaluator).
///
/// Results are held behind shared_ptr so an entry handed out for CTE
/// injection stays alive even if a concurrent store() replaces it.
/// Thread-safe; entries for a (fingerprint, partition) pair replace in
/// place, so the footprint is bounded by plans x partitions, not by epochs.
/// `max_entries` tightens that bound further (mirroring PlanCache's
/// `max_plans`): each level — partition entries and statement memos — holds
/// at most that many resident results, evicting least-recently-used first.
/// Evicted rows already handed out stay alive through their shared_ptr.
class ShardResultCache {
 public:
  /// `max_entries` caps each level independently (0 = unbounded).
  explicit ShardResultCache(std::size_t max_entries = 0)
      : max_entries_(max_entries) {}

  /// Maximum resident entries per level (0 = unbounded).
  [[nodiscard]] std::size_t capacity() const noexcept { return max_entries_; }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Misses where a prior entry existed at a different version — the
    /// "dirty partition" recomputes an incremental pass actually pays for
    /// (a first-touch miss is cold, not dirty).
    std::uint64_t dirty_recomputes = 0;
    std::size_t entries = 0;
    /// Whole-statement memo accounting (see probe_statement).
    std::uint64_t statement_hits = 0;
    std::uint64_t statement_misses = 0;
    std::size_t statement_entries = 0;
    /// Entries dropped by the LRU cap, across both levels.
    std::uint64_t evictions = 0;
  };

  struct Probe {
    /// Non-null on hit: the cached partition rows at the probed version.
    std::shared_ptr<const db::QueryResult> rows;
    /// A prior entry existed but its version token differed (stale).
    bool stale = false;
  };

  /// Looks up (fingerprint, partition) and returns the cached rows when the
  /// stored version token equals `version`. Records hit/miss/dirty stats.
  [[nodiscard]] Probe probe(const std::string& fingerprint,
                            std::size_t partition, std::uint64_t version);

  /// Stores (replacing any prior entry for the pair) the materialized rows
  /// of one partition at `version`; returns the stored handle so the caller
  /// can inject it without re-probing.
  std::shared_ptr<const db::QueryResult> store(const std::string& fingerprint,
                                               std::size_t partition,
                                               std::uint64_t version,
                                               db::QueryResult rows);

  /// Whole-statement memo, one level above the partition entries: the final
  /// merged result of a statement whose `version` token covers EVERY table
  /// the statement reads (whole-table versions, computed by the caller). A
  /// hit means nothing the statement depends on changed since it last ran —
  /// the pass skips the statement entirely, not just its shard bodies.
  [[nodiscard]] std::shared_ptr<const db::QueryResult> probe_statement(
      const std::string& fingerprint, std::uint64_t version);
  std::shared_ptr<const db::QueryResult> store_statement(
      const std::string& fingerprint, std::uint64_t version,
      db::QueryResult rows);

  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  struct Entry {
    std::uint64_t version = 0;
    std::shared_ptr<const db::QueryResult> rows;
    std::list<std::string>::iterator lru_pos;  // position in the level's LRU
  };
  using EntryMap = std::unordered_map<std::string, Entry>;
  [[nodiscard]] static std::string key(const std::string& fingerprint,
                                       std::size_t partition);

  // All three run with mutex_ held. `lru` is the level's recency list
  // (most recently used first); upsert evicts from the back once the level
  // exceeds max_entries_.
  void touch(std::list<std::string>& lru, Entry& entry);
  void upsert(EntryMap& map, std::list<std::string>& lru,
              const std::string& k, std::uint64_t version,
              std::shared_ptr<const db::QueryResult> rows);

  std::size_t max_entries_;
  mutable std::mutex mutex_;
  EntryMap entries_;
  EntryMap statement_entries_;
  std::list<std::string> lru_;            // partition-level recency
  std::list<std::string> statement_lru_;  // statement-level recency
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t dirty_ = 0;
  std::uint64_t statement_hits_ = 0;
  std::uint64_t statement_misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace kojak::cosy

#endif  // KOJAK_COSY_SHARD_CACHE_HPP
