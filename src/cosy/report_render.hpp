#ifndef KOJAK_COSY_REPORT_RENDER_HPP
#define KOJAK_COSY_REPORT_RENDER_HPP

#include <string>

#include "cosy/analyzer.hpp"

namespace kojak::cosy {

/// Renderers for the analysis result the tool presents to the application
/// programmer (paper §3). The plain-text table lives on AnalysisReport;
/// these produce the formats a report lands in downstream: Markdown for
/// humans, CSV for further processing.
///
/// Rendering a multi-run comparison follows the paper's workflow: the same
/// property/context pair tracked across test runs.

/// Markdown document: summary header, ranked findings table, problem list,
/// and the not-applicable audit section.
[[nodiscard]] std::string to_markdown(const AnalysisReport& report,
                                      std::size_t top_n = 25);

/// CSV with one row per finding: property, context, condition, confidence,
/// severity, problem flag.
[[nodiscard]] std::string to_csv(const AnalysisReport& report);

/// Side-by-side severity comparison of several runs of the same program
/// version (rows = property@context, columns = runs, values = severity).
[[nodiscard]] std::string severity_matrix(
    const std::vector<AnalysisReport>& reports, std::size_t top_n = 15);

}  // namespace kojak::cosy

#endif  // KOJAK_COSY_REPORT_RENDER_HPP
