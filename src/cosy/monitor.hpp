#ifndef KOJAK_COSY_MONITOR_HPP
#define KOJAK_COSY_MONITOR_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "asl/interp.hpp"
#include "asl/model.hpp"
#include "cosy/shard_cache.hpp"
#include "cosy/sql_eval.hpp"
#include "db/connection.hpp"

namespace kojak::cosy {

class EvalBackend;

/// One batch of rows bound for the store: per-table row groups, flattened
/// row-major. Built incrementally by a producer (a trace stream, the --watch
/// replay loop, a test) and handed to Monitor::ingest as a unit — the whole
/// batch lands under one store write gate, so an analyzer snapshot sees all
/// of it or none of it.
class IngestBatch {
 public:
  /// Appends one row. Every row of a table must carry the same width (the
  /// table's full column list, in schema order).
  void add(std::string table, std::vector<db::Value> row);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0; }
  void clear();

 private:
  friend class Monitor;
  struct Group {
    std::string table;
    std::size_t width = 0;          ///< values per row
    std::vector<db::Value> values;  ///< row-major flattened
    std::size_t rows = 0;
  };
  std::vector<Group> groups_;  // first-seen table order (= apply order)
  std::map<std::string, std::size_t> index_;
  std::size_t rows_ = 0;
};

/// How one watched (property, context) moved between consecutive
/// evaluation passes.
enum class DeltaKind {
  kRaised,           ///< did not hold (or first pass) -> holds
  kCleared,          ///< held -> no longer holds
  kSeverityChanged,  ///< held in both passes with a different severity
};

[[nodiscard]] std::string_view to_string(DeltaKind kind) noexcept;

struct FindingDelta {
  DeltaKind kind = DeltaKind::kRaised;
  std::string property;
  std::string context;
  double severity_before = 0.0;  ///< 0 for kRaised on the first pass
  double severity_after = 0.0;   ///< 0 for kCleared
};

/// One watched context's current verdict (mirrors cosy::Finding without the
/// run-report framing).
struct MonitorFinding {
  std::string property;
  std::string context;
  asl::PropertyResult result;
};

/// The outcome of one Monitor::evaluate pass: the findings at a pinned
/// store epoch, what changed since the previous pass, and the incremental
/// machinery's accounting for exactly this pass.
struct EpochReport {
  std::uint64_t epoch = 0;  ///< Database::store_epoch at evaluation time
  std::size_t pass = 0;     ///< 1-based evaluation pass number
  std::size_t rows_ingested = 0;  ///< rows this monitor ingested since the
                                  ///< previous pass
  /// Watched contexts whose property holds, sorted by severity descending
  /// (registration order breaks ties — deterministic for byte-comparison).
  std::vector<MonitorFinding> findings;
  /// Changes since the previous pass, in watch-registration order. The
  /// first pass reports every holding context as kRaised.
  std::vector<FindingDelta> deltas;
  /// exec_stats deltas over this pass (shard-result cache effectiveness).
  std::uint64_t shard_cache_hits = 0;
  std::uint64_t shard_cache_misses = 0;
  std::uint64_t dirty_partitions_recomputed = 0;
  /// Watched statements whose whole read set was version-unchanged — served
  /// from the statement memo without executing at all.
  std::uint64_t statements_memoized = 0;

  /// Human-readable pass summary plus one line per delta (what
  /// `cosy_tool --watch` prints each epoch).
  [[nodiscard]] std::string to_summary() const;
};

struct MonitorOptions {
  /// Evaluation backend (registry name). Must be a SQL-family backend — the
  /// monitor's world lives in the database, there is no object store. The
  /// shard-result cache makes re-evaluation incremental only for the
  /// whole-condition family; other backends still work, just cold.
  std::string backend = "sql-whole-condition";
  /// Worker threads for sharding backends (0 = hardware).
  std::size_t threads = 0;
  /// Rows per multi-row INSERT statement on the ingest path.
  std::size_t ingest_batch_rows = 64;
  /// Plan-cache cap (0 = unbounded); plans persist across passes.
  std::size_t max_plans = 0;
  /// Shard-result cache cap per level (0 = unbounded): at most this many
  /// partition results and this many statement memos stay resident, LRU
  /// evicted beyond that. Evictions only cost recomputes, never correctness.
  std::size_t max_shard_entries = 0;
};

/// The online-monitoring loop: ingest-batch -> incremental re-evaluate ->
/// report delta. A Monitor owns the epoch machinery end to end:
///
///   - `ingest` appends a batch under the store's write gate using multi-row
///     INSERTs (the bulk wire-cost model), bumping exactly the partitions
///     the rows hash into;
///   - `evaluate` re-runs every watched (property, context) under a read
///     snapshot (consistent epoch while a writer thread keeps batching),
///     serving unchanged partitions' `part<K>` CTE rows from an owned
///     ShardResultCache that lives across passes — only partitions the
///     ingest dirtied recompute;
///   - the returned EpochReport carries the findings, the raised / cleared /
///     severity-changed deltas against the previous pass, and the cache's
///     hit/miss/dirty accounting for the pass.
///
/// Thread shape: one Monitor, any number of producer threads calling
/// `ingest`, one analyzer thread calling `evaluate` — the gate/snapshot pair
/// serializes store access, everything else in here is confined to the
/// caller. The connection must outlive the monitor.
class Monitor {
 public:
  Monitor(const asl::Model& model, db::Connection& conn,
          MonitorOptions options = {});
  ~Monitor();

  /// Registers one (property, context) to re-evaluate every pass. `label`
  /// names the context in findings and deltas.
  void watch(const asl::PropertyInfo& property, std::vector<asl::RtValue> args,
             std::string label);
  [[nodiscard]] std::size_t watch_count() const noexcept {
    return watches_.size();
  }

  /// Applies one batch under the store write gate; returns rows inserted.
  std::size_t ingest(const IngestBatch& batch);

  /// One evaluation pass over the watch list at a consistent store epoch.
  [[nodiscard]] EpochReport evaluate();

  [[nodiscard]] std::size_t passes() const noexcept { return passes_; }
  [[nodiscard]] ShardResultCache& shard_cache() noexcept {
    return shard_cache_;
  }

 private:
  struct Watch {
    const asl::PropertyInfo* property;
    std::vector<asl::RtValue> args;
    std::string label;
  };

  const asl::Model* model_;
  db::Connection* conn_;
  MonitorOptions options_;
  PlanCache plan_cache_;
  ShardResultCache shard_cache_;
  /// The evaluation backend lives across passes: its evaluators keep their
  /// parsed prepared statements, so a steady-state pass re-parses nothing —
  /// it binds, probes the shard cache, and merges.
  std::unique_ptr<EvalBackend> backend_;
  std::vector<Watch> watches_;
  /// Prepared multi-row INSERTs keyed on "<table>#<rows>" (reused across
  /// batches; at most full-batch + one remainder shape per table).
  std::map<std::string, db::PreparedStatement> insert_cache_;
  /// Previous pass verdict per (property, context label).
  std::map<std::pair<std::string, std::string>, asl::PropertyResult> previous_;
  std::size_t passes_ = 0;
  std::size_t rows_since_eval_ = 0;
};

}  // namespace kojak::cosy

#endif  // KOJAK_COSY_MONITOR_HPP
