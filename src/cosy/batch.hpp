#ifndef KOJAK_COSY_BATCH_HPP
#define KOJAK_COSY_BATCH_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cosy/analyzer.hpp"
#include "cosy/sql_eval.hpp"
#include "db/connection_pool.hpp"

namespace kojak::cosy {

/// A named subset of the model's properties evaluated as one unit. An empty
/// property list means "every property of the model". Suites let one batch
/// answer different questions over the same data (the paper's suite vs. the
/// extended suite, or a user's custom screening set) without reloading
/// anything.
struct PropertySuite {
  std::string name;
  std::vector<std::string> properties;
};

struct BatchConfig {
  /// Deprecated alias for `backend`; used only while `backend` is empty.
  EvalStrategy strategy = EvalStrategy::kSqlPushdown;
  /// Evaluation backend by registry name (see eval_backend.hpp); wins over
  /// `strategy` when non-empty. Every (run, suite) task drives one backend
  /// instance of this name.
  std::string backend;
  /// Worker threads (and concurrently leased connections); 0 = hardware.
  std::size_t threads = 0;
  double problem_threshold = 0.05;
  /// Severity basis region; empty -> the main region (per AnalyzerConfig).
  std::string basis_region;
  /// Share one compiled-plan cache across all workers of this batch (SQL
  /// backends): each property's SQL translation happens once per batch
  /// instead of once per (run, context).
  bool share_plan_cache = true;
  /// Use this caller-owned cache instead of a per-batch one; survives the
  /// call, so a service analyzing batch after batch keeps its warm plans
  /// (the ROADMAP's "persist PlanCache across experiments"). The summary
  /// reports this batch's traffic on it as a delta.
  PlanCache* plan_cache = nullptr;
  /// Rows kept in the cross-run worst-context summary.
  std::size_t top_contexts = 10;

  /// The backend name this config resolves to.
  [[nodiscard]] std::string backend_name() const {
    return backend.empty() ? std::string(to_string(strategy)) : backend;
  }
};

/// One unit of batch work: a (run, suite) pair with its finished report.
struct BatchItem {
  std::size_t run_index = 0;
  std::string suite;
  AnalysisReport report;
};

/// What a severity looks like when it got worse between two analyzed runs
/// of the same suite (a scaling regression: same property, same context,
/// larger share of the basis duration).
struct Regression {
  std::string suite;
  std::string property;
  std::string context;
  std::size_t from_run = 0;
  std::size_t to_run = 0;
  double severity_before = 0.0;
  double severity_after = 0.0;

  [[nodiscard]] double delta() const noexcept {
    return severity_after - severity_before;
  }
};

/// Cross-run aggregation of a batch, plus the engine's own accounting.
struct BatchSummary {
  struct WorstContext {
    std::string suite;
    std::string property;
    std::string context;
    std::size_t run_index = 0;
    int pe_count = 0;
    double severity = 0.0;
  };
  /// The most severe findings across every (run, suite), deterministic
  /// order: severity desc, then suite/property/context/run asc.
  std::vector<WorstContext> worst;
  /// Severity increases between consecutive analyzed runs, worst first.
  std::vector<Regression> regressions;

  std::uint64_t sql_queries = 0;
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  [[nodiscard]] double plan_cache_hit_rate() const noexcept {
    const double total =
        static_cast<double>(plan_cache_hits + plan_cache_misses);
    return total == 0 ? 0.0 : static_cast<double>(plan_cache_hits) / total;
  }
  /// Traffic on the batch's shared PlanCache (a delta, so a caller-owned
  /// cache reused across batches reports per-batch numbers) and the
  /// distinct compiled plans resident after the batch. Matches the
  /// evaluator-side counters above unless other analyses share the cache
  /// concurrently.
  PlanCache::Stats shared_cache;
  std::size_t shared_cache_plans = 0;

  double wall_ms = 0.0;  ///< real engine time for the whole batch
  /// Modelled backend time consumed by this batch: `total` is the
  /// serial-equivalent cost, `makespan` the busiest pooled session — their
  /// ratio is the backend-side parallel speedup.
  double backend_total_ms = 0.0;
  double backend_makespan_ms = 0.0;
  db::ConnectionPool::Stats pool;
  /// Distinct pool sessions that served this batch (exact per batch, even
  /// on a caller-owned pool reused across batches).
  std::size_t pooled_connections = 0;

  [[nodiscard]] std::string to_table(std::size_t top_n = 10) const;
};

struct BatchResult {
  /// Suite-major, run-minor; findings are identical in order and content
  /// for any thread count (reports are reduced by task index, never by
  /// completion order). Only the telemetry counters (plan-cache hits and
  /// misses, timings) are scheduling-dependent.
  std::vector<BatchItem> items;
  BatchSummary summary;

  [[nodiscard]] const AnalysisReport* report_for(std::size_t run_index,
                                                 std::string_view suite) const;
};

/// The batch analysis engine: evaluates N test runs × M property suites
/// concurrently on a worker pool, drawing one database session per worker
/// from a ConnectionPool and sharing one compiled-plan cache, then reduces
/// the per-run reports into a deterministic cross-run summary. This is the
/// single-run Analyzer scaled to the ROADMAP's many-runs/many-users shape:
/// the per-run reports are byte-identical to what the sequential loop
/// produces, only the wall (and modelled backend) time changes.
class BatchAnalyzer {
 public:
  /// `pool` supplies sessions for the SQL strategies (it must hold the same
  /// imported data as `store`); the interpreter strategy needs none.
  BatchAnalyzer(const asl::Model& model, const asl::ObjectStore& store,
                const StoreHandles& handles,
                db::ConnectionPool* pool = nullptr);

  /// Analyzes every (run, suite) pair. Runs are run indices into
  /// handles.runs; an empty suite span means one "all" suite.
  [[nodiscard]] BatchResult analyze_runs(std::span<const std::size_t> runs,
                                         std::span<const PropertySuite> suites,
                                         const BatchConfig& config = {});

  /// Every run of the experiment under one "all" suite.
  [[nodiscard]] BatchResult analyze_all(const BatchConfig& config = {});

 private:
  const asl::Model* model_;
  const asl::ObjectStore* store_;
  const StoreHandles* handles_;
  db::ConnectionPool* pool_;
};

}  // namespace kojak::cosy

#endif  // KOJAK_COSY_BATCH_HPP
