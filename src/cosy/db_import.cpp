#include "cosy/db_import.hpp"

#include <algorithm>
#include <map>
#include <span>
#include <vector>

#include "cosy/schema_gen.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::cosy {

using asl::ObjectId;
using asl::RtValue;
using asl::Type;
using asl::TypeKind;
using support::EvalError;

db::Value to_db_value(const RtValue& value, const Type& type) {
  if (value.is_null()) return db::Value::null();
  switch (type.kind) {
    case TypeKind::kInt:
      return db::Value::integer(value.as_int());
    case TypeKind::kFloat:
      return db::Value::real(value.as_float());
    case TypeKind::kBool:
      return db::Value::boolean(value.as_bool());
    case TypeKind::kString:
      return db::Value::text(value.as_string());
    case TypeKind::kDateTime:
      return db::Value::datetime(value.as_int());
    case TypeKind::kClass:
      return db::Value::integer(static_cast<std::int64_t>(value.as_object()));
    case TypeKind::kEnum:
      return db::Value::integer(value.as_enum().ordinal);
    default:
      throw EvalError("value type has no database mapping");
  }
}

RtValue to_rt_value(const db::Value& value, const Type& type) {
  if (value.is_null()) return RtValue::null();
  switch (type.kind) {
    case TypeKind::kInt:
      return RtValue::of_int(value.as_int());
    case TypeKind::kFloat:
      return RtValue::of_float(value.as_double());
    case TypeKind::kBool:
      return RtValue::of_bool(value.as_bool());
    case TypeKind::kString:
      return RtValue::of_string(value.as_string());
    case TypeKind::kDateTime:
      return RtValue::of_int(value.as_datetime());
    case TypeKind::kClass:
      return RtValue::of_object(static_cast<ObjectId>(value.as_int()));
    case TypeKind::kEnum:
      return RtValue::of_enum(type.id, static_cast<std::int32_t>(value.as_int()));
    default:
      throw EvalError("column type has no runtime mapping");
  }
}

namespace {

/// The bulk-ingest fast path: one flattened value buffer per table, emitted
/// as multi-row `INSERT ... VALUES (...), (...)` statements of up to
/// `batch_rows` rows. Per-table row order matches the row-at-a-time import
/// exactly (objects in id order, set members in set order), and partition
/// routing is per row inside the engine, so the resulting store — heap
/// order, row ids, partition versions — is byte-identical; only the
/// statement count (and with it the modelled per-statement wire cost)
/// shrinks by ~batch_rows×.
ImportStats import_store_bulk(db::Connection& conn,
                              const asl::ObjectStore& store,
                              std::size_t batch_rows) {
  const asl::Model& model = store.model();
  ImportStats stats;
  const double start_ms = conn.clock().now_ms();
  const std::uint64_t start_stmts = conn.statements_executed();

  struct TableBuffer {
    std::string table;
    std::size_t width = 0;          ///< values per row
    std::vector<db::Value> values;  ///< row-major flattened
    std::size_t rows = 0;
  };
  // Class tables first (in class order), then junction tables (in owner
  // class + attribute order) — the same table grouping the schema declares.
  std::vector<TableBuffer> buffers;
  std::map<std::uint32_t, std::size_t> class_buffer;
  std::map<std::string, std::size_t> junction_buffer;
  for (std::uint32_t c = 0; c < model.classes().size(); ++c) {
    const asl::ClassInfo& cls = model.class_info(c);
    std::size_t width = 1;
    for (const asl::AttrInfo& attr : cls.attrs) {
      if (attr.type.kind != TypeKind::kSet) ++width;
    }
    class_buffer.emplace(c, buffers.size());
    buffers.push_back({cls.name, width, {}, 0});
    for (const asl::AttrInfo& attr : cls.attrs) {
      if (attr.type.kind != TypeKind::kSet) continue;
      const std::string junction = junction_table(cls.name, attr.name);
      junction_buffer.emplace(junction, buffers.size());
      buffers.push_back({junction, 2, {}, 0});
    }
  }

  for (ObjectId id = 0; id < store.size(); ++id) {
    const asl::Object& obj = store.object(id);
    const asl::ClassInfo& cls = model.class_info(obj.class_id);
    TableBuffer& buf = buffers[class_buffer.at(obj.class_id)];
    buf.values.push_back(db::Value::integer(id));
    for (std::size_t a = 0; a < cls.attrs.size(); ++a) {
      if (cls.attrs[a].type.kind == TypeKind::kSet) continue;
      buf.values.push_back(to_db_value(obj.attrs[a], cls.attrs[a].type));
    }
    ++buf.rows;
    ++stats.rows;
    for (std::size_t a = 0; a < cls.attrs.size(); ++a) {
      if (cls.attrs[a].type.kind != TypeKind::kSet) continue;
      if (obj.attrs[a].is_null()) continue;
      TableBuffer& jbuf = buffers[junction_buffer.at(
          junction_table(cls.name, cls.attrs[a].name))];
      for (const ObjectId member : obj.attrs[a].as_set()) {
        jbuf.values.push_back(db::Value::integer(id));
        jbuf.values.push_back(
            db::Value::integer(static_cast<std::int64_t>(member)));
        ++jbuf.rows;
        ++stats.rows;
      }
    }
  }

  for (TableBuffer& buf : buffers) {
    // At most two statement shapes per table: the full batch and one
    // remainder size, each prepared once.
    std::map<std::size_t, db::PreparedStatement> by_size;
    std::size_t offset = 0;
    while (offset < buf.rows) {
      const std::size_t n = std::min(batch_rows, buf.rows - offset);
      auto it = by_size.find(n);
      if (it == by_size.end()) {
        std::string sql = support::cat("INSERT INTO ", buf.table, " VALUES ");
        for (std::size_t r = 0; r < n; ++r) {
          sql += r == 0 ? "(" : ", (";
          for (std::size_t c = 0; c < buf.width; ++c) {
            sql += c == 0 ? "?" : ", ?";
          }
          sql += ")";
        }
        it = by_size.emplace(n, conn.database().prepare(sql)).first;
      }
      conn.execute(it->second,
                   std::span<const db::Value>(
                       buf.values.data() + offset * buf.width, n * buf.width));
      offset += n;
    }
  }

  stats.statements =
      static_cast<std::size_t>(conn.statements_executed() - start_stmts);
  stats.virtual_ms = conn.clock().now_ms() - start_ms;
  return stats;
}

}  // namespace

ImportStats import_store(db::Connection& conn, const asl::ObjectStore& store,
                         std::size_t batch_rows) {
  if (batch_rows > 1) return import_store_bulk(conn, store, batch_rows);
  const asl::Model& model = store.model();
  ImportStats stats;
  const double start_ms = conn.clock().now_ms();
  const std::uint64_t start_stmts = conn.statements_executed();

  // One prepared INSERT per class table and per junction table.
  std::map<std::uint32_t, db::PreparedStatement> class_insert;
  std::map<std::string, db::PreparedStatement> junction_insert;
  for (std::uint32_t c = 0; c < model.classes().size(); ++c) {
    const asl::ClassInfo& cls = model.class_info(c);
    std::string sql = support::cat("INSERT INTO ", cls.name, " VALUES (?");
    for (const asl::AttrInfo& attr : cls.attrs) {
      if (attr.type.kind != TypeKind::kSet) sql += ", ?";
    }
    sql += ")";
    class_insert.emplace(c, conn.database().prepare(sql));
    for (const asl::AttrInfo& attr : cls.attrs) {
      if (attr.type.kind != TypeKind::kSet) continue;
      const std::string junction = junction_table(cls.name, attr.name);
      junction_insert.emplace(
          junction, conn.database().prepare(support::cat(
                        "INSERT INTO ", junction, " VALUES (?, ?)")));
    }
  }

  for (ObjectId id = 0; id < store.size(); ++id) {
    const asl::Object& obj = store.object(id);
    const asl::ClassInfo& cls = model.class_info(obj.class_id);

    std::vector<db::Value> params;
    params.reserve(cls.attrs.size() + 1);
    params.push_back(db::Value::integer(id));
    for (std::size_t a = 0; a < cls.attrs.size(); ++a) {
      if (cls.attrs[a].type.kind == TypeKind::kSet) continue;
      params.push_back(to_db_value(obj.attrs[a], cls.attrs[a].type));
    }
    conn.execute(class_insert.at(obj.class_id), params);
    ++stats.rows;

    for (std::size_t a = 0; a < cls.attrs.size(); ++a) {
      if (cls.attrs[a].type.kind != TypeKind::kSet) continue;
      if (obj.attrs[a].is_null()) continue;
      const std::string junction = junction_table(cls.name, cls.attrs[a].name);
      db::PreparedStatement& insert = junction_insert.at(junction);
      for (const ObjectId member : obj.attrs[a].as_set()) {
        const std::vector<db::Value> link = {
            db::Value::integer(id),
            db::Value::integer(static_cast<std::int64_t>(member))};
        conn.execute(insert, link);
        ++stats.rows;
      }
    }
  }

  stats.statements =
      static_cast<std::size_t>(conn.statements_executed() - start_stmts);
  stats.virtual_ms = conn.clock().now_ms() - start_ms;
  return stats;
}

asl::ObjectStore rebuild_store(db::Connection& conn, const asl::Model& model) {
  asl::ObjectStore store(model);

  // Pass 1: discover every object (class, db id) and create placeholders in
  // id order so references can be remapped deterministically.
  std::vector<std::pair<std::int64_t, std::uint32_t>> discovered;  // (db id, class)
  for (std::uint32_t c = 0; c < model.classes().size(); ++c) {
    const asl::ClassInfo& cls = model.class_info(c);
    const db::QueryResult ids =
        conn.execute(support::cat("SELECT id FROM ", cls.name, " ORDER BY id"));
    for (const db::Row& row : ids.rows) {
      discovered.emplace_back(row[0].as_int(), c);
    }
  }
  std::sort(discovered.begin(), discovered.end());
  std::map<std::int64_t, ObjectId> remap;
  for (const auto& [db_id, class_id] : discovered) {
    remap[db_id] = store.create(class_id);
  }

  // Pass 2: scalar/ref attributes.
  for (std::uint32_t c = 0; c < model.classes().size(); ++c) {
    const asl::ClassInfo& cls = model.class_info(c);
    std::string sql = support::cat("SELECT id");
    std::vector<std::size_t> attr_of_column;
    for (std::size_t a = 0; a < cls.attrs.size(); ++a) {
      if (cls.attrs[a].type.kind == TypeKind::kSet) continue;
      sql += support::cat(", ", cls.attrs[a].name);
      attr_of_column.push_back(a);
    }
    sql += support::cat(" FROM ", cls.name);
    const db::QueryResult rows = conn.execute(sql);
    for (const db::Row& row : rows.rows) {
      const ObjectId target = remap.at(row[0].as_int());
      for (std::size_t col = 0; col < attr_of_column.size(); ++col) {
        const std::size_t a = attr_of_column[col];
        const Type& type = cls.attrs[a].type;
        RtValue value = to_rt_value(row[col + 1], type);
        if (type.kind == TypeKind::kClass && !value.is_null()) {
          value = RtValue::of_object(remap.at(
              static_cast<std::int64_t>(value.as_object())));
        }
        store.set_attr(target, a, std::move(value));
      }
    }
  }

  // Pass 3: junction tables -> set attributes.
  for (std::uint32_t c = 0; c < model.classes().size(); ++c) {
    const asl::ClassInfo& cls = model.class_info(c);
    for (const asl::AttrInfo& attr : cls.attrs) {
      if (attr.type.kind != TypeKind::kSet) continue;
      const db::QueryResult rows = conn.execute(
          support::cat("SELECT owner, member FROM ",
                       junction_table(cls.name, attr.name)));
      for (const db::Row& row : rows.rows) {
        store.add_to_set(remap.at(row[0].as_int()), attr.name,
                         remap.at(row[1].as_int()));
      }
    }
  }
  return store;
}

}  // namespace kojak::cosy
