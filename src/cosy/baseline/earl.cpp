#include "cosy/baseline/earl.hpp"

#include <map>

namespace kojak::cosy::baseline {

using perf::Event;
using perf::EventKind;

std::vector<EarlPatternResult> EarlAnalyzer::analyze(
    const std::vector<Event>& trace) const {
  EarlPatternResult barrier{"barrier_imbalance", 0, 0.0};
  EarlPatternResult late_recv{"late_receiver", 0, 0.0};
  EarlPatternResult io{"io_blocking", 0, 0.0};

  // Pending state per (pe, region): barrier entry time, send time, io begin.
  std::map<std::pair<std::uint32_t, std::string>, double> barrier_enter;
  std::map<std::pair<std::uint32_t, std::string>, double> send_at;
  std::map<std::pair<std::uint32_t, std::string>, double> io_begin;

  for (const Event& event : trace) {
    const std::pair<std::uint32_t, std::string> key{event.pe, event.region};
    switch (event.kind) {
      case EventKind::kBarrierEnter:
        barrier_enter[key] = event.t_ms;
        break;
      case EventKind::kBarrierExit: {
        const auto it = barrier_enter.find(key);
        if (it != barrier_enter.end()) {
          const double wait = event.t_ms - it->second;
          if (wait > 0.0) {
            ++barrier.matches;
            barrier.total_ms += wait;
          }
          barrier_enter.erase(it);
        }
        break;
      }
      case EventKind::kSend:
        send_at[key] = event.t_ms;
        break;
      case EventKind::kRecv: {
        const auto it = send_at.find(key);
        if (it != send_at.end()) {
          const double gap = event.t_ms - it->second;
          if (gap > 0.0) {
            ++late_recv.matches;
            late_recv.total_ms += gap;
          }
          send_at.erase(it);
        }
        break;
      }
      case EventKind::kIoBegin:
        io_begin[key] = event.t_ms;
        break;
      case EventKind::kIoEnd: {
        const auto it = io_begin.find(key);
        if (it != io_begin.end()) {
          ++io.matches;
          io.total_ms += event.t_ms - it->second;
          io_begin.erase(it);
        }
        break;
      }
      default:
        break;
    }
  }
  return {barrier, late_recv, io};
}

}  // namespace kojak::cosy::baseline
