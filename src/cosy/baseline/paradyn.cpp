#include "cosy/baseline/paradyn.hpp"

#include <array>
#include <functional>
#include <map>

#include "support/error.hpp"

namespace kojak::cosy::baseline {

using perf::RegionTiming;
using perf::TimingType;

namespace {

/// Inclusive metrics of one focus: typed overheads and exclusive compute
/// rolled up over the region subtree (children plus called functions —
/// Paradyn's resource hierarchy aggregates the whole focus).
struct Rollup {
  std::array<double, perf::kTimingTypeCount> typed{};
  double excl_ms = 0.0;
  double incl_ms = 0.0;

  [[nodiscard]] double typed_total(bool (*predicate)(TimingType)) const {
    double total = 0.0;
    for (std::size_t t = 0; t < typed.size(); ++t) {
      if (predicate(static_cast<TimingType>(t))) total += typed[t];
    }
    return total;
  }

  [[nodiscard]] double small_io() const {
    return typed[static_cast<std::size_t>(TimingType::kIOOpen)] +
           typed[static_cast<std::size_t>(TimingType::kIOClose)] +
           typed[static_cast<std::size_t>(TimingType::kIOSeek)];
  }
};

class RollupBuilder {
 public:
  RollupBuilder(const perf::ExperimentData& data, const perf::RunResult& run)
      : run_(run) {
    for (const perf::StaticFunction& fn : data.structure.functions) {
      for (const perf::StaticRegion& region : fn.regions) {
        if (!region.parent.empty()) {
          children_[region.parent].push_back(region.name);
        } else if (root_.empty() && fn.name != perf::kBarrierFunction) {
          root_ = region.name;
        }
        function_root_[fn.name] = fn.regions.front().name;
      }
    }
    // Call edges: a Call region's subtree includes the callee's body. The
    // synthetic barrier function is excluded — its wait time is already the
    // caller's Barrier overhead.
    for (const perf::CallSite& site : data.structure.call_sites) {
      if (site.callee == perf::kBarrierFunction) continue;
      const auto body = function_root_.find(site.callee);
      if (body != function_root_.end()) {
        children_[site.calling_region].push_back(body->second);
      }
    }
  }

  [[nodiscard]] const std::string& root() const { return root_; }
  [[nodiscard]] const std::vector<std::string>& children_of(
      const std::string& focus) const {
    static const std::vector<std::string> kNone;
    const auto it = children_.find(focus);
    return it == children_.end() ? kNone : it->second;
  }

  const Rollup& rollup(const std::string& focus) {
    const auto cached = cache_.find(focus);
    if (cached != cache_.end()) return cached->second;
    Rollup result;
    if (const RegionTiming* timing = run_.find_region(focus)) {
      result.excl_ms = timing->excl_ms;
      result.incl_ms = timing->incl_ms;
      for (const auto& [type, ms] : timing->typed_ms) {
        result.typed[static_cast<std::size_t>(type)] += ms;
      }
    }
    for (const std::string& child : children_of(focus)) {
      const Rollup& sub = rollup(child);
      result.excl_ms += sub.excl_ms;
      for (std::size_t t = 0; t < sub.typed.size(); ++t) {
        result.typed[t] += sub.typed[t];
      }
    }
    return cache_.emplace(focus, result).first->second;
  }

 private:
  const perf::RunResult& run_;
  std::map<std::string, std::vector<std::string>> children_;
  std::map<std::string, std::string> function_root_;
  std::string root_;
  std::map<std::string, Rollup> cache_;
};

}  // namespace

std::vector<std::string> ParadynSearch::hypotheses() {
  return {"CPUbound", "ExcessiveSyncWaitingTime", "ExcessiveIOBlockingTime",
          "TooManySmallIOOps"};
}

std::vector<ParadynFinding> ParadynSearch::search(
    const perf::ExperimentData& data, std::size_t run_index) const {
  if (run_index >= data.runs.size()) {
    throw support::EvalError("run index out of range");
  }
  const perf::RunResult& run = data.runs[run_index];
  RollupBuilder rollups(data, run);
  if (rollups.root().empty()) return {};
  const double program_ms = rollups.rollup(rollups.root()).incl_ms;
  if (program_ms <= 0.0) return {};

  struct Hypothesis {
    std::string name;
    double threshold;
    std::function<double(const Rollup&)> fraction;
  };
  const std::vector<Hypothesis> tests = {
      {"CPUbound", config_.cpu_bound_fraction,
       [](const Rollup& r) { return r.incl_ms > 0 ? r.excl_ms / r.incl_ms : 0.0; }},
      {"ExcessiveSyncWaitingTime", config_.sync_fraction,
       [](const Rollup& r) {
         return r.incl_ms > 0
                    ? r.typed_total(&perf::is_synchronization) / r.incl_ms
                    : 0.0;
       }},
      {"ExcessiveIOBlockingTime", config_.io_fraction,
       [](const Rollup& r) {
         return r.incl_ms > 0 ? r.typed_total(&perf::is_io) / r.incl_ms : 0.0;
       }},
      {"TooManySmallIOOps", config_.small_io_fraction,
       [](const Rollup& r) {
         const double io = r.typed_total(&perf::is_io);
         return io > 0 ? r.small_io() / io : 0.0;
       }},
  };

  std::vector<ParadynFinding> findings;
  for (const Hypothesis& hyp : tests) {
    const std::function<void(const std::string&, int)> refine =
        [&](const std::string& focus, int depth) {
          const Rollup& rollup = rollups.rollup(focus);
          if (rollup.incl_ms <= 0.0) return;
          const double value = hyp.fraction(rollup);
          if (value <= hyp.threshold) return;
          findings.push_back({hyp.name, focus, value, hyp.threshold, depth});
          // Paradyn's cost model gates refinement of insignificant foci.
          if (rollup.incl_ms < config_.refine_gate * program_ms) return;
          for (const std::string& child : rollups.children_of(focus)) {
            refine(child, depth + 1);
          }
        };
    refine(rollups.root(), 0);
  }
  return findings;
}

}  // namespace kojak::cosy::baseline
