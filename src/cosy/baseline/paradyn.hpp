#ifndef KOJAK_COSY_BASELINE_PARADYN_HPP
#define KOJAK_COSY_BASELINE_PARADYN_HPP

#include <string>
#include <vector>

#include "perf/apprentice.hpp"

namespace kojak::cosy::baseline {

/// Paradyn-style automatic search (paper §2 related work): a *fixed* set of
/// bottleneck hypotheses — CPUbound, ExcessiveSyncWaitingTime,
/// ExcessiveIOBlockingTime, TooManySmallIOOps — tested at the whole-program
/// focus and refined down the region tree where confirmed (the "why/where"
/// axes of the W3 search model). The contrast with ASL is the point of the
/// baseline: adding a hypothesis here means changing tool code, not editing
/// a specification document.
struct ParadynConfig {
  double cpu_bound_fraction = 0.75;   ///< excl/incl above this => CPUbound
  double sync_fraction = 0.10;        ///< barrier+lock time / incl
  double io_fraction = 0.10;          ///< io time / incl
  double small_io_fraction = 0.02;    ///< open+close+seek / total io
  /// A hypothesis is refined into children only above this share of the
  /// whole-program duration (Paradyn's cost model gates instrumentation).
  double refine_gate = 0.01;
};

struct ParadynFinding {
  std::string hypothesis;
  std::string focus;       ///< region name
  double value = 0.0;      ///< measured fraction
  double threshold = 0.0;
  int depth = 0;           ///< refinement depth (0 = whole program)
};

class ParadynSearch {
 public:
  explicit ParadynSearch(ParadynConfig config = {}) : config_(config) {}

  /// Runs the search over one test run; findings are ordered by the search's
  /// refinement walk (hypothesis major, depth-first focus minor).
  [[nodiscard]] std::vector<ParadynFinding> search(
      const perf::ExperimentData& data, std::size_t run_index) const;

  /// Names of the fixed hypothesis set.
  [[nodiscard]] static std::vector<std::string> hypotheses();

 private:
  ParadynConfig config_;
};

}  // namespace kojak::cosy::baseline

#endif  // KOJAK_COSY_BASELINE_PARADYN_HPP
