#ifndef KOJAK_COSY_BASELINE_EARL_HPP
#define KOJAK_COSY_BASELINE_EARL_HPP

#include <string>
#include <vector>

#include "perf/simulator.hpp"

namespace kojak::cosy::baseline {

/// EARL/EDL-style bottleneck detection (paper §2 related work): performance
/// problems are *event patterns* matched procedurally over the full trace.
/// The baselines bench uses this to demonstrate the cost model difference —
/// trace matching scales with event count, ASL property evaluation with the
/// size of the summary data.
struct EarlPatternResult {
  std::string pattern;
  std::size_t matches = 0;
  double total_ms = 0.0;  ///< accumulated waiting/blocking time
};

class EarlAnalyzer {
 public:
  /// Single pass over a time-ordered trace; recognizes:
  ///  * barrier_imbalance — per barrier episode, wait = exit - enter per PE;
  ///  * late_receiver     — RECV completing one latency after its SEND;
  ///  * io_blocking       — IO_BEGIN..IO_END intervals.
  [[nodiscard]] std::vector<EarlPatternResult> analyze(
      const std::vector<perf::Event>& trace) const;
};

}  // namespace kojak::cosy::baseline

#endif  // KOJAK_COSY_BASELINE_EARL_HPP
