#include "cosy/sql_eval.hpp"

#include <algorithm>
#include <limits>

#include "cosy/db_import.hpp"
#include "cosy/schema_gen.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::cosy {

using asl::ast::Expr;
using asl::EnumVal;
using asl::ObjectId;
using asl::PropertyResult;
using asl::RtValue;
using asl::Type;
using asl::TypeKind;
using support::EvalError;

namespace {

/// A runtime value paired with its static ASL type; the SQL strategy needs
/// the type to know which table an object id lives in.
struct TV {
  RtValue v;
  Type t;
};

bool references(const Expr& e, const std::string& name) {
  if (e.kind == Expr::Kind::kIdent && e.name == name) return true;
  // A nested binder of the same name shadows the outer one.
  if ((e.kind == Expr::Kind::kComprehension ||
       e.kind == Expr::Kind::kAggregate) &&
      e.name == name) {
    if (e.base && references(*e.base, name)) return true;
    return false;
  }
  if (e.base && references(*e.base, name)) return true;
  if (e.lhs && references(*e.lhs, name)) return true;
  if (e.rhs && references(*e.rhs, name)) return true;
  if (e.agg_value && references(*e.agg_value, name)) return true;
  if (e.filter && references(*e.filter, name)) return true;
  for (const auto& arg : e.args) {
    if (references(*arg, name)) return true;
  }
  return false;
}

}  // namespace

/// Expression evaluator with one environment; issues SQL through the owning
/// SqlEvaluator's connection.
class SqlExprEval {
 public:
  SqlExprEval(SqlEvaluator& owner) : owner_(owner) {}

  void push(std::string name, TV value) {
    env_.emplace_back(std::move(name), std::move(value));
  }
  void pop() { env_.pop_back(); }

  [[nodiscard]] const TV* find(std::string_view name) const {
    for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
      if (it->first == name) return &it->second;
    }
    return nullptr;
  }

  [[nodiscard]] const asl::Model& model() const { return *owner_.model_; }
  [[nodiscard]] bool client_side() const {
    return owner_.mode_ == SqlEvalMode::kClientSide;
  }

  db::QueryResult run(const std::string& sql) {
    ++owner_.queries_;
    return owner_.conn_->execute(sql);
  }

  // --- client-side set materialization (the §5 slow path) -------------------

  /// Fetches the member ids of a set expression with plain component
  /// accesses: one junction query per setof attribute, then per-member
  /// attribute fetches for every filter evaluation.
  std::pair<std::vector<ObjectId>, std::uint32_t> client_set_ids(const Expr& e) {
    if (e.kind == Expr::Kind::kMember) {
      const TV base = eval(*e.base);
      if (base.t.kind != TypeKind::kClass || base.v.is_null()) {
        throw EvalError("client fetch: set base must be a non-null object");
      }
      const asl::ClassInfo& cls = model().class_info(base.t.id);
      const auto attr = cls.find_attr(e.name);
      if (!attr || cls.attrs[*attr].type.kind != TypeKind::kSet) {
        throw EvalError(support::cat("client fetch: '", e.name,
                                     "' is not a setof attribute of ",
                                     cls.name));
      }
      const db::QueryResult members =
          run(support::cat("SELECT member FROM ",
                           junction_table(cls.name, e.name),
                           " WHERE owner = ", base.v.as_object()));
      std::vector<ObjectId> ids;
      ids.reserve(members.row_count());
      for (const db::Row& row : members.rows) {
        ids.push_back(static_cast<ObjectId>(row[0].as_int()));
      }
      return {std::move(ids), cls.attrs[*attr].type.id};
    }
    if (e.kind == Expr::Kind::kComprehension) {
      auto [ids, elem_class] = client_set_ids(*e.base);
      if (e.filter) {
        std::vector<ObjectId> kept;
        for (const ObjectId member : ids) {
          push(e.name, {RtValue::of_object(member), Type::class_of(elem_class)});
          const bool keep = eval(*e.filter).v.as_bool();
          pop();
          if (keep) kept.push_back(member);
        }
        ids = std::move(kept);
      }
      return {std::move(ids), elem_class};
    }
    throw EvalError(
        "client fetch: set expression must be a setof attribute chain or a "
        "comprehension over one");
  }

  TV eval_client_aggregate(const Expr& e) {
    auto [ids, elem_class] = client_set_ids(*e.base);
    double sum = 0.0;
    double best = 0.0;
    std::int64_t best_int = 0;
    bool best_is_int = false;
    std::size_t count = 0;
    bool first = true;
    for (const ObjectId member : ids) {
      push(e.name, {RtValue::of_object(member), Type::class_of(elem_class)});
      bool keep = true;
      if (e.filter) keep = eval(*e.filter).v.as_bool();
      if (keep) {
        if (e.agg_kind == asl::ast::AggKind::kCount) {
          ++count;
        } else {
          const TV v = eval(*e.agg_value);
          const double x = v.v.as_float();
          sum += x;
          ++count;
          const bool better =
              first || (e.agg_kind == asl::ast::AggKind::kMin ? x < best
                                                              : x > best);
          if ((e.agg_kind == asl::ast::AggKind::kMin ||
               e.agg_kind == asl::ast::AggKind::kMax) &&
              better) {
            best = x;
            best_is_int = v.v.is_int();
            best_int = best_is_int ? v.v.as_int() : 0;
          }
          first = false;
        }
      }
      pop();
    }
    switch (e.agg_kind) {
      case asl::ast::AggKind::kCount:
        return {RtValue::of_int(static_cast<std::int64_t>(count)),
                Type::of(TypeKind::kInt)};
      case asl::ast::AggKind::kSum:
        return {RtValue::of_float(sum), Type::of(TypeKind::kFloat)};
      case asl::ast::AggKind::kAvg:
        if (count == 0) throw EvalError("AVG over an empty set");
        return {RtValue::of_float(sum / static_cast<double>(count)),
                Type::of(TypeKind::kFloat)};
      case asl::ast::AggKind::kMin:
      case asl::ast::AggKind::kMax:
        if (count == 0) {
          throw EvalError(support::cat(asl::ast::to_string(e.agg_kind),
                                       " over an empty set"));
        }
        if (best_is_int) {
          return {RtValue::of_int(best_int), Type::of(TypeKind::kInt)};
        }
        return {RtValue::of_float(best), Type::of(TypeKind::kFloat)};
    }
    throw EvalError("unknown aggregate kind");
  }

  // --- set compilation -------------------------------------------------------

  struct SetQuery {
    std::string binder_name;
    std::string binder_alias = "b";
    std::uint32_t elem_class = 0;
    std::vector<std::string> from_joins;  // FROM fragment + JOIN fragments
    std::vector<std::string> conjuncts;
    int alias_counter = 0;

    [[nodiscard]] std::string from_where() const {
      std::string out = " FROM ";
      for (std::size_t i = 0; i < from_joins.size(); ++i) {
        if (i > 0) out += ' ';
        out += from_joins[i];
      }
      if (!conjuncts.empty()) {
        out += " WHERE ";
        for (std::size_t i = 0; i < conjuncts.size(); ++i) {
          if (i > 0) out += " AND ";
          out += conjuncts[i];
        }
      }
      return out;
    }
  };

  SetQuery compile_set(const Expr& e) {
    if (e.kind == Expr::Kind::kMember) {
      const TV base = eval(*e.base);
      if (base.t.kind != TypeKind::kClass) {
        throw EvalError("SQL strategy: set base must be an object");
      }
      const asl::ClassInfo& cls = model().class_info(base.t.id);
      const auto attr = cls.find_attr(e.name);
      if (!attr || cls.attrs[*attr].type.kind != TypeKind::kSet) {
        throw EvalError(support::cat("SQL strategy: '", e.name,
                                     "' is not a setof attribute of ",
                                     cls.name));
      }
      const ObjectId owner_id = base.v.as_object();
      if (owner_id == asl::kNullObject) {
        throw EvalError("SQL strategy: set access on null object");
      }
      SetQuery sq;
      sq.elem_class = cls.attrs[*attr].type.id;
      const std::string elem_table = model().class_info(sq.elem_class).name;
      sq.from_joins.push_back(junction_table(cls.name, e.name) + " j");
      sq.from_joins.push_back(
          support::cat("JOIN ", elem_table, " b ON b.id = j.member"));
      sq.conjuncts.push_back(support::cat("j.owner = ", owner_id));
      return sq;
    }
    if (e.kind == Expr::Kind::kComprehension) {
      SetQuery sq = compile_set(*e.base);
      sq.binder_name = e.name;
      if (e.filter) {
        sq.conjuncts.push_back(sql_expr(*e.filter, sq));
      }
      return sq;
    }
    throw EvalError(
        "SQL strategy: set expression must be a setof attribute chain or a "
        "comprehension over one");
  }

  /// Compiles a scalar expression over the binder of `sq` into SQL text;
  /// sub-expressions not touching the binder evaluate client-side into
  /// literals (this is how uncorrelated nested aggregates become scalar
  /// constants in the query).
  std::string sql_expr(const Expr& e, SetQuery& sq) {
    using Kind = Expr::Kind;
    if (!sq.binder_name.empty() && !references(e, sq.binder_name)) {
      return literal_of(eval(e));
    }
    switch (e.kind) {
      case Kind::kIdent:
        if (e.name == sq.binder_name) return sq.binder_alias + ".id";
        break;  // unreachable: non-binder idents hit the literal path
      case Kind::kMember:
        return compile_path(e, sq);
      case Kind::kUnary:
        if (e.un_op == asl::ast::UnOp::kNot) {
          return support::cat("(NOT ", sql_expr(*e.lhs, sq), ")");
        }
        return support::cat("(-", sql_expr(*e.lhs, sq), ")");
      case Kind::kBinary: {
        using asl::ast::BinOp;
        // `x == null` / `x != null` compile to IS [NOT] NULL.
        if (e.bin_op == BinOp::kEq || e.bin_op == BinOp::kNe) {
          const Expr* lhs = e.lhs.get();
          const Expr* rhs = e.rhs.get();
          const auto is_null_side = [&](const Expr& side) {
            return side.kind == Kind::kNullLit ||
                   (!references(side, sq.binder_name) && eval(side).v.is_null());
          };
          if (is_null_side(*rhs) || is_null_side(*lhs)) {
            const Expr& tested = is_null_side(*rhs) ? *lhs : *rhs;
            return support::cat("(", sql_expr(tested, sq),
                                e.bin_op == BinOp::kEq ? " IS NULL)"
                                                       : " IS NOT NULL)");
          }
        }
        const char* op = nullptr;
        switch (e.bin_op) {
          case BinOp::kAdd: op = "+"; break;
          case BinOp::kSub: op = "-"; break;
          case BinOp::kMul: op = "*"; break;
          case BinOp::kDiv: op = "/"; break;
          case BinOp::kEq: op = "="; break;
          case BinOp::kNe: op = "<>"; break;
          case BinOp::kLt: op = "<"; break;
          case BinOp::kLe: op = "<="; break;
          case BinOp::kGt: op = ">"; break;
          case BinOp::kGe: op = ">="; break;
          case BinOp::kAnd: op = "AND"; break;
          case BinOp::kOr: op = "OR"; break;
        }
        return support::cat("(", sql_expr(*e.lhs, sq), " ", op, " ",
                            sql_expr(*e.rhs, sq), ")");
      }
      default:
        break;
    }
    throw EvalError(support::cat(
        "SQL strategy: expression correlated with binder '", sq.binder_name,
        "' is not compilable (aggregates/calls over the binder are not "
        "supported)"));
  }

  /// Member chain rooted at the binder: each intermediate ref-attribute hop
  /// becomes a JOIN; the final attribute becomes a column reference.
  std::string compile_path(const Expr& e, SetQuery& sq) {
    // Unroll the chain: base-most first.
    std::vector<const Expr*> chain;
    const Expr* cur = &e;
    while (cur->kind == Expr::Kind::kMember) {
      chain.push_back(cur);
      cur = cur->base.get();
    }
    if (cur->kind != Expr::Kind::kIdent || cur->name != sq.binder_name) {
      throw EvalError("SQL strategy: member path must be rooted at the binder");
    }
    std::reverse(chain.begin(), chain.end());

    std::string alias = sq.binder_alias;
    std::uint32_t cls_id = sq.elem_class;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      const asl::ClassInfo& cls = model().class_info(cls_id);
      const auto attr = cls.find_attr(chain[i]->name);
      if (!attr) {
        throw EvalError(support::cat("class ", cls.name, " has no attribute '",
                                     chain[i]->name, "'"));
      }
      const Type& attr_type = cls.attrs[*attr].type;
      if (i + 1 == chain.size()) {
        return support::cat(alias, ".", chain[i]->name);
      }
      if (attr_type.kind != TypeKind::kClass) {
        throw EvalError(support::cat("SQL strategy: '.", chain[i]->name,
                                     "' must be an object reference"));
      }
      const std::string next_alias = support::cat("t", sq.alias_counter++);
      sq.from_joins.push_back(
          support::cat("JOIN ", model().class_info(attr_type.id).name, " ",
                       next_alias, " ON ", next_alias, ".id = ", alias, ".",
                       chain[i]->name));
      alias = next_alias;
      cls_id = attr_type.id;
    }
    throw EvalError("empty member path");  // unreachable
  }

  [[nodiscard]] std::string literal_of(const TV& tv) const {
    if (tv.v.is_null()) return "NULL";
    switch (tv.t.kind) {
      case TypeKind::kInt:
        return std::to_string(tv.v.as_int());
      case TypeKind::kFloat:
        return db::Value::real(tv.v.as_float()).to_sql_literal();
      case TypeKind::kBool:
        return tv.v.as_bool() ? "TRUE" : "FALSE";
      case TypeKind::kString:
        return support::sql_quote(tv.v.as_string());
      case TypeKind::kDateTime:
        return support::cat("DATETIME ",
                            support::sql_quote(db::format_datetime(tv.v.as_int())));
      case TypeKind::kClass:
        return std::to_string(tv.v.as_object());
      case TypeKind::kEnum:
        return std::to_string(tv.v.as_enum().ordinal);
      default:
        throw EvalError("value has no SQL literal form");
    }
  }

  // --- typed evaluation ------------------------------------------------------

  TV eval(const Expr& e) {
    using Kind = Expr::Kind;
    switch (e.kind) {
      case Kind::kIntLit:
        return {RtValue::of_int(e.int_value), Type::of(TypeKind::kInt)};
      case Kind::kFloatLit:
        return {RtValue::of_float(e.float_value), Type::of(TypeKind::kFloat)};
      case Kind::kBoolLit:
        return {RtValue::of_bool(e.bool_value), Type::of(TypeKind::kBool)};
      case Kind::kStringLit:
        return {RtValue::of_string(e.string_value), Type::of(TypeKind::kString)};
      case Kind::kNullLit:
        return {RtValue::null(), Type::of(TypeKind::kNullRef)};

      case Kind::kIdent: {
        if (const TV* var = find(e.name)) return *var;
        if (const asl::ConstInfo* cst = model().find_constant(e.name)) {
          return {eval(*cst->value).v, cst->type};
        }
        if (const auto member = model().find_enum_member(e.name)) {
          return {RtValue::of_enum(member->first, member->second),
                  Type::enum_of(member->first)};
        }
        throw EvalError(support::cat("unknown name '", e.name, "'"));
      }

      case Kind::kMember: {
        const TV base = eval(*e.base);
        if (base.t.kind != TypeKind::kClass) {
          throw EvalError(support::cat("attribute access '.", e.name,
                                       "' on non-object"));
        }
        if (base.v.is_null()) {
          throw EvalError(support::cat("attribute access '.", e.name,
                                       "' on null object"));
        }
        const asl::ClassInfo& cls = model().class_info(base.t.id);
        const auto attr = cls.find_attr(e.name);
        if (!attr) {
          throw EvalError(support::cat("class ", cls.name,
                                       " has no attribute '", e.name, "'"));
        }
        const Type& attr_type = cls.attrs[*attr].type;
        if (attr_type.kind == TypeKind::kSet) {
          throw EvalError(
              "SQL strategy: set-valued attribute outside a set context");
        }
        const db::QueryResult result =
            run(support::cat("SELECT ", e.name, " FROM ", cls.name,
                             " WHERE id = ", base.v.as_object()));
        if (result.row_count() != 1) {
          throw EvalError(support::cat("object ", base.v.as_object(),
                                       " not found in table ", cls.name));
        }
        return {to_rt_value(result.rows[0][0], attr_type), attr_type};
      }

      case Kind::kCall: {
        const asl::FunctionInfo* fn = model().find_function(e.name);
        if (fn == nullptr) {
          throw EvalError(support::cat("unknown function '", e.name, "'"));
        }
        std::vector<TV> args;
        args.reserve(e.args.size());
        for (const auto& arg : e.args) args.push_back(eval(*arg));
        // Functions see only their parameters (no lexical capture).
        std::vector<std::pair<std::string, TV>> saved;
        saved.swap(env_);
        for (std::size_t i = 0; i < args.size(); ++i) {
          push(fn->params[i].first, std::move(args[i]));
        }
        TV result = eval(*fn->body);
        env_ = std::move(saved);
        result.t = fn->return_type;
        return result;
      }

      case Kind::kUnary: {
        const TV operand = eval(*e.lhs);
        if (e.un_op == asl::ast::UnOp::kNot) {
          return {RtValue::of_bool(!operand.v.as_bool()),
                  Type::of(TypeKind::kBool)};
        }
        if (operand.v.is_int()) {
          return {RtValue::of_int(-operand.v.as_int()), operand.t};
        }
        return {RtValue::of_float(-operand.v.as_float()), operand.t};
      }

      case Kind::kBinary:
        return eval_binary(e);

      case Kind::kComprehension: {
        if (client_side()) {
          auto [raw, elem_class] = client_set_ids(e);
          auto ids = std::make_shared<std::vector<ObjectId>>(std::move(raw));
          return {RtValue::of_set(std::move(ids)), Type::set_of(elem_class)};
        }
        SetQuery sq = compile_set(e);
        const db::QueryResult result =
            run(support::cat("SELECT b.id", sq.from_where()));
        auto ids = std::make_shared<std::vector<ObjectId>>();
        ids->reserve(result.row_count());
        for (const db::Row& row : result.rows) {
          ids->push_back(static_cast<ObjectId>(row[0].as_int()));
        }
        return {RtValue::of_set(std::move(ids)), Type::set_of(sq.elem_class)};
      }

      case Kind::kAggregate: {
        if (!e.base) return eval(*e.agg_value);  // identity form
        if (client_side()) return eval_client_aggregate(e);
        SetQuery sq = compile_set(*e.base);
        sq.binder_name = e.name;
        if (e.filter) sq.conjuncts.push_back(sql_expr(*e.filter, sq));
        std::string select;
        switch (e.agg_kind) {
          case asl::ast::AggKind::kCount:
            select = "COUNT(*)";
            break;
          case asl::ast::AggKind::kMin:
            select = support::cat("MIN(", sql_expr(*e.agg_value, sq), ")");
            break;
          case asl::ast::AggKind::kMax:
            select = support::cat("MAX(", sql_expr(*e.agg_value, sq), ")");
            break;
          case asl::ast::AggKind::kSum:
            select = support::cat("SUM(", sql_expr(*e.agg_value, sq), ")");
            break;
          case asl::ast::AggKind::kAvg:
            select = support::cat("AVG(", sql_expr(*e.agg_value, sq), ")");
            break;
        }
        const db::QueryResult result =
            run(support::cat("SELECT ", select, sq.from_where()));
        const db::Value scalar = result.scalar();
        if (e.agg_kind == asl::ast::AggKind::kCount) {
          return {RtValue::of_int(scalar.as_int()), Type::of(TypeKind::kInt)};
        }
        if (scalar.is_null()) {
          if (e.agg_kind == asl::ast::AggKind::kSum) {
            return {RtValue::of_float(0.0), Type::of(TypeKind::kFloat)};
          }
          throw EvalError(support::cat(asl::ast::to_string(e.agg_kind),
                                       " over an empty set"));
        }
        if (scalar.type() == db::ValueType::kInt) {
          return {RtValue::of_int(scalar.as_int()), Type::of(TypeKind::kInt)};
        }
        return {RtValue::of_float(scalar.as_double()),
                Type::of(TypeKind::kFloat)};
      }

      case Kind::kUnique: {
        if (client_side()) {
          auto [ids, elem_class] = client_set_ids(*e.base);
          if (ids.size() != 1) {
            throw EvalError(support::cat("UNIQUE over a set of size ",
                                         ids.size()));
          }
          return {RtValue::of_object(ids.front()), Type::class_of(elem_class)};
        }
        SetQuery sq = compile_set(*e.base);
        const db::QueryResult result =
            run(support::cat("SELECT b.id", sq.from_where()));
        if (result.row_count() != 1) {
          throw EvalError(support::cat("UNIQUE over a set of size ",
                                       result.row_count()));
        }
        return {RtValue::of_object(static_cast<ObjectId>(result.rows[0][0].as_int())),
                Type::class_of(sq.elem_class)};
      }

      case Kind::kExists:
      case Kind::kSize: {
        std::int64_t n = 0;
        if (client_side()) {
          n = static_cast<std::int64_t>(client_set_ids(*e.base).first.size());
        } else {
          SetQuery sq = compile_set(*e.base);
          n = run(support::cat("SELECT COUNT(*)", sq.from_where()))
                  .scalar()
                  .as_int();
        }
        if (e.kind == Kind::kExists) {
          return {RtValue::of_bool(n > 0), Type::of(TypeKind::kBool)};
        }
        return {RtValue::of_int(n), Type::of(TypeKind::kInt)};
      }
    }
    throw EvalError("unhandled expression kind");
  }

  TV eval_binary(const Expr& e) {
    using asl::ast::BinOp;
    switch (e.bin_op) {
      case BinOp::kAnd: {
        const TV lhs = eval(*e.lhs);
        if (!lhs.v.as_bool()) {
          return {RtValue::of_bool(false), Type::of(TypeKind::kBool)};
        }
        return {RtValue::of_bool(eval(*e.rhs).v.as_bool()),
                Type::of(TypeKind::kBool)};
      }
      case BinOp::kOr: {
        const TV lhs = eval(*e.lhs);
        if (lhs.v.as_bool()) {
          return {RtValue::of_bool(true), Type::of(TypeKind::kBool)};
        }
        return {RtValue::of_bool(eval(*e.rhs).v.as_bool()),
                Type::of(TypeKind::kBool)};
      }
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul: {
        const TV lhs = eval(*e.lhs);
        const TV rhs = eval(*e.rhs);
        const bool as_int = lhs.v.is_int() && rhs.v.is_int();
        const double x = lhs.v.as_float();
        const double y = rhs.v.as_float();
        double r = 0;
        switch (e.bin_op) {
          case BinOp::kAdd: r = x + y; break;
          case BinOp::kSub: r = x - y; break;
          default: r = x * y; break;
        }
        if (as_int) {
          return {RtValue::of_int(static_cast<std::int64_t>(r)),
                  Type::of(TypeKind::kInt)};
        }
        return {RtValue::of_float(r), Type::of(TypeKind::kFloat)};
      }
      case BinOp::kDiv: {
        const double x = eval(*e.lhs).v.as_float();
        const double y = eval(*e.rhs).v.as_float();
        if (y == 0.0) throw EvalError("division by zero");
        return {RtValue::of_float(x / y), Type::of(TypeKind::kFloat)};
      }
      case BinOp::kEq:
      case BinOp::kNe: {
        const bool eq = RtValue::equals(eval(*e.lhs).v, eval(*e.rhs).v);
        return {RtValue::of_bool(e.bin_op == BinOp::kEq ? eq : !eq),
                Type::of(TypeKind::kBool)};
      }
      default: {
        const double x = eval(*e.lhs).v.as_float();
        const double y = eval(*e.rhs).v.as_float();
        bool r = false;
        switch (e.bin_op) {
          case BinOp::kLt: r = x < y; break;
          case BinOp::kLe: r = x <= y; break;
          case BinOp::kGt: r = x > y; break;
          default: r = x >= y; break;
        }
        return {RtValue::of_bool(r), Type::of(TypeKind::kBool)};
      }
    }
  }

 private:
  SqlEvaluator& owner_;
  std::vector<std::pair<std::string, TV>> env_;
};

SqlEvaluator::SqlEvaluator(const asl::Model& model, db::Connection& conn,
                           SqlEvalMode mode)
    : model_(&model), conn_(&conn), mode_(mode) {
  for (const asl::ClassInfo& cls : model.classes()) {
    if (cls.base) {
      throw EvalError(
          "the SQL strategy requires an inheritance-free data model "
          "(concrete class tables)");
    }
  }
}

PropertyResult SqlEvaluator::evaluate_property(const asl::PropertyInfo& prop,
                                               std::vector<RtValue> args) {
  PropertyResult result;
  if (args.size() != prop.params.size()) {
    throw EvalError(support::cat("property ", prop.name, " expects ",
                                 prop.params.size(), " arguments, got ",
                                 args.size()));
  }
  SqlExprEval eval(*this);
  for (std::size_t i = 0; i < args.size(); ++i) {
    eval.push(prop.params[i].first, {std::move(args[i]), prop.params[i].second});
  }

  try {
    for (const asl::LetInfo& let : prop.lets) {
      TV value = eval.eval(*let.init);
      value.t = let.type;
      eval.push(let.name, std::move(value));
    }

    std::vector<std::pair<std::string, bool>> truth;
    bool holds = false;
    for (std::size_t i = 0; i < prop.conditions.size(); ++i) {
      const asl::ConditionInfo& cond = prop.conditions[i];
      const bool value = eval.eval(*cond.pred).v.as_bool();
      truth.emplace_back(cond.id, value);
      if (value && !holds) {
        holds = true;
        result.matched_condition =
            cond.id.empty() ? support::cat("#", i + 1) : cond.id;
      }
    }
    if (!holds) {
      result.status = PropertyResult::Status::kDoesNotHold;
      return result;
    }
    result.status = PropertyResult::Status::kHolds;

    const auto held = [&](const std::string& guard) {
      for (const auto& [id, value] : truth) {
        if (id == guard) return value;
      }
      return false;
    };
    const auto eval_arms = [&](const std::vector<asl::GuardedInfo>& arms) {
      double best = -std::numeric_limits<double>::infinity();
      bool any = false;
      for (const asl::GuardedInfo& arm : arms) {
        if (!arm.guard.empty() && !held(arm.guard)) continue;
        best = std::max(best, eval.eval(*arm.expr).v.as_float());
        any = true;
      }
      return any ? best : 0.0;
    };

    result.confidence = std::clamp(eval_arms(prop.confidence), 0.0, 1.0);
    result.severity = eval_arms(prop.severity);
  } catch (const EvalError& error) {
    result = PropertyResult{};
    result.status = PropertyResult::Status::kNotApplicable;
    result.note = error.what();
  }
  return result;
}

std::string SqlEvaluator::explain_set(const Expr& set_expr,
                                      const asl::PropertyInfo& prop,
                                      const std::vector<RtValue>& args) {
  SqlExprEval eval(*this);
  for (std::size_t i = 0; i < args.size() && i < prop.params.size(); ++i) {
    eval.push(prop.params[i].first, {args[i], prop.params[i].second});
  }
  SqlExprEval::SetQuery sq = eval.compile_set(set_expr);
  return support::cat("SELECT b.id", sq.from_where());
}

}  // namespace kojak::cosy
