#include "cosy/sql_eval.hpp"

#include <algorithm>
#include <limits>
#include <span>

#include "cosy/db_import.hpp"
#include "cosy/schema_gen.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::cosy {

using asl::ast::Expr;
using asl::EnumVal;
using asl::ObjectId;
using asl::PropertyResult;
using asl::RtValue;
using asl::Type;
using asl::TypeKind;
using support::EvalError;

namespace {

/// Delimiter for placeholder markers in SQL text under construction: the
/// compiler emits "\x01<param-id>\x01" wherever a bound parameter belongs,
/// and the finalize pass rewrites markers to `?` in statement-text order.
/// Composition order of SQL fragments therefore never has to match
/// placeholder order (an aggregate's SELECT list is built after its WHERE
/// conjuncts but precedes them in the text).
constexpr char kMarker = '\x01';

bool references(const Expr& e, const std::string& name);

}  // namespace

/// A runtime value paired with its static ASL type; the SQL strategy needs
/// the type to know which table an object id lives in.
struct TV {
  RtValue v;
  Type t;
};

namespace {

bool references(const Expr& e, const std::string& name) {
  if (e.kind == Expr::Kind::kIdent && e.name == name) return true;
  // A nested binder of the same name shadows the outer one.
  if ((e.kind == Expr::Kind::kComprehension ||
       e.kind == Expr::Kind::kAggregate) &&
      e.name == name) {
    if (e.base && references(*e.base, name)) return true;
    return false;
  }
  if (e.base && references(*e.base, name)) return true;
  if (e.lhs && references(*e.lhs, name)) return true;
  if (e.rhs && references(*e.rhs, name)) return true;
  if (e.agg_value && references(*e.agg_value, name)) return true;
  if (e.filter && references(*e.filter, name)) return true;
  for (const auto& arg : e.args) {
    if (references(*arg, name)) return true;
  }
  return false;
}

}  // namespace

PlanCache::PlanCache(const asl::Model& model)
    : model_(&model), fingerprint_(model.fingerprint()) {}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard lock(mutex_);
  return plans_.size();
}

std::shared_ptr<const CompiledPlan> PlanCache::find(std::string_view property,
                                                    const void* site,
                                                    int kind) const {
  std::lock_guard lock(mutex_);
  const auto it = plans_.find(Key{std::string(property), site, kind});
  return it == plans_.end() ? nullptr : it->second;
}

std::shared_ptr<const CompiledPlan> PlanCache::insert(
    std::string_view property, const void* site, int kind,
    std::shared_ptr<const CompiledPlan> plan) {
  std::lock_guard lock(mutex_);
  const auto [it, inserted] =
      plans_.emplace(Key{std::string(property), site, kind}, std::move(plan));
  return it->second;
}

void PlanCache::record(bool hit) {
  std::lock_guard lock(mutex_);
  if (hit) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
}

/// Expression evaluator with one environment; issues SQL through the owning
/// SqlEvaluator's connection.
class SqlExprEval {
 public:
  SqlExprEval(SqlEvaluator& owner, const asl::PropertyInfo* prop = nullptr)
      : owner_(owner), prop_(prop) {}

  void push(std::string name, TV value) {
    env_.emplace_back(std::move(name), std::move(value));
  }
  void pop() { env_.pop_back(); }

  [[nodiscard]] const TV* find(std::string_view name) const {
    for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
      if (it->first == name) return &it->second;
    }
    return nullptr;
  }

  [[nodiscard]] const asl::Model& model() const { return *owner_.model_; }
  [[nodiscard]] bool client_side() const {
    return owner_.mode_ == SqlEvalMode::kClientSide;
  }

  db::QueryResult run(const std::string& sql) {
    ++owner_.queries_;
    return owner_.conn_->execute(sql);
  }

  // --- plan cache machinery --------------------------------------------------

  /// Which SELECT a site compiles to; part of the cache key so one AST node
  /// may own distinct plans per role (and per evaluation mode).
  enum class SiteKind : int {
    kSetIds = 1,       // SELECT b.id <set>            (comprehension, UNIQUE)
    kSetCount = 2,     // SELECT COUNT(*) <set>        (EXISTS, SIZE)
    kSetAgg = 3,       // SELECT AGG(expr) <set>       (aggregates)
    kAttrFetch = 4,    // SELECT attr FROM cls WHERE id = ?
    kJunctionIds = 5,  // SELECT member FROM junction WHERE owner = ?
  };

  /// Accumulates parameters while a plan is being recorded. `params` and
  /// `values` align index-by-index in emission order (kAssertNull entries
  /// carry a dummy value); finalize() reorders both to text order.
  struct PlanBuild {
    std::vector<CompiledPlan::Param> params;
    std::vector<db::Value> values;

    std::string marker(CompiledPlan::Param param, db::Value value) {
      params.push_back(std::move(param));
      values.push_back(std::move(value));
      return support::cat(kMarker, params.size() - 1, kMarker);
    }
  };

  /// What a site's compile callback produces.
  struct Compiled {
    std::string sql;
    std::uint32_t elem_class = 0;
  };

  struct SiteResult {
    db::QueryResult result;
    std::uint32_t elem_class = 0;
  };

  /// Emits a context-dependent scalar into the SQL being built: a bound
  /// parameter while a plan is recording, an inline literal otherwise.
  std::string emit_scalar(const Expr* origin, const TV& tv) {
    if (build_ == nullptr) return literal_of(tv);
    if (tv.v.is_null()) {
      build_->params.push_back({origin, CompiledPlan::Slot::kAssertNull, 0, {}});
      build_->values.push_back(db::Value::null());
      return "NULL";
    }
    return build_->marker({origin, CompiledPlan::Slot::kValue, 0, {}},
                          to_db_value(tv.v, tv.t));
  }

  /// Emits an object id whose expression is re-evaluated at bind time.
  std::string emit_object(const Expr* origin, ObjectId id,
                          std::string null_error) {
    if (build_ == nullptr) return std::to_string(id);
    return build_->marker({origin, CompiledPlan::Slot::kObjectId, 0,
                           std::move(null_error)},
                          db::Value::integer(static_cast<std::int64_t>(id)));
  }

  /// Emits a value the caller computed before entering the site (and will
  /// pass again, at the same index, on every later bind).
  std::string emit_provided(std::size_t index, const db::Value& value) {
    if (build_ == nullptr) return value.to_sql_literal();
    return build_->marker({nullptr, CompiledPlan::Slot::kProvided, index, {}},
                          value);
  }

  /// Records that the compiled text assumed `origin` evaluates to null
  /// (IS NULL forms); no placeholder is emitted.
  void note_assert_null(const Expr* origin) {
    if (build_ == nullptr) return;
    build_->params.push_back({origin, CompiledPlan::Slot::kAssertNull, 0, {}});
    build_->values.push_back(db::Value::null());
  }

  /// Rewrites placeholder markers to `?` and orders params to match.
  static CompiledPlan finalize(const Compiled& compiled, PlanBuild&& build,
                               std::vector<db::Value>& ordered_values) {
    CompiledPlan plan;
    plan.elem_class = compiled.elem_class;
    plan.sql.reserve(compiled.sql.size());
    ordered_values.clear();
    for (std::size_t i = 0; i < compiled.sql.size(); ++i) {
      if (compiled.sql[i] != kMarker) {
        plan.sql += compiled.sql[i];
        continue;
      }
      std::size_t id = 0;
      for (++i; i < compiled.sql.size() && compiled.sql[i] != kMarker; ++i) {
        id = id * 10 + static_cast<std::size_t>(compiled.sql[i] - '0');
      }
      plan.sql += '?';
      plan.params.push_back(build.params.at(id));
      ordered_values.push_back(build.values.at(id));
    }
    for (const CompiledPlan::Param& param : build.params) {
      if (param.slot == CompiledPlan::Slot::kAssertNull) {
        plan.params.push_back(param);
      }
    }
    return plan;
  }

  /// Evaluates a cached plan's parameters for the current context. Returns
  /// false when a nullability assumption baked into the SQL no longer holds
  /// (the context needs a differently-shaped statement).
  bool bind_plan(const CompiledPlan& plan, std::span<const db::Value> provided,
                 std::vector<db::Value>& values) {
    values.clear();
    values.reserve(plan.params.size());
    for (const CompiledPlan::Param& param : plan.params) {
      switch (param.slot) {
        case CompiledPlan::Slot::kProvided:
          values.push_back(provided[param.provided_index]);
          break;
        case CompiledPlan::Slot::kObjectId: {
          const TV tv = eval(*param.expr);
          if (tv.v.is_null()) throw EvalError(param.null_error);
          values.push_back(
              db::Value::integer(static_cast<std::int64_t>(tv.v.as_object())));
          break;
        }
        case CompiledPlan::Slot::kValue: {
          const TV tv = eval(*param.expr);
          if (tv.v.is_null()) return false;
          values.push_back(to_db_value(tv.v, tv.t));
          break;
        }
        case CompiledPlan::Slot::kAssertNull:
          if (!eval(*param.expr).v.is_null()) return false;
          break;
      }
    }
    return true;
  }

  db::QueryResult run_prepared(const std::shared_ptr<const CompiledPlan>& plan,
                               std::span<const db::Value> values) {
    db::PreparedStatement& stmt = owner_.statement_for(plan);
    ++owner_.queries_;
    return owner_.conn_->execute(stmt, values);
  }

  /// Runs one translation site: uses the shared plan when present, records
  /// one on first contact, falls back to inline-literal compilation when
  /// caching is off (or a nullability guard fails).
  template <typename F>
  SiteResult run_site(const Expr& site, SiteKind kind,
                      std::span<const db::Value> provided, F&& compile) {
    // Params of this site never leak into an enclosing recording (a nested
    // uncorrelated aggregate executes *during* an outer compile; it becomes
    // one bound scalar of the outer plan, not part of its text).
    struct Restore {
      SqlExprEval& self;
      PlanBuild* saved;
      ~Restore() { self.build_ = saved; }
    } restore{*this, build_};
    build_ = nullptr;

    PlanCache* cache = owner_.cache_;
    if (cache == nullptr || prop_ == nullptr) {
      const Compiled compiled = compile();
      return {run(compiled.sql), compiled.elem_class};
    }
    const int k = static_cast<int>(kind) * 2 +
                  (client_side() ? 1 : 0);  // mode disambiguates shared nodes
    if (auto plan = cache->find(prop_->name, &site, k)) {
      std::vector<db::Value> values;
      if (bind_plan(*plan, provided, values)) {
        ++owner_.plan_hits_;
        cache->record(true);
        return {run_prepared(plan, values), plan->elem_class};
      }
      // Nullability guard failed: this context needs a different SQL shape.
      // Compile it fresh for this evaluation; the cached plan stays.
      ++owner_.plan_misses_;
      cache->record(false);
      const Compiled compiled = compile();
      return {run(compiled.sql), compiled.elem_class};
    }
    PlanBuild build;
    build_ = &build;
    const Compiled compiled = compile();
    build_ = nullptr;
    std::vector<db::Value> values;
    // A racing worker may have compiled the same site meanwhile; converge
    // on the canonical plan (the values bind either — same template).
    const std::shared_ptr<const CompiledPlan> plan =
        cache->insert(prop_->name, &site, k,
                      std::make_shared<CompiledPlan>(
                          finalize(compiled, std::move(build), values)));
    ++owner_.plan_misses_;
    cache->record(false);
    return {run_prepared(plan, values), plan->elem_class};
  }

  // --- client-side set materialization (the §5 slow path) -------------------

  /// Fetches the member ids of a set expression with plain component
  /// accesses: one junction query per setof attribute, then per-member
  /// attribute fetches for every filter evaluation.
  std::pair<std::vector<ObjectId>, std::uint32_t> client_set_ids(const Expr& e) {
    if (e.kind == Expr::Kind::kMember) {
      const TV base = eval(*e.base);
      if (base.t.kind != TypeKind::kClass || base.v.is_null()) {
        throw EvalError("client fetch: set base must be a non-null object");
      }
      const asl::ClassInfo& cls = model().class_info(base.t.id);
      const auto attr = cls.find_attr(e.name);
      if (!attr || cls.attrs[*attr].type.kind != TypeKind::kSet) {
        throw EvalError(support::cat("client fetch: '", e.name,
                                     "' is not a setof attribute of ",
                                     cls.name));
      }
      const db::Value owner =
          db::Value::integer(static_cast<std::int64_t>(base.v.as_object()));
      const std::uint32_t elem_class = cls.attrs[*attr].type.id;
      const SiteResult site = run_site(
          e, SiteKind::kJunctionIds, std::span<const db::Value>(&owner, 1),
          [&]() -> Compiled {
            return {support::cat("SELECT member FROM ",
                                 junction_table(cls.name, e.name),
                                 " WHERE owner = ", emit_provided(0, owner)),
                    elem_class};
          });
      std::vector<ObjectId> ids;
      ids.reserve(site.result.row_count());
      for (const db::Row& row : site.result.rows) {
        ids.push_back(static_cast<ObjectId>(row[0].as_int()));
      }
      return {std::move(ids), elem_class};
    }
    if (e.kind == Expr::Kind::kComprehension) {
      auto [ids, elem_class] = client_set_ids(*e.base);
      if (e.filter) {
        std::vector<ObjectId> kept;
        for (const ObjectId member : ids) {
          push(e.name, {RtValue::of_object(member), Type::class_of(elem_class)});
          const bool keep = eval(*e.filter).v.as_bool();
          pop();
          if (keep) kept.push_back(member);
        }
        ids = std::move(kept);
      }
      return {std::move(ids), elem_class};
    }
    throw EvalError(
        "client fetch: set expression must be a setof attribute chain or a "
        "comprehension over one");
  }

  TV eval_client_aggregate(const Expr& e) {
    auto [ids, elem_class] = client_set_ids(*e.base);
    double sum = 0.0;
    double best = 0.0;
    std::int64_t best_int = 0;
    bool best_is_int = false;
    std::size_t count = 0;
    bool first = true;
    for (const ObjectId member : ids) {
      push(e.name, {RtValue::of_object(member), Type::class_of(elem_class)});
      bool keep = true;
      if (e.filter) keep = eval(*e.filter).v.as_bool();
      if (keep) {
        if (e.agg_kind == asl::ast::AggKind::kCount) {
          ++count;
        } else {
          const TV v = eval(*e.agg_value);
          const double x = v.v.as_float();
          sum += x;
          ++count;
          const bool better =
              first || (e.agg_kind == asl::ast::AggKind::kMin ? x < best
                                                              : x > best);
          if ((e.agg_kind == asl::ast::AggKind::kMin ||
               e.agg_kind == asl::ast::AggKind::kMax) &&
              better) {
            best = x;
            best_is_int = v.v.is_int();
            best_int = best_is_int ? v.v.as_int() : 0;
          }
          first = false;
        }
      }
      pop();
    }
    switch (e.agg_kind) {
      case asl::ast::AggKind::kCount:
        return {RtValue::of_int(static_cast<std::int64_t>(count)),
                Type::of(TypeKind::kInt)};
      case asl::ast::AggKind::kSum:
        return {RtValue::of_float(sum), Type::of(TypeKind::kFloat)};
      case asl::ast::AggKind::kAvg:
        if (count == 0) throw EvalError("AVG over an empty set");
        return {RtValue::of_float(sum / static_cast<double>(count)),
                Type::of(TypeKind::kFloat)};
      case asl::ast::AggKind::kMin:
      case asl::ast::AggKind::kMax:
        if (count == 0) {
          throw EvalError(support::cat(asl::ast::to_string(e.agg_kind),
                                       " over an empty set"));
        }
        if (best_is_int) {
          return {RtValue::of_int(best_int), Type::of(TypeKind::kInt)};
        }
        return {RtValue::of_float(best), Type::of(TypeKind::kFloat)};
    }
    throw EvalError("unknown aggregate kind");
  }

  // --- set compilation -------------------------------------------------------

  struct SetQuery {
    std::string binder_name;
    std::string binder_alias = "b";
    std::uint32_t elem_class = 0;
    std::vector<std::string> from_joins;  // FROM fragment + JOIN fragments
    std::vector<std::string> conjuncts;
    int alias_counter = 0;

    [[nodiscard]] std::string from_where() const {
      std::string out = " FROM ";
      for (std::size_t i = 0; i < from_joins.size(); ++i) {
        if (i > 0) out += ' ';
        out += from_joins[i];
      }
      if (!conjuncts.empty()) {
        out += " WHERE ";
        for (std::size_t i = 0; i < conjuncts.size(); ++i) {
          if (i > 0) out += " AND ";
          out += conjuncts[i];
        }
      }
      return out;
    }
  };

  SetQuery compile_set(const Expr& e) {
    if (e.kind == Expr::Kind::kMember) {
      const TV base = eval(*e.base);
      if (base.t.kind != TypeKind::kClass) {
        throw EvalError("SQL strategy: set base must be an object");
      }
      const asl::ClassInfo& cls = model().class_info(base.t.id);
      const auto attr = cls.find_attr(e.name);
      if (!attr || cls.attrs[*attr].type.kind != TypeKind::kSet) {
        throw EvalError(support::cat("SQL strategy: '", e.name,
                                     "' is not a setof attribute of ",
                                     cls.name));
      }
      const ObjectId owner_id = base.v.as_object();
      if (owner_id == asl::kNullObject) {
        throw EvalError("SQL strategy: set access on null object");
      }
      SetQuery sq;
      sq.elem_class = cls.attrs[*attr].type.id;
      const std::string elem_table = model().class_info(sq.elem_class).name;
      sq.from_joins.push_back(junction_table(cls.name, e.name) + " j");
      sq.from_joins.push_back(
          support::cat("JOIN ", elem_table, " b ON b.id = j.member"));
      sq.conjuncts.push_back(support::cat(
          "j.owner = ",
          emit_object(e.base.get(), owner_id,
                      "SQL strategy: set access on null object")));
      return sq;
    }
    if (e.kind == Expr::Kind::kComprehension) {
      SetQuery sq = compile_set(*e.base);
      sq.binder_name = e.name;
      if (e.filter) {
        sq.conjuncts.push_back(sql_expr(*e.filter, sq));
      }
      return sq;
    }
    throw EvalError(
        "SQL strategy: set expression must be a setof attribute chain or a "
        "comprehension over one");
  }

  /// Compiles a scalar expression over the binder of `sq` into SQL text;
  /// sub-expressions not touching the binder evaluate client-side into
  /// bound parameters or literals (this is how uncorrelated nested
  /// aggregates become scalar constants in the query).
  std::string sql_expr(const Expr& e, SetQuery& sq) {
    using Kind = Expr::Kind;
    if (!sq.binder_name.empty() && !references(e, sq.binder_name)) {
      return emit_scalar(&e, eval(e));
    }
    switch (e.kind) {
      case Kind::kIdent:
        if (e.name == sq.binder_name) return sq.binder_alias + ".id";
        break;  // unreachable: non-binder idents hit the scalar path
      case Kind::kMember:
        return compile_path(e, sq);
      case Kind::kUnary: {
        const std::string operand = sql_expr(*e.lhs, sq);
        if (e.un_op == asl::ast::UnOp::kNot) {
          return support::cat("(NOT ", operand, ")");
        }
        return support::cat("(-", operand, ")");
      }
      case Kind::kBinary: {
        using asl::ast::BinOp;
        // `x == null` / `x != null` compile to IS [NOT] NULL.
        if (e.bin_op == BinOp::kEq || e.bin_op == BinOp::kNe) {
          const Expr* lhs = e.lhs.get();
          const Expr* rhs = e.rhs.get();
          // 0 = not a null side; 1 = statically null; 2 = null this context.
          const auto null_side = [&](const Expr& side) -> int {
            if (side.kind == Kind::kNullLit) return 1;
            if (references(side, sq.binder_name)) return 0;
            return eval(side).v.is_null() ? 2 : 0;
          };
          const int rhs_null = null_side(*rhs);
          const int lhs_null = rhs_null != 0 ? 0 : null_side(*lhs);
          if (rhs_null != 0 || lhs_null != 0) {
            const Expr& tested = rhs_null != 0 ? *lhs : *rhs;
            const Expr& nulled = rhs_null != 0 ? *rhs : *lhs;
            const std::string tested_sql = sql_expr(tested, sq);
            if ((rhs_null | lhs_null) == 2) note_assert_null(&nulled);
            return support::cat("(", tested_sql,
                                e.bin_op == BinOp::kEq ? " IS NULL)"
                                                       : " IS NOT NULL)");
          }
        }
        const char* op = nullptr;
        switch (e.bin_op) {
          case BinOp::kAdd: op = "+"; break;
          case BinOp::kSub: op = "-"; break;
          case BinOp::kMul: op = "*"; break;
          case BinOp::kDiv: op = "/"; break;
          case BinOp::kEq: op = "="; break;
          case BinOp::kNe: op = "<>"; break;
          case BinOp::kLt: op = "<"; break;
          case BinOp::kLe: op = "<="; break;
          case BinOp::kGt: op = ">"; break;
          case BinOp::kGe: op = ">="; break;
          case BinOp::kAnd: op = "AND"; break;
          case BinOp::kOr: op = "OR"; break;
        }
        // Sequence the sides explicitly: both emit parameters, and their
        // recording order must be deterministic.
        const std::string lhs_sql = sql_expr(*e.lhs, sq);
        const std::string rhs_sql = sql_expr(*e.rhs, sq);
        return support::cat("(", lhs_sql, " ", op, " ", rhs_sql, ")");
      }
      default:
        break;
    }
    throw EvalError(support::cat(
        "SQL strategy: expression correlated with binder '", sq.binder_name,
        "' is not compilable (aggregates/calls over the binder are not "
        "supported)"));
  }

  /// Member chain rooted at the binder: each intermediate ref-attribute hop
  /// becomes a JOIN; the final attribute becomes a column reference.
  std::string compile_path(const Expr& e, SetQuery& sq) {
    // Unroll the chain: base-most first.
    std::vector<const Expr*> chain;
    const Expr* cur = &e;
    while (cur->kind == Expr::Kind::kMember) {
      chain.push_back(cur);
      cur = cur->base.get();
    }
    if (cur->kind != Expr::Kind::kIdent || cur->name != sq.binder_name) {
      throw EvalError("SQL strategy: member path must be rooted at the binder");
    }
    std::reverse(chain.begin(), chain.end());

    std::string alias = sq.binder_alias;
    std::uint32_t cls_id = sq.elem_class;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      const asl::ClassInfo& cls = model().class_info(cls_id);
      const auto attr = cls.find_attr(chain[i]->name);
      if (!attr) {
        throw EvalError(support::cat("class ", cls.name, " has no attribute '",
                                     chain[i]->name, "'"));
      }
      const Type& attr_type = cls.attrs[*attr].type;
      if (i + 1 == chain.size()) {
        return support::cat(alias, ".", chain[i]->name);
      }
      if (attr_type.kind != TypeKind::kClass) {
        throw EvalError(support::cat("SQL strategy: '.", chain[i]->name,
                                     "' must be an object reference"));
      }
      const std::string next_alias = support::cat("t", sq.alias_counter++);
      sq.from_joins.push_back(
          support::cat("JOIN ", model().class_info(attr_type.id).name, " ",
                       next_alias, " ON ", next_alias, ".id = ", alias, ".",
                       chain[i]->name));
      alias = next_alias;
      cls_id = attr_type.id;
    }
    throw EvalError("empty member path");  // unreachable
  }

  [[nodiscard]] std::string literal_of(const TV& tv) const {
    if (tv.v.is_null()) return "NULL";
    switch (tv.t.kind) {
      case TypeKind::kInt:
        return std::to_string(tv.v.as_int());
      case TypeKind::kFloat:
        return db::Value::real(tv.v.as_float()).to_sql_literal();
      case TypeKind::kBool:
        return tv.v.as_bool() ? "TRUE" : "FALSE";
      case TypeKind::kString:
        return support::sql_quote(tv.v.as_string());
      case TypeKind::kDateTime:
        return support::cat("DATETIME ",
                            support::sql_quote(db::format_datetime(tv.v.as_int())));
      case TypeKind::kClass:
        return std::to_string(tv.v.as_object());
      case TypeKind::kEnum:
        return std::to_string(tv.v.as_enum().ordinal);
      default:
        throw EvalError("value has no SQL literal form");
    }
  }

  // --- typed evaluation ------------------------------------------------------

  TV eval(const Expr& e) {
    using Kind = Expr::Kind;
    switch (e.kind) {
      case Kind::kIntLit:
        return {RtValue::of_int(e.int_value), Type::of(TypeKind::kInt)};
      case Kind::kFloatLit:
        return {RtValue::of_float(e.float_value), Type::of(TypeKind::kFloat)};
      case Kind::kBoolLit:
        return {RtValue::of_bool(e.bool_value), Type::of(TypeKind::kBool)};
      case Kind::kStringLit:
        return {RtValue::of_string(e.string_value), Type::of(TypeKind::kString)};
      case Kind::kNullLit:
        return {RtValue::null(), Type::of(TypeKind::kNullRef)};

      case Kind::kIdent: {
        if (const TV* var = find(e.name)) return *var;
        if (const asl::ConstInfo* cst = model().find_constant(e.name)) {
          return {eval(*cst->value).v, cst->type};
        }
        if (const auto member = model().find_enum_member(e.name)) {
          return {RtValue::of_enum(member->first, member->second),
                  Type::enum_of(member->first)};
        }
        throw EvalError(support::cat("unknown name '", e.name, "'"));
      }

      case Kind::kMember: {
        const TV base = eval(*e.base);
        if (base.t.kind != TypeKind::kClass) {
          throw EvalError(support::cat("attribute access '.", e.name,
                                       "' on non-object"));
        }
        if (base.v.is_null()) {
          throw EvalError(support::cat("attribute access '.", e.name,
                                       "' on null object"));
        }
        const asl::ClassInfo& cls = model().class_info(base.t.id);
        const auto attr = cls.find_attr(e.name);
        if (!attr) {
          throw EvalError(support::cat("class ", cls.name,
                                       " has no attribute '", e.name, "'"));
        }
        const Type& attr_type = cls.attrs[*attr].type;
        if (attr_type.kind == TypeKind::kSet) {
          throw EvalError(
              "SQL strategy: set-valued attribute outside a set context");
        }
        const db::Value id =
            db::Value::integer(static_cast<std::int64_t>(base.v.as_object()));
        const SiteResult site = run_site(
            e, SiteKind::kAttrFetch, std::span<const db::Value>(&id, 1),
            [&]() -> Compiled {
              return {support::cat("SELECT ", e.name, " FROM ", cls.name,
                                   " WHERE id = ", emit_provided(0, id)),
                      0};
            });
        if (site.result.row_count() != 1) {
          throw EvalError(support::cat("object ", base.v.as_object(),
                                       " not found in table ", cls.name));
        }
        return {to_rt_value(site.result.rows[0][0], attr_type), attr_type};
      }

      case Kind::kCall: {
        const asl::FunctionInfo* fn = model().find_function(e.name);
        if (fn == nullptr) {
          throw EvalError(support::cat("unknown function '", e.name, "'"));
        }
        std::vector<TV> args;
        args.reserve(e.args.size());
        for (const auto& arg : e.args) args.push_back(eval(*arg));
        // Functions see only their parameters (no lexical capture).
        std::vector<std::pair<std::string, TV>> saved;
        saved.swap(env_);
        for (std::size_t i = 0; i < args.size(); ++i) {
          push(fn->params[i].first, std::move(args[i]));
        }
        TV result = eval(*fn->body);
        env_ = std::move(saved);
        result.t = fn->return_type;
        return result;
      }

      case Kind::kUnary: {
        const TV operand = eval(*e.lhs);
        if (e.un_op == asl::ast::UnOp::kNot) {
          return {RtValue::of_bool(!operand.v.as_bool()),
                  Type::of(TypeKind::kBool)};
        }
        if (operand.v.is_int()) {
          return {RtValue::of_int(-operand.v.as_int()), operand.t};
        }
        return {RtValue::of_float(-operand.v.as_float()), operand.t};
      }

      case Kind::kBinary:
        return eval_binary(e);

      case Kind::kComprehension: {
        if (client_side()) {
          auto [raw, elem_class] = client_set_ids(e);
          auto ids = std::make_shared<std::vector<ObjectId>>(std::move(raw));
          return {RtValue::of_set(std::move(ids)), Type::set_of(elem_class)};
        }
        const SiteResult site =
            run_site(e, SiteKind::kSetIds, {}, [&]() -> Compiled {
              SetQuery sq = compile_set(e);
              return {support::cat("SELECT b.id", sq.from_where()),
                      sq.elem_class};
            });
        auto ids = std::make_shared<std::vector<ObjectId>>();
        ids->reserve(site.result.row_count());
        for (const db::Row& row : site.result.rows) {
          ids->push_back(static_cast<ObjectId>(row[0].as_int()));
        }
        return {RtValue::of_set(std::move(ids)), Type::set_of(site.elem_class)};
      }

      case Kind::kAggregate: {
        if (!e.base) return eval(*e.agg_value);  // identity form
        if (client_side()) return eval_client_aggregate(e);
        const SiteResult site =
            run_site(e, SiteKind::kSetAgg, {}, [&]() -> Compiled {
              SetQuery sq = compile_set(*e.base);
              sq.binder_name = e.name;
              if (e.filter) sq.conjuncts.push_back(sql_expr(*e.filter, sq));
              std::string select;
              switch (e.agg_kind) {
                case asl::ast::AggKind::kCount:
                  select = "COUNT(*)";
                  break;
                case asl::ast::AggKind::kMin:
                  select = support::cat("MIN(", sql_expr(*e.agg_value, sq), ")");
                  break;
                case asl::ast::AggKind::kMax:
                  select = support::cat("MAX(", sql_expr(*e.agg_value, sq), ")");
                  break;
                case asl::ast::AggKind::kSum:
                  select = support::cat("SUM(", sql_expr(*e.agg_value, sq), ")");
                  break;
                case asl::ast::AggKind::kAvg:
                  select = support::cat("AVG(", sql_expr(*e.agg_value, sq), ")");
                  break;
              }
              return {support::cat("SELECT ", select, sq.from_where()),
                      sq.elem_class};
            });
        const db::Value scalar = site.result.scalar();
        if (e.agg_kind == asl::ast::AggKind::kCount) {
          return {RtValue::of_int(scalar.as_int()), Type::of(TypeKind::kInt)};
        }
        if (scalar.is_null()) {
          if (e.agg_kind == asl::ast::AggKind::kSum) {
            return {RtValue::of_float(0.0), Type::of(TypeKind::kFloat)};
          }
          throw EvalError(support::cat(asl::ast::to_string(e.agg_kind),
                                       " over an empty set"));
        }
        if (scalar.type() == db::ValueType::kInt) {
          return {RtValue::of_int(scalar.as_int()), Type::of(TypeKind::kInt)};
        }
        return {RtValue::of_float(scalar.as_double()),
                Type::of(TypeKind::kFloat)};
      }

      case Kind::kUnique: {
        if (client_side()) {
          auto [ids, elem_class] = client_set_ids(*e.base);
          if (ids.size() != 1) {
            throw EvalError(support::cat("UNIQUE over a set of size ",
                                         ids.size()));
          }
          return {RtValue::of_object(ids.front()), Type::class_of(elem_class)};
        }
        const SiteResult site =
            run_site(e, SiteKind::kSetIds, {}, [&]() -> Compiled {
              SetQuery sq = compile_set(*e.base);
              return {support::cat("SELECT b.id", sq.from_where()),
                      sq.elem_class};
            });
        if (site.result.row_count() != 1) {
          throw EvalError(support::cat("UNIQUE over a set of size ",
                                       site.result.row_count()));
        }
        return {RtValue::of_object(
                    static_cast<ObjectId>(site.result.rows[0][0].as_int())),
                Type::class_of(site.elem_class)};
      }

      case Kind::kExists:
      case Kind::kSize: {
        std::int64_t n = 0;
        if (client_side()) {
          n = static_cast<std::int64_t>(client_set_ids(*e.base).first.size());
        } else {
          const SiteResult site =
              run_site(e, SiteKind::kSetCount, {}, [&]() -> Compiled {
                SetQuery sq = compile_set(*e.base);
                return {support::cat("SELECT COUNT(*)", sq.from_where()),
                        sq.elem_class};
              });
          n = site.result.scalar().as_int();
        }
        if (e.kind == Kind::kExists) {
          return {RtValue::of_bool(n > 0), Type::of(TypeKind::kBool)};
        }
        return {RtValue::of_int(n), Type::of(TypeKind::kInt)};
      }
    }
    throw EvalError("unhandled expression kind");
  }

  TV eval_binary(const Expr& e) {
    using asl::ast::BinOp;
    switch (e.bin_op) {
      case BinOp::kAnd: {
        const TV lhs = eval(*e.lhs);
        if (!lhs.v.as_bool()) {
          return {RtValue::of_bool(false), Type::of(TypeKind::kBool)};
        }
        return {RtValue::of_bool(eval(*e.rhs).v.as_bool()),
                Type::of(TypeKind::kBool)};
      }
      case BinOp::kOr: {
        const TV lhs = eval(*e.lhs);
        if (lhs.v.as_bool()) {
          return {RtValue::of_bool(true), Type::of(TypeKind::kBool)};
        }
        return {RtValue::of_bool(eval(*e.rhs).v.as_bool()),
                Type::of(TypeKind::kBool)};
      }
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul: {
        const TV lhs = eval(*e.lhs);
        const TV rhs = eval(*e.rhs);
        const bool as_int = lhs.v.is_int() && rhs.v.is_int();
        const double x = lhs.v.as_float();
        const double y = rhs.v.as_float();
        double r = 0;
        switch (e.bin_op) {
          case BinOp::kAdd: r = x + y; break;
          case BinOp::kSub: r = x - y; break;
          default: r = x * y; break;
        }
        if (as_int) {
          return {RtValue::of_int(static_cast<std::int64_t>(r)),
                  Type::of(TypeKind::kInt)};
        }
        return {RtValue::of_float(r), Type::of(TypeKind::kFloat)};
      }
      case BinOp::kDiv: {
        const double x = eval(*e.lhs).v.as_float();
        const double y = eval(*e.rhs).v.as_float();
        if (y == 0.0) throw EvalError("division by zero");
        return {RtValue::of_float(x / y), Type::of(TypeKind::kFloat)};
      }
      case BinOp::kEq:
      case BinOp::kNe: {
        const bool eq = RtValue::equals(eval(*e.lhs).v, eval(*e.rhs).v);
        return {RtValue::of_bool(e.bin_op == BinOp::kEq ? eq : !eq),
                Type::of(TypeKind::kBool)};
      }
      default: {
        const double x = eval(*e.lhs).v.as_float();
        const double y = eval(*e.rhs).v.as_float();
        bool r = false;
        switch (e.bin_op) {
          case BinOp::kLt: r = x < y; break;
          case BinOp::kLe: r = x <= y; break;
          case BinOp::kGt: r = x > y; break;
          default: r = x >= y; break;
        }
        return {RtValue::of_bool(r), Type::of(TypeKind::kBool)};
      }
    }
  }

 private:
  SqlEvaluator& owner_;
  const asl::PropertyInfo* prop_;
  PlanBuild* build_ = nullptr;
  std::vector<std::pair<std::string, TV>> env_;
};

SqlEvaluator::SqlEvaluator(const asl::Model& model, db::Connection& conn,
                           SqlEvalMode mode, PlanCache* plan_cache)
    : model_(&model), conn_(&conn), mode_(mode), cache_(plan_cache) {
  for (const asl::ClassInfo& cls : model.classes()) {
    if (cls.base) {
      throw EvalError(
          "the SQL strategy requires an inheritance-free data model "
          "(concrete class tables)");
    }
  }
  if (cache_ != nullptr && &cache_->model() != &model) {
    throw EvalError(
        "plan cache was compiled against a different model instance; plans "
        "hold pointers into that model's AST, so a cache is only valid for "
        "the exact Model object it was built from (reloading the same spec "
        "produces an equal fingerprint but a different AST)");
  }
}

db::PreparedStatement& SqlEvaluator::statement_for(
    const std::shared_ptr<const CompiledPlan>& plan) {
  auto it = statements_.find(plan.get());
  if (it == statements_.end()) {
    db::PreparedStatement stmt = conn_->database().prepare(plan->sql);
    it = statements_
             .emplace(plan.get(), StatementEntry{plan, std::move(stmt)})
             .first;
  }
  return it->second.stmt;
}

PropertyResult SqlEvaluator::evaluate_property(const asl::PropertyInfo& prop,
                                               std::vector<RtValue> args) {
  PropertyResult result;
  if (args.size() != prop.params.size()) {
    throw EvalError(support::cat("property ", prop.name, " expects ",
                                 prop.params.size(), " arguments, got ",
                                 args.size()));
  }
  SqlExprEval eval(*this, &prop);
  for (std::size_t i = 0; i < args.size(); ++i) {
    eval.push(prop.params[i].first, {std::move(args[i]), prop.params[i].second});
  }

  try {
    for (const asl::LetInfo& let : prop.lets) {
      TV value = eval.eval(*let.init);
      value.t = let.type;
      eval.push(let.name, std::move(value));
    }

    std::vector<std::pair<std::string, bool>> truth;
    bool holds = false;
    for (std::size_t i = 0; i < prop.conditions.size(); ++i) {
      const asl::ConditionInfo& cond = prop.conditions[i];
      const bool value = eval.eval(*cond.pred).v.as_bool();
      truth.emplace_back(cond.id, value);
      if (value && !holds) {
        holds = true;
        result.matched_condition =
            cond.id.empty() ? support::cat("#", i + 1) : cond.id;
      }
    }
    if (!holds) {
      result.status = PropertyResult::Status::kDoesNotHold;
      return result;
    }
    result.status = PropertyResult::Status::kHolds;

    const auto held = [&](const std::string& guard) {
      for (const auto& [id, value] : truth) {
        if (id == guard) return value;
      }
      return false;
    };
    const auto eval_arms = [&](const std::vector<asl::GuardedInfo>& arms) {
      double best = -std::numeric_limits<double>::infinity();
      bool any = false;
      for (const asl::GuardedInfo& arm : arms) {
        if (!arm.guard.empty() && !held(arm.guard)) continue;
        best = std::max(best, eval.eval(*arm.expr).v.as_float());
        any = true;
      }
      return any ? best : 0.0;
    };

    result.confidence = std::clamp(eval_arms(prop.confidence), 0.0, 1.0);
    result.severity = eval_arms(prop.severity);
  } catch (const EvalError& error) {
    result = PropertyResult{};
    result.status = PropertyResult::Status::kNotApplicable;
    result.note = error.what();
  }
  return result;
}

std::string SqlEvaluator::explain_set(const Expr& set_expr,
                                      const asl::PropertyInfo& prop,
                                      const std::vector<RtValue>& args) {
  SqlExprEval eval(*this);  // no property context: plans stay untouched
  for (std::size_t i = 0; i < args.size() && i < prop.params.size(); ++i) {
    eval.push(prop.params[i].first, {args[i], prop.params[i].second});
  }
  SqlExprEval::SetQuery sq = eval.compile_set(set_expr);
  return support::cat("SELECT b.id", sq.from_where());
}

}  // namespace kojak::cosy
