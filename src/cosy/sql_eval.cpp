#include "cosy/sql_eval.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <optional>
#include <set>
#include <span>

#include "asl/compilability.hpp"
#include "cosy/db_import.hpp"
#include "cosy/shard_cache.hpp"
#include "db/distributed.hpp"
#include "cosy/schema_gen.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::cosy {

using asl::ast::Expr;
using asl::EnumVal;
using asl::ObjectId;
using asl::PropertyResult;
using asl::RtValue;
using asl::Type;
using asl::TypeKind;
using support::EvalError;

namespace {

/// Delimiter for placeholder markers in SQL text under construction: the
/// compiler emits "\x01<param-id>\x01" wherever a bound parameter belongs,
/// and the finalize pass rewrites markers to `?` in statement-text order.
/// Composition order of SQL fragments therefore never has to match
/// placeholder order (an aggregate's SELECT list is built after its WHERE
/// conjuncts but precedes them in the text).
constexpr char kMarker = '\x01';

/// PlanCache kinds of whole-condition plans. The site-wise plans encode
/// SiteKind * 2 + mode (values 2..11); whole plans are keyed on the
/// PropertyInfo itself under these distinct codes (one per CSE setting —
/// the two compilations have different text and parameter layouts).
constexpr int kWholeConditionCsePlanKind = 12;
constexpr int kWholeConditionPlainPlanKind = 13;

/// Non-overlapping occurrences of `needle` in `text` that start OUTSIDE
/// SQL string literals ('...' with '' escaping) — a quoted constant whose
/// content happens to spell a generated subquery must never be counted or
/// rewritten by the CSE pass. Needles are complete parenthesized
/// subqueries, so their internal literals are balanced and the scan state
/// stays correct when a match is skipped over.
std::vector<std::size_t> occurrences_outside_literals(std::string_view text,
                                                      std::string_view needle) {
  std::vector<std::size_t> out;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size();) {
    const char c = text[i];
    if (in_string) {
      if (c == '\'' && i + 1 < text.size() && text[i + 1] == '\'') {
        i += 2;  // escaped quote inside the literal
        continue;
      }
      if (c == '\'') in_string = false;
      ++i;
      continue;
    }
    if (c == '\'') {
      in_string = true;
      ++i;
      continue;
    }
    if (text.compare(i, needle.size(), needle) == 0) {
      out.push_back(i);
      i += needle.size();
      continue;
    }
    ++i;
  }
  return out;
}

/// Replaces every literal-aware occurrence of `needle` in `text`.
void replace_all(std::string& text, std::string_view needle,
                 std::string_view replacement) {
  const std::vector<std::size_t> positions =
      occurrences_outside_literals(text, needle);
  for (auto it = positions.rbegin(); it != positions.rend(); ++it) {
    text.replace(*it, needle.size(), replacement);
  }
}

std::size_t count_occurrences(std::string_view text, std::string_view needle) {
  return occurrences_outside_literals(text, needle).size();
}

/// Binder-correlation test shared with the compilability classifier.
using asl::mentions_name;

}  // namespace

/// A runtime value paired with its static ASL type; the SQL strategy needs
/// the type to know which table an object id lives in.
struct TV {
  RtValue v;
  Type t;
};

namespace {

/// Accumulates parameters while a plan is being recorded. `params` and
/// `values` align index-by-index in emission order (kAssertNull entries
/// carry a dummy value); finalize() reorders both to text order.
struct PlanBuild {
  std::vector<CompiledPlan::Param> params;
  std::vector<db::Value> values;

  std::string marker(CompiledPlan::Param param, db::Value value) {
    params.push_back(std::move(param));
    values.push_back(std::move(value));
    return support::cat(kMarker, params.size() - 1, kMarker);
  }
};

/// What a site's compile callback produces.
struct Compiled {
  std::string sql;
  std::uint32_t elem_class = 0;
};

/// Rewrites placeholder markers to `?` and orders params to match.
CompiledPlan finalize(const Compiled& compiled, PlanBuild&& build,
                      std::vector<db::Value>& ordered_values) {
  CompiledPlan plan;
  plan.elem_class = compiled.elem_class;
  plan.sql.reserve(compiled.sql.size());
  ordered_values.clear();
  for (std::size_t i = 0; i < compiled.sql.size(); ++i) {
    if (compiled.sql[i] != kMarker) {
      plan.sql += compiled.sql[i];
      continue;
    }
    std::size_t id = 0;
    for (++i; i < compiled.sql.size() && compiled.sql[i] != kMarker; ++i) {
      id = id * 10 + static_cast<std::size_t>(compiled.sql[i] - '0');
    }
    plan.sql += '?';
    plan.params.push_back(build.params.at(id));
    ordered_values.push_back(build.values.at(id));
  }
  for (const CompiledPlan::Param& param : build.params) {
    if (param.slot == CompiledPlan::Slot::kAssertNull) {
      plan.params.push_back(param);
    }
  }
  return plan;
}

}  // namespace

std::string_view to_string(SqlEvalMode mode) {
  switch (mode) {
    case SqlEvalMode::kPushdown: return "pushdown";
    case SqlEvalMode::kClientSide: return "client-side";
    case SqlEvalMode::kWholeCondition: return "whole-condition";
  }
  return "?";
}

PlanCache::PlanCache(const asl::Model& model, std::size_t max_plans)
    : model_(&model), fingerprint_(model.fingerprint()), max_plans_(max_plans) {}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard lock(mutex_);
  return plans_.size();
}

void PlanCache::touch(Entry& entry) const {
  lru_.splice(lru_.begin(), lru_, entry.lru_pos);
  entry.lru_pos = lru_.begin();
}

std::shared_ptr<const CompiledPlan> PlanCache::find(std::string_view property,
                                                    const void* site, int kind,
                                                    std::uint64_t layout) const {
  std::lock_guard lock(mutex_);
  const auto it = plans_.find(Key{std::string(property), site, kind, layout});
  if (it == plans_.end()) return nullptr;
  touch(it->second);
  return it->second.plan;
}

std::shared_ptr<const CompiledPlan> PlanCache::insert(
    std::string_view property, const void* site, int kind,
    std::uint64_t layout, std::shared_ptr<const CompiledPlan> plan) {
  std::lock_guard lock(mutex_);
  Key key{std::string(property), site, kind, layout};
  const auto it = plans_.find(key);
  if (it != plans_.end()) {
    // A racing worker compiled the same site; the first plan in stays
    // canonical so every evaluator converges on one instance.
    touch(it->second);
    return it->second.plan;
  }
  lru_.push_front(key);
  auto [inserted, ok] =
      plans_.emplace(std::move(key), Entry{std::move(plan), lru_.begin()});
  std::shared_ptr<const CompiledPlan> canonical = inserted->second.plan;
  while (max_plans_ != 0 && plans_.size() > max_plans_) {
    // Evict the coldest plan. In-flight evaluators holding the shared_ptr
    // keep the evicted plan (and its prepared statements) valid; the next
    // find() for that site simply recompiles.
    plans_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  return canonical;
}

void PlanCache::record(bool hit) {
  std::lock_guard lock(mutex_);
  if (hit) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
}

/// Expression evaluator with one environment; issues SQL through the owning
/// SqlEvaluator's connection.
class SqlExprEval {
 public:
  SqlExprEval(SqlEvaluator& owner, const asl::PropertyInfo* prop = nullptr)
      : owner_(owner), prop_(prop) {}

  void push(std::string name, TV value) {
    env_.emplace_back(std::move(name), std::move(value));
  }
  void pop() { env_.pop_back(); }

  [[nodiscard]] const TV* find(std::string_view name) const {
    for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
      if (it->first == name) return &it->second;
    }
    return nullptr;
  }

  [[nodiscard]] const asl::Model& model() const { return *owner_.model_; }
  [[nodiscard]] bool client_side() const {
    return owner_.mode_ == SqlEvalMode::kClientSide;
  }

  db::QueryResult run(const std::string& sql) {
    ++owner_.queries_;
    return owner_.conn_->execute(sql);
  }

  // --- plan cache machinery --------------------------------------------------

  /// Which SELECT a site compiles to; part of the cache key so one AST node
  /// may own distinct plans per role (and per evaluation mode).
  enum class SiteKind : int {
    kSetIds = 1,       // SELECT b.id <set>            (comprehension, UNIQUE)
    kSetCount = 2,     // SELECT COUNT(*) <set>        (EXISTS, SIZE)
    kSetAgg = 3,       // SELECT AGG(expr) <set>       (aggregates)
    kAttrFetch = 4,    // SELECT attr FROM cls WHERE id = ?
    kJunctionIds = 5,  // SELECT member FROM junction WHERE owner = ?
  };

  struct SiteResult {
    db::QueryResult result;
    std::uint32_t elem_class = 0;
  };

  /// Emits a context-dependent scalar into the SQL being built: a bound
  /// parameter while a plan is recording, an inline literal otherwise.
  std::string emit_scalar(const Expr* origin, const TV& tv) {
    if (build_ == nullptr) return literal_of(tv);
    if (tv.v.is_null()) {
      build_->params.push_back({origin, CompiledPlan::Slot::kAssertNull, 0, {}});
      build_->values.push_back(db::Value::null());
      return "NULL";
    }
    return build_->marker({origin, CompiledPlan::Slot::kValue, 0, {}},
                          to_db_value(tv.v, tv.t));
  }

  /// Emits an object id whose expression is re-evaluated at bind time.
  std::string emit_object(const Expr* origin, ObjectId id,
                          std::string null_error) {
    if (build_ == nullptr) return std::to_string(id);
    return build_->marker({origin, CompiledPlan::Slot::kObjectId, 0,
                           std::move(null_error)},
                          db::Value::integer(static_cast<std::int64_t>(id)));
  }

  /// Emits a value the caller computed before entering the site (and will
  /// pass again, at the same index, on every later bind).
  std::string emit_provided(std::size_t index, const db::Value& value) {
    if (build_ == nullptr) return value.to_sql_literal();
    return build_->marker({nullptr, CompiledPlan::Slot::kProvided, index, {}},
                          value);
  }

  /// Records that the compiled text assumed `origin` evaluates to null
  /// (IS NULL forms); no placeholder is emitted.
  void note_assert_null(const Expr* origin) {
    if (build_ == nullptr) return;
    build_->params.push_back({origin, CompiledPlan::Slot::kAssertNull, 0, {}});
    build_->values.push_back(db::Value::null());
  }

  /// Evaluates a cached plan's parameters for the current context. Returns
  /// false when a nullability assumption baked into the SQL no longer holds
  /// (the context needs a differently-shaped statement).
  bool bind_plan(const CompiledPlan& plan, std::span<const db::Value> provided,
                 std::vector<db::Value>& values) {
    values.clear();
    values.reserve(plan.params.size());
    for (const CompiledPlan::Param& param : plan.params) {
      switch (param.slot) {
        case CompiledPlan::Slot::kProvided:
          values.push_back(provided[param.provided_index]);
          break;
        case CompiledPlan::Slot::kObjectId: {
          const TV tv = eval(*param.expr);
          if (tv.v.is_null()) throw EvalError(param.null_error);
          values.push_back(
              db::Value::integer(static_cast<std::int64_t>(tv.v.as_object())));
          break;
        }
        case CompiledPlan::Slot::kValue: {
          const TV tv = eval(*param.expr);
          if (tv.v.is_null()) return false;
          values.push_back(to_db_value(tv.v, tv.t));
          break;
        }
        case CompiledPlan::Slot::kAssertNull:
          if (!eval(*param.expr).v.is_null()) return false;
          break;
      }
    }
    return true;
  }

  db::QueryResult run_prepared(const std::shared_ptr<const CompiledPlan>& plan,
                               std::span<const db::Value> values) {
    db::PreparedStatement& stmt = owner_.statement_for(plan);
    ++owner_.queries_;
    return owner_.conn_->execute(stmt, values);
  }

  /// Runs one translation site: uses the shared plan when present, records
  /// one on first contact, falls back to inline-literal compilation when
  /// caching is off (or a nullability guard fails).
  template <typename F>
  SiteResult run_site(const Expr& site, SiteKind kind,
                      std::span<const db::Value> provided, F&& compile) {
    // Params of this site never leak into an enclosing recording (a nested
    // uncorrelated aggregate executes *during* an outer compile; it becomes
    // one bound scalar of the outer plan, not part of its text).
    struct Restore {
      SqlExprEval& self;
      PlanBuild* saved;
      ~Restore() { self.build_ = saved; }
    } restore{*this, build_};
    build_ = nullptr;

    PlanCache* cache = owner_.cache_;
    if (cache == nullptr || prop_ == nullptr) {
      const Compiled compiled = compile();
      return {run(compiled.sql), compiled.elem_class};
    }
    const int k = static_cast<int>(kind) * 2 +
                  (client_side() ? 1 : 0);  // mode disambiguates shared nodes
    if (auto plan = cache->find(prop_->name, &site, k, owner_.layout_)) {
      std::vector<db::Value> values;
      if (bind_plan(*plan, provided, values)) {
        ++owner_.plan_hits_;
        cache->record(true);
        return {run_prepared(plan, values), plan->elem_class};
      }
      // Nullability guard failed: this context needs a different SQL shape.
      // Compile it fresh for this evaluation; the cached plan stays.
      ++owner_.plan_misses_;
      cache->record(false);
      const Compiled compiled = compile();
      return {run(compiled.sql), compiled.elem_class};
    }
    PlanBuild build;
    build_ = &build;
    const Compiled compiled = compile();
    build_ = nullptr;
    std::vector<db::Value> values;
    // A racing worker may have compiled the same site meanwhile; converge
    // on the canonical plan (the values bind either — same template).
    const std::shared_ptr<const CompiledPlan> plan =
        cache->insert(prop_->name, &site, k, owner_.layout_,
                      std::make_shared<CompiledPlan>(
                          finalize(compiled, std::move(build), values)));
    ++owner_.plan_misses_;
    cache->record(false);
    return {run_prepared(plan, values), plan->elem_class};
  }

  // --- client-side set materialization (the §5 slow path) -------------------

  /// Fetches the member ids of a set expression with plain component
  /// accesses: one junction query per setof attribute, then per-member
  /// attribute fetches for every filter evaluation.
  std::pair<std::vector<ObjectId>, std::uint32_t> client_set_ids(const Expr& e) {
    if (e.kind == Expr::Kind::kMember) {
      const TV base = eval(*e.base);
      if (base.t.kind != TypeKind::kClass || base.v.is_null()) {
        throw EvalError("client fetch: set base must be a non-null object");
      }
      const asl::ClassInfo& cls = model().class_info(base.t.id);
      const auto attr = cls.find_attr(e.name);
      if (!attr || cls.attrs[*attr].type.kind != TypeKind::kSet) {
        throw EvalError(support::cat("client fetch: '", e.name,
                                     "' is not a setof attribute of ",
                                     cls.name));
      }
      const db::Value owner =
          db::Value::integer(static_cast<std::int64_t>(base.v.as_object()));
      const std::uint32_t elem_class = cls.attrs[*attr].type.id;
      const SiteResult site = run_site(
          e, SiteKind::kJunctionIds, std::span<const db::Value>(&owner, 1),
          [&]() -> Compiled {
            return {support::cat("SELECT member FROM ",
                                 junction_table(cls.name, e.name),
                                 " WHERE owner = ", emit_provided(0, owner)),
                    elem_class};
          });
      std::vector<ObjectId> ids;
      ids.reserve(site.result.row_count());
      for (const db::Row& row : site.result.rows) {
        ids.push_back(static_cast<ObjectId>(row[0].as_int()));
      }
      return {std::move(ids), elem_class};
    }
    if (e.kind == Expr::Kind::kComprehension) {
      auto [ids, elem_class] = client_set_ids(*e.base);
      if (e.filter) {
        std::vector<ObjectId> kept;
        for (const ObjectId member : ids) {
          push(e.name, {RtValue::of_object(member), Type::class_of(elem_class)});
          const bool keep = eval(*e.filter).v.as_bool();
          pop();
          if (keep) kept.push_back(member);
        }
        ids = std::move(kept);
      }
      return {std::move(ids), elem_class};
    }
    throw EvalError(
        "client fetch: set expression must be a setof attribute chain or a "
        "comprehension over one");
  }

  TV eval_client_aggregate(const Expr& e) {
    auto [ids, elem_class] = client_set_ids(*e.base);
    double sum = 0.0;
    double best = 0.0;
    std::int64_t best_int = 0;
    bool best_is_int = false;
    std::size_t count = 0;
    bool first = true;
    for (const ObjectId member : ids) {
      push(e.name, {RtValue::of_object(member), Type::class_of(elem_class)});
      bool keep = true;
      if (e.filter) keep = eval(*e.filter).v.as_bool();
      if (keep) {
        if (e.agg_kind == asl::ast::AggKind::kCount) {
          ++count;
        } else {
          const TV v = eval(*e.agg_value);
          const double x = v.v.as_float();
          sum += x;
          ++count;
          const bool better =
              first || (e.agg_kind == asl::ast::AggKind::kMin ? x < best
                                                              : x > best);
          if ((e.agg_kind == asl::ast::AggKind::kMin ||
               e.agg_kind == asl::ast::AggKind::kMax) &&
              better) {
            best = x;
            best_is_int = v.v.is_int();
            best_int = best_is_int ? v.v.as_int() : 0;
          }
          first = false;
        }
      }
      pop();
    }
    switch (e.agg_kind) {
      case asl::ast::AggKind::kCount:
        return {RtValue::of_int(static_cast<std::int64_t>(count)),
                Type::of(TypeKind::kInt)};
      case asl::ast::AggKind::kSum:
        return {RtValue::of_float(sum), Type::of(TypeKind::kFloat)};
      case asl::ast::AggKind::kAvg:
        if (count == 0) throw EvalError("AVG over an empty set");
        return {RtValue::of_float(sum / static_cast<double>(count)),
                Type::of(TypeKind::kFloat)};
      case asl::ast::AggKind::kMin:
      case asl::ast::AggKind::kMax:
        if (count == 0) {
          throw EvalError(support::cat(asl::ast::to_string(e.agg_kind),
                                       " over an empty set"));
        }
        if (best_is_int) {
          return {RtValue::of_int(best_int), Type::of(TypeKind::kInt)};
        }
        return {RtValue::of_float(best), Type::of(TypeKind::kFloat)};
    }
    throw EvalError("unknown aggregate kind");
  }

  // --- set compilation -------------------------------------------------------

  struct SetQuery {
    std::string binder_name;
    std::string binder_alias = "b";
    std::uint32_t elem_class = 0;
    std::vector<std::string> from_joins;  // FROM fragment + JOIN fragments
    std::vector<std::string> conjuncts;
    int alias_counter = 0;

    [[nodiscard]] std::string from_where() const {
      std::string out = " FROM ";
      for (std::size_t i = 0; i < from_joins.size(); ++i) {
        if (i > 0) out += ' ';
        out += from_joins[i];
      }
      if (!conjuncts.empty()) {
        out += " WHERE ";
        for (std::size_t i = 0; i < conjuncts.size(); ++i) {
          if (i > 0) out += " AND ";
          out += conjuncts[i];
        }
      }
      return out;
    }
  };

  SetQuery compile_set(const Expr& e) {
    if (e.kind == Expr::Kind::kMember) {
      const TV base = eval(*e.base);
      if (base.t.kind != TypeKind::kClass) {
        throw EvalError("SQL strategy: set base must be an object");
      }
      const asl::ClassInfo& cls = model().class_info(base.t.id);
      const auto attr = cls.find_attr(e.name);
      if (!attr || cls.attrs[*attr].type.kind != TypeKind::kSet) {
        throw EvalError(support::cat("SQL strategy: '", e.name,
                                     "' is not a setof attribute of ",
                                     cls.name));
      }
      const ObjectId owner_id = base.v.as_object();
      if (owner_id == asl::kNullObject) {
        throw EvalError("SQL strategy: set access on null object");
      }
      SetQuery sq;
      sq.elem_class = cls.attrs[*attr].type.id;
      const std::string elem_table = model().class_info(sq.elem_class).name;
      sq.from_joins.push_back(junction_table(cls.name, e.name) + " j");
      sq.from_joins.push_back(
          support::cat("JOIN ", elem_table, " b ON b.id = j.member"));
      sq.conjuncts.push_back(support::cat(
          "j.owner = ",
          emit_object(e.base.get(), owner_id,
                      "SQL strategy: set access on null object")));
      return sq;
    }
    if (e.kind == Expr::Kind::kComprehension) {
      SetQuery sq = compile_set(*e.base);
      sq.binder_name = e.name;
      if (e.filter) {
        sq.conjuncts.push_back(sql_expr(*e.filter, sq));
      }
      return sq;
    }
    throw EvalError(
        "SQL strategy: set expression must be a setof attribute chain or a "
        "comprehension over one");
  }

  /// Compiles a scalar expression over the binder of `sq` into SQL text;
  /// sub-expressions not touching the binder evaluate client-side into
  /// bound parameters or literals (this is how uncorrelated nested
  /// aggregates become scalar constants in the query).
  std::string sql_expr(const Expr& e, SetQuery& sq) {
    using Kind = Expr::Kind;
    if (!sq.binder_name.empty() && !mentions_name(e, sq.binder_name)) {
      return emit_scalar(&e, eval(e));
    }
    switch (e.kind) {
      case Kind::kIdent:
        if (e.name == sq.binder_name) return sq.binder_alias + ".id";
        break;  // unreachable: non-binder idents hit the scalar path
      case Kind::kMember:
        return compile_path(e, sq);
      case Kind::kUnary: {
        const std::string operand = sql_expr(*e.lhs, sq);
        if (e.un_op == asl::ast::UnOp::kNot) {
          return support::cat("(NOT ", operand, ")");
        }
        return support::cat("(-", operand, ")");
      }
      case Kind::kBinary: {
        using asl::ast::BinOp;
        // `x == null` / `x != null` compile to IS [NOT] NULL.
        if (e.bin_op == BinOp::kEq || e.bin_op == BinOp::kNe) {
          const Expr* lhs = e.lhs.get();
          const Expr* rhs = e.rhs.get();
          // 0 = not a null side; 1 = statically null; 2 = null this context.
          const auto null_side = [&](const Expr& side) -> int {
            if (side.kind == Kind::kNullLit) return 1;
            if (mentions_name(side, sq.binder_name)) return 0;
            return eval(side).v.is_null() ? 2 : 0;
          };
          const int rhs_null = null_side(*rhs);
          const int lhs_null = rhs_null != 0 ? 0 : null_side(*lhs);
          if (rhs_null != 0 || lhs_null != 0) {
            const Expr& tested = rhs_null != 0 ? *lhs : *rhs;
            const Expr& nulled = rhs_null != 0 ? *rhs : *lhs;
            const std::string tested_sql = sql_expr(tested, sq);
            if ((rhs_null | lhs_null) == 2) note_assert_null(&nulled);
            return support::cat("(", tested_sql,
                                e.bin_op == BinOp::kEq ? " IS NULL)"
                                                       : " IS NOT NULL)");
          }
        }
        const char* op = nullptr;
        switch (e.bin_op) {
          case BinOp::kAdd: op = "+"; break;
          case BinOp::kSub: op = "-"; break;
          case BinOp::kMul: op = "*"; break;
          case BinOp::kDiv: op = "/"; break;
          case BinOp::kEq: op = "="; break;
          case BinOp::kNe: op = "<>"; break;
          case BinOp::kLt: op = "<"; break;
          case BinOp::kLe: op = "<="; break;
          case BinOp::kGt: op = ">"; break;
          case BinOp::kGe: op = ">="; break;
          case BinOp::kAnd: op = "AND"; break;
          case BinOp::kOr: op = "OR"; break;
        }
        // Sequence the sides explicitly: both emit parameters, and their
        // recording order must be deterministic.
        const std::string lhs_sql = sql_expr(*e.lhs, sq);
        const std::string rhs_sql = sql_expr(*e.rhs, sq);
        return support::cat("(", lhs_sql, " ", op, " ", rhs_sql, ")");
      }
      default:
        break;
    }
    throw EvalError(support::cat(
        "SQL strategy: expression correlated with binder '", sq.binder_name,
        "' is not compilable (aggregates/calls over the binder are not "
        "supported)"));
  }

  /// Member chain rooted at the binder: each intermediate ref-attribute hop
  /// becomes a JOIN; the final attribute becomes a column reference.
  std::string compile_path(const Expr& e, SetQuery& sq) {
    // Unroll the chain: base-most first.
    std::vector<const Expr*> chain;
    const Expr* cur = &e;
    while (cur->kind == Expr::Kind::kMember) {
      chain.push_back(cur);
      cur = cur->base.get();
    }
    if (cur->kind != Expr::Kind::kIdent || cur->name != sq.binder_name) {
      throw EvalError("SQL strategy: member path must be rooted at the binder");
    }
    std::reverse(chain.begin(), chain.end());

    std::string alias = sq.binder_alias;
    std::uint32_t cls_id = sq.elem_class;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      const asl::ClassInfo& cls = model().class_info(cls_id);
      const auto attr = cls.find_attr(chain[i]->name);
      if (!attr) {
        throw EvalError(support::cat("class ", cls.name, " has no attribute '",
                                     chain[i]->name, "'"));
      }
      const Type& attr_type = cls.attrs[*attr].type;
      if (i + 1 == chain.size()) {
        return support::cat(alias, ".", chain[i]->name);
      }
      if (attr_type.kind != TypeKind::kClass) {
        throw EvalError(support::cat("SQL strategy: '.", chain[i]->name,
                                     "' must be an object reference"));
      }
      const std::string next_alias = support::cat("t", sq.alias_counter++);
      sq.from_joins.push_back(
          support::cat("JOIN ", model().class_info(attr_type.id).name, " ",
                       next_alias, " ON ", next_alias, ".id = ", alias, ".",
                       chain[i]->name));
      alias = next_alias;
      cls_id = attr_type.id;
    }
    throw EvalError("empty member path");  // unreachable
  }

  [[nodiscard]] std::string literal_of(const TV& tv) const {
    if (tv.v.is_null()) return "NULL";
    switch (tv.t.kind) {
      case TypeKind::kInt:
        return std::to_string(tv.v.as_int());
      case TypeKind::kFloat:
        return db::Value::real(tv.v.as_float()).to_sql_literal();
      case TypeKind::kBool:
        return tv.v.as_bool() ? "TRUE" : "FALSE";
      case TypeKind::kString:
        return support::sql_quote(tv.v.as_string());
      case TypeKind::kDateTime:
        return support::cat("DATETIME ",
                            support::sql_quote(db::format_datetime(tv.v.as_int())));
      case TypeKind::kClass:
        return std::to_string(tv.v.as_object());
      case TypeKind::kEnum:
        return std::to_string(tv.v.as_enum().ordinal);
      default:
        throw EvalError("value has no SQL literal form");
    }
  }

  // --- typed evaluation ------------------------------------------------------

  TV eval(const Expr& e) {
    using Kind = Expr::Kind;
    switch (e.kind) {
      case Kind::kIntLit:
        return {RtValue::of_int(e.int_value), Type::of(TypeKind::kInt)};
      case Kind::kFloatLit:
        return {RtValue::of_float(e.float_value), Type::of(TypeKind::kFloat)};
      case Kind::kBoolLit:
        return {RtValue::of_bool(e.bool_value), Type::of(TypeKind::kBool)};
      case Kind::kStringLit:
        return {RtValue::of_string(e.string_value), Type::of(TypeKind::kString)};
      case Kind::kNullLit:
        return {RtValue::null(), Type::of(TypeKind::kNullRef)};

      case Kind::kIdent: {
        if (const TV* var = find(e.name)) return *var;
        if (const asl::ConstInfo* cst = model().find_constant(e.name)) {
          return {eval(*cst->value).v, cst->type};
        }
        if (const auto member = model().find_enum_member(e.name)) {
          return {RtValue::of_enum(member->first, member->second),
                  Type::enum_of(member->first)};
        }
        throw EvalError(support::cat("unknown name '", e.name, "'"));
      }

      case Kind::kMember: {
        const TV base = eval(*e.base);
        if (base.t.kind != TypeKind::kClass) {
          throw EvalError(support::cat("attribute access '.", e.name,
                                       "' on non-object"));
        }
        if (base.v.is_null()) {
          throw EvalError(support::cat("attribute access '.", e.name,
                                       "' on null object"));
        }
        const asl::ClassInfo& cls = model().class_info(base.t.id);
        const auto attr = cls.find_attr(e.name);
        if (!attr) {
          throw EvalError(support::cat("class ", cls.name,
                                       " has no attribute '", e.name, "'"));
        }
        const Type& attr_type = cls.attrs[*attr].type;
        if (attr_type.kind == TypeKind::kSet) {
          throw EvalError(
              "SQL strategy: set-valued attribute outside a set context");
        }
        const db::Value id =
            db::Value::integer(static_cast<std::int64_t>(base.v.as_object()));
        const SiteResult site = run_site(
            e, SiteKind::kAttrFetch, std::span<const db::Value>(&id, 1),
            [&]() -> Compiled {
              return {support::cat("SELECT ", e.name, " FROM ", cls.name,
                                   " WHERE id = ", emit_provided(0, id)),
                      0};
            });
        if (site.result.row_count() != 1) {
          throw EvalError(support::cat("object ", base.v.as_object(),
                                       " not found in table ", cls.name));
        }
        return {to_rt_value(site.result.rows[0][0], attr_type), attr_type};
      }

      case Kind::kCall: {
        const asl::FunctionInfo* fn = model().find_function(e.name);
        if (fn == nullptr) {
          throw EvalError(support::cat("unknown function '", e.name, "'"));
        }
        std::vector<TV> args;
        args.reserve(e.args.size());
        for (const auto& arg : e.args) args.push_back(eval(*arg));
        // Functions see only their parameters (no lexical capture).
        std::vector<std::pair<std::string, TV>> saved;
        saved.swap(env_);
        for (std::size_t i = 0; i < args.size(); ++i) {
          push(fn->params[i].first, std::move(args[i]));
        }
        TV result = eval(*fn->body);
        env_ = std::move(saved);
        result.t = fn->return_type;
        return result;
      }

      case Kind::kUnary: {
        const TV operand = eval(*e.lhs);
        if (e.un_op == asl::ast::UnOp::kNot) {
          return {RtValue::of_bool(!operand.v.as_bool()),
                  Type::of(TypeKind::kBool)};
        }
        if (operand.v.is_int()) {
          return {RtValue::of_int(-operand.v.as_int()), operand.t};
        }
        return {RtValue::of_float(-operand.v.as_float()), operand.t};
      }

      case Kind::kBinary:
        return eval_binary(e);

      case Kind::kComprehension: {
        if (client_side()) {
          auto [raw, elem_class] = client_set_ids(e);
          auto ids = std::make_shared<std::vector<ObjectId>>(std::move(raw));
          return {RtValue::of_set(std::move(ids)), Type::set_of(elem_class)};
        }
        const SiteResult site =
            run_site(e, SiteKind::kSetIds, {}, [&]() -> Compiled {
              SetQuery sq = compile_set(e);
              return {support::cat("SELECT b.id", sq.from_where()),
                      sq.elem_class};
            });
        auto ids = std::make_shared<std::vector<ObjectId>>();
        ids->reserve(site.result.row_count());
        for (const db::Row& row : site.result.rows) {
          ids->push_back(static_cast<ObjectId>(row[0].as_int()));
        }
        return {RtValue::of_set(std::move(ids)), Type::set_of(site.elem_class)};
      }

      case Kind::kAggregate: {
        if (!e.base) return eval(*e.agg_value);  // identity form
        if (client_side()) return eval_client_aggregate(e);
        const SiteResult site =
            run_site(e, SiteKind::kSetAgg, {}, [&]() -> Compiled {
              SetQuery sq = compile_set(*e.base);
              sq.binder_name = e.name;
              if (e.filter) sq.conjuncts.push_back(sql_expr(*e.filter, sq));
              std::string select;
              switch (e.agg_kind) {
                case asl::ast::AggKind::kCount:
                  select = "COUNT(*)";
                  break;
                case asl::ast::AggKind::kMin:
                  select = support::cat("MIN(", sql_expr(*e.agg_value, sq), ")");
                  break;
                case asl::ast::AggKind::kMax:
                  select = support::cat("MAX(", sql_expr(*e.agg_value, sq), ")");
                  break;
                case asl::ast::AggKind::kSum:
                  select = support::cat("SUM(", sql_expr(*e.agg_value, sq), ")");
                  break;
                case asl::ast::AggKind::kAvg:
                  select = support::cat("AVG(", sql_expr(*e.agg_value, sq), ")");
                  break;
              }
              return {support::cat("SELECT ", select, sq.from_where()),
                      sq.elem_class};
            });
        const db::Value scalar = site.result.scalar();
        if (e.agg_kind == asl::ast::AggKind::kCount) {
          return {RtValue::of_int(scalar.as_int()), Type::of(TypeKind::kInt)};
        }
        if (scalar.is_null()) {
          if (e.agg_kind == asl::ast::AggKind::kSum) {
            return {RtValue::of_float(0.0), Type::of(TypeKind::kFloat)};
          }
          throw EvalError(support::cat(asl::ast::to_string(e.agg_kind),
                                       " over an empty set"));
        }
        if (scalar.type() == db::ValueType::kInt) {
          return {RtValue::of_int(scalar.as_int()), Type::of(TypeKind::kInt)};
        }
        return {RtValue::of_float(scalar.as_double()),
                Type::of(TypeKind::kFloat)};
      }

      case Kind::kUnique: {
        if (client_side()) {
          auto [ids, elem_class] = client_set_ids(*e.base);
          if (ids.size() != 1) {
            throw EvalError(support::cat("UNIQUE over a set of size ",
                                         ids.size()));
          }
          return {RtValue::of_object(ids.front()), Type::class_of(elem_class)};
        }
        const SiteResult site =
            run_site(e, SiteKind::kSetIds, {}, [&]() -> Compiled {
              SetQuery sq = compile_set(*e.base);
              return {support::cat("SELECT b.id", sq.from_where()),
                      sq.elem_class};
            });
        if (site.result.row_count() != 1) {
          throw EvalError(support::cat("UNIQUE over a set of size ",
                                       site.result.row_count()));
        }
        return {RtValue::of_object(
                    static_cast<ObjectId>(site.result.rows[0][0].as_int())),
                Type::class_of(site.elem_class)};
      }

      case Kind::kExists:
      case Kind::kSize: {
        std::int64_t n = 0;
        if (client_side()) {
          n = static_cast<std::int64_t>(client_set_ids(*e.base).first.size());
        } else {
          const SiteResult site =
              run_site(e, SiteKind::kSetCount, {}, [&]() -> Compiled {
                SetQuery sq = compile_set(*e.base);
                return {support::cat("SELECT COUNT(*)", sq.from_where()),
                        sq.elem_class};
              });
          n = site.result.scalar().as_int();
        }
        if (e.kind == Kind::kExists) {
          return {RtValue::of_bool(n > 0), Type::of(TypeKind::kBool)};
        }
        return {RtValue::of_int(n), Type::of(TypeKind::kInt)};
      }
    }
    throw EvalError("unhandled expression kind");
  }

  TV eval_binary(const Expr& e) {
    using asl::ast::BinOp;
    switch (e.bin_op) {
      case BinOp::kAnd: {
        const TV lhs = eval(*e.lhs);
        if (!lhs.v.as_bool()) {
          return {RtValue::of_bool(false), Type::of(TypeKind::kBool)};
        }
        return {RtValue::of_bool(eval(*e.rhs).v.as_bool()),
                Type::of(TypeKind::kBool)};
      }
      case BinOp::kOr: {
        const TV lhs = eval(*e.lhs);
        if (lhs.v.as_bool()) {
          return {RtValue::of_bool(true), Type::of(TypeKind::kBool)};
        }
        return {RtValue::of_bool(eval(*e.rhs).v.as_bool()),
                Type::of(TypeKind::kBool)};
      }
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul: {
        const TV lhs = eval(*e.lhs);
        const TV rhs = eval(*e.rhs);
        const bool as_int = lhs.v.is_int() && rhs.v.is_int();
        const double x = lhs.v.as_float();
        const double y = rhs.v.as_float();
        double r = 0;
        switch (e.bin_op) {
          case BinOp::kAdd: r = x + y; break;
          case BinOp::kSub: r = x - y; break;
          default: r = x * y; break;
        }
        if (as_int) {
          return {RtValue::of_int(static_cast<std::int64_t>(r)),
                  Type::of(TypeKind::kInt)};
        }
        return {RtValue::of_float(r), Type::of(TypeKind::kFloat)};
      }
      case BinOp::kDiv: {
        const double x = eval(*e.lhs).v.as_float();
        const double y = eval(*e.rhs).v.as_float();
        if (y == 0.0) throw EvalError("division by zero");
        return {RtValue::of_float(x / y), Type::of(TypeKind::kFloat)};
      }
      case BinOp::kEq:
      case BinOp::kNe: {
        const bool eq = RtValue::equals(eval(*e.lhs).v, eval(*e.rhs).v);
        return {RtValue::of_bool(e.bin_op == BinOp::kEq ? eq : !eq),
                Type::of(TypeKind::kBool)};
      }
      default: {
        const double x = eval(*e.lhs).v.as_float();
        const double y = eval(*e.rhs).v.as_float();
        bool r = false;
        switch (e.bin_op) {
          case BinOp::kLt: r = x < y; break;
          case BinOp::kLe: r = x <= y; break;
          case BinOp::kGt: r = x > y; break;
          default: r = x >= y; break;
        }
        return {RtValue::of_bool(r), Type::of(TypeKind::kBool)};
      }
    }
  }

 private:
  SqlEvaluator& owner_;
  const asl::PropertyInfo* prop_;
  PlanBuild* build_ = nullptr;
  std::vector<std::pair<std::string, TV>> env_;
};

namespace {

/// Compiles a property's complete surface into ONE parameterized FROM-less
/// SELECT (paper §6: "translate the conditions of performance properties
/// entirely into SQL queries"). Column layout, in order:
///
///   [one probe per LET | one per condition | confidence arms | severity arms]
///
/// Every set site becomes an uncorrelated scalar subquery; LET bindings and
/// specification functions are inlined symbolically (the statement text is
/// context-free); the only context dependence is the property-argument
/// tuple, emitted as kProvided `?` parameters indexed by argument position.
/// The LET probes reproduce the interpreter's *eager* LET semantics: a LET
/// whose value is a data gap surfaces as a NULL column and the whole
/// context becomes not-applicable, exactly as the interpreter's thrown
/// EvalError would have.
///
/// Anything outside the compilable subset (see asl::classify_whole_condition)
/// throws EvalError; the evaluator then falls back to site-wise evaluation.
class WholeConditionCompiler {
 public:
  /// With `cse` on, the compiler additionally
  ///   * reuses one `?` marker per property argument, so structurally
  ///     identical subexpressions compile to byte-identical SQL, and
  ///   * hoists scalar subqueries whose text occurs more than once into
  ///     named CTEs (`WITH cse0 AS (SELECT ... AS v FROM ...) ...`), each
  ///     occurrence becoming a cheap `(SELECT v FROM cse0)` reference.
  /// The engine materializes each CTE exactly once per statement execution,
  /// so every shared subexpression runs once per (property, context).
  ///
  /// With `catalog` attached (and `cse` on), the compiler is additionally
  /// layout-aware: a full-table aggregate subquery whose base table is
  /// partitioned — and not pinned to one partition by an equality conjunct
  /// on the partition column — compiles into one `part<K>` CTE per
  /// partition (each scan pinned via `PARTITION (K)`) combined by a
  /// coordinator expression: SUM-of-SUMs, COUNT-of-COUNTs, AVG re-derived
  /// from per-partition SUM/COUNT, LEAST/GREATEST over per-partition
  /// MIN/MAX. The executor materializes independent CTEs of one statement
  /// concurrently, so the one-statement-per-(property, context) contract
  /// holds while the engine parallelizes inside the statement. Without
  /// `catalog` (or with `cse` off — the ablation baseline) compilation is
  /// layout-blind, exactly as before.
  /// `count_rewrites` is off for diagnostic-only compilations (explain):
  /// Database::exec_stats().partition_union_rewrites must track plans
  /// compiled for execution, not every time someone looks at the SQL.
  WholeConditionCompiler(const asl::Model& model, const asl::PropertyInfo& prop,
                         std::span<const RtValue> args, bool cse = true,
                         db::Database* catalog = nullptr,
                         bool count_rewrites = true)
      : model_(&model), prop_(&prop), args_(args), cse_(cse),
        catalog_(catalog), count_rewrites_(count_rewrites) {}

  /// Produces the plan plus the bind values of the compiling context.
  CompiledPlan compile(std::vector<db::Value>& first_values) {
    const EnvFrame* env = nullptr;
    for (std::size_t i = 0; i < prop_->params.size(); ++i) {
      env = push(env, Binding{prop_->params[i].first, Binding::Kind::kArg, i,
                              prop_->params[i].second, nullptr, nullptr});
    }
    std::vector<const EnvFrame*> let_envs;  // scope visible to each LET init
    for (const asl::LetInfo& let : prop_->lets) {
      let_envs.push_back(env);
      env = push(env, Binding{let.name, Binding::Kind::kExpr, 0, let.type,
                              let.init, env});
    }

    std::vector<std::string> columns;
    const auto add = [&](std::string column) {
      columns.push_back(std::move(column));
    };
    // Probe the LETs whose evaluation can only yield NULL through a data
    // gap the interpreter would have thrown on (UNIQUE over a non-singleton
    // set, an aggregate over an empty one, ...). Raw attribute reads are
    // NOT probed: an unset attribute is a legal null value in ASL, not an
    // error. (Residual corner: a LET that is referenced nowhere and whose
    // member chain breaks mid-way stays undetected — the interpreter would
    // report not-applicable; acceptable for a binding nothing consumes.)
    std::size_t probes = 0;
    for (std::size_t i = 0; i < prop_->lets.size(); ++i) {
      if (may_be_null(*prop_->lets[i].init, let_envs[i], 0)) continue;
      add(scalar(*prop_->lets[i].init, let_envs[i]).sql);
      ++probes;
    }
    for (const asl::ConditionInfo& cond : prop_->conditions) {
      add(scalar(*cond.pred, env).sql);
    }
    for (const asl::GuardedInfo& arm : prop_->confidence) {
      add(scalar(*arm.expr, env).sql);
    }
    for (const asl::GuardedInfo& arm : prop_->severity) {
      add(scalar(*arm.expr, env).sql);
    }
    std::string sql = "SELECT ";
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += columns[i];
    }
    if (cse_) sql = eliminate_common_subexpressions(std::move(sql));

    // elem_class is unused by whole plans; it carries the probe-column
    // count so the glue can locate the condition columns.
    return finalize(
        Compiled{std::move(sql), static_cast<std::uint32_t>(probes)},
        std::move(build_), first_values);
  }

 private:
  struct EnvFrame;

  /// A name visible during compilation: a property argument (becomes a `?`
  /// parameter) or an expression alias (LET binding or inlined function
  /// parameter, compiled on reference in the scope it was written in).
  struct Binding {
    enum class Kind { kArg, kExpr };
    std::string_view name;
    Kind kind = Kind::kArg;
    std::size_t arg_index = 0;          // kArg
    Type type;                          // declared static type
    const Expr* expr = nullptr;         // kExpr
    const EnvFrame* def_env = nullptr;  // scope the expr was written in
  };
  struct EnvFrame {
    Binding binding;
    const EnvFrame* parent = nullptr;
  };

  /// SQL text with its static ASL type (needed to resolve member chains and
  /// junction tables without a runtime context).
  struct TSql {
    std::string sql;
    Type type;
  };

  /// One scalar subquery under construction: FROM/JOIN fragments plus WHERE
  /// conjuncts, with the set's binder bound to alias `b`.
  struct SetSpec {
    std::string binder;  // empty until a comprehension/aggregate names one
    std::uint32_t elem_class = 0;
    std::vector<std::string> from_joins;
    std::vector<std::string> conjuncts;
    int alias_counter = 0;
    const EnvFrame* env = nullptr;  // scope for uncorrelated subexpressions
    /// Catalog table and alias of from_joins[0] — what the partition-union
    /// rewrite checks against the layout metadata.
    std::string base_table;
    std::string base_alias;

    [[nodiscard]] std::string from_where() const {
      std::string out = " FROM ";
      for (std::size_t i = 0; i < from_joins.size(); ++i) {
        if (i > 0) out += ' ';
        out += from_joins[i];
      }
      if (!conjuncts.empty()) {
        out += " WHERE ";
        for (std::size_t i = 0; i < conjuncts.size(); ++i) {
          if (i > 0) out += " AND ";
          out += conjuncts[i];
        }
      }
      return out;
    }
  };

  struct DepthGuard {
    explicit DepthGuard(WholeConditionCompiler& self) : self_(self) {
      if (++self_.depth_ > kMaxInlineDepth) {
        throw self_.not_compilable("aliases or functions inline too deep");
      }
    }
    ~DepthGuard() { --self_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    WholeConditionCompiler& self_;
  };

  const EnvFrame* push(const EnvFrame* parent, Binding binding) {
    frames_.push_back(EnvFrame{binding, parent});
    return &frames_.back();
  }
  [[nodiscard]] static const Binding* lookup(std::string_view name,
                                             const EnvFrame* env) {
    for (; env != nullptr; env = env->parent) {
      if (env->binding.name == name) return &env->binding;
    }
    return nullptr;
  }

  [[nodiscard]] EvalError not_compilable(std::string_view what) const {
    return EvalError(support::cat("whole-condition: ", what, " (property ",
                                  prop_->name, ")"));
  }

  /// True when the interpreter can evaluate `e` to a raw null *without
  /// throwing*: the null literal, any attribute read (unset attributes are
  /// legal nulls), or an alias/function that resolves to one of those.
  /// Everything else either throws on a data gap (UNIQUE, aggregates,
  /// arithmetic on null) or cannot be null (literals) — those are the LETs
  /// worth probing.
  bool may_be_null(const Expr& e, const EnvFrame* env,  // NOLINT(misc-no-recursion)
                   int depth) {
    if (depth > kMaxInlineDepth) return true;  // give up: skip the probe
    switch (e.kind) {
      case Expr::Kind::kNullLit:
      case Expr::Kind::kMember:
        return true;
      case Expr::Kind::kIdent: {
        if (const Binding* bound = lookup(e.name, env)) {
          if (bound->kind == Binding::Kind::kArg) return true;
          return may_be_null(*bound->expr, bound->def_env, depth + 1);
        }
        if (const asl::ConstInfo* cst = model_->find_constant(e.name)) {
          return may_be_null(*cst->value, nullptr, depth + 1);
        }
        return false;
      }
      case Expr::Kind::kCall: {
        const asl::FunctionInfo* fn = model_->find_function(e.name);
        if (fn == nullptr || e.args.size() != fn->params.size()) return false;
        const EnvFrame* fn_env = nullptr;
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          fn_env = push(fn_env,
                        Binding{fn->params[i].first, Binding::Kind::kExpr, 0,
                                fn->params[i].second, e.args[i].get(), env});
        }
        return may_be_null(*fn->body, fn_env, depth + 1);
      }
      default:
        return false;
    }
  }

  std::string param_marker(std::size_t arg_index, const Type& type) {
    if (cse_) {
      // One marker per argument: every reference to the same property
      // argument emits identical text, which is what lets structurally
      // identical subexpressions match byte-for-byte (and what collapses
      // the duplicated occurrences into one bound `?` each after CSE).
      const auto it = arg_markers_.find(arg_index);
      if (it != arg_markers_.end()) return it->second;
      std::string marker = build_.marker(
          {nullptr, CompiledPlan::Slot::kProvided, arg_index, {}},
          to_db_value(args_[arg_index], type));
      arg_markers_.emplace(arg_index, marker);
      return marker;
    }
    return build_.marker(
        {nullptr, CompiledPlan::Slot::kProvided, arg_index, {}},
        to_db_value(args_[arg_index], type));
  }

  /// Name of a generated CTE (`cse<i>` for hoisted shared subqueries,
  /// `part<k>` for partition-union shards). The base name is kept unless
  /// the model declares a class (or junction table) of that name —
  /// bind_sources resolves CTE names before the catalog, so a collision
  /// would silently shadow the base table inside the rewritten statement.
  /// Underscore-prefixing until the name is free keeps the choice
  /// deterministic per model.
  [[nodiscard]] std::string cte_name(std::string base) const {
    const auto taken = [&](std::string_view candidate) {
      for (const asl::ClassInfo& cls : model_->classes()) {
        if (support::iequals(cls.name, candidate)) return true;
        for (const asl::AttrInfo& attr : cls.attrs) {
          if (attr.type.kind == TypeKind::kSet &&
              support::iequals(junction_table(cls.name, attr.name),
                               candidate)) {
            return true;
          }
        }
      }
      return false;
    };
    while (taken(base)) base.insert(0, "_");
    return base;
  }

  /// Aggregate operators the partition-union rewrite understands.
  enum class PartAgg { kCount, kSum, kAvg, kMin, kMax };

  [[nodiscard]] static std::string flat_aggregate_select(
      PartAgg op, const std::string& arg) {
    switch (op) {
      case PartAgg::kCount:
        return "COUNT(*)";
      case PartAgg::kSum:
        // ASL's SUM of an empty set is 0 (no barrier records means zero
        // barrier time, not a data gap), so the NULL of SQL's empty SUM
        // must not propagate.
        return support::cat("COALESCE(SUM(", arg, "), 0.0)");
      case PartAgg::kAvg:
        return support::cat("AVG(", arg, ")");
      case PartAgg::kMin:
        return support::cat("MIN(", arg, ")");
      case PartAgg::kMax:
        return support::cat("MAX(", arg, ")");
    }
    return {};
  }

  /// Complete aggregate subquery over `sq`: the partition-union rewrite
  /// when the layout rewards it, the flat single-scan subquery otherwise.
  std::string aggregate_scalar(PartAgg op, const std::string& arg,
                               const SetSpec& sq) {
    if (auto rewritten = partition_union(op, arg, sq)) return *rewritten;
    return hoistable(flat_aggregate_select(op, arg), sq.from_where());
  }

  /// The partition-union rewrite: a full-table aggregate over a partitioned
  /// base table compiles to one `part<K>` CTE per partition — the scan of
  /// shard K pinned with `PARTITION (K)` — combined by a coordinator
  /// expression (SUM-of-SUMs / COUNT-of-COUNTs, AVG re-derived from
  /// per-partition SUM and COUNT, LEAST/GREATEST over per-partition
  /// MIN/MAX, each of which skips the NULL an empty shard yields). Returns
  /// nullopt when the rewrite does not apply: no catalog attached, CSE off
  /// (the layout-blind ablation baseline), the base table unpartitioned, or
  /// the scan already pinned to one partition by an equality conjunct on
  /// the partition column — per-owner probes stay ONE flat subquery the
  /// executor prunes at bind time, because a union of one live shard plus
  /// N-1 provably empty ones would only add wire and parse cost.
  std::optional<std::string> partition_union(PartAgg op, const std::string& arg,
                                             const SetSpec& sq) {
    if (!cse_ || catalog_ == nullptr || sq.base_table.empty()) {
      return std::nullopt;
    }
    const auto layout = catalog_->table_layout(sq.base_table);
    if (!layout || layout->partitions <= 1) return std::nullopt;
    if ((op == PartAgg::kMin || op == PartAgg::kMax) &&
        layout->partitions > kMaxFoldArgs) {
      // LEAST/GREATEST accept at most 64 arguments (the scalar-function
      // binder's cap); beyond that the statement would fail at bind time
      // and silently demote every context to the sitewise path — strictly
      // worse than staying flat. (The +-chain coordinators have no arity
      // cap, so SUM/COUNT/AVG still rewrite at any partition count.)
      return std::nullopt;
    }
    const std::string pin =
        support::cat(sq.base_alias, ".", layout->partition_column, " = ");
    for (const std::string& conjunct : sq.conjuncts) {
      if (conjunct.size() >= pin.size() &&
          support::iequals(std::string_view(conjunct).substr(0, pin.size()),
                           pin)) {
        return std::nullopt;  // pruned probe: one partition at bind time
      }
    }

    // One part<K> group per distinct FROM/WHERE shape, shared by every
    // aggregate operator over it: the group's CTEs carry one output column
    // per distinct fold fragment (SUM and AVG share the COALESCE(SUM)
    // column, for instance), so each partition is scanned ONCE per
    // statement no matter how many operators fold the same set.
    const std::string flat_from_where = sq.from_where();
    auto [it, inserted] = partition_groups_.try_emplace(flat_from_where);
    PartitionGroup& group = it->second;
    if (inserted) {
      SetSpec shard = sq;
      for (std::size_t k = 0; k < layout->partitions; ++k) {
        shard.from_joins[0] = support::cat(sq.base_table, " PARTITION (", k,
                                           ") ", sq.base_alias);
        group.names.push_back(cte_name(support::cat("part", part_counter_++)));
        group.from_wheres.push_back(shard.from_where());
      }
      group_order_.push_back(&group);
    }
    const auto column_for = [&group](std::string fragment) -> std::string {
      for (const auto& [alias, existing] : group.columns) {
        if (existing == fragment) return alias;
      }
      group.columns.emplace_back(support::cat("v", group.columns.size()),
                                 std::move(fragment));
      return group.columns.back().first;
    };

    const auto folded = [&](const std::string& column, std::string_view sep,
                            std::string_view open, std::string_view close) {
      std::string out(open);
      for (std::size_t k = 0; k < group.names.size(); ++k) {
        if (k > 0) out += sep;
        out += support::cat("(SELECT ", column, " FROM ", group.names[k], ")");
      }
      out += close;
      return out;
    };
    std::string coordinator;
    switch (op) {
      case PartAgg::kCount:
      case PartAgg::kSum:
        coordinator =
            folded(column_for(flat_aggregate_select(op, arg)), " + ", "(", ")");
        break;
      case PartAgg::kAvg: {
        // AVG re-derives from per-partition SUM and COUNT. Empty-set AVG
        // must stay NULL (a data gap upstream); the engine's IIF evaluates
        // only the taken branch, so the division is guarded.
        const std::string s =
            column_for(support::cat("COALESCE(SUM(", arg, "), 0.0)"));
        const std::string c = column_for(support::cat("COUNT(", arg, ")"));
        coordinator = support::cat("IIF(", folded(c, " + ", "(", ")"),
                                   " = 0, NULL, ", folded(s, " + ", "(", ")"),
                                   " / ", folded(c, " + ", "(", ")"), ")");
        break;
      }
      case PartAgg::kMin:
        coordinator =
            folded(column_for(support::cat("MIN(", arg, ")")), ", ", "LEAST(",
                   ")");
        break;
      case PartAgg::kMax:
        coordinator = folded(column_for(support::cat("MAX(", arg, ")")), ", ",
                             "GREATEST(", ")");
        break;
    }
    // Telemetry: one count per distinct rewritten aggregate (repeated
    // occurrences through LET inlining produce the same coordinator and
    // count once); diagnostic-only compilations never count.
    if (count_rewrites_ && counted_rewrites_.insert(coordinator).second) {
      catalog_->count_partition_union_rewrite();
    }
    // Funnel the coordinator through the CSE machinery like any other
    // scalar subquery: a shared rewritten aggregate dedupes into a cse CTE
    // whose body references the part<K> shards defined before it.
    return hoistable(coordinator, "");
  }

  /// Every complete scalar subquery funnels through here: the text is
  /// registered as a CSE candidate and returned parenthesized. The
  /// `select_list` length is kept so the CTE body can alias the one output
  /// column (`SELECT <list> AS v <from_where>`).
  std::string hoistable(const std::string& select_list,
                        const std::string& from_where) {
    std::string text = support::cat("SELECT ", select_list, from_where);
    if (cse_) {
      subqueries_.try_emplace(text, select_list.size());
    }
    return support::cat("(", text, ")");
  }

  /// The CSE pass: any registered subquery whose text occurs more than once
  /// in the composed statement (compile-time sharing via LET inlining, or
  /// textual duplication from the IIF/COALESCE null glue) is hoisted into a
  /// named CTE. CTEs are defined shortest-first so a hoisted subquery that
  /// contains another hoisted subquery references the earlier definition —
  /// the parser's no-forward-reference rule holds by construction.
  ///
  /// Partition-union shards come first in the WITH clause: coordinator
  /// expressions (inline or hoisted into a cse CTE) reference the `part<K>`
  /// names, and the parser rejects forward references. Shard bodies
  /// themselves are excluded from CSE replacement — they are already
  /// deduplicated by shape, and each must keep its own `PARTITION (K)` scan.
  std::string eliminate_common_subexpressions(std::string sql) {
    struct SharedSub {
      const std::string* text;
      std::size_t select_list_size;
      std::string name;
    };
    std::vector<SharedSub> shared;
    for (const auto& [text, select_list_size] : subqueries_) {
      if (count_occurrences(sql, support::cat("(", text, ")")) >= 2) {
        shared.push_back({&text, select_list_size, {}});
      }
    }
    if (shared.empty() && group_order_.empty()) return sql;
    std::sort(shared.begin(), shared.end(),
              [](const SharedSub& a, const SharedSub& b) {
                if (a.text->size() != b.text->size()) {
                  return a.text->size() < b.text->size();
                }
                return *a.text < *b.text;
              });

    std::string with_clause = "WITH ";
    bool first_entry = true;
    const auto add_entry = [&](std::string_view name, std::string_view body) {
      if (!first_entry) with_clause += ", ";
      first_entry = false;
      with_clause += support::cat(name, " AS (", body, ")");
    };
    for (const PartitionGroup* group : group_order_) {
      std::string select;
      for (std::size_t c = 0; c < group->columns.size(); ++c) {
        if (c > 0) select += ", ";
        select += support::cat(group->columns[c].second, " AS ",
                               group->columns[c].first);
      }
      for (std::size_t k = 0; k < group->names.size(); ++k) {
        add_entry(group->names[k],
                  support::cat("SELECT ", select, group->from_wheres[k]));
      }
    }
    for (std::size_t i = 0; i < shared.size(); ++i) {
      shared[i].name = cte_name(support::cat("cse", i));
      // Body: the subquery with its single output column aliased, and any
      // earlier (strictly shorter) shared subquery replaced by a reference.
      std::string body = *shared[i].text;
      body.insert(7 + shared[i].select_list_size, " AS v");
      for (std::size_t j = 0; j < i; ++j) {
        replace_all(body, support::cat("(", *shared[j].text, ")"),
                    support::cat("(SELECT v FROM ", shared[j].name, ")"));
      }
      add_entry(shared[i].name, body);
    }
    // Main text: longest-first, so occurrences nested inside a bigger
    // shared subquery disappear with the bigger one.
    for (std::size_t i = shared.size(); i-- > 0;) {
      replace_all(sql, support::cat("(", *shared[i].text, ")"),
                  support::cat("(SELECT v FROM ", shared[i].name, ")"));
    }
    return support::cat(with_clause, " ", sql);
  }

  // --- scalar position (no set binder in scope) ----------------------------

  TSql scalar(const Expr& e, const EnvFrame* env) {  // NOLINT(misc-no-recursion)
    using Kind = Expr::Kind;
    switch (e.kind) {
      case Kind::kIntLit:
        return {std::to_string(e.int_value), Type::of(TypeKind::kInt)};
      case Kind::kFloatLit:
        return {db::Value::real(e.float_value).to_sql_literal(),
                Type::of(TypeKind::kFloat)};
      case Kind::kBoolLit:
        return {e.bool_value ? "TRUE" : "FALSE", Type::of(TypeKind::kBool)};
      case Kind::kStringLit:
        return {support::sql_quote(e.string_value),
                Type::of(TypeKind::kString)};
      case Kind::kNullLit:
        return {"NULL", Type::of(TypeKind::kNullRef)};

      case Kind::kIdent: {
        if (const Binding* bound = lookup(e.name, env)) {
          if (bound->kind == Binding::Kind::kArg) {
            return {param_marker(bound->arg_index, bound->type), bound->type};
          }
          const DepthGuard guard(*this);
          TSql inner = scalar(*bound->expr, bound->def_env);
          inner.type = bound->type;  // the declared alias type wins
          return inner;
        }
        if (const asl::ConstInfo* cst = model_->find_constant(e.name)) {
          TSql value = scalar(*cst->value, nullptr);
          value.type = cst->type;
          return value;
        }
        if (const auto member = model_->find_enum_member(e.name)) {
          return {std::to_string(member->second),
                  Type::enum_of(member->first)};
        }
        throw not_compilable(support::cat("unknown name '", e.name, "'"));
      }

      case Kind::kMember:
        return member_chain(e, env);

      case Kind::kCall:
        return inline_call(e, env);

      case Kind::kUnary: {
        const TSql operand = scalar(*e.lhs, env);
        if (e.un_op == asl::ast::UnOp::kNot) {
          return {support::cat("(NOT ", operand.sql, ")"),
                  Type::of(TypeKind::kBool)};
        }
        return {support::cat("(-", operand.sql, ")"), operand.type};
      }

      case Kind::kBinary:
        return binary(e, env);

      case Kind::kAggregate: {
        if (!e.base) return scalar(*e.agg_value, env);  // identity form
        SetSpec sq = set_spec(*e.base, env);
        sq.binder = e.name;
        sq.env = env;
        if (e.filter) sq.conjuncts.push_back(over_binder(*e.filter, sq));
        PartAgg op = PartAgg::kCount;
        Type type = Type::of(TypeKind::kFloat);
        switch (e.agg_kind) {
          case asl::ast::AggKind::kCount:
            op = PartAgg::kCount;
            type = Type::of(TypeKind::kInt);
            break;
          case asl::ast::AggKind::kSum: op = PartAgg::kSum; break;
          case asl::ast::AggKind::kAvg: op = PartAgg::kAvg; break;
          case asl::ast::AggKind::kMin: op = PartAgg::kMin; break;
          case asl::ast::AggKind::kMax: op = PartAgg::kMax; break;
        }
        // The value expression may add JOINs to sq; compile it before the
        // FROM/WHERE text is rendered.
        const std::string arg = e.agg_kind == asl::ast::AggKind::kCount
                                    ? std::string()
                                    : over_binder(*e.agg_value, sq);
        return {aggregate_scalar(op, arg, sq), type};
      }

      case Kind::kUnique: {
        // As a bare scalar, UNIQUE yields the member's object id; the
        // engine's scalar-subquery cardinality rule enforces "exactly one"
        // (several members abort the statement, zero yields NULL — both
        // surface as not-applicable, as the interpreter's throw would).
        SetSpec sq = set_spec(*e.base, env);
        return {hoistable("b.id", sq.from_where()),
                Type::class_of(sq.elem_class)};
      }
      case Kind::kExists: {
        SetSpec sq = set_spec(*e.base, env);
        return {support::cat("(", aggregate_scalar(PartAgg::kCount, {}, sq),
                             " > 0)"),
                Type::of(TypeKind::kBool)};
      }
      case Kind::kSize: {
        SetSpec sq = set_spec(*e.base, env);
        return {aggregate_scalar(PartAgg::kCount, {}, sq),
                Type::of(TypeKind::kInt)};
      }

      case Kind::kComprehension:
        throw not_compilable("set comprehension in scalar position");
    }
    throw not_compilable("unhandled expression kind");
  }

  TSql binary(const Expr& e, const EnvFrame* env) {  // NOLINT(misc-no-recursion)
    using asl::ast::BinOp;
    if (e.bin_op == BinOp::kEq || e.bin_op == BinOp::kNe) {
      // ASL equality is total over *legal* nulls (RtValue::equals: an unset
      // attribute equals only null, never an error), but a NULL produced by
      // a data gap — an empty UNIQUE/AVG/MIN/MAX subquery — marks a context
      // the interpreter would have thrown on. may_be_null() tells the two
      // apart per operand at compile time: legal-null operands get the
      // total-equality treatment, gap-only operands poison the result when
      // NULL. (Member chains conflate a mid-chain gap with a legally-unset
      // final attribute; they are treated as legal, the same residual
      // corner the LET probes document.) Repeated marker text binds the
      // same parameter at every position.
      const bool lhs_nulllit = e.lhs->kind == Expr::Kind::kNullLit;
      const bool rhs_nulllit = e.rhs->kind == Expr::Kind::kNullLit;
      std::string equal;
      if (lhs_nulllit && rhs_nulllit) {
        equal = "TRUE";
      } else if (lhs_nulllit || rhs_nulllit) {
        const Expr& tested = lhs_nulllit ? *e.rhs : *e.lhs;
        const std::string tested_sql = scalar(tested, env).sql;
        if (may_be_null(tested, env, 0)) {
          equal = support::cat("(", tested_sql, " IS NULL)");
        } else {
          // NULL here is a gap, not a match for the null literal.
          equal = support::cat("(IIF(", tested_sql, " IS NULL, NULL, FALSE))");
        }
      } else {
        const bool lhs_legal = may_be_null(*e.lhs, env, 0);
        const bool rhs_legal = may_be_null(*e.rhs, env, 0);
        const TSql lhs = scalar(*e.lhs, env);
        const TSql rhs = scalar(*e.rhs, env);
        const std::string plain =
            support::cat("(", lhs.sql, " = ", rhs.sql, ")");
        if (lhs_legal && rhs_legal) {
          equal = support::cat("(COALESCE(", plain, ", FALSE) OR (", lhs.sql,
                               " IS NULL AND ", rhs.sql, " IS NULL))");
        } else if (!lhs_legal && !rhs_legal) {
          equal = plain;  // NULL only arises from gaps: propagate it
        } else {
          const std::string& gap = lhs_legal ? rhs.sql : lhs.sql;
          equal = support::cat("(IIF(", gap, " IS NULL, NULL, COALESCE(",
                               plain, ", FALSE)))");
        }
      }
      return {e.bin_op == BinOp::kEq ? equal
                                     : support::cat("(NOT ", equal, ")"),
              Type::of(TypeKind::kBool)};
    }
    if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr) {
      // ASL short-circuits left to right: a null (data-gap) LEFT operand is
      // an evaluation error, while the right operand is only consulted when
      // the left doesn't decide. SQL's three-valued logic would instead let
      // a dominating right operand absorb the gap (NULL OR TRUE = TRUE), so
      // a NULL left operand must poison the result explicitly.
      const TSql lhs = scalar(*e.lhs, env);
      const TSql rhs = scalar(*e.rhs, env);
      return {support::cat("(IIF(", lhs.sql, " IS NULL, NULL, ", lhs.sql,
                           e.bin_op == BinOp::kAnd ? " AND " : " OR ",
                           rhs.sql, "))"),
              Type::of(TypeKind::kBool)};
    }
    const char* op = nullptr;
    switch (e.bin_op) {
      case BinOp::kAdd: op = "+"; break;
      case BinOp::kSub: op = "-"; break;
      case BinOp::kMul: op = "*"; break;
      case BinOp::kDiv: op = "/"; break;
      case BinOp::kEq: op = "="; break;
      case BinOp::kNe: op = "<>"; break;
      case BinOp::kLt: op = "<"; break;
      case BinOp::kLe: op = "<="; break;
      case BinOp::kGt: op = ">"; break;
      case BinOp::kGe: op = ">="; break;
      case BinOp::kAnd: op = "AND"; break;
      case BinOp::kOr: op = "OR"; break;
    }
    const TSql lhs = scalar(*e.lhs, env);
    const TSql rhs = scalar(*e.rhs, env);
    Type type = Type::of(TypeKind::kBool);
    switch (e.bin_op) {
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul:
        type = (lhs.type.kind == TypeKind::kInt &&
                rhs.type.kind == TypeKind::kInt)
                   ? Type::of(TypeKind::kInt)
                   : Type::of(TypeKind::kFloat);
        break;
      case BinOp::kDiv:
        type = Type::of(TypeKind::kFloat);
        break;
      default:
        break;
    }
    return {support::cat("(", lhs.sql, " ", op, " ", rhs.sql, ")"), type};
  }

  TSql inline_call(const Expr& e, const EnvFrame* env) {  // NOLINT(misc-no-recursion)
    const asl::FunctionInfo* fn = model_->find_function(e.name);
    if (fn == nullptr) {
      throw not_compilable(support::cat("unknown function '", e.name, "'"));
    }
    if (e.args.size() != fn->params.size()) {
      throw not_compilable(support::cat("function ", fn->name, " expects ",
                                        fn->params.size(), " arguments"));
    }
    const DepthGuard guard(*this);
    // The body sees only the parameters; each argument expression compiles
    // (where referenced) in the caller's scope.
    const EnvFrame* fn_env = nullptr;
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      fn_env = push(fn_env,
                    Binding{fn->params[i].first, Binding::Kind::kExpr, 0,
                            fn->params[i].second, e.args[i].get(), env});
    }
    TSql body = scalar(*fn->body, fn_env);
    body.type = fn->return_type;
    return body;
  }

  /// Member chain in scalar position. The root is resolved through LET
  /// aliases and function inlining; a UNIQUE root fuses into one subquery
  /// (`Summary(r,t).Incl` becomes `SELECT b.Incl FROM <set> WHERE ...`),
  /// any other object-valued root anchors a fresh per-class subquery.
  TSql member_chain(const Expr& e, const EnvFrame* env) {  // NOLINT(misc-no-recursion)
    std::vector<const Expr*> chain;
    const Expr* root = &e;
    while (root->kind == Expr::Kind::kMember) {
      chain.push_back(root);
      root = root->base.get();
    }
    std::reverse(chain.begin(), chain.end());

    const EnvFrame* root_env = env;
    int hops = 0;
    while (true) {
      if (++hops > kMaxInlineDepth) {
        throw not_compilable("alias chain too deep");
      }
      if (root->kind == Expr::Kind::kIdent) {
        const Binding* bound = lookup(root->name, root_env);
        if (bound != nullptr && bound->kind == Binding::Kind::kExpr) {
          root = bound->expr;
          root_env = bound->def_env;
          continue;
        }
      }
      if (root->kind == Expr::Kind::kCall) {
        const asl::FunctionInfo* fn = model_->find_function(root->name);
        if (fn == nullptr || root->args.size() != fn->params.size()) {
          throw not_compilable(
              support::cat("unresolvable call '", root->name, "'"));
        }
        const EnvFrame* fn_env = nullptr;
        for (std::size_t i = 0; i < root->args.size(); ++i) {
          fn_env = push(fn_env, Binding{fn->params[i].first,
                                        Binding::Kind::kExpr, 0,
                                        fn->params[i].second,
                                        root->args[i].get(), root_env});
        }
        root = fn->body;
        root_env = fn_env;
        continue;
      }
      break;
    }

    if (root->kind == Expr::Kind::kUnique) {
      SetSpec sq = set_spec(*root->base, root_env);
      sq.env = root_env;
      auto [column, type] = follow_path(sq, "b", sq.elem_class, chain);
      return {hoistable(column, sq.from_where()), type};
    }

    const TSql base = scalar(*root, root_env);
    if (base.type.kind != TypeKind::kClass) {
      throw not_compilable(support::cat("attribute access '.",
                                        chain.front()->name,
                                        "' on a non-object expression"));
    }
    SetSpec sq;
    sq.env = root_env;
    sq.base_table = model_->class_info(base.type.id).name;
    sq.base_alias = "a0";
    sq.from_joins.push_back(support::cat(sq.base_table, " a0"));
    sq.conjuncts.push_back(support::cat("a0.id = ", base.sql));
    auto [column, type] = follow_path(sq, "a0", base.type.id, chain);
    return {hoistable(column, sq.from_where()), type};
  }

  /// Walks `chain` starting from `alias` (an instance of `cls_id`), adding
  /// one JOIN per intermediate object reference; returns the final column
  /// and its attribute type.
  std::pair<std::string, Type> follow_path(SetSpec& sq, std::string alias,
                                           std::uint32_t cls_id,
                                           std::span<const Expr* const> chain) {
    for (std::size_t i = 0; i < chain.size(); ++i) {
      const asl::ClassInfo& cls = model_->class_info(cls_id);
      const auto attr = cls.find_attr(chain[i]->name);
      if (!attr) {
        throw not_compilable(support::cat("class ", cls.name,
                                          " has no attribute '",
                                          chain[i]->name, "'"));
      }
      const Type& attr_type = cls.attrs[*attr].type;
      if (i + 1 == chain.size()) {
        if (attr_type.kind == TypeKind::kSet) {
          throw not_compilable(support::cat("set-valued attribute '",
                                            chain[i]->name,
                                            "' in scalar position"));
        }
        return {support::cat(alias, ".", chain[i]->name), attr_type};
      }
      if (attr_type.kind != TypeKind::kClass) {
        throw not_compilable(support::cat("'.", chain[i]->name,
                                          "' must be an object reference"));
      }
      const std::string next = support::cat("t", sq.alias_counter++);
      sq.from_joins.push_back(
          support::cat("JOIN ", model_->class_info(attr_type.id).name, " ",
                       next, " ON ", next, ".id = ", alias, ".",
                       chain[i]->name));
      alias = next;
      cls_id = attr_type.id;
    }
    throw not_compilable("empty member path");
  }

  // --- set position --------------------------------------------------------

  SetSpec set_spec(const Expr& e, const EnvFrame* env) {  // NOLINT(misc-no-recursion)
    if (e.kind == Expr::Kind::kMember) {
      const TSql owner = scalar(*e.base, env);
      if (owner.type.kind != TypeKind::kClass) {
        throw not_compilable(
            support::cat("set base of '.", e.name, "' is not an object"));
      }
      const asl::ClassInfo& cls = model_->class_info(owner.type.id);
      const auto attr = cls.find_attr(e.name);
      if (!attr || cls.attrs[*attr].type.kind != TypeKind::kSet) {
        throw not_compilable(support::cat("'", e.name,
                                          "' is not a setof attribute of ",
                                          cls.name));
      }
      SetSpec sq;
      sq.env = env;
      sq.elem_class = cls.attrs[*attr].type.id;
      sq.base_table = junction_table(cls.name, e.name);
      sq.base_alias = "j";
      sq.from_joins.push_back(sq.base_table + " j");
      sq.from_joins.push_back(
          support::cat("JOIN ", model_->class_info(sq.elem_class).name,
                       " b ON b.id = j.member"));
      sq.conjuncts.push_back(support::cat("j.owner = ", owner.sql));
      return sq;
    }
    if (e.kind == Expr::Kind::kComprehension) {
      SetSpec sq = set_spec(*e.base, env);
      sq.binder = e.name;
      sq.env = env;
      if (e.filter) sq.conjuncts.push_back(over_binder(*e.filter, sq));
      return sq;
    }
    throw not_compilable(
        "set expression must be a setof attribute chain or a comprehension "
        "over one");
  }

  /// Filter or aggregate-value expression with the set's binder in scope.
  /// Subexpressions not touching the binder compile as uncorrelated scalars
  /// (nested subqueries, parameters, literals); subexpressions that do are
  /// limited to member chains and scalar glue — the engine's scalar
  /// subqueries cannot be correlated with an enclosing row.
  std::string over_binder(const Expr& e, SetSpec& sq) {  // NOLINT(misc-no-recursion)
    if (!sq.binder.empty() && !mentions_name(e, sq.binder)) {
      return scalar(e, sq.env).sql;
    }
    using Kind = Expr::Kind;
    switch (e.kind) {
      case Kind::kIdent:
        if (e.name == sq.binder) return "b.id";
        break;  // unreachable: non-binder idents hit the scalar path
      case Kind::kMember: {
        std::vector<const Expr*> chain;
        const Expr* root = &e;
        while (root->kind == Kind::kMember) {
          chain.push_back(root);
          root = root->base.get();
        }
        std::reverse(chain.begin(), chain.end());
        if (root->kind != Kind::kIdent || root->name != sq.binder) {
          throw not_compilable(
              "member path in a set filter must be rooted at the binder");
        }
        return follow_path(sq, "b", sq.elem_class, chain).first;
      }
      case Kind::kUnary: {
        const std::string operand = over_binder(*e.lhs, sq);
        if (e.un_op == asl::ast::UnOp::kNot) {
          return support::cat("(NOT ", operand, ")");
        }
        return support::cat("(-", operand, ")");
      }
      case Kind::kBinary: {
        using asl::ast::BinOp;
        if (e.bin_op == BinOp::kEq || e.bin_op == BinOp::kNe) {
          const bool lhs_null = e.lhs->kind == Kind::kNullLit;
          const bool rhs_null = e.rhs->kind == Kind::kNullLit;
          if (lhs_null || rhs_null) {
            const Expr& tested = lhs_null ? *e.rhs : *e.lhs;
            const std::string tested_sql =
                tested.kind == Kind::kNullLit ? "NULL"
                                              : over_binder(tested, sq);
            return support::cat("(", tested_sql,
                                e.bin_op == BinOp::kEq ? " IS NULL)"
                                                       : " IS NOT NULL)");
          }
        }
        const char* op = nullptr;
        switch (e.bin_op) {
          case BinOp::kAdd: op = "+"; break;
          case BinOp::kSub: op = "-"; break;
          case BinOp::kMul: op = "*"; break;
          case BinOp::kDiv: op = "/"; break;
          case BinOp::kEq: op = "="; break;
          case BinOp::kNe: op = "<>"; break;
          case BinOp::kLt: op = "<"; break;
          case BinOp::kLe: op = "<="; break;
          case BinOp::kGt: op = ">"; break;
          case BinOp::kGe: op = ">="; break;
          case BinOp::kAnd: op = "AND"; break;
          case BinOp::kOr: op = "OR"; break;
        }
        // Sequence the sides explicitly: both may emit parameters, and the
        // recording order must be deterministic.
        const std::string lhs_sql = over_binder(*e.lhs, sq);
        const std::string rhs_sql = over_binder(*e.rhs, sq);
        return support::cat("(", lhs_sql, " ", op, " ", rhs_sql, ")");
      }
      default:
        break;
    }
    throw not_compilable(support::cat(
        "expression correlated with binder '", sq.binder,
        "' is not compilable (aggregates/calls over the binder are not "
        "supported)"));
  }

  static constexpr int kMaxInlineDepth = 16;
  /// Engine cap on LEAST/GREATEST arguments; MIN/MAX coordinators fold at
  /// most this many shards.
  static constexpr std::size_t kMaxFoldArgs = db::sql::kMaxScalarFnArgs;

  const asl::Model* model_;
  const asl::PropertyInfo* prop_;
  std::span<const RtValue> args_;
  bool cse_;
  /// Layout metadata source (and rewrite telemetry sink) of the partition-
  /// union rewrite; null compiles layout-blind.
  db::Database* catalog_ = nullptr;
  bool count_rewrites_ = true;
  PlanBuild build_;
  std::deque<EnvFrame> frames_;
  int depth_ = 0;
  /// CSE bookkeeping: one marker per argument index, and every compiled
  /// scalar subquery text with its select-list length (map iteration keeps
  /// CTE naming deterministic).
  std::map<std::size_t, std::string> arg_markers_;
  std::map<std::string, std::size_t> subqueries_;
  /// One shard group per distinct FROM/WHERE shape: the `part<K>` CTE names
  /// and per-shard scan text, plus the (alias, fold fragment) output
  /// columns every aggregate operator over the shape registered.
  struct PartitionGroup {
    std::vector<std::string> names;
    std::vector<std::string> from_wheres;
    std::vector<std::pair<std::string, std::string>> columns;
  };
  std::map<std::string, PartitionGroup> partition_groups_;
  std::vector<const PartitionGroup*> group_order_;  // WITH-clause order
  std::size_t part_counter_ = 0;
  std::set<std::string> counted_rewrites_;  // telemetry dedup by coordinator
};

}  // namespace

SqlEvaluator::SqlEvaluator(const asl::Model& model, db::Connection& conn,
                           SqlEvalMode mode, PlanCache* plan_cache,
                           bool common_subexpr)
    : model_(&model), conn_(&conn), mode_(mode), cache_(plan_cache),
      cse_(common_subexpr), layout_(conn.layout_fingerprint()) {
  for (const asl::ClassInfo& cls : model.classes()) {
    if (cls.base) {
      throw EvalError(
          "the SQL strategy requires an inheritance-free data model "
          "(concrete class tables)");
    }
  }
  if (cache_ != nullptr && &cache_->model() != &model) {
    throw EvalError(
        "plan cache was compiled against a different model instance; plans "
        "hold pointers into that model's AST, so a cache is only valid for "
        "the exact Model object it was built from (reloading the same spec "
        "produces an equal fingerprint but a different AST)");
  }
}

db::PreparedStatement& SqlEvaluator::statement_for(
    const std::shared_ptr<const CompiledPlan>& plan) {
  return entry_for(plan).stmt;
}

SqlEvaluator::StatementEntry& SqlEvaluator::entry_for(
    const std::shared_ptr<const CompiledPlan>& plan) {
  auto it = statements_.find(plan.get());
  if (it == statements_.end()) {
    if (cache_ != nullptr && cache_->capacity() != 0) {
      // A capped cache recompiles evicted sites into NEW plan instances;
      // without pruning, this map would pin every generation forever and
      // grow with each eviction — the opposite of what the cap promises.
      // An entry whose plan is held only here belongs to an evicted
      // generation nobody can request again (find() returns the resident
      // instance), so it is safe to drop.
      for (auto dead = statements_.begin(); dead != statements_.end();) {
        if (dead->second.plan.use_count() == 1) {
          dead = statements_.erase(dead);
        } else {
          ++dead;
        }
      }
    }
    db::PreparedStatement stmt = conn_->database().prepare(plan->sql);
    it = statements_
             .emplace(plan.get(), StatementEntry{plan, std::move(stmt), {}})
             .first;
  }
  return it->second;
}

void SqlEvaluator::ensure_shard_analysis(db::PreparedStatement& stmt,
                                         ShardCteAnalysis& analysis) {
  if (analysis.done && analysis.layout == layout_) return;
  analysis = {};
  analysis.done = true;
  analysis.layout = layout_;
  auto* select = std::get_if<db::sql::SelectStmt>(&stmt.ast());
  if (select == nullptr) return;
  db::Database& db = conn_->database();

  // Whole-statement memo refs: every SELECT in the statement (outer + CTE
  // bodies, recursively) and every CTE name — a ref that matches a CTE is
  // derived data whose inputs are covered by walking that CTE's own body.
  std::vector<const db::sql::SelectStmt*> selects{select};
  std::vector<const std::string*> cte_names;
  for (std::size_t i = 0; i < selects.size(); ++i) {
    for (const db::sql::CommonTableExpr& cte : selects[i]->ctes) {
      cte_names.push_back(&cte.name);
      selects.push_back(cte.select.get());
    }
  }
  const auto is_cte_name = [&](const std::string& table) {
    for (const std::string* name : cte_names) {
      if (support::iequals(*name, table)) return true;
    }
    return false;
  };
  bool memoable = true;
  std::vector<const db::Table*> memo_refs;
  for (const db::sql::SelectStmt* s : selects) {
    db::sql::for_each_table_ref(*s, [&](const db::sql::TableRef& ref) {
      if (!memoable || is_cte_name(ref.table)) return;
      const db::Table* table = db.find_table(ref.table);
      if (table == nullptr) {
        memoable = false;  // a ref we can't pin to data: never memoize
        return;
      }
      memo_refs.push_back(table);
    });
  }
  if (memoable) analysis.memo_refs = std::move(memo_refs);

  // Cacheable CTEs: same structural rule as the distributed coordinator's
  // shard planner — no nested CTEs, catalog tables only, at least one
  // partition-pinned scan, and the body renders back to SQL text.
  for (db::sql::CommonTableExpr& cte : select->ctes) {
    db::sql::SelectStmt& body = *cte.select;
    if (!body.ctes.empty()) continue;
    bool catalog_only = true;
    std::optional<std::size_t> pinned;
    std::vector<ShardCteAnalysis::Ref> refs;
    db::sql::for_each_table_ref(body, [&](const db::sql::TableRef& ref) {
      if (is_cte_name(ref.table)) {
        catalog_only = false;  // sibling-CTE input: not a pure catalog read
        return;
      }
      const db::Table* table = db.find_table(ref.table);
      if (table == nullptr) {
        catalog_only = false;
        return;
      }
      if (ref.partition) {
        if (!pinned) pinned = ref.partition;
        refs.push_back({table, ref.partition});
      } else {
        refs.push_back({table, std::nullopt});
      }
    });
    if (!catalog_only || !pinned) continue;
    ShardCteAnalysis::Cte entry;
    std::string text;
    if (!db::render_select_sql(body, text, entry.order)) continue;
    // Fingerprint stem = database identity + layout + body text, fixed for
    // the analysis lifetime (both invalidate it). The identity term scopes
    // entries to one store; the layout term retires entries cleanly across
    // DDL re-partitioning. Per pass only the bound-value tail is appended.
    entry.stem = support::cat(reinterpret_cast<std::uintptr_t>(&db), "|",
                              layout_, "|", text);
    entry.body = &body;
    entry.name = &cte.name;
    entry.pinned = *pinned;
    entry.refs = std::move(refs);
    analysis.ctes.push_back(std::move(entry));
  }
}

bool SqlEvaluator::statement_memo_token(db::PreparedStatement& stmt,
                                        ShardCteAnalysis& analysis,
                                        std::string_view sql_text,
                                        const std::vector<db::Value>& values,
                                        std::string& fp,
                                        std::uint64_t& version) {
  ensure_shard_analysis(stmt, analysis);
  if (!analysis.memo_refs) return false;
  std::uint64_t token = 0;
  for (const db::Table* table : *analysis.memo_refs) {
    token += table->table_version();
  }
  if (analysis.memo_stem.empty()) {
    analysis.memo_stem =
        support::cat(reinterpret_cast<std::uintptr_t>(&conn_->database()), "|",
                     layout_, "|", sql_text);
  }
  fp = analysis.memo_stem;
  for (const db::Value& value : values) {
    fp += '|';
    fp += value.to_display();
  }
  version = token;
  return true;
}

std::optional<db::QueryResult> SqlEvaluator::try_execute_with_shard_cache(
    db::PreparedStatement& stmt, ShardCteAnalysis& analysis,
    const std::vector<db::Value>& values) {
  auto* select = std::get_if<db::sql::SelectStmt>(&stmt.ast());
  if (select == nullptr || select->ctes.empty()) return std::nullopt;
  db::Database& db = conn_->database();

  // The structural work — which CTEs are cacheable, their rendered text and
  // version references — is done once per statement (ensure_shard_analysis)
  // and reused every pass; only version tokens and the bound-value tail of
  // the fingerprint are per-pass.
  ensure_shard_analysis(stmt, analysis);
  if (analysis.ctes.empty()) return std::nullopt;

  struct Resolved {
    std::string_view name;
    std::shared_ptr<const db::QueryResult> rows;
  };
  std::vector<Resolved> resolved;
  resolved.reserve(analysis.ctes.size());
  std::uint64_t hits = 0;
  // Bound values render once per statement, not once per CTE — every CTE of
  // the statement binds from the same value vector (value formatting is the
  // expensive part of fingerprint assembly).
  std::vector<std::string> rendered(values.size());
  std::vector<bool> rendered_done(values.size(), false);
  std::string fp;
  for (const ShardCteAnalysis::Cte& cte : analysis.ctes) {
    // Version token of the data the body reads: the pinned partition's
    // version for `PARTITION (k)` scans, the whole-table version for every
    // other referenced table (a join side like Probe has no pinned
    // partition, so ANY change to it must invalidate the entry). Versions
    // are monotonic, so the sum moves whenever any component does.
    std::uint64_t version = 0;
    for (const ShardCteAnalysis::Ref& ref : cte.refs) {
      version += ref.partition ? ref.table->partition_version(*ref.partition)
                               : ref.table->table_version();
    }
    // Fingerprint = precomputed stem (database identity, layout, body text)
    // + bound values in text order.
    fp.assign(cte.stem);
    bool params_ok = true;
    for (const std::size_t index : cte.order) {
      if (index >= values.size()) {
        params_ok = false;
        break;
      }
      if (!rendered_done[index]) {
        rendered[index] = values[index].to_display();
        rendered_done[index] = true;
      }
      fp += '|';
      fp += rendered[index];
    }
    if (!params_ok) continue;
    ShardResultCache::Probe probe = shard_cache_->probe(fp, cte.pinned, version);
    std::shared_ptr<const db::QueryResult> rows = std::move(probe.rows);
    if (rows != nullptr) {
      ++hits;
    } else {
      db.count_shard_cache_miss();
      if (probe.stale) db.count_dirty_partition_recomputed();
      rows = shard_cache_->store(fp, cte.pinned, version,
                                 db.execute_select_with(*cte.body, values, {}));
    }
    resolved.push_back({*cte.name, std::move(rows)});
  }
  if (resolved.empty()) return std::nullopt;
  if (hits > 0) db.count_shard_cache_hits(hits);

  // The residual merge executes with the resolved rows injected — one
  // charged statement, byte-identical to materializing the CTEs inline.
  std::vector<db::Database::InjectedCte> injected;
  injected.reserve(resolved.size());
  for (const Resolved& r : resolved) injected.push_back({r.name, r.rows.get()});
  return conn_->execute_with_ctes(*select, values, injected);
}

PropertyResult SqlEvaluator::evaluate_property(const asl::PropertyInfo& prop,
                                               std::vector<RtValue> args) {
  if (args.size() != prop.params.size()) {
    throw EvalError(support::cat("property ", prop.name, " expects ",
                                 prop.params.size(), " arguments, got ",
                                 args.size()));
  }
  // Re-read the layout per evaluation: compilation reads the LIVE catalog,
  // so the cache key must describe the same moment — a DDL re-partition
  // between evaluations must not label a partition-aware plan with the
  // construction-time fingerprint (and thereby replay it against a
  // different layout from another evaluator).
  layout_ = conn_->layout_fingerprint();
  if (mode_ == SqlEvalMode::kWholeCondition) {
    try {
      return evaluate_whole(prop, args);
    } catch (const EvalError&) {
      // The property does not compile into one statement, or the statement
      // failed structurally (e.g. a UNIQUE set with several members aborts
      // the scalar subquery). Re-evaluate site by site: that path is pinned
      // against the interpreter differentially, so results stay identical —
      // only the statement count grows for this context.
      ++whole_fallbacks_;
    }
  }
  return evaluate_sitewise(prop, std::move(args));
}

std::shared_ptr<const CompiledPlan> SqlEvaluator::whole_plan_for(
    const asl::PropertyInfo& prop) {
  const int kind =
      cse_ ? kWholeConditionCsePlanKind : kWholeConditionPlainPlanKind;
  return cache_ == nullptr ? nullptr
                           : cache_->find(prop.name, &prop, kind, layout_);
}

PropertyResult SqlEvaluator::evaluate_whole(const asl::PropertyInfo& prop,
                                            const std::vector<RtValue>& args) {
  // Plan lookup: shared through the cache when present, else compiled fresh
  // for this evaluation (still one statement — only the translation work
  // repeats, as the 1999 toolchain's would have).
  std::shared_ptr<const CompiledPlan> plan = whole_plan_for(prop);
  std::vector<db::Value> values;
  if (plan != nullptr) {
    ++plan_hits_;
    cache_->record(true);
  } else {
    // The catalog makes the compiler layout-aware (partition-union
    // rewrite); the plain ablation compiles layout-blind on purpose.
    WholeConditionCompiler compiler(*model_, prop, args, cse_,
                                    cse_ ? &conn_->database() : nullptr);
    auto compiled = std::make_shared<CompiledPlan>(compiler.compile(values));
    if (cache_ != nullptr) {
      plan = cache_->insert(prop.name, &prop,
                            cse_ ? kWholeConditionCsePlanKind
                                 : kWholeConditionPlainPlanKind,
                            layout_, std::move(compiled));
      ++plan_misses_;
      cache_->record(false);
    } else {
      plan = std::move(compiled);
    }
  }

  // Bind: whole-condition parameters are all caller-provided property
  // arguments, so binding is a straight table lookup per context.
  values.clear();
  values.reserve(plan->params.size());
  for (const CompiledPlan::Param& param : plan->params) {
    if (param.slot != CompiledPlan::Slot::kProvided) {
      throw EvalError("whole-condition plan has a non-provided parameter");
    }
    values.push_back(to_db_value(args[param.provided_index],
                                 prop.params[param.provided_index].second));
  }

  ++queries_;
  // With a coordinator attached, the statement's `part<K>` CTEs scatter to
  // its workers and the merge runs locally over the gathered rows; without
  // one (or when nothing is distributable) execution is the plain session
  // path. Either way the result is byte-identical.
  const db::QueryResult result = [&] {
    if (coordinator_ != nullptr) {
      return cache_ != nullptr
                 ? coordinator_->execute(statement_for(plan), values)
                 : coordinator_->execute(plan->sql, values);
    }
    // Incremental path: with a shard cache attached, the statement-level
    // memo is consulted first — when every table the statement reads is at
    // the version it last ran against, the stored result is returned and
    // the statement never executes. Otherwise partition-pinned CTEs resolve
    // through the cache (only dirty partitions recompute) and the merged
    // result refreshes the memo. Falls through to the plain path when the
    // statement has nothing cacheable.
    if (shard_cache_ != nullptr) {
      std::optional<db::PreparedStatement> local;
      ShardCteAnalysis local_analysis;
      StatementEntry* entry = cache_ != nullptr ? &entry_for(plan) : nullptr;
      db::PreparedStatement& stmt =
          entry != nullptr
              ? entry->stmt
              : local.emplace(conn_->database().prepare(plan->sql));
      ShardCteAnalysis& analysis =
          entry != nullptr ? entry->shard : local_analysis;
      std::string memo_fp;
      std::uint64_t memo_version = 0;
      const bool memoable = statement_memo_token(stmt, analysis, plan->sql,
                                                 values, memo_fp, memo_version);
      if (memoable) {
        if (std::shared_ptr<const db::QueryResult> rows =
                shard_cache_->probe_statement(memo_fp, memo_version)) {
          conn_->database().count_statement_memoized();
          return db::QueryResult(*rows);
        }
      }
      std::optional<db::QueryResult> cached =
          try_execute_with_shard_cache(stmt, analysis, values);
      db::QueryResult merged =
          cached ? std::move(*cached) : conn_->execute(stmt, values);
      if (memoable) {
        shard_cache_->store_statement(memo_fp, memo_version,
                                      db::QueryResult(merged));
      }
      return merged;
    }
    return cache_ != nullptr ? conn_->execute(statement_for(plan), values)
                             : conn_->execute(plan->sql, values);
  }();

  // Glue: map the one result row back onto the property contract. Column
  // layout is [LET probes | conditions | confidence arms | severity arms],
  // with the probe count carried in the plan (only LETs whose null could
  // never be a legal value are probed).
  if (result.row_count() != 1) {
    throw EvalError("whole-condition statement must yield exactly one row");
  }
  const db::Row& row = result.rows.front();
  const std::size_t lets = plan->elem_class;
  const std::size_t conds = prop.conditions.size();
  const std::size_t confs = prop.confidence.size();
  if (row.size() != lets + conds + confs + prop.severity.size()) {
    throw EvalError("whole-condition column layout mismatch");
  }

  const auto not_applicable = [](std::string note) {
    PropertyResult na;
    na.status = PropertyResult::Status::kNotApplicable;
    na.note = std::move(note);
    return na;
  };

  // A NULL LET probe is a data gap: the interpreter's eager LET evaluation
  // would have thrown before looking at any condition.
  for (std::size_t i = 0; i < lets; ++i) {
    if (row[i].is_null()) {
      return not_applicable(
          "whole-condition: a LET binding hit a data gap");
    }
  }

  PropertyResult out;
  std::vector<std::pair<const std::string*, bool>> truth;
  truth.reserve(conds);
  bool holds = false;
  for (std::size_t i = 0; i < conds; ++i) {
    const db::Value& value = row[lets + i];
    if (value.is_null()) {
      return not_applicable(support::cat(
          "whole-condition: condition ",
          prop.conditions[i].id.empty() ? support::cat("#", i + 1)
                                        : prop.conditions[i].id,
          " hit a data gap"));
    }
    const bool held_now = value.as_bool();
    truth.emplace_back(&prop.conditions[i].id, held_now);
    if (held_now && !holds) {
      holds = true;
      out.matched_condition = prop.conditions[i].id.empty()
                                  ? support::cat("#", i + 1)
                                  : prop.conditions[i].id;
    }
  }
  if (!holds) {
    out.status = PropertyResult::Status::kDoesNotHold;
    return out;
  }
  out.status = PropertyResult::Status::kHolds;

  const auto held = [&](const std::string& guard) {
    for (const auto& [id, value] : truth) {
      if (*id == guard) return value;
    }
    return false;
  };
  // Max over the arms whose guard held (or that are unguarded); a NULL in a
  // *considered* arm is a data gap, NULLs in skipped arms never matter —
  // exactly the arms the interpreter would (not) have evaluated.
  const auto eval_arms =
      [&](const std::vector<asl::GuardedInfo>& arms,
          std::size_t offset) -> std::optional<double> {
    double best = -std::numeric_limits<double>::infinity();
    bool any = false;
    for (std::size_t i = 0; i < arms.size(); ++i) {
      if (!arms[i].guard.empty() && !held(arms[i].guard)) continue;
      const db::Value& value = row[offset + i];
      if (value.is_null()) return std::nullopt;
      best = std::max(best, value.as_double());
      any = true;
    }
    return any ? best : 0.0;
  };
  const auto confidence = eval_arms(prop.confidence, lets + conds);
  if (!confidence) {
    return not_applicable(
        "whole-condition: a confidence arm hit a data gap");
  }
  const auto severity = eval_arms(prop.severity, lets + conds + confs);
  if (!severity) {
    return not_applicable("whole-condition: a severity arm hit a data gap");
  }
  out.confidence = std::clamp(*confidence, 0.0, 1.0);
  out.severity = *severity;
  return out;
}

std::string SqlEvaluator::explain_whole_condition(
    const asl::PropertyInfo& prop) {
  // The statement text is context-free; compile against placeholder
  // argument values of the declared parameter types.
  std::vector<RtValue> args;
  args.reserve(prop.params.size());
  for (const auto& [name, type] : prop.params) {
    switch (type.kind) {
      case TypeKind::kInt:
      case TypeKind::kDateTime:
        args.push_back(RtValue::of_int(0));
        break;
      case TypeKind::kFloat:
        args.push_back(RtValue::of_float(0.0));
        break;
      case TypeKind::kBool:
        args.push_back(RtValue::of_bool(false));
        break;
      case TypeKind::kString:
        args.push_back(RtValue::of_string(""));
        break;
      case TypeKind::kEnum:
        args.push_back(RtValue::of_enum(type.id, 0));
        break;
      default:
        args.push_back(RtValue::of_object(asl::kNullObject));
        break;
    }
  }
  // Diagnostic-only compilation: layout-aware (the shown SQL must match
  // what evaluation would run) but without rewrite telemetry.
  WholeConditionCompiler compiler(*model_, prop, args, cse_,
                                  cse_ ? &conn_->database() : nullptr,
                                  /*count_rewrites=*/false);
  std::vector<db::Value> values;
  std::string sql = compiler.compile(values).sql;
  // Fused-eligibility notes per statement (and per WITH entry): which parts
  // of the compiled SQL the columnar fused evaluator — including the
  // expression VM's compiled WHERE/aggregate programs — would take, and why
  // the rest stays on the row path. Analysis only; parameter markers are
  // assumed NULL.
  for (const auto& note : conn_->database().explain_fused(sql)) {
    sql += support::cat("\n-- fused: ", note.statement, ": ", note.verdict);
  }
  return sql;
}

PropertyResult SqlEvaluator::evaluate_sitewise(const asl::PropertyInfo& prop,
                                               std::vector<RtValue> args) {
  PropertyResult result;
  SqlExprEval eval(*this, &prop);
  for (std::size_t i = 0; i < args.size(); ++i) {
    eval.push(prop.params[i].first, {std::move(args[i]), prop.params[i].second});
  }

  try {
    for (const asl::LetInfo& let : prop.lets) {
      TV value = eval.eval(*let.init);
      value.t = let.type;
      eval.push(let.name, std::move(value));
    }

    std::vector<std::pair<std::string, bool>> truth;
    bool holds = false;
    for (std::size_t i = 0; i < prop.conditions.size(); ++i) {
      const asl::ConditionInfo& cond = prop.conditions[i];
      const bool value = eval.eval(*cond.pred).v.as_bool();
      truth.emplace_back(cond.id, value);
      if (value && !holds) {
        holds = true;
        result.matched_condition =
            cond.id.empty() ? support::cat("#", i + 1) : cond.id;
      }
    }
    if (!holds) {
      result.status = PropertyResult::Status::kDoesNotHold;
      return result;
    }
    result.status = PropertyResult::Status::kHolds;

    const auto held = [&](const std::string& guard) {
      for (const auto& [id, value] : truth) {
        if (id == guard) return value;
      }
      return false;
    };
    const auto eval_arms = [&](const std::vector<asl::GuardedInfo>& arms) {
      double best = -std::numeric_limits<double>::infinity();
      bool any = false;
      for (const asl::GuardedInfo& arm : arms) {
        if (!arm.guard.empty() && !held(arm.guard)) continue;
        best = std::max(best, eval.eval(*arm.expr).v.as_float());
        any = true;
      }
      return any ? best : 0.0;
    };

    result.confidence = std::clamp(eval_arms(prop.confidence), 0.0, 1.0);
    result.severity = eval_arms(prop.severity);
  } catch (const EvalError& error) {
    result = PropertyResult{};
    result.status = PropertyResult::Status::kNotApplicable;
    result.note = error.what();
  }
  return result;
}

std::string SqlEvaluator::explain_set(const Expr& set_expr,
                                      const asl::PropertyInfo& prop,
                                      const std::vector<RtValue>& args) {
  SqlExprEval eval(*this);  // no property context: plans stay untouched
  for (std::size_t i = 0; i < args.size() && i < prop.params.size(); ++i) {
    eval.push(prop.params[i].first, {args[i], prop.params[i].second});
  }
  SqlExprEval::SetQuery sq = eval.compile_set(set_expr);
  return support::cat("SELECT b.id", sq.from_where());
}

}  // namespace kojak::cosy
