#include "cosy/analyzer.hpp"

#include <algorithm>

#include "cosy/eval_backend.hpp"
#include "support/error.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace kojak::cosy {

using asl::PropertyResult;
using asl::RtValue;
using support::EvalError;

std::string_view to_string(EvalStrategy strategy) {
  switch (strategy) {
    case EvalStrategy::kInterpreter: return "interpreter";
    case EvalStrategy::kSqlPushdown: return "sql-pushdown";
    case EvalStrategy::kClientFetch: return "client-fetch";
    case EvalStrategy::kBulkFetch: return "bulk-fetch";
    case EvalStrategy::kShardedInterpreter: return "interpreter-sharded";
    case EvalStrategy::kSqlWholeCondition: return "sql-whole-condition";
  }
  return "?";
}

std::string AnalyzerConfig::backend_name() const {
  if (!backend.empty()) return backend;
  if (strategy == EvalStrategy::kInterpreter && parallel) {
    return "interpreter-sharded";
  }
  return std::string(to_string(strategy));
}

std::vector<const Finding*> AnalysisReport::problems() const {
  std::vector<const Finding*> out;
  out.reserve(findings.size());
  for (const Finding& finding : findings) {
    if (finding.result.severity > problem_threshold) out.push_back(&finding);
  }
  return out;
}

std::string AnalysisReport::to_table(std::size_t top_n) const {
  if (top_n == 0) top_n = findings.size();  // 0 caps nothing, not everything
  support::TablePrinter table;
  table.add_column("#", support::TablePrinter::Align::kRight)
      .add_column("property")
      .add_column("context")
      .add_column("cond")
      .add_column("conf", support::TablePrinter::Align::kRight)
      .add_column("severity", support::TablePrinter::Align::kRight)
      .add_column("problem");
  for (std::size_t i = 0; i < findings.size() && i < top_n; ++i) {
    const Finding& f = findings[i];
    table.add_row({std::to_string(i + 1), f.property, f.context,
                   f.result.matched_condition,
                   support::format_double(f.result.confidence, 3),
                   support::format_double(f.result.severity, 4),
                   f.result.severity > problem_threshold ? "YES" : "no"});
  }
  std::string out = support::cat("Analysis of ", program, " on ", pe_count,
                                 " PEs (threshold ",
                                 support::format_double(problem_threshold, 3),
                                 ")\n");
  out += table.render();
  if (const Finding* top = bottleneck()) {
    out += support::cat("bottleneck: ", top->property, " @ ", top->context,
                        tuned() ? "  [not a problem -> no further tuning needed]\n"
                                : "  [performance problem]\n");
  } else {
    out += "bottleneck: none (no property holds)\n";
  }
  return out;
}

std::vector<PropertyContext> enumerate_property_contexts(
    const asl::Model& model, const StoreHandles& handles,
    const asl::PropertyInfo& prop, asl::ObjectId run, asl::ObjectId basis) {
  std::vector<PropertyContext> contexts;
  if (prop.params.empty()) return contexts;

  const auto region_class = model.find_class("Region");
  const auto call_class = model.find_class("FunctionCall");
  const auto run_class = model.find_class("TestRun");

  const asl::Type& first = prop.params[0].second;
  struct Iter {
    asl::ObjectId object;
    const std::string* label;
  };
  std::vector<Iter> iters;
  if (region_class && first == asl::Type::class_of(*region_class)) {
    for (const auto& [name, id] : handles.regions) {
      iters.push_back({id, &name});
    }
  } else if (call_class && first == asl::Type::class_of(*call_class)) {
    for (std::size_t i = 0; i < handles.call_sites.size(); ++i) {
      iters.push_back({handles.call_sites[i], &handles.call_site_labels[i]});
    }
  } else {
    throw EvalError(support::cat(
        "property ", prop.name,
        " must take a Region or FunctionCall as its first parameter"));
  }

  for (const Iter& iter : iters) {
    PropertyContext ctx;
    ctx.property = &prop;
    ctx.label = *iter.label;
    ctx.args.push_back(RtValue::of_object(iter.object));
    bool ok = true;
    for (std::size_t p = 1; p < prop.params.size(); ++p) {
      const asl::Type& type = prop.params[p].second;
      if (run_class && type == asl::Type::class_of(*run_class)) {
        ctx.args.push_back(RtValue::of_object(run));
      } else if (region_class && type == asl::Type::class_of(*region_class)) {
        ctx.args.push_back(RtValue::of_object(basis));
      } else {
        ok = false;
        break;
      }
    }
    if (!ok) {
      throw EvalError(support::cat("property ", prop.name,
                                   " has a parameter the analyzer cannot bind"));
    }
    contexts.push_back(std::move(ctx));
  }
  return contexts;
}

namespace {

/// Properties selected by the config: all of the model's, or the named
/// suite (validated — a typo in a suite must not silently analyze nothing).
std::vector<const asl::PropertyInfo*> select_properties(
    const asl::Model& model, const AnalyzerConfig& config) {
  std::vector<const asl::PropertyInfo*> selected;
  if (config.properties.empty()) {
    for (const asl::PropertyInfo& prop : model.properties()) {
      selected.push_back(&prop);
    }
    return selected;
  }
  for (const std::string& name : config.properties) {
    const asl::PropertyInfo* prop = model.find_property(name);
    if (prop == nullptr) {
      throw EvalError(support::cat("unknown property '", name,
                                   "' in the configured suite"));
    }
    selected.push_back(prop);
  }
  return selected;
}

}  // namespace

Analyzer::Analyzer(const asl::Model& model, const asl::ObjectStore& store,
                   const StoreHandles& handles, db::Connection* conn,
                   db::ConnectionPool* pool)
    : model_(&model), store_(&store), handles_(&handles), conn_(conn),
      pool_(pool) {}

std::size_t Analyzer::context_count() const {
  std::size_t total = 0;
  for (const asl::PropertyInfo& prop : model_->properties()) {
    const auto region_class = model_->find_class("Region");
    if (region_class &&
        prop.params.front().second == asl::Type::class_of(*region_class)) {
      total += handles_->regions.size();
    } else {
      total += handles_->call_sites.size();
    }
  }
  return total;
}

AnalysisReport Analyzer::analyze(std::size_t run_index,
                                 const AnalyzerConfig& config) {
  if (run_index >= handles_->runs.size()) {
    throw EvalError(support::cat("run index ", run_index, " out of range (",
                                 handles_->runs.size(), " runs)"));
  }
  const asl::ObjectId run = handles_->runs[run_index];

  const std::string basis_name =
      config.basis_region.empty() ? handles_->main_region : config.basis_region;
  const auto basis_it = handles_->regions.find(basis_name);
  if (basis_it == handles_->regions.end()) {
    throw EvalError(support::cat("unknown basis region '", basis_name, "'"));
  }
  const asl::ObjectId basis = basis_it->second;

  AnalysisReport report;
  report.problem_threshold = config.problem_threshold;
  if (handles_->program != asl::kNullObject) {
    report.program = store_->attr(handles_->program, "Name").as_string();
  }
  report.pe_count = static_cast<int>(store_->attr(run, "NoPe").as_int());

  std::vector<PropertyContext> contexts;
  for (const asl::PropertyInfo* prop : select_properties(*model_, config)) {
    auto per_property =
        enumerate_property_contexts(*model_, *handles_, *prop, run, basis);
    for (auto& ctx : per_property) contexts.push_back(std::move(ctx));
  }

  std::vector<PropertyResult> results(contexts.size());

  // The evaluation path is a named backend driven through the uniform
  // prepare/evaluate/stats contract; the analyzer no longer branches on how
  // a backend does its work.
  EvalBackendDeps deps;
  deps.model = model_;
  deps.store = store_;
  deps.conn = conn_;
  deps.pool = pool_;
  deps.plan_cache = config.plan_cache;
  deps.threads = config.threads;
  deps.shard_cache = config.shard_cache;
  const std::unique_ptr<EvalBackend> backend =
      EvalBackend::create(config.backend_name(), deps);
  backend->prepare(*model_, run);

  std::vector<EvalRequest> requests;
  requests.reserve(contexts.size());
  for (const PropertyContext& ctx : contexts) {
    requests.push_back({ctx.property, &ctx.args});
  }
  backend->evaluate_all(requests, results);

  const EvalStats stats = backend->stats();
  report.sql_queries = stats.sql_queries;
  report.plan_cache_hits = stats.plan_cache_hits;
  report.plan_cache_misses = stats.plan_cache_misses;

  for (std::size_t i = 0; i < contexts.size(); ++i) {
    Finding finding{contexts[i].property->name, contexts[i].label,
                    std::move(results[i])};
    if (finding.result.status == PropertyResult::Status::kHolds) {
      report.findings.push_back(std::move(finding));
    } else if (finding.result.status == PropertyResult::Status::kNotApplicable) {
      report.not_applicable.push_back(std::move(finding));
    }
  }
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.result.severity > b.result.severity;
                   });
  return report;
}

}  // namespace kojak::cosy
