#ifndef KOJAK_COSY_SPECS_HPP
#define KOJAK_COSY_SPECS_HPP

#include <string>

#include "asl/model.hpp"

namespace kojak::cosy {

/// Raw text of the shipped specification documents (loaded from the spec/
/// directory configured at build time; cached per process).
[[nodiscard]] const std::string& cosy_model_source();
[[nodiscard]] const std::string& cosy_properties_source();
[[nodiscard]] const std::string& extended_properties_source();

/// Parses and analyzes the COSY specification. `extended` adds the
/// extended property suite on top of the paper's five properties.
[[nodiscard]] asl::Model load_cosy_model(bool extended = true);

}  // namespace kojak::cosy

#endif  // KOJAK_COSY_SPECS_HPP
