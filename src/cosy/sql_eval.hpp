#ifndef KOJAK_COSY_SQL_EVAL_HPP
#define KOJAK_COSY_SQL_EVAL_HPP

#include <string>
#include <vector>

#include "asl/interp.hpp"
#include "asl/model.hpp"
#include "db/connection.hpp"

namespace kojak::cosy {

/// How database-backed property evaluation distributes work (§5):
///  * kPushdown   — set operations compile to SQL; the database filters and
///                  aggregates, the client sees a handful of scalars;
///  * kClientSide — the paper's slow path: the client fetches every data
///                  component (junction ids, then each attribute record by
///                  record) and evaluates all filters and aggregates itself.
enum class SqlEvalMode { kPushdown, kClientSide };

/// Database-backed evaluator of ASL properties. In kPushdown mode this is
/// the paper's §5 claim made executable — "translate the conditions of
/// performance properties entirely into SQL queries instead of first
/// accessing the data components and evaluating the expressions in the
/// analysis tool" — and its automation is the §6 future-work item. In
/// kClientSide mode it is exactly that slow alternative, kept as the
/// measured baseline of experiment T3.
///
/// Restrictions (checked, explained in the thrown EvalError):
///  * the data model must be inheritance-free (concrete tables per class),
///  * set expressions must be syntactic member chains or comprehensions,
///  * aggregates correlated with an enclosing binder are not supported in
///    kPushdown mode.
/// The COSY model and property suites satisfy all three; anything outside
/// falls back to the interpreter at the analyzer level.
class SqlEvaluator {
 public:
  SqlEvaluator(const asl::Model& model, db::Connection& conn,
               SqlEvalMode mode = SqlEvalMode::kPushdown);

  /// Evaluates a property for a context; arguments are RtValues whose
  /// object references are database ids. Mirrors
  /// asl::Interpreter::evaluate_property (differential tests pin them
  /// together).
  [[nodiscard]] asl::PropertyResult evaluate_property(
      const asl::PropertyInfo& prop, std::vector<asl::RtValue> args);

  /// Number of SQL statements issued so far (bench bookkeeping).
  [[nodiscard]] std::uint64_t queries_issued() const noexcept {
    return queries_;
  }

  /// Compiles the given set expression to its SQL text without executing it
  /// (exposed for tests and the --explain flows of the examples).
  [[nodiscard]] std::string explain_set(const asl::ast::Expr& set_expr,
                                        const asl::PropertyInfo& prop,
                                        const std::vector<asl::RtValue>& args);

 private:
  friend class SqlExprEval;
  const asl::Model* model_;
  db::Connection* conn_;
  SqlEvalMode mode_;
  std::uint64_t queries_ = 0;
};

}  // namespace kojak::cosy

#endif  // KOJAK_COSY_SQL_EVAL_HPP
