#ifndef KOJAK_COSY_SQL_EVAL_HPP
#define KOJAK_COSY_SQL_EVAL_HPP

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "asl/interp.hpp"
#include "asl/model.hpp"
#include "db/connection.hpp"

namespace kojak::db {
class Coordinator;
}

namespace kojak::cosy {

class ShardResultCache;

/// How database-backed property evaluation distributes work (§5):
///  * kPushdown       — set operations compile to SQL; the database filters
///                      and aggregates, the client sees a handful of scalars;
///  * kClientSide     — the paper's slow path: the client fetches every data
///                      component (junction ids, then each attribute record
///                      by record) and evaluates all filters and aggregates
///                      itself;
///  * kWholeCondition — the paper's §6 future work: the *entire* property
///                      surface (LETs, every condition, every confidence and
///                      severity arm) compiles into one parameterized
///                      FROM-less SELECT of scalar subqueries, cutting the
///                      per-context round trips to a single statement.
/// Prefer naming an evaluation path through the EvalBackend registry
/// (eval_backend.hpp); this enum is the evaluator-internal selector.
enum class SqlEvalMode { kPushdown, kClientSide, kWholeCondition };

[[nodiscard]] std::string_view to_string(SqlEvalMode mode);

/// One ASL set-expression site translated to a reusable SELECT: the SQL
/// text with `?` placeholders in statement-text order, plus the binding
/// recipe for each placeholder. Context-dependent scalars (property
/// arguments, LET values, uncorrelated nested aggregates) become bound
/// parameters instead of inline literals, so the translation — and the SQL
/// parse — happen once per property instead of once per (run, context).
struct CompiledPlan {
  enum class Slot : std::uint8_t {
    kValue,     ///< re-evaluate `expr`, bind its value to a `?`
    kObjectId,  ///< like kValue but an object reference; null throws
    kProvided,  ///< caller-supplied value (already computed), bound to a `?`
    kAssertNull,  ///< no placeholder: compiled into an IS [NOT] NULL / NULL
                  ///< form; `expr` must still be null at bind time
  };
  struct Param {
    const asl::ast::Expr* expr = nullptr;  ///< null for kProvided
    Slot slot = Slot::kValue;
    std::size_t provided_index = 0;  ///< kProvided: index into caller values
    std::string null_error;          ///< kObjectId: message when null
  };
  std::string sql;
  std::vector<Param> params;  ///< placeholder params first, in text order
  /// Element class of set-returning plans (drives result typing on hits).
  std::uint32_t elem_class = 0;
};

/// Thread-safe cache of compiled plans, keyed on (property, site) within
/// one model. Share one instance across the evaluators of a batch (they run
/// concurrently on pooled connections); the per-property translation then
/// happens once for the whole batch. Plans hold pointers into the model's
/// AST, so the cache is pinned to the Model *instance* it was built from
/// and must not outlive it: attaching an evaluator over any other Model
/// object is rejected — even one reloaded from the same documents, whose
/// content fingerprint would match but whose AST lives elsewhere.
class PlanCache {
 public:
  /// `max_plans` caps the resident compiled plans (0 = unbounded). When the
  /// cap is hit, the least-recently-used plan is evicted; long batch
  /// campaigns over many properties therefore hold at most `max_plans`
  /// translations while evaluators already running on an evicted plan keep
  /// it alive through their shared_ptr.
  explicit PlanCache(const asl::Model& model, std::size_t max_plans = 0);

  [[nodiscard]] const asl::Model& model() const noexcept { return *model_; }
  /// Content hash of the model the plans were compiled against (telemetry
  /// and cross-process comparisons; instance identity is what's enforced).
  [[nodiscard]] std::uint64_t model_fingerprint() const noexcept {
    return fingerprint_;
  }
  /// Maximum resident plans (0 = unbounded).
  [[nodiscard]] std::size_t capacity() const noexcept { return max_plans_; }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;  ///< plans dropped by the LRU cap
    [[nodiscard]] double hit_rate() const noexcept {
      const double total = static_cast<double>(hits + misses);
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };
  [[nodiscard]] Stats stats() const;
  /// Number of distinct compiled plans currently resident.
  [[nodiscard]] std::size_t size() const;

  // Internal API used by SqlEvaluator. `layout` is the
  // db::Database::layout_fingerprint() of the database the plan was (or
  // will be) compiled against: compiled SQL is layout-dependent (the
  // partition-union rewrite reads partition specs), so a plan compiled for
  // one physical layout must never be replayed against another — changing
  // SchemaOptions::region_timing_partitions invalidates by key, not by
  // luck.
  [[nodiscard]] std::shared_ptr<const CompiledPlan> find(
      std::string_view property, const void* site, int kind,
      std::uint64_t layout) const;
  /// Inserts unless the site is already cached; returns the canonical plan
  /// (the first one in wins, so racing workers converge on one instance).
  [[nodiscard]] std::shared_ptr<const CompiledPlan> insert(
      std::string_view property, const void* site, int kind,
      std::uint64_t layout, std::shared_ptr<const CompiledPlan> plan);
  void record(bool hit);

 private:
  struct Key {
    std::string property;
    const void* site = nullptr;
    int kind = 0;
    std::uint64_t layout = 0;  ///< table-layout fingerprint of the database
    friend bool operator<(const Key& a, const Key& b) {
      if (a.property != b.property) return a.property < b.property;
      if (a.site != b.site) return a.site < b.site;
      if (a.kind != b.kind) return a.kind < b.kind;
      return a.layout < b.layout;
    }
  };
  struct Entry {
    std::shared_ptr<const CompiledPlan> plan;
    std::list<Key>::iterator lru_pos;  // position in lru_ (front = hottest)
  };

  void touch(Entry& entry) const;  // move to the LRU front (mutex held)

  const asl::Model* model_;
  std::uint64_t fingerprint_;
  std::size_t max_plans_;
  mutable std::mutex mutex_;
  // find() refreshes recency, so both containers are logically const there.
  mutable std::map<Key, Entry> plans_;
  mutable std::list<Key> lru_;  // most recently used first
  Stats stats_;
};

/// Database-backed evaluator of ASL properties. In kPushdown mode this is
/// the paper's §5 claim made executable — "translate the conditions of
/// performance properties entirely into SQL queries instead of first
/// accessing the data components and evaluating the expressions in the
/// analysis tool" — and its automation is the §6 future-work item. In
/// kClientSide mode it is exactly that slow alternative, kept as the
/// measured baseline of experiment T3.
///
/// Restrictions (checked, explained in the thrown EvalError):
///  * the data model must be inheritance-free (concrete tables per class),
///  * set expressions must be syntactic member chains or comprehensions,
///  * aggregates correlated with an enclosing binder are not supported in
///    kPushdown mode.
/// The COSY model and property suites satisfy all three; anything outside
/// falls back to the interpreter at the analyzer level.
///
/// An evaluator instance is not thread-safe (it owns a connection and its
/// prepared statements); run one evaluator per worker. The optional
/// PlanCache *is* shared across workers.
class SqlEvaluator {
 public:
  /// `common_subexpr` (kWholeCondition only): run the common-subexpression
  /// pass over the compiled statement — structurally identical scalar
  /// subqueries are hoisted into named CTEs (`WITH cse0 AS (...) SELECT
  /// ...`) referenced once each, and repeated argument parameters collapse
  /// into one `?` per occurrence in the deduplicated text. Off reproduces
  /// the plain one-statement compilation (the bench ablation baseline).
  SqlEvaluator(const asl::Model& model, db::Connection& conn,
               SqlEvalMode mode = SqlEvalMode::kPushdown,
               PlanCache* plan_cache = nullptr, bool common_subexpr = true);

  /// Evaluates a property for a context; arguments are RtValues whose
  /// object references are database ids. Mirrors
  /// asl::Interpreter::evaluate_property (differential tests pin them
  /// together).
  [[nodiscard]] asl::PropertyResult evaluate_property(
      const asl::PropertyInfo& prop, std::vector<asl::RtValue> args);

  /// Number of SQL statements issued so far (bench bookkeeping).
  [[nodiscard]] std::uint64_t queries_issued() const noexcept {
    return queries_;
  }
  /// Plan-cache traffic from this evaluator (0/0 without a cache).
  [[nodiscard]] std::uint64_t plan_cache_hits() const noexcept {
    return plan_hits_;
  }
  [[nodiscard]] std::uint64_t plan_cache_misses() const noexcept {
    return plan_misses_;
  }
  /// kWholeCondition only: contexts that could not run as one statement and
  /// were re-evaluated site-by-site (results stay interpreter-identical; the
  /// COSY suites compile without fallbacks, which tests assert).
  [[nodiscard]] std::uint64_t whole_fallbacks() const noexcept {
    return whole_fallbacks_;
  }
  /// Prepared statements resident in this evaluator (telemetry). Bounded
  /// when the attached PlanCache is capped: statements of evicted plan
  /// generations are pruned as new plans arrive.
  [[nodiscard]] std::size_t statements_resident() const noexcept {
    return statements_.size();
  }
  /// Table-layout fingerprint the evaluator is currently keying plans
  /// under: snapshotted at construction and refreshed at the start of every
  /// evaluate_property (compilation reads the live catalog, so the key must
  /// describe the same moment even if DDL re-partitioned a table since
  /// construction).
  [[nodiscard]] std::uint64_t layout_fingerprint() const noexcept {
    return layout_;
  }

  /// Routes whole-condition statement execution through a distributed
  /// coordinator: the statement's `part<K>` CTEs scatter to the
  /// coordinator's workers and the merge executes locally over the gathered
  /// rows. Null (the default) executes everything on the session. The
  /// coordinator must outlive the evaluator and wrap the same session.
  void set_coordinator(db::Coordinator* coordinator) noexcept {
    coordinator_ = coordinator;
  }

  /// Attaches an incremental shard-result cache: whole-condition statements
  /// resolve their partition-pinned `part<K>` CTEs through the cache,
  /// recomputing only partitions whose version token moved since the last
  /// pass, and the residual merge executes with the cached rows injected
  /// (byte-identical to a cold run; still one charged statement). The cache
  /// must be used against a single Database and must outlive the evaluator.
  /// Precedence: a coordinator, when also attached, wins — scatter/gather
  /// and the shard cache do not compose.
  void set_shard_cache(ShardResultCache* cache) noexcept {
    shard_cache_ = cache;
  }

  /// Compiles a property's entire condition/confidence/severity surface into
  /// the single whole-condition statement without executing it (tests and
  /// --explain flows). Throws when the property is not compilable.
  [[nodiscard]] std::string explain_whole_condition(
      const asl::PropertyInfo& prop);

  /// Compiles the given set expression to its SQL text without executing it
  /// (exposed for tests and the --explain flows of the examples).
  [[nodiscard]] std::string explain_set(const asl::ast::Expr& set_expr,
                                        const asl::PropertyInfo& prop,
                                        const std::vector<asl::RtValue>& args);

 private:
  friend class SqlExprEval;

  /// Once-per-statement analysis for the incremental (shard cache) path:
  /// which CTE bodies are cacheable, their rendered text, parameter order,
  /// pinned partition and version references — everything about the probe
  /// that does not change between passes. Rebuilt when the database layout
  /// fingerprint moves (a DDL re-partition invalidates pinned indices and
  /// cached Table pointers).
  struct ShardCteAnalysis {
    bool done = false;
    std::uint64_t layout = 0;
    struct Ref {
      const db::Table* table = nullptr;
      std::optional<std::size_t> partition;  ///< pinned scan, else whole-table
    };
    struct Cte {
      db::sql::SelectStmt* body = nullptr;
      const std::string* name = nullptr;  ///< points into the statement AST
      std::string stem;  ///< fingerprint prefix: db identity|layout|body text
      std::vector<std::size_t> order;  ///< param indices in text order
      std::size_t pinned = 0;
      std::vector<Ref> refs;
    };
    std::vector<Cte> ctes;  ///< cacheable CTEs only
    /// Whole-statement memo: every catalog table the statement reads
    /// (nullopt when some ref cannot be pinned to data — never memoize).
    std::optional<std::vector<const db::Table*>> memo_refs;
    /// Memo fingerprint prefix (db identity|layout|statement text), built on
    /// first use — the statement text never changes for a given analysis.
    std::string memo_stem;
  };

  struct StatementEntry {
    std::shared_ptr<const CompiledPlan> plan;  // keeps the key alive
    db::PreparedStatement stmt;
    ShardCteAnalysis shard;
  };

  /// Prepared statement for a cached plan, parsed once per evaluator (the
  /// engine allows concurrent execution of *distinct* prepared statements,
  /// so statements are per-evaluator while plans are shared).
  db::PreparedStatement& statement_for(
      const std::shared_ptr<const CompiledPlan>& plan);
  StatementEntry& entry_for(const std::shared_ptr<const CompiledPlan>& plan);

  /// Site-by-site evaluation (pushdown / client-side), also the fallback of
  /// the whole-condition mode.
  [[nodiscard]] asl::PropertyResult evaluate_sitewise(
      const asl::PropertyInfo& prop, std::vector<asl::RtValue> args);
  /// One-statement whole-condition evaluation; throws EvalError when the
  /// property does not compile or the statement fails structurally.
  [[nodiscard]] asl::PropertyResult evaluate_whole(
      const asl::PropertyInfo& prop, const std::vector<asl::RtValue>& args);
  [[nodiscard]] std::shared_ptr<const CompiledPlan> whole_plan_for(
      const asl::PropertyInfo& prop);
  /// Incremental execution of a whole-condition statement through the
  /// attached ShardResultCache: partition-pinned `part<K>` CTEs are served
  /// from cache when their version token is unchanged, recomputed (and
  /// re-cached) when dirty, and the residual merge runs with the rows
  /// injected. Returns nullopt when the statement has no cacheable CTE —
  /// the caller then executes it on the plain path.
  [[nodiscard]] std::optional<db::QueryResult> try_execute_with_shard_cache(
      db::PreparedStatement& stmt, ShardCteAnalysis& analysis,
      const std::vector<db::Value>& values);
  /// (Re)builds `analysis` for the statement when absent or compiled against
  /// a different layout fingerprint.
  void ensure_shard_analysis(db::PreparedStatement& stmt,
                             ShardCteAnalysis& analysis);
  /// Whole-statement memo token: true when every table the statement reads
  /// (outer select, every CTE body, recursively) resolves in the catalog.
  /// `fp` then identifies the computation (database identity, layout,
  /// statement text, bound values) and `version` sums the whole-table
  /// versions of everything read — unchanged token means the stored result
  /// is still exact and the statement need not run at all.
  [[nodiscard]] bool statement_memo_token(db::PreparedStatement& stmt,
                                          ShardCteAnalysis& analysis,
                                          std::string_view sql_text,
                                          const std::vector<db::Value>& values,
                                          std::string& fp,
                                          std::uint64_t& version);

  const asl::Model* model_;
  db::Connection* conn_;
  db::Coordinator* coordinator_ = nullptr;
  ShardResultCache* shard_cache_ = nullptr;
  SqlEvalMode mode_;
  PlanCache* cache_;
  bool cse_;
  std::uint64_t layout_ = 0;  ///< database layout fingerprint (plan keying)
  std::uint64_t queries_ = 0;
  std::uint64_t plan_hits_ = 0;
  std::uint64_t plan_misses_ = 0;
  std::uint64_t whole_fallbacks_ = 0;
  std::map<const CompiledPlan*, StatementEntry> statements_;
};

}  // namespace kojak::cosy

#endif  // KOJAK_COSY_SQL_EVAL_HPP
