#ifndef KOJAK_COSY_SCHEMA_GEN_HPP
#define KOJAK_COSY_SCHEMA_GEN_HPP

#include <string>
#include <vector>

#include "asl/model.hpp"
#include "db/database.hpp"

namespace kojak::cosy {

/// Automatic generation of the relational database design from the ASL data
/// model — the paper ships this step as manual work and names its automation
/// as future work (§6); this module implements it.
///
/// Mapping: one table per class (`id INTEGER PRIMARY KEY` + one column per
/// scalar/ref/enum attribute; refs and enums store INTEGER ids/ordinals) and
/// one junction table `<Class>_<Attr>(owner, member)` per `setof` attribute.
/// Hash indexes are generated on every id, ref column, and junction owner,
/// so the ASL->SQL queries of the pushdown evaluator stay index-backed.
struct SchemaOptions {
  /// Hash-partition count for the per-region timing junction tables
  /// (Region_TotTimes / Region_TypTimes), partitioned by owner — all
  /// timings of one region land in one partition, so per-region probes stay
  /// single-shard while whole-table scans parallelize engine-side. These
  /// are the tables that grow as runs x regions x timing types; everything
  /// else stays a single heap. 1 = the unpartitioned seed layout.
  std::size_t region_timing_partitions = 4;

  /// Explicit per-junction partition declarations, matched by (class, setof
  /// attribute); they take precedence over the region default above. The
  /// partition column choice is the layout/workload trade the catalog
  /// metadata API makes explicit to compilers: "owner" keeps per-owner
  /// probes single-shard (the region-timing default); "member" spreads one
  /// owner's rows across every partition, which turns whole-set aggregates
  /// over that junction into the full-table scans the whole-condition
  /// compiler rewrites into a per-partition CTE union. `partitions <= 1`
  /// pins the junction to a single heap.
  struct JunctionPartition {
    std::string class_name;
    std::string attr_name;
    std::string column = "owner";  ///< "owner" or "member"
    std::size_t partitions = 1;
  };
  std::vector<JunctionPartition> junction_partitions;

  /// Emit `STORAGE COLUMNAR` on every generated table: each partition keeps
  /// typed column vectors + a validity bitmap alongside the row heap, and
  /// eligible whole-partition aggregates run the engine's vectorized fused
  /// path. Pure layout choice — reports stay byte-identical to the row
  /// default (the cosy_columnar differential pins exactly that).
  bool columnar = false;
};

[[nodiscard]] std::vector<std::string> generate_ddl(
    const asl::Model& model, const SchemaOptions& options = {});

/// Executes the generated DDL against a database.
void create_schema(db::Database& db, const asl::Model& model,
                   const SchemaOptions& options = {});

/// Column type used for an attribute (exposed for tests).
[[nodiscard]] db::ValueType column_type(const asl::Type& type);

/// Junction table name for a `setof` attribute.
[[nodiscard]] std::string junction_table(std::string_view class_name,
                                         std::string_view attr_name);

}  // namespace kojak::cosy

#endif  // KOJAK_COSY_SCHEMA_GEN_HPP
