#ifndef KOJAK_COSY_STORE_BUILDER_HPP
#define KOJAK_COSY_STORE_BUILDER_HPP

#include <map>
#include <string>
#include <vector>

#include "asl/object_store.hpp"
#include "perf/apprentice.hpp"

namespace kojak::cosy {

/// Object handles produced while populating a store from experiment data;
/// the analyzer uses them to enumerate property contexts and label output.
struct StoreHandles {
  asl::ObjectId program = asl::kNullObject;
  asl::ObjectId version = asl::kNullObject;
  std::vector<asl::ObjectId> runs;                 // index = run index
  std::map<std::string, asl::ObjectId> functions;  // by name
  std::map<std::string, asl::ObjectId> regions;    // by region name
  std::vector<asl::ObjectId> call_sites;           // index = structure order
  /// Human-readable call-site labels ("caller -> callee @ region").
  std::vector<std::string> call_site_labels;
  /// Body region of the program's entry function (severity basis default).
  std::string main_region;
};

/// Populates `store` with one Program / ProgVersion and all test runs of an
/// experiment, following the paper's data model. Multiple experiments (or
/// versions of the same program) may be imported into one store.
StoreHandles build_store(asl::ObjectStore& store,
                         const perf::ExperimentData& data);

/// Region object count and other payload statistics (bench bookkeeping).
struct StoreStats {
  std::size_t objects = 0;
  std::size_t regions = 0;
  std::size_t total_timings = 0;
  std::size_t typed_timings = 0;
  std::size_t call_timings = 0;
};
[[nodiscard]] StoreStats store_stats(const asl::ObjectStore& store);

}  // namespace kojak::cosy

#endif  // KOJAK_COSY_STORE_BUILDER_HPP
