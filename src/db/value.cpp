#include "db/value.hpp"

#include <cmath>
#include <cstdio>
#include <functional>

#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::db {

using support::EvalError;

std::string_view to_string(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOLEAN";
    case ValueType::kInt:
      return "INTEGER";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "TEXT";
    case ValueType::kDateTime:
      return "DATETIME";
  }
  return "?";
}

std::optional<ValueType> parse_type_name(std::string_view name) {
  const std::string upper = support::to_upper(name);
  if (upper == "INTEGER" || upper == "INT" || upper == "BIGINT") return ValueType::kInt;
  if (upper == "REAL" || upper == "DOUBLE" || upper == "FLOAT") return ValueType::kDouble;
  if (upper == "TEXT" || upper == "VARCHAR" || upper == "STRING") return ValueType::kString;
  if (upper == "BOOLEAN" || upper == "BOOL") return ValueType::kBool;
  if (upper == "DATETIME" || upper == "TIMESTAMP") return ValueType::kDateTime;
  return std::nullopt;
}

ValueType Value::type() const noexcept {
  if (std::holds_alternative<std::monostate>(payload_)) return ValueType::kNull;
  if (std::holds_alternative<bool>(payload_)) return ValueType::kBool;
  if (std::holds_alternative<std::int64_t>(payload_)) {
    return is_datetime_ ? ValueType::kDateTime : ValueType::kInt;
  }
  if (std::holds_alternative<double>(payload_)) return ValueType::kDouble;
  return ValueType::kString;
}

bool Value::as_bool() const {
  if (const bool* b = std::get_if<bool>(&payload_)) return *b;
  throw EvalError(support::cat("value is not BOOLEAN: ", to_display()));
}

std::int64_t Value::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&payload_)) {
    if (!is_datetime_) return *i;
  }
  throw EvalError(support::cat("value is not INTEGER: ", to_display()));
}

double Value::as_double() const {
  if (const auto* d = std::get_if<double>(&payload_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&payload_)) {
    return static_cast<double>(*i);
  }
  throw EvalError(support::cat("value is not numeric: ", to_display()));
}

const std::string& Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&payload_)) return *s;
  throw EvalError(support::cat("value is not TEXT: ", to_display()));
}

std::int64_t Value::as_datetime() const {
  if (is_datetime_) {
    if (const auto* i = std::get_if<std::int64_t>(&payload_)) return *i;
  }
  throw EvalError(support::cat("value is not DATETIME: ", to_display()));
}

std::optional<int> Value::compare_sql(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return std::nullopt;
  if (a.is_numeric() && b.is_numeric()) {
    const double x = a.as_double();
    const double y = b.as_double();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  const ValueType ta = a.type();
  const ValueType tb = b.type();
  if (ta != tb) {
    throw EvalError(support::cat("cannot compare ", to_string(ta), " with ",
                                 to_string(tb)));
  }
  switch (ta) {
    case ValueType::kBool: {
      const int x = a.as_bool() ? 1 : 0;
      const int y = b.as_bool() ? 1 : 0;
      return x - y;
    }
    case ValueType::kDateTime: {
      const std::int64_t x = a.as_datetime();
      const std::int64_t y = b.as_datetime();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ValueType::kString: {
      const int c = a.as_string().compare(b.as_string());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;  // unreachable
  }
}

namespace {

int type_class(ValueType t) noexcept {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 2;
    case ValueType::kDateTime:
      return 3;
    case ValueType::kString:
      return 4;
  }
  return 5;
}

}  // namespace

int Value::compare_total(const Value& a, const Value& b) noexcept {
  const int ca = type_class(a.type());
  const int cb = type_class(b.type());
  if (ca != cb) return ca < cb ? -1 : 1;
  switch (ca) {
    case 0:
      return 0;
    case 1: {
      const int x = std::get<bool>(a.payload_) ? 1 : 0;
      const int y = std::get<bool>(b.payload_) ? 1 : 0;
      return x - y;
    }
    case 2: {
      const double x = a.as_double();
      const double y = b.as_double();
      if (x < y) return -1;
      if (x > y) return 1;
      return 0;
    }
    case 3: {
      const auto x = std::get<std::int64_t>(a.payload_);
      const auto y = std::get<std::int64_t>(b.payload_);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    default: {
      const int c = std::get<std::string>(a.payload_).compare(
          std::get<std::string>(b.payload_));
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

std::size_t Value::hash() const noexcept {
  switch (type()) {
    case ValueType::kNull:
      return 0x517CC1B727220A95ULL;
    case ValueType::kBool:
      return std::get<bool>(payload_) ? 2 : 1;
    case ValueType::kInt:
    case ValueType::kDateTime: {
      // Hash ints through double so 2 and 2.0 land in the same bucket
      // (compare_total treats them as equal group keys).
      const double d = static_cast<double>(std::get<std::int64_t>(payload_));
      return std::hash<double>{}(d);
    }
    case ValueType::kDouble:
      return std::hash<double>{}(std::get<double>(payload_));
    case ValueType::kString:
      return std::hash<std::string>{}(std::get<std::string>(payload_));
  }
  return 0;
}

std::string Value::to_display() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return std::get<bool>(payload_) ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(std::get<std::int64_t>(payload_));
    case ValueType::kDouble:
      return support::format_double(std::get<double>(payload_));
    case ValueType::kString:
      return std::get<std::string>(payload_);
    case ValueType::kDateTime:
      return format_datetime(std::get<std::int64_t>(payload_));
  }
  return "?";
}

std::string Value::to_sql_literal() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return std::get<bool>(payload_) ? "TRUE" : "FALSE";
    case ValueType::kInt:
      return std::to_string(std::get<std::int64_t>(payload_));
    case ValueType::kDouble: {
      std::string s = support::format_double(std::get<double>(payload_));
      // Ensure the literal re-parses as a double, not an int.
      if (s.find_first_of(".eEnN") == std::string::npos) s += ".0";
      return s;
    }
    case ValueType::kString:
      return support::sql_quote(std::get<std::string>(payload_));
    case ValueType::kDateTime:
      return support::cat("DATETIME ",
                          support::sql_quote(format_datetime(as_datetime())));
  }
  return "NULL";
}

Value Value::coerce_to(ValueType target) const {
  const ValueType from = type();
  if (from == ValueType::kNull || from == target) return *this;
  if (from == ValueType::kInt && target == ValueType::kDouble) {
    return Value::real(static_cast<double>(as_int()));
  }
  if (from == ValueType::kInt && target == ValueType::kDateTime) {
    return Value::datetime(as_int());
  }
  if (from == ValueType::kDateTime && target == ValueType::kInt) {
    return Value::integer(as_datetime());
  }
  throw EvalError(support::cat("cannot store ", to_string(from), " value ",
                               to_display(), " into ", to_string(target),
                               " column"));
}

Value numeric_binop(char op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::null();
  if (!a.is_numeric() || !b.is_numeric()) {
    if (op == '+' && a.type() == ValueType::kString &&
        b.type() == ValueType::kString) {
      return Value::text(a.as_string() + b.as_string());
    }
    throw EvalError(support::cat("arithmetic '", op, "' on non-numeric operands ",
                                 a.to_display(), ", ", b.to_display()));
  }
  const bool both_int = a.type() == ValueType::kInt && b.type() == ValueType::kInt;
  if (both_int && op != '/') {
    const std::int64_t x = a.as_int();
    const std::int64_t y = b.as_int();
    switch (op) {
      case '+':
        return Value::integer(x + y);
      case '-':
        return Value::integer(x - y);
      case '*':
        return Value::integer(x * y);
      case '%':
        if (y == 0) throw EvalError("modulo by zero");
        return Value::integer(x % y);
      default:
        break;
    }
  }
  const double x = a.as_double();
  const double y = b.as_double();
  switch (op) {
    case '+':
      return Value::real(x + y);
    case '-':
      return Value::real(x - y);
    case '*':
      return Value::real(x * y);
    case '/':
      if (y == 0.0) throw EvalError("division by zero");
      return Value::real(x / y);
    case '%':
      if (y == 0.0) throw EvalError("modulo by zero");
      return Value::real(std::fmod(x, y));
    default:
      throw EvalError(support::cat("unknown arithmetic operator '", op, "'"));
  }
}

// Civil-time conversions (algorithms by Howard Hinnant, public domain).
namespace {

std::int64_t days_from_civil(int y, unsigned m, unsigned d) noexcept {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<std::int64_t>(era) * 146097 +
         static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, int& y, unsigned& m, unsigned& d) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = doy - (153 * mp + 2) / 5 + 1;
  m = mp + (mp < 10 ? 3 : -9);
  y = static_cast<int>(yy + (m <= 2));
}

}  // namespace

std::string format_datetime(std::int64_t epoch_seconds) {
  std::int64_t days = epoch_seconds / 86400;
  std::int64_t sec = epoch_seconds % 86400;
  if (sec < 0) {
    sec += 86400;
    --days;
  }
  int y = 0;
  unsigned m = 0;
  unsigned d = 0;
  civil_from_days(days, y, m, d);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02u-%02u %02lld:%02lld:%02lld", y, m, d,
                static_cast<long long>(sec / 3600),
                static_cast<long long>((sec / 60) % 60),
                static_cast<long long>(sec % 60));
  return buf;
}

std::optional<std::int64_t> parse_datetime(std::string_view text) {
  int y = 0, hh = 0, mm = 0, ss = 0;
  unsigned mo = 0, dd = 0;
  const std::string s(text);
  int consumed = 0;
  if (std::sscanf(s.c_str(), "%d-%u-%u %d:%d:%d%n", &y, &mo, &dd, &hh, &mm, &ss,
                  &consumed) == 6 &&
      consumed == static_cast<int>(s.size())) {
    // fall through to validation
  } else if (std::sscanf(s.c_str(), "%d-%u-%u%n", &y, &mo, &dd, &consumed) == 3 &&
             consumed == static_cast<int>(s.size())) {
    hh = mm = ss = 0;
  } else {
    return std::nullopt;
  }
  if (mo < 1 || mo > 12 || dd < 1 || dd > 31 || hh < 0 || hh > 23 || mm < 0 ||
      mm > 59 || ss < 0 || ss > 60) {
    return std::nullopt;
  }
  return days_from_civil(y, mo, dd) * 86400 + hh * 3600 + mm * 60 + ss;
}

}  // namespace kojak::db
