#ifndef KOJAK_DB_DISTRIBUTED_HPP
#define KOJAK_DB_DISTRIBUTED_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "db/connection.hpp"
#include "db/database.hpp"
#include "support/thread_pool.hpp"

namespace kojak::db {

/// One distributable unit of a statement: a `part<K>` CTE body whose scan is
/// pinned to a single partition. The task is self-contained — it owns a
/// clone of the body and copies of the bound parameters — so a straggler
/// attempt abandoned by the coordinator can keep running after the
/// statement returns without touching caller-owned memory.
struct ShardTask {
  std::string cte_name;
  /// Body rendered back to SQL text with `?` placeholders in text order
  /// (what a remote worker receives over the modelled wire).
  std::string sql_text;
  /// Structural clone of the body; parameter indices are the statement's
  /// absolute indices (what an in-process worker executes directly).
  std::unique_ptr<sql::SelectStmt> body;
  /// The statement's bound values sliced in text order of the rendered
  /// placeholders (ships with sql_text: a re-parse numbers `?` sequentially).
  std::vector<Value> wire_params;
  /// Full copy of the statement's bound values (the AST index space).
  std::vector<Value> full_params;
};

/// One executor node of the scatter/gather layer. A worker owns (a
/// reference to) a thread-confined replica Database: `execute_shard`
/// serializes all execution on the worker behind an internal gate, so the
/// replica only ever sees one statement at a time no matter how the
/// coordinator's pool schedules attempts. Fault injection (tests, chaos
/// benches) lives here so both implementations share it.
class Worker {
 public:
  struct Faults {
    /// Fail the next N shard executions with an injected error.
    std::size_t fail_first = 0;
    /// Straggler injection: sleep this long before executing each shard.
    std::chrono::milliseconds delay{0};
  };

  explicit Worker(std::string name) : name_(std::move(name)) {}
  virtual ~Worker() = default;

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_faults(Faults faults);

  /// Executes one shard, applying injected faults first. Thread-safe;
  /// attempts are serialized per worker (thread confinement of the replica).
  QueryResult execute_shard(const ShardTask& task);

  [[nodiscard]] std::uint64_t shards_executed() const noexcept {
    return shards_.load(std::memory_order_relaxed);
  }
  /// Modelled wire/server nanoseconds this worker accumulated (zero for the
  /// in-process implementation). The coordinator diffs this around a
  /// statement to charge the gather barrier the slowest worker's time.
  [[nodiscard]] std::uint64_t modelled_ns() const noexcept {
    return modelled_ns_.load(std::memory_order_relaxed);
  }

  /// Runs `fn` while the worker's execution gate is held, so the replica is
  /// guaranteed idle — no attempt (including an abandoned straggler from an
  /// earlier statement) touches it concurrently. The coordinator refreshes
  /// stale replicas under this.
  void with_replica_quiesced(const std::function<void()>& fn) {
    std::lock_guard lock(gate_);
    fn();
  }

 protected:
  virtual QueryResult do_execute_shard(const ShardTask& task) = 0;
  void charge_ns(std::uint64_t ns) noexcept {
    modelled_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::mutex gate_;  ///< confines the replica to one attempt at a time
  std::mutex faults_mutex_;
  Faults faults_;
  std::atomic<std::uint64_t> shards_{0};
  std::atomic<std::uint64_t> modelled_ns_{0};
};

/// Worker colocated with the coordinator process: executes the cloned body
/// directly against its replica with the statement's full parameter array.
/// No wire model — this is the "cluster of threads" deployment.
class InProcessWorker final : public Worker {
 public:
  InProcessWorker(std::string name, Database& replica)
      : Worker(std::move(name)), replica_(replica) {}

 protected:
  QueryResult do_execute_shard(const ShardTask& task) override;

 private:
  Database& replica_;
};

/// Modelled-remote worker: receives the shard as SQL text plus sliced
/// parameters through a db::Connection over its replica, paying the
/// profile's per-statement round trip, per-value wire cost for the
/// serialized CTE text and parameters out, and per-row fetch cost for the
/// result rows back. Execution is still real (the replica engine runs the
/// re-parsed text); only the time is modelled.
class RemoteWorker final : public Worker {
 public:
  RemoteWorker(std::string name, Database& replica, ConnectionProfile profile)
      : Worker(std::move(name)), conn_(replica, std::move(profile)) {}

  [[nodiscard]] Connection& connection() noexcept { return conn_; }

 protected:
  QueryResult do_execute_shard(const ShardTask& task) override;

 private:
  Connection conn_;
};

/// Per-worker full replicas of a source catalog. Each replica re-creates
/// every table with the identical schema (including the partition spec) and
/// secondary indexes, then re-inserts the live rows in the source's scan
/// order (partition-major, heap order within each) — so a replica scan
/// produces byte-for-byte the row stream the source would, which is what
/// makes scatter/gather results byte-identical to local execution.
/// Each replica remembers the per-partition versions it was synced at, so
/// staleness after new source ingest is a version comparison and a refresh
/// re-copies ONLY the partitions that moved (erase the replica partition's
/// live rows, re-insert the source partition's in scan order — the replica
/// partition's live-row stream stays byte-for-byte the source's).
class ReplicaSet {
 public:
  ReplicaSet(const Database& source, std::size_t count);

  [[nodiscard]] std::size_t size() const noexcept { return replicas_.size(); }
  [[nodiscard]] Database& replica(std::size_t i) { return *replicas_.at(i); }
  [[nodiscard]] const Database& source() const noexcept { return *source_; }

  /// True when any source partition (or the catalog itself) has mutated
  /// since replica `i` was last synced (cloned or refreshed).
  [[nodiscard]] bool replica_stale(std::size_t i) const;
  /// Partition-incremental re-sync of replica `i` against the source;
  /// returns the number of partitions re-copied (0 when already fresh).
  /// The caller must guarantee the replica is idle (the coordinator runs
  /// this under Worker::with_replica_quiesced) and the source is not
  /// mutating (the monitoring write gate provides that).
  std::size_t refresh(std::size_t i);

 private:
  /// Per-table partition versions of the source at the last sync.
  using SyncedVersions = std::map<std::string, std::vector<std::uint64_t>>;

  const Database* source_;
  std::vector<std::unique_ptr<Database>> replicas_;
  std::vector<SyncedVersions> synced_;
};

/// One worker per replica: modelled-remote when `profile.distributed`,
/// in-process otherwise (the two deployments of §5's backend comparison).
[[nodiscard]] std::vector<std::unique_ptr<Worker>> make_workers(
    ReplicaSet& replicas, const ConnectionProfile& profile);

struct CoordinatorOptions {
  /// Gather deadline per shard; a primary that blows it gets the shard
  /// re-issued once to the next worker's replica (first result wins).
  std::chrono::milliseconds shard_deadline{2000};
  /// Total attempts per dispatch (1 + retries-with-backoff on failure).
  std::size_t max_attempts = 3;
  std::chrono::milliseconds retry_backoff{1};
  /// With a ReplicaSet attached: refresh stale replicas in place before
  /// scattering (counted as `replica_refreshes`). When false the
  /// coordinator declines to scatter while any replica is behind and runs
  /// the statement on the session instead — never stale reads either way.
  bool refresh_stale_replicas = true;
};

/// The coordinator half of the executor split. Plans a statement's
/// partition-pinned `part<K>` CTEs as shard tasks, scatters them across the
/// workers round-robin, gathers with a per-shard deadline (stragglers are
/// re-issued to a replica; failures retry with backoff), then executes the
/// residual statement — coordinator merge expressions included — locally
/// with the gathered rows injected for the shard names. Statements with no
/// distributable CTE fall through to the session untouched, so a
/// coordinator is always safe to put in front of a session.
///
/// Accounting lands in the coordinator session's Database::exec_stats():
/// `shards_dispatched`, `shard_retries`, `straggler_reissues`,
/// `worker_failures`. Modelled time: the gather barrier advances the
/// session clock by the slowest worker's per-statement delta (makespan),
/// then the residual statement is charged normally.
class Coordinator {
 public:
  Coordinator(Connection& session, std::vector<std::unique_ptr<Worker>> workers,
              CoordinatorOptions options = {});

  [[nodiscard]] Connection& session() noexcept { return *session_; }
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] Worker& worker(std::size_t i) { return *workers_.at(i); }

  /// Attaches the ReplicaSet the workers execute against (worker i maps to
  /// replica i, the make_workers layout). Before every scatter the
  /// coordinator then version-checks each replica against the source and
  /// refreshes stale ones (or declines to scatter — see
  /// CoordinatorOptions::refresh_stale_replicas), so replicas cloned at
  /// fleet construction never silently serve stale shards after new ingest.
  /// Null detaches; the set must outlive the coordinator.
  void attach_replicas(ReplicaSet* replicas) noexcept { replicas_ = replicas; }

  QueryResult execute(PreparedStatement& stmt, std::span<const Value> params);
  /// Parses one statement and executes it (convenience; tests and the
  /// uncached evaluator path).
  QueryResult execute(std::string_view sql_text, std::span<const Value> params);

 private:
  struct ShardSlot;

  [[nodiscard]] std::vector<std::shared_ptr<ShardTask>> plan_shards(
      const sql::SelectStmt& stmt, std::span<const Value> params) const;
  /// Pre-scatter staleness pass; false means "decline to scatter" (a
  /// replica is behind and refresh is disabled).
  [[nodiscard]] bool replicas_ready_for_scatter();
  QueryResult scatter_gather(sql::SelectStmt& stmt,
                             std::span<const Value> params,
                             std::vector<std::shared_ptr<ShardTask>> tasks);
  void dispatch(Worker& worker, std::shared_ptr<const ShardTask> task,
                std::shared_ptr<ShardSlot> slot);

  Connection* session_;
  CoordinatorOptions options_;
  ReplicaSet* replicas_ = nullptr;
  /// Declared before pool_ so the pool joins (draining abandoned straggler
  /// attempts) while the workers they reference are still alive.
  std::vector<std::unique_ptr<Worker>> workers_;
  support::ThreadPool pool_;
};

/// Renders one SELECT back to executable SQL text with `?` placeholders,
/// recording the absolute param_index of each placeholder in text order
/// (the wire format a remote worker re-parses). Returns false when the
/// statement contains a node the text dialect cannot round-trip — the
/// caller then keeps that CTE local instead of distributing it. Exposed
/// for tests.
[[nodiscard]] bool render_select_sql(const sql::SelectStmt& stmt,
                                     std::string& out,
                                     std::vector<std::size_t>& param_order);

}  // namespace kojak::db

#endif  // KOJAK_DB_DISTRIBUTED_HPP
