#include "db/table.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

namespace kojak::db {

using support::EvalError;

void Index::insert(const Value& key, std::size_t row_id) {
  if (kind_ == Kind::kHash) {
    hash_.emplace(key, row_id);
  } else {
    ordered_.emplace(key, row_id);
  }
}

void Index::erase(const Value& key, std::size_t row_id) {
  if (kind_ == Kind::kHash) {
    auto [begin, end] = hash_.equal_range(key);
    for (auto it = begin; it != end; ++it) {
      if (it->second == row_id) {
        hash_.erase(it);
        return;
      }
    }
  } else {
    auto [begin, end] = ordered_.equal_range(key);
    for (auto it = begin; it != end; ++it) {
      if (it->second == row_id) {
        ordered_.erase(it);
        return;
      }
    }
  }
}

std::vector<std::size_t> Index::equal_range(const Value& key) const {
  std::vector<std::size_t> out;
  if (kind_ == Kind::kHash) {
    auto [begin, end] = hash_.equal_range(key);
    for (auto it = begin; it != end; ++it) out.push_back(it->second);
  } else {
    auto [begin, end] = ordered_.equal_range(key);
    for (auto it = begin; it != end; ++it) out.push_back(it->second);
  }
  return out;
}

std::vector<std::size_t> Index::range(const Value& lo, const Value& hi) const {
  return range_open(&lo, &hi);
}

std::vector<std::size_t> Index::range_open(const Value* lo,
                                           const Value* hi) const {
  std::vector<std::size_t> out;
  if (kind_ != Kind::kOrdered) {
    throw EvalError(support::cat("index ", name_, " does not support range scans"));
  }
  auto it = lo != nullptr ? ordered_.lower_bound(*lo) : ordered_.begin();
  for (; it != ordered_.end(); ++it) {
    if (it->first.is_null()) continue;
    if (hi != nullptr && Value::compare_total(it->first, *hi) > 0) break;
    out.push_back(it->second);
  }
  return out;
}

Row Table::validate(Row row) const {
  if (row.size() != schema_.column_count()) {
    throw EvalError(support::cat("table ", schema_.name(), " expects ",
                                 schema_.column_count(), " values, got ",
                                 row.size()));
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& col = schema_.column(i);
    row[i] = row[i].coerce_to(col.type);
    if (row[i].is_null() && (!col.nullable || col.primary_key)) {
      throw EvalError(support::cat("NULL not allowed in ", schema_.name(), ".",
                                   col.name));
    }
  }
  return row;
}

std::size_t Table::insert(Row row) {
  row = validate(std::move(row));
  if (const auto pk = schema_.primary_key()) {
    if (const Index* index = find_index_on(*pk)) {
      if (!index->equal_range(row[*pk]).empty()) {
        throw EvalError(support::cat("duplicate primary key ",
                                     row[*pk].to_display(), " in table ",
                                     schema_.name()));
      }
    } else {
      for (std::size_t id = 0; id < rows_.size(); ++id) {
        if (live_[id] && rows_[id][*pk].equals_total(row[*pk])) {
          throw EvalError(support::cat("duplicate primary key ",
                                       row[*pk].to_display(), " in table ",
                                       schema_.name()));
        }
      }
    }
  }
  const std::size_t row_id = rows_.size();
  rows_.push_back(std::move(row));
  live_.push_back(true);
  ++live_count_;
  for (const auto& index : indexes_) {
    index->insert(rows_.back()[index->column()], row_id);
  }
  return row_id;
}

void Table::erase(std::size_t row_id) {
  if (!is_live(row_id)) {
    throw EvalError(support::cat("row ", row_id, " is not live in table ",
                                 schema_.name()));
  }
  for (const auto& index : indexes_) {
    index->erase(rows_[row_id][index->column()], row_id);
  }
  live_[row_id] = false;
  --live_count_;
}

void Table::update(std::size_t row_id, Row row) {
  if (!is_live(row_id)) {
    throw EvalError(support::cat("row ", row_id, " is not live in table ",
                                 schema_.name()));
  }
  row = validate(std::move(row));
  for (const auto& index : indexes_) {
    index->erase(rows_[row_id][index->column()], row_id);
  }
  rows_[row_id] = std::move(row);
  for (const auto& index : indexes_) {
    index->insert(rows_[row_id][index->column()], row_id);
  }
}

std::vector<std::size_t> Table::live_rows() const {
  std::vector<std::size_t> out;
  out.reserve(live_count_);
  for (std::size_t id = 0; id < rows_.size(); ++id) {
    if (live_[id]) out.push_back(id);
  }
  return out;
}

Index& Table::create_index(std::string name, std::size_t column, Index::Kind kind) {
  if (column >= schema_.column_count()) {
    throw EvalError(support::cat("index column ", column, " out of range for ",
                                 schema_.name()));
  }
  auto index = std::make_unique<Index>(std::move(name), column, kind);
  for (std::size_t id = 0; id < rows_.size(); ++id) {
    if (live_[id]) index->insert(rows_[id][column], id);
  }
  indexes_.push_back(std::move(index));
  return *indexes_.back();
}

const Index* Table::find_index_on(std::size_t column) const {
  for (const auto& index : indexes_) {
    if (index->column() == column) return index.get();
  }
  return nullptr;
}

}  // namespace kojak::db
